module Prng = Tessera_util.Prng

type strategy =
  | Randomized of { count : int; density : float }
  | Progressive of { l : int }

type meth_state = { mutable compiles : int; mutable last_idx : int }

type t = {
  mods : Modifier.t array;
  uses : int array;
  limit : int;
  mutable cursor : int;
  per_meth : (int, meth_state) Hashtbl.t;
  mutable issued : int;
}

let generate ~seed strategy =
  let rng = Prng.create seed in
  match strategy with
  | Randomized { count; density } ->
      Array.init count (fun _ -> Modifier.random rng ~density)
  | Progressive { l } ->
      Array.init l (fun i -> Modifier.progressive rng ~i:(i + 1) ~l)

let create ?(uses_per_modifier = 50) ~seed strategy =
  let mods = generate ~seed strategy in
  {
    mods;
    uses = Array.make (Array.length mods) 0;
    limit = uses_per_modifier;
    cursor = 0;
    per_meth = Hashtbl.create 64;
    issued = 0;
  }

let state t key =
  match Hashtbl.find_opt t.per_meth key with
  | Some s -> s
  | None ->
      let s = { compiles = 0; last_idx = -1 } in
      Hashtbl.add t.per_meth key s;
      s

let retire_full t =
  while t.cursor < Array.length t.mods && t.uses.(t.cursor) >= t.limit do
    t.cursor <- t.cursor + 1
  done

let next t ~method_key =
  let s = state t method_key in
  let c = s.compiles in
  s.compiles <- c + 1;
  (* every third compilation re-observes the original plan *)
  if c mod 3 = 2 then begin
    t.issued <- t.issued + 1;
    Some Modifier.null
  end
  else begin
    retire_full t;
    let candidate = max t.cursor (s.last_idx + 1) in
    if candidate >= Array.length t.mods then None
    else begin
      s.last_idx <- candidate;
      t.uses.(candidate) <- t.uses.(candidate) + 1;
      t.issued <- t.issued + 1;
      retire_full t;
      Some t.mods.(candidate)
    end
  end

let exhausted t =
  retire_full t;
  t.cursor >= Array.length t.mods

let issued t = t.issued
