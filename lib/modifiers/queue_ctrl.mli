(** The strategy-control modifier queue used during data collection
    (Sections 4 and 5 of the paper):

    - modifiers are pre-computed per optimization level;
    - each modifier is used for a fixed number of compilations (50 in the
      paper) and then retired;
    - the null modifier is interleaved so every method is also observed
      under the original compilation plan;
    - a method is never compiled twice with the same modifier. *)

type strategy =
  | Randomized of { count : int; density : float }
      (** [count] pre-generated modifiers, each disabling transformations
          with probability [density] *)
  | Progressive of { l : int }  (** Eq. (1) schedule with parameter [L] *)

type t

val create : ?uses_per_modifier:int -> seed:int64 -> strategy -> t
(** [uses_per_modifier] defaults to 50. *)

val generate : seed:int64 -> strategy -> Modifier.t array
(** The pre-computed modifier sequence a queue with this seed would dole
    out, in order.  This is the {e candidate set} of a compilation-forking
    collector: the same (seed, strategy) pair names the same modifiers
    whether they are explored one-per-recompilation through a queue or
    all-at-once through forked branches. *)

val next : t -> method_key:int -> Modifier.t option
(** The modifier to use for this compilation of the method identified by
    [method_key].  Returns [None] when the queue is exhausted for this
    method (the method should no longer be recompiled, Section 5).  Every
    third compilation of a method receives the null modifier, matching
    "the third modifier used is always the null modifier". *)

val exhausted : t -> bool
(** All modifiers retired for all methods (data collection should
    gracefully terminate). *)

val issued : t -> int
(** Total modifier assignments made so far. *)
