module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

type t = int array

module Summary = Tessera_analysis.Summary

let scalar_count = 19

let analysis_count = Summary.count

let dim = scalar_count + Types.count + Opcode.group_count + analysis_count

let many_iteration_nest_threshold = 2

let many_iteration_trip_threshold = 64L

let short_trip_threshold = 16L

(* Loop-bound evidence from a loop header's exit test: [Some c] when the
   header compares an evolving value against the constant [c]. *)
let header_bound (m : Meth.t) header =
  match m.Meth.blocks.(header).Block.term with
  | Block.If { cond; _ } -> (
      match cond.Node.op with
      | Opcode.Compare _
        when Array.length cond.Node.args = 2
             && cond.Node.args.(1).Node.op = Opcode.Loadconst
             && Types.is_integral cond.Node.args.(1).Node.ty ->
          Some cond.Node.args.(1).Node.const
      | _ -> None)
  | _ -> None

let loop_attributes m =
  let la = Tessera_opt.Loops.analyze m in
  let may_have_loops = Meth.has_backward_branch m in
  let many = ref false and may_many = ref false in
  List.iter
    (fun (l : Tessera_opt.Loops.loop) ->
      if l.Tessera_opt.Loops.depth >= many_iteration_nest_threshold then begin
        many := true;
        may_many := true
      end;
      match header_bound m l.Tessera_opt.Loops.header with
      | Some c ->
          if Int64.compare c many_iteration_trip_threshold >= 0 then begin
            many := true;
            may_many := true
          end
          else if Int64.compare c short_trip_threshold >= 0 then
            may_many := true
      | None -> may_many := true (* unknown bound: assume it may iterate *))
    la.Tessera_opt.Loops.loops;
  (may_have_loops, !many, !may_many && may_have_loops)

let sat limit v = if v > limit then limit else v

let extract ?program (m : Meth.t) : t =
  let f = Array.make dim 0 in
  let b v = if v then 1 else 0 in
  let a = m.Meth.attrs in
  let may_loops, many_loops, may_many = loop_attributes m in
  f.(0) <- Meth.exception_handler_count m;
  f.(1) <- Meth.arg_count m;
  f.(2) <- Meth.temp_count m;
  f.(3) <- Meth.tree_count m;
  f.(4) <- b a.Meth.constructor;
  f.(5) <- b a.Meth.final;
  f.(6) <- b a.Meth.protected_;
  f.(7) <- b a.Meth.public;
  f.(8) <- b a.Meth.static;
  f.(9) <- b a.Meth.synchronized;
  f.(10) <- b many_loops;
  f.(11) <- b may_loops;
  f.(12) <- b may_many;
  f.(14) <- b a.Meth.uses_unsafe;
  f.(15) <- b a.Meth.uses_bigdecimal;
  f.(16) <- b a.Meth.virtual_overridden;
  f.(17) <- b a.Meth.strictfp;
  (* distributions: one pass over the trees *)
  let uses_fp = ref false and allocates = ref false in
  Meth.fold_nodes
    (fun () (n : Node.t) ->
      let ti = scalar_count + Types.index n.Node.ty in
      f.(ti) <- sat 65535 (f.(ti) + 1);
      let oi = scalar_count + Types.count + Opcode.group n.Node.op in
      f.(oi) <- sat 255 (f.(oi) + 1);
      if Types.is_floating n.Node.ty then uses_fp := true;
      match n.Node.op with
      | Opcode.New | Opcode.Newarray | Opcode.Newmultiarray -> allocates := true
      | _ -> ())
    () m;
  f.(13) <- b !allocates;
  f.(18) <- b !uses_fp;
  let analysis = Summary.to_array (Summary.of_meth ?program m) in
  Array.blit analysis 0 f (scalar_count + Types.count + Opcode.group_count)
    analysis_count;
  f

let get (f : t) i = f.(i)

let to_array (f : t) = Array.copy f

let of_array arr =
  if Array.length arr <> dim then invalid_arg "Features.of_array: wrong length";
  Array.copy arr

let scalar_names =
  [|
    "exceptionHandlers"; "arguments"; "temporaries"; "treeNodes";
    "constructor"; "final"; "protected"; "public"; "static"; "synchronized";
    "manyIterationLoops"; "mayHaveLoops"; "mayHaveManyIterationLoops";
    "allocatesDynamicMemory"; "unsafeSymbols"; "usesBigDecimal";
    "virtualMethodOverridden"; "strictFloatingPoint"; "usesFloatingPoint";
  |]

let component_name i =
  if i < 0 || i >= dim then invalid_arg "Features.component_name"
  else if i < scalar_count then scalar_names.(i)
  else if i < scalar_count + Types.count then
    "type:" ^ Types.name (Types.of_index (i - scalar_count))
  else if i < scalar_count + Types.count + Opcode.group_count then
    "op:" ^ Opcode.group_name (i - scalar_count - Types.count)
  else
    "dataflow:"
    ^ Summary.names.(i - scalar_count - Types.count - Opcode.group_count)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let hash (f : t) = Hashtbl.hash f

let pp fmt (f : t) =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i v -> if v <> 0 then Format.fprintf fmt " %s=%d" (component_name i) v)
    f;
  Format.fprintf fmt " ]"

(* Layout self-check, replacing the former [assert (dim = 71)] magic
   number: the named components must tile the whole vector with no
   gaps or collisions, whatever the section sizes are. *)
let () =
  let seen = Hashtbl.create dim in
  for i = 0 to dim - 1 do
    let name = component_name i in
    if String.length name = 0 then
      invalid_arg (Printf.sprintf "Features: component %d has an empty name" i);
    match Hashtbl.find_opt seen name with
    | Some j ->
        invalid_arg
          (Printf.sprintf "Features: components %d and %d share the name %S" j
             i name)
    | None -> Hashtbl.add seen name i
  done
