(** Method feature extraction (Section 4.1 of the paper).

    A feature vector has 71 numerical attributes, extracted from the
    compiler just prior to the optimization stage:

    - {b 19 scalar features} (Table 1): 4 counters (exception handlers,
      arguments, temporaries, tree nodes) and 15 binary attributes
      (constructor/final/protected/public/static/synchronized, the three
      loop attributes, allocates-dynamic-memory, unsafe symbols,
      uses-BigDecimal, virtual-method-overridden, strict floating point,
      uses floating point);
    - {b 14 type-distribution features} (Table 2), counted with 16-bit
      saturating counters;
    - {b 38 operation-distribution features} (Table 3), counted with 8-bit
      saturating counters.

    The distributions are computed in a single pass over the tree-based
    representation of the method.

    On top of the paper's 71 attributes this implementation appends
    {!analysis_count} dataflow-derived components from
    {!Tessera_analysis.Summary} (live-slot pressure, provably-constant
    expression fraction, pure-call share, loop-nest depth, reaching-def
    density), each saturated to a byte. *)

type t = private int array
(** Always of length {!dim}; component order is scalars, then type
    distributions, then operation distributions, then the
    analysis-derived components. *)

val dim : int
(** 76: the paper's 71 plus {!analysis_count}. *)

val scalar_count : int
(** 19. *)

val analysis_count : int
(** 5 dataflow-analysis components appended after the distributions. *)

val extract : ?program:Tessera_il.Program.t -> Tessera_il.Meth.t -> t
(** Deterministic; does not modify the method.  [program] enables the
    interprocedural pure-call-share component (0 when absent). *)

val get : t -> int -> int

val to_array : t -> int array
(** Fresh copy. *)

val of_array : int array -> t
(** Validates the length. *)

val component_name : int -> string
(** Human-readable name of a feature index, e.g. ["treeNodes"],
    ["type:double"], ["op:loadconst"],
    ["dataflow:live_slot_pressure"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic — the order used to aggregate experiment records per
    unique feature vector during ranking (Section 6). *)

val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Loop attributes}

    The loop scalar features come from thresholds on loop structure:
    "may have loops" is the presence of a backward branch; the
    many-iteration attributes come from loop-count thresholds and
    nesting. *)

val many_iteration_nest_threshold : int
(** Nesting depth at or above which loops are classified many-iteration
    (2: a nested loop multiplies trip counts). *)
