(** Method intermediate representation.

    [attrs] carries exactly the binary method properties that feed the
    scalar feature vector of Table 1; the remaining Table 1 entries
    (counters, loop attributes) are derived from the IR itself by the
    feature extractor. *)

type attrs = {
  constructor : bool;
  final : bool;
  protected_ : bool;
  public : bool;
  static : bool;
  synchronized : bool;
  strictfp : bool;
  virtual_overridden : bool;  (** recompiled due to dynamic class loading *)
  uses_unsafe : bool;  (** inlined something from [sun.misc.Unsafe] *)
  uses_bigdecimal : bool;  (** touches [java.math.BigDecimal] *)
}

val default_attrs : attrs

type t = {
  name : string;  (** full signature, e.g. ["spec.db.Database.remove()V"] *)
  attrs : attrs;
  params : Types.t array;
  ret : Types.t;
  symbols : Symbol.t array;  (** arguments first, then temporaries *)
  blocks : Block.t array;  (** [blocks.(0)] is the entry block *)
  mutable fp_memo : int64 option;
      (** internal {!fingerprint} memo; construct methods through
          {!make}/{!with_blocks}/{!with_symbols}/{!map_trees} (which
          reset it) rather than record copies *)
}

val make :
  ?attrs:attrs ->
  name:string ->
  params:Types.t array ->
  ret:Types.t ->
  symbols:Symbol.t array ->
  Block.t array ->
  t

val with_blocks : t -> Block.t array -> t
val with_symbols : t -> Symbol.t array -> t

val arg_count : t -> int
val temp_count : t -> int

val block : t -> int -> Block.t
(** [block m id] fetches a block by id (= array index). *)

val tree_count : t -> int
(** Total IL nodes across all blocks; the "tree nodes" scalar feature. *)

val iter_trees : (Node.t -> unit) -> t -> unit
(** Visits every statement and terminator tree root. *)

val fold_nodes : ('a -> Node.t -> 'a) -> 'a -> t -> 'a
(** Folds over {e every} node of every tree in the method. *)

val map_trees : (Node.t -> Node.t) -> t -> t
(** Rewrites every tree root (statements and terminator trees). *)

val exception_handler_count : t -> int
(** Number of distinct handler blocks. *)

val has_backward_branch : t -> bool
(** "May have loops" in Table 1: any edge to a block with a smaller id. *)

val fingerprint : t -> int64
(** Stable 64-bit FNV-1a hash of the whole method — name, attrs,
    signature, symbols, and every node of every block (opcode, type,
    symbol id, constant, flags; node uids are {e excluded} so
    regenerating the same IL yields the same fingerprint across
    processes).  This is the IL component of persistent code-cache keys:
    any change to the method body changes the fingerprint and
    invalidates cached code.

    Memoized on the method record: computed once, reused until the
    method is rebuilt through a constructor (each constructor resets
    the memo). *)

val fingerprint_uncached : t -> int64
(** The raw tree-walking hash, bypassing the memo — exists so property
    tests can assert the memoized and recomputed values agree. *)

val equal : t -> t -> bool
(** Structural equality of the whole method body (uids and flags
    ignored), plus equality of name/attrs/signature. *)

val pp : Format.formatter -> t -> unit
