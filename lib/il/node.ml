type flags = int

let flag_none = 0
let flag_stack_alloc = 1
let flag_no_bounds_check = 2
let flag_no_null_check = 4
let flag_sync_elided = 8
let flag_no_overflow = 16
let flag_rematerialized = 32

type t = {
  uid : int;
  op : Opcode.t;
  ty : Types.t;
  args : t array;
  sym : int;
  const : int64;
  flags : flags;
}

(* atomic: programs are generated concurrently by evaluation-pool
   domains, and uids must stay unique across them *)
let counter = Atomic.make 0

let fresh_uid () = Atomic.fetch_and_add counter 1 + 1

let mk ?(sym = -1) ?(const = 0L) ?(flags = flag_none) op ty args =
  { uid = fresh_uid (); op; ty; args; sym; const; flags }

let with_args n args = { n with uid = fresh_uid (); args }
let with_flags n flags = { n with flags = n.flags lor flags }
let with_type n ty = { n with uid = fresh_uid (); ty }
let has_flag n f = n.flags land f <> 0

let iconst ty v = mk ~const:v Opcode.Loadconst ty [||]
let fconst ty v = mk ~const:(Int64.bits_of_float v) Opcode.Loadconst ty [||]
let load_sym ty s = mk ~sym:s Opcode.Load ty [||]
let store_sym s v = mk ~sym:s Opcode.Store Types.Void [| v |]
let binop op ty a b = mk op ty [| a; b |]
let call ty ~callee args = mk ~sym:callee Opcode.Call ty args

let const_float n = Int64.float_of_bits n.const

let rec size n = Array.fold_left (fun acc k -> acc + size k) 1 n.args

let rec fold f acc n = Array.fold_left (fold f) (f acc n) n.args

let rec exists p n = p n || Array.exists (exists p) n.args

let rec map_bottom_up f n =
  let changed = ref false in
  let args =
    Array.map
      (fun k ->
        let k' = map_bottom_up f k in
        if k' != k then changed := true;
        k')
      n.args
  in
  let n = if !changed then { n with uid = fresh_uid (); args } else n in
  f n

let rec structural_equal a b =
  Opcode.equal a.op b.op && Types.equal a.ty b.ty && a.sym = b.sym
  && Int64.equal a.const b.const
  && Array.length a.args = Array.length b.args
  && Array.for_all2 structural_equal a.args b.args

let rec structural_hash n =
  let h = Hashtbl.hash (Opcode.name n.op, Types.index n.ty, n.sym, n.const) in
  Array.fold_left (fun acc k -> (acc * 31) + structural_hash k) h n.args

let is_pure n =
  match n.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Neg | Opcode.Shift _
  | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Compare _ | Opcode.Loadconst
  | Opcode.Instanceof | Opcode.Branch_op | Opcode.Mixedop ->
      true
  | Opcode.Cast k -> not (k = Opcode.C_check)
  | Opcode.Div | Opcode.Rem ->
      (* Integer division traps on zero; FP division does not. *)
      Types.is_floating n.ty
      || (Array.length n.args = 2
         && n.args.(1).op = Opcode.Loadconst
         && not (Int64.equal n.args.(1).const 0L))
  | Opcode.Load -> Array.length n.args = 0 (* locals cannot trap *)
  | Opcode.Arrayop Opcode.Array_length -> true
  | Opcode.Arrayop _ -> false
  | Opcode.Inc | Opcode.Store | Opcode.New | Opcode.Newarray
  | Opcode.Newmultiarray | Opcode.Synchronization _ | Opcode.Throw_op
  | Opcode.Call ->
      false

let rec subtree_pure n = is_pure n && Array.for_all subtree_pure n.args

let rec pp fmt n =
  if Array.length n.args = 0 then
    match n.op with
    | Opcode.Loadconst ->
        if Types.is_floating n.ty then
          Format.fprintf fmt "(%a %a %h)" Opcode.pp n.op Types.pp n.ty
            (const_float n)
        else
          Format.fprintf fmt "(%a %a %Ld)" Opcode.pp n.op Types.pp n.ty n.const
    | Opcode.Load -> Format.fprintf fmt "(load %a $%d)" Types.pp n.ty n.sym
    | _ -> Format.fprintf fmt "(%a %a)" Opcode.pp n.op Types.pp n.ty
  else begin
    Format.fprintf fmt "(%a %a" Opcode.pp n.op Types.pp n.ty;
    if n.sym >= 0 then Format.fprintf fmt " $%d" n.sym;
    Array.iter (fun k -> Format.fprintf fmt " %a" pp k) n.args;
    Format.fprintf fmt ")"
  end
