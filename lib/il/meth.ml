type attrs = {
  constructor : bool;
  final : bool;
  protected_ : bool;
  public : bool;
  static : bool;
  synchronized : bool;
  strictfp : bool;
  virtual_overridden : bool;
  uses_unsafe : bool;
  uses_bigdecimal : bool;
}

let default_attrs =
  {
    constructor = false;
    final = false;
    protected_ = false;
    public = true;
    static = true;
    synchronized = false;
    strictfp = false;
    virtual_overridden = false;
    uses_unsafe = false;
    uses_bigdecimal = false;
  }

type t = {
  name : string;
  attrs : attrs;
  params : Types.t array;
  ret : Types.t;
  symbols : Symbol.t array;
  blocks : Block.t array;
  (* fingerprint memo; every constructor below resets it, so a derived
     method can never inherit a stale hash.  Concurrent writers race
     benignly: both compute the same value. *)
  mutable fp_memo : int64 option;
}

let make ?(attrs = default_attrs) ~name ~params ~ret ~symbols blocks =
  { name; attrs; params; ret; symbols; blocks; fp_memo = None }

let with_blocks m blocks = { m with blocks; fp_memo = None }
let with_symbols m symbols = { m with symbols; fp_memo = None }

let arg_count m =
  Array.fold_left
    (fun acc (s : Symbol.t) -> if s.kind = Symbol.Arg then acc + 1 else acc)
    0 m.symbols

let temp_count m = Array.length m.symbols - arg_count m

let block m id =
  if id < 0 || id >= Array.length m.blocks then
    invalid_arg (Printf.sprintf "Meth.block: no block %d in %s" id m.name);
  m.blocks.(id)

let tree_count m =
  Array.fold_left (fun acc b -> acc + Block.tree_count b) 0 m.blocks

let iter_trees f m =
  Array.iter
    (fun (b : Block.t) ->
      List.iter f b.stmts;
      List.iter f (Block.terminator_nodes b.term))
    m.blocks

let fold_nodes f acc m =
  let acc = ref acc in
  iter_trees (fun root -> acc := Node.fold f !acc root) m;
  !acc

let map_trees f m =
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        let stmts = List.map f b.stmts in
        let term = Block.map_terminator_nodes f b.term in
        { b with Block.stmts; term })
      m.blocks
  in
  { m with blocks; fp_memo = None }

let exception_handler_count m =
  let handlers = Hashtbl.create 4 in
  Array.iter
    (fun (b : Block.t) ->
      match b.handler with
      | Some h -> Hashtbl.replace handlers h ()
      | None -> ())
    m.blocks;
  Hashtbl.length handlers

let has_backward_branch m =
  Array.exists
    (fun (b : Block.t) -> List.exists (fun s -> s <= b.id) (Block.successors b))
    m.blocks

module H = Tessera_util.Hash64

let hash_node acc root =
  Node.fold
    (fun acc (n : Node.t) ->
      let acc = H.string acc (Opcode.name n.op) in
      let acc = H.int acc (Types.index n.ty) in
      let acc = H.int acc n.sym in
      let acc = H.int64 acc n.const in
      let acc = H.int acc n.flags in
      H.int acc (Array.length n.args))
    acc root

let hash_term acc = function
  | Block.Goto x -> H.int (H.byte acc 1) x
  | Block.If { cond; if_true; if_false } ->
      H.int (H.int (hash_node (H.byte acc 2) cond) if_true) if_false
  | Block.Return None -> H.byte acc 3
  | Block.Return (Some n) -> hash_node (H.byte acc 4) n
  | Block.Throw n -> hash_node (H.byte acc 5) n

let fingerprint_uncached m =
  let acc = H.string H.init m.name in
  let acc =
    List.fold_left H.bool acc
      [
        m.attrs.constructor; m.attrs.final; m.attrs.protected_;
        m.attrs.public; m.attrs.static; m.attrs.synchronized;
        m.attrs.strictfp; m.attrs.virtual_overridden;
        m.attrs.uses_unsafe; m.attrs.uses_bigdecimal;
      ]
  in
  let acc =
    Array.fold_left (fun acc ty -> H.int acc (Types.index ty)) acc m.params
  in
  let acc = H.int acc (Types.index m.ret) in
  let acc =
    Array.fold_left
      (fun acc (s : Symbol.t) ->
        let acc = H.string acc s.name in
        let acc = H.int acc (Types.index s.ty) in
        H.byte acc (match s.kind with Symbol.Arg -> 0 | Symbol.Temp -> 1))
      acc m.symbols
  in
  Array.fold_left
    (fun acc (b : Block.t) ->
      let acc = H.int acc b.id in
      let acc = H.int acc (match b.handler with None -> -1 | Some h -> h) in
      let acc = H.int64 acc (Int64.bits_of_float b.freq) in
      let acc = List.fold_left hash_node acc b.stmts in
      hash_term acc b.term)
    acc m.blocks

let fingerprint m =
  match m.fp_memo with
  | Some fp -> fp
  | None ->
      let fp = fingerprint_uncached m in
      m.fp_memo <- Some fp;
      fp

let term_equal (a : Block.terminator) (b : Block.terminator) =
  match (a, b) with
  | Block.Goto x, Block.Goto y -> x = y
  | Block.If a', Block.If b' ->
      a'.if_true = b'.if_true && a'.if_false = b'.if_false
      && Node.structural_equal a'.cond b'.cond
  | Block.Return None, Block.Return None -> true
  | Block.Return (Some x), Block.Return (Some y) -> Node.structural_equal x y
  | Block.Throw x, Block.Throw y -> Node.structural_equal x y
  | _ -> false

let equal a b =
  String.equal a.name b.name && a.attrs = b.attrs && a.ret = b.ret
  && a.params = b.params
  && Array.length a.symbols = Array.length b.symbols
  && Array.for_all2 Symbol.equal a.symbols b.symbols
  && Array.length a.blocks = Array.length b.blocks
  && Array.for_all2
       (fun (x : Block.t) (y : Block.t) ->
         x.id = y.id && x.handler = y.handler
         && List.length x.stmts = List.length y.stmts
         && List.for_all2 Node.structural_equal x.stmts y.stmts
         && term_equal x.term y.term)
       a.blocks b.blocks

let pp fmt m =
  Format.fprintf fmt "@[<v 2>method %S {" m.name;
  Array.iteri
    (fun i s -> Format.fprintf fmt "@,$%d = %a" i Symbol.pp s)
    m.symbols;
  Array.iter (fun b -> Format.fprintf fmt "@,%a" Block.pp b) m.blocks;
  Format.fprintf fmt "@]@,}"
