module Codec = Tessera_util.Codec
module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode

exception Malformed of string

let fail what = raise (Malformed what)

(* -- field helpers ------------------------------------------------- *)

let write_ty buf ty = Codec.write_u8 buf (Types.index ty)

let read_ty ?(what = "type") r =
  let i = Codec.read_u8 ~what r in
  if i >= Types.count then fail (what ^ ": bad type index");
  Types.of_index i

let write_bool buf b = Codec.write_u8 buf (if b then 1 else 0)

let read_bool ?(what = "bool") r =
  match Codec.read_u8 ~what r with
  | 0 -> false
  | 1 -> true
  | _ -> fail (what ^ ": bad bool")

let cast_tag = function
  | Opcode.C_byte -> 0
  | Opcode.C_char -> 1
  | Opcode.C_short -> 2
  | Opcode.C_int -> 3
  | Opcode.C_long -> 4
  | Opcode.C_float -> 5
  | Opcode.C_double -> 6
  | Opcode.C_longdouble -> 7
  | Opcode.C_address -> 8
  | Opcode.C_object -> 9
  | Opcode.C_packed -> 10
  | Opcode.C_zoned -> 11
  | Opcode.C_check -> 12

let cast_of_tag = function
  | 0 -> Opcode.C_byte
  | 1 -> Opcode.C_char
  | 2 -> Opcode.C_short
  | 3 -> Opcode.C_int
  | 4 -> Opcode.C_long
  | 5 -> Opcode.C_float
  | 6 -> Opcode.C_double
  | 7 -> Opcode.C_longdouble
  | 8 -> Opcode.C_address
  | 9 -> Opcode.C_object
  | 10 -> Opcode.C_packed
  | 11 -> Opcode.C_zoned
  | 12 -> Opcode.C_check
  | _ -> fail "cast kind"

let quality_tag = function
  | Tessera_vm.Cost.Q_base -> 0
  | Tessera_vm.Cost.Q_regalloc -> 1
  | Tessera_vm.Cost.Q_full -> 2

let quality_of_tag = function
  | 0 -> Tessera_vm.Cost.Q_base
  | 1 -> Tessera_vm.Cost.Q_regalloc
  | 2 -> Tessera_vm.Cost.Q_full
  | _ -> fail "quality"

(* -- instructions -------------------------------------------------- *)

let write_instr buf (i : Isa.instr) =
  let tag t = Codec.write_u8 buf t in
  match i with
  | Isa.Const (ty, v) ->
      tag 0;
      write_ty buf ty;
      Codec.write_i64 buf v
  | Isa.Load_local n ->
      tag 1;
      Codec.write_varint buf n
  | Isa.Store_local (n, ty) ->
      tag 2;
      Codec.write_varint buf n;
      write_ty buf ty
  | Isa.Inc_local (n, d, ty) ->
      tag 3;
      Codec.write_varint buf n;
      Codec.write_i64 buf d;
      write_ty buf ty
  | Isa.Field_load n ->
      tag 4;
      Codec.write_varint buf n
  | Isa.Field_store n ->
      tag 5;
      Codec.write_varint buf n
  | Isa.Elem_load -> tag 6
  | Isa.Elem_store -> tag 7
  | Isa.Binop (op, ty) ->
      tag 8;
      Codec.write_string buf (Opcode.name op);
      write_ty buf ty
  | Isa.Negate ty ->
      tag 9;
      write_ty buf ty
  | Isa.Cast_to (k, ty) ->
      tag 10;
      Codec.write_u8 buf (cast_tag k);
      write_ty buf ty
  | Isa.Checkcast c ->
      tag 11;
      Codec.write_varint buf c
  | Isa.New_obj c ->
      tag 12;
      Codec.write_varint buf c
  | Isa.New_arr ty ->
      tag 13;
      write_ty buf ty
  | Isa.New_multi ty ->
      tag 14;
      write_ty buf ty
  | Isa.Instance_of c ->
      tag 15;
      Codec.write_varint buf c
  | Isa.Monitor b ->
      tag 16;
      write_bool buf b
  | Isa.Invoke (m, n, ty) ->
      tag 17;
      Codec.write_varint buf m;
      Codec.write_varint buf n;
      write_ty buf ty
  | Isa.Mixed_op (n, ty) ->
      tag 18;
      Codec.write_varint buf n;
      write_ty buf ty
  | Isa.Bounds_chk -> tag 19
  | Isa.Arr_copy -> tag 20
  | Isa.Arr_cmp -> tag 21
  | Isa.Arr_len -> tag 22
  | Isa.Pop -> tag 23
  | Isa.Jump t ->
      tag 24;
      Codec.write_varint buf t
  | Isa.Jump_if_false t ->
      tag 25;
      Codec.write_varint buf t
  | Isa.Ret v ->
      tag 26;
      write_bool buf v
  | Isa.Throw_instr -> tag 27

let read_instr r : Isa.instr =
  match Codec.read_u8 ~what:"instr tag" r with
  | 0 ->
      let ty = read_ty r in
      Isa.Const (ty, Codec.read_i64 ~what:"const" r)
  | 1 -> Isa.Load_local (Codec.read_varint ~what:"ldloc" r)
  | 2 ->
      let n = Codec.read_varint ~what:"stloc" r in
      Isa.Store_local (n, read_ty r)
  | 3 ->
      let n = Codec.read_varint ~what:"incloc" r in
      let d = Codec.read_i64 ~what:"incloc delta" r in
      Isa.Inc_local (n, d, read_ty r)
  | 4 -> Isa.Field_load (Codec.read_varint ~what:"ldfld" r)
  | 5 -> Isa.Field_store (Codec.read_varint ~what:"stfld" r)
  | 6 -> Isa.Elem_load
  | 7 -> Isa.Elem_store
  | 8 -> (
      let name = Codec.read_string ~what:"binop" r in
      match Opcode.of_name name with
      | Some op -> Isa.Binop (op, read_ty r)
      | None -> fail ("binop: unknown opcode " ^ name))
  | 9 -> Isa.Negate (read_ty r)
  | 10 ->
      let k = cast_of_tag (Codec.read_u8 ~what:"cast" r) in
      Isa.Cast_to (k, read_ty r)
  | 11 -> Isa.Checkcast (Codec.read_varint ~what:"checkcast" r)
  | 12 -> Isa.New_obj (Codec.read_varint ~what:"new" r)
  | 13 -> Isa.New_arr (read_ty r)
  | 14 -> Isa.New_multi (read_ty r)
  | 15 -> Isa.Instance_of (Codec.read_varint ~what:"instanceof" r)
  | 16 -> Isa.Monitor (read_bool ~what:"monitor" r)
  | 17 ->
      let m = Codec.read_varint ~what:"invoke callee" r in
      let n = Codec.read_varint ~what:"invoke arity" r in
      Isa.Invoke (m, n, read_ty r)
  | 18 ->
      let n = Codec.read_varint ~what:"mixed arity" r in
      Isa.Mixed_op (n, read_ty r)
  | 19 -> Isa.Bounds_chk
  | 20 -> Isa.Arr_copy
  | 21 -> Isa.Arr_cmp
  | 22 -> Isa.Arr_len
  | 23 -> Isa.Pop
  | 24 -> Isa.Jump (Codec.read_varint ~what:"jmp" r)
  | 25 -> Isa.Jump_if_false (Codec.read_varint ~what:"jz" r)
  | 26 -> Isa.Ret (read_bool ~what:"ret" r)
  | 27 -> Isa.Throw_instr
  | t -> fail (Printf.sprintf "unknown instr tag %d" t)

(* -- whole bodies -------------------------------------------------- *)

let write_int_array buf a =
  Codec.write_varint buf (Array.length a);
  Array.iter (fun v -> Codec.write_varint buf v) a

let read_int_array ?(what = "int array") r =
  let n = Codec.read_varint ~what r in
  Array.init n (fun _ -> Codec.read_varint ~what r)

let encode buf (c : Isa.compiled) =
  Codec.write_string buf c.Isa.method_name;
  Codec.write_varint buf c.Isa.nargs;
  write_ty buf c.Isa.ret;
  write_bool buf c.Isa.sync_method;
  Codec.write_u8 buf (quality_tag c.Isa.quality);
  Codec.write_varint buf (Array.length c.Isa.local_types);
  Array.iter (write_ty buf) c.Isa.local_types;
  Codec.write_varint buf (Array.length c.Isa.instrs);
  Array.iter (write_instr buf) c.Isa.instrs;
  Array.iter (fun v -> Codec.write_varint buf v) c.Isa.costs;
  Array.iter (fun v -> Codec.write_varint buf v) c.Isa.block_of_pc;
  write_int_array buf c.Isa.block_start;
  (* handler ids include -1 ("no handler"); shift by one for the varint *)
  Codec.write_varint buf (Array.length c.Isa.handler_of_block);
  Array.iter (fun v -> Codec.write_varint buf (v + 1)) c.Isa.handler_of_block

let decode r : Isa.compiled =
  let method_name = Codec.read_string ~what:"method name" r in
  let nargs = Codec.read_varint ~what:"nargs" r in
  let ret = read_ty ~what:"return type" r in
  let sync_method = read_bool ~what:"sync" r in
  let quality = quality_of_tag (Codec.read_u8 ~what:"quality" r) in
  let n_locals = Codec.read_varint ~what:"local count" r in
  let local_types = Array.init n_locals (fun _ -> read_ty ~what:"local" r) in
  let n = Codec.read_varint ~what:"instr count" r in
  let instrs = Array.init n (fun _ -> read_instr r) in
  let costs = Array.init n (fun _ -> Codec.read_varint ~what:"cost" r) in
  let block_of_pc =
    Array.init n (fun _ -> Codec.read_varint ~what:"block of pc" r)
  in
  let block_start = read_int_array ~what:"block starts" r in
  let nb = Codec.read_varint ~what:"handler count" r in
  let handler_of_block =
    Array.init nb (fun _ -> Codec.read_varint ~what:"handler" r - 1)
  in
  {
    Isa.method_name;
    instrs;
    costs;
    block_of_pc;
    block_start;
    handler_of_block;
    local_types;
    ret;
    nargs;
    sync_method;
    quality;
    code_size = n;
  }

let to_string c =
  let buf = Buffer.create 256 in
  encode buf c;
  Buffer.contents buf

let of_string s = decode (Codec.reader_of_string s)
