(** Binary serialization of compiled code ({!Isa.compiled}), the payload
    format of the persistent code cache.

    The encoding uses the archive {!Tessera_util.Codec} primitives
    (LEB128 varints, length-prefixed strings) and is self-contained: a
    decoded body is structurally identical to the encoded one
    ([decode ∘ encode = id]), which the qcheck round-trip property in the
    test suite enforces.  Framing, checksums, and versioning are the
    {e store}'s job — this module only maps bodies to bytes. *)

exception Malformed of string
(** Raised by {!decode} on any structurally invalid input (unknown
    instruction tag, bad type index, inconsistent array lengths).
    Truncated input raises {!Tessera_util.Codec.Truncated} instead;
    cache readers must treat both as a corrupt entry. *)

val encode : Buffer.t -> Isa.compiled -> unit

val decode : Tessera_util.Codec.reader -> Isa.compiled

val to_string : Isa.compiled -> string
val of_string : string -> Isa.compiled
