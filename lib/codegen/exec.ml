module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Values = Tessera_vm.Values
module Semantics = Tessera_vm.Semantics
module Cost = Tessera_vm.Cost
open Values
open Isa

type context = {
  classes : Tessera_il.Classdef.t array;
  charge : int -> unit;
  invoke : int -> Values.t array -> Values.t;
  fuel : int ref;
}

exception Out_of_fuel

let run ctx (c : compiled) args =
  let locals = Array.make (Array.length c.local_types) Void_v in
  Array.iteri
    (fun i ty ->
      if i < c.nargs && i < Array.length args then
        locals.(i) <- Semantics.store_coerce ty args.(i)
      else locals.(i) <- default ty)
    c.local_types;
  (* The operand stack: IL trees are shallow, 64 slots is generous. *)
  let stack = Array.make 64 Void_v in
  let sp = ref 0 in
  let push v =
    if !sp >= Array.length stack then raise (Trap Stack_overflow);
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    decr sp;
    stack.(!sp)
  in
  let pop_n n =
    sp := !sp - n;
    Array.sub stack !sp n
  in
  if c.sync_method then
    ctx.charge
      (2 * Cost.op_base (Opcode.Synchronization Opcode.Monitor_enter) Types.Object_);
  ctx.charge 5 (* frame setup *);
  let pc = ref 0 in
  let result = ref None in
  let npc = Array.length c.instrs in
  while !result = None do
    if !pc < 0 || !pc >= npc then
      invalid_arg (c.method_name ^ ": pc out of code range");
    (* check-then-decrement, matching Vm.Interp's fuel discipline *)
    if !(ctx.fuel) <= 0 then raise Out_of_fuel;
    decr ctx.fuel;
    let this_pc = !pc in
    ctx.charge c.costs.(this_pc);
    pc := this_pc + 1;
    try
      match c.instrs.(this_pc) with
      | Const (ty, bits) ->
          if Types.is_floating ty then push (Float_v (Int64.float_of_bits bits))
          else push (Int_v bits)
      | Load_local i -> push locals.(i)
      | Store_local (i, ty) -> locals.(i) <- Semantics.store_coerce ty (pop ())
      | Inc_local (i, d, ty) ->
          locals.(i) <- Int_v (truncate ty (Int64.add (as_int locals.(i)) d))
      | Field_load f -> push (Semantics.field_load (pop ()) f)
      | Field_store f ->
          let v = pop () in
          let o = pop () in
          Semantics.field_store o f v
      | Elem_load ->
          let i = pop () in
          let a = pop () in
          push (Semantics.elem_load a i)
      | Elem_store ->
          let v = pop () in
          let i = pop () in
          let a = pop () in
          Semantics.elem_store a i v
      | Binop (op, ty) ->
          let b = pop () in
          let a = pop () in
          push (Semantics.binop op ty a b)
      | Negate ty -> push (Semantics.neg ty (pop ()))
      | Cast_to (k, ty) -> push (Semantics.cast k ty (pop ()))
      | Checkcast cls -> push (Semantics.checkcast ~classes:ctx.classes cls (pop ()))
      | New_obj cls -> push (Semantics.new_obj ~classes:ctx.classes cls)
      | New_arr ty -> push (Semantics.new_array ~elem:ty (pop ()))
      | New_multi ty ->
          let d2 = pop () in
          let d1 = pop () in
          push (Semantics.new_multiarray ~elem:ty d1 d2)
      | Instance_of cls ->
          push (Semantics.instanceof ~classes:ctx.classes cls (pop ()))
      | Monitor has_obj -> if has_obj then Semantics.monitor (pop ())
      | Invoke (callee, argc, ret) ->
          let actuals = pop_n argc in
          let v = ctx.invoke callee actuals in
          if not (Types.equal ret Types.Void) then push v
      | Mixed_op (argc, ty) ->
          let actuals = pop_n argc in
          let v = Semantics.mixed ty actuals in
          if not (Types.equal ty Types.Void) then push v
      | Bounds_chk ->
          let i = pop () in
          let a = pop () in
          Semantics.bounds_check a i
      | Arr_copy ->
          let l = pop () in
          let d = pop () in
          let s = pop () in
          let copied = Semantics.array_copy s d l in
          ctx.charge (copied * Cost.per_element_copy)
      | Arr_cmp ->
          let b = pop () in
          let a = pop () in
          let r, inspected = Semantics.array_cmp a b in
          ctx.charge (inspected * Cost.per_element_copy);
          push r
      | Arr_len -> push (Semantics.array_length (pop ()))
      | Pop -> ignore (pop ())
      | Jump t -> pc := t
      | Jump_if_false t -> if not (is_truthy (pop ())) then pc := t
      | Ret has_value ->
          if has_value then
            result := Some (Semantics.store_coerce c.ret (pop ()))
          else result := Some Void_v
      | Throw_instr -> raise (Trap User_exception)
    with Trap k ->
      ctx.charge Cost.exception_unwind;
      let blk = c.block_of_pc.(this_pc) in
      let h = c.handler_of_block.(blk) in
      if h < 0 then raise (Trap k)
      else begin
        sp := 0;
        pc := c.block_start.(h)
      end
  done;
  match !result with Some v -> v | None -> assert false
