(** Flat bytecode form of a method.

    [of_meth] lowers tree IL into a single instruction array with
    resolved jump offsets, a constant pool, and precomputed cycle
    charges, such that executing it under {!Interp.run} produces a
    fuel/charge event sequence bit-identical to the tree walker
    [Vm.Interp.run] — same results, same charged cycles, same
    out-of-fuel point.  [fuse] rewrites the hottest instruction pairs
    (a static table measured by [bench flat]) into superinstructions
    that keep the exact observable sequence while halving dispatch
    overhead on those pairs. *)

module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values

type instr =
  | Enter
  | Begin of int
  | Charge of int
  | Const of int * int
  | Load_local of int * int
  | Inc_local of int * int * int64 * Types.t
  | New_obj of int * int
  | Void_leaf of int
  | Store_local of int * Types.t
  | Field_load of int
  | Field_store of int
  | Elem_load
  | Elem_store
  | Binop of Opcode.t * Types.t
  | Negate of Types.t
  | Cast_to of Opcode.cast_kind * Types.t
  | Checkcast of int
  | New_arr of Types.t
  | New_multi of Types.t
  | Instance_of of int
  | Monitor
  | Drop_void
  | Invoke of int * int
  | Mixed of int * Types.t
  | Bounds_chk
  | Arr_copy
  | Arr_cmp
  | Arr_len
  | Pop
  | Jmp of int
  | Cond_br of int * int
  | Ret_void
  | Ret_val
  | Raise_user
  | F_enter_begin of int
  | F_begin_begin of int * int
  | F_begin_load of int * int * int
  | F_begin_const of int * int * int
  | F_load_load of int * int * int * int
  | F_load_binop of int * int * Opcode.t * Types.t
  | F_const_binop of int * int * Opcode.t * Types.t
  | F_load_store of int * int * int * Types.t
  | F_binop_store of Opcode.t * Types.t * int * Types.t
  | F_store_pop of int * Types.t
  | F_inc_pop of int * int * int64 * Types.t
  | F_pop_begin of int
  | F_load_const of int * int * int * int
  | F_load_begin of int * int * int
  | F_binop_binop of Opcode.t * Types.t * Opcode.t * Types.t

type t = {
  method_name : string;
  instrs : instr array;
  pool : Values.t array;
  block_of_pc : int array;
  block_entry : int array;
  handler_of_block : int array;
  local_types : Types.t array;
  local_is_arg : bool array;
  ret : Types.t;
  sync_charge : int;
  max_stack : int;
  fused_pairs : int;
  source_fp : int64;
}

val of_meth : Meth.t -> t
(** Lower a method to its (unfused) flat form.  Runs {!verify} and
    raises [Invalid_argument] if the lowering is unsound — which would
    indicate a bug, as validated IL always lowers cleanly. *)

val fuse : t -> t
(** Apply the superinstruction pass.  Fused pairs keep their two slots
    (the second becomes dead padding) so no offsets move;
    [fused_pairs] counts the rewritten sites. *)

val verify : t -> (int, string) result
(** Structural soundness: jump targets land on block entries, operand
    indices are in range, every block ends in a terminator, and the
    operand stack never underflows and is empty at block boundaries.
    Returns the maximum operand-stack depth on success. *)

val code_size : t -> int

val hash : t -> int64
(** Stable hash of the whole flat form — the codec integrity check and
    the cheap identity of the flat array. *)

val width : instr -> int
(** 2 for superinstructions (their second slot is dead padding), else 1. *)

val kind : instr -> int
(** Dense instruction-kind index, for the dynamic pair census. *)

val kind_count : int

val kind_name : int -> string

val stack_io : instr -> int * int
(** (pops, pushes) of an instruction, as used by the verifier. *)
