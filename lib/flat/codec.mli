(** Binary codec for unfused flat programs ({!Prog.t}), in the
    [Isa_codec] idiom: u8 tags, varint operands, trailing integrity
    hash.  [decode] re-verifies the program (structure, stack bound,
    hash) so corrupt bytes can never reach the dispatch loop.  Fused
    programs are rejected — fusion is reapplied after decode. *)

exception Malformed of string

val format_version : int

val encode : Buffer.t -> Prog.t -> unit
val decode : Tessera_util.Codec.reader -> Prog.t

val to_string : Prog.t -> string

val of_string : string -> Prog.t
(** Raises {!Malformed} or [Tessera_util.Codec.Truncated] on damage;
    callers persisting through the code cache turn either into a
    corrupt-entry drop. *)
