(* Binary codec for unfused flat programs, in the Isa_codec idiom:
   u8 instruction tags, varint operands, a trailing integrity hash.
   Fused programs are never persisted — fusion is a deterministic,
   cheap rewrite applied after decode, so the on-disk form stays
   independent of the (toggleable) fusion setting. *)

module Codec = Tessera_util.Codec
module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Values = Tessera_vm.Values

exception Malformed of string

let fail what = raise (Malformed what)

let format_version = 1

let write_ty buf ty = Codec.write_u8 buf (Types.index ty)

let read_ty ?(what = "type") r =
  let i = Codec.read_u8 ~what r in
  if i >= Types.count then fail (what ^ ": bad type index");
  Types.of_index i

let write_op buf op = Codec.write_string buf (Opcode.name op)

let read_op ?(what = "opcode") r =
  match Opcode.of_name (Codec.read_string ~what r) with
  | Some op -> op
  | None -> fail (what ^ ": unknown opcode")

let cast_tag = function
  | Opcode.C_byte -> 0
  | Opcode.C_char -> 1
  | Opcode.C_short -> 2
  | Opcode.C_int -> 3
  | Opcode.C_long -> 4
  | Opcode.C_float -> 5
  | Opcode.C_double -> 6
  | Opcode.C_longdouble -> 7
  | Opcode.C_address -> 8
  | Opcode.C_object -> 9
  | Opcode.C_packed -> 10
  | Opcode.C_zoned -> 11
  | Opcode.C_check -> 12

let cast_of_tag = function
  | 0 -> Opcode.C_byte
  | 1 -> Opcode.C_char
  | 2 -> Opcode.C_short
  | 3 -> Opcode.C_int
  | 4 -> Opcode.C_long
  | 5 -> Opcode.C_float
  | 6 -> Opcode.C_double
  | 7 -> Opcode.C_longdouble
  | 8 -> Opcode.C_address
  | 9 -> Opcode.C_object
  | 10 -> Opcode.C_packed
  | 11 -> Opcode.C_zoned
  | 12 -> Opcode.C_check
  | _ -> fail "cast kind"

let write_instr buf (i : Prog.instr) =
  let tag t = Codec.write_u8 buf t in
  let vint = Codec.write_varint buf in
  match i with
  | Prog.Enter -> tag 0
  | Prog.Begin c ->
      tag 1;
      vint c
  | Prog.Charge c ->
      tag 2;
      vint c
  | Prog.Const (c, k) ->
      tag 3;
      vint c;
      vint k
  | Prog.Load_local (c, s) ->
      tag 4;
      vint c;
      vint s
  | Prog.Inc_local (c, s, d, ty) ->
      tag 5;
      vint c;
      vint s;
      Codec.write_i64 buf d;
      write_ty buf ty
  | Prog.New_obj (c, cls) ->
      tag 6;
      vint c;
      vint cls
  | Prog.Void_leaf c ->
      tag 7;
      vint c
  | Prog.Store_local (s, ty) ->
      tag 8;
      vint s;
      write_ty buf ty
  | Prog.Field_load f ->
      tag 9;
      vint f
  | Prog.Field_store f ->
      tag 10;
      vint f
  | Prog.Elem_load -> tag 11
  | Prog.Elem_store -> tag 12
  | Prog.Binop (op, ty) ->
      tag 13;
      write_op buf op;
      write_ty buf ty
  | Prog.Negate ty ->
      tag 14;
      write_ty buf ty
  | Prog.Cast_to (k, ty) ->
      tag 15;
      Codec.write_u8 buf (cast_tag k);
      write_ty buf ty
  | Prog.Checkcast cls ->
      tag 16;
      vint cls
  | Prog.New_arr ty ->
      tag 17;
      write_ty buf ty
  | Prog.New_multi ty ->
      tag 18;
      write_ty buf ty
  | Prog.Instance_of cls ->
      tag 19;
      vint cls
  | Prog.Monitor -> tag 20
  | Prog.Drop_void -> tag 21
  | Prog.Invoke (callee, argc) ->
      tag 22;
      vint callee;
      vint argc
  | Prog.Mixed (argc, ty) ->
      tag 23;
      vint argc;
      write_ty buf ty
  | Prog.Bounds_chk -> tag 24
  | Prog.Arr_copy -> tag 25
  | Prog.Arr_cmp -> tag 26
  | Prog.Arr_len -> tag 27
  | Prog.Pop -> tag 28
  | Prog.Jmp t ->
      tag 29;
      vint t
  | Prog.Cond_br (t, f) ->
      tag 30;
      vint t;
      vint f
  | Prog.Ret_void -> tag 31
  | Prog.Ret_val -> tag 32
  | Prog.Raise_user -> tag 33
  | Prog.F_enter_begin _ | Prog.F_begin_begin _ | Prog.F_begin_load _
  | Prog.F_begin_const _ | Prog.F_load_load _ | Prog.F_load_binop _
  | Prog.F_const_binop _ | Prog.F_load_store _ | Prog.F_binop_store _
  | Prog.F_store_pop _ | Prog.F_inc_pop _ | Prog.F_pop_begin _
  | Prog.F_load_const _ | Prog.F_load_begin _ | Prog.F_binop_binop _ ->
      fail "encode: fused program"

let read_instr r : Prog.instr =
  let vint what = Codec.read_varint ~what r in
  match Codec.read_u8 ~what:"instr tag" r with
  | 0 -> Prog.Enter
  | 1 -> Prog.Begin (vint "charge")
  | 2 -> Prog.Charge (vint "charge")
  | 3 ->
      let c = vint "charge" in
      Prog.Const (c, vint "pool")
  | 4 ->
      let c = vint "charge" in
      Prog.Load_local (c, vint "slot")
  | 5 ->
      let c = vint "charge" in
      let s = vint "slot" in
      let d = Codec.read_i64 ~what:"delta" r in
      Prog.Inc_local (c, s, d, read_ty r)
  | 6 ->
      let c = vint "charge" in
      Prog.New_obj (c, vint "class")
  | 7 -> Prog.Void_leaf (vint "charge")
  | 8 ->
      let s = vint "slot" in
      Prog.Store_local (s, read_ty r)
  | 9 -> Prog.Field_load (vint "field")
  | 10 -> Prog.Field_store (vint "field")
  | 11 -> Prog.Elem_load
  | 12 -> Prog.Elem_store
  | 13 ->
      let op = read_op r in
      Prog.Binop (op, read_ty r)
  | 14 -> Prog.Negate (read_ty r)
  | 15 ->
      let k = cast_of_tag (Codec.read_u8 ~what:"cast" r) in
      Prog.Cast_to (k, read_ty r)
  | 16 -> Prog.Checkcast (vint "class")
  | 17 -> Prog.New_arr (read_ty r)
  | 18 -> Prog.New_multi (read_ty r)
  | 19 -> Prog.Instance_of (vint "class")
  | 20 -> Prog.Monitor
  | 21 -> Prog.Drop_void
  | 22 ->
      let callee = vint "callee" in
      Prog.Invoke (callee, vint "argc")
  | 23 ->
      let argc = vint "argc" in
      Prog.Mixed (argc, read_ty r)
  | 24 -> Prog.Bounds_chk
  | 25 -> Prog.Arr_copy
  | 26 -> Prog.Arr_cmp
  | 27 -> Prog.Arr_len
  | 28 -> Prog.Pop
  | 29 -> Prog.Jmp (vint "target")
  | 30 ->
      let t = vint "target" in
      Prog.Cond_br (t, vint "target")
  | 31 -> Prog.Ret_void
  | 32 -> Prog.Ret_val
  | 33 -> Prog.Raise_user
  | _ -> fail "instr tag"

let write_int_array buf a =
  Codec.write_varint buf (Array.length a);
  Array.iter (Codec.write_varint buf) a

let read_int_array ?(what = "int array") r =
  let n = Codec.read_varint ~what r in
  Array.init n (fun _ -> Codec.read_varint ~what r)

(* handler ids can be -1; shift by one into varint range *)
let write_handler_array buf a =
  Codec.write_varint buf (Array.length a);
  Array.iter (fun h -> Codec.write_varint buf (h + 1)) a

let read_handler_array r =
  let n = Codec.read_varint ~what:"handler count" r in
  Array.init n (fun _ -> Codec.read_varint ~what:"handler" r - 1)

let encode buf (p : Prog.t) =
  if p.Prog.fused_pairs > 0 then fail "encode: fused program";
  Codec.write_u8 buf format_version;
  Codec.write_string buf p.Prog.method_name;
  Codec.write_varint buf (Array.length p.Prog.instrs);
  Array.iter (write_instr buf) p.Prog.instrs;
  Codec.write_varint buf (Array.length p.Prog.pool);
  Array.iter
    (fun v ->
      match v with
      | Values.Int_v i ->
          Codec.write_u8 buf 0;
          Codec.write_i64 buf i
      | Values.Float_v f ->
          Codec.write_u8 buf 1;
          Codec.write_i64 buf (Int64.bits_of_float f)
      | _ -> fail "encode: non-scalar pool value")
    p.Prog.pool;
  write_int_array buf p.Prog.block_of_pc;
  write_int_array buf p.Prog.block_entry;
  write_handler_array buf p.Prog.handler_of_block;
  Codec.write_varint buf (Array.length p.Prog.local_types);
  Array.iter
    (fun ty -> Codec.write_u8 buf (Types.index ty))
    p.Prog.local_types;
  Array.iter
    (fun b -> Codec.write_u8 buf (if b then 1 else 0))
    p.Prog.local_is_arg;
  write_ty buf p.Prog.ret;
  Codec.write_varint buf p.Prog.sync_charge;
  Codec.write_varint buf p.Prog.max_stack;
  Codec.write_i64 buf p.Prog.source_fp;
  Codec.write_i64 buf (Prog.hash p)

let decode r : Prog.t =
  let v = Codec.read_u8 ~what:"format version" r in
  if v <> format_version then fail "format version";
  let method_name = Codec.read_string ~what:"method name" r in
  let ninstr = Codec.read_varint ~what:"instr count" r in
  let instrs = Array.init ninstr (fun _ -> read_instr r) in
  let npool = Codec.read_varint ~what:"pool count" r in
  let pool =
    Array.init npool (fun _ ->
        match Codec.read_u8 ~what:"pool tag" r with
        | 0 -> Values.Int_v (Codec.read_i64 ~what:"pool int" r)
        | 1 ->
            Values.Float_v
              (Int64.float_of_bits (Codec.read_i64 ~what:"pool float" r))
        | _ -> fail "pool tag")
  in
  let block_of_pc = read_int_array ~what:"block_of_pc" r in
  let block_entry = read_int_array ~what:"block_entry" r in
  let handler_of_block = read_handler_array r in
  let nloc = Codec.read_varint ~what:"local count" r in
  let local_types =
    Array.init nloc (fun _ ->
        let i = Codec.read_u8 ~what:"local type" r in
        if i >= Types.count then fail "local type";
        Types.of_index i)
  in
  let local_is_arg =
    Array.init nloc (fun _ ->
        match Codec.read_u8 ~what:"local kind" r with
        | 0 -> false
        | 1 -> true
        | _ -> fail "local kind")
  in
  let ret = read_ty ~what:"return type" r in
  let sync_charge = Codec.read_varint ~what:"sync charge" r in
  let max_stack = Codec.read_varint ~what:"max stack" r in
  let source_fp = Codec.read_i64 ~what:"source fingerprint" r in
  let p =
    {
      Prog.method_name;
      instrs;
      pool;
      block_of_pc;
      block_entry;
      handler_of_block;
      local_types;
      local_is_arg;
      ret;
      sync_charge;
      max_stack;
      fused_pairs = 0;
      source_fp;
    }
  in
  let stored_hash = Codec.read_i64 ~what:"hash" r in
  if not (Int64.equal stored_hash (Prog.hash p)) then fail "hash mismatch";
  (* the decoded form must stand on its own: re-verify structure and the
     claimed stack bound before anyone executes it *)
  (match Prog.verify p with
  | Ok ms -> if ms <> max_stack then fail "max_stack mismatch"
  | Error e -> fail e);
  p

let to_string p =
  let buf = Buffer.create 512 in
  encode buf p;
  Buffer.contents buf

let of_string s =
  let r = Codec.reader_of_string s in
  let p = decode r in
  if not (Codec.at_end r) then fail "trailing bytes";
  p
