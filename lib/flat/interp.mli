(** Dispatch-loop interpreter over the flat form.

    Shares [Vm.Interp.context] (and its [Out_of_fuel] exception) with
    the tree walker so engines can switch tiers without re-plumbing.
    Observable behaviour — result value, traps, every charged cycle and
    fuel decrement in order — is bit-identical to [Vm.Interp.run] on
    the source method; the speedup is purely host-side. *)

type context = Tessera_vm.Interp.context

val run : context -> Prog.t -> Tessera_vm.Values.t array -> Tessera_vm.Values.t
(** Raises [Vm.Interp.Out_of_fuel] and [Values.Trap _] exactly like the
    tree walker. *)

val run_counted :
  pairs:int array ->
  context ->
  Prog.t ->
  Tessera_vm.Values.t array ->
  Tessera_vm.Values.t
(** Like [run] but tallies dynamically executed (kind, next-kind) pairs
    into [pairs] (a [kind_count * kind_count] matrix, row = first kind).
    This census is what the static fusion table in {!Prog.fuse} was
    derived from.  Only accepts unfused programs. *)
