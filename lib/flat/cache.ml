(* Process-wide flat-form cache: per-method lazy flatten, memoized by
   the (memoized) [Meth.fingerprint] plus the fusion setting.

   The memo table is domain-local (Domain.DLS), so evaluation-pool
   domains never contend on a lock in the interpreter hot path; each
   domain flattens its own copy, which is cheap and has no observable
   effect (flattening charges nothing).  The [enabled] and [fuse]
   toggles are plain flags set at process start (`--no-flat`,
   `bench flat` legs) before worker domains spawn. *)

module Meth = Tessera_il.Meth
module Trace = Tessera_obs.Trace
module Metrics = Tessera_obs.Metrics

let enabled_flag = ref true
let fuse_flag = ref true

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b
let fuse_enabled () = !fuse_flag
let set_fuse b = fuse_flag := b

(* registered on the default registry (idempotent by name) so the flat
   tier shows up in every metrics exposition alongside jit_* counters *)
let m_flatten =
  Metrics.counter Metrics.default ~help:"Methods lowered to flat form"
    "flat_flatten_total"

let m_hits =
  Metrics.counter Metrics.default ~help:"Flat-form memo hits"
    "flat_cache_hits_total"

let m_fused_sites =
  Metrics.counter Metrics.default
    ~help:"Superinstruction sites produced by fusion" "flat_fused_sites_total"

let m_persist_loads =
  Metrics.counter Metrics.default
    ~help:"Flat forms loaded from the persistent code cache"
    "flat_persist_loads_total"

let memo_key : (int64 * bool, Prog.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let clear () = Hashtbl.reset (Domain.DLS.get memo_key)

let flatten (m : Meth.t) =
  if !Trace.enabled then
    Trace.span_begin ~cat:"flat"
      ~args:[ ("method", Trace.Str m.Meth.name) ]
      "flatten";
  let p = Prog.of_meth m in
  Metrics.inc m_flatten;
  if !Trace.enabled then
    Trace.span_end ~cat:"flat"
      ~args:[ ("code_size", Trace.Int (Int64.of_int (Prog.code_size p))) ]
      "flatten";
  p

let get ?load ?save (m : Meth.t) =
  let tbl = Domain.DLS.get memo_key in
  let fuse = !fuse_flag in
  let key = (Meth.fingerprint m, fuse) in
  match Hashtbl.find_opt tbl key with
  | Some p ->
      Metrics.inc m_hits;
      p
  | None ->
      let base =
        match load with
        | None -> flatten m
        | Some f -> (
            match f () with
            | Some p ->
                Metrics.inc m_persist_loads;
                p
            | None ->
                let p = flatten m in
                (match save with Some s -> s p | None -> ());
                p)
      in
      let p = if fuse then Prog.fuse base else base in
      if p.Prog.fused_pairs > 0 then
        Metrics.add m_fused_sites p.Prog.fused_pairs;
      Hashtbl.replace tbl key p;
      p
