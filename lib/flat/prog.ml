(* Flat bytecode form of a method: the tree IL of an [Il.Meth] lowered
   to a single instruction array with resolved jump offsets, a constant
   pool of prebuilt values, and precomputed cycle charges.

   The lowering is cycle- and fuel-exact with respect to the tree
   walker [Vm.Interp.run]: every point where the tree walker decrements
   fuel or calls [ctx.charge] has a corresponding instruction here that
   does the same, in the same order.  Interior nodes emit a [Begin]
   prologue (one fuel event plus the node's dispatch+op charge) before
   their children, leaves carry their charge inline, and block entries
   emit [Enter] (fuel only) — so a trace of (fuel, charge) events is
   bit-identical between the two tiers, which is what keeps learned-
   model labels and the figures digest comparable. *)

module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Values = Tessera_vm.Values
module Cost = Tessera_vm.Cost
module H = Tessera_util.Hash64

type instr =
  (* fuel-event carriers: each mirrors exactly one fuel decrement of the
     tree walker (block entry or node pre-order visit) *)
  | Enter  (** block entry: fuel only, no charge *)
  | Begin of int  (** interior-node prologue: fuel + charge *)
  | Charge of int  (** charge without fuel (the If-terminator's 1 cycle) *)
  (* leaves: fuel + charge + push, in one dispatch *)
  | Const of int * int  (** charge, pool index *)
  | Load_local of int * int  (** charge, slot *)
  | Inc_local of int * int * int64 * Types.t  (** charge, slot, delta, ty *)
  | New_obj of int * int  (** charge, class id *)
  | Void_leaf of int  (** 0-arg Throw_op / Synchronization: push Void *)
  (* post-order actions: operands on the stack, no fuel/charge of their
     own (their node's charge was taken by the matching [Begin]) *)
  | Store_local of int * Types.t
  | Field_load of int
  | Field_store of int
  | Elem_load
  | Elem_store
  | Binop of Opcode.t * Types.t
  | Negate of Types.t
  | Cast_to of Opcode.cast_kind * Types.t
  | Checkcast of int
  | New_arr of Types.t
  | New_multi of Types.t
  | Instance_of of int
  | Monitor
  | Drop_void  (** 1-arg Throw_op: replace top with Void *)
  | Invoke of int * int  (** callee, argc; charges interp_call_overhead *)
  | Mixed of int * Types.t  (** argc, ty *)
  | Bounds_chk
  | Arr_copy
  | Arr_cmp
  | Arr_len
  | Pop  (** statement-result discard *)
  (* control *)
  | Jmp of int
  | Cond_br of int * int  (** pop; branch to fst if truthy else snd *)
  | Ret_void
  | Ret_val
  | Raise_user
  (* superinstructions: each executes the exact observable sequence of
     its two halves in one dispatch.  The fused instruction replaces the
     first slot; the second slot stays in place (never executed, never a
     jump target) so offsets need no relocation.  The pair selection is
     the static fusion table measured by [bench flat] — see [fuse]. *)
  | F_enter_begin of int
  | F_begin_begin of int * int
  | F_begin_load of int * int * int
  | F_begin_const of int * int * int
  | F_load_load of int * int * int * int
  | F_load_binop of int * int * Opcode.t * Types.t
  | F_const_binop of int * int * Opcode.t * Types.t
  | F_load_store of int * int * int * Types.t
  | F_binop_store of Opcode.t * Types.t * int * Types.t
  | F_store_pop of int * Types.t
  | F_inc_pop of int * int * int64 * Types.t
  | F_pop_begin of int
  | F_load_const of int * int * int * int
  | F_load_begin of int * int * int
  | F_binop_binop of Opcode.t * Types.t * Opcode.t * Types.t

type t = {
  method_name : string;
  instrs : instr array;
  pool : Values.t array;  (** prebuilt constants (Int_v / Float_v) *)
  block_of_pc : int array;  (** pc -> owning block, for trap dispatch *)
  block_entry : int array;  (** block id -> entry pc (an [Enter]) *)
  handler_of_block : int array;  (** -1 when the block has no handler *)
  local_types : Types.t array;
  local_is_arg : bool array;
  ret : Types.t;
  sync_charge : int;  (** synchronized-method prologue charge, else 0 *)
  max_stack : int;  (** verified operand-stack bound *)
  fused_pairs : int;  (** superinstruction sites (0 in the base form) *)
  source_fp : int64;  (** [Meth.fingerprint] of the source method *)
}

let code_size p = Array.length p.instrs

(* -- instruction kinds (for pair counting and hashing) -------------- *)

let kind = function
  | Enter -> 0
  | Begin _ -> 1
  | Charge _ -> 2
  | Const _ -> 3
  | Load_local _ -> 4
  | Inc_local _ -> 5
  | New_obj _ -> 6
  | Void_leaf _ -> 7
  | Store_local _ -> 8
  | Field_load _ -> 9
  | Field_store _ -> 10
  | Elem_load -> 11
  | Elem_store -> 12
  | Binop _ -> 13
  | Negate _ -> 14
  | Cast_to _ -> 15
  | Checkcast _ -> 16
  | New_arr _ -> 17
  | New_multi _ -> 18
  | Instance_of _ -> 19
  | Monitor -> 20
  | Drop_void -> 21
  | Invoke _ -> 22
  | Mixed _ -> 23
  | Bounds_chk -> 24
  | Arr_copy -> 25
  | Arr_cmp -> 26
  | Arr_len -> 27
  | Pop -> 28
  | Jmp _ -> 29
  | Cond_br _ -> 30
  | Ret_void -> 31
  | Ret_val -> 32
  | Raise_user -> 33
  | F_enter_begin _ -> 34
  | F_begin_begin _ -> 35
  | F_begin_load _ -> 36
  | F_begin_const _ -> 37
  | F_load_load _ -> 38
  | F_load_binop _ -> 39
  | F_const_binop _ -> 40
  | F_load_store _ -> 41
  | F_binop_store _ -> 42
  | F_store_pop _ -> 43
  | F_inc_pop _ -> 44
  | F_pop_begin _ -> 45
  | F_load_const _ -> 46
  | F_load_begin _ -> 47
  | F_binop_binop _ -> 48

let kind_count = 49

let kind_name = function
  | 0 -> "enter"
  | 1 -> "begin"
  | 2 -> "charge"
  | 3 -> "const"
  | 4 -> "load_local"
  | 5 -> "inc_local"
  | 6 -> "new_obj"
  | 7 -> "void_leaf"
  | 8 -> "store_local"
  | 9 -> "field_load"
  | 10 -> "field_store"
  | 11 -> "elem_load"
  | 12 -> "elem_store"
  | 13 -> "binop"
  | 14 -> "negate"
  | 15 -> "cast_to"
  | 16 -> "checkcast"
  | 17 -> "new_arr"
  | 18 -> "new_multi"
  | 19 -> "instance_of"
  | 20 -> "monitor"
  | 21 -> "drop_void"
  | 22 -> "invoke"
  | 23 -> "mixed"
  | 24 -> "bounds_chk"
  | 25 -> "arr_copy"
  | 26 -> "arr_cmp"
  | 27 -> "arr_len"
  | 28 -> "pop"
  | 29 -> "jmp"
  | 30 -> "cond_br"
  | 31 -> "ret_void"
  | 32 -> "ret_val"
  | 33 -> "raise_user"
  | 34 -> "f_enter_begin"
  | 35 -> "f_begin_begin"
  | 36 -> "f_begin_load"
  | 37 -> "f_begin_const"
  | 38 -> "f_load_load"
  | 39 -> "f_load_binop"
  | 40 -> "f_const_binop"
  | 41 -> "f_load_store"
  | 42 -> "f_binop_store"
  | 43 -> "f_store_pop"
  | 44 -> "f_inc_pop"
  | 45 -> "f_pop_begin"
  | 46 -> "f_load_const"
  | 47 -> "f_load_begin"
  | 48 -> "f_binop_binop"
  | _ -> "?"

(* Superinstructions occupy two slots: the fused op plus the dead slot
   of its second half, skipped at execution and verification time. *)
let width i = if kind i >= 34 then 2 else 1

(* -- verifier -------------------------------------------------------
   Mirrors [Il.Validate]'s role for tree IL: structural soundness of the
   flat form, checked after lowering, after fusion, and after decoding a
   persisted form.  Also computes the exact operand-stack bound so the
   interpreter can allocate a fixed-size stack with no overflow check. *)

(* pops, pushes *)
let stack_io = function
  | Enter | Begin _ | Charge _ -> (0, 0)
  | Const _ | Load_local _ | Inc_local _ | New_obj _ | Void_leaf _ -> (0, 1)
  | Store_local _ | Field_load _ | Negate _ | Cast_to _ | Checkcast _
  | New_arr _ | Instance_of _ | Monitor | Drop_void | Arr_len ->
      (1, 1)
  | Field_store _ | Elem_load | Binop _ | New_multi _ | Arr_cmp | Bounds_chk
    ->
      (2, 1)
  | Elem_store | Arr_copy -> (3, 1)
  | Invoke (_, argc) | Mixed (argc, _) -> (argc, 1)
  | Pop -> (1, 0)
  | Jmp _ -> (0, 0)
  | Cond_br _ -> (1, 0)
  | Ret_void -> (0, 0)
  | Ret_val | Raise_user -> (1, 0)
  | F_enter_begin _ | F_begin_begin _ | F_inc_pop _ -> (0, 0)
  | F_begin_load _ | F_begin_const _ | F_load_store _ -> (0, 1)
  | F_load_load _ | F_load_const _ -> (0, 2)
  | F_load_begin _ -> (0, 1)
  | F_load_binop _ | F_const_binop _ -> (1, 1)
  | F_binop_store _ -> (2, 1)
  | F_binop_binop _ -> (3, 1)
  | F_store_pop _ | F_pop_begin _ -> (1, 0)

let is_terminator = function
  | Jmp _ | Cond_br _ | Ret_void | Ret_val | Raise_user -> true
  | _ -> false

let verify p =
  let n = Array.length p.instrs in
  let nb = Array.length p.block_entry in
  let nloc = Array.length p.local_types in
  let npool = Array.length p.pool in
  let err fmt = Printf.ksprintf (fun s -> Error (p.method_name ^ ": " ^ s)) fmt in
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    if n = 0 then bad "empty code";
    if Array.length p.block_of_pc <> n then bad "block_of_pc length";
    if Array.length p.handler_of_block <> nb then bad "handler_of_block length";
    if Array.length p.local_is_arg <> nloc then bad "local_is_arg length";
    let entry_set = Array.make n false in
    Array.iteri
      (fun b e ->
        if e < 0 || e >= n then bad "block %d entry %d out of range" b e;
        (match p.instrs.(e) with
        | Enter | F_enter_begin _ -> ()
        | _ -> bad "block %d entry is not Enter" b);
        entry_set.(e) <- true)
      p.block_entry;
    Array.iteri
      (fun b h ->
        if h < -1 || h >= nb then bad "block %d handler %d out of range" b h)
      p.handler_of_block;
    let check_slot what s =
      if s < 0 || s >= nloc then bad "%s: slot %d out of range" what s
    in
    let check_pool k =
      if k < 0 || k >= npool then bad "pool index %d out of range" k
    in
    let check_target t =
      if t < 0 || t >= n then bad "jump target %d out of range" t;
      if not entry_set.(t) then bad "jump target %d is not a block entry" t
    in
    let check_operands = function
      | Const (_, k) | F_begin_const (_, _, k) -> check_pool k
      | Load_local (_, s) | Inc_local (_, s, _, _) | Store_local (s, _)
      | F_store_pop (s, _) | F_inc_pop (_, s, _, _) | F_begin_load (_, _, s)
      | F_load_binop (_, s, _, _) | F_load_begin (_, s, _) ->
          check_slot "local" s
      | F_load_const (_, s, _, k) ->
          check_slot "local" s;
          check_pool k
      | F_load_load (_, s1, _, s2) | F_load_store (_, s1, s2, _) ->
          check_slot "local" s1;
          check_slot "local" s2
      | F_binop_store (_, _, s, _) -> check_slot "local" s
      | F_const_binop (_, k, _, _) -> check_pool k
      | Invoke (_, argc) | Mixed (argc, _) ->
          if argc < 0 then bad "negative arity"
      | Jmp t -> check_target t
      | Cond_br (t, f) ->
          check_target t;
          check_target f
      | _ -> ()
    in
    let max_depth = ref 0 in
    for b = 0 to nb - 1 do
      let start = p.block_entry.(b) in
      let stop = if b + 1 < nb then p.block_entry.(b + 1) else n in
      if stop <= start then bad "block %d is empty" b;
      let depth = ref 0 in
      let i = ref start in
      let terminated = ref false in
      while !i < stop do
        if !terminated then bad "code after terminator in block %d" b;
        let ins = p.instrs.(!i) in
        if p.block_of_pc.(!i) <> b then bad "block_of_pc mismatch at %d" !i;
        check_operands ins;
        let pops, pushes = stack_io ins in
        if !depth < pops then bad "stack underflow at %d" !i;
        depth := !depth - pops + pushes;
        if !depth > !max_depth then max_depth := !depth;
        if is_terminator ins then begin
          terminated := true;
          if !depth <> 0 then bad "nonzero stack depth (%d) at terminator" !depth
        end;
        i := !i + width ins
      done;
      if not !terminated then bad "block %d does not end in a terminator" b
    done;
    Ok !max_depth
  with Bad s -> err "%s" s

(* -- lowering ------------------------------------------------------- *)

let node_charge (n : Node.t) = Cost.interp_dispatch + Cost.op_base n.op n.ty

let of_meth (m : Meth.t) =
  let buf = ref [] in
  let bobs = ref [] in
  let len = ref 0 in
  let cur_block = ref 0 in
  let emit i =
    buf := i :: !buf;
    bobs := !cur_block :: !bobs;
    incr len
  in
  let pool = ref [] in
  let pool_len = ref 0 in
  let pool_memo = Hashtbl.create 16 in
  let pool_idx v =
    match Hashtbl.find_opt pool_memo v with
    | Some k -> k
    | None ->
        let k = !pool_len in
        pool := v :: !pool;
        incr pool_len;
        Hashtbl.add pool_memo v k;
        k
  in
  let sym_ty s = m.Meth.symbols.(s).Symbol.ty in
  let rec emit_node (n : Node.t) =
    let c = node_charge n in
    let a k = emit_node n.args.(k) in
    match n.op with
    | Opcode.Loadconst ->
        let v =
          if Types.is_floating n.ty then Values.Float_v (Node.const_float n)
          else Values.Int_v n.const
        in
        emit (Const (c, pool_idx v))
    | Opcode.Load -> (
        match Array.length n.args with
        | 0 -> emit (Load_local (c, n.sym))
        | 1 ->
            emit (Begin (c + 2));
            a 0;
            emit (Field_load n.sym)
        | _ ->
            emit (Begin (c + 3));
            a 0;
            a 1;
            emit Elem_load)
    | Opcode.Store -> (
        match Array.length n.args with
        | 1 ->
            emit (Begin c);
            a 0;
            emit (Store_local (n.sym, sym_ty n.sym))
        | 2 ->
            emit (Begin (c + 2));
            a 0;
            a 1;
            emit (Field_store n.sym)
        | _ ->
            emit (Begin (c + 3));
            a 0;
            a 1;
            a 2;
            emit Elem_store)
    | Opcode.Inc -> emit (Inc_local (c, n.sym, n.const, sym_ty n.sym))
    | Opcode.Neg ->
        emit (Begin c);
        a 0;
        emit (Negate n.ty)
    | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
    | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Shift _ | Opcode.Compare _
      ->
        emit (Begin c);
        a 0;
        a 1;
        emit (Binop (n.op, n.ty))
    | Opcode.Cast Opcode.C_check ->
        emit (Begin c);
        a 0;
        emit (Checkcast n.sym)
    | Opcode.Cast k ->
        emit (Begin c);
        a 0;
        emit (Cast_to (k, n.ty))
    | Opcode.New -> emit (New_obj (c, n.sym))
    | Opcode.Newarray ->
        emit (Begin c);
        a 0;
        emit (New_arr (Types.of_index n.sym))
    | Opcode.Newmultiarray ->
        emit (Begin c);
        a 0;
        a 1;
        emit (New_multi (Types.of_index n.sym))
    | Opcode.Instanceof ->
        emit (Begin c);
        a 0;
        emit (Instance_of n.sym)
    | Opcode.Synchronization _ ->
        if Array.length n.args > 0 then begin
          emit (Begin c);
          a 0;
          emit Monitor
        end
        else emit (Void_leaf c)
    | Opcode.Throw_op ->
        if Array.length n.args > 0 then begin
          emit (Begin c);
          a 0;
          emit Drop_void
        end
        else emit (Void_leaf c)
    | Opcode.Branch_op ->
        (* the child's value is the node's value *)
        emit (Begin c);
        a 0
    | Opcode.Call ->
        emit (Begin c);
        Array.iter emit_node n.args;
        emit (Invoke (n.sym, Array.length n.args))
    | Opcode.Arrayop Opcode.Bounds_check ->
        emit (Begin c);
        a 0;
        a 1;
        emit Bounds_chk
    | Opcode.Arrayop Opcode.Array_copy ->
        emit (Begin c);
        a 0;
        a 1;
        a 2;
        emit Arr_copy
    | Opcode.Arrayop Opcode.Array_cmp ->
        emit (Begin c);
        a 0;
        a 1;
        emit Arr_cmp
    | Opcode.Arrayop Opcode.Array_length ->
        emit (Begin c);
        a 0;
        emit Arr_len
    | Opcode.Mixedop ->
        emit (Begin c);
        Array.iter emit_node n.args;
        emit (Mixed (Array.length n.args, n.ty))
  in
  let nb = Array.length m.Meth.blocks in
  let block_entry = Array.make nb 0 in
  Array.iteri
    (fun bi (b : Block.t) ->
      cur_block := bi;
      block_entry.(bi) <- !len;
      emit Enter;
      List.iter
        (fun s ->
          emit_node s;
          emit Pop)
        b.Block.stmts;
      match b.Block.term with
      | Block.Goto t -> emit (Jmp t) (* block id; patched below *)
      | Block.If { cond; if_true; if_false } ->
          emit (Charge 1);
          emit_node cond;
          emit (Cond_br (if_true, if_false))
      | Block.Return None -> emit Ret_void
      | Block.Return (Some v) ->
          emit_node v;
          emit Ret_val
      | Block.Throw v ->
          emit_node v;
          emit Raise_user)
    m.Meth.blocks;
  let instrs = Array.of_list (List.rev !buf) in
  let block_of_pc = Array.of_list (List.rev !bobs) in
  (* resolve block ids to entry pcs *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Jmp b -> instrs.(i) <- Jmp block_entry.(b)
      | Cond_br (t, f) -> instrs.(i) <- Cond_br (block_entry.(t), block_entry.(f))
      | _ -> ())
    instrs;
  let handler_of_block =
    Array.map
      (fun (b : Block.t) ->
        match b.Block.handler with None -> -1 | Some h -> h)
      m.Meth.blocks
  in
  let p =
    {
      method_name = m.Meth.name;
      instrs;
      pool = Array.of_list (List.rev !pool);
      block_of_pc;
      block_entry;
      handler_of_block;
      local_types = Array.map (fun (s : Symbol.t) -> s.Symbol.ty) m.Meth.symbols;
      local_is_arg =
        Array.map (fun (s : Symbol.t) -> s.Symbol.kind = Symbol.Arg) m.Meth.symbols;
      ret = m.Meth.ret;
      sync_charge =
        (if m.Meth.attrs.Meth.synchronized then
           2
           * Cost.op_base
               (Opcode.Synchronization Opcode.Monitor_enter)
               Types.Object_
         else 0);
      max_stack = 0;
      fused_pairs = 0;
      source_fp = Meth.fingerprint m;
    }
  in
  match verify p with
  | Ok max_stack -> { p with max_stack }
  | Error e -> invalid_arg ("Flat.Prog.of_meth: " ^ e)

(* -- superinstruction fusion ----------------------------------------
   The pair table below is static but measured: `bench flat` counts
   dynamically executed (kind, next kind) pairs over the standard
   workload mix via [Interp.run_counted], and these fifteen are the
   hottest pairs of that census (see DESIGN.md §12).  Fusion requires
   the second slot not to be a jump target; since every branch in a
   flat program lands on a block-entry [Enter], checking the entry set
   suffices. *)

let fuse p =
  let n = Array.length p.instrs in
  let is_entry = Array.make (n + 1) false in
  Array.iter (fun e -> is_entry.(e) <- true) p.block_entry;
  let out = Array.copy p.instrs in
  let fused = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    let next = !i + 1 in
    let pair =
      if is_entry.(next) then None
      else
        match (p.instrs.(!i), p.instrs.(next)) with
        | Enter, Begin c -> Some (F_enter_begin c)
        | Begin c1, Begin c2 -> Some (F_begin_begin (c1, c2))
        | Begin c1, Load_local (c2, s) -> Some (F_begin_load (c1, c2, s))
        | Begin c1, Const (c2, k) -> Some (F_begin_const (c1, c2, k))
        | Load_local (c1, s1), Load_local (c2, s2) ->
            Some (F_load_load (c1, s1, c2, s2))
        | Load_local (c, s), Binop (op, ty) -> Some (F_load_binop (c, s, op, ty))
        | Const (c, k), Binop (op, ty) -> Some (F_const_binop (c, k, op, ty))
        | Load_local (c, src), Store_local (dst, dty) ->
            Some (F_load_store (c, src, dst, dty))
        | Binop (op, ty), Store_local (dst, dty) ->
            Some (F_binop_store (op, ty, dst, dty))
        | Store_local (s, ty), Pop -> Some (F_store_pop (s, ty))
        | Inc_local (c, s, d, ty), Pop -> Some (F_inc_pop (c, s, d, ty))
        | Pop, Begin c -> Some (F_pop_begin c)
        | Load_local (c1, s), Const (c2, k) -> Some (F_load_const (c1, s, c2, k))
        | Load_local (c1, s), Begin c2 -> Some (F_load_begin (c1, s, c2))
        | Binop (op1, ty1), Binop (op2, ty2) ->
            Some (F_binop_binop (op1, ty1, op2, ty2))
        | _ -> None
    in
    match pair with
    | Some f ->
        out.(!i) <- f;
        incr fused;
        i := !i + 2
    | None -> incr i
  done;
  { p with instrs = out; fused_pairs = p.fused_pairs + !fused }

(* -- identity -------------------------------------------------------
   A stable hash of the whole flat form, used as the integrity check of
   the binary codec and as a cheap identity for the flat array (the
   memoized [Meth.fingerprint] keys the cache; this guards the bytes). *)

let hash_instr acc ins =
  let acc = H.byte acc (kind ins) in
  match ins with
  | Enter | Elem_load | Elem_store | Monitor | Drop_void | Bounds_chk
  | Arr_copy | Arr_cmp | Arr_len | Pop | Ret_void | Ret_val | Raise_user ->
      acc
  | Begin c | Charge c | Void_leaf c | F_enter_begin c | F_pop_begin c ->
      H.int acc c
  | Const (c, k) -> H.int (H.int acc c) k
  | Load_local (c, s) -> H.int (H.int acc c) s
  | Inc_local (c, s, d, ty) ->
      H.int (H.int64 (H.int (H.int acc c) s) d) (Types.index ty)
  | New_obj (c, cls) -> H.int (H.int acc c) cls
  | Store_local (s, ty) -> H.int (H.int acc s) (Types.index ty)
  | Field_load f | Field_store f | Checkcast f | Instance_of f -> H.int acc f
  | Binop (op, ty) -> H.int (H.string acc (Opcode.name op)) (Types.index ty)
  | Negate ty | New_arr ty | New_multi ty -> H.int acc (Types.index ty)
  | Cast_to (k, ty) ->
      H.int (H.string acc (Opcode.name (Opcode.Cast k))) (Types.index ty)
  | Invoke (callee, argc) -> H.int (H.int acc callee) argc
  | Mixed (argc, ty) -> H.int (H.int acc argc) (Types.index ty)
  | Jmp t -> H.int acc t
  | Cond_br (t, f) -> H.int (H.int acc t) f
  | F_begin_begin (c1, c2) -> H.int (H.int acc c1) c2
  | F_begin_load (c1, c2, s) | F_begin_const (c1, c2, s) ->
      H.int (H.int (H.int acc c1) c2) s
  | F_load_load (c1, s1, c2, s2) ->
      H.int (H.int (H.int (H.int acc c1) s1) c2) s2
  | F_load_binop (c, s, op, ty) | F_const_binop (c, s, op, ty) ->
      H.int (H.string (H.int (H.int acc c) s) (Opcode.name op)) (Types.index ty)
  | F_load_store (c, src, dst, ty) ->
      H.int (H.int (H.int (H.int acc c) src) dst) (Types.index ty)
  | F_binop_store (op, ty, dst, dty) ->
      H.int
        (H.int (H.int (H.string acc (Opcode.name op)) (Types.index ty)) dst)
        (Types.index dty)
  | F_store_pop (s, ty) -> H.int (H.int acc s) (Types.index ty)
  | F_inc_pop (c, s, d, ty) ->
      H.int (H.int64 (H.int (H.int acc c) s) d) (Types.index ty)
  | F_load_const (c1, s, c2, k) ->
      H.int (H.int (H.int (H.int acc c1) s) c2) k
  | F_load_begin (c1, s, c2) -> H.int (H.int (H.int acc c1) s) c2
  | F_binop_binop (op1, ty1, op2, ty2) ->
      H.int
        (H.string
           (H.int (H.string acc (Opcode.name op1)) (Types.index ty1))
           (Opcode.name op2))
        (Types.index ty2)

let hash p =
  let acc = H.string H.init p.method_name in
  let acc = Array.fold_left hash_instr acc p.instrs in
  let acc =
    Array.fold_left
      (fun acc v ->
        match v with
        | Values.Int_v i -> H.int64 (H.byte acc 0) i
        | Values.Float_v f -> H.int64 (H.byte acc 1) (Int64.bits_of_float f)
        | _ -> H.byte acc 2)
      acc p.pool
  in
  let acc = Array.fold_left H.int acc p.block_entry in
  let acc = Array.fold_left H.int acc p.handler_of_block in
  let acc =
    Array.fold_left (fun acc ty -> H.int acc (Types.index ty)) acc p.local_types
  in
  let acc = Array.fold_left H.bool acc p.local_is_arg in
  let acc = H.int acc (Types.index p.ret) in
  let acc = H.int acc p.sync_charge in
  H.int64 acc p.source_fp
