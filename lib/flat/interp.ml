(* Non-recursive dispatch loop over the flat form.

   Observable behaviour — returned value, raised trap, every ctx.charge
   amount and every fuel decrement, in order — is bit-identical to the
   tree walker [Vm.Interp.run] on the same method.  The win is purely
   host-side: no closure recursion, no per-node allocation, operands on
   a preallocated stack sized by the verifier.

   Fuel follows the check-then-decrement discipline of Vm.Interp (a
   caller granting n fuel executes exactly n fuel-charging steps).
   Superinstructions whose two halves both consume fuel take a merged
   fast path when fuel is plentiful and fall back to the exact unfused
   event sequence near exhaustion, so the out-of-fuel point and the
   cycles charged before it never differ from the tree walker. *)

module Values = Tessera_vm.Values
module Semantics = Tessera_vm.Semantics
module Cost = Tessera_vm.Cost
module Vm_interp = Tessera_vm.Interp
module Trace = Tessera_obs.Trace
module Profile = Tessera_obs.Profile
open Values

type context = Vm_interp.context

let run (ctx : context) (p : Prog.t) args =
  let nloc = Array.length p.local_types in
  let env = Array.make nloc Void_v in
  for i = 0 to nloc - 1 do
    if i < Array.length args && p.local_is_arg.(i) then
      env.(i) <- Semantics.store_coerce p.local_types.(i) args.(i)
    else env.(i) <- default p.local_types.(i)
  done;
  let stack = Array.make (if p.max_stack < 1 then 1 else p.max_stack) Void_v in
  let sp = ref 0 in
  (* the verifier bounds every stack index by [max_stack], every pc by
     the terminator discipline: unchecked accesses are safe here *)
  let[@inline] push v =
    Array.unsafe_set stack !sp v;
    incr sp
  in
  let[@inline] pop () =
    decr sp;
    Array.unsafe_get stack !sp
  in
  let fuel = ctx.Vm_interp.fuel in
  let[@inline] fuel_event () =
    if !fuel <= 0 then raise Vm_interp.Out_of_fuel;
    decr fuel
  in
  let instrs = p.instrs in
  let pool = p.pool in
  let classes = ctx.Vm_interp.classes in
  let pc = ref 0 in
  let cur = ref 0 in
  let steps = ref 0 in
  (* the charge closure is selected once per run: with the profiler off
     the hot loop pays exactly one branch here; with it on, every
     charged cycle is attributed to the instruction at [cur] *)
  let charge =
    if !Profile.enabled then (fun c ->
      Profile.charge ~meth:p.method_name
        ~block:(Array.unsafe_get p.block_of_pc !cur)
        ~op:(Prog.kind_name (Prog.kind (Array.unsafe_get instrs !cur)))
        c;
      ctx.Vm_interp.charge c)
    else ctx.Vm_interp.charge
  in
  if p.sync_charge > 0 then charge p.sync_charge;
  let result = ref Void_v in
  let running = ref true in
  (* the trap handler lives outside the dispatch loop — zero cost per
     instruction — and re-enters it after redirecting to a handler
     block; [cur] remembers the faulting instruction *)
  let rec dispatch () =
    try
      while !running do
        let this_pc = !pc in
        cur := this_pc;
        pc := this_pc + 1;
        if !Trace.enabled then begin
          incr steps;
          if !steps land 0xFFFF = 0 then
            Trace.instant ~cat:"flat"
              ~args:[ ("executed", Trace.Int (Int64.of_int !steps)) ]
              "dispatch"
        end;
        match Array.unsafe_get instrs this_pc with
      | Prog.Enter -> fuel_event ()
      | Prog.Begin c ->
          fuel_event ();
          charge c
      | Prog.Charge c -> charge c
      | Prog.Const (c, k) ->
          fuel_event ();
          charge c;
          push pool.(k)
      | Prog.Load_local (c, s) ->
          fuel_event ();
          charge c;
          push env.(s)
      | Prog.Inc_local (c, s, d, ty) ->
          fuel_event ();
          charge c;
          env.(s) <- Int_v (truncate ty (Int64.add (as_int env.(s)) d));
          push Void_v
      | Prog.New_obj (c, cls) ->
          fuel_event ();
          charge c;
          push (Semantics.new_obj ~classes cls)
      | Prog.Void_leaf c ->
          fuel_event ();
          charge c;
          push Void_v
      | Prog.Store_local (s, ty) ->
          env.(s) <- Semantics.store_coerce ty (pop ());
          push Void_v
      | Prog.Field_load f -> push (Semantics.field_load (pop ()) f)
      | Prog.Field_store f ->
          let v = pop () in
          let o = pop () in
          Semantics.field_store o f v;
          push Void_v
      | Prog.Elem_load ->
          let i = pop () in
          let a = pop () in
          push (Semantics.elem_load a i)
      | Prog.Elem_store ->
          let v = pop () in
          let i = pop () in
          let a = pop () in
          Semantics.elem_store a i v;
          push Void_v
      | Prog.Binop (op, ty) ->
          let b = pop () in
          let a = pop () in
          push (Semantics.binop op ty a b)
      | Prog.Negate ty -> push (Semantics.neg ty (pop ()))
      | Prog.Cast_to (k, ty) -> push (Semantics.cast k ty (pop ()))
      | Prog.Checkcast cls -> push (Semantics.checkcast ~classes cls (pop ()))
      | Prog.New_arr ty -> push (Semantics.new_array ~elem:ty (pop ()))
      | Prog.New_multi ty ->
          let d2 = pop () in
          let d1 = pop () in
          push (Semantics.new_multiarray ~elem:ty d1 d2)
      | Prog.Instance_of cls ->
          push (Semantics.instanceof ~classes cls (pop ()))
      | Prog.Monitor ->
          Semantics.monitor stack.(!sp - 1);
          stack.(!sp - 1) <- Void_v
      | Prog.Drop_void -> stack.(!sp - 1) <- Void_v
      | Prog.Invoke (callee, argc) ->
          sp := !sp - argc;
          let actuals = Array.sub stack !sp argc in
          charge Cost.interp_call_overhead;
          push (ctx.Vm_interp.invoke callee actuals)
      | Prog.Mixed (argc, ty) ->
          sp := !sp - argc;
          let actuals = Array.sub stack !sp argc in
          push (Semantics.mixed ty actuals)
      | Prog.Bounds_chk ->
          let i = pop () in
          let a = pop () in
          Semantics.bounds_check a i;
          push Void_v
      | Prog.Arr_copy ->
          let l = pop () in
          let d = pop () in
          let s = pop () in
          let copied = Semantics.array_copy s d l in
          charge (copied * Cost.per_element_copy);
          push Void_v
      | Prog.Arr_cmp ->
          let b = pop () in
          let a = pop () in
          let r, inspected = Semantics.array_cmp a b in
          charge (inspected * Cost.per_element_copy);
          push r
      | Prog.Arr_len -> push (Semantics.array_length (pop ()))
      | Prog.Pop -> decr sp
      | Prog.Jmp t -> pc := t
      | Prog.Cond_br (t, f) -> pc := (if is_truthy (pop ()) then t else f)
      | Prog.Ret_void -> running := false
      | Prog.Ret_val ->
          result := Semantics.store_coerce p.ret (pop ());
          running := false
      | Prog.Raise_user -> raise (Trap User_exception)
      (* superinstructions: exact two-half sequences in one dispatch *)
      | Prog.F_enter_begin c ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge c
          end
          else begin
            fuel_event ();
            fuel_event ();
            charge c
          end
      | Prog.F_begin_begin (c1, c2) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2)
          end
          else begin
            fuel_event ();
            charge c1;
            fuel_event ();
            charge c2
          end
      | Prog.F_begin_load (c1, c2, s) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2)
          end
          else begin
            fuel_event ();
            charge c1;
            fuel_event ();
            charge c2
          end;
          push env.(s)
      | Prog.F_begin_const (c1, c2, k) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2)
          end
          else begin
            fuel_event ();
            charge c1;
            fuel_event ();
            charge c2
          end;
          push pool.(k)
      | Prog.F_load_load (c1, s1, c2, s2) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2);
            push env.(s1);
            push env.(s2)
          end
          else begin
            fuel_event ();
            charge c1;
            push env.(s1);
            fuel_event ();
            charge c2;
            push env.(s2)
          end
      | Prog.F_load_binop (c, s, op, ty) ->
          pc := this_pc + 2;
          fuel_event ();
          charge c;
          let a = pop () in
          push (Semantics.binop op ty a env.(s))
      | Prog.F_const_binop (c, k, op, ty) ->
          pc := this_pc + 2;
          fuel_event ();
          charge c;
          let a = pop () in
          push (Semantics.binop op ty a pool.(k))
      | Prog.F_load_store (c, src, dst, dty) ->
          pc := this_pc + 2;
          fuel_event ();
          charge c;
          env.(dst) <- Semantics.store_coerce dty env.(src);
          push Void_v
      | Prog.F_binop_store (op, ty, dst, dty) ->
          pc := this_pc + 2;
          let b = pop () in
          let a = pop () in
          env.(dst) <- Semantics.store_coerce dty (Semantics.binop op ty a b);
          push Void_v
      | Prog.F_store_pop (s, ty) ->
          pc := this_pc + 2;
          env.(s) <- Semantics.store_coerce ty (pop ())
      | Prog.F_inc_pop (c, s, d, ty) ->
          pc := this_pc + 2;
          fuel_event ();
          charge c;
          env.(s) <- Int_v (truncate ty (Int64.add (as_int env.(s)) d))
      | Prog.F_pop_begin c ->
          pc := this_pc + 2;
          decr sp;
          fuel_event ();
          charge c
      | Prog.F_load_const (c1, s, c2, k) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2);
            push env.(s);
            push pool.(k)
          end
          else begin
            fuel_event ();
            charge c1;
            push env.(s);
            fuel_event ();
            charge c2;
            push pool.(k)
          end
      | Prog.F_load_begin (c1, s, c2) ->
          pc := this_pc + 2;
          if !fuel > 1 then begin
            fuel := !fuel - 2;
            charge (c1 + c2);
            push env.(s)
          end
          else begin
            fuel_event ();
            charge c1;
            push env.(s);
            fuel_event ();
            charge c2
          end
      | Prog.F_binop_binop (op1, ty1, op2, ty2) ->
          pc := this_pc + 2;
          let b = pop () in
          let a = pop () in
          let r = Semantics.binop op1 ty1 a b in
          let a2 = pop () in
          push (Semantics.binop op2 ty2 a2 r)
      done
    with Trap k ->
      charge Cost.exception_unwind;
      let h = p.handler_of_block.(p.block_of_pc.(!cur)) in
      if h < 0 then raise (Trap k)
      else begin
        sp := 0;
        pc := p.block_entry.(h);
        dispatch ()
      end
  in
  dispatch ();
  !result

(* A separate dispatch loop that additionally tallies executed
   (kind, next-kind) pairs — the census behind the static fusion table.
   Kept out of [run] so the hot loop carries no counting overhead; only
   `bench flat` uses this.  Accepts unfused programs only. *)
let run_counted ~pairs (ctx : context) (p : Prog.t) args =
  if p.fused_pairs > 0 then
    invalid_arg "Flat.Interp.run_counted: program already fused";
  if Array.length pairs <> Prog.kind_count * Prog.kind_count then
    invalid_arg "Flat.Interp.run_counted: bad pair matrix";
  let nloc = Array.length p.local_types in
  let env = Array.make nloc Void_v in
  for i = 0 to nloc - 1 do
    if i < Array.length args && p.local_is_arg.(i) then
      env.(i) <- Semantics.store_coerce p.local_types.(i) args.(i)
    else env.(i) <- default p.local_types.(i)
  done;
  let stack = Array.make (if p.max_stack < 1 then 1 else p.max_stack) Void_v in
  let sp = ref 0 in
  let push v =
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    decr sp;
    stack.(!sp)
  in
  let fuel = ctx.Vm_interp.fuel in
  let charge = ctx.Vm_interp.charge in
  let fuel_event () =
    if !fuel <= 0 then raise Vm_interp.Out_of_fuel;
    decr fuel
  in
  if p.sync_charge > 0 then charge p.sync_charge;
  let instrs = p.instrs in
  let pool = p.pool in
  let classes = ctx.Vm_interp.classes in
  let pc = ref 0 in
  let prev = ref (-1) in
  let result = ref Void_v in
  let running = ref true in
  while !running do
    let this_pc = !pc in
    pc := this_pc + 1;
    let k = Prog.kind instrs.(this_pc) in
    if !prev >= 0 then begin
      let cell = (!prev * Prog.kind_count) + k in
      pairs.(cell) <- pairs.(cell) + 1
    end;
    prev := k;
    try
      match instrs.(this_pc) with
      | Prog.Enter -> fuel_event ()
      | Prog.Begin c ->
          fuel_event ();
          charge c
      | Prog.Charge c -> charge c
      | Prog.Const (c, kk) ->
          fuel_event ();
          charge c;
          push pool.(kk)
      | Prog.Load_local (c, s) ->
          fuel_event ();
          charge c;
          push env.(s)
      | Prog.Inc_local (c, s, d, ty) ->
          fuel_event ();
          charge c;
          env.(s) <- Int_v (truncate ty (Int64.add (as_int env.(s)) d));
          push Void_v
      | Prog.New_obj (c, cls) ->
          fuel_event ();
          charge c;
          push (Semantics.new_obj ~classes cls)
      | Prog.Void_leaf c ->
          fuel_event ();
          charge c;
          push Void_v
      | Prog.Store_local (s, ty) ->
          env.(s) <- Semantics.store_coerce ty (pop ());
          push Void_v
      | Prog.Field_load f -> push (Semantics.field_load (pop ()) f)
      | Prog.Field_store f ->
          let v = pop () in
          let o = pop () in
          Semantics.field_store o f v;
          push Void_v
      | Prog.Elem_load ->
          let i = pop () in
          let a = pop () in
          push (Semantics.elem_load a i)
      | Prog.Elem_store ->
          let v = pop () in
          let i = pop () in
          let a = pop () in
          Semantics.elem_store a i v;
          push Void_v
      | Prog.Binop (op, ty) ->
          let b = pop () in
          let a = pop () in
          push (Semantics.binop op ty a b)
      | Prog.Negate ty -> push (Semantics.neg ty (pop ()))
      | Prog.Cast_to (k, ty) -> push (Semantics.cast k ty (pop ()))
      | Prog.Checkcast cls -> push (Semantics.checkcast ~classes cls (pop ()))
      | Prog.New_arr ty -> push (Semantics.new_array ~elem:ty (pop ()))
      | Prog.New_multi ty ->
          let d2 = pop () in
          let d1 = pop () in
          push (Semantics.new_multiarray ~elem:ty d1 d2)
      | Prog.Instance_of cls ->
          push (Semantics.instanceof ~classes cls (pop ()))
      | Prog.Monitor ->
          Semantics.monitor stack.(!sp - 1);
          stack.(!sp - 1) <- Void_v
      | Prog.Drop_void -> stack.(!sp - 1) <- Void_v
      | Prog.Invoke (callee, argc) ->
          sp := !sp - argc;
          let actuals = Array.sub stack !sp argc in
          charge Cost.interp_call_overhead;
          push (ctx.Vm_interp.invoke callee actuals)
      | Prog.Mixed (argc, ty) ->
          sp := !sp - argc;
          let actuals = Array.sub stack !sp argc in
          push (Semantics.mixed ty actuals)
      | Prog.Bounds_chk ->
          let i = pop () in
          let a = pop () in
          Semantics.bounds_check a i;
          push Void_v
      | Prog.Arr_copy ->
          let l = pop () in
          let d = pop () in
          let s = pop () in
          let copied = Semantics.array_copy s d l in
          charge (copied * Cost.per_element_copy);
          push Void_v
      | Prog.Arr_cmp ->
          let b = pop () in
          let a = pop () in
          let r, inspected = Semantics.array_cmp a b in
          charge (inspected * Cost.per_element_copy);
          push r
      | Prog.Arr_len -> push (Semantics.array_length (pop ()))
      | Prog.Pop -> decr sp
      | Prog.Jmp t -> pc := t
      | Prog.Cond_br (t, f) -> pc := (if is_truthy (pop ()) then t else f)
      | Prog.Ret_void -> running := false
      | Prog.Ret_val ->
          result := Semantics.store_coerce p.ret (pop ());
          running := false
      | Prog.Raise_user -> raise (Trap User_exception)
      | Prog.F_enter_begin _ | Prog.F_begin_begin _ | Prog.F_begin_load _
      | Prog.F_begin_const _ | Prog.F_load_load _ | Prog.F_load_binop _
      | Prog.F_const_binop _ | Prog.F_load_store _ | Prog.F_binop_store _
      | Prog.F_store_pop _ | Prog.F_inc_pop _ | Prog.F_pop_begin _
      | Prog.F_load_const _ | Prog.F_load_begin _ | Prog.F_binop_binop _ ->
          assert false
    with Trap k ->
      charge Cost.exception_unwind;
      let h = p.handler_of_block.(p.block_of_pc.(this_pc)) in
      if h < 0 then raise (Trap k)
      else begin
        sp := 0;
        pc := p.block_entry.(h)
      end
  done;
  !result
