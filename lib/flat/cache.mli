(** Process-wide flat-form cache and tier toggles.

    [get] returns the memoized flat form of a method (keyed by the
    memoized [Meth.fingerprint] and the current fusion setting),
    flattening lazily on first use.  The memo is domain-local, so the
    interpreter hot path never takes a lock.  [load]/[save] optionally
    bridge to a persistent store (the code cache): [load] is consulted
    on memo miss before flattening, [save] is called with the freshly
    flattened {e unfused} base form. *)

val enabled : unit -> bool
(** The [--no-flat] escape hatch: when false, engines fall back to the
    tree walker. *)

val set_enabled : bool -> unit

val fuse_enabled : unit -> bool
val set_fuse : bool -> unit

val get :
  ?load:(unit -> Prog.t option) ->
  ?save:(Prog.t -> unit) ->
  Tessera_il.Meth.t ->
  Prog.t

val flatten : Tessera_il.Meth.t -> Prog.t
(** Uncached lowering (with Obs span/counter instrumentation). *)

val clear : unit -> unit
(** Drop the current domain's memo table (tests and benchmarks). *)
