module Prng = Tessera_util.Prng

type params = { c : float; eps : float; max_iter : int; seed : int64 }

let default_params = { c = 10.0; eps = 1e-3; max_iter = 1000; seed = 7L }

(* diagnostic only; atomic so concurrent training domains never race *)
let last_iterations = Atomic.make 0

let iterations_used () = Atomic.get last_iterations

(* Dual coordinate descent for min_w 1/2 w'w + C Σ max(0, 1 - y_i w'x_i).
   Dual: min_α 1/2 α'Qα - e'α, 0 <= α_i <= C, Q_ij = y_i y_j x_i'x_j. *)
let train_binary ?(params = default_params) x y =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let n_features =
      1 + Array.fold_left (fun acc v -> max acc (Sparse.max_index v)) (-1) x
    in
    let w = Array.make (max 1 n_features) 0.0 in
    let alpha = Array.make n 0.0 in
    let yf = Array.map (fun b -> if b then 1.0 else -1.0) y in
    let qii = Array.map Sparse.sq_norm x in
    let order = Array.init n Fun.id in
    let rng = Prng.create params.seed in
    let iter = ref 0 in
    let converged = ref false in
    while (not !converged) && !iter < params.max_iter do
      incr iter;
      Prng.shuffle rng order;
      let max_pg = ref 0.0 in
      Array.iter
        (fun i ->
          if qii.(i) > 0.0 then begin
            let g = (yf.(i) *. Sparse.dot x.(i) w) -. 1.0 in
            (* projected gradient for box constraints [0, C] *)
            let pg =
              if alpha.(i) <= 0.0 then min g 0.0
              else if alpha.(i) >= params.c then max g 0.0
              else g
            in
            if Float.abs pg > !max_pg then max_pg := Float.abs pg;
            if Float.abs pg > 1e-12 then begin
              let a_old = alpha.(i) in
              let a_new = Float.max 0.0 (Float.min params.c (a_old -. (g /. qii.(i)))) in
              if a_new <> a_old then begin
                alpha.(i) <- a_new;
                Sparse.add_scaled w x.(i) ((a_new -. a_old) *. yf.(i))
              end
            end
          end)
        order;
      if !max_pg < params.eps then converged := true
    done;
    Atomic.set last_iterations !iter;
    w
  end

let train_ovr ?(params = default_params) (p : Problem.t) =
  let k = Problem.n_classes p in
  if k < 2 then invalid_arg "Linear.train_ovr: need at least two classes";
  let weights =
    if k = 2 then begin
      let y = Array.map (fun c -> c = 0) p.Problem.y in
      [| train_binary ~params p.Problem.x y |]
    end
    else
      Array.init k (fun cls ->
          let y = Array.map (fun c -> c = cls) p.Problem.y in
          train_binary
            ~params:{ params with seed = Int64.add params.seed (Int64.of_int cls) }
            p.Problem.x y)
  in
  (* pad weight vectors to the problem's feature count *)
  let weights =
    Array.map
      (fun w ->
        if Array.length w >= p.Problem.n_features then
          Array.sub w 0 (max 1 p.Problem.n_features)
        else Array.append w (Array.make (p.Problem.n_features - Array.length w) 0.0))
      weights
  in
  {
    Model.solver = "L2R_L1LOSS_SVC_DUAL";
    labels = Array.copy p.Problem.labels;
    n_features = p.Problem.n_features;
    weights;
  }
