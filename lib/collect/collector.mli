(** Data collection (Section 4): runs a benchmark under an instrumented
    engine, exploring compilation-plan modifiers per method and producing
    a binary archive of experiment records.

    The flow mirrors Figure 2 of the paper: the VM's adaptive heuristics
    still decide {e when} to compile and at {e which} level; the strategy
    control draws the next pre-computed modifier for that level from the
    queue and the JIT compiles with it.  Instrumented enter/exit samples
    (with TSC-drift discard) accumulate into the record of the method's
    current compiled version.  After a computed per-method invocation
    threshold — targeting roughly 10 virtual milliseconds of accumulated
    running time between compilations, clamped to [50, 50000] — the
    collector requests a recompilation at the method's current level,
    moving exploration to the next modifier.  A method whose queue is
    exhausted is never recompiled again; when every queue is exhausted the
    collection terminates gracefully. *)

module Plan = Tessera_opt.Plan
module Values = Tessera_vm.Values
module Program = Tessera_il.Program

(** Parameters of the compilation-forking collector ({!search} [Fork]).

    The trunk run is a plain adaptive execution (null modifiers); every
    first compilation of a method at a collected level marks a {e fork
    point}.  At the next entry-invocation boundary the collector
    snapshots the engine ({!Tessera_jit.Engine.snapshot}) and runs one
    {e branch} per candidate modifier: each branch recompiles the method
    with its candidate and executes [uses_per_modifier] entry
    invocations on its private clock, producing one record — so a single
    warm run yields the full (method × modifier) training matrix instead
    of one modifier per recompilation. *)
type fork_params = {
  strategy : Tessera_modifiers.Queue_ctrl.strategy;
      (** generates the candidate set per level
          ({!Tessera_modifiers.Queue_ctrl.generate}); the null modifier
          is always prepended *)
  fanout : int;
      (** candidates (beyond null) measured per fork point; [0] means
          the strategy's full sequence *)
  jobs : int;  (** branch fan-out domains (branches are independent) *)
  reexec : bool;
      (** measure branches from a {e re-executed} fork point (a fresh
          engine replayed to the same entry boundary) instead of a
          snapshot.  Slower but snapshot-free: by engine determinism the
          resulting archive must be record-for-record identical, which
          is the differential oracle validating snapshot/restore *)
}

val fork_defaults : Tessera_modifiers.Queue_ctrl.strategy -> fork_params
(** [{ strategy; fanout = 0; jobs = 1; reexec = false }] *)

(** How the modifier space is explored. *)
type search =
  | Queue of Tessera_modifiers.Queue_ctrl.strategy
      (** the paper's pre-computed queues (randomized / Eq.-1 progressive) *)
  | Guided of Tessera_modifiers.Guided.params
      (** the paper's future work: per-method hill climbing on the Eq.-2
          ranking value observed during collection *)
  | Fork of fork_params
      (** compilation forking: every candidate measured from a snapshot
          of one warm run (DESIGN.md §15) *)

type config = {
  levels : Plan.level list;  (** levels explored (paper: cold, warm, hot) *)
  search : search;
  uses_per_modifier : int;
  seed : int64;
  target_cycles_between_compiles : int;  (** paper: 10 ms; scaled here *)
  min_threshold : int;
  max_threshold : int;
  max_entry_invocations : int;  (** run budget *)
  target : Tessera_vm.Target.t;  (** back end the data is collected on *)
  fuel_per_invocation : int;
      (** per-invocation fuel budget of every engine the collector
          creates (trunk, branches, replays) *)
}

val default_config : config

type stats = {
  entry_invocations : int;  (** trunk invocations only *)
  records : int;
  discarded_samples : int;
  compilations : int;  (** trunk compilations only *)
  forks : int;  (** fork points expanded (0 for sweep searches) *)
  branches : int;  (** branches run across all fork points *)
  branch_invocations : int;  (** entry invocations executed in branches *)
  skipped_decisions : int;
      (** fork points never expanded because the trunk install was still
          pending when the invocation budget ran out *)
}

val run :
  ?config:config ->
  program:Program.t ->
  benchmark:string ->
  entry_args:(int -> Values.t array) ->
  unit ->
  Archive.t * stats
