module Codec = Tessera_util.Codec

(* Signatures are stored in a growable array indexed by id, so [find] is
   a bounds check plus one array read.  (The previous representation
   consed ids onto a list newest-first, making [find] — which archive
   merging calls once per record — walk O(n) links per lookup.)  The
   encoded form is unchanged: ids in order, byte for byte. *)
type t = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array;  (** entries [0 .. n-1] are live *)
  mutable n : int;
}

let create () = { by_name = Hashtbl.create 64; names = [||]; n = 0 }

let grow t =
  let cap = Array.length t.names in
  if t.n >= cap then begin
    let names = Array.make (max 16 (2 * cap)) "" in
    Array.blit t.names 0 names 0 t.n;
    t.names <- names
  end

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.n in
      Hashtbl.add t.by_name name id;
      grow t;
      t.names.(id) <- name;
      t.n <- id + 1;
      id

let find t id =
  if id < 0 || id >= t.n then raise Not_found;
  t.names.(id)

let size t = t.n

let encode t buf =
  Codec.write_varint buf t.n;
  for id = 0 to t.n - 1 do
    Codec.write_string buf t.names.(id)
  done

let decode r =
  let n = Codec.read_varint ~what:"dictionary size" r in
  let t = create () in
  for _ = 1 to n do
    ignore (intern t (Codec.read_string ~what:"dictionary entry" r))
  done;
  t

let equal a b =
  a.n = b.n
  &&
  let rec go i = i >= a.n || (String.equal a.names.(i) b.names.(i) && go (i + 1)) in
  go 0
