module Codec = Tessera_util.Codec
module Crc32 = Tessera_util.Crc32

type t = {
  benchmark : string;
  dictionary : Dictionary.t;
  records : Record.t list;
}

exception Corrupt of string

let magic = "TSRA"

let version = 1

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.write_u8 buf version;
  Codec.write_string buf t.benchmark;
  Dictionary.encode t.dictionary buf;
  Codec.write_varint buf (List.length t.records);
  List.iter (fun r -> Record.encode r buf) t.records;
  let body = Buffer.contents buf in
  let crc = Crc32.string body in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  Codec.write_i64 out (Int64.of_int32 crc);
  Buffer.contents out

let of_string s =
  if String.length s < 12 then raise (Corrupt "archive too short");
  let body = String.sub s 0 (String.length s - 8) in
  let tail = Codec.reader_of_string (String.sub s (String.length s - 8) 8) in
  let stored = Codec.read_i64 ~what:"crc" tail in
  let actual = Int64.of_int32 (Crc32.string body) in
  if not (Int64.equal stored actual) then
    raise (Corrupt (Printf.sprintf "crc mismatch: stored %Lx actual %Lx" stored actual));
  if String.length body < 4 || not (String.equal (String.sub body 0 4) magic) then
    raise (Corrupt "bad magic");
  let rd = Codec.reader_of_string body in
  for _ = 1 to 4 do
    ignore (Codec.read_u8 rd) (* skip magic *)
  done;
  let v = Codec.read_u8 ~what:"version" rd in
  if v <> version then raise (Corrupt (Printf.sprintf "unsupported version %d" v));
  try
    let benchmark = Codec.read_string ~what:"benchmark" rd in
    let dictionary = Dictionary.decode rd in
    let n = Codec.read_varint ~what:"record count" rd in
    let records = List.init n (fun _ -> Record.decode rd) in
    { benchmark; dictionary; records }
  with Codec.Truncated what -> raise (Corrupt ("truncated: " ^ what))

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)

let merge archives =
  let dictionary = Dictionary.create () in
  let records = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun (r : Record.t) ->
          let name = Dictionary.find a.dictionary r.Record.sig_id in
          let sig_id = Dictionary.intern dictionary name in
          records := { r with Record.sig_id } :: !records)
        a.records)
    archives;
  {
    benchmark = String.concat "+" (List.map (fun a -> a.benchmark) archives);
    dictionary;
    records = List.rev !records;
  }

let equal a b =
  (* merge re-interns sig ids in record order, erasing any difference in
     dictionary construction history between otherwise-equal archives *)
  let a = merge [ a ] and b = merge [ b ] in
  String.equal a.benchmark b.benchmark
  && Dictionary.equal a.dictionary b.dictionary
  && List.length a.records = List.length b.records
  && List.for_all2 Record.equal a.records b.records
