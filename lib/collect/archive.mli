(** The compact binary archive format (Section 4.2).

    Layout:
    {v
    magic "TSRA" | version u8 | benchmark-name string
    dictionary (varint count, strings)
    record count varint | records
    crc32 (le u32 over everything before it)
    v}

    Data gathered in collection mode lives in memory and is only
    transferred to an archive after the run finishes, so no I/O perturbs
    the measured execution. *)

type t = {
  benchmark : string;
  dictionary : Dictionary.t;
  records : Record.t list;
}

exception Corrupt of string

val to_string : t -> string
val of_string : string -> t
(** Raises {!Corrupt} on bad magic, version, truncation, or CRC
    mismatch. *)

val save : t -> string -> unit
(** [save a path] writes the archive to a file. *)

val load : string -> t

val merge : t list -> t
(** Concatenate archives (re-interning dictionaries); the merged
    benchmark name joins the inputs with ["+"]. *)

val equal : t -> t -> bool
(** Record-for-record equality up to dictionary construction history:
    both sides are normalized by re-interning signatures in record
    order, then compared with {!Record.equal}.  The differential oracle
    of the forking collector (snapshot vs re-executed branches must
    produce equal archives). *)
