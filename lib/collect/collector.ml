module Plan = Tessera_opt.Plan
module Values = Tessera_vm.Values
module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Modifier = Tessera_modifiers.Modifier
module Queue_ctrl = Tessera_modifiers.Queue_ctrl
module Engine = Tessera_jit.Engine
module Compiler = Tessera_jit.Compiler
module Prng = Tessera_util.Prng

type search =
  | Queue of Queue_ctrl.strategy
  | Guided of Tessera_modifiers.Guided.params

type config = {
  levels : Plan.level list;
  search : search;
  uses_per_modifier : int;
  seed : int64;
  target_cycles_between_compiles : int;
  min_threshold : int;
  max_threshold : int;
  max_entry_invocations : int;
  target : Tessera_vm.Target.t;
}

let default_config =
  {
    levels = [ Plan.Cold; Plan.Warm; Plan.Hot ];
    search = Queue (Queue_ctrl.Progressive { l = 2000 });
    uses_per_modifier = 50;
    seed = 0xC011EC7L;
    (* The paper targets 10 ms of accumulated running time between
       compilations with thresholds in [50, 50000]; invocation volumes in
       this simulation are ~100x smaller, so the target scales down to
       0.25 ms to reach an equivalent modifier-exploration rate. *)
    target_cycles_between_compiles = Tessera_vm.Cost.cycles_per_ms / 4;
    min_threshold = 10;
    max_threshold = 2_000;
    max_entry_invocations = 400;
    target = Tessera_vm.Target.zircon;
  }

type stats = {
  entry_invocations : int;
  records : int;
  discarded_samples : int;
  compilations : int;
}

type meth_collect = {
  mutable open_record : Record.t option;
  mutable version_invocations : int;
  mutable threshold : int option;
  mutable first_samples : int64 list;  (** first 8 valid sample cycles *)
}

let run ?(config = default_config) ~program ~benchmark ~entry_args () =
  let dictionary = Dictionary.create () in
  let store = ref [] in
  let discarded = ref 0 in
  let rng = Prng.create config.seed in
  (* one explorer per collected level *)
  let explorers =
    List.map
      (fun level ->
        let seed = Prng.next_int64 rng in
        match config.search with
        | Queue strategy ->
            ( level,
              `Queue
                (Queue_ctrl.create ~uses_per_modifier:config.uses_per_modifier
                   ~seed strategy) )
        | Guided params ->
            (level, `Guided (Tessera_modifiers.Guided.create ~params ~seed ())))
      config.levels
  in
  let per_meth =
    Array.init (Program.method_count program) (fun _ ->
        {
          open_record = None;
          version_invocations = 0;
          threshold = None;
          first_samples = [];
        })
  in
  let close_record ~meth_id mc =
    match mc.open_record with
    | Some r ->
        store := r :: !store;
        mc.open_record <- None;
        (* guided search learns from the Eq.-2 value of the finished
           experiment *)
        if r.Record.invocations > 0 then
          List.iter
            (fun (level, e) ->
              match e with
              | `Guided g when level = r.Record.level ->
                  Tessera_modifiers.Guided.feedback g ~method_key:meth_id
                    r.Record.modifier (Rank_value.value r)
              | _ -> ())
            explorers
    | None -> ()
  in
  let choose_modifier _engine ~meth_id ~level =
    match List.assoc_opt level explorers with
    | Some (`Queue q) -> Queue_ctrl.next q ~method_key:meth_id
    | Some (`Guided g) -> Tessera_modifiers.Guided.next g ~method_key:meth_id
    | None -> None (* levels outside the collection set are not explored *)
  in
  let on_compiled _engine ~meth_id (comp : Compiler.compilation) =
    let mc = per_meth.(meth_id) in
    close_record ~meth_id mc;
    let name = (Program.meth program meth_id).Meth.name in
    mc.open_record <-
      Some
        (Record.make
           ~sig_id:(Dictionary.intern dictionary name)
           ~features:comp.Compiler.features ~level:comp.Compiler.level
           ~modifier:comp.Compiler.modifier
           ~compile_cycles:comp.Compiler.compile_cycles);
    mc.version_invocations <- 0
  in
  let on_sample _engine ~meth_id ~cycles ~valid =
    let mc = per_meth.(meth_id) in
    match mc.open_record with
    | None -> () (* still interpreted: no record to charge *)
    | Some r ->
        mc.open_record <- Some (Record.add_sample r ~cycles ~valid);
        if not valid then incr discarded
        else begin
          mc.version_invocations <- mc.version_invocations + 1;
          if mc.threshold = None then begin
            mc.first_samples <- cycles :: mc.first_samples;
            if List.length mc.first_samples >= 8 then begin
              let total =
                List.fold_left Int64.add 0L mc.first_samples
              in
              let avg =
                max 1 (Int64.to_int (Int64.div total 8L))
              in
              let t = config.target_cycles_between_compiles / avg in
              mc.threshold <-
                Some (max config.min_threshold (min config.max_threshold t))
            end
          end
        end
  in
  let post_invoke engine ~meth_id =
    let mc = per_meth.(meth_id) in
    match (mc.open_record, mc.threshold) with
    | Some r, Some threshold when mc.version_invocations >= threshold ->
        let st = Engine.state engine meth_id in
        if st.Engine.pending = None && not st.Engine.no_more then
          Engine.request_compile engine ~meth_id ~level:r.Record.level ()
    | _ -> ()
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.instrument = true;
          (* dwell longer at each level so cold and warm plans are
             explored too, not just hot *)
          trigger_scale = 8.0;
          target = config.target;
          clock_seed = Prng.next_int64 rng;
        }
      ~callbacks:
        {
          Engine.no_callbacks with
          Engine.choose_modifier = Some choose_modifier;
          on_compiled = Some on_compiled;
          on_sample = Some on_sample;
          post_invoke = Some post_invoke;
        }
      program
  in
  let invocations = ref 0 in
  let exhausted () =
    List.for_all
      (fun (_, e) ->
        match e with
        | `Queue q -> Queue_ctrl.exhausted q
        | `Guided _ -> false (* bounded per method, not globally *))
      explorers
  in
  while !invocations < config.max_entry_invocations && not (exhausted ()) do
    ignore (Engine.invoke_entry engine (entry_args !invocations));
    incr invocations
  done;
  Array.iteri (fun meth_id mc -> close_record ~meth_id mc) per_meth;
  let records = List.rev !store in
  (* records with no valid invocation cannot be ranked (Eq. 2 divides by
     I); they correspond to the paper's discarded crashed/empty sessions *)
  let records = List.filter (fun (r : Record.t) -> r.Record.invocations > 0) records in
  ( { Archive.benchmark; dictionary; records },
    {
      entry_invocations = !invocations;
      records = List.length records;
      discarded_samples = !discarded;
      compilations = Engine.compile_count engine;
    } )
