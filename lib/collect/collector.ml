module Plan = Tessera_opt.Plan
module Values = Tessera_vm.Values
module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Modifier = Tessera_modifiers.Modifier
module Queue_ctrl = Tessera_modifiers.Queue_ctrl
module Engine = Tessera_jit.Engine
module Compiler = Tessera_jit.Compiler
module Prng = Tessera_util.Prng
module Pool = Tessera_util.Pool
module Trace = Tessera_obs.Trace
module Metrics = Tessera_obs.Metrics

type fork_params = {
  strategy : Queue_ctrl.strategy;
  fanout : int;
  jobs : int;
  reexec : bool;
}

type search =
  | Queue of Queue_ctrl.strategy
  | Guided of Tessera_modifiers.Guided.params
  | Fork of fork_params

let fork_defaults strategy = { strategy; fanout = 0; jobs = 1; reexec = false }

type config = {
  levels : Plan.level list;
  search : search;
  uses_per_modifier : int;
  seed : int64;
  target_cycles_between_compiles : int;
  min_threshold : int;
  max_threshold : int;
  max_entry_invocations : int;
  target : Tessera_vm.Target.t;
  fuel_per_invocation : int;
}

let default_config =
  {
    levels = [ Plan.Cold; Plan.Warm; Plan.Hot ];
    search = Queue (Queue_ctrl.Progressive { l = 2000 });
    uses_per_modifier = 50;
    seed = 0xC011EC7L;
    (* The paper targets 10 ms of accumulated running time between
       compilations with thresholds in [50, 50000]; invocation volumes in
       this simulation are ~100x smaller, so the target scales down to
       0.25 ms to reach an equivalent modifier-exploration rate. *)
    target_cycles_between_compiles = Tessera_vm.Cost.cycles_per_ms / 4;
    min_threshold = 10;
    max_threshold = 2_000;
    max_entry_invocations = 400;
    target = Tessera_vm.Target.zircon;
    fuel_per_invocation = Engine.default_config.Engine.fuel_per_invocation;
  }

type stats = {
  entry_invocations : int;
  records : int;
  discarded_samples : int;
  compilations : int;
  forks : int;
  branches : int;
  branch_invocations : int;
  skipped_decisions : int;
}

type meth_collect = {
  mutable open_record : Record.t option;
  mutable version_invocations : int;
  mutable threshold : int option;
  mutable first_samples : int64 list;  (** first 8 valid sample cycles *)
}

(* ------------------------------------------------------------------ *)
(* Sweep collection (Queue / Guided): the trunk run carries the whole   *)
(* exploration, one modifier per recompilation.                         *)
(* ------------------------------------------------------------------ *)

let run_sweep ~config ~program ~benchmark ~entry_args () =
  let dictionary = Dictionary.create () in
  let store = ref [] in
  let discarded = ref 0 in
  let rng = Prng.create config.seed in
  (* one explorer per collected level *)
  let explorers =
    List.map
      (fun level ->
        let seed = Prng.next_int64 rng in
        match config.search with
        | Queue strategy ->
            ( level,
              `Queue
                (Queue_ctrl.create ~uses_per_modifier:config.uses_per_modifier
                   ~seed strategy) )
        | Guided params ->
            (level, `Guided (Tessera_modifiers.Guided.create ~params ~seed ()))
        | Fork _ -> assert false (* dispatched to run_fork *))
      config.levels
  in
  let per_meth =
    Array.init (Program.method_count program) (fun _ ->
        {
          open_record = None;
          version_invocations = 0;
          threshold = None;
          first_samples = [];
        })
  in
  let close_record ~meth_id mc =
    match mc.open_record with
    | Some r ->
        store := r :: !store;
        mc.open_record <- None;
        (* guided search learns from the Eq.-2 value of the finished
           experiment *)
        if r.Record.invocations > 0 then
          List.iter
            (fun (level, e) ->
              match e with
              | `Guided g when level = r.Record.level ->
                  Tessera_modifiers.Guided.feedback g ~method_key:meth_id
                    r.Record.modifier (Rank_value.value r)
              | _ -> ())
            explorers
    | None -> ()
  in
  let choose_modifier _engine ~meth_id ~level =
    match List.assoc_opt level explorers with
    | Some (`Queue q) -> Queue_ctrl.next q ~method_key:meth_id
    | Some (`Guided g) -> Tessera_modifiers.Guided.next g ~method_key:meth_id
    | None -> None (* levels outside the collection set are not explored *)
  in
  let on_compiled _engine ~meth_id (comp : Compiler.compilation) =
    let mc = per_meth.(meth_id) in
    close_record ~meth_id mc;
    let name = (Program.meth program meth_id).Meth.name in
    mc.open_record <-
      Some
        (Record.make
           ~sig_id:(Dictionary.intern dictionary name)
           ~features:comp.Compiler.features ~level:comp.Compiler.level
           ~modifier:comp.Compiler.modifier
           ~compile_cycles:comp.Compiler.compile_cycles);
    mc.version_invocations <- 0
  in
  let on_sample _engine ~meth_id ~cycles ~valid =
    let mc = per_meth.(meth_id) in
    match mc.open_record with
    | None -> () (* still interpreted: no record to charge *)
    | Some r ->
        mc.open_record <- Some (Record.add_sample r ~cycles ~valid);
        if not valid then incr discarded
        else begin
          mc.version_invocations <- mc.version_invocations + 1;
          if mc.threshold = None then begin
            mc.first_samples <- cycles :: mc.first_samples;
            if List.length mc.first_samples >= 8 then begin
              let total =
                List.fold_left Int64.add 0L mc.first_samples
              in
              let avg =
                max 1 (Int64.to_int (Int64.div total 8L))
              in
              let t = config.target_cycles_between_compiles / avg in
              mc.threshold <-
                Some (max config.min_threshold (min config.max_threshold t))
            end
          end
        end
  in
  let post_invoke engine ~meth_id =
    let mc = per_meth.(meth_id) in
    match (mc.open_record, mc.threshold) with
    | Some r, Some threshold when mc.version_invocations >= threshold ->
        let st = Engine.state engine meth_id in
        if st.Engine.pending = None && not st.Engine.no_more then
          Engine.request_compile engine ~meth_id ~level:r.Record.level ()
    | _ -> ()
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.instrument = true;
          (* dwell longer at each level so cold and warm plans are
             explored too, not just hot *)
          trigger_scale = 8.0;
          target = config.target;
          fuel_per_invocation = config.fuel_per_invocation;
          clock_seed = Prng.next_int64 rng;
        }
      ~callbacks:
        {
          Engine.no_callbacks with
          Engine.choose_modifier = Some choose_modifier;
          on_compiled = Some on_compiled;
          on_sample = Some on_sample;
          post_invoke = Some post_invoke;
        }
      program
  in
  let invocations = ref 0 in
  let exhausted () =
    List.for_all
      (fun (_, e) ->
        match e with
        | `Queue q -> Queue_ctrl.exhausted q
        | `Guided _ -> false (* bounded per method, not globally *))
      explorers
  in
  while !invocations < config.max_entry_invocations && not (exhausted ()) do
    ignore (Engine.invoke_entry engine (entry_args !invocations));
    incr invocations
  done;
  Array.iteri (fun meth_id mc -> close_record ~meth_id mc) per_meth;
  let records = List.rev !store in
  (* records with no valid invocation cannot be ranked (Eq. 2 divides by
     I); they correspond to the paper's discarded crashed/empty sessions *)
  let records = List.filter (fun (r : Record.t) -> r.Record.invocations > 0) records in
  ( { Archive.benchmark; dictionary; records },
    {
      entry_invocations = !invocations;
      records = List.length records;
      discarded_samples = !discarded;
      compilations = Engine.compile_count engine;
      forks = 0;
      branches = 0;
      branch_invocations = 0;
      skipped_decisions = 0;
    } )

(* ------------------------------------------------------------------ *)
(* Compilation forking: one warm trunk run decides when/where to        *)
(* compile; at each decision the collector forks one branch per         *)
(* candidate modifier and measures every candidate from the same        *)
(* snapshot state (DESIGN.md §15).                                      *)
(* ------------------------------------------------------------------ *)

type decision = { d_meth : int; d_level : Plan.level }

let run_fork ~config ~(params : fork_params) ~program ~benchmark ~entry_args ()
    =
  let dictionary = Dictionary.create () in
  let store = ref [] in
  let discarded = ref 0 in
  let rng = Prng.create config.seed in
  (* Per-level candidate sets: the null plan first (the baseline
     observation every sweep also makes), then the queue's own modifier
     sequence for this seed — the same modifiers a [Queue] collector with
     this seed would dole out one per recompilation — truncated to
     [fanout] modifiers when positive.  Seeds are drawn exactly like the
     sweep's per-level explorer seeds. *)
  let candidates =
    List.map
      (fun level ->
        let seed = Prng.next_int64 rng in
        let mods = Array.to_list (Queue_ctrl.generate ~seed params.strategy) in
        let mods =
          if params.fanout > 0 then
            List.filteri (fun i _ -> i < params.fanout) mods
          else mods
        in
        (level, Modifier.null :: mods))
      config.levels
  in
  let engine_config =
    {
      Engine.default_config with
      Engine.instrument = true;
      trigger_scale = 8.0;
      target = config.target;
      fuel_per_invocation = config.fuel_per_invocation;
      clock_seed = Prng.next_int64 rng;
    }
  in
  (* Decision queue: the trunk's own adaptive compilations (null
     modifier) mark the fork points, once per (method, collected level). *)
  let decisions = Queue.create () in
  let seen = Hashtbl.create 64 in
  let trunk_on_compiled _e ~meth_id (comp : Compiler.compilation) =
    let level = comp.Compiler.level in
    if
      List.mem_assoc level candidates
      && not (Hashtbl.mem seen (meth_id, level))
    then begin
      Hashtbl.add seen (meth_id, level) ();
      Queue.push { d_meth = meth_id; d_level = level } decisions
    end
  in
  let trunk =
    Engine.create ~config:engine_config
      ~callbacks:
        { Engine.no_callbacks with Engine.on_compiled = Some trunk_on_compiled }
      program
  in
  let m = Engine.metrics trunk in
  let m_forks =
    Metrics.counter m ~help:"Fork points expanded into branch fan-outs"
      "collect_fork_decisions_total"
  in
  let m_branches =
    Metrics.counter m ~help:"Forked branches run (one per candidate modifier)"
      "collect_fork_branches_total"
  in
  let m_branch_invs =
    Metrics.counter m ~help:"Entry invocations executed inside branches"
      "collect_fork_branch_invocations_total"
  in
  let m_skipped =
    Metrics.counter m
      ~help:"Fork decisions dropped (install still pending at end of run)"
      "collect_fork_skipped_total"
  in
  let forks = ref 0 in
  let branches = ref 0 in
  let branch_invs = ref 0 in
  let skipped = ref 0 in
  (* One branch: measure [candidate] for decision [d] from the trunk
     state at entry boundary [start_inv].  The record opens when the
     requested compilation installs and closes early if the method is
     recompiled again inside the branch (the version under measurement is
     gone). *)
  let run_branch ~sig_id ~(d : decision) ~start_inv candidate =
    let record = ref None in
    let closed = ref false in
    let active = ref false in
    let disc = ref 0 in
    let invs = ref 0 in
    let on_compiled _e ~meth_id (comp : Compiler.compilation) =
      if !active && meth_id = d.d_meth then
        match !record with
        | None ->
            record :=
              Some
                (Record.make ~sig_id ~features:comp.Compiler.features
                   ~level:comp.Compiler.level ~modifier:comp.Compiler.modifier
                   ~compile_cycles:comp.Compiler.compile_cycles)
        | Some _ -> closed := true
    in
    let on_sample _e ~meth_id ~cycles ~valid =
      if !active && meth_id = d.d_meth && not !closed then
        match !record with
        | Some r ->
            record := Some (Record.add_sample r ~cycles ~valid);
            if not valid then incr disc
        | None -> () (* pre-install samples belong to the old version *)
    in
    let callbacks =
      {
        Engine.no_callbacks with
        Engine.on_compiled = Some on_compiled;
        on_sample = Some on_sample;
      }
    in
    let branch =
      if params.reexec then begin
        (* The differential oracle's branch: rebuild the fork point by
           replaying a fresh engine to the same entry boundary.  The
           callbacks are inert ([active] is false) during the prefix, so
           determinism makes the replica's state — and therefore every
           measurement below — identical to the snapshot branch's. *)
        let e = Engine.create ~config:engine_config ~callbacks program in
        for i = 0 to start_inv - 1 do
          ignore (Engine.invoke_entry e (entry_args i))
        done;
        e
      end
      else Engine.fork ~callbacks trunk
    in
    active := true;
    Engine.request_compile branch ~meth_id:d.d_meth ~level:d.d_level
      ~modifier:candidate ();
    let i = ref start_inv in
    while !invs < config.uses_per_modifier && not !closed do
      ignore (Engine.invoke_entry branch (entry_args !i));
      incr i;
      incr invs
    done;
    (!record, !invs, !disc)
  in
  let process_decision ~start_inv (d : decision) =
    let st = Engine.state trunk d.d_meth in
    (* fork only from a settled state: a pending install would race the
       branch's own compilation request *)
    if st.Engine.pending <> None then `Retry
    else begin
      let name = (Program.meth program d.d_meth).Meth.name in
      let sig_id = Dictionary.intern dictionary name in
      let cands = List.assoc d.d_level candidates in
      incr forks;
      Metrics.inc m_forks;
      if !Trace.enabled then
        Trace.span_begin
          ~cycles:(Engine.clock_now trunk)
          ~cat:"collect"
          ~args:
            [
              ("meth", Trace.Str name);
              ("level", Trace.Str (Plan.level_name d.d_level));
              ("branches", Trace.Int (Int64.of_int (List.length cands)));
            ]
          "fork";
      let results =
        Pool.run_list ~jobs:params.jobs
          (run_branch ~sig_id ~d ~start_inv)
          cands
      in
      (* branches may have stamped this domain's trace source with their
         own clocks: the trunk takes it back *)
      Engine.claim_trace_source trunk;
      List.iter
        (fun (record, invs, disc) ->
          incr branches;
          Metrics.inc m_branches;
          branch_invs := !branch_invs + invs;
          Metrics.add m_branch_invs invs;
          discarded := !discarded + disc;
          match record with Some r -> store := r :: !store | None -> ())
        results;
      if !Trace.enabled then
        Trace.span_end ~cycles:(Engine.clock_now trunk) ~cat:"collect" "fork";
      `Done
    end
  in
  let invocations = ref 0 in
  while !invocations < config.max_entry_invocations do
    ignore (Engine.invoke_entry trunk (entry_args !invocations));
    incr invocations;
    (* Entry boundaries are the fork points: replaying [start_inv] whole
       invocations is well-defined, mid-invocation states are not.  Each
       queued decision is tried once per boundary and re-queued while its
       trunk install is still pending. *)
    let ready = Queue.length decisions in
    for _ = 1 to ready do
      let d = Queue.pop decisions in
      match process_decision ~start_inv:!invocations d with
      | `Done -> ()
      | `Retry -> Queue.push d decisions
    done
  done;
  (* decisions still blocked on a pending install when the budget ran out *)
  skipped := Queue.length decisions;
  Metrics.add m_skipped !skipped;
  let records = List.rev !store in
  let records =
    List.filter (fun (r : Record.t) -> r.Record.invocations > 0) records
  in
  ( { Archive.benchmark; dictionary; records },
    {
      entry_invocations = !invocations;
      records = List.length records;
      discarded_samples = !discarded;
      compilations = Engine.compile_count trunk;
      forks = !forks;
      branches = !branches;
      branch_invocations = !branch_invs;
      skipped_decisions = !skipped;
    } )

let run ?(config = default_config) ~program ~benchmark ~entry_args () =
  match config.search with
  | Fork params -> run_fork ~config ~params ~program ~benchmark ~entry_args ()
  | Queue _ | Guided _ -> run_sweep ~config ~program ~benchmark ~entry_args ()
