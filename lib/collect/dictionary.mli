(** Dictionary of method signatures.

    "The creation of a dictionary of method signatures is key for a
    compact representation of the data collected" (Section 4.2): records
    store a small integer id; the dictionary maps it back to the full
    signature string once, in the archive header. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Id of a signature, allocating on first sight.  Ids are dense,
    starting at 0, in interning order. *)

val find : t -> int -> string
(** O(1) (ids index a backing array).  Raises [Not_found] for unknown
    ids. *)

val size : t -> int

val encode : t -> Buffer.t -> unit
val decode : Tessera_util.Codec.reader -> t

val equal : t -> t -> bool
