module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Codec = Tessera_util.Codec
module Crc32 = Tessera_util.Crc32

type t =
  | Init of { model_name : string }
  | Init_ok
  | Predict of {
      level : Plan.level;
      features : float array;
      trace : Tracectx.t;
    }
  | Prediction of { modifier : Modifier.t; trace : Tracectx.t }
  | Ping
  | Pong
  | Shutdown
  | Error_msg of string
  | Stats_req
  | Stats_text of string
  | Overloaded

exception Malformed of string

let tag = function
  | Init _ -> 1
  | Init_ok -> 2
  | Predict _ -> 3
  | Prediction _ -> 4
  | Ping -> 5
  | Pong -> 6
  | Shutdown -> 7
  | Error_msg _ -> 8
  | Stats_req -> 9
  | Stats_text _ -> 10
  | Overloaded -> 11

let payload m =
  let buf = Buffer.create 64 in
  (match m with
  | Init { model_name } -> Codec.write_string buf model_name
  | Init_ok | Ping | Pong | Shutdown | Stats_req | Overloaded -> ()
  | Stats_text s -> Codec.write_string buf s
  | Predict { level; features; trace } ->
      Codec.write_varint buf (Plan.level_index level);
      Codec.write_varint buf (Array.length features);
      Array.iter (fun f -> Codec.write_f64 buf f) features;
      (* trailing, optional: pre-tracing decoders never looked past the
         feature vector, so traced frames stay backward compatible *)
      if not (Tracectx.is_none trace) then Tracectx.write buf trace
  | Prediction { modifier; trace } ->
      Codec.write_i64 buf (Modifier.to_bits modifier);
      if not (Tracectx.is_none trace) then Tracectx.write buf trace
  | Error_msg e -> Codec.write_string buf e);
  Buffer.contents buf

let magic = '\xa7'

let crc_bytes crc =
  String.init 4 (fun i ->
      Char.chr
        (Int32.to_int
           (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl)))

let encode m =
  let p = payload m in
  let hdr = Buffer.create (String.length p + 6) in
  Codec.write_u8 hdr (tag m);
  Codec.write_varint hdr (String.length p);
  Buffer.add_string hdr p;
  let body = Buffer.contents hdr in
  let buf = Buffer.create (String.length body + 5) in
  Buffer.add_char buf magic;
  Buffer.add_string buf body;
  Buffer.add_string buf (crc_bytes (Crc32.string body));
  Buffer.contents buf

(* varints are read byte-by-byte from the channel to find the frame end;
   [raw] accumulates the exact wire bytes for checksum verification *)
let read_varint_from ?deadline ~raw ch =
  let rec go shift acc =
    if shift > 62 then raise (Malformed "frame length varint too long");
    let s = Channel.read_exact ?deadline ch 1 in
    Buffer.add_string raw s;
    let b = Char.code s.[0] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let max_payload = 1 lsl 20

let of_tagged_payload tag body =
  let r = Codec.reader_of_string body in
  try
    match tag with
    | 1 -> Init { model_name = Codec.read_string ~what:"model name" r }
    | 2 -> Init_ok
    | 3 ->
        let level = Plan.level_of_index (Codec.read_varint ~what:"level" r) in
        let n = Codec.read_varint ~what:"feature count" r in
        if n > 4096 then raise (Malformed "feature vector too long");
        let features = Array.init n (fun _ -> Codec.read_f64 ~what:"feature" r) in
        Predict { level; features; trace = Tracectx.read_opt r }
    | 4 ->
        let modifier = Modifier.of_bits (Codec.read_i64 ~what:"modifier" r) in
        Prediction { modifier; trace = Tracectx.read_opt r }
    | 5 -> Ping
    | 6 -> Pong
    | 7 -> Shutdown
    | 8 -> Error_msg (Codec.read_string ~what:"error" r)
    | 9 -> Stats_req
    | 10 -> Stats_text (Codec.read_string ~what:"stats" r)
    | 11 -> Overloaded
    | t -> raise (Malformed (Printf.sprintf "unknown tag %d" t))
  with
  | Codec.Truncated w -> raise (Malformed ("truncated payload: " ^ w))
  | Invalid_argument w -> raise (Malformed w)

let decode_after_magic ?deadline ch =
  let raw = Buffer.create 32 in
  let tag_s = Channel.read_exact ?deadline ch 1 in
  Buffer.add_string raw tag_s;
  let tag = Char.code tag_s.[0] in
  let len = read_varint_from ?deadline ~raw ch in
  if len > max_payload then raise (Malformed "oversized frame");
  let body = Channel.read_exact ?deadline ch len in
  Buffer.add_string raw body;
  let crc = Channel.read_exact ?deadline ch 4 in
  if not (String.equal crc (crc_bytes (Crc32.string (Buffer.contents raw))))
  then raise (Malformed "frame checksum mismatch");
  of_tagged_payload tag body

(* Incremental decoding over an in-memory byte buffer: what a
   non-blocking connection pump uses.  [scan s ~pos] expects the frame
   magic at [pos] and either yields the message plus the position one
   past its frame, reports that the buffer holds only a frame prefix, or
   rejects the bytes at [pos] (the caller then advances one byte and
   hunts for the next magic, exactly like {!recv}'s resync). *)
type scan =
  | Scan_msg of t * int
  | Scan_need_more
  | Scan_bad of string

let scan s ~pos =
  let len = String.length s in
  if pos >= len then Scan_need_more
  else if s.[pos] <> magic then Scan_bad "bad frame magic"
  else
    (* varint payload length, bounds-checked byte by byte *)
    let rec varint p shift acc =
      if shift > 62 then Error (Scan_bad "frame length varint too long")
      else if p >= len then Error Scan_need_more
      else
        let b = Char.code s.[p] in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then Ok (acc, p + 1) else varint (p + 1) (shift + 7) acc
    in
    if pos + 1 >= len then Scan_need_more
    else
      let tag = Char.code s.[pos + 1] in
      match varint (pos + 2) 0 0 with
      | Error e -> e
      | Ok (plen, body_pos) ->
          if plen > max_payload then Scan_bad "oversized frame"
          else if body_pos + plen + 4 > len then Scan_need_more
          else
            (* checksum covers tag + length varint + payload *)
            let checked = String.sub s (pos + 1) (body_pos + plen - pos - 1) in
            let crc = String.sub s (body_pos + plen) 4 in
            if not (String.equal crc (crc_bytes (Crc32.string checked))) then
              Scan_bad "frame checksum mismatch"
            else
              let body = String.sub s body_pos plen in
              (match of_tagged_payload tag body with
              | m -> Scan_msg (m, body_pos + plen + 4)
              | exception Malformed w -> Scan_bad w)

let decode_from ?deadline ch =
  let m = Channel.read_exact ?deadline ch 1 in
  if m.[0] <> magic then
    raise (Malformed (Printf.sprintf "bad frame magic 0x%02x" (Char.code m.[0])));
  decode_after_magic ?deadline ch

let recv ?deadline ?(resync_budget = 4096) ch =
  try decode_from ?deadline ch
  with Malformed first ->
    (* scan forward for the next magic byte and try to pick the stream
       back up there; payload bytes can alias the magic, so decoding may
       fail again and the scan continues on a bounded budget *)
    let rec scan remaining =
      if remaining <= 0 then
        raise (Malformed ("resync budget exhausted after: " ^ first))
      else
        let b = Channel.read_exact ?deadline ch 1 in
        if b.[0] = magic then
          match decode_after_magic ?deadline ch with
          | m -> m
          | exception Malformed _ -> scan (remaining - 1)
        else scan (remaining - 1)
    in
    scan resync_budget

let send ch m = Channel.write ch (encode m)

let equal a b =
  match (a, b) with
  | Init x, Init y -> x.model_name = y.model_name
  | Init_ok, Init_ok | Ping, Ping | Pong, Pong | Shutdown, Shutdown -> true
  | Predict x, Predict y ->
      x.level = y.level && x.features = y.features
      && Tracectx.equal x.trace y.trace
  | Prediction x, Prediction y ->
      Modifier.equal x.modifier y.modifier && Tracectx.equal x.trace y.trace
  | Error_msg x, Error_msg y -> String.equal x y
  | Stats_req, Stats_req -> true
  | Stats_text x, Stats_text y -> String.equal x y
  | Overloaded, Overloaded -> true
  | _ -> false

let pp fmt = function
  | Init { model_name } -> Format.fprintf fmt "Init(%s)" model_name
  | Init_ok -> Format.fprintf fmt "InitOk"
  | Predict { level; features; trace } ->
      Format.fprintf fmt "Predict(%s, %d features%t)" (Plan.level_name level)
        (Array.length features)
        (fun fmt ->
          if not (Tracectx.is_none trace) then
            Format.fprintf fmt ", %a" Tracectx.pp trace)
  | Prediction { modifier; trace } ->
      Format.fprintf fmt "Prediction(%s%t)" (Modifier.to_string modifier)
        (fun fmt ->
          if not (Tracectx.is_none trace) then
            Format.fprintf fmt ", %a" Tracectx.pp trace)
  | Ping -> Format.fprintf fmt "Ping"
  | Pong -> Format.fprintf fmt "Pong"
  | Shutdown -> Format.fprintf fmt "Shutdown"
  | Error_msg e -> Format.fprintf fmt "Error(%s)" e
  | Stats_req -> Format.fprintf fmt "StatsReq"
  | Stats_text s -> Format.fprintf fmt "StatsText(%d bytes)" (String.length s)
  | Overloaded -> Format.fprintf fmt "Overloaded"
