(** Byte channels for compiler ↔ model communication.

    The paper runs the machine-learned model in a separate process and
    talks to it over named pipes, so models can be swapped without
    touching the compiler.  This module abstracts the transport: an
    in-memory pipe pair for tests and in-process use, and Unix file
    descriptors (including FIFOs created with [mkfifo]) for the real
    two-process setup.  Channels can also be {!wrap}ped with read/write
    interceptors; the fault-injection subsystem uses this to corrupt,
    drop, and delay frames deterministically. *)

type t

exception Closed
exception Timeout
(** A read did not complete before its deadline.  In-memory channels
    raise this whenever a read requests more bytes than are buffered
    (data only ever arrives between calls, so waiting cannot help). *)

val write : t -> string -> unit

val read_exact : ?deadline:float -> t -> int -> string
(** Blocks until the requested byte count is available; raises {!Closed}
    at end of stream.  [deadline] is an absolute [Unix.gettimeofday]
    time; when given, a descriptor-backed read that cannot complete in
    time raises {!Timeout} instead of blocking forever. *)

val read_avail : t -> int -> string
(** [read_avail t n] returns up to [n] bytes of already-available input
    without blocking — [""] when nothing is buffered (or [n <= 0]).
    Raises {!Closed} only at end of stream with nothing left buffered,
    so bytes written before a close are still delivered.  This is the
    read primitive of the multiplexing server: it never commits the
    caller to a byte count, so partially-arrived frames stay in the
    caller's reassembly buffer instead of blocking a shared loop. *)

val read_fd : t -> Unix.file_descr option
(** The underlying read descriptor, for [select] registration; [None]
    for in-memory channels (poll those with {!read_avail}).  Wrapped
    channels report their base's descriptor. *)

val drain : t -> int
(** Discards whatever input is currently buffered without blocking and
    returns the number of bytes thrown away.  The resilient client uses
    this to restore frame synchronization after a malformed or
    half-delivered response. *)

val close : t -> unit

val of_fds : Unix.file_descr -> Unix.file_descr -> t
(** [of_fds input output]. *)

val wrap :
  ?on_write:(t -> string -> unit) ->
  ?on_read:(t -> deadline:float option -> int -> string) ->
  ?on_read_avail:(t -> int -> string) ->
  ?on_close:(t -> unit) ->
  t ->
  t
(** [wrap base] is a channel that forwards to [base] through the given
    interceptors (each defaults to the plain operation).  Interceptors
    receive [base] and may drop, alter, duplicate, or fail the
    operation. *)

val pipe_pair : unit -> t * t
(** In-memory bidirectional pair: what one end writes the other reads. *)

val fifo_pair : path_a:string -> path_b:string -> (unit -> t) * (unit -> t)
(** Creates two FIFOs and returns openers for the two endpoints (each
    opener blocks until the peer opens the other end, as named pipes
    do).  Endpoint A reads [path_a] and writes [path_b]; B the
    opposite. *)
