module Metrics = Tessera_obs.Metrics
module Trace = Tessera_obs.Trace
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type batch_predictor =
  level:Plan.level -> float array array -> Modifier.t array

type config = {
  max_conns : int;
  per_conn_queue : int;
  queue_hwm : int;
  max_batch : int;
  max_protocol_errors : int;
  resync_budget : int;
  drain_deadline_s : float;
  workers : int;
  now : unit -> float;
  stats : unit -> string;
  slo_objective_s : float;
  slo_target : float;
  slo_window : int;
}

let default_config =
  {
    max_conns = 4096;
    per_conn_queue = 8;
    queue_hwm = 1024;
    max_batch = 64;
    max_protocol_errors = 16;
    resync_budget = 4096;
    drain_deadline_s = 5.0;
    now = Unix.gettimeofday;
    workers = 2;
    stats = (fun () -> Metrics.expose Metrics.default);
    slo_objective_s = 0.01;
    slo_target = 0.99;
    slo_window = 256;
  }

type counters = {
  mutable accepted : int;
  mutable refused : int;
  mutable conns_closed : int;
  mutable requests : int;
  mutable predictions : int;
  mutable shed : int;
  mutable errors : int;
  mutable strikes : int;
  mutable struck_out : int;
  mutable dropped : int;  (* queued requests whose connection died *)
  mutable worker_restarts : int;
}

let fresh_counters () =
  {
    accepted = 0;
    refused = 0;
    conns_closed = 0;
    requests = 0;
    predictions = 0;
    shed = 0;
    errors = 0;
    strikes = 0;
    struck_out = 0;
    dropped = 0;
    worker_restarts = 0;
  }

let pp_counters fmt c =
  Format.fprintf fmt
    "accepted=%d refused=%d closed=%d requests=%d predictions=%d shed=%d \
     errors=%d strikes=%d struck_out=%d dropped=%d worker_restarts=%d"
    c.accepted c.refused c.conns_closed c.requests c.predictions c.shed
    c.errors c.strikes c.struck_out c.dropped c.worker_restarts

type pending = {
  p_conn : Conn.t;
  p_level : Plan.level;
  p_features : float array;
  p_t : float;
  p_trace : Tracectx.t;  (* client trace context; none = untraced *)
}

type worker = { wid : int; mutable predict : batch_predictor }

(* process-wide serving metrics, exported alongside the old Server's
   counters; idempotent registration means several engines in one
   process (tests, the in-process bench fleet) share them *)
let latency_buckets = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]

let m_conns =
  lazy
    (Metrics.gauge Metrics.default ~help:"open serving connections"
       "serve_connections")

let m_queue =
  lazy
    (Metrics.gauge Metrics.default ~help:"requests queued for prediction"
       "serve_queue_depth")

let m_counter =
  let make name help =
    lazy (Metrics.counter Metrics.default ~help name)
  in
  [|
    make "serve_accepted_total" "connections accepted";
    make "serve_shed_total" "requests answered Overloaded (load shed)";
    make "serve_predictions_total" "predictions answered by the serving engine";
    make "serve_strikes_total" "per-connection protocol errors";
    make "serve_struck_out_total" "connections closed over the error cap";
    make "serve_worker_restarts_total" "prediction workers restarted";
    make "serve_drains_total" "graceful drains started";
  |]

let bump i = Metrics.inc (Lazy.force m_counter.(i))

let m_latency =
  lazy
    (Metrics.histogram Metrics.default ~buckets:latency_buckets
       ~help:"request-to-reply latency in seconds" "serve_latency_seconds")

let m_slo_burn =
  lazy
    (Metrics.gauge Metrics.default
       ~help:
         "rolling SLO error-budget burn rate (1.0 = burning exactly the \
          declared budget)"
       "serve_slo_burn_rate")

let m_slo_objective =
  lazy
    (Metrics.gauge Metrics.default ~help:"declared latency objective in seconds"
       "serve_slo_objective_seconds")

let trace name =
  if !Trace.enabled then Trace.instant ~cat:"serve" name

type t = {
  cfg : config;
  make_predictor : int -> batch_predictor;
  workers : worker array;
  mutable rr : int;
  mutable conns : Conn.t list;  (* accept order *)
  mutable next_id : int;
  queue : pending Queue.t;
  mutable qlen : int;
  mutable draining : bool;
  c : counters;
  (* the engine's virtual clock: advanced once per tick and once per
     request-span emission, so span stamps are a pure function of the
     scheduling sequence — deterministic traces without wall time *)
  mutable vcycles : int64;
  (* SLO monitor: a ring of (count, count<=objective) latency-histogram
     snapshots, one per tick; burn rate is the windowed error fraction
     over the declared error budget *)
  slo_ring : (int * int) array;
  mutable slo_pos : int;
  mutable slo_len : int;
  mutable slo_burn : float;
}

let bump_clock t =
  t.vcycles <- Int64.add t.vcycles 1L;
  t.vcycles

(* one child span event of a traced request, stamped on the engine's
   virtual clock and parented under the client's root span; the trace id
   doubles as the Chrome/Perfetto [tid] so every request renders as its
   own track *)
let req_span t ph name (ctx : Tracectx.t) =
  if !Trace.enabled && not (Tracectx.is_none ctx) then
    Trace.emit ~cycles:(bump_clock t)
      ~args:
        [
          ("trace", Trace.Int (Int64.of_int ctx.trace_id));
          ("parent", Trace.Int (Int64.of_int ctx.span_id));
          ("tid", Trace.Int (Int64.of_int ctx.trace_id));
        ]
      ~cat:"serve" ph name

let create ?(config = default_config) ~make_predictor () =
  Metrics.set_gauge (Lazy.force m_slo_objective) config.slo_objective_s;
  {
    cfg = config;
    make_predictor;
    workers =
      Array.init (max 1 config.workers) (fun i ->
          { wid = i; predict = make_predictor i });
    rr = 0;
    conns = [];
    next_id = 0;
    queue = Queue.create ();
    qlen = 0;
    draining = false;
    c = fresh_counters ();
    vcycles = 0L;
    slo_ring = Array.make (max 2 config.slo_window) (0, 0);
    slo_pos = 0;
    slo_len = 0;
    slo_burn = 0.0;
  }

let counters t = t.c
let queue_depth t = t.qlen
let draining t = t.draining
let vcycles t = t.vcycles
let slo_burn_rate t = t.slo_burn

let update_slo t =
  let h = Lazy.force m_latency in
  let total = Metrics.histogram_count h in
  let ok = Metrics.count_le h t.cfg.slo_objective_s in
  let n = Array.length t.slo_ring in
  t.slo_ring.(t.slo_pos) <- (total, ok);
  t.slo_pos <- (t.slo_pos + 1) mod n;
  if t.slo_len < n then t.slo_len <- t.slo_len + 1;
  let o_total, o_ok = t.slo_ring.((t.slo_pos - t.slo_len + n) mod n) in
  let d_total = total - o_total and d_ok = ok - o_ok in
  let burn =
    if d_total <= 0 then 0.0
    else
      let err = float_of_int (d_total - d_ok) /. float_of_int d_total in
      err /. Float.max 1e-9 (1.0 -. t.cfg.slo_target)
  in
  t.slo_burn <- burn;
  Metrics.set_gauge (Lazy.force m_slo_burn) burn

let connections t =
  List.filter (fun c -> Conn.state c <> Conn.Closed) t.conns

let connection_count t = List.length (connections t)

let note_closed t =
  t.c.conns_closed <- t.c.conns_closed + 1;
  trace "conn_close"

let close_conn t conn =
  if Conn.state conn <> Conn.Closed then begin
    Conn.close conn;
    note_closed t
  end

let accept t ch =
  if t.draining || connection_count t >= t.cfg.max_conns then begin
    t.c.refused <- t.c.refused + 1;
    (* answer, don't vanish: the client's breaker sees a clean refusal *)
    (try Message.send ch Message.Overloaded with _ -> ());
    (try Channel.close ch with _ -> ());
    None
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let conn = Conn.create ~resync_budget:t.cfg.resync_budget ~id ch in
    t.conns <- t.conns @ [ conn ];
    t.c.accepted <- t.c.accepted + 1;
    bump 0;
    trace "conn_open";
    Some conn
  end

let shed t conn =
  t.c.shed <- t.c.shed + 1;
  Conn.note_shed conn;
  bump 1;
  trace "shed";
  Conn.send conn Message.Overloaded

let strike t conn =
  t.c.strikes <- t.c.strikes + 1;
  bump 3;
  if Conn.strikes conn > t.cfg.max_protocol_errors then begin
    t.c.struck_out <- t.c.struck_out + 1;
    bump 4;
    trace "struck_out";
    Conn.send conn (Message.Error_msg "protocol error budget exhausted");
    close_conn t conn
  end

let note_semantic_strike t conn =
  (* a well-formed but contextually wrong frame costs a strike, exactly
     like a malformed one: answering Error_msg forever to a looping
     byzantine peer is an unbounded obligation *)
  Conn.note_strike conn;
  Conn.send conn (Message.Error_msg "unexpected client->server message");
  strike t conn

let handle_msg t conn (m : Message.t) =
  t.c.requests <- t.c.requests + 1;
  match m with
  | Message.Init _ -> Conn.send conn Message.Init_ok
  | Message.Ping -> Conn.send conn Message.Pong
  | Message.Stats_req -> (
      match t.cfg.stats () with
      | s -> Conn.send conn (Message.Stats_text s)
      | exception e ->
          t.c.errors <- t.c.errors + 1;
          Conn.send conn (Message.Error_msg (Printexc.to_string e)))
  | Message.Shutdown ->
      (* per-connection goodbye: queued requests still get answers, then
         the connection closes; other clients are unaffected *)
      Conn.start_draining conn;
      if Conn.queued conn = 0 then close_conn t conn
  | Message.Predict { level; features; trace } ->
      if Conn.state conn = Conn.Draining then note_semantic_strike t conn
      else if t.draining || t.qlen >= t.cfg.queue_hwm
              || Conn.queued conn >= t.cfg.per_conn_queue then shed t conn
      else begin
        Queue.add
          { p_conn = conn; p_level = level; p_features = features;
            p_t = t.cfg.now (); p_trace = trace }
          t.queue;
        t.qlen <- t.qlen + 1;
        Conn.set_queued conn (Conn.queued conn + 1);
        req_span t Trace.Span_begin "queue_wait" trace
      end
  | Message.Init_ok | Message.Pong | Message.Prediction _
  | Message.Error_msg _ | Message.Stats_text _ | Message.Overloaded ->
      note_semantic_strike t conn

(* supervised batch prediction: a worker that throws is restarted from
   the factory and the batch retried once on the fresh instance; only a
   second failure turns into per-request error replies.  Other
   connections never notice. *)
let supervised t worker ~level feats =
  match worker.predict ~level feats with
  | r -> Ok r
  | exception _ ->
      t.c.worker_restarts <- t.c.worker_restarts + 1;
      bump 5;
      trace "worker_restart";
      worker.predict <- t.make_predictor worker.wid;
      (match worker.predict ~level feats with
      | r -> Ok r
      | exception e -> Error (Printexc.to_string e))

let dispatch_batch t =
  (* pull up to max_batch live requests off the global queue *)
  let batch = ref [] in
  while List.length !batch < t.cfg.max_batch && not (Queue.is_empty t.queue) do
    let p = Queue.pop t.queue in
    t.qlen <- t.qlen - 1;
    Conn.set_queued p.p_conn (Conn.queued p.p_conn - 1);
    req_span t Trace.Span_end "queue_wait" p.p_trace;
    if Conn.state p.p_conn = Conn.Closed then begin
      t.c.dropped <- t.c.dropped + 1;
      req_span t Trace.Instant "request_dropped" p.p_trace
    end
    else begin
      batch := p :: !batch;
      (* batch_wait: from leaving the queue to the worker call of the
         request's level group *)
      req_span t Trace.Span_begin "batch_wait" p.p_trace
    end
  done;
  let batch = List.rev !batch in
  if batch = [] then 0
  else begin
    let worker = t.workers.(t.rr mod Array.length t.workers) in
    t.rr <- t.rr + 1;
    (* group by level so each SVM model is looked up once per batch *)
    List.iter
      (fun level ->
        let group =
          List.filter (fun p -> p.p_level = level) batch
        in
        if group <> [] then begin
          let feats =
            Array.of_list (List.map (fun p -> p.p_features) group)
          in
          List.iter
            (fun p ->
              req_span t Trace.Span_end "batch_wait" p.p_trace;
              req_span t Trace.Span_begin "predict" p.p_trace)
            group;
          match supervised t worker ~level feats with
          | Ok modifiers ->
              List.iteri
                (fun i p ->
                  t.c.predictions <- t.c.predictions + 1;
                  bump 2;
                  Conn.note_served p.p_conn;
                  Metrics.observe (Lazy.force m_latency)
                    (t.cfg.now () -. p.p_t);
                  req_span t Trace.Span_end "predict" p.p_trace;
                  req_span t Trace.Span_begin "reply" p.p_trace;
                  Conn.send p.p_conn
                    (Message.Prediction
                       { modifier = modifiers.(i); trace = p.p_trace });
                  req_span t Trace.Span_end "reply" p.p_trace)
                group
          | Error why ->
              List.iter
                (fun p ->
                  t.c.errors <- t.c.errors + 1;
                  req_span t Trace.Span_end "predict" p.p_trace;
                  req_span t Trace.Span_begin "reply" p.p_trace;
                  Conn.send p.p_conn (Message.Error_msg why);
                  req_span t Trace.Span_end "reply" p.p_trace)
                group
        end)
      (Array.to_list Plan.levels);
    List.length batch
  end

let finalize_conns t =
  List.iter
    (fun conn ->
      if Conn.state conn = Conn.Draining && Conn.queued conn = 0 then
        close_conn t conn)
    t.conns;
  (* compact the roster once closed connections pile up *)
  if List.exists (fun c -> Conn.state c = Conn.Closed) t.conns then
    t.conns <- List.filter (fun c -> Conn.state c <> Conn.Closed) t.conns

let tick t =
  t.vcycles <- Int64.add t.vcycles 1L;
  let progress = ref 0 in
  (* 1. pump: read and decode from every connection that has queue room.
     A connection at its per-connection bound is simply not read — true
     backpressure; its bytes wait in the transport. *)
  if not t.draining then
    List.iter
      (fun conn ->
        if Conn.state conn = Conn.Active
           && Conn.queued conn < t.cfg.per_conn_queue then
          (* the frame cap is the connection's queue room: frames past
             it stay buffered rather than decoded-and-shed, so a peer
             that batches its sends is backpressured, not punished *)
          List.iter
            (fun ev ->
              incr progress;
              match ev with
              | Conn.Msg m -> handle_msg t conn m
              | Conn.Strike _ -> strike t conn
              | Conn.Eof ->
                  (* pump closes the Conn itself before emitting Eof, so
                     close_conn's idempotence check would skip the
                     bookkeeping — count the retirement here *)
                  if Conn.state conn = Conn.Closed then note_closed t
                  else close_conn t conn)
            (Conn.pump
               ~max_frames:(t.cfg.per_conn_queue - Conn.queued conn)
               conn))
      t.conns;
  (* 2. dispatch one batch per worker per tick: bounded work, so the
     loop stays responsive and the queue length is a real signal *)
  let batches = ref 0 in
  while !batches < Array.length t.workers && t.qlen > 0 do
    progress := !progress + dispatch_batch t;
    incr batches
  done;
  finalize_conns t;
  Metrics.set_gauge (Lazy.force m_conns) (float_of_int (connection_count t));
  Metrics.set_gauge (Lazy.force m_queue) (float_of_int t.qlen);
  update_slo t;
  !progress

let drain t =
  if not t.draining then begin
    t.draining <- true;
    bump 6;
    trace "drain_begin"
  end

let drained t = t.qlen = 0

let finish_drain ?deadline_s t =
  let deadline_s =
    match deadline_s with Some d -> d | None -> t.cfg.drain_deadline_s
  in
  drain t;
  let t0 = t.cfg.now () in
  while (not (drained t)) && t.cfg.now () -. t0 < deadline_s do
    ignore (tick t)
  done;
  let clean = drained t in
  List.iter (fun conn -> close_conn t conn) t.conns;
  t.conns <- [];
  trace (if clean then "drain_end" else "drain_deadline_exceeded");
  clean

(* ------------------------------------------------------------------ *)
(* Descriptor-backed serving: the accept/select loop of tessera_server *)
(* ------------------------------------------------------------------ *)

let serve_fds ?(select_timeout_s = 0.05) t ~listen ~wrap ~stop =
  Unix.set_nonblock listen;
  let accept_pending () =
    let continue = ref true in
    while !continue do
      match Unix.accept listen with
      | fd, _ -> ignore (accept t (wrap (Channel.of_fds fd fd)))
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  while not (stop ()) do
    let fds =
      listen
      :: List.filter_map
           (fun conn ->
             (* a connection at its queue bound is left unpolled: its
                bytes wait in the kernel buffer — backpressure *)
             if Conn.state conn = Conn.Active
                && Conn.queued conn < t.cfg.per_conn_queue then
               Conn.read_fd conn
             else None)
           t.conns
    in
    (* wake immediately on input, or on the timeout while the queue is
       non-empty (dispatch continues even when no new bytes arrive) *)
    let timeout = if t.qlen > 0 then 0.0 else select_timeout_s in
    (match Unix.select fds [] [] timeout with
    | readable, _, _ -> if List.memq listen readable then accept_pending ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* a peer closed between roster snapshot and select: the next
           tick retires the connection *)
        ());
    ignore (tick t)
  done;
  finish_drain t
