(** Compiler-side client of the model protocol, hardened for deployment.

    The compiler must never fail — or hang — because the model did.
    Every request carries a deadline; timeouts and malformed responses
    are retried with exponential backoff and jitter; persistent failure
    trips a circuit breaker that short-circuits every prediction to the
    paper's default-plan fallback and periodically half-opens via [Ping]
    to detect recovery.  Each failure class is counted separately (and
    logged once), so operators can tell a slow model from a crashed one
    from a garbage-emitting one. *)

type failure =
  | Timeout  (** no response within the deadline *)
  | Malformed  (** a response arrived but failed frame validation *)
  | Closed  (** the channel is closed / the peer is gone *)
  | Server_error  (** the server answered [Error_msg] *)
  | Overloaded
      (** the server shed this request ([Message.Overloaded]); not
          retried — consecutive sheds trip the breaker, backing the
          client off exactly when the server asks for relief *)
  | Unexpected_reply  (** a valid but contextually wrong message *)

val failure_name : failure -> string

type outcome =
  | Predicted of Tessera_modifiers.Modifier.t
  | Fallback of failure  (** retries exhausted; use the default plan *)
  | Breaker_skip  (** circuit breaker open; request never sent *)

type breaker = Breaker_closed | Breaker_open | Breaker_half_open

val breaker_name : breaker -> string

type config = {
  deadline_ms : int;  (** per-request response deadline *)
  max_retries : int;  (** extra attempts on timeout/malformed *)
  backoff_base_ms : float;
  backoff_max_ms : float;
  breaker_threshold : int;  (** consecutive failed requests that trip *)
  breaker_cooldown : int;  (** skipped requests before half-opening *)
  jitter_seed : int64;  (** seed of the backoff-jitter PRNG *)
  sleep : float -> unit;
      (** backoff sleep, in seconds; defaults to a no-op so in-process
          lockstep setups stay deterministic — two-process deployments
          pass [Unix.sleepf] *)
  log : string -> unit;
      (** once-per-failure-class diagnostics; defaults to
          {!Tessera_obs.Log.warn} (leveled, stderr, optionally mirrored
          into the trace buffer) *)
}

val default_config : config

type counters = {
  mutable requests : int;
  mutable predicted : int;
  mutable fallbacks : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable malformed : int;
  mutable closed : int;
  mutable server_errors : int;
  mutable overloaded : int;
  mutable unexpected : int;
  mutable breaker_skips : int;
  mutable breaker_trips : int;
  mutable breaker_half_opens : int;
  mutable breaker_recoveries : int;
}
(** Invariant: [predicted + fallbacks + breaker_skips = requests]. *)

type t

val connect :
  ?model_name:string ->
  ?lockstep:(unit -> unit) ->
  ?config:config ->
  Channel.t ->
  t
(** Sends [Init] and waits for [Init_ok], retrying per [config].  If the
    handshake cannot be completed the client still returns — with the
    breaker open, so every prediction falls back until a later half-open
    ping finds the server alive.  [lockstep], when given, is run between
    sending a request and reading the response — in-process setups use
    it to run one {!Server.step} on the other endpoint of an in-memory
    pipe.  Also sets [SIGPIPE] to ignore (where supported), so a peer
    dying mid-write surfaces as a counted fallback instead of killing
    the process. *)

val predict :
  t ->
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t
(** Any failure falls back to the null modifier (the original
    compilation plan).  Equivalent to {!predict_result} with the outcome
    collapsed. *)

val predict_result :
  t -> level:Tessera_opt.Plan.level -> features:float array -> outcome
(** Like {!predict} but keeps the failure class visible.  Never raises. *)

val ping : t -> bool

val stats : t -> string option
(** One [Stats_req] round trip: the server's metrics exposition, or
    [None] on any failure (never raises, not retried, not counted as a
    prediction failure). *)

val counters : t -> counters
val breaker_state : t -> breaker
val pp_counters : Format.formatter -> counters -> unit

val backoff_delay : t -> int -> float
(** [backoff_delay t attempt] is the retry sleep in seconds for the
    given 0-based attempt: full jitter, uniform in
    [(0, min (base * 2^attempt) max]].  Draws from the client's jitter
    PRNG (so calling it advances the stream); exposed for property
    tests of the bound. *)

val shutdown : t -> unit
