(** The lean compiler ↔ model protocol (Section 7).

    Frames are length-prefixed and integrity-checked:
    [magic 0xA7 | u8 tag | varint payload length | payload | crc32].
    The checksum covers tag, length, and payload, so a corrupted frame is
    rejected instead of silently yielding a wrong prediction, and the
    magic byte lets a receiver resynchronize after garbage on the wire.
    The compiler sends raw feature vectors; the model side renormalizes
    them with its scaling file and answers with a full 58-bit modifier
    pattern — the label→modifier lookup and the normalization both live
    with the model, so models can be swapped without changes to the
    compiler. *)

module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type t =
  | Init of { model_name : string }
  | Init_ok
  | Predict of { level : Plan.level; features : float array }
  | Prediction of { modifier : Modifier.t }
  | Ping
  | Pong
  | Shutdown
  | Error_msg of string
  | Stats_req
      (** ask the server for its metrics exposition (observability) *)
  | Stats_text of string
      (** Prometheus-style text exposition of the server's registry *)

exception Malformed of string

val magic : char
(** First byte of every frame. *)

val encode : t -> string

val decode_from : ?deadline:float -> Channel.t -> t
(** Reads exactly one frame; raises {!Malformed} on a bad magic byte,
    checksum mismatch, unknown tag, or bad payload, [Channel.Closed] at
    end of stream, and [Channel.Timeout] past the optional deadline. *)

val recv : ?deadline:float -> ?resync_budget:int -> Channel.t -> t
(** Like {!decode_from}, but on a malformed frame scans forward for the
    next magic byte and retries, consuming at most [resync_budget]
    (default 4096) scan positions before giving up with {!Malformed}.
    This is what keeps one corrupted frame from permanently desyncing a
    stream. *)

val send : Channel.t -> t -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
