(** The lean compiler ↔ model protocol (Section 7).

    Frames are length-prefixed and integrity-checked:
    [magic 0xA7 | u8 tag | varint payload length | payload | crc32].
    The checksum covers tag, length, and payload, so a corrupted frame is
    rejected instead of silently yielding a wrong prediction, and the
    magic byte lets a receiver resynchronize after garbage on the wire.
    The compiler sends raw feature vectors; the model side renormalizes
    them with its scaling file and answers with a full 58-bit modifier
    pattern — the label→modifier lookup and the normalization both live
    with the model, so models can be swapped without changes to the
    compiler. *)

module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type t =
  | Init of { model_name : string }
  | Init_ok
  | Predict of {
      level : Plan.level;
      features : float array;
      trace : Tracectx.t;
    }
      (** [trace] is {!Tracectx.none} for untraced requests (zero wire
          bytes); otherwise two trailing varints.  Decoding is lenient:
          corrupted trace bytes in an otherwise well-formed frame yield
          an untraced request, never a protocol error. *)
  | Prediction of { modifier : Modifier.t; trace : Tracectx.t }
      (** The server echoes the request's trace context so the client
          can tie the reply to its root span. *)
  | Ping
  | Pong
  | Shutdown
  | Error_msg of string
  | Stats_req
      (** ask the server for its metrics exposition (observability) *)
  | Stats_text of string
      (** Prometheus-style text exposition of the server's registry *)
  | Overloaded
      (** the server shed this request past its high-water mark; the
          client should fall back (and let its circuit breaker trip)
          rather than retry into the overload *)

exception Malformed of string

val magic : char
(** First byte of every frame. *)

val encode : t -> string

val decode_from : ?deadline:float -> Channel.t -> t
(** Reads exactly one frame; raises {!Malformed} on a bad magic byte,
    checksum mismatch, unknown tag, or bad payload, [Channel.Closed] at
    end of stream, and [Channel.Timeout] past the optional deadline. *)

val recv : ?deadline:float -> ?resync_budget:int -> Channel.t -> t
(** Like {!decode_from}, but on a malformed frame scans forward for the
    next magic byte and retries, consuming at most [resync_budget]
    (default 4096) scan positions before giving up with {!Malformed}.
    This is what keeps one corrupted frame from permanently desyncing a
    stream. *)

val send : Channel.t -> t -> unit

(** {1 Incremental decoding} — for non-blocking connection pumps that
    accumulate wire bytes in their own buffer *)

type scan =
  | Scan_msg of t * int  (** decoded message and the position past its frame *)
  | Scan_need_more  (** the buffer ends inside the frame; read more bytes *)
  | Scan_bad of string
      (** the bytes at [pos] are not a valid frame; advance one byte and
          rescan for the next magic (costing resync budget) *)

val scan : string -> pos:int -> scan
(** Decode at most one frame starting at [pos] (which must hold the
    frame magic for anything but [Scan_bad]).  Never raises; never
    consumes past the returned position. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
