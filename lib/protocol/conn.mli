(** One server-side connection: a transport-agnostic state machine over
    a {!Channel}, pumped by a shared non-blocking loop.

    A connection owns a reassembly buffer (frames may arrive in pieces
    over sockets, or interleaved with garbage from byzantine peers), a
    per-connection resync budget — bytes it may scan for the next frame
    magic between two good frames before the stream is declared
    unsalvageable — and a strike counter of protocol errors that the
    serving engine caps (error budget: a peer that keeps sending
    malformed or contextually wrong frames is closed, not answered
    forever).  The same machinery works for the client side of a
    simulated fleet: frames are symmetric. *)

type state =
  | Active
  | Draining  (** peer sent [Shutdown]; flush queued replies, then close *)
  | Closed

type event =
  | Msg of Message.t  (** one complete, checksum-valid frame *)
  | Strike of string
      (** a protocol error: garbage bytes, a malformed frame, or resync
          exhaustion.  The engine counts these toward the error cap. *)
  | Eof  (** the connection is closed (peer gone or unsalvageable) *)

type t

val create : ?resync_budget:int -> id:int -> Channel.t -> t
(** [resync_budget] (default 4096) bounds the bytes scanned for a frame
    magic between two successfully decoded frames. *)

val id : t -> int
val state : t -> state
val strikes : t -> int
(** Total protocol errors seen on this connection. *)

val note_strike : t -> unit
(** Count a semantic protocol error (a well-formed but contextually
    wrong frame) against the same budget as framing errors. *)

val read_fd : t -> Unix.file_descr option
(** The transport's read descriptor, for [select] loops. *)

val pump : ?max_bytes:int -> ?max_frames:int -> t -> event list
(** Read whatever input is available (never blocking, at most
    [max_bytes] per call) and decode it: complete frames become [Msg]
    events, protocol errors become [Strike]s, and end of stream or
    resync exhaustion closes the connection and ends the list with
    [Eof].  Returns [[]] when nothing arrived (or already closed).
    [max_frames] caps the number of [Msg] events decoded per call;
    excess complete frames stay buffered for the next pump — this is
    how the serving engine backpressures a connection at its queue
    bound instead of shedding requests the peer merely batched. *)

val send : t -> Message.t -> unit
(** Write one frame; a dead peer closes the connection instead of
    raising. *)

val start_draining : t -> unit
val close : t -> unit
(** Idempotent. *)

(** Bookkeeping fields maintained by the serving engine: *)

val queued : t -> int
val set_queued : t -> int -> unit
val served : t -> int
val note_served : t -> unit
val shed : t -> int
val note_shed : t -> unit
