(** Model-server loop: answers [Predict] requests with modifiers.

    The predictor receives the already-renormalized feature vector and
    the optimization level; per-level models are the usual deployment
    (the paper trains one model per level). *)

type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

val step : ?resync_budget:int -> Channel.t -> predictor -> bool
(** Handle exactly one incoming message; [false] after [Shutdown].
    Malformed input is resynchronized via {!Message.recv}; if no valid
    frame can be found within [resync_budget] the channel is closed and
    [false] is returned (resync-or-close — the loop never continues from
    a desynced stream).  [Channel.Timeout] propagates to the caller
    (lockstep harnesses treat it as "no request pending"). *)

val serve : Channel.t -> predictor -> unit
(** Run {!step} until shutdown, channel close, or a timeout (which, with
    no way to block for more input, means no progress is possible). *)
