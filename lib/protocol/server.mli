(** Model-server loop: answers [Predict] requests with modifiers.

    The predictor receives the already-renormalized feature vector and
    the optimization level; per-level models are the usual deployment
    (the paper trains one model per level). *)

type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

type session
(** Per-connection serving state: the resync budget applied to each
    receive and the running strike count of protocol errors.  One
    [session] spans one client's whole conversation, so a byzantine peer
    that loops on contextually-wrong frames accumulates strikes across
    {!step}s and is eventually closed instead of being answered
    [Error_msg] forever. *)

val session : ?resync_budget:int -> ?max_protocol_errors:int -> unit -> session
(** Defaults: [resync_budget = 4096], [max_protocol_errors = 64]. *)

val strikes : session -> int

val step :
  ?session:session -> ?stats:(unit -> string) -> Channel.t -> predictor -> bool
(** Handle exactly one incoming message; [false] after [Shutdown].
    Malformed input is resynchronized via {!Message.recv}; if no valid
    frame can be found within the session's resync budget the channel is
    closed and [false] is returned (resync-or-close — the loop never
    continues from a desynced stream).  An unexpected (server→client)
    message is answered [Error_msg] {e and} counted as a strike against
    the session; past [max_protocol_errors] the channel is closed and
    [false] returned.  Omitting [session] makes a fresh one per call
    (strikes then never accumulate — lockstep tests).  [Channel.Timeout]
    propagates to the caller (lockstep harnesses treat it as "no request
    pending").

    A [Stats_req] is answered with [Stats_text (stats ())]; [stats]
    defaults to the Prometheus exposition of
    {!Tessera_obs.Metrics.default}, where the server registers
    [server_requests_total], [server_predictions_total], and
    [server_errors_total]. *)

val serve :
  ?session:session -> ?stats:(unit -> string) -> Channel.t -> predictor -> unit
(** Run {!step} with one shared session until shutdown, channel close,
    strike-budget exhaustion, or a timeout (which, with no way to block
    for more input, means no progress is possible). *)
