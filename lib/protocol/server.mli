(** Model-server loop: answers [Predict] requests with modifiers.

    The predictor receives the already-renormalized feature vector and
    the optimization level; per-level models are the usual deployment
    (the paper trains one model per level). *)

type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

val step :
  ?resync_budget:int -> ?stats:(unit -> string) -> Channel.t -> predictor -> bool
(** Handle exactly one incoming message; [false] after [Shutdown].
    Malformed input is resynchronized via {!Message.recv}; if no valid
    frame can be found within [resync_budget] the channel is closed and
    [false] is returned (resync-or-close — the loop never continues from
    a desynced stream).  [Channel.Timeout] propagates to the caller
    (lockstep harnesses treat it as "no request pending").

    A [Stats_req] is answered with [Stats_text (stats ())]; [stats]
    defaults to the Prometheus exposition of
    {!Tessera_obs.Metrics.default}, where the server registers
    [server_requests_total], [server_predictions_total], and
    [server_errors_total]. *)

val serve : ?stats:(unit -> string) -> Channel.t -> predictor -> unit
(** Run {!step} until shutdown, channel close, or a timeout (which, with
    no way to block for more input, means no progress is possible). *)
