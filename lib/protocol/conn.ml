type state = Active | Draining | Closed

type event = Msg of Message.t | Strike of string | Eof

type t = {
  id : int;
  ch : Channel.t;
  resync_budget : int;
  mutable resync_left : int;
  mutable inbuf : string;  (* wire bytes not yet decoded into frames *)
  mutable state : state;
  mutable strikes : int;
  mutable queued : int;
  mutable served : int;
  mutable shed : int;
}

let create ?(resync_budget = 4096) ~id ch =
  {
    id;
    ch;
    resync_budget;
    resync_left = resync_budget;
    inbuf = "";
    state = Active;
    strikes = 0;
    queued = 0;
    served = 0;
    shed = 0;
  }

let id t = t.id
let state t = t.state
let strikes t = t.strikes
let note_strike t = t.strikes <- t.strikes + 1
let read_fd t = Channel.read_fd t.ch
let queued t = t.queued
let set_queued t n = t.queued <- n
let served t = t.served
let note_served t = t.served <- t.served + 1
let shed t = t.shed
let note_shed t = t.shed <- t.shed + 1

let close t =
  if t.state <> Closed then begin
    t.state <- Closed;
    t.inbuf <- "";
    try Channel.close t.ch with _ -> ()
  end

let start_draining t = if t.state = Active then t.state <- Draining

let send t m =
  if t.state <> Closed then
    try Message.send t.ch m
    with Channel.Closed | Channel.Timeout -> close t

(* read whatever the transport has buffered, up to [limit] bytes; [true]
   if the peer reached end of stream *)
let slurp t limit =
  let buf = Buffer.create 256 in
  let eof = ref false in
  (try
     let continue = ref true in
     while !continue && Buffer.length buf < limit do
       match Channel.read_avail t.ch (limit - Buffer.length buf) with
       | "" -> continue := false
       | s -> Buffer.add_string buf s
     done
   with Channel.Closed -> eof := true);
  if Buffer.length buf > 0 then
    t.inbuf <-
      (if t.inbuf = "" then Buffer.contents buf
       else t.inbuf ^ Buffer.contents buf);
  !eof

let default_pump_bytes = 1 lsl 16

(* Decode every complete frame out of [inbuf].  Garbage and malformed
   frames follow {!Message.recv}'s resync discipline — hunt byte-by-byte
   for the next magic on a bounded budget — except the budget here spans
   the bytes between two {e good} frames (refilled on every decoded
   message) and exhaustion closes the connection instead of raising:
   one byzantine peer must cost a bounded amount of scanning, never an
   unbounded stall of the shared loop. *)
let pump ?(max_bytes = default_pump_bytes) ?(max_frames = max_int) t =
  if t.state = Closed then []
  else begin
    let eof = slurp t max_bytes in
    let events = ref [] in
    let emit e = events := e :: !events in
    let frames = ref 0 in
    let pos = ref 0 in
    let len = String.length t.inbuf in
    let stop = ref false in
    while (not !stop) && !frames < max_frames && !pos < len do
      if t.inbuf.[!pos] <> Message.magic then begin
        (* contiguous garbage: one strike for the run, budget per byte *)
        let start = !pos in
        while !pos < len && t.inbuf.[!pos] <> Message.magic do incr pos done;
        t.resync_left <- t.resync_left - (!pos - start);
        t.strikes <- t.strikes + 1;
        emit (Strike "desynced input (no frame magic)")
      end
      else
        match Message.scan t.inbuf ~pos:!pos with
        | Message.Scan_msg (m, next) ->
            pos := next;
            t.resync_left <- t.resync_budget;
            incr frames;
            emit (Msg m)
        | Message.Scan_need_more -> stop := true
        | Message.Scan_bad why ->
            incr pos;
            t.resync_left <- t.resync_left - 1;
            t.strikes <- t.strikes + 1;
            emit (Strike why)
    done;
    t.inbuf <-
      (if !pos = 0 then t.inbuf else String.sub t.inbuf !pos (len - !pos));
    if t.resync_left < 0 then begin
      emit (Strike "resync budget exhausted");
      close t;
      emit Eof
    end
    else if eof && t.inbuf = "" then begin
      (* every complete frame was drained and nothing is left over *)
      close t;
      emit Eof
    end
    else if eof && !frames >= max_frames then
      (* frame-capped with buffered input remaining: leave the close to
         a later pump, once the backpressured frames have been taken *)
      ()
    else if eof then begin
      (* the loop above drained every complete frame; whatever partial
         tail remains can never complete once the peer is gone *)
      close t;
      emit Eof
    end;
    List.rev !events
  end
