(** Compact request trace context: a positive trace id naming the
    end-to-end request plus the sender's span id (the parent for any
    child spans the receiver emits).  Rides inside [Predict] and
    [Prediction] payloads as two trailing varints; {!none} (all zeros)
    is never encoded, so untraced requests cost zero wire bytes. *)

type t = { trace_id : int; span_id : int }

val none : t
(** The untraced context. *)

val is_none : t -> bool

val fresh : unit -> t
(** A new trace with its root span, from a process-wide atomic id
    source. *)

val child : t -> t
(** Same trace, fresh span id. *)

val fresh_id : unit -> int
(** A raw span id from the same source (for receivers minting child
    spans). *)

val reset_ids : unit -> unit
(** Rewind the id source — for deterministic tests and benches only. *)

val write : Buffer.t -> t -> unit
(** Appends [trace_id] then [span_id] as varints.  Callers skip the call
    entirely for {!none}. *)

val read_opt : Tessera_util.Codec.reader -> t
(** Lenient decode: end-of-payload, truncated or malformed varints, and
    non-positive ids all yield {!none} ("untraced") — never an
    exception.  This is what keeps a corrupted trace context from
    costing a protocol strike. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
