(** Concurrent multi-client model serving.

    Where {!Server} answers one blocking channel, [Serve] multiplexes
    many {!Conn}s through a non-blocking engine designed around
    robustness: bounded per-connection and global request queues with
    real backpressure (a connection at its bound is simply not read),
    load-shedding past a high-water mark (answered with
    {!Message.Overloaded}, never silence, so client circuit breakers
    trip cleanly), per-connection error budgets (a byzantine peer is
    closed after [max_protocol_errors] strikes or resync exhaustion,
    not argued with forever), batched SVM prediction across the queued
    feature vectors of all clients, supervised prediction workers that
    are restarted from a factory on crash without dropping any
    connection, and a deadline-bounded graceful drain.

    The engine is driven by {!tick} — one bounded scheduling round —
    so in-process fleets (tests, [bench serve]) run it deterministically
    in lockstep, while {!serve_fds} wraps it in a [select] accept loop
    for socket deployments.  Everything is instrumented through
    {!Tessera_obs.Metrics.default} ([serve_*] gauges, counters, and the
    [serve_latency_seconds] histogram). *)

type batch_predictor =
  level:Tessera_opt.Plan.level ->
  float array array ->
  Tessera_modifiers.Modifier.t array
(** One SVM pass over a batch of raw (unnormalized) feature vectors of
    one level; must return one modifier per input row. *)

type config = {
  max_conns : int;  (** accept refuses (with [Overloaded]) past this *)
  per_conn_queue : int;  (** per-connection queued-request bound *)
  queue_hwm : int;  (** global queue high-water mark: shed above *)
  max_batch : int;  (** requests handed to a worker per batch *)
  max_protocol_errors : int;  (** strikes before a connection is closed *)
  resync_budget : int;  (** per-connection {!Conn} resync budget *)
  drain_deadline_s : float;  (** default {!finish_drain} bound *)
  workers : int;  (** supervised prediction workers (≥ 1) *)
  now : unit -> float;
      (** clock used for latency histograms and drain deadlines;
          defaults to [Unix.gettimeofday] — tests pass virtual clocks *)
  stats : unit -> string;  (** [Stats_req] answer; defaults to the
                               default-registry exposition *)
  slo_objective_s : float;
      (** declared latency objective in seconds (default 10 ms);
          exported as [serve_slo_objective_seconds] *)
  slo_target : float;
      (** fraction of requests that must meet the objective (default
          0.99); the error budget is [1 - slo_target] *)
  slo_window : int;
      (** burn-rate window in ticks (default 256): one latency-histogram
          snapshot is retained per {!tick} *)
}

val default_config : config

type counters = {
  mutable accepted : int;
  mutable refused : int;  (** connections refused at capacity/drain *)
  mutable conns_closed : int;
  mutable requests : int;  (** messages handled *)
  mutable predictions : int;
  mutable shed : int;  (** [Overloaded] answers *)
  mutable errors : int;  (** [Error_msg] answers *)
  mutable strikes : int;
  mutable struck_out : int;  (** connections closed over the error cap *)
  mutable dropped : int;  (** queued requests whose connection died *)
  mutable worker_restarts : int;
}

val pp_counters : Format.formatter -> counters -> unit

type t

val create : ?config:config -> make_predictor:(int -> batch_predictor) -> unit -> t
(** [make_predictor wid] builds (and, after a crash, rebuilds) the
    predictor of worker [wid]. *)

val accept : t -> Channel.t -> Conn.t option
(** Register a connection.  [None] — after an [Overloaded] reply and a
    close — when the engine is draining or at [max_conns]. *)

val tick : t -> int
(** One scheduling round: pump every connection with queue room, handle
    decoded messages (control frames answered inline, predictions
    queued, overload shed, strikes counted), then dispatch at most one
    batch per worker and write the replies.  Returns the number of
    events processed — 0 means the engine is idle. *)

val drain : t -> unit
(** Enter graceful drain: stop accepting and stop reading; queued
    requests are still answered by subsequent {!tick}s. *)

val drained : t -> bool
val finish_drain : ?deadline_s:float -> t -> bool
(** Drain, tick until the queue is flushed or the deadline passes, then
    close every connection.  [true] iff the flush completed in time. *)

val serve_fds :
  ?select_timeout_s:float ->
  t ->
  listen:Unix.file_descr ->
  wrap:(Channel.t -> Channel.t) ->
  stop:(unit -> bool) ->
  bool
(** Accept/select loop over a listening socket until [stop ()], then
    {!finish_drain}.  [wrap] interposes on every accepted channel (the
    fault injector hooks in here).  Returns the drain verdict. *)

val counters : t -> counters
val queue_depth : t -> int
val draining : t -> bool

val vcycles : t -> int64
(** The engine's virtual clock: advanced once per {!tick} and once per
    request-span emission.  Register [fun () -> vcycles t] as the
    {!Tessera_obs.Trace} cycle source so client-side spans share the
    server's time base.

    Traced requests (a non-none {!Tracectx.t} in the [Predict] frame)
    emit [queue_wait] / [batch_wait] / [predict] / [reply] child spans
    on this clock, category ["serve"], carrying [trace], [parent], and
    [tid] args — the per-request critical path rendered by
    [tessera_report timeline] and the Chrome export. *)

val slo_burn_rate : t -> float
(** Rolling error-budget burn rate: the fraction of recent requests
    (over [slo_window] ticks) slower than [slo_objective_s], divided by
    the budget [1 - slo_target].  1.0 means burning exactly the budget;
    above 1.0 the objective is being missed.  Also exported as the
    [serve_slo_burn_rate] gauge (and thus through [Stats_req]). *)

val connection_count : t -> int
val connections : t -> Conn.t list
(** Open connections, in accept order. *)
