module Modifier = Tessera_modifiers.Modifier
module Prng = Tessera_util.Prng
module Trace = Tessera_obs.Trace
module Log = Tessera_obs.Log

type failure =
  | Timeout
  | Malformed
  | Closed
  | Server_error
  | Overloaded
  | Unexpected_reply

let failure_name = function
  | Timeout -> "timeout"
  | Malformed -> "malformed response"
  | Closed -> "channel closed"
  | Server_error -> "server error reply"
  | Overloaded -> "overloaded (request shed by the server)"
  | Unexpected_reply -> "unexpected reply"

type outcome =
  | Predicted of Modifier.t
  | Fallback of failure
  | Breaker_skip

type breaker = Breaker_closed | Breaker_open | Breaker_half_open

let breaker_name = function
  | Breaker_closed -> "closed"
  | Breaker_open -> "open"
  | Breaker_half_open -> "half-open"

type config = {
  deadline_ms : int;
  max_retries : int;
  backoff_base_ms : float;
  backoff_max_ms : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  jitter_seed : int64;
  sleep : float -> unit;
  log : string -> unit;
}

let default_config =
  {
    deadline_ms = 200;
    max_retries = 2;
    backoff_base_ms = 4.0;
    backoff_max_ms = 250.0;
    breaker_threshold = 5;
    breaker_cooldown = 16;
    jitter_seed = 0x5EEDL;
    sleep = (fun _ -> ());
    log = Log.warn;
  }

type counters = {
  mutable requests : int;
  mutable predicted : int;
  mutable fallbacks : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable malformed : int;
  mutable closed : int;
  mutable server_errors : int;
  mutable overloaded : int;
  mutable unexpected : int;
  mutable breaker_skips : int;
  mutable breaker_trips : int;
  mutable breaker_half_opens : int;
  mutable breaker_recoveries : int;
}

let fresh_counters () =
  {
    requests = 0;
    predicted = 0;
    fallbacks = 0;
    retries = 0;
    timeouts = 0;
    malformed = 0;
    closed = 0;
    server_errors = 0;
    overloaded = 0;
    unexpected = 0;
    breaker_skips = 0;
    breaker_trips = 0;
    breaker_half_opens = 0;
    breaker_recoveries = 0;
  }

type t = {
  ch : Channel.t;
  lockstep : unit -> unit;
  config : config;
  rng : Prng.t;
  counters : counters;
  logged : (failure, unit) Hashtbl.t;
  mutable breaker : breaker;
  mutable consecutive_failures : int;
  mutable open_skips : int;
}

let counters t = t.counters
let breaker_state t = t.breaker

let pp_counters fmt c =
  Format.fprintf fmt
    "requests=%d predicted=%d fallbacks=%d retries=%d timeouts=%d \
     malformed=%d closed=%d server_errors=%d overloaded=%d unexpected=%d \
     breaker_skips=%d trips=%d half_opens=%d recoveries=%d"
    c.requests c.predicted c.fallbacks c.retries c.timeouts c.malformed
    c.closed c.server_errors c.overloaded c.unexpected c.breaker_skips
    c.breaker_trips c.breaker_half_opens c.breaker_recoveries

let record_failure t f =
  if !Trace.enabled then
    Trace.instant ~cat:"protocol"
      ~args:[ ("class", Trace.Str (failure_name f)) ]
      "model_failure";
  let c = t.counters in
  (match f with
  | Timeout -> c.timeouts <- c.timeouts + 1
  | Malformed -> c.malformed <- c.malformed + 1
  | Closed -> c.closed <- c.closed + 1
  | Server_error -> c.server_errors <- c.server_errors + 1
  | Overloaded -> c.overloaded <- c.overloaded + 1
  | Unexpected_reply -> c.unexpected <- c.unexpected + 1);
  if not (Hashtbl.mem t.logged f) then begin
    Hashtbl.add t.logged f ();
    t.config.log
      (Printf.sprintf
         "tessera-client: model %s; falling back to the default plan \
          (further occurrences counted, not logged)"
         (failure_name f))
  end

(* one request/response exchange; never raises *)
let round_trip t msg =
  let deadline =
    Unix.gettimeofday () +. (float_of_int t.config.deadline_ms /. 1000.0)
  in
  match
    Message.send t.ch msg;
    t.lockstep ();
    Message.decode_from ~deadline t.ch
  with
  | reply -> Ok reply
  | exception Channel.Timeout ->
      (* a late or half-delivered response must not poison the next
         exchange: flush whatever is buffered *)
      (try ignore (Channel.drain t.ch) with _ -> ());
      Error Timeout
  | exception Channel.Closed -> Error Closed
  | exception Message.Malformed _ ->
      (try ignore (Channel.drain t.ch) with _ -> ());
      Error Malformed
  | exception _ -> Error Unexpected_reply

let backoff_delay t attempt =
  let capped =
    Float.min
      (t.config.backoff_base_ms *. (2.0 ** float_of_int attempt))
      t.config.backoff_max_ms
  in
  (* full jitter (AWS style): uniform in (0, capped].  A floor at
     [capped] would make every retrying client wait the entire backoff
     and keep their retries correlated — the opposite of jitter. *)
  capped *. (1.0 -. Prng.float t.rng 1.0) /. 1000.0

let trip t =
  if t.breaker <> Breaker_open then begin
    if !Trace.enabled then
      Trace.instant ~cat:"protocol"
        ~args:
          [
            ( "consecutive_failures",
              Trace.Int (Int64.of_int t.consecutive_failures) );
          ]
        "breaker_open";
    if t.counters.breaker_trips = 0 then
      t.config.log
        (Printf.sprintf
           "tessera-client: circuit breaker open after %d consecutive \
            failures; predictions fall back to the default plan"
           t.consecutive_failures);
    t.breaker <- Breaker_open;
    t.open_skips <- 0;
    t.counters.breaker_trips <- t.counters.breaker_trips + 1
  end

let note_success t =
  t.consecutive_failures <- 0

let note_failure t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  if
    t.breaker = Breaker_closed
    && t.consecutive_failures >= t.config.breaker_threshold
  then trip t

let ping_once t =
  match round_trip t Message.Ping with Ok Message.Pong -> true | _ -> false

(* breaker is open and the cooldown has elapsed: probe the server with a
   ping; recover on Pong, re-open otherwise *)
let half_open_probe t =
  t.breaker <- Breaker_half_open;
  t.counters.breaker_half_opens <- t.counters.breaker_half_opens + 1;
  if !Trace.enabled then Trace.instant ~cat:"protocol" "breaker_half_open";
  if ping_once t then begin
    t.breaker <- Breaker_closed;
    t.consecutive_failures <- 0;
    t.counters.breaker_recoveries <- t.counters.breaker_recoveries + 1;
    if !Trace.enabled then Trace.instant ~cat:"protocol" "breaker_closed";
    t.config.log "tessera-client: circuit breaker closed (server recovered)";
    true
  end
  else begin
    t.breaker <- Breaker_open;
    t.open_skips <- 0;
    if !Trace.enabled then Trace.instant ~cat:"protocol" "breaker_reopen";
    false
  end

let predict_result t ~level ~features =
  let c = t.counters in
  c.requests <- c.requests + 1;
  let proceed =
    match t.breaker with
    | Breaker_closed | Breaker_half_open -> true
    | Breaker_open ->
        t.open_skips <- t.open_skips + 1;
        t.open_skips >= t.config.breaker_cooldown && half_open_probe t
  in
  if not proceed then begin
    c.breaker_skips <- c.breaker_skips + 1;
    Breaker_skip
  end
  else
    (* client-side root span for the end-to-end request: the server
       parents its queue/batch/predict/reply children under [ctx], so
       the export renders this span's extent against the server's
       breakdown.  Untraced (zero wire bytes) while tracing is off. *)
    let ctx = if !Trace.enabled then Tracectx.fresh () else Tracectx.none in
    let span ph name =
      if not (Tracectx.is_none ctx) then
        Trace.emit
          ~args:
            [
              ("trace", Trace.Int (Int64.of_int ctx.trace_id));
              ("tid", Trace.Int (Int64.of_int ctx.trace_id));
            ]
          ~cat:"protocol" ph name
    in
    span Trace.Span_begin "request";
    let finish r =
      span Trace.Span_end "request";
      r
    in
    let rec go attempt =
      match round_trip t (Message.Predict { level; features; trace = ctx }) with
      | Ok (Message.Prediction { modifier; trace = _ }) ->
          note_success t;
          c.predicted <- c.predicted + 1;
          Predicted modifier
      | Ok (Message.Error_msg _) ->
          record_failure t Server_error;
          note_failure t;
          c.fallbacks <- c.fallbacks + 1;
          Fallback Server_error
      | Ok Message.Overloaded ->
          (* the server shed this request: do not retry into the
             overload — fall back now and let consecutive sheds trip the
             breaker, which is exactly the relief valve the server is
             asking for *)
          record_failure t Overloaded;
          note_failure t;
          c.fallbacks <- c.fallbacks + 1;
          Fallback Overloaded
      | Ok _ ->
          record_failure t Unexpected_reply;
          note_failure t;
          c.fallbacks <- c.fallbacks + 1;
          Fallback Unexpected_reply
      | Error f ->
          record_failure t f;
          let retryable = match f with Timeout | Malformed -> true | _ -> false in
          if retryable && attempt < t.config.max_retries then begin
            c.retries <- c.retries + 1;
            if !Trace.enabled then
              Trace.instant ~cat:"protocol"
                ~args:[ ("attempt", Trace.Int (Int64.of_int (attempt + 1))) ]
                "retry";
            t.config.sleep (backoff_delay t attempt);
            go (attempt + 1)
          end
          else begin
            note_failure t;
            c.fallbacks <- c.fallbacks + 1;
            Fallback f
          end
    in
    finish (go 0)

let predict t ~level ~features =
  match predict_result t ~level ~features with
  | Predicted m -> m
  | Fallback _ | Breaker_skip -> Modifier.null

let ping t = ping_once t

let stats t =
  match round_trip t Message.Stats_req with
  | Ok (Message.Stats_text s) -> Some s
  | _ -> None

let connect ?(model_name = "default") ?(lockstep = fun () -> ())
    ?(config = default_config) ch =
  (* a peer that dies mid-session must surface as EPIPE → Closed → a
     counted fallback, not a SIGPIPE kill of the whole compiler *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let t =
    {
      ch;
      lockstep;
      config;
      rng = Prng.create config.jitter_seed;
      counters = fresh_counters ();
      logged = Hashtbl.create 8;
      breaker = Breaker_closed;
      consecutive_failures = 0;
      open_skips = 0;
    }
  in
  let rec go attempt =
    match round_trip t (Message.Init { model_name }) with
    | Ok Message.Init_ok -> true
    | Ok _ | Error _ ->
        if attempt < config.max_retries then begin
          t.counters.retries <- t.counters.retries + 1;
          config.sleep (backoff_delay t attempt);
          go (attempt + 1)
        end
        else false
  in
  if not (go 0) then begin
    config.log
      "tessera-client: connect failed; starting with the circuit breaker \
       open (every prediction falls back to the default plan until the \
       server answers a ping)";
    trip t
  end;
  t

let shutdown t =
  (try
     Message.send t.ch Message.Shutdown;
     t.lockstep ()
   with _ -> ());
  try Channel.close t.ch with _ -> ()
