exception Closed
exception Timeout

(* one direction of an in-memory pipe: a queue of chunks plus an offset
   cursor into the front chunk, so reads cost O(bytes read) instead of
   rebuilding the whole buffered string on every call *)
type mem_stream = {
  chunks : string Queue.t;
  mutable offset : int;  (* consumed bytes of the front chunk *)
  mutable pending : int;  (* total unread bytes across all chunks *)
  mutable closed : bool;
}

type t =
  | Mem of { incoming : mem_stream; outgoing : mem_stream }
  | Fd of { fin : Unix.file_descr; fout : Unix.file_descr; mutable open_ : bool }
  | Wrapped of {
      base : t;
      on_write : t -> string -> unit;
      on_read : t -> deadline:float option -> int -> string;
      on_read_avail : t -> int -> string;
      on_close : t -> unit;
    }

let mem_stream () =
  { chunks = Queue.create (); offset = 0; pending = 0; closed = false }

let write t s =
  match t with
  | Mem m ->
      if m.outgoing.closed then raise Closed;
      if String.length s > 0 then begin
        Queue.add s m.outgoing.chunks;
        m.outgoing.pending <- m.outgoing.pending + String.length s
      end
  | Fd f ->
      if not f.open_ then raise Closed;
      let len = String.length s in
      let written = ref 0 in
      while !written < len do
        let n =
          try Unix.write_substring f.fout s !written (len - !written)
          with Unix.Unix_error (Unix.EPIPE, _, _) -> raise Closed
        in
        if n = 0 then raise Closed;
        written := !written + n
      done
  | Wrapped w -> w.on_write w.base s

let mem_take m buf n =
  (* precondition: m.pending >= n *)
  let need = ref n in
  while !need > 0 do
    let front = Queue.peek m.chunks in
    let avail = String.length front - m.offset in
    let take = min avail !need in
    Buffer.add_substring buf front m.offset take;
    m.offset <- m.offset + take;
    if m.offset = String.length front then begin
      ignore (Queue.pop m.chunks);
      m.offset <- 0
    end;
    m.pending <- m.pending - take;
    need := !need - take
  done

let read_exact ?deadline t n =
  match t with
  | Mem m ->
      if m.incoming.pending < n then
        (* data in an in-memory pair only arrives between calls, so a
           short buffer will never fill while we wait: closed means end
           of stream, otherwise the request has effectively timed out *)
        if m.incoming.closed then raise Closed else raise Timeout
      else begin
        let buf = Buffer.create n in
        mem_take m.incoming buf n;
        Buffer.contents buf
      end
  | Fd f ->
      if not f.open_ then raise Closed;
      let buf = Bytes.create n in
      let got = ref 0 in
      while !got < n do
        (match deadline with
        | None -> ()
        | Some d ->
            let remaining = d -. Unix.gettimeofday () in
            if remaining <= 0.0 then raise Timeout
            else
              let readable, _, _ = Unix.select [ f.fin ] [] [] remaining in
              if readable = [] then raise Timeout);
        let r = Unix.read f.fin buf !got (n - !got) in
        if r = 0 then raise Closed;
        got := !got + r
      done;
      Bytes.to_string buf
  | Wrapped w -> w.on_read w.base ~deadline n

(* Up to [n] bytes of whatever is already available, without blocking:
   the read primitive of a multiplexing poll loop.  "" means nothing is
   buffered right now; [Closed] is raised only once the stream is both
   exhausted and at end of stream, so buffered bytes written before a
   close are still delivered. *)
let read_avail t n =
  if n <= 0 then ""
  else
    match t with
    | Mem m ->
        if m.incoming.pending = 0 then
          if m.incoming.closed then raise Closed else ""
        else begin
          let take = min m.incoming.pending n in
          let buf = Buffer.create take in
          mem_take m.incoming buf take;
          Buffer.contents buf
        end
    | Fd f ->
        if not f.open_ then raise Closed;
        let readable, _, _ = Unix.select [ f.fin ] [] [] 0.0 in
        if readable = [] then ""
        else begin
          let buf = Bytes.create n in
          match Unix.read f.fin buf 0 n with
          | 0 -> raise Closed
          | r -> Bytes.sub_string buf 0 r
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ""
        end
    | Wrapped w -> w.on_read_avail w.base n

let rec drain t =
  match t with
  | Mem m ->
      let n = m.incoming.pending in
      Queue.clear m.incoming.chunks;
      m.incoming.offset <- 0;
      m.incoming.pending <- 0;
      n
  | Fd f ->
      if not f.open_ then 0
      else begin
        let buf = Bytes.create 4096 in
        let total = ref 0 in
        let continue = ref true in
        Unix.set_nonblock f.fin;
        (try
           while !continue do
             match Unix.read f.fin buf 0 (Bytes.length buf) with
             | 0 -> continue := false
             | r -> total := !total + r
             | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
               ->
                 continue := false
           done
         with e ->
           (try Unix.clear_nonblock f.fin with Unix.Unix_error _ -> ());
           raise e);
        (try Unix.clear_nonblock f.fin with Unix.Unix_error _ -> ());
        !total
      end
  | Wrapped w -> drain w.base

let close = function
  | Mem m ->
      m.outgoing.closed <- true;
      m.incoming.closed <- true
  | Fd f ->
      if f.open_ then begin
        f.open_ <- false;
        (try Unix.close f.fin with Unix.Unix_error _ -> ());
        if f.fout <> f.fin then
          try Unix.close f.fout with Unix.Unix_error _ -> ()
      end
  | Wrapped w -> w.on_close w.base

let wrap ?on_write ?on_read ?on_read_avail ?on_close base =
  Wrapped
    {
      base;
      on_write = (match on_write with Some f -> f | None -> write);
      on_read =
        (match on_read with
        | Some f -> f
        | None -> fun b ~deadline n -> read_exact ?deadline b n);
      on_read_avail =
        (match on_read_avail with Some f -> f | None -> read_avail);
      on_close = (match on_close with Some f -> f | None -> close);
    }

let of_fds fin fout = Fd { fin; fout; open_ = true }

(* The read descriptor under a channel, when there is one: what a select
   loop registers.  Wrappers delegate to their base, so a fault-injected
   socket connection is still pollable. *)
let rec read_fd = function
  | Mem _ -> None
  | Fd f -> if f.open_ then Some f.fin else None
  | Wrapped w -> read_fd w.base

let pipe_pair () =
  let a_to_b = mem_stream () in
  let b_to_a = mem_stream () in
  ( Mem { incoming = b_to_a; outgoing = a_to_b },
    Mem { incoming = a_to_b; outgoing = b_to_a } )

let fifo_pair ~path_a ~path_b =
  List.iter
    (fun p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      Unix.mkfifo p 0o600)
    [ path_a; path_b ];
  let open_a () =
    (* opening order matters with FIFOs: read end first, matching B *)
    let fin = Unix.openfile path_a [ Unix.O_RDONLY ] 0 in
    let fout = Unix.openfile path_b [ Unix.O_WRONLY ] 0 in
    of_fds fin fout
  in
  let open_b () =
    let fout = Unix.openfile path_a [ Unix.O_WRONLY ] 0 in
    let fin = Unix.openfile path_b [ Unix.O_RDONLY ] 0 in
    of_fds fin fout
  in
  (open_a, open_b)
