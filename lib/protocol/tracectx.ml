(* Compact trace context carried inside Predict/Prediction payloads: a
   trace id naming the end-to-end request and the sender's span id, so
   the server can parent its queue/batch/predict child spans under the
   client's root span.  Encoded as two trailing varints — absent bytes
   mean "untraced", and garbage bytes decode leniently to "untraced"
   rather than poisoning an otherwise well-formed frame (a corrupted
   trace context must never cost a protocol strike). *)

module Codec = Tessera_util.Codec

type t = { trace_id : int; span_id : int }

let none = { trace_id = 0; span_id = 0 }
let is_none c = c.trace_id = 0

(* process-wide id source; ids are positive so 0 can mean "untraced" *)
let counter = Atomic.make 1
let fresh_id () = Atomic.fetch_and_add counter 1
let reset_ids () = Atomic.set counter 1

let fresh () =
  let id = fresh_id () in
  { trace_id = id; span_id = id }

let child c = { c with span_id = fresh_id () }

let write buf c =
  Codec.write_varint buf c.trace_id;
  Codec.write_varint buf c.span_id

let read_opt r =
  if Codec.at_end r then none
  else
    try
      let trace_id = Codec.read_varint ~what:"trace id" r in
      let span_id = Codec.read_varint ~what:"span id" r in
      if trace_id <= 0 || span_id <= 0 then none else { trace_id; span_id }
    with Codec.Truncated _ | Invalid_argument _ -> none

let equal a b = a.trace_id = b.trace_id && a.span_id = b.span_id

let pp fmt c =
  if is_none c then Format.fprintf fmt "untraced"
  else Format.fprintf fmt "trace=%d span=%d" c.trace_id c.span_id
