module Metrics = Tessera_obs.Metrics
module Trace = Tessera_obs.Trace

type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

(* process-wide serving counters: one model server per process, so they
   live in the default registry and are what a [Stats_req] reports *)
let m_requests =
  lazy
    (Metrics.counter Metrics.default ~help:"messages handled by the model server"
       "server_requests_total")

let m_predictions =
  lazy
    (Metrics.counter Metrics.default ~help:"predictions answered"
       "server_predictions_total")

let m_errors =
  lazy
    (Metrics.counter Metrics.default
       ~help:"requests answered with an error reply" "server_errors_total")

let default_stats () = Metrics.expose Metrics.default

type session = {
  resync_budget : int;
  max_protocol_errors : int;
  mutable strikes : int;
}

let session ?(resync_budget = 4096) ?(max_protocol_errors = 64) () =
  { resync_budget; max_protocol_errors; strikes = 0 }

let strikes s = s.strikes

(* one more protocol error on this connection; [false] once the error
   budget is spent — a looping byzantine peer gets a bounded number of
   [Error_msg] replies, then the connection, not the server, pays *)
let strike session ch =
  session.strikes <- session.strikes + 1;
  if session.strikes > session.max_protocol_errors then begin
    (try
       Message.send ch (Message.Error_msg "protocol error budget exhausted")
     with _ -> ());
    (try Channel.close ch with _ -> ());
    false
  end
  else true

let step ?session:sess ?(stats = default_stats) ch predictor =
  let sess = match sess with Some s -> s | None -> session () in
  match Message.recv ~resync_budget:sess.resync_budget ch with
  | msg -> (
      Metrics.inc (Lazy.force m_requests);
      match msg with
      | Message.Init _ ->
          Message.send ch Message.Init_ok;
          true
      | Message.Ping ->
          Message.send ch Message.Pong;
          true
      | Message.Predict { level; features; trace } ->
          (match predictor ~level ~features with
          | modifier ->
              Metrics.inc (Lazy.force m_predictions);
              Message.send ch (Message.Prediction { modifier; trace })
          | exception e ->
              Metrics.inc (Lazy.force m_errors);
              Message.send ch (Message.Error_msg (Printexc.to_string e)));
          true
      | Message.Stats_req ->
          if !Trace.enabled then Trace.instant ~cat:"protocol" "stats_request";
          (match stats () with
          | text -> Message.send ch (Message.Stats_text text)
          | exception e ->
              Metrics.inc (Lazy.force m_errors);
              Message.send ch (Message.Error_msg (Printexc.to_string e)));
          true
      | Message.Shutdown -> false
      | Message.Init_ok | Message.Pong | Message.Prediction _
      | Message.Error_msg _ | Message.Stats_text _ | Message.Overloaded ->
          Metrics.inc (Lazy.force m_errors);
          Message.send ch (Message.Error_msg "unexpected client->server message");
          strike sess ch)
  | exception Message.Malformed w ->
      (* recv already tried to resynchronize; if it could not find a
         valid frame within its budget the stream is unsalvageable —
         close rather than serve from a desynced position *)
      (try Message.send ch (Message.Error_msg ("unrecoverable framing: " ^ w))
       with _ -> ());
      (try Channel.close ch with _ -> ());
      false

let serve ?session:sess ?stats ch predictor =
  let sess = match sess with Some s -> s | None -> session () in
  let continue = ref true in
  (try
     while !continue do
       match step ~session:sess ?stats ch predictor with
       | c -> continue := c
       | exception Channel.Timeout ->
           (* nothing buffered and no way to block for more (in-memory
              peer): retrying cannot make progress, so stop serving *)
           continue := false
     done
   with Channel.Closed -> ());
  try Channel.close ch with _ -> ()
