type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

let step ?(resync_budget = 4096) ch predictor =
  match Message.recv ~resync_budget ch with
  | Message.Init _ ->
      Message.send ch Message.Init_ok;
      true
  | Message.Ping ->
      Message.send ch Message.Pong;
      true
  | Message.Predict { level; features } ->
      (match predictor ~level ~features with
      | modifier -> Message.send ch (Message.Prediction { modifier })
      | exception e ->
          Message.send ch (Message.Error_msg (Printexc.to_string e)));
      true
  | Message.Shutdown -> false
  | Message.Init_ok | Message.Pong | Message.Prediction _ | Message.Error_msg _
    ->
      Message.send ch (Message.Error_msg "unexpected client->server message");
      true
  | exception Message.Malformed w ->
      (* recv already tried to resynchronize; if it could not find a
         valid frame within its budget the stream is unsalvageable —
         close rather than serve from a desynced position *)
      (try Message.send ch (Message.Error_msg ("unrecoverable framing: " ^ w))
       with _ -> ());
      (try Channel.close ch with _ -> ());
      false

let serve ch predictor =
  let continue = ref true in
  (try
     while !continue do
       match step ch predictor with
       | c -> continue := c
       | exception Channel.Timeout ->
           (* nothing buffered and no way to block for more (in-memory
              peer): retrying cannot make progress, so stop serving *)
           continue := false
     done
   with Channel.Closed -> ());
  try Channel.close ch with _ -> ()
