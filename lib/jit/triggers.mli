(** Compilation triggers.

    For each optimization level Testarossa uses three distinct compilation
    triggers, keyed on loop structure: methods that contain loops compile
    sooner than loop-free methods, and sooner still when the loops may
    iterate many times (footnote 6 of the paper).  The trigger value
    [T_h] also normalizes compilation cost in the ranking function,
    Eq. (2). *)

type loop_class = No_loops | Has_loops | Many_iterations

val loop_class_of : Tessera_il.Meth.t -> loop_class

val loop_class_of_features : Tessera_features.Features.t -> loop_class
(** Same classification from an already-extracted feature vector. *)

val trigger : Tessera_opt.Plan.level -> loop_class -> int
(** Invocation count at which a method becomes eligible for compilation
    at the level. *)

val sample_promote_cycles : int64
(** Accumulated-execution-cycle threshold at which the sampling mechanism
    promotes a method regardless of its invocation count (methods that
    "spend a significant amount of time during fewer invocations"). *)

val failure_backoff : int -> int
(** [failure_backoff attempts] multiplies a method's compilation trigger
    after [attempts] consecutive failed compilations ([2^attempts],
    capped at 64): a method whose compilations keep failing is retried
    ever more reluctantly until quarantine. *)
