(** The execution engine: a simulated JVM tying together the interpreter,
    the JIT compiler, the adaptive compilation controller, and an
    asynchronous compilation thread.

    Timing model: the application runs on a virtual core whose cycles are
    the {!Tessera_vm.Clock}.  Compilations run on a separate compilation
    thread: a request made at time [t] starts when the thread is free,
    takes the compilation's simulated cycles, and the new code installs at
    completion time — until then the method keeps running in its previous
    implementation (usually the interpreter).  A configurable contention
    factor charges a fraction of each compilation to the application
    thread, modelling shared pipeline/cache resources ("the compiler
    competes with the application for the same resources"). *)

module Program = Tessera_il.Program
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type impl = Interpreted | Compiled of Compiler.compilation

type method_state = {
  mutable impl : impl;
  mutable pending : (Compiler.compilation * int64) option;
      (** compiled code waiting for its install time *)
  mutable invocations : int;
  mutable acc_cycles : int64;  (** accumulated inclusive execution cycles *)
  mutable compile_count : int;
  mutable failed_attempts : int;
      (** consecutive failed compilation attempts; reset on success *)
  mutable no_more : bool;
      (** controller gave up on recompiling this (including quarantine
          after repeated compilation failures) *)
  mutable loop_cls : Triggers.loop_class option;  (** cached *)
}

type config = {
  async_compile : bool;
  instrument : bool;  (** per-invocation TSC enter/exit instrumentation *)
  contention : float;  (** fraction of compile cycles charged to the app *)
  compile_threads : int;
      (** parallel compilation threads: the queue drains proportionally
          faster, while compilation-time metrics still count total
          cycles *)
  trigger_scale : float;
      (** multiplier on the adaptive controller's level-up triggers; data
          collection raises it so methods dwell at each level long enough
          to explore modifiers there *)
  target : Tessera_vm.Target.t;
      (** the back-end the JIT generates code for (platform-sensitivity
          studies deploy the same models on different targets) *)
  fuel_per_invocation : int;
  clock_seed : int64;
  adaptive : bool;  (** run the built-in adaptive controller *)
  max_compile_attempts : int;
      (** failed compilation attempts tolerated per method before it is
          quarantined to its current implementation *)
  compile_cycle_budget : int option;
      (** when set, a compilation whose simulated cycles exceed the
          budget is not installed; the engine degrades the method to the
          next-lower plan level (and ultimately the interpreter) *)
  code_cache : Tessera_cache.Codecache.t option;
      (** persistent compiled-code cache: every compilation request
          first looks up (method IL fingerprint, target, level,
          modifier); a hit installs immediately for [aot_load_cycles]
          and counts as a {e cache hit}, not a compilation; every
          successful compilation is written back.  Corrupt or stale
          entries are dropped by the cache layer and simply recompile *)
  aot_load_cycles : int;
      (** cycle charge per cache hit — the simulated cost of relocating
          AOT code into the code heap (small next to any compilation) *)
  use_flat : bool;
      (** execute interpreted methods through the flat bytecode tier
          ([Flat.Interp] over a memoized [Flat.Prog]); observable
          behaviour — results, traps, charged cycles, fuel — is
          bit-identical to the tree walker, only host time differs.
          Also gated by the process-wide [Flat.Cache.enabled] escape
          hatch ([--no-flat]). *)
}

val default_config : config

type t

type callbacks = {
  choose_modifier : (t -> meth_id:int -> level:Plan.level -> Modifier.t option) option;
      (** consulted before each compilation; [None] from the callback
          means "do not compile now and stop recompiling this method".
          Unset: always the null modifier. *)
  on_compiled : (t -> meth_id:int -> Compiler.compilation -> unit) option;
  on_sample : (t -> meth_id:int -> cycles:int64 -> valid:bool -> unit) option;
      (** per-invocation instrumentation sample with {e exclusive} (self)
          cycles — callee time is reported against the callees; [valid] is
          false when the enter/exit processor ids differ (TSC-drift
          discard) *)
  post_invoke : (t -> meth_id:int -> unit) option;
      (** extra controller logic (data collection uses this to trigger
          fixed-threshold recompilations) *)
  pre_compile : (t -> meth_id:int -> level:Plan.level -> unit) option;
      (** run just before each compilation; raising aborts that
          compilation and exercises the failure/quarantine paths (the
          fault injector hooks in here) *)
}

val no_callbacks : callbacks

val create : ?config:config -> ?callbacks:callbacks -> Program.t -> t

val program : t -> Program.t
val state : t -> int -> method_state
val clock_now : t -> int64

(** {1 Compilation forking}

    The engine is a deterministic simulation: its entire future is a
    function of the virtual clock (cycles, core, migration RNG), the
    per-method states (installed code, pending installs, trigger
    counters), the compilation-thread horizon, and the per-engine
    flat-form memo.  {!snapshot} deep-copies exactly that state, and
    {!restore} rewinds an engine to it — so a data collector can, at a
    compile decision point, fork one branch per candidate modifier and
    measure every candidate from a single warm run ("compilation
    forking", see DESIGN.md §15).

    Metrics and trace output are observables, not simulation inputs:
    they are {e not} captured or rolled back (a restored engine keeps
    its monotonic counters).  One snapshot may seed any number of
    branches; every [restore] copies the state afresh. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewind [t] to [snapshot].  The snapshot must come from an engine
    over the same program (raises [Invalid_argument] otherwise). *)

val fork : ?callbacks:callbacks -> t -> t
(** A new engine over the same program and config whose deterministic
    state is a deep copy of [t]'s current state (fresh metrics
    registry, fresh trace claim).  Running the fork never perturbs
    [t]'s cycle stream.  [callbacks] replaces the parent's callbacks
    (default: inherit), which is how a collector gives each branch its
    own record sink. *)

val claim_trace_source : t -> unit
(** Re-register this engine's clock as the calling domain's trace cycle
    source ({!Tessera_obs.Trace.set_cycle_source}).  [create] and
    {!fork} claim it implicitly; a trunk engine re-claims after running
    forked branches on the same domain. *)

val invoke_entry : t -> Values.t array -> (Values.t, Values.trap) result
(** One invocation of the program's entry method, with trap capture and a
    fresh fuel budget. *)

val invoke_method : t -> int -> Values.t array -> (Values.t, Values.trap) result
(** Invoke an arbitrary method from outside (used by tests/examples). *)

val request_compile :
  t -> meth_id:int -> level:Plan.level -> ?modifier:Modifier.t -> unit -> unit
(** Explicit compilation request (the controller's and collector's tool).
    Consults [choose_modifier] only when [modifier] is not given; a
    [choose_modifier] that raises falls back to the default (null
    modifier) plan.  A compilation that raises leaves the method on its
    current implementation, counts a failure, and quarantines the method
    after [max_compile_attempts] consecutive failures; one that exceeds
    [compile_cycle_budget] is degraded level by level toward the
    interpreter.  Never raises. *)

(** {1 Metrics}

    Every aggregate counter below lives in a per-engine
    {!Tessera_obs.Metrics} registry (one simulated JVM, one registry) —
    the accessors are thin compatibility wrappers reading that single
    surface.  {!metrics} exposes the registry itself for Prometheus-style
    exposition ([tessera_run --metrics-out], the server's [Stats]
    request). *)

val metrics : t -> Tessera_obs.Metrics.t
(** The engine's registry: [jit_compilations_total],
    [jit_compile_cycles_total], [jit_compile_failures_total],
    [jit_budget_rejections_total], [jit_degraded_compiles_total],
    [jit_quarantined_methods_total], [jit_modifier_fallbacks_total],
    [jit_cache_hits_total], per-level [jit_compilations_<level>_total],
    the [jit_compile_queue_depth] gauge, and the [jit_compilation_cycles]
    histogram. *)

val app_cycles : t -> int64
val total_compile_cycles : t -> int64
val compile_count : t -> int
val compiles_by_level : t -> (Plan.level * int) list
val methods_compiled : t -> int

(** {1 Degradation metrics} *)

val compile_failures : t -> int
(** Compilations that raised (including injected faults). *)

val budget_rejections : t -> int
(** Compilations rejected for exceeding [compile_cycle_budget]. *)

val degraded_compiles : t -> int
(** Budget rejections that retried at a lower plan level. *)

val quarantined_methods : t -> int
(** Methods pinned to their current implementation after repeated
    failures (or an unaffordable cold plan). *)

val modifier_fallbacks : t -> int
(** Compilations that used the default plan because [choose_modifier]
    raised. *)

(** {1 Code-cache metrics} *)

val cache_hits : t -> int
(** Compilation requests satisfied from the persistent code cache (AOT
    loads); 0 when no cache is configured. *)

val cache_counters : t -> Tessera_cache.Store.counters option
(** The configured cache's own hit/miss/evict/stale/corrupt counters. *)
