(** One JIT compilation: features → plan (filtered by a modifier) →
    optimizer → code generator. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan

type compilation = {
  code : Tessera_codegen.Isa.compiled;
  level : Plan.level;
  modifier : Modifier.t;
  features : Tessera_features.Features.t;
      (** extracted just prior to the optimization stage *)
  compile_cycles : int;
  optimized_nodes : int;
  original_nodes : int;
}

exception Error of { meth : string; level : Plan.level; reason : string }
(** An internal optimizer/code-generator failure, wrapped with the
    method and level for telemetry; the engine's degradation layer
    catches this (and anything else) and falls back. *)

val compile :
  ?modifier:Modifier.t ->
  ?target:Tessera_vm.Target.t ->
  program:Program.t ->
  level:Plan.level ->
  Meth.t ->
  compilation
(** [modifier] defaults to the null modifier (the original Testarossa
    plan for the level); [target] to {!Tessera_vm.Target.zircon}.
    Internal failures are re-raised as {!Error}. *)
