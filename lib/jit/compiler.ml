module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Manager = Tessera_opt.Manager
module Features = Tessera_features.Features

type compilation = {
  code : Tessera_codegen.Isa.compiled;
  level : Plan.level;
  modifier : Modifier.t;
  features : Features.t;
  compile_cycles : int;
  optimized_nodes : int;
  original_nodes : int;
}

exception Error of { meth : string; level : Plan.level; reason : string }

let () =
  Printexc.register_printer (function
    | Error { meth; level; reason } ->
        Some
          (Printf.sprintf "Compiler.Error(%s at %s: %s)" meth
             (Plan.level_name level) reason)
    | _ -> None)

let compile_exn ~modifier ~target ~program ~level (m : Meth.t) =
  let features = Features.extract ~program m in
  let quality_floor =
    match level with
    | Plan.Cold | Plan.Warm -> Tessera_vm.Cost.Q_base
    | Plan.Hot | Plan.Very_hot | Plan.Scorching -> Tessera_vm.Cost.Q_regalloc
  in
  let result =
    Manager.optimize
      ~enabled:(Modifier.enabled_fun modifier)
      ~quality_floor ~program ~plan:(Plan.plan level) m
  in
  let code =
    Tessera_codegen.Lower.compile ~quality:result.Manager.quality ~target
      result.Manager.meth
  in
  {
    code;
    level;
    modifier;
    features;
    compile_cycles = Manager.total_cycles result;
    optimized_nodes = Meth.tree_count result.Manager.meth;
    original_nodes = Meth.tree_count m;
  }

let compile ?(modifier = Modifier.null) ?(target = Tessera_vm.Target.zircon)
    ~program ~level (m : Meth.t) =
  try compile_exn ~modifier ~target ~program ~level m
  with
  | Error _ as e -> raise e
  | e ->
      raise (Error { meth = m.Meth.name; level; reason = Printexc.to_string e })
