module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values
module Clock = Tessera_vm.Clock
module Interp = Tessera_vm.Interp
module Exec = Tessera_codegen.Exec
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Codecache = Tessera_cache.Codecache
module Flat_cache = Tessera_flat.Cache
module Flat_interp = Tessera_flat.Interp
module Trace = Tessera_obs.Trace
module Metrics = Tessera_obs.Metrics

type impl = Interpreted | Compiled of Compiler.compilation

type method_state = {
  mutable impl : impl;
  mutable pending : (Compiler.compilation * int64) option;
  mutable invocations : int;
  mutable acc_cycles : int64;
  mutable compile_count : int;
  mutable failed_attempts : int;
  mutable no_more : bool;
  mutable loop_cls : Triggers.loop_class option;
}

type config = {
  async_compile : bool;
  instrument : bool;
  contention : float;
  compile_threads : int;  (** compilation-queue service rate multiplier *)
  trigger_scale : float;  (** multiplier on adaptive level-up triggers *)
  target : Tessera_vm.Target.t;  (** back-end the JIT generates code for *)
  fuel_per_invocation : int;
  clock_seed : int64;
  adaptive : bool;
  max_compile_attempts : int;
  compile_cycle_budget : int option;
  code_cache : Codecache.t option;  (** persistent compiled-code cache *)
  aot_load_cycles : int;  (** cycles charged per cache hit (AOT load) *)
  use_flat : bool;
      (** run interpreted methods through the flat bytecode tier
          (cycle-identical to the tree walker, much faster on the host) *)
}

let default_config =
  {
    async_compile = true;
    instrument = false;
    contention = 0.02;
    compile_threads = 2;
    trigger_scale = 1.0;
    target = Tessera_vm.Target.zircon;
    fuel_per_invocation = 200_000_000;
    clock_seed = 0xC10CL;
    adaptive = true;
    max_compile_attempts = 2;
    compile_cycle_budget = None;
    code_cache = None;
    aot_load_cycles = 2_000;
    use_flat = true;
  }

type t = {
  program : Program.t;
  clock : Clock.t;
  states : method_state array;
  config : config;
  callbacks : callbacks;
  mutable compile_thread_free : int64;
  mutable pending_count : int;  (** methods queued for async install *)
  (* every aggregate counter lives in the per-engine metrics registry —
     the one surface every reporter (CLI, server stats, tests) reads;
     the .mli accessors below are thin wrappers over it *)
  metrics : Metrics.t;
  m_compilations : Metrics.counter;
  m_compile_cycles : Metrics.counter;
  m_compile_failures : Metrics.counter;
  m_budget_rejections : Metrics.counter;
  m_degraded : Metrics.counter;
  m_quarantined : Metrics.counter;
  m_modifier_fallbacks : Metrics.counter;
  m_cache_hits : Metrics.counter;
  m_by_level : Metrics.counter array;
  m_queue_depth : Metrics.gauge;
  m_compile_hist : Metrics.histogram;
  fuel : int ref;
  (* lazily flattened bytecode per method, for the flat interpreter
     tier.  Per-engine (not process-wide) so that same-seed engines
     produce byte-identical traces: each run flattens at the same
     virtual-cycle points. *)
  flat_forms : Tessera_flat.Prog.t option array;
  (* cycles consumed by direct callees of the currently-executing method,
     for exclusive (self-time) instrumentation samples *)
  mutable callee_acc : int64 ref;
}

and callbacks = {
  choose_modifier : (t -> meth_id:int -> level:Plan.level -> Modifier.t option) option;
  on_compiled : (t -> meth_id:int -> Compiler.compilation -> unit) option;
  on_sample : (t -> meth_id:int -> cycles:int64 -> valid:bool -> unit) option;
  post_invoke : (t -> meth_id:int -> unit) option;
  pre_compile : (t -> meth_id:int -> level:Plan.level -> unit) option;
}

let no_callbacks =
  {
    choose_modifier = None;
    on_compiled = None;
    on_sample = None;
    post_invoke = None;
    pre_compile = None;
  }

let create ?(config = default_config) ?(callbacks = no_callbacks) program =
  let clock = Clock.create ~seed:config.clock_seed () in
  (* events from clock-less subsystems (cache, protocol, faults) stamp
     with this engine's virtual time; last-created engine wins, which is
     right for the sequential runs the harness does *)
  Trace.set_cycle_source (fun () -> Clock.now clock);
  let metrics = Metrics.create () in
  let counter name help = Metrics.counter metrics ~help name in
  {
    program;
    clock;
    states =
      Array.init (Program.method_count program) (fun _ ->
          {
            impl = Interpreted;
            pending = None;
            invocations = 0;
            acc_cycles = 0L;
            compile_count = 0;
            failed_attempts = 0;
            no_more = false;
            loop_cls = None;
          });
    config;
    callbacks;
    compile_thread_free = 0L;
    pending_count = 0;
    metrics;
    m_compilations =
      counter "jit_compilations_total" "successful JIT compilations installed";
    m_compile_cycles =
      counter "jit_compile_cycles_total"
        "total simulated cycles spent in the compiler";
    m_compile_failures =
      counter "jit_compile_failures_total"
        "compilations that raised (including injected faults)";
    m_budget_rejections =
      counter "jit_budget_rejections_total"
        "compilations rejected for exceeding the cycle budget";
    m_degraded =
      counter "jit_degraded_compiles_total"
        "budget rejections retried at a lower plan level";
    m_quarantined =
      counter "jit_quarantined_methods_total"
        "methods pinned to their current implementation";
    m_modifier_fallbacks =
      counter "jit_modifier_fallbacks_total"
        "compilations on the default plan because the predictor raised";
    m_cache_hits =
      counter "jit_cache_hits_total"
        "compilation requests satisfied by the persistent code cache";
    m_by_level =
      Array.map
        (fun level ->
          counter
            (Printf.sprintf "jit_compilations_%s_total" (Plan.level_name level))
            (Printf.sprintf "compilations at the %s level"
               (Plan.level_name level)))
        Plan.levels;
    m_queue_depth =
      Metrics.gauge metrics
        ~help:"methods with compiled code awaiting async install"
        "jit_compile_queue_depth";
    m_compile_hist =
      Metrics.histogram metrics
        ~help:"simulated cycles per compiler run" "jit_compilation_cycles";
    fuel = ref 0;
    flat_forms = Array.make (Program.method_count program) None;
    callee_acc = ref 0L;
  }

let program t = t.program
let state t i = t.states.(i)
let clock_now t = Clock.now t.clock
let metrics t = t.metrics

let claim_trace_source t = Trace.set_cycle_source (fun () -> Clock.now t.clock)

(* ------------------------------------------------------------------ *)
(* Compilation forking: snapshot / restore of the deterministic state   *)
(* ------------------------------------------------------------------ *)

(* Everything the simulation's future depends on: the virtual clock
   (cycles, core, migration schedule, RNG), every method's state
   (implementation, pending install, trigger counters), the compilation
   thread, the fuel/self-time accumulators, and the flat-form memo
   (flattening points are per-engine so same-seed engines stay
   byte-identical).  Metrics and trace state are observables, not
   inputs, and are deliberately NOT part of a snapshot: restoring never
   rolls a monotonic counter backwards. *)
type snapshot = {
  snap_clock : Clock.t;
  snap_states : method_state array;
  snap_compile_thread_free : int64;
  snap_pending_count : int;
  snap_fuel : int;
  snap_callee_acc : int64;
  snap_flat_forms : Tessera_flat.Prog.t option array;
}

(* method_state fields hold immutable values (compilations, levels), so
   a record copy is a deep copy of the deterministic state *)
let copy_method_state (st : method_state) = { st with impl = st.impl }

let snapshot t =
  {
    snap_clock = Clock.copy t.clock;
    snap_states = Array.map copy_method_state t.states;
    snap_compile_thread_free = t.compile_thread_free;
    snap_pending_count = t.pending_count;
    snap_fuel = !(t.fuel);
    snap_callee_acc = !(t.callee_acc);
    snap_flat_forms = Array.copy t.flat_forms;
  }

(* restore copies out of the snapshot again, so one snapshot can seed
   any number of forked branches *)
let restore t snap =
  if Array.length t.states <> Array.length snap.snap_states then
    invalid_arg "Engine.restore: snapshot from a different program";
  Clock.restore t.clock snap.snap_clock;
  Array.iteri
    (fun i st -> t.states.(i) <- copy_method_state st)
    snap.snap_states;
  t.compile_thread_free <- snap.snap_compile_thread_free;
  t.pending_count <- snap.snap_pending_count;
  Metrics.set_gauge t.m_queue_depth (float_of_int t.pending_count);
  t.fuel := snap.snap_fuel;
  t.callee_acc <- ref snap.snap_callee_acc;
  Array.blit snap.snap_flat_forms 0 t.flat_forms 0 (Array.length t.flat_forms)

let fork ?callbacks t =
  let callbacks =
    match callbacks with Some c -> c | None -> t.callbacks
  in
  let t' = create ~config:t.config ~callbacks t.program in
  restore t' (snapshot t);
  t'

let meth_name t meth_id = (Program.meth t.program meth_id).Meth.name

let impl_level_name = function
  | Interpreted -> "interpreter"
  | Compiled c -> Plan.level_name c.Compiler.level

(* shared arg prefix of every jit trace event *)
let targs t meth_id rest = ("meth", Trace.Str (meth_name t meth_id)) :: rest

let loop_class t meth_id =
  let st = t.states.(meth_id) in
  match st.loop_cls with
  | Some c -> c
  | None ->
      let c = Triggers.loop_class_of (Program.meth t.program meth_id) in
      st.loop_cls <- Some c;
      c

let install_if_ready t meth_id st =
  match st.pending with
  | Some (comp, at) when Int64.compare (Clock.now t.clock) at >= 0 ->
      let prev = st.impl in
      st.impl <- Compiled comp;
      st.pending <- None;
      t.pending_count <- t.pending_count - 1;
      Metrics.set_gauge t.m_queue_depth (float_of_int t.pending_count);
      if !Trace.enabled then begin
        let now = Clock.now t.clock in
        let level = Plan.level_name comp.Compiler.level in
        Trace.instant ~cycles:now ~cat:"jit"
          ~args:
            (targs t meth_id
               [
                 ("level", Trace.Str level);
                 ("queue_wait", Trace.Int (Int64.sub now at));
               ])
          "install";
        Trace.instant ~cycles:now ~cat:"jit"
          ~args:
            (targs t meth_id
               [
                 ("from", Trace.Str (impl_level_name prev));
                 ("level", Trace.Str level);
               ])
          "promote";
        Trace.counter ~cycles:now ~cat:"jit" "compile_queue_depth"
          t.pending_count
      end
  | _ -> ()

let lower_level = function
  | Plan.Scorching -> Some Plan.Very_hot
  | Plan.Very_hot -> Some Plan.Hot
  | Plan.Hot -> Some Plan.Warm
  | Plan.Warm -> Some Plan.Cold
  | Plan.Cold -> None

let quarantine t meth_id st =
  if not st.no_more then begin
    st.no_more <- true;
    Metrics.inc t.m_quarantined;
    if !Trace.enabled then
      Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
        ~args:(targs t meth_id [])
        "quarantine"
  end

let entry_of_compilation (c : Compiler.compilation) : Codecache.entry =
  {
    Codecache.code = c.Compiler.code;
    level = c.Compiler.level;
    modifier = c.Compiler.modifier;
    features = c.Compiler.features;
    compile_cycles = c.Compiler.compile_cycles;
    optimized_nodes = c.Compiler.optimized_nodes;
    original_nodes = c.Compiler.original_nodes;
  }

let compilation_of_entry (e : Codecache.entry) : Compiler.compilation =
  {
    Compiler.code = e.Codecache.code;
    level = e.Codecache.level;
    modifier = e.Codecache.modifier;
    features = e.Codecache.features;
    compile_cycles = e.Codecache.compile_cycles;
    optimized_nodes = e.Codecache.optimized_nodes;
    original_nodes = e.Codecache.original_nodes;
  }

let cache_key t ~meth_id ~level ~modifier =
  Codecache.fingerprint ~target:t.config.target ~level ~modifier
    (Program.meth t.program meth_id)

(* An AOT load: cached code installs immediately (no compilation thread,
   no contention) for a small configurable cycle charge.  It is not a
   compilation — compile_count, per-level counts, and [on_compiled] are
   untouched, which is what lets a warm run report zero compilations. *)
let install_cached t ~meth_id (st : method_state) comp =
  Metrics.inc t.m_cache_hits;
  st.failed_attempts <- 0;
  Clock.advance t.clock t.config.aot_load_cycles;
  let prev = st.impl in
  st.impl <- Compiled comp;
  st.pending <- None;
  if !Trace.enabled then begin
    let now = Clock.now t.clock in
    let level = Plan.level_name comp.Compiler.level in
    Trace.instant ~cycles:now ~cat:"jit"
      ~args:
        (targs t meth_id
           [
             ("level", Trace.Str level);
             ("modifier", Trace.Str (Modifier.to_string comp.Compiler.modifier));
           ])
      "cache_hit";
    Trace.instant ~cycles:now ~cat:"jit"
      ~args:
        (targs t meth_id
           [ ("from", Trace.Str (impl_level_name prev)); ("level", Trace.Str level) ])
      "promote"
  end

let install t ~meth_id ~level (st : method_state) comp =
  (match t.config.code_cache with
  | Some cache ->
      (* write-back: whatever we just paid to compile is the warm start
         of the next run (a cache failure must never fail the engine) *)
      let key =
        cache_key t ~meth_id ~level:comp.Compiler.level
          ~modifier:comp.Compiler.modifier
      in
      (try Codecache.store cache ~key (entry_of_compilation comp)
       with _ -> ())
  | None -> ());
  Metrics.inc t.m_compilations;
  Metrics.inc t.m_by_level.(Plan.level_index level);
  st.compile_count <- st.compile_count + 1;
  st.failed_attempts <- 0;
  if t.config.async_compile then begin
    let now = Clock.now t.clock in
    let start =
      if Int64.compare t.compile_thread_free now > 0 then t.compile_thread_free
      else now
    in
    let duration =
      comp.Compiler.compile_cycles / max 1 t.config.compile_threads
    in
    let finish = Int64.add start (Int64.of_int duration) in
    t.compile_thread_free <- finish;
    st.pending <- Some (comp, finish);
    t.pending_count <- t.pending_count + 1;
    Metrics.set_gauge t.m_queue_depth (float_of_int t.pending_count);
    if !Trace.enabled then begin
      Trace.instant ~cycles:now ~cat:"jit"
        ~args:
          (targs t meth_id
             [
               ("level", Trace.Str (Plan.level_name level));
               ("ready_at", Trace.Int finish);
             ])
        "queue_enqueue";
      Trace.counter ~cycles:now ~cat:"jit" "compile_queue_depth"
        t.pending_count
    end
  end
  else begin
    Clock.advance t.clock comp.Compiler.compile_cycles;
    let prev = st.impl in
    st.impl <- Compiled comp;
    st.pending <- None;
    if !Trace.enabled then
      Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
        ~args:
          (targs t meth_id
             [
               ("from", Trace.Str (impl_level_name prev));
               ("level", Trace.Str (Plan.level_name level));
             ])
        "promote"
  end;
  match t.callbacks.on_compiled with
  | Some f -> f t ~meth_id comp
  | None -> ()

(* A compilation that raises never takes the engine down: the method
   keeps its current implementation (usually the interpreter), the
   failure is counted, and after [max_compile_attempts] failures the
   method is quarantined ([no_more]).  A compilation that exceeds the
   cycle budget degrades down the plan ladder
   (scorching → … → cold → interpreter). *)
let rec do_compile t ~meth_id ~level ~modifier =
  let st = t.states.(meth_id) in
  match
    match t.config.code_cache with
    | None -> None
    | Some cache ->
        let key = cache_key t ~meth_id ~level ~modifier in
        let entry = Codecache.lookup cache ~key ~level ~modifier in
        if entry = None && !Trace.enabled then
          Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
            ~args:(targs t meth_id [ ("level", Trace.Str (Plan.level_name level)) ])
            "cache_miss";
        entry
  with
  | Some entry ->
      (* lookup-before-compile: the cache already holds code for exactly
         this (method IL, target, level, modifier) *)
      install_cached t ~meth_id st (compilation_of_entry entry)
  | None -> do_compile_miss t ~meth_id ~level ~modifier

and do_compile_miss t ~meth_id ~level ~modifier =
  let st = t.states.(meth_id) in
  let tracing = !Trace.enabled in
  if tracing then
    Trace.span_begin ~cycles:(Clock.now t.clock) ~cat:"jit"
      ~args:
        (targs t meth_id
           [
             ("level", Trace.Str (Plan.level_name level));
             ("modifier", Trace.Str (Modifier.to_string modifier));
           ])
      "compile";
  match
    (match t.callbacks.pre_compile with
    | Some f -> f t ~meth_id ~level
    | None -> ());
    Compiler.compile ~modifier ~target:t.config.target ~program:t.program
      ~level
      (Program.meth t.program meth_id)
  with
  | exception _ ->
      if tracing then
        Trace.span_end ~cycles:(Clock.now t.clock) ~cat:"jit"
          ~args:(targs t meth_id [ ("ok", Trace.Str "false") ])
          "compile";
      Metrics.inc t.m_compile_failures;
      st.failed_attempts <- st.failed_attempts + 1;
      if st.failed_attempts >= t.config.max_compile_attempts then
        quarantine t meth_id st
  | comp -> (
      (* the compiler ran either way: its cycles are spent and part of
         them steal application cycles *)
      Metrics.add t.m_compile_cycles comp.Compiler.compile_cycles;
      Metrics.observe t.m_compile_hist
        (float_of_int comp.Compiler.compile_cycles);
      Clock.advance t.clock
        (int_of_float
           (t.config.contention *. float_of_int comp.Compiler.compile_cycles));
      if tracing then
        Trace.span_end ~cycles:(Clock.now t.clock) ~cat:"jit"
          ~args:
            (targs t meth_id
               [
                 ( "compile_cycles",
                   Trace.Int (Int64.of_int comp.Compiler.compile_cycles) );
               ])
          "compile";
      match t.config.compile_cycle_budget with
      | Some budget when comp.Compiler.compile_cycles > budget -> (
          Metrics.inc t.m_budget_rejections;
          if tracing then
            Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
              ~args:
                (targs t meth_id
                   [ ("level", Trace.Str (Plan.level_name level)) ])
              "budget_reject";
          let current_level_index =
            match st.impl with
            | Compiled c -> Some (Plan.level_index c.Compiler.level)
            | Interpreted -> None
          in
          match lower_level level with
          | Some l
            when current_level_index = None
                 || Option.get current_level_index < Plan.level_index l ->
              Metrics.inc t.m_degraded;
              if tracing then
                Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
                  ~args:
                    (targs t meth_id
                       [
                         ("from", Trace.Str (Plan.level_name level));
                         ("level", Trace.Str (Plan.level_name l));
                       ])
                  "degrade";
              do_compile t ~meth_id ~level:l ~modifier
          | Some _ ->
              (* the ladder only leads to levels the method already runs
                 at: re-promotion can't beat the budget, so back off and
                 eventually stop trying *)
              st.failed_attempts <- st.failed_attempts + 1;
              if st.failed_attempts >= t.config.max_compile_attempts then
                quarantine t meth_id st
          | None ->
              (* even the cold plan blows the budget: stay interpreted *)
              quarantine t meth_id st)
      | _ -> install t ~meth_id ~level st comp)

let request_compile t ~meth_id ~level ?modifier () =
  let st = t.states.(meth_id) in
  if st.pending <> None then ()
  else
    match modifier with
    | Some m -> do_compile t ~meth_id ~level ~modifier:m
    | None -> (
        match t.callbacks.choose_modifier with
        | None -> do_compile t ~meth_id ~level ~modifier:Modifier.null
        | Some choose -> (
            match choose t ~meth_id ~level with
            | Some m -> do_compile t ~meth_id ~level ~modifier:m
            | None -> st.no_more <- true
            | exception _ ->
                (* a failing predictor must not stop compilation: fall
                   back to the paper's default plan *)
                Metrics.inc t.m_modifier_fallbacks;
                if !Trace.enabled then
                  Trace.instant ~cycles:(Clock.now t.clock) ~cat:"jit"
                    ~args:
                      (targs t meth_id
                         [ ("level", Trace.Str (Plan.level_name level)) ])
                    "modifier_fallback";
                do_compile t ~meth_id ~level ~modifier:Modifier.null))

let next_level st =
  match st.impl with
  | Interpreted -> Some Plan.Cold
  | Compiled c -> (
      match c.Compiler.level with
      | Plan.Cold -> Some Plan.Warm
      | Plan.Warm -> Some Plan.Hot
      | Plan.Hot -> Some Plan.Very_hot
      | Plan.Very_hot -> Some Plan.Scorching
      | Plan.Scorching -> None)

let adaptive_controller t meth_id =
  let st = t.states.(meth_id) in
  if st.no_more || st.pending <> None then ()
  else
    match next_level st with
    | None -> ()
    | Some level ->
        let cls = loop_class t meth_id in
        let threshold =
          int_of_float
            (t.config.trigger_scale
            *. float_of_int (Triggers.trigger level cls))
          * Triggers.failure_backoff st.failed_attempts
        in
        let promoted_by_sampling =
          Int64.compare st.acc_cycles Triggers.sample_promote_cycles >= 0
          && level <> Plan.Scorching
        in
        if st.invocations >= threshold || promoted_by_sampling then
          request_compile t ~meth_id ~level ()

let instrumentation_overhead = 35 (* cycles per TR_jitPTTMethod{Enter,Exit} *)

(* Memoized flat form of an interpreted method, optionally backed by the
   persistent code cache (warm runs then skip re-flattening too).  The
   unfused base form is what persists; fusion is reapplied per the
   process-wide toggle. *)
let flat_form t meth_id meth =
  match t.flat_forms.(meth_id) with
  | Some p -> p
  | None ->
      let base =
        match t.config.code_cache with
        | None -> Flat_cache.flatten meth
        | Some cache -> (
            match Codecache.lookup_flat cache ~meth with
            | Some p -> p
            | None ->
                let p = Flat_cache.flatten meth in
                Codecache.store_flat cache ~meth p;
                p)
      in
      let p =
        if Flat_cache.fuse_enabled () then Tessera_flat.Prog.fuse base
        else base
      in
      t.flat_forms.(meth_id) <- Some p;
      p

let rec invoke t meth_id args =
  let st = t.states.(meth_id) in
  install_if_ready t meth_id st;
  st.invocations <- st.invocations + 1;
  if t.config.instrument then Clock.advance t.clock instrumentation_overhead;
  let enter_cycles, enter_cpu = Clock.read_tsc t.clock in
  let charge n = Clock.advance t.clock n in
  let parent_acc = t.callee_acc in
  let my_acc = ref 0L in
  t.callee_acc <- my_acc;
  let account () =
    if t.config.instrument then Clock.advance t.clock instrumentation_overhead;
    let exit_cycles, exit_cpu = Clock.read_tsc t.clock in
    let delta = Int64.sub exit_cycles enter_cycles in
    (* self time: callee cycles are reported against the callees *)
    let exclusive = Int64.sub delta !my_acc in
    t.callee_acc <- parent_acc;
    parent_acc := Int64.add !parent_acc delta;
    st.acc_cycles <- Int64.add st.acc_cycles delta;
    (match t.callbacks.on_sample with
    | Some f when t.config.instrument ->
        f t ~meth_id ~cycles:exclusive ~valid:(enter_cpu = exit_cpu)
    | _ -> ());
    if t.config.adaptive then adaptive_controller t meth_id;
    match t.callbacks.post_invoke with Some f -> f t ~meth_id | None -> ()
  in
  let result =
    try
      match st.impl with
      | Interpreted ->
          let ictx =
            {
              Interp.classes = t.program.Program.classes;
              charge;
              invoke = (fun id args -> invoke t id args);
              fuel = t.fuel;
            }
          in
          let meth = Program.meth t.program meth_id in
          if t.config.use_flat && Flat_cache.enabled () then
            Flat_interp.run ictx (flat_form t meth_id meth) args
          else Interp.run ictx meth args
      | Compiled comp ->
          Exec.run
            {
              Exec.classes = t.program.Program.classes;
              charge;
              invoke = (fun id args -> invoke t id args);
              fuel = t.fuel;
            }
            comp.Compiler.code args
    with e ->
      account ();
      raise e
  in
  account ();
  result

let invoke_method t meth_id args =
  t.fuel := t.config.fuel_per_invocation;
  match invoke t meth_id args with
  | v -> Ok v
  | exception Values.Trap k -> Error k

let invoke_entry t args = invoke_method t t.program.Program.entry args

let app_cycles t = Clock.now t.clock

(* the aggregate counters live in the metrics registry; these accessors
   are compatibility wrappers over that single surface *)
let total_compile_cycles t = Int64.of_int (Metrics.counter_value t.m_compile_cycles)
let compile_count t = Metrics.counter_value t.m_compilations
let compile_failures t = Metrics.counter_value t.m_compile_failures
let budget_rejections t = Metrics.counter_value t.m_budget_rejections
let degraded_compiles t = Metrics.counter_value t.m_degraded
let quarantined_methods t = Metrics.counter_value t.m_quarantined
let modifier_fallbacks t = Metrics.counter_value t.m_modifier_fallbacks
let cache_hits t = Metrics.counter_value t.m_cache_hits
let cache_counters t = Option.map Codecache.counters t.config.code_cache

let compiles_by_level t =
  Array.to_list
    (Array.mapi
       (fun i c -> (Plan.level_of_index i, Metrics.counter_value c))
       t.m_by_level)
  |> List.filter (fun (_, c) -> c > 0)

let methods_compiled t =
  Array.fold_left
    (fun acc (st : method_state) -> if st.compile_count > 0 then acc + 1 else acc)
    0 t.states
