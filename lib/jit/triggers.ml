module Plan = Tessera_opt.Plan
module Features = Tessera_features.Features

type loop_class = No_loops | Has_loops | Many_iterations

let loop_class_of m =
  let f = Features.extract m in
  if Features.get f 10 <> 0 || Features.get f 12 <> 0 then Many_iterations
  else if Features.get f 11 <> 0 then Has_loops
  else No_loops

let loop_class_of_features f =
  if Features.get f 10 <> 0 || Features.get f 12 <> 0 then Many_iterations
  else if Features.get f 11 <> 0 then Has_loops
  else No_loops

let base_trigger = function
  | Plan.Cold -> 8
  | Plan.Warm -> 25
  | Plan.Hot -> 80
  | Plan.Very_hot -> 8_000
  | Plan.Scorching -> 40_000

let trigger level cls =
  let b = base_trigger level in
  match cls with
  | Many_iterations -> max 1 (b / 4)
  | Has_loops -> max 1 (b / 2)
  | No_loops -> b

let sample_promote_cycles = 600_000_000L (* 300 virtual ms *)

let failure_backoff attempts =
  if attempts <= 0 then 1 else 1 lsl min attempts 6
