(** Corruption-safe single-file key/value store with an in-memory LRU
    index — the on-disk layer of the persistent code cache.

    File layout: a 5-byte header (magic ["TSCC"], format-version byte)
    followed by a sequence of frames, each

    {v  0xE5 | varint payload_len | payload | crc32(payload) as i64  v}

    where the payload is an 8-byte little-endian key followed by the
    value bytes.  Every anomaly on load — bad magic, bad version, torn
    frame, CRC mismatch — drops the affected entries (never the whole
    process), bumps {!counters}, and lets the reader carry on with
    whatever verified intact: a cache can only ever make a run faster,
    never wronger.

    New entries are appended (and flushed) immediately so they survive a
    crash mid-run; duplicate keys are superseded by the later frame.
    [close] compacts live entries through {!Tessera_util.Fileio}'s
    atomic write, reclaiming superseded/evicted frames and scrubbing any
    damage found on load.  Capacity is enforced in frame bytes with
    least-recently-{e used} eviction (lookups refresh recency). *)

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable corrupt_entries : int;
      (** load/decode anomalies: torn frames, CRC mismatches, bad magic,
          undecodable payloads reported via {!drop_corrupt} *)
  mutable stale_entries : int;
      (** well-formed but outdated: format-version mismatch, or a
          metadata mismatch reported via {!drop_stale} *)
}

type t

val open_ : path:string -> capacity_bytes:int -> readonly:bool -> t
(** Loads and verifies [path] (a missing file is an empty store).
    Never raises on damaged content — damage is counted and skipped. *)

val find : t -> int64 -> string option
(** Counts a hit or miss and refreshes the entry's recency. *)

val add : t -> int64 -> string -> unit
(** Insert or supersede; appends a frame and evicts LRU entries while
    over capacity.  A no-op (not even a counter) on read-only stores. *)

val drop_corrupt : t -> int64 -> unit
(** The caller failed to decode a payload that passed the CRC: remove
    the entry and count it corrupt. *)

val drop_stale : t -> int64 -> unit
(** The payload decoded but its metadata does not match the request
    (fingerprint collision or format drift): remove and count stale. *)

val entry_count : t -> int

val byte_size : t -> int
(** Live frame bytes (what capacity bounds). *)

val counters : t -> counters
val readonly : t -> bool

val close : t -> unit
(** Compacts to disk (atomic replace) unless read-only; idempotent. *)

val pp_counters : Format.formatter -> counters -> unit
