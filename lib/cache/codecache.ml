module Codec = Tessera_util.Codec
module H = Tessera_util.Hash64
module Isa = Tessera_codegen.Isa
module Isa_codec = Tessera_codegen.Isa_codec
module Meth = Tessera_il.Meth
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Features = Tessera_features.Features
module Target = Tessera_vm.Target

type entry = {
  code : Isa.compiled;
  level : Plan.level;
  modifier : Modifier.t;
  features : Features.t;
  compile_cycles : int;
  optimized_nodes : int;
  original_nodes : int;
}

type t = Store.t

let format_version = 1
let file_name = "code.tscc"

exception Stale_schema

(* The feature-vector layout is versioned by its dimension, written as
   the first varint of every entry payload.  Entries written under an
   older layout decode as a clean stale miss (dropped and recounted as
   [stale]) rather than a decode error.  Deliberately NOT folded into
   [format_version]: that value salts the key fingerprint, so bumping it
   would turn old entries into silent misses that linger in the file
   instead of being reclaimed.  Historical note: the first shipped
   layout had no schema varint and began with a u8 plan level (0..4) —
   values a [Features.dim]-valued varint can never take, so pre-schema
   entries are detected as stale too. *)
let feature_schema = Features.dim

let create ~dir ?(capacity_mb = 64) ?(readonly = false) () =
  if (not readonly) && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Store.open_
    ~path:(Filename.concat dir file_name)
    ~capacity_bytes:(capacity_mb * 1024 * 1024)
    ~readonly

let fingerprint ~target ~level ~modifier m =
  let acc = H.string H.init "tessera-codecache" in
  let acc = H.int acc format_version in
  let acc = H.int64 acc (Meth.fingerprint m) in
  let acc = H.string acc target.Target.name in
  let acc = H.int acc (Plan.level_index level) in
  H.int64 acc (Modifier.to_bits modifier)

let encode_entry e =
  let buf = Buffer.create 512 in
  Codec.write_varint buf feature_schema;
  Codec.write_u8 buf (Plan.level_index e.level);
  Codec.write_i64 buf (Modifier.to_bits e.modifier);
  let fs = Features.to_array e.features in
  Codec.write_varint buf (Array.length fs);
  Array.iter (fun v -> Codec.write_varint buf v) fs;
  Codec.write_varint buf e.compile_cycles;
  Codec.write_varint buf e.optimized_nodes;
  Codec.write_varint buf e.original_nodes;
  Isa_codec.encode buf e.code;
  Buffer.contents buf

let decode_entry s =
  let r = Codec.reader_of_string s in
  let schema = Codec.read_varint ~what:"feature schema" r in
  if schema <> feature_schema then raise Stale_schema;
  let li = Codec.read_u8 ~what:"level" r in
  if li >= Array.length Plan.levels then
    raise (Isa_codec.Malformed "entry: bad level");
  let level = Plan.level_of_index li in
  let modifier = Modifier.of_bits (Codec.read_i64 ~what:"modifier" r) in
  let n = Codec.read_varint ~what:"feature count" r in
  if n <> Features.dim then raise (Isa_codec.Malformed "entry: bad features");
  let features =
    Features.of_array
      (Array.init n (fun _ -> Codec.read_varint ~what:"feature" r))
  in
  let compile_cycles = Codec.read_varint ~what:"compile cycles" r in
  let optimized_nodes = Codec.read_varint ~what:"optimized nodes" r in
  let original_nodes = Codec.read_varint ~what:"original nodes" r in
  let code = Isa_codec.decode r in
  if not (Codec.at_end r) then
    raise (Isa_codec.Malformed "entry: trailing bytes");
  { code; level; modifier; features; compile_cycles; optimized_nodes;
    original_nodes }

let lookup t ~key ~level ~modifier =
  match Store.find t key with
  | None -> None
  | Some bytes -> (
      match decode_entry bytes with
      | exception Stale_schema ->
          (* written under an older feature layout: a clean generational
             miss, not damage *)
          Store.drop_stale t key;
          None
      | exception _ ->
          (* CRC-clean but undecodable: treat exactly like disk damage *)
          Store.drop_corrupt t key;
          None
      | e ->
          if e.level = level && Modifier.equal e.modifier modifier then Some e
          else begin
            (* a fingerprint collision or codec drift: the entry is
               well-formed, just not the code we asked for *)
            Store.drop_stale t key;
            None
          end)

let store t ~key e = Store.add t key (encode_entry e)

(* -- flat-form persistence ------------------------------------------
   The flat tier rides the same store under its own key namespace
   ("tessera-flatcache" salt), so warm runs skip re-flattening as well
   as recompiling.  Only unfused base forms are persisted; fusion is a
   deterministic rewrite reapplied after load, keeping the bytes
   independent of the runtime fusion toggle. *)

module Flat_prog = Tessera_flat.Prog
module Flat_codec = Tessera_flat.Codec

let flat_key m =
  let acc = H.string H.init "tessera-flatcache" in
  let acc = H.int acc Flat_codec.format_version in
  H.int64 acc (Meth.fingerprint m)

let lookup_flat t ~meth =
  let key = flat_key meth in
  match Store.find t key with
  | None -> None
  | Some bytes -> (
      match Flat_codec.of_string bytes with
      | exception _ ->
          (* decode re-verifies structure and hash; any failure is
             indistinguishable from disk damage *)
          Store.drop_corrupt t key;
          None
      | p ->
          if Int64.equal p.Flat_prog.source_fp (Meth.fingerprint meth) then
            Some p
          else begin
            Store.drop_stale t key;
            None
          end)

let store_flat t ~meth p = Store.add t (flat_key meth) (Flat_codec.to_string p)

let entry_count = Store.entry_count
let byte_size = Store.byte_size
let readonly = Store.readonly
let counters = Store.counters
let pp_counters = Store.pp_counters
let close = Store.close
