module Codec = Tessera_util.Codec
module Crc32 = Tessera_util.Crc32
module Fileio = Tessera_util.Fileio

type counters = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable corrupt_entries : int;
  mutable stale_entries : int;
}

type slot = { mutable value : string; mutable tick : int; mutable bytes : int }

type t = {
  path : string;
  capacity : int;
  ro : bool;
  tbl : (int64, slot) Hashtbl.t;
  cnt : counters;
  mutable tick : int;
  mutable live_bytes : int;
  mutable dirty : bool;  (** file holds superseded/evicted/damaged frames *)
  mutable out : out_channel option;
  mutable closed : bool;
}

let magic = "TSCC"
let version = 1
let frame_magic = 0xE5

let frame_of key value =
  let payload = Buffer.create (String.length value + 8) in
  Codec.write_i64 payload key;
  Buffer.add_string payload value;
  let p = Buffer.contents payload in
  let buf = Buffer.create (String.length p + 16) in
  Codec.write_u8 buf frame_magic;
  Codec.write_varint buf (String.length p);
  Buffer.add_string buf p;
  Codec.write_i64 buf (Int64.of_int32 (Crc32.string p));
  Buffer.contents buf

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let insert t key value bytes =
  (match Hashtbl.find_opt t.tbl key with
  | Some old ->
      t.live_bytes <- t.live_bytes - old.bytes + bytes;
      t.dirty <- true;
      old.value <- value;
      old.bytes <- bytes;
      old.tick <- next_tick t
  | None ->
      t.live_bytes <- t.live_bytes + bytes;
      Hashtbl.replace t.tbl key { value; tick = next_tick t; bytes });
  ()

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some s ->
      t.live_bytes <- t.live_bytes - s.bytes;
      t.dirty <- true;
      Hashtbl.remove t.tbl key

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key (s : slot) acc ->
        match acc with
        | Some (_, (best : slot)) when best.tick <= s.tick -> acc
        | _ -> Some (key, s))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      remove t key;
      t.cnt.evictions <- t.cnt.evictions + 1

let enforce_capacity t =
  while t.live_bytes > t.capacity && Hashtbl.length t.tbl > 0 do
    evict_lru t
  done

(* Hand-rolled scan over the raw file image: unlike {!Codec.reader} it
   must survive arbitrary garbage at any offset and resume at the next
   frame boundary when the frame length is still trustworthy. *)
let load t s =
  let len = String.length s in
  if len = 0 then ()
  else if len < 5 || not (String.equal (String.sub s 0 4) magic) then begin
    t.cnt.corrupt_entries <- t.cnt.corrupt_entries + 1;
    t.dirty <- true
  end
  else if Char.code s.[4] <> version then begin
    t.cnt.stale_entries <- t.cnt.stale_entries + 1;
    t.dirty <- true
  end
  else begin
    let corrupt () =
      t.cnt.corrupt_entries <- t.cnt.corrupt_entries + 1;
      t.dirty <- true
    in
    (* returns (value, pos') or raises Exit on malformed/oversized input *)
    let read_varint pos =
      let rec go pos shift acc =
        if pos >= len || shift > 62 then raise Exit
        else
          let b = Char.code s.[pos] in
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
      in
      go pos 0 0
    in
    let read_i64 pos =
      let acc = ref 0L in
      for i = 7 downto 0 do
        acc :=
          Int64.logor
            (Int64.shift_left !acc 8)
            (Int64.of_int (Char.code s.[pos + i]))
      done;
      !acc
    in
    let pos = ref 5 in
    (try
       while !pos < len do
         if Char.code s.[!pos] <> frame_magic then begin
           (* unknown framing: the rest of the file is untrustworthy *)
           corrupt ();
           raise Exit
         end;
         let plen, p = read_varint (!pos + 1) in
         if p + plen + 8 > len then begin
           (* torn tail (e.g. crash mid-append) *)
           corrupt ();
           raise Exit
         end;
         let payload = String.sub s p plen in
         let stored = read_i64 (p + plen) in
         if
           plen >= 8
           && Int64.equal stored (Int64.of_int32 (Crc32.string payload))
         then begin
           let key = read_i64 p in
           let value = String.sub payload 8 (plen - 8) in
           insert t key value (p + plen + 8 - !pos)
         end
         else corrupt ();
         (* the frame length was covered by the scan either way: resume
            at the next frame boundary *)
         pos := p + plen + 8
       done
     with Exit -> ())
  end

let open_ ~path ~capacity_bytes ~readonly =
  let t =
    {
      path;
      capacity = capacity_bytes;
      ro = readonly;
      tbl = Hashtbl.create 64;
      cnt =
        {
          hits = 0;
          misses = 0;
          inserts = 0;
          evictions = 0;
          corrupt_entries = 0;
          stale_entries = 0;
        };
      tick = 0;
      live_bytes = 0;
      dirty = false;
      out = None;
      closed = false;
    }
  in
  (if Sys.file_exists path then
     let ic = open_in_bin path in
     Fun.protect
       ~finally:(fun () -> close_in ic)
       (fun () ->
         load t (really_input_string ic (in_channel_length ic))));
  enforce_capacity t;
  t

let trace_key name key =
  if !Tessera_obs.Trace.enabled then
    Tessera_obs.Trace.instant ~cat:"cache"
      ~args:[ ("key", Tessera_obs.Trace.Str (Printf.sprintf "%016Lx" key)) ]
      name

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some s ->
      t.cnt.hits <- t.cnt.hits + 1;
      s.tick <- next_tick t;
      trace_key "store_hit" key;
      Some s.value
  | None ->
      t.cnt.misses <- t.cnt.misses + 1;
      trace_key "store_miss" key;
      None

let out_channel t =
  match t.out with
  | Some oc -> oc
  | None ->
      let fresh = not (Sys.file_exists t.path) in
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 t.path
      in
      if fresh then begin
        output_string oc magic;
        output_char oc (Char.chr version)
      end;
      t.out <- Some oc;
      oc

let add t key value =
  if t.ro || t.closed then ()
  else begin
    let frame = frame_of key value in
    insert t key value (String.length frame);
    t.cnt.inserts <- t.cnt.inserts + 1;
    let oc = out_channel t in
    output_string oc frame;
    flush oc;
    enforce_capacity t
  end

let drop_corrupt t key =
  remove t key;
  t.cnt.corrupt_entries <- t.cnt.corrupt_entries + 1;
  trace_key "store_corrupt" key

let drop_stale t key =
  remove t key;
  t.cnt.stale_entries <- t.cnt.stale_entries + 1;
  trace_key "store_stale" key

let entry_count t = Hashtbl.length t.tbl
let byte_size t = t.live_bytes
let counters t = t.cnt
let readonly t = t.ro

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.out with
    | Some oc ->
        close_out oc;
        t.out <- None
    | None -> ());
    if (not t.ro) && t.dirty then begin
      let entries =
        Hashtbl.fold (fun key s acc -> (key, s) :: acc) t.tbl []
        |> List.sort (fun (_, (a : slot)) (_, (b : slot)) ->
               compare a.tick b.tick)
      in
      let buf = Buffer.create (t.live_bytes + 16) in
      Buffer.add_string buf magic;
      Codec.write_u8 buf version;
      List.iter
        (fun (key, s) -> Buffer.add_string buf (frame_of key s.value))
        entries;
      Fileio.atomic_write ~path:t.path (Buffer.contents buf);
      t.dirty <- false
    end
  end

let pp_counters fmt c =
  Format.fprintf fmt
    "hits=%d misses=%d inserts=%d evictions=%d stale=%d corrupt=%d" c.hits
    c.misses c.inserts c.evictions c.stale_entries c.corrupt_entries
