(** The persistent compiled-code cache: warm-start for the simulated JIT.

    Entries are whole compilation results — the {!Tessera_codegen.Isa}
    body plus the level/modifier/features/cycle metadata the engine
    tracks per installed compilation — keyed by a content fingerprint of
    (method IL hash, target, level, modifier, cache-format version).
    Anything that could change the generated code changes the key, so
    invalidation is structural: there is nothing to flush when a method,
    plan, or target changes, the old entries simply stop being found and
    age out of the LRU.

    A cache hit must be {e exactly} as trustworthy as a fresh
    compilation: a decoded entry whose payload is damaged (CRC, framing,
    codec errors) or whose metadata disagrees with the request
    (fingerprint collision) is dropped, counted, and the caller
    recompiles — cache trouble can never change program behaviour. *)

module Isa = Tessera_codegen.Isa
module Meth = Tessera_il.Meth
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Features = Tessera_features.Features
module Target = Tessera_vm.Target

type entry = {
  code : Isa.compiled;
  level : Plan.level;
  modifier : Modifier.t;
  features : Features.t;
  compile_cycles : int;
      (** what the original compilation cost — what a warm start saves *)
  optimized_nodes : int;
  original_nodes : int;
}
(** Mirrors [Tessera_jit.Compiler.compilation] field for field; the JIT
    converts at the boundary (the cache cannot depend on the JIT). *)

type t

val format_version : int
(** Bump on any codec or fingerprint change; old files then read as
    stale (version byte) or simply never hit (fingerprint salt). *)

val feature_schema : int
(** Feature-layout version written as the first varint of every entry
    payload (currently {!Features.dim}).  An entry carrying a different
    value — including pre-schema entries, which begin with a plan-level
    byte in [0..4] — decodes as a clean stale miss: dropped, counted
    under [stale], recompiled.  Kept out of {!format_version} on
    purpose, since that salts the lookup key and old entries would
    otherwise linger unreclaimed. *)

val file_name : string
(** Name of the store file inside the cache directory. *)

val create : dir:string -> ?capacity_mb:int -> ?readonly:bool -> unit -> t
(** Opens (creating [dir] if needed and not read-only) the store at
    [dir/]{!file_name}.  [capacity_mb] defaults to 64. *)

val fingerprint :
  target:Target.t ->
  level:Plan.level ->
  modifier:Modifier.t ->
  Meth.t ->
  int64
(** Stable across processes; includes {!format_version}. *)

val lookup :
  t -> key:int64 -> level:Plan.level -> modifier:Modifier.t -> entry option
(** Decode-and-verify: corrupt payloads and metadata mismatches return
    [None] (dropped and counted); never raises. *)

val store : t -> key:int64 -> entry -> unit
(** Write-back after a successful compilation; no-op when read-only. *)

(** {1 Flat-form persistence}

    The flat execution tier persists unfused flat programs in the same
    store under a separate key namespace, so warm runs skip
    re-flattening interpreted methods.  Same decode-and-verify
    contract as compiled entries: corrupt or stale bytes are dropped
    and [None] is returned, never an exception. *)

val flat_key : Meth.t -> int64

val lookup_flat : t -> meth:Meth.t -> Tessera_flat.Prog.t option

val store_flat : t -> meth:Meth.t -> Tessera_flat.Prog.t -> unit
(** [p] must be the unfused base form; no-op when read-only. *)

val entry_count : t -> int
val byte_size : t -> int
val readonly : t -> bool
val counters : t -> Store.counters
val pp_counters : Format.formatter -> Store.counters -> unit

val close : t -> unit
(** Compacts and persists; idempotent. *)

(** {1 Entry codec} (exposed for the qcheck round-trip properties) *)

val encode_entry : entry -> string
val decode_entry : string -> entry
(** Raises on malformed input (the exceptions {!lookup} absorbs). *)
