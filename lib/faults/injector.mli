(** Deterministic fault injector.

    Wraps a {!Tessera_protocol.Channel.t} and perturbs its traffic
    according to a {!Spec.t}, drawing every random decision from a
    seeded {!Tessera_util.Prng.t} so any failure found under a fault
    spec reproduces exactly from [(spec, seed)].  Frame-granular: each
    [Channel.write] call is one protocol frame, so [drop] loses whole
    frames and [corrupt] flips a bit inside one.  The injector also
    provides the JIT-side fault hook ({!compile_fault}) for the engine's
    degradation paths. *)

exception Injected of string
(** Raised by {!compile_fault} when a compile fault fires. *)

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable garbage : int;
  mutable delayed : int;
  mutable crashes : int;
  mutable revivals : int;
  mutable compile_faults : int;
}

type t

val create : ?sleep:(float -> unit) -> spec:Spec.t -> seed:int64 -> unit -> t
(** [sleep] implements [delay:MS] (default no-op; two-process harnesses
    pass [Unix.sleepf]). *)

val wrap_channel : t -> Tessera_protocol.Channel.t -> Tessera_protocol.Channel.t
(** Faults apply to this endpoint's writes; reads pass through but raise
    [Channel.Closed] while the endpoint is crashed. *)

val compile_fault : t -> meth_id:int -> unit
(** Raises {!Injected} with probability [spec.compile_fail]; wire into
    {!Tessera_jit.Engine.callbacks.pre_compile}. *)

val stats : t -> stats
val crashed : t -> bool
val pp_stats : Format.formatter -> stats -> unit
