(** Fault-specification language for the deterministic fault injector.

    A spec is a comma-separated list of [key:value] fields, e.g.
    ["drop:0.01,corrupt:0.005,delay:50,crash_after:200"]:

    - [drop:P] — each written frame is silently discarded with
      probability [P]
    - [corrupt:P] — one random bit of the frame is flipped with
      probability [P]
    - [dup:P] (alias [duplicate]) — the frame is written twice
    - [garbage:P] — 1–8 random bytes are injected before the frame
    - [delay:MS] — every delivered frame is delayed by [MS] milliseconds
      (via the injector's sleep hook; a no-op in lockstep simulations)
    - [crash_after:N] — the wrapped endpoint "crashes" after its [N]-th
      written frame: subsequent operations raise
      [Tessera_protocol.Channel.Closed]
    - [revive_after:M] — the crashed endpoint comes back after [M]
      further attempted operations (simulating an operator restart)
    - [compile_fail:P] — each JIT compilation raises with probability
      [P] (exercises the engine's degradation paths) *)

type t = {
  drop : float;
  corrupt : float;
  dup : float;
  garbage : float;
  delay_ms : int;
  crash_after : int option;
  revive_after : int option;
  compile_fail : float;
}

val default : t
(** All faults off. *)

val is_null : t -> bool

val no_crash : t -> t
(** The same spec with crash/revive removed — used for the client-side
    injector, which faults frames but never "crashes". *)

val parse : string -> (t, string) result
(** Empty string parses to {!default}. *)

val to_string : t -> string
