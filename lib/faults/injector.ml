module Channel = Tessera_protocol.Channel
module Prng = Tessera_util.Prng
module Trace = Tessera_obs.Trace

exception Injected of string

(* injected faults land on the same timeline as the JIT/cache events
   they perturb, so a trace shows cause next to effect *)
let trace_fault name =
  if !Trace.enabled then Trace.instant ~cat:"fault" name

type stats = {
  mutable writes : int;
  mutable reads : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable garbage : int;
  mutable delayed : int;
  mutable crashes : int;
  mutable revivals : int;
  mutable compile_faults : int;
}

let fresh_stats () =
  {
    writes = 0;
    reads = 0;
    dropped = 0;
    corrupted = 0;
    duplicated = 0;
    garbage = 0;
    delayed = 0;
    crashes = 0;
    revivals = 0;
    compile_faults = 0;
  }

type t = {
  spec : Spec.t;
  rng : Prng.t;
  stats : stats;
  sleep : float -> unit;
  mutable crashed : bool;
  mutable crash_ops : int;  (* operations attempted while crashed *)
  mutable next_crash_at : int option;  (* writes count that triggers a crash *)
}

let create ?(sleep = fun _ -> ()) ~spec ~seed () =
  {
    spec;
    rng = Prng.create seed;
    stats = fresh_stats ();
    sleep;
    crashed = false;
    crash_ops = 0;
    next_crash_at = spec.Spec.crash_after;
  }

let stats t = t.stats
let crashed t = t.crashed

let pp_stats fmt s =
  Format.fprintf fmt
    "writes=%d reads=%d dropped=%d corrupted=%d duplicated=%d garbage=%d \
     delayed=%d crashes=%d revivals=%d compile_faults=%d"
    s.writes s.reads s.dropped s.corrupted s.duplicated s.garbage s.delayed
    s.crashes s.revivals s.compile_faults

(* crash bookkeeping: after [crash_after] written frames the endpoint is
   "down" and every operation raises Closed; after [revive_after] further
   attempted operations it comes back (operator restart), with the
   underlying input flushed so the revived endpoint starts on a clean
   stream.  The crash trigger then re-arms [crash_after] writes in the
   future, so a revived endpoint gets a full fresh lease. *)
let check_crash t base =
  if t.crashed then begin
    t.crash_ops <- t.crash_ops + 1;
    match t.spec.Spec.revive_after with
    | Some m when t.crash_ops >= m ->
        t.crashed <- false;
        t.crash_ops <- 0;
        t.stats.revivals <- t.stats.revivals + 1;
        trace_fault "revival";
        t.next_crash_at <-
          Option.map (fun n -> t.stats.writes + n) t.spec.Spec.crash_after;
        ignore (Channel.drain base)
    | _ -> raise Channel.Closed
  end

let note_write t base =
  t.stats.writes <- t.stats.writes + 1;
  match t.next_crash_at with
  | Some n when (not t.crashed) && t.stats.writes > n ->
      t.crashed <- true;
      t.crash_ops <- 0;
      t.stats.crashes <- t.stats.crashes + 1;
      trace_fault "crash";
      ignore (Channel.drain base)
  | _ -> ()

let corrupt_string t s =
  let b = Bytes.of_string s in
  let i = Prng.int t.rng (Bytes.length b) in
  let bit = Prng.int t.rng 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.to_string b

let on_write t base s =
  note_write t base;
  check_crash t base;
  if Prng.bernoulli t.rng t.spec.Spec.drop then begin
    t.stats.dropped <- t.stats.dropped + 1;
    trace_fault "drop"
  end
  else begin
    if Prng.bernoulli t.rng t.spec.Spec.garbage then begin
      t.stats.garbage <- t.stats.garbage + 1;
      trace_fault "garbage";
      let n = 1 + Prng.int t.rng 8 in
      Channel.write base (String.init n (fun _ -> Char.chr (Prng.int t.rng 256)))
    end;
    let s =
      if String.length s > 0 && Prng.bernoulli t.rng t.spec.Spec.corrupt then begin
        t.stats.corrupted <- t.stats.corrupted + 1;
        trace_fault "corrupt";
        corrupt_string t s
      end
      else s
    in
    Channel.write base s;
    if Prng.bernoulli t.rng t.spec.Spec.dup then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      trace_fault "duplicate";
      Channel.write base s
    end;
    if t.spec.Spec.delay_ms > 0 then begin
      t.stats.delayed <- t.stats.delayed + 1;
      t.sleep (float_of_int t.spec.Spec.delay_ms /. 1000.0)
    end
  end

let on_read t base ~deadline n =
  check_crash t base;
  t.stats.reads <- t.stats.reads + 1;
  Channel.read_exact ?deadline base n

let on_read_avail t base n =
  check_crash t base;
  t.stats.reads <- t.stats.reads + 1;
  Channel.read_avail base n

let wrap_channel t ch =
  Channel.wrap
    ~on_write:(fun base s -> on_write t base s)
    ~on_read:(fun base ~deadline n -> on_read t base ~deadline n)
    ~on_read_avail:(fun base n -> on_read_avail t base n)
    ch

let compile_fault t ~meth_id =
  if Prng.bernoulli t.rng t.spec.Spec.compile_fail then begin
    t.stats.compile_faults <- t.stats.compile_faults + 1;
    trace_fault "compile_fault";
    raise (Injected (Printf.sprintf "injected compile fault (method %d)" meth_id))
  end
