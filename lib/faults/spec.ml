type t = {
  drop : float;
  corrupt : float;
  dup : float;
  garbage : float;
  delay_ms : int;
  crash_after : int option;
  revive_after : int option;
  compile_fail : float;
}

let default =
  {
    drop = 0.0;
    corrupt = 0.0;
    dup = 0.0;
    garbage = 0.0;
    delay_ms = 0;
    crash_after = None;
    revive_after = None;
    compile_fail = 0.0;
  }

let is_null s = s = default

let no_crash s = { s with crash_after = None; revive_after = None }

exception Bad of string

let probability what v =
  if v < 0.0 || v > 1.0 then
    raise (Bad (Printf.sprintf "%s: probability %g outside [0,1]" what v));
  v

let non_negative what v =
  if v < 0 then raise (Bad (Printf.sprintf "%s: negative count %d" what v));
  v

let parse str =
  let field acc kv =
    let kv = String.trim kv in
    if kv = "" then acc
    else
      match String.index_opt kv ':' with
      | None -> raise (Bad (Printf.sprintf "%S: expected key:value" kv))
      | Some i ->
          let k = String.trim (String.sub kv 0 i) in
          let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
          let fl () =
            match float_of_string_opt v with
            | Some f -> probability k f
            | None -> raise (Bad (Printf.sprintf "%s: bad number %S" k v))
          in
          let it () =
            match int_of_string_opt v with
            | Some n -> non_negative k n
            | None -> raise (Bad (Printf.sprintf "%s: bad count %S" k v))
          in
          (match k with
          | "drop" -> { acc with drop = fl () }
          | "corrupt" -> { acc with corrupt = fl () }
          | "dup" | "duplicate" -> { acc with dup = fl () }
          | "garbage" -> { acc with garbage = fl () }
          | "delay" -> { acc with delay_ms = it () }
          | "crash_after" -> { acc with crash_after = Some (it ()) }
          | "revive_after" -> { acc with revive_after = Some (it ()) }
          | "compile_fail" -> { acc with compile_fail = fl () }
          | _ -> raise (Bad (Printf.sprintf "unknown fault key %S" k)))
  in
  match List.fold_left field default (String.split_on_char ',' str) with
  | spec -> Ok spec
  | exception Bad msg -> Error msg

let to_string s =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun p -> parts := p :: !parts) fmt in
  if s.compile_fail > 0.0 then add "compile_fail:%g" s.compile_fail;
  (match s.revive_after with Some n -> add "revive_after:%d" n | None -> ());
  (match s.crash_after with Some n -> add "crash_after:%d" n | None -> ());
  if s.delay_ms > 0 then add "delay:%d" s.delay_ms;
  if s.garbage > 0.0 then add "garbage:%g" s.garbage;
  if s.dup > 0.0 then add "dup:%g" s.dup;
  if s.corrupt > 0.0 then add "corrupt:%g" s.corrupt;
  if s.drop > 0.0 then add "drop:%g" s.drop;
  if !parts = [] then "none" else String.concat "," !parts
