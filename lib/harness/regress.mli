(** Perf-regression sentinel: compare a candidate set of BENCH_*.json
    artifacts against a committed baseline set with noise-aware
    thresholds.

    Three threshold families, picked per metric: relative tolerance for
    wall-clock-derived speedups (run-to-run noise), an absolute budget
    with slack for bounded metrics (observability overhead must stay
    under the documented <3% budget regardless of the baseline), and
    exact structural invariants (clean drain, identical digests, zero
    lost requests).  A missing or unparseable artifact on either side,
    or a serving-mode mismatch, downgrades the affected checks to
    explicit skips — reported, never silently counted as passes. *)

type outcome = Pass | Fail | Skip

type result = {
  r_file : string;
  r_check : string;
  r_outcome : outcome;
  r_note : string;
}

val min_ratio_ok : baseline:float -> candidate:float -> tol:float -> bool
(** Higher-is-better gate: [candidate >= baseline * (1 - tol)].
    Non-finite values fail. *)

val max_abs_ok :
  baseline:float -> candidate:float -> floor:float -> slack:float -> bool
(** Lower-is-better gate: [candidate <= max floor (baseline + slack)].
    A non-finite candidate fails. *)

val run : ?baseline_dir:string -> ?candidate_dir:string -> unit -> result list
(** Evaluate every known BENCH_*.json spec; both directories default to
    ["."]. *)

val failed : result list -> bool
(** Any [Fail] present — the exit-1 condition. *)

val pp_results : Format.formatter -> result list -> unit
