(** Persistence of whole collection campaigns.

    Data collection is the expensive phase; this module saves a
    {!Collection.outcome} list to a directory (three .tsra archives per
    benchmark: randomized, progressive, merged) and loads it back, so
    training and evaluation can be re-run without re-collecting — the
    workflow the paper's "supporting tools to convert archives" serve. *)

val save : dir:string -> Collection.outcome list -> unit
(** Creates [dir] if needed; replaces existing archives {e atomically}
    (via {!Tessera_util.Fileio.atomic_write}), so a crash mid-save
    cannot leave a torn archive in the campaign dir. *)

val load : dir:string -> Collection.outcome list
(** Reconstructs outcomes from the archives in [dir].  Benchmarks are
    recognized by file name ([<name>.rand.tsra], [<name>.prog.tsra],
    [<name>.tsra]); files whose name is not a known benchmark (stray
    editor backups, foreign archives) are skipped with a warning on
    stderr rather than failing the whole campaign.  Collector
    statistics are not persisted and come back empty. *)

val is_campaign_dir : string -> bool
(** The directory exists and holds at least one merged archive. *)
