(** Experiment scaling.

    The paper's full campaign (L = 2000 progressive modifiers, 1.5-2.5M
    data instances per level, 30 JVM invocations per measurement on a
    16-node blade cluster) is far beyond a laptop-scale simulation run,
    so every knob scales down coherently from a single factor.  The
    defaults reproduce the paper's {e shapes} in minutes; [paper_scale]
    documents the full-size values. *)

type t = {
  scale : float;  (** global volume factor *)
  progressive_l : int;  (** Eq. 1's L (paper: 2000) *)
  randomized_count : int;
  randomized_density : float;
  uses_per_modifier : int;  (** paper: 50 *)
  collect_invocations : int;  (** entry-invocation budget per benchmark *)
  trials : int;  (** independent simulation runs per measurement *)
  noise_draws : int;  (** total measurement draws (paper: 30 runs) *)
  noise_sd : float;  (** relative measurement noise (OS jitter model) *)
  throughput_iterations : int;  (** paper: 10 *)
  bench_scale : float;  (** workload volume factor for benchmarks *)
  seed : int64;
  fork_fanout : int;
      (** candidate modifiers measured per fork point in forking
          collection (beyond the always-included null modifier) *)
}

val default : t
(** The configuration of the recorded experiment outputs. *)

val full : t
(** [default] with more independent trials per measurement. *)

val quick : t
(** Heavily down-scaled configuration for tests and smoke runs. *)

val paper_scale : t
(** The paper's own parameters, for documentation; running it would take
    a very long time. *)
