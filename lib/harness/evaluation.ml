module Stats = Tessera_util.Stats
module Prng = Tessera_util.Prng
module Pool = Tessera_util.Pool
module Suites = Tessera_workloads.Suites
module Generate = Tessera_workloads.Generate
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values

type run_metrics = {
  app_cycles : int64;
  compile_cycles : int64;
  compilations : int;
  methods_compiled : int;
}

let run_once ?(cfg = Expconfig.default) ?(target = Tessera_vm.Target.zircon)
    ?model ~bench ~iterations ~trial () =
  let bench = Suites.scale_bench bench cfg.Expconfig.bench_scale in
  let program = Generate.program bench.Suites.profile in
  let callbacks =
    match model with
    | None -> Engine.no_callbacks
    | Some ms ->
        {
          Engine.no_callbacks with
          Engine.choose_modifier = Some (Modelset.choose_modifier ms);
        }
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.clock_seed = Int64.add cfg.Expconfig.seed (Int64.of_int trial);
          target;
        }
      ~callbacks program
  in
  let arg_base = trial * 17 in
  for it = 0 to iterations - 1 do
    for k = 0 to bench.Suites.iteration_invocations - 1 do
      ignore
        (Engine.invoke_entry engine
           [| Values.Int_v (Int64.of_int (arg_base + (it * 31) + k)) |])
    done
  done;
  {
    app_cycles = Engine.app_cycles engine;
    compile_cycles = Engine.total_compile_cycles engine;
    compilations = Engine.compile_count engine;
    methods_compiled = Engine.methods_compiled engine;
  }

type cell = {
  bench : string;
  model : string;
  startup_perf : Stats.summary;
  startup_compile : Stats.summary;
  throughput_perf : Stats.summary;
  throughput_compile : Stats.summary;
}

(* How many of the [max trials noise_draws] total noise draws trial [i]
   contributes: the remainder of the division spreads over the leading
   trials, one extra draw each, so the total is exact.  (The old
   [noise_draws / trials] per trial silently dropped the remainder — 30
   draws over 4 trials measured 28 — and over-drew when [trials >
   noise_draws].) *)
let draws_for_trial ~trials ~noise_draws i =
  let total = max trials noise_draws in
  let base = total / trials in
  let rem = total mod trials in
  base + if i < rem then 1 else 0

(* expand per-trial cycle measurements into noisy relative samples *)
let relative_samples ~cfg ~rng ~invert base variant =
  let trials = Array.length base in
  let samples = ref [] in
  Array.iteri
    (fun i b ->
      let v = variant.(i) in
      let draws =
        draws_for_trial ~trials ~noise_draws:cfg.Expconfig.noise_draws i
      in
      for _ = 1 to draws do
        let noise () = 1.0 +. Prng.gaussian rng ~mu:0.0 ~sigma:cfg.Expconfig.noise_sd in
        let b = Int64.to_float b *. noise () in
        let v = Int64.to_float v *. noise () in
        let r = if invert then v /. b else b /. v in
        samples := r :: !samples
      done)
    base;
  Stats.summarize (Array.of_list !samples)

let evaluate_variant ~cfg ~bench ?model () =
  let trials = max 1 cfg.Expconfig.trials in
  let startup =
    Array.init trials (fun t -> run_once ~cfg ?model ~bench ~iterations:1 ~trial:t ())
  in
  let throughput =
    Array.init trials (fun t ->
        run_once ~cfg ?model ~bench
          ~iterations:cfg.Expconfig.throughput_iterations ~trial:t ())
  in
  (startup, throughput)

(* one cell from the already-measured baseline and variant runs; the
   noise rng is seeded per cell — a stable hash of (benchmark, model)
   mixed with the configured seed — and the four summaries consume it in
   a fixed order, so the numbers are independent of when (or on which
   domain) the underlying simulations ran, and no two cells share a
   noise stream.  (A constant per-cell seed would correlate the "OS
   jitter" across every cell of the matrix.) *)
let cell_seed ~cfg ~bench_name ~model_name =
  let module Hash64 = Tessera_util.Hash64 in
  let h = Hash64.string Hash64.init bench_name in
  let h = Hash64.string h model_name in
  Hash64.int64 h cfg.Expconfig.seed

let cell_of ~cfg ~bench (ms : Modelset.t) (base_startup, base_throughput) (s, t)
    =
  let rng =
    Prng.create
      (cell_seed ~cfg
         ~bench_name:bench.Suites.profile.Tessera_workloads.Profile.name
         ~model_name:ms.Modelset.name)
  in
  let app r = Array.map (fun m -> m.app_cycles) r in
  let comp r =
    Array.map (fun m -> Int64.add 1L m.compile_cycles) r
    (* +1 avoids 0/0 when nothing compiles in tiny configs *)
  in
  {
    bench = bench.Suites.profile.Tessera_workloads.Profile.name;
    model = ms.Modelset.name;
    startup_perf =
      relative_samples ~cfg ~rng ~invert:false (app base_startup) (app s);
    startup_compile =
      relative_samples ~cfg ~rng ~invert:true (comp base_startup) (comp s);
    throughput_perf =
      relative_samples ~cfg ~rng ~invert:false (app base_throughput) (app t);
    throughput_compile =
      relative_samples ~cfg ~rng ~invert:true (comp base_throughput) (comp t);
  }

let evaluate_bench ?(cfg = Expconfig.default) ?(jobs = 1) ~models bench =
  (* baseline first, then one task per model — the same evaluation
     order as the sequential code, whatever the domain count *)
  let tasks = None :: List.map (fun ms -> Some ms) models in
  let runs =
    Pool.run_list ~jobs (fun mo -> evaluate_variant ~cfg ~bench ?model:mo ())
      tasks
  in
  match runs with
  | base :: variants ->
      List.map2 (fun ms run -> cell_of ~cfg ~bench ms base run) models variants
  | [] -> assert false

type matrix = {
  spec_cells : cell list;
  dacapo_cells : cell list;
}

let full_matrix ?(cfg = Expconfig.default) ?(jobs = 1) ~loo
    ?(spec = Suites.specjvm98) ?(dacapo = Suites.dacapo) () =
  let all_models = List.map (fun (s : Training.loo_set) -> s.Training.modelset) loo in
  let models_for (b : Suites.bench) =
    if b.Suites.trainable then
      (* leave-one-out: only the model set that excludes this benchmark *)
      List.filter_map
        (fun (s : Training.loo_set) ->
          if s.Training.excluded_tag = b.Suites.tag then Some s.Training.modelset
          else None)
        loo
    else all_models
  in
  (* flatten both suites into one task list — a task is one variant
     (baseline or one model) of one benchmark, i.e. an independent
     seeded simulation — so the pool load-balances across every cell of
     the matrix at once *)
  let with_models suite = List.map (fun b -> (b, models_for b)) suite in
  let spec_bm = with_models spec and dacapo_bm = with_models dacapo in
  let tasks =
    List.concat_map
      (fun (b, models) ->
        (b, None) :: List.map (fun ms -> (b, Some ms)) models)
      (spec_bm @ dacapo_bm)
  in
  let runs =
    Pool.run_list ~jobs
      (fun (b, mo) -> evaluate_variant ~cfg ~bench:b ?model:mo ())
      tasks
  in
  (* reassemble in task order: for each benchmark, the baseline run
     followed by its model runs *)
  let remaining = ref runs in
  let take () =
    match !remaining with
    | r :: rest ->
        remaining := rest;
        r
    | [] -> assert false
  in
  let cells bm =
    List.concat_map
      (fun (b, models) ->
        let base = take () in
        List.map (fun ms -> cell_of ~cfg ~bench:b ms base (take ())) models)
      bm
  in
  let spec_cells = cells spec_bm in
  let dacapo_cells = cells dacapo_bm in
  { spec_cells; dacapo_cells }
