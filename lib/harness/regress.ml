(* Perf-regression sentinel over the committed BENCH_*.json baselines.

   Every benchmark surface writes a JSON artifact; this module compares
   a candidate set (a fresh run) against a baseline set (the committed
   files) with noise-aware thresholds: wall-clock-derived speedups get a
   relative tolerance wide enough for run-to-run noise, bounded-budget
   metrics (observability overhead) get an absolute ceiling with slack
   over the baseline, and structural invariants (clean drains, identical
   digests, zero lost requests) admit no tolerance at all.  A missing
   artifact on either side is a skip with a note, never a silent pass
   counted as coverage — the report says exactly what was not checked. *)

module Export = Tessera_obs.Export

type outcome = Pass | Fail | Skip

type result = {
  r_file : string;
  r_check : string;
  r_outcome : outcome;
  r_note : string;
}

(* ------------------------------------------------------------------ *)
(* Threshold primitives (unit-tested directly)                          *)
(* ------------------------------------------------------------------ *)

(* higher-is-better metric: the candidate may lose at most [tol]
   (relative) of the baseline.  Non-finite inputs always fail — a NaN
   speedup is a broken bench, not a pass. *)
let min_ratio_ok ~baseline ~candidate ~tol =
  Float.is_finite baseline && Float.is_finite candidate
  && candidate >= baseline *. (1.0 -. tol)

(* lower-is-better metric with a budget: the candidate must stay under
   [max floor (baseline + slack)] — the floor keeps a tiny baseline from
   turning measurement noise into a failure, the slack bounds drift. *)
let max_abs_ok ~baseline ~candidate ~floor ~slack =
  Float.is_finite candidate && candidate <= Float.max floor (baseline +. slack)

(* ------------------------------------------------------------------ *)
(* JSON plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let load_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> (
      match Export.parse_json s with
      | Ok j -> Ok j
      | Error e -> Error (Printf.sprintf "unparseable (%s)" e))
  | exception Sys_error _ -> Error "missing"

let rec lookup path j =
  match path with
  | [] -> Some j
  | k :: rest -> Option.bind (Export.member k j) (lookup rest)

let num path j =
  match lookup path j with
  | Some (Export.Num f) -> Some f
  | Some (Export.Bool b) -> Some (if b then 1.0 else 0.0)
  | _ -> None

let str path j =
  match lookup path j with Some (Export.Jstr s) -> Some s | _ -> None

let key_name path = String.concat "." path

(* ------------------------------------------------------------------ *)
(* Per-file check specifications                                        *)
(* ------------------------------------------------------------------ *)

type check =
  | Min_ratio of string list * float  (* higher-better, relative tolerance *)
  | Max_budget of string list * float * float  (* lower-better: floor, slack *)
  | Invariant_true of string list
  | Invariant_zero of string list
  | Same_mode of string list
      (* skip marker: ratio checks only compare like with like — a
         baseline recorded in one mode is no yardstick for another *)

let specs =
  [
    ( "BENCH_cache.json",
      [
        Min_ratio ([ "warm_tts_speedup" ], 0.15);
        Invariant_zero [ "runs"; "warm"; "compilations" ];
      ] );
    ( "BENCH_flat.json",
      [
        Min_ratio ([ "flat_speedup_geomean" ], 0.15);
        Min_ratio ([ "flat_super_speedup_geomean" ], 0.15);
        Min_ratio ([ "superinstruction_share" ], 0.25);
      ] );
    ( "BENCH_obs.json",
      [
        Max_budget ([ "overhead_pct" ], 3.0, 2.0);
        Invariant_zero [ "dropped" ];
      ] );
    ( "BENCH_profile.json",
      [
        Max_budget ([ "profiler_off_overhead_pct" ], 3.0, 2.0);
        Invariant_true [ "deterministic" ];
        Invariant_true [ "top_method_matches" ];
      ] );
    ( "BENCH_parallel.json",
      [ Invariant_true [ "digests_identical" ] ] );
    ( "BENCH_fork.json",
      [
        Min_ratio ([ "records_per_invocation_gain" ], 0.3);
        Invariant_true [ "oracle_ok" ];
      ] );
    ( "BENCH_serve.json",
      [
        Same_mode [ "mode" ];
        Invariant_zero [ "honest_lost" ];
        Invariant_true [ "drain_clean" ];
        Min_ratio ([ "predictions_per_sec" ], 0.6);
      ] );
  ]

let run_check ~file ~base ~cand check =
  let mk check_name outcome note =
    { r_file = file; r_check = check_name; r_outcome = outcome; r_note = note }
  in
  match check with
  | Min_ratio (path, tol) -> (
      let name = key_name path in
      match (num path base, num path cand) with
      | Some b, Some c ->
          if min_ratio_ok ~baseline:b ~candidate:c ~tol then
            mk name Pass (Printf.sprintf "%.4f vs baseline %.4f (tol %.0f%%)" c b (100. *. tol))
          else
            mk name Fail
              (Printf.sprintf "%.4f below %.4f - %.0f%% of baseline %.4f" c
                 (b *. (1.0 -. tol))
                 (100. *. tol) b)
      | None, _ -> mk name Skip "metric absent from baseline"
      | _, None -> mk name Fail "metric absent from candidate")
  | Max_budget (path, floor, slack) -> (
      let name = key_name path in
      match (num path base, num path cand) with
      | Some b, Some c ->
          if max_abs_ok ~baseline:b ~candidate:c ~floor ~slack then
            mk name Pass
              (Printf.sprintf "%.4f within budget %.4f" c
                 (Float.max floor (b +. slack)))
          else
            mk name Fail
              (Printf.sprintf "%.4f over budget %.4f (baseline %.4f)" c
                 (Float.max floor (b +. slack))
                 b)
      | None, _ -> mk name Skip "metric absent from baseline"
      | _, None -> mk name Fail "metric absent from candidate")
  | Invariant_true path -> (
      let name = key_name path in
      match num path cand with
      | Some 1.0 -> mk name Pass "holds"
      | Some _ -> mk name Fail "invariant violated"
      | None -> mk name Fail "invariant absent from candidate")
  | Invariant_zero path -> (
      let name = key_name path in
      match num path cand with
      | Some 0.0 -> mk name Pass "zero"
      | Some v -> mk name Fail (Printf.sprintf "expected 0, got %g" v)
      | None -> mk name Fail "invariant absent from candidate")
  | Same_mode path -> (
      let name = "mode" in
      match (str path base, str path cand) with
      | Some b, Some c when b <> c ->
          mk name Skip
            (Printf.sprintf "baseline mode %S vs candidate %S" b c)
      | _ -> mk name Pass "modes comparable")

let check_file ~baseline_dir ~candidate_dir (file, checks) =
  let bpath = Filename.concat baseline_dir file in
  let cpath = Filename.concat candidate_dir file in
  match (load_json bpath, load_json cpath) with
  | Error why, _ ->
      [ { r_file = file; r_check = "baseline"; r_outcome = Skip;
          r_note = "baseline " ^ why } ]
  | Ok _, Error why ->
      [ { r_file = file; r_check = "candidate"; r_outcome = Skip;
          r_note = "candidate " ^ why } ]
  | Ok base, Ok cand ->
      let results = List.map (run_check ~file ~base ~cand) checks in
      let mode_skipped =
        List.exists (fun r -> r.r_check = "mode" && r.r_outcome = Skip) results
      in
      if not mode_skipped then results
      else
        (* different serving modes: wall-derived ratios are apples to
           oranges — skip them, keep the invariants *)
        List.map
          (fun r ->
            match
              List.find_opt
                (function
                  | Min_ratio (p, _) -> key_name p = r.r_check
                  | _ -> false)
                checks
            with
            | Some _ ->
                { r with r_outcome = Skip; r_note = "mode mismatch: " ^ r.r_note }
            | None -> r)
          results

let run ?(baseline_dir = ".") ?(candidate_dir = ".") () =
  List.concat_map (check_file ~baseline_dir ~candidate_dir) specs

let failed results = List.exists (fun r -> r.r_outcome = Fail) results

let outcome_name = function Pass -> "PASS" | Fail -> "FAIL" | Skip -> "skip"

let pp_results fmt results =
  Format.fprintf fmt "%-22s %-32s %-5s %s@." "artifact" "check" "" "note";
  Format.fprintf fmt "%s@." (String.make 96 '-');
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s %-32s %-5s %s@." r.r_file r.r_check
        (outcome_name r.r_outcome) r.r_note)
    results;
  let count o = List.length (List.filter (fun r -> r.r_outcome = o) results) in
  Format.fprintf fmt "@.%d checks: %d pass, %d fail, %d skipped@."
    (List.length results) (count Pass) (count Fail) (count Skip)
