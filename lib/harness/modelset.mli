(** A deployable model set: one trained model per learned optimization
    level (cold, warm, hot — scorching keeps the original plan, Section
    8.1), each with its scaling file and label lookup table. *)

module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Features = Tessera_features.Features

type solver = Ovr | Crammer_singer

type level_model = {
  level : Plan.level;
  scaling : Tessera_dataproc.Normalize.scaling;
  labels : Tessera_dataproc.Labels.t;
  model : Tessera_svm.Model.t;
  stats : Tessera_dataproc.Trainset.level_stats;
  train_seconds : float;  (** wall time spent by the solver *)
}

type t = {
  name : string;  (** e.g. "H3" *)
  excluded : string option;  (** LOO benchmark tag left out, if any *)
  levels : level_model list;
}

val train :
  ?solver:solver ->
  ?params:Tessera_svm.Linear.params ->
  ?levels:Plan.level list ->
  ?jobs:int ->
  name:string ->
  ?excluded:string ->
  Tessera_collect.Record.t list ->
  t
(** Builds per-level training sets (rank → normalize → remap) and trains
    a model per level; levels whose training set is degenerate (fewer
    than two classes) are skipped.  [jobs] (default 1) trains the levels
    on a {!Tessera_util.Pool}; the solvers are deterministic and levels
    come back in order, so the trained set does not depend on [jobs].
    [train_seconds] is process CPU time and will over-count when other
    domains train concurrently — it is a diagnostic, not a figure. *)

val predict : t -> level:Plan.level -> Features.t -> Modifier.t
(** Null modifier for levels without a model. *)

val choose_modifier :
  t -> Tessera_jit.Engine.t -> meth_id:int -> level:Plan.level -> Modifier.t option
(** Adapter for {!Tessera_jit.Engine.callbacks.choose_modifier}: extracts
    the method's features and predicts.  Never returns [None]. *)

val server_predictor : t -> Tessera_protocol.Server.predictor
(** Serve this model set over the wire protocol.  Incoming features are
    expected raw (unnormalized); the server applies its own scaling. *)

val server_batch_predictor : t -> Tessera_protocol.Serve.batch_predictor
(** Batched form for the concurrent serving engine: one level-model
    lookup per batch, one modifier per input row, raw features scaled
    exactly as {!server_predictor} does. *)

val save : t -> dir:string -> unit
(** Writes [model_<level>.txt], [scaling_<level>.txt],
    [labels_<level>.txt] under [dir]. *)

val load : name:string -> dir:string -> t
