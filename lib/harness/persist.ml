module Archive = Tessera_collect.Archive
module Suites = Tessera_workloads.Suites
module Fileio = Tessera_util.Fileio

let path dir name suffix = Filename.concat dir (name ^ suffix ^ ".tsra")

(* Archives replace any previous file atomically (tmp + fsync + rename):
   a crash mid-save must leave the campaign dir loadable — either the
   old archive or the new one, never a torn file. *)
let save ~dir outcomes =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (o : Collection.outcome) ->
      let name =
        o.Collection.bench.Suites.profile.Tessera_workloads.Profile.name
      in
      Fileio.atomic_write
        ~path:(path dir name ".rand")
        (Archive.to_string o.Collection.randomized);
      Fileio.atomic_write
        ~path:(path dir name ".prog")
        (Archive.to_string o.Collection.progressive);
      Fileio.atomic_write
        ~path:(path dir name "")
        (Archive.to_string o.Collection.merged))
    outcomes

let merged_names dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         if
           Filename.check_suffix f ".tsra"
           && (not (Filename.check_suffix f ".rand.tsra"))
           && not (Filename.check_suffix f ".prog.tsra")
         then Some (Filename.chop_suffix f ".tsra")
         else None)
  |> List.sort compare

let load ~dir =
  List.filter_map
    (fun name ->
      match Suites.find name with
      | None ->
          (* a stray file (editor backup, copied archive) must not make
             the whole campaign unloadable *)
          Printf.eprintf
            "Persist.load: skipping %s/%s.tsra: unknown benchmark %S\n%!" dir
            name name;
          None
      | Some bench ->
          Some
            {
              Collection.tag = bench.Suites.tag;
              bench;
              randomized = Archive.load (path dir name ".rand");
              progressive = Archive.load (path dir name ".prog");
              merged = Archive.load (path dir name "");
              stats = [];
            })
    (merged_names dir)

let is_campaign_dir dir =
  Sys.file_exists dir && Sys.is_directory dir && merged_names dir <> []
