(** Data collection over the training benchmarks: each benchmark runs
    twice — once with the pure randomized search, once with the
    progressive randomized search (Section 5) — and the two archives are
    merged, since the paper found the merged data trains better models
    than either strategy alone (Section 8.1). *)

module Archive = Tessera_collect.Archive

type outcome = {
  tag : string;  (** two-letter benchmark tag *)
  bench : Tessera_workloads.Suites.bench;
  randomized : Archive.t;
  progressive : Archive.t;
  merged : Archive.t;
  stats : Tessera_collect.Collector.stats list;
}

val collect_bench :
  ?cfg:Expconfig.t ->
  ?target:Tessera_vm.Target.t ->
  ?fork:bool ->
  ?fork_jobs:int ->
  Tessera_workloads.Suites.bench ->
  outcome

val collect_training_set :
  ?cfg:Expconfig.t ->
  ?target:Tessera_vm.Target.t ->
  ?fork:bool ->
  ?jobs:int ->
  unit ->
  outcome list
(** The five trainable SPECjvm98 benchmarks (optionally collected on a
    non-default back-end target).  [jobs] (default 1) collects the
    benchmarks on a {!Tessera_util.Pool} of that many domains; every
    search is independently seeded, so the outcome list is identical for
    every [jobs] value.  [fork] (default false) switches both searches
    to the compilation-forking collector ([Collector.Fork] with the
    configuration's [fork_fanout]); [jobs] then parallelizes the branch
    fan-out inside each collection instead of the benchmark list. *)
