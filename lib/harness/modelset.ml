module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Features = Tessera_features.Features
module Trainset = Tessera_dataproc.Trainset
module Normalize = Tessera_dataproc.Normalize
module Labels = Tessera_dataproc.Labels
module Engine = Tessera_jit.Engine
module Program = Tessera_il.Program
module Meth = Tessera_il.Meth

type solver = Ovr | Crammer_singer

type level_model = {
  level : Plan.level;
  scaling : Normalize.scaling;
  labels : Labels.t;
  model : Tessera_svm.Model.t;
  stats : Trainset.level_stats;
  train_seconds : float;
}

type t = {
  name : string;
  excluded : string option;
  levels : level_model list;
}

let default_levels = [ Plan.Cold; Plan.Warm; Plan.Hot ]

let train ?(solver = Crammer_singer) ?(params = Tessera_svm.Linear.default_params)
    ?(levels = default_levels) ?(jobs = 1) ~name ?excluded records =
  let levels =
    Tessera_util.Pool.run_list ~jobs
      (fun level ->
        let ts = Trainset.build ~level records in
        let problem = Trainset.problem ts in
        if Tessera_svm.Problem.n_classes problem < 2 then None
        else begin
          let t0 = Sys.time () in
          let model =
            match solver with
            | Ovr -> Tessera_svm.Linear.train_ovr ~params problem
            | Crammer_singer -> Tessera_svm.Cs.train ~params problem
          in
          let train_seconds = Sys.time () -. t0 in
          Some
            {
              level;
              scaling = ts.Trainset.scaling;
              labels = ts.Trainset.labels;
              model;
              stats = ts.Trainset.stats;
              train_seconds;
            }
        end)
      levels
    |> List.filter_map Fun.id
  in
  { name; excluded; levels }

let find t level = List.find_opt (fun lm -> lm.level = level) t.levels

let predict t ~level features =
  match find t level with
  | None -> Modifier.null
  | Some lm ->
      Trainset.predictor ~scaling:lm.scaling ~labels:lm.labels ~model:lm.model
        features

let choose_modifier t engine ~meth_id ~level =
  let program = Engine.program engine in
  let m = Program.meth program meth_id in
  Some (predict t ~level (Features.extract ~program m))

let server_predictor t ~level ~features =
  match find t level with
  | None -> Modifier.null
  | Some lm ->
      (* wire features are raw; apply this model's scaling file *)
      let raw = Array.map int_of_float features in
      Trainset.predictor ~scaling:lm.scaling ~labels:lm.labels ~model:lm.model
        (Features.of_array raw)

let server_batch_predictor t ~level rows =
  (* one level-model lookup for the whole batch: the serving engine
     groups its queue by level before calling *)
  match find t level with
  | None -> Array.map (fun _ -> Modifier.null) rows
  | Some lm ->
      Array.map
        (fun features ->
          let raw = Array.map int_of_float features in
          Trainset.predictor ~scaling:lm.scaling ~labels:lm.labels
            ~model:lm.model (Features.of_array raw))
        rows

let level_file dir what level ext =
  Filename.concat dir
    (Printf.sprintf "%s_%s.%s" what (Plan.level_name level) ext)

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun lm ->
      Tessera_svm.Model.save lm.model (level_file dir "model" lm.level "txt");
      Normalize.save lm.scaling (level_file dir "scaling" lm.level "txt");
      Labels.save lm.labels (level_file dir "labels" lm.level "txt"))
    t.levels

let load ~name ~dir =
  let levels =
    List.filter_map
      (fun level ->
        let mf = level_file dir "model" level "txt" in
        if not (Sys.file_exists mf) then None
        else
          let model = Tessera_svm.Model.load mf in
          let scaling = Normalize.load (level_file dir "scaling" level "txt") in
          let labels = Labels.load (level_file dir "labels" level "txt") in
          Some
            {
              level;
              scaling;
              labels;
              model;
              stats =
                {
                  Trainset.level;
                  data_instances = 0;
                  unique_classes = 0;
                  unique_feature_vectors = 0;
                  training_instances = 0;
                  training_classes = Labels.size labels;
                  training_feature_vectors = 0;
                };
              train_seconds = 0.0;
            })
      Plan.([ Cold; Warm; Hot; Very_hot; Scorching ])
  in
  { name; excluded = None; levels }
