module Archive = Tessera_collect.Archive
module Collector = Tessera_collect.Collector
module Queue_ctrl = Tessera_modifiers.Queue_ctrl
module Suites = Tessera_workloads.Suites
module Generate = Tessera_workloads.Generate
module Values = Tessera_vm.Values

type outcome = {
  tag : string;
  bench : Suites.bench;
  randomized : Archive.t;
  progressive : Archive.t;
  merged : Archive.t;
  stats : Collector.stats list;
}

let entry_args k = [| Values.Int_v (Int64.of_int k) |]

let run_strategy ~cfg ~target ~fork ~fork_jobs ~program ~benchmark ~seed
    strategy =
  let search =
    if fork then
      Collector.Fork
        {
          (Collector.fork_defaults strategy) with
          Collector.fanout = cfg.Expconfig.fork_fanout;
          jobs = fork_jobs;
        }
    else Collector.Queue strategy
  in
  Collector.run
    ~config:
      {
        Collector.default_config with
        Collector.search;
        uses_per_modifier = cfg.Expconfig.uses_per_modifier;
        seed;
        max_entry_invocations = cfg.Expconfig.collect_invocations;
        target;
      }
    ~program ~benchmark ~entry_args ()

let collect_bench ?(cfg = Expconfig.default)
    ?(target = Tessera_vm.Target.zircon) ?(fork = false) ?(fork_jobs = 1)
    (bench : Suites.bench) =
  let bench_scaled = Suites.scale_bench bench cfg.Expconfig.bench_scale in
  let program = Generate.program bench_scaled.Suites.profile in
  let name = bench.Suites.profile.Tessera_workloads.Profile.name in
  let rand, rstats =
    run_strategy ~cfg ~target ~fork ~fork_jobs ~program
      ~benchmark:(name ^ ":randomized")
      ~seed:(Int64.add cfg.Expconfig.seed 1L)
      (Queue_ctrl.Randomized
         {
           count = cfg.Expconfig.randomized_count;
           density = cfg.Expconfig.randomized_density;
         })
  in
  let prog, pstats =
    run_strategy ~cfg ~target ~fork ~fork_jobs ~program
      ~benchmark:(name ^ ":progressive")
      ~seed:(Int64.add cfg.Expconfig.seed 2L)
      (Queue_ctrl.Progressive { l = cfg.Expconfig.progressive_l })
  in
  {
    tag = bench.Suites.tag;
    bench;
    randomized = rand;
    progressive = prog;
    merged = Archive.merge [ rand; prog ];
    stats = [ rstats; pstats ];
  }

let collect_training_set ?(cfg = Expconfig.default)
    ?(target = Tessera_vm.Target.zircon) ?(fork = false) ?(jobs = 1) () =
  (* each benchmark's two searches are seeded from cfg.seed only, so the
     outcomes are independent of which domain runs them; run_list keeps
     the training-set order.  In fork mode the pool parallelism moves
     inside each collection (branch fan-out): nested pools would run
     sequentially anyway, and the per-decision branch sets are the wider
     work surface. *)
  if fork then
    List.map (collect_bench ~cfg ~target ~fork ~fork_jobs:jobs)
      Suites.training_set
  else
    Tessera_util.Pool.run_list ~jobs (collect_bench ~cfg ~target)
      Suites.training_set
