(** Plain-text renderings of the paper's tables and figures. *)

module Stats = Tessera_util.Stats

val table4 : Format.formatter -> Training.loo_set list -> unit
(** Average data-set sizes used for training (merged vs ranked), per
    compilation level, averaged over the five LOO sets. *)

val figure :
  Format.formatter ->
  id:string ->
  title:string ->
  higher_better:bool ->
  extract:(Evaluation.cell -> Stats.summary) ->
  Evaluation.cell list ->
  unit
(** One figure: benchmarks as rows, model sets as columns, a mean ± 95%
    CI per bar plus an ASCII gauge, and a geometric-mean summary row. *)

val figures_6_to_13 : Format.formatter -> Evaluation.matrix -> unit

val collection_summary : Format.formatter -> Collection.outcome list -> unit

val training_summary :
  ?timings:bool -> Format.formatter -> Training.loo_set list -> unit
(** [timings:false] omits the per-level solver CPU seconds — the only
    nondeterministic field — so the rendering can be digested and
    compared across runs (the bench harness's [-j] determinism check). *)
