(** Leave-one-out training (Section 8.1): from the five training
    benchmarks, five model sets are built, each trained on four of them;
    each set has one model per learned level (cold/warm/hot), for 15
    models in total.  Set H3 — the paper's notation — leaves out
    mpegaudio. *)

type loo_set = {
  name : string;  (** H1..H5 *)
  excluded_tag : string;
  modelset : Modelset.t;
}

val train_loo :
  ?solver:Modelset.solver ->
  ?params:Tessera_svm.Linear.params ->
  ?jobs:int ->
  Collection.outcome list ->
  loo_set list
(** [jobs] (default 1) trains the five sets on a {!Tessera_util.Pool};
    training is deterministic per set, and results come back in input
    order, so the output is independent of the domain count. *)

val train_on_all :
  ?solver:Modelset.solver ->
  ?params:Tessera_svm.Linear.params ->
  name:string ->
  Collection.outcome list ->
  Modelset.t
(** A set trained on every collected benchmark (used by examples and
    ablations, not by the paper's figures). *)

val records_of : Collection.outcome list -> Tessera_collect.Record.t list
