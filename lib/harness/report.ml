module Stats = Tessera_util.Stats
module Plan = Tessera_opt.Plan
module Trainset = Tessera_dataproc.Trainset

let hr fmt = Format.fprintf fmt "%s@." (String.make 78 '-')

let table4 fmt (loo : Training.loo_set list) =
  hr fmt;
  Format.fprintf fmt
    "Table 4: average data set sizes used for training the machine-learned \
     models@.";
  hr fmt;
  Format.fprintf fmt
    "%-10s | %12s %9s %9s %8s | %9s %8s %9s %8s@." "Level" "Instances"
    "Classes" "FeatVecs" "V:I" "Train" "Classes" "FeatVecs" "V:I";
  let levels = [ Plan.Cold; Plan.Warm; Plan.Hot ] in
  List.iter
    (fun level ->
      let stats =
        List.filter_map
          (fun (s : Training.loo_set) ->
            List.find_opt
              (fun (lm : Modelset.level_model) -> lm.Modelset.level = level)
              s.Training.modelset.Modelset.levels)
          loo
        |> List.map (fun (lm : Modelset.level_model) -> lm.Modelset.stats)
      in
      match stats with
      | [] -> Format.fprintf fmt "%-10s | (no data)@." (Plan.level_name level)
      | _ ->
          let avg f =
            List.fold_left (fun acc s -> acc + f s) 0 stats / List.length stats
          in
          let di = avg (fun s -> s.Trainset.data_instances) in
          let uc = avg (fun s -> s.Trainset.unique_classes) in
          let uf = avg (fun s -> s.Trainset.unique_feature_vectors) in
          let ti = avg (fun s -> s.Trainset.training_instances) in
          let tc = avg (fun s -> s.Trainset.training_classes) in
          let tf = avg (fun s -> s.Trainset.training_feature_vectors) in
          let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
          Format.fprintf fmt
            "%-10s | %12d %9d %9d 1:%-6.0f | %9d %8d %9d 1:%-6.2f@."
            (Plan.level_name level) di uc uf (ratio di uf) ti tc tf (ratio ti tf))
    levels;
  Format.fprintf fmt "@."

let gauge ~higher_better v =
  (* center at 1.0; 0.5..1.5 maps over 20 chars *)
  let clamped = Float.max 0.5 (Float.min 1.5 v) in
  let pos = int_of_float ((clamped -. 0.5) /. 0.05) in
  String.init 21 (fun i ->
      if i = 10 then '|'
      else if i = pos then (if (v > 1.0) = higher_better || v = 1.0 then '#' else 'x')
      else ' ')

let figure fmt ~id ~title ~higher_better ~extract (cells : Evaluation.cell list) =
  hr fmt;
  Format.fprintf fmt "%s: %s (%s is better; 1.00 = unmodified Testarossa)@." id
    title
    (if higher_better then "higher" else "lower");
  hr fmt;
  let benches =
    List.fold_left
      (fun acc (c : Evaluation.cell) ->
        if List.mem c.Evaluation.bench acc then acc else acc @ [ c.Evaluation.bench ])
      [] cells
  in
  List.iter
    (fun bench ->
      let rows =
        List.filter (fun (c : Evaluation.cell) -> c.Evaluation.bench = bench) cells
      in
      List.iteri
        (fun i (c : Evaluation.cell) ->
          let s = extract c in
          Format.fprintf fmt "%-12s %-4s %6.3f ±%5.3f  [%s]@."
            (if i = 0 then bench else "")
            c.Evaluation.model s.Stats.mean s.Stats.ci95
            (gauge ~higher_better s.Stats.mean))
        rows)
    benches;
  (* geometric mean over all bars, the "average improvement" the paper
     quotes in the text *)
  let means =
    List.map (fun c -> (extract c).Stats.mean) cells |> Array.of_list
  in
  if Array.length means > 0 then
    Format.fprintf fmt "%-12s %-4s %6.3f@." "geomean" "" (Stats.geomean means);
  Format.fprintf fmt "@."

let figures_6_to_13 fmt (m : Evaluation.matrix) =
  figure fmt ~id:"Figure 6"
    ~title:"start-up performance (single iteration), SPECjvm98"
    ~higher_better:true
    ~extract:(fun c -> c.Evaluation.startup_perf)
    m.Evaluation.spec_cells;
  figure fmt ~id:"Figure 7"
    ~title:"start-up compilation time (single iteration), SPECjvm98"
    ~higher_better:false
    ~extract:(fun c -> c.Evaluation.startup_compile)
    m.Evaluation.spec_cells;
  figure fmt ~id:"Figure 8"
    ~title:"start-up performance (single iteration), DaCapo"
    ~higher_better:true
    ~extract:(fun c -> c.Evaluation.startup_perf)
    m.Evaluation.dacapo_cells;
  figure fmt ~id:"Figure 9"
    ~title:"start-up compilation time (single iteration), DaCapo"
    ~higher_better:false
    ~extract:(fun c -> c.Evaluation.startup_compile)
    m.Evaluation.dacapo_cells;
  figure fmt ~id:"Figure 10"
    ~title:"throughput performance (10 iterations), SPECjvm98"
    ~higher_better:true
    ~extract:(fun c -> c.Evaluation.throughput_perf)
    m.Evaluation.spec_cells;
  figure fmt ~id:"Figure 11"
    ~title:"throughput performance (10 iterations), DaCapo"
    ~higher_better:true
    ~extract:(fun c -> c.Evaluation.throughput_perf)
    m.Evaluation.dacapo_cells;
  figure fmt ~id:"Figure 12"
    ~title:"relative compilation time (throughput runs), SPECjvm98"
    ~higher_better:false
    ~extract:(fun c -> c.Evaluation.throughput_compile)
    m.Evaluation.spec_cells;
  figure fmt ~id:"Figure 13"
    ~title:"relative compilation time (throughput runs), DaCapo"
    ~higher_better:false
    ~extract:(fun c -> c.Evaluation.throughput_compile)
    m.Evaluation.dacapo_cells

let collection_summary fmt (outcomes : Collection.outcome list) =
  hr fmt;
  Format.fprintf fmt "Data collection summary@.";
  hr fmt;
  List.iter
    (fun (o : Collection.outcome) ->
      let total_records =
        List.length o.Collection.merged.Tessera_collect.Archive.records
      in
      let compilations =
        List.fold_left
          (fun acc (s : Tessera_collect.Collector.stats) ->
            acc + s.Tessera_collect.Collector.compilations)
          0 o.Collection.stats
      in
      Format.fprintf fmt
        "%-12s (%s): %6d records, %6d compilations, %5d discarded TSC samples@."
        o.Collection.bench.Tessera_workloads.Suites.profile
          .Tessera_workloads.Profile.name o.Collection.tag total_records
        compilations
        (List.fold_left
           (fun acc (s : Tessera_collect.Collector.stats) ->
             acc + s.Tessera_collect.Collector.discarded_samples)
           0 o.Collection.stats))
    outcomes;
  Format.fprintf fmt "@."

let training_summary ?(timings = true) fmt (loo : Training.loo_set list) =
  hr fmt;
  Format.fprintf fmt
    "Trained model sets (leave-one-out; one model per level)@.";
  hr fmt;
  List.iter
    (fun (s : Training.loo_set) ->
      Format.fprintf fmt "%-4s excludes %-3s:" s.Training.name
        s.Training.excluded_tag;
      List.iter
        (fun (lm : Modelset.level_model) ->
          Format.fprintf fmt " %s[%d cls, %d inst"
            (Plan.level_name lm.Modelset.level)
            lm.Modelset.stats.Trainset.training_classes
            lm.Modelset.stats.Trainset.training_instances;
          if timings then
            Format.fprintf fmt ", %.2fs" lm.Modelset.train_seconds;
          Format.fprintf fmt "]")
        s.Training.modelset.Modelset.levels;
      Format.fprintf fmt "@.")
    loo;
  Format.fprintf fmt "@."
