(** Performance evaluation (Section 8): start-up performance (a single
    benchmark iteration per JVM invocation), throughput performance (10
    iterations in one invocation), and compilation time, for the
    unmodified compiler and for each learned model set.

    Each measurement is repeated over [cfg.trials] independent simulated
    runs (the benchmark input varies per trial) and expanded to
    [cfg.noise_draws] measurement samples with a multiplicative
    OS-scheduling-noise model; the mean and 95% confidence interval over
    those samples mirror the paper's 30-invocation methodology. *)

module Stats = Tessera_util.Stats
module Suites = Tessera_workloads.Suites

type run_metrics = {
  app_cycles : int64;
  compile_cycles : int64;
  compilations : int;
  methods_compiled : int;
}

val run_once :
  ?cfg:Expconfig.t ->
  ?target:Tessera_vm.Target.t ->
  ?model:Modelset.t ->
  bench:Suites.bench ->
  iterations:int ->
  trial:int ->
  unit ->
  run_metrics
(** One fresh simulated JVM invocation executing [iterations] benchmark
    iterations. *)

val draws_for_trial : trials:int -> noise_draws:int -> int -> int
(** Noise draws contributed by trial [i] of [trials]: the
    [max trials noise_draws] total draws divide as evenly as possible,
    remainder spread one-per-trial from the front — so the total is
    exactly [max trials noise_draws] for every (trials, noise_draws)
    pair, divisible or not, and every trial contributes at least one
    draw. *)

(** Relative-to-baseline summaries for one benchmark under one model. *)
type cell = {
  bench : string;
  model : string;
  startup_perf : Stats.summary;  (** baseline time / model time; >1 wins *)
  startup_compile : Stats.summary;  (** model compile / baseline; <1 wins *)
  throughput_perf : Stats.summary;
  throughput_compile : Stats.summary;
}

val evaluate_bench :
  ?cfg:Expconfig.t ->
  ?jobs:int ->
  models:Modelset.t list ->
  Suites.bench ->
  cell list

type matrix = {
  spec_cells : cell list;
  dacapo_cells : cell list;
}

val full_matrix :
  ?cfg:Expconfig.t ->
  ?jobs:int ->
  loo:Training.loo_set list ->
  ?spec:Suites.bench list ->
  ?dacapo:Suites.bench list ->
  unit ->
  matrix
(** Benchmarks in the training set are evaluated only against the model
    that excludes them (leave-one-out); reservation-set and DaCapo
    benchmarks against all five model sets.

    [jobs] (default 1) runs the matrix's cells — independent seeded
    simulations — on a {!Tessera_util.Pool} of that many domains.  The
    task list, the per-cell seeds, and the assembly order are all fixed
    up front, so the returned matrix is byte-identical for every
    [jobs] value. *)
