module Archive = Tessera_collect.Archive
module Pool = Tessera_util.Pool

type loo_set = {
  name : string;
  excluded_tag : string;
  modelset : Modelset.t;
}

let records_of outcomes =
  List.concat_map (fun (o : Collection.outcome) -> o.Collection.merged.Archive.records) outcomes

let train_loo ?(solver = Modelset.Crammer_singer)
    ?(params = Tessera_svm.Linear.default_params) ?(jobs = 1) outcomes =
  let indexed = List.mapi (fun i o -> (i, o)) outcomes in
  Pool.run_list ~jobs
    (fun (i, (excluded : Collection.outcome)) ->
      let name = Printf.sprintf "H%d" (i + 1) in
      let kept =
        List.filter
          (fun (o : Collection.outcome) -> o.Collection.tag <> excluded.Collection.tag)
          outcomes
      in
      {
        name;
        excluded_tag = excluded.Collection.tag;
        modelset =
          Modelset.train ~solver ~params ~jobs ~name
            ~excluded:excluded.Collection.tag (records_of kept);
      })
    indexed

let train_on_all ?(solver = Modelset.Crammer_singer)
    ?(params = Tessera_svm.Linear.default_params) ~name outcomes =
  Modelset.train ~solver ~params ~name (records_of outcomes)
