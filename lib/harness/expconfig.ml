type t = {
  scale : float;
  progressive_l : int;
  randomized_count : int;
  randomized_density : float;
  uses_per_modifier : int;
  collect_invocations : int;
  trials : int;
  noise_draws : int;
  noise_sd : float;
  throughput_iterations : int;
  bench_scale : float;
  seed : int64;
  fork_fanout : int;
}

let default =
  {
    scale = 1.0;
    progressive_l = 400;
    randomized_count = 120;
    randomized_density = 0.35;
    uses_per_modifier = 12;
    collect_invocations = 800;
    trials = 1;
    noise_draws = 30;
    noise_sd = 0.008;
    throughput_iterations = 10;
    bench_scale = 1.0;
    seed = 0x7E557E55L;
    fork_fanout = 16;
  }

let full = { default with trials = 3 }

let quick =
  {
    default with
    progressive_l = 60;
    randomized_count = 20;
    uses_per_modifier = 4;
    collect_invocations = 60;
    trials = 1;
    fork_fanout = 6;
  }

let paper_scale =
  {
    default with
    progressive_l = 2000;
    randomized_count = 2000;
    uses_per_modifier = 50;
    collect_invocations = 100_000;
    trials = 30;
    noise_draws = 30;
  }
