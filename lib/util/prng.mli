(** Deterministic pseudo-random number generation.

    All stochastic behaviour in Tessera (workload synthesis, modifier
    generation, measurement-noise modelling) flows through this module so
    that every experiment is reproducible from a single seed.  The
    generator is SplitMix64, which is small, fast, and splittable: child
    generators derived with {!split} produce independent streams, letting
    subsystems draw randomness without perturbing each other. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy evolves
    independently. *)

val state : t -> int64
(** The raw generator state, for snapshot/restore of deterministic
    simulations (compilation forking).  Restoring with {!set_state}
    resumes the exact stream. *)

val set_state : t -> int64 -> unit

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive; requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_weighted : t -> (float * 'a) array -> 'a
(** [sample_weighted g items] draws proportionally to the (positive)
    weights.  The array must be non-empty with positive total weight. *)
