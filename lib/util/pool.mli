(** Fixed-size [Domain] work pool with deterministic result ordering.

    The paper's methodology is embarrassingly parallel: every evaluation
    cell is an independent seeded simulation, every leave-one-out model
    trains on its own data, every collection run owns its engine.  This
    pool recovers that parallelism without changing a single reported
    number: work items carry their index, each result is written into a
    pre-sized slot of the output, and the output is assembled in input
    order — so the result is byte-identical to the sequential run
    regardless of how the domains schedule the items.

    Worker domains pull item indices from a shared atomic counter
    (dynamic load balancing); the calling domain participates as a
    worker, so [jobs = 1] spawns no domain at all and is exactly the
    sequential [Array.map] / [List.map], in the same evaluation order.

    Nested calls never over-subscribe: a pool invocation made from
    inside a pool worker runs sequentially in that worker (one level of
    domains, never domains-of-domains).

    Exceptions are deterministic: if one or more items raise, the whole
    call raises the exception of the {e lowest-indexed} failing item,
    after all spawned domains have been joined. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default of every
    CLI. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array ~jobs f items] is [Array.map f items], computed by up to
    [jobs] domains.  [jobs] defaults to {!default_jobs}[ ()] and is
    clamped to [[1, Array.length items]]. *)

val run_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f items], parallelized like {!map_array}; order
    preserved. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [Array.init n f], parallelized like {!map_array}. *)

val iter_list : ?jobs:int -> ('a -> unit) -> 'a list -> unit
(** [List.iter f items] with the items distributed over the pool. *)
