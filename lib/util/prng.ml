type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }
let state g = g.state
let set_state g s = g.state <- s

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  (* Mixing with a distinct constant decorrelates the child stream. *)
  { state = Int64.logxor seed 0xA5A5A5A5A5A5A5A5L }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* mask to 62 bits so the value fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let float g bound =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g p = float g 1.0 < p

let gaussian g ~mu ~sigma =
  let rec nonzero () =
    let u = float g 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float g 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose g arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_weighted g items =
  if Array.length items = 0 then invalid_arg "Prng.sample_weighted: empty";
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Prng.sample_weighted: weights sum <= 0";
  let target = float g total in
  let rec go i acc =
    if i = Array.length items - 1 then snd items.(i)
    else
      let w, x = items.(i) in
      let acc = acc +. w in
      if target < acc then x else go (i + 1) acc
  in
  go 0 0.0
