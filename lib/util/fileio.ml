let atomic_write ~path data =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  (try
     let len = String.length data in
     let written = ref 0 in
     while !written < len do
       written :=
         !written
         + Unix.write_substring fd data !written (len - !written)
     done;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e
