let default_jobs () = Domain.recommended_domain_count ()

(* true while the current domain is executing pool work: nested pool
   calls degrade to the sequential path instead of spawning
   domains-of-domains *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_init n f = Array.init n f

let parallel_init ~jobs n f =
  (* each slot is written exactly once, by whichever domain claimed its
     index; the claim counter is the only shared mutable state *)
  let results : ('a, exn) result option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    Domain.DLS.set inside true;
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- (try Some (Ok (f i)) with e -> Some (Error e));
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Domain.DLS.set inside false;
  Array.iter Domain.join domains;
  (* deterministic error propagation: the lowest-indexed failure wins *)
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every index below [n] was claimed *))
    results

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  let jobs =
    max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) n)
  in
  if n = 0 then [||]
  else if jobs = 1 || Domain.DLS.get inside then sequential_init n f
  else parallel_init ~jobs n f

let map_array ?jobs f items =
  init ?jobs (Array.length items) (fun i -> f items.(i))

let run_list ?jobs f items =
  Array.to_list (map_array ?jobs f (Array.of_list items))

let iter_list ?jobs f items = ignore (run_list ?jobs f items)
