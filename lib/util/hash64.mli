(** Incremental FNV-1a 64-bit hashing.

    Used wherever a {e stable} fingerprint is needed across processes and
    runs (the persistent code cache keys, method IL fingerprints):
    [Hashtbl.hash] makes no cross-version stability promise, so on-disk
    keys must not depend on it.  Fold bytes and integers into an
    accumulator seeded with {!init}. *)

val init : int64
(** The FNV-1a 64-bit offset basis. *)

val byte : int64 -> int -> int64
(** Mix one byte (low 8 bits of the int). *)

val int : int64 -> int -> int64
(** Mix a native int as 8 little-endian bytes. *)

val int64 : int64 -> int64 -> int64
(** Mix an int64 as 8 little-endian bytes. *)

val bool : int64 -> bool -> int64

val string : int64 -> string -> int64
(** Mix the length then every byte, so ["ab"^"c"] and ["a"^"bc"] differ. *)
