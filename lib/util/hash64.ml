let init = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) prime

let int64 acc v =
  let acc = ref acc in
  for i = 0 to 7 do
    acc :=
      byte !acc (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done;
  !acc

let int acc v = int64 acc (Int64.of_int v)

let bool acc b = byte acc (if b then 1 else 0)

let string acc s =
  let acc = ref (int acc (String.length s)) in
  String.iter (fun c -> acc := byte !acc (Char.code c)) s;
  !acc
