(** Crash-safe file replacement.

    [atomic_write ~path data] writes [data] to a sibling temporary file,
    fsyncs it, and renames it over [path], so a crash at any point leaves
    either the old contents or the new contents — never a torn file.
    Both the campaign persistence layer and the persistent code cache
    replace files exclusively through this helper. *)

val atomic_write : path:string -> string -> unit
(** Raises [Sys_error]/[Unix.Unix_error] on I/O failure; the temporary
    file is removed on any failure after creation. *)
