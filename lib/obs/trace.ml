type arg = Int of int64 | Float of float | Str of string

type phase = Span_begin | Span_end | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  cycles : int64;
  wall_us : float;
  args : (string * arg) list;
}

type ring = {
  buf : event array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
  wall : bool;
}

let dummy =
  { name = ""; cat = ""; ph = Instant; cycles = 0L; wall_us = 0.0; args = [] }

let enabled = ref false

(* Domain safety: each domain buffers into its own ring, so the emit
   path never takes a lock and never shares a cache line.  Rings are
   registered in [rings] (mutex-guarded, reader side only) the first
   time a domain emits; [generation] invalidates the domain-local cache
   whenever [enable] rebuilds the ring set, so a pool worker that
   outlives an enable cycle lazily re-registers a fresh ring. *)
let mu = Mutex.create ()
let rings : ring list ref = ref []
let generation = ref 0
let config = ref (65536, false) (* capacity, wall — set by [enable] *)

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let dls_ring : (int * ring) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let new_ring () =
  let capacity, wall = !config in
  { buf = Array.make capacity dummy; start = 0; len = 0; dropped = 0; wall }

(* the calling domain's ring for the current generation, creating and
   registering it on first use *)
let current_ring () =
  let cache = Domain.DLS.get dls_ring in
  match !cache with
  | Some (g, r) when g = !generation -> r
  | _ ->
      locked (fun () ->
          let r = new_ring () in
          rings := !rings @ [ r ];
          cache := Some (!generation, r);
          r)

let enable ?(capacity = 65536) ?(wall = false) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  locked (fun () ->
      config := (capacity, wall);
      rings := [];
      incr generation);
  (* eager ring for the enabling domain, so [capacity ()] is meaningful
     immediately *)
  ignore (current_ring ());
  enabled := true

let disable () = enabled := false

let reset () =
  locked (fun () ->
      List.iter
        (fun r ->
          r.start <- 0;
          r.len <- 0;
          r.dropped <- 0)
        !rings)

(* the cycle source is domain-local: each worker's engine registers its
   own clock without stamping anyone else's events *)
let default_source () = 0L

let dls_source : (unit -> int64) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref default_source)

let set_cycle_source f = Domain.DLS.get dls_source := f
let clear_cycle_source () = Domain.DLS.get dls_source := default_source

let push r e =
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let emit ?cycles ?(args = []) ~cat ph name =
  if !enabled then begin
    let r = current_ring () in
    let cycles =
      match cycles with Some c -> c | None -> !(Domain.DLS.get dls_source) ()
    in
    let wall_us = if r.wall then Unix.gettimeofday () *. 1e6 else 0.0 in
    push r { name; cat; ph; cycles; wall_us; args }
  end

let span_begin ?cycles ?args ~cat name = emit ?cycles ?args ~cat Span_begin name
let span_end ?cycles ?args ~cat name = emit ?cycles ?args ~cat Span_end name
let instant ?cycles ?args ~cat name = emit ?cycles ?args ~cat Instant name

let counter ?cycles ~cat name v =
  emit ?cycles ~args:[ ("value", Int (Int64.of_int v)) ] ~cat Counter name

let ring_events r =
  let cap = Array.length r.buf in
  List.init r.len (fun i -> r.buf.((r.start + i) mod cap))

let phase_name = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter -> "C"

let pp_arg fmt = function
  | Int i -> Format.fprintf fmt "%Ld" i
  | Float f -> Format.fprintf fmt "%.17g" f
  | Str s -> Format.fprintf fmt "%s" s

let canonical_line e =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "%Ld %s %s %s" e.cycles e.cat (phase_name e.ph) e.name);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf " %s=%s" k (Format.asprintf "%a" pp_arg v)))
    e.args;
  Buffer.contents buf

(* Merging: one ring (the sequential case) keeps its exact emission
   order.  Several rings are merged into a single canonical stream
   ordered by virtual cycle; ties are broken by the canonical line
   content, which makes the merged order independent of which domain
   happened to run which work item — the property the determinism
   oracle needs, since with dynamic load balancing the per-ring
   contents are scheduling-dependent but the merged multiset is not. *)
let events () =
  match locked (fun () -> !rings) with
  | [] -> []
  | [ r ] -> ring_events r
  | rs ->
      let all = List.concat_map ring_events rs in
      let keyed = List.map (fun e -> ((e.cycles, canonical_line e), e)) all in
      List.map snd
        (List.stable_sort
           (fun ((c1, l1), _) ((c2, l2), _) ->
             match Int64.compare c1 c2 with
             | 0 -> String.compare l1 l2
             | n -> n)
           keyed)

let ring_count () = locked (fun () -> List.length !rings)

let sum_rings f =
  locked (fun () -> List.fold_left (fun acc r -> acc + f r) 0 !rings)

let length () = sum_rings (fun r -> r.len)
let capacity () = sum_rings (fun r -> Array.length r.buf)
let dropped () = sum_rings (fun r -> r.dropped)

let to_canonical_string () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (canonical_line e);
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf
