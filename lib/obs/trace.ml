type arg = Int of int64 | Float of float | Str of string

type phase = Span_begin | Span_end | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  cycles : int64;
  wall_us : float;
  args : (string * arg) list;
}

type ring = {
  buf : event array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
  wall : bool;
}

let dummy =
  { name = ""; cat = ""; ph = Instant; cycles = 0L; wall_us = 0.0; args = [] }

let enabled = ref false
let ring : ring option ref = ref None
let default_source () = 0L
let cycle_source = ref default_source

let enable ?(capacity = 65536) ?(wall = false) () =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  ring :=
    Some { buf = Array.make capacity dummy; start = 0; len = 0; dropped = 0; wall };
  enabled := true

let disable () = enabled := false

let reset () =
  match !ring with
  | None -> ()
  | Some r ->
      r.start <- 0;
      r.len <- 0;
      r.dropped <- 0

let set_cycle_source f = cycle_source := f
let clear_cycle_source () = cycle_source := default_source

let push r e =
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.start + r.len) mod cap) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.start) <- e;
    r.start <- (r.start + 1) mod cap;
    r.dropped <- r.dropped + 1
  end

let emit ?cycles ?(args = []) ~cat ph name =
  if !enabled then
    match !ring with
    | None -> ()
    | Some r ->
        let cycles =
          match cycles with Some c -> c | None -> !cycle_source ()
        in
        let wall_us = if r.wall then Unix.gettimeofday () *. 1e6 else 0.0 in
        push r { name; cat; ph; cycles; wall_us; args }

let span_begin ?cycles ?args ~cat name = emit ?cycles ?args ~cat Span_begin name
let span_end ?cycles ?args ~cat name = emit ?cycles ?args ~cat Span_end name
let instant ?cycles ?args ~cat name = emit ?cycles ?args ~cat Instant name

let counter ?cycles ~cat name v =
  emit ?cycles ~args:[ ("value", Int (Int64.of_int v)) ] ~cat Counter name

let events () =
  match !ring with
  | None -> []
  | Some r ->
      let cap = Array.length r.buf in
      List.init r.len (fun i -> r.buf.((r.start + i) mod cap))

let length () = match !ring with None -> 0 | Some r -> r.len
let capacity () = match !ring with None -> 0 | Some r -> Array.length r.buf
let dropped () = match !ring with None -> 0 | Some r -> r.dropped

let phase_name = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter -> "C"

let pp_arg fmt = function
  | Int i -> Format.fprintf fmt "%Ld" i
  | Float f -> Format.fprintf fmt "%.17g" f
  | Str s -> Format.fprintf fmt "%s" s

let to_canonical_string () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%Ld %s %s %s" e.cycles e.cat (phase_name e.ph) e.name);
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf " %s=%s" k (Format.asprintf "%a" pp_arg v)))
        e.args;
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf
