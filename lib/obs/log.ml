type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"
let severity = function Debug -> 0 | Info -> 1 | Warn -> 2

let threshold = ref Info
let set_level l = threshold := l
let get_level () = !threshold

let default_sink level msg =
  Printf.eprintf "tessera[%s]: %s\n%!" (level_name level) msg

let sink = ref default_sink
let set_sink f = sink := f
let reset_sink () = sink := default_sink

let mirror_to_trace = ref false

let log level msg =
  if severity level >= severity !threshold then begin
    !sink level msg;
    if !mirror_to_trace && !Trace.enabled then
      Trace.instant ~cat:"log"
        ~args:[ ("level", Trace.Str (level_name level)) ]
        msg
  end

let debug msg = log Debug msg
let info msg = log Info msg
let warn msg = log Warn msg
