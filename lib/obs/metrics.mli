(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms, with a Prometheus-style text exposition.

    Subsystems register their instruments by name instead of keeping
    scattered mutable record fields, so every reporting surface (CLI
    metrics dump, the model server's [Stats] request, tests) reads one
    canonical view.  Registration is idempotent: asking for an existing
    name of the same kind returns the existing instrument (so module
    initialization order does not matter); asking for an existing name
    of a {e different} kind raises [Invalid_argument].

    Registries are values: per-engine state (one simulated JVM each)
    lives in its own registry, process-wide state (the model server's
    request counters) in {!default}.  Instrument reads and writes are
    plain record-field operations — no hashing on the hot path.

    Domain safety: registration, {!expose}, {!names}, and {!reset} are
    mutex-guarded, so concurrent domains may register against one
    registry (e.g. {!default}) freely.  Instrument updates stay
    lock-free; the intended discipline is that each instrument is
    written by one domain (engines own their registries in a work
    pool) — concurrent writers of a {e single} instrument may lose
    increments, but never corrupt the registry. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val default : t
(** The process-wide registry. *)

(** {1 Registration} *)

val counter : t -> ?help:string -> string -> counter
val gauge : t -> ?help:string -> string -> gauge

val histogram : t -> ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds in increasing order; a [+Inf] bucket is
    implicit.  Default: powers of 10 from 1e3 to 1e9 (cycle scales). *)

(** {1 Counters} — monotonically non-decreasing *)

val inc : counter -> unit
val add : counter -> int -> unit
(** [add c n] with [n < 0] raises [Invalid_argument]. *)

val counter_value : counter -> int

(** {1 Gauges} *)

val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val observe : histogram -> float -> unit

val bucket_counts : histogram -> (float * int) array
(** [(upper_bound, count)] per bucket, cumulative-free (each bucket
    holds only its own observations); the last entry is the [+Inf]
    bucket ([infinity]). *)

val histogram_sum : histogram -> float
val histogram_count : histogram -> int

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [\[0, 1\]] walks the cumulative bucket
    counts to the bucket containing the [q·count]-th observation and
    interpolates linearly inside it — exact at bucket resolution (feed a
    histogram whose bounds are the distinct observed values for exact
    answers), and deterministic: identical counts give identical
    quantiles.  Returns [nan] on an empty histogram; observations in the
    [+Inf] bucket report the largest finite bound.  Raises
    [Invalid_argument] when [q] is outside [\[0, 1\]]. *)

val count_le : histogram -> float -> int
(** [count_le h v] is the number of observations in buckets whose upper
    bound is [<= v] — a conservative (never over-counting) tally of
    observations known to be [<= v], the primitive behind the serving
    SLO monitor.  Exact when [v] is one of the bucket bounds. *)

(** {1 Reporting} *)

val expose : t -> string
(** Prometheus text exposition format, instruments sorted by name (the
    output is deterministic given deterministic instrument values).
    Histogram buckets are emitted cumulatively with [le] labels, per the
    format. *)

val names : t -> string list
(** Sorted. *)

val escape_help : string -> string
(** Prometheus text-format HELP escaping: [\\] → [\\\\], newline →
    [\\n].  Applied by {!expose}; exposed for property tests. *)

val escape_label_value : string -> string
(** Label-value escaping: HELP escaping plus ["] → [\\"]. *)

val reset : t -> unit
(** Zero every instrument (keeps registrations); for tests. *)
