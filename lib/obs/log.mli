(** Leveled logging, replacing the ad-hoc [prerr_endline]/[Printf]
    scattered through the stack.

    Messages at or above {!set_level}'s threshold go to the sink
    (stderr by default, replaceable for tests and embedding); when
    {!mirror_to_trace} is set and tracing is enabled, every emitted
    message is also recorded as an [Instant] event in the trace buffer
    (category ["log"]), so log lines land on the same timeline as the
    compilation events they explain. *)

type level = Debug | Info | Warn

val level_name : level -> string

val set_level : level -> unit
(** Default: [Info] ([Debug] messages are suppressed). *)

val get_level : unit -> level

val set_sink : (level -> string -> unit) -> unit
(** Default sink writes ["tessera[LEVEL]: msg"] to stderr. *)

val reset_sink : unit -> unit

val mirror_to_trace : bool ref
(** Default [false]. *)

val debug : string -> unit
val info : string -> unit
val warn : string -> unit

val log : level -> string -> unit
