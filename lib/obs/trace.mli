(** Low-overhead trace ring buffer.

    Every event carries the {e virtual} cycle count of the subsystem's
    {!Tessera_vm.Clock} (the simulation's time base) plus, optionally,
    wall time.  Virtual stamps make traces deterministic: two runs with
    identical seeds produce byte-identical canonical event streams
    ({!to_canonical_string} excludes wall time), which is what lets a
    trace diff double as a regression oracle.

    Each {e domain} buffers into its own fixed-capacity ring — the emit
    path never takes a lock — and the rings are registered in a shared
    set the first time a domain emits.  {!events} merges them into one
    canonical stream ordered by virtual cycle (ties broken by event
    content), so the merged order is independent of which domain ran
    which work item; a single-domain run keeps its exact emission order,
    preserving the pre-parallel behaviour byte for byte.  When a ring is
    full, its oldest events are overwritten and counted in {!dropped},
    so tracing can never grow memory without bound.

    Overhead discipline: {!enabled} is the single global on/off flag.
    Instrumentation sites in hot paths must guard with
    [if !Trace.enabled then ...] so that tracing compiled in but
    disabled costs exactly one load-and-branch per event site (argument
    lists are only allocated behind the guard).  The emit functions also
    check the flag, so cold call sites may skip the guard. *)

type arg = Int of int64 | Float of float | Str of string

type phase =
  | Span_begin  (** Chrome ["B"] *)
  | Span_end  (** Chrome ["E"] *)
  | Instant  (** Chrome ["i"] *)
  | Counter  (** Chrome ["C"]: a sampled value, rendered as a track *)

type event = {
  name : string;
  cat : string;  (** category: ["jit"], ["cache"], ["vm"], ["protocol"], ["fault"], ["log"] *)
  ph : phase;
  cycles : int64;  (** virtual clock stamp *)
  wall_us : float;  (** wall-clock microseconds; [0.] unless wall capture is on *)
  args : (string * arg) list;
}

val enabled : bool ref
(** The global fast-path flag.  Hot call sites read this once and skip
    all argument construction when false.  Mutate only through
    {!enable}/{!disable}. *)

val enable : ?capacity:int -> ?wall:bool -> unit -> unit
(** Start tracing into a fresh ring set; each domain that emits gets its
    own ring of [capacity] events (default 65536).  [wall] (default
    false) additionally stamps events with [Unix.gettimeofday]; leave it
    off for deterministic traces. *)

val disable : unit -> unit
(** Stop tracing; buffered events remain readable. *)

val reset : unit -> unit
(** Drop all buffered events and the dropped counts from every
    registered ring (keeps enabled state, capacity, and the rings). *)

val set_cycle_source : (unit -> int64) -> unit
(** Register the virtual-clock read used when an emit site does not pass
    [?cycles] explicitly (subsystems that do not own a clock: the code
    cache, the protocol client, the fault injector).  The JIT engine
    registers its clock on creation; the default source returns [0L].
    The registration is {e domain-local}, so concurrent engines in a
    work pool never stamp each other's clocks. *)

val clear_cycle_source : unit -> unit

val emit :
  ?cycles:int64 -> ?args:(string * arg) list -> cat:string -> phase -> string -> unit
(** The primitive; no-op while disabled. *)

val span_begin : ?cycles:int64 -> ?args:(string * arg) list -> cat:string -> string -> unit
val span_end : ?cycles:int64 -> ?args:(string * arg) list -> cat:string -> string -> unit
val instant : ?cycles:int64 -> ?args:(string * arg) list -> cat:string -> string -> unit

val counter : ?cycles:int64 -> cat:string -> string -> int -> unit
(** [counter ~cat name v] samples a counter track (the value rides in
    [args] as ["value"]). *)

val events : unit -> event list
(** All buffered events as one stream.  With a single ring this is the
    exact emission order; with several (a parallel run) the rings are
    merged by virtual cycle with content tie-breaks — a canonical order
    independent of domain scheduling.  Call after parallel work has
    been joined; concurrent emitters may be partially visible. *)

val length : unit -> int
(** Buffered events, summed over all rings. *)

val capacity : unit -> int
(** Total capacity, summed over all rings. *)

val dropped : unit -> int
(** Events overwritten because a ring was full, summed over rings. *)

val ring_count : unit -> int
(** Registered per-domain rings (1 in a sequential run). *)

val to_canonical_string : unit -> string
(** One line per buffered event —
    [cycles cat phase name k=v ...] — excluding wall time; the
    determinism oracle. *)

val phase_name : phase -> string
val pp_arg : Format.formatter -> arg -> unit
