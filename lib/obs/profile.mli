(** Deterministic sampling profiler driven by the virtual clock.

    The interpreters (both the flat dispatch loop and the tree walker)
    call {!charge} with every cycle cost they charge against the fuel
    meter; a sample fires each time {!period} charged cycles accumulate,
    attributed to the (method, block, opcode) executing at the boundary.
    Because firing depends only on the charged-cycle sequence — never on
    wall time — the same seed yields a byte-identical profile, checked
    through {!to_canonical_string}.

    A fire that spans [k] periods (one coarse cost crossing several
    boundaries) carries weight [k], so estimated cycles
    ([samples × period]) account for every charged cycle to within one
    period per site.

    Off by default, like [Trace]: the interpreters test [!enabled] once
    per run and select an unwrapped charge closure when it is false, so
    the profiler-off cost is one branch per interpreter entry (measured
    within the <3% observability budget by [bench profile]).  The site
    table is bounded ({!enable}'s [max_sites]); weight landing past the
    bound is counted in {!dropped_samples}, never silently lost.
    Single-domain discipline: fires are mutex-guarded so concurrent
    domains cannot corrupt the table, but the credit counter is shared —
    profile one domain at a time for exact attribution. *)

val enabled : bool ref
(** Branch on [!enabled] before doing any attribution work. *)

val enable : ?period:int -> ?max_sites:int -> unit -> unit
(** Clears captured samples and turns sampling on.  [period] (default
    4096) is the virtual-cycle sampling stride; [max_sites] (default
    512) bounds the attribution table.  Raises [Invalid_argument] when
    either is non-positive. *)

val disable : unit -> unit
(** Stops sampling; captured samples remain readable. *)

val reset : unit -> unit
(** Drops captured samples and restores a full credit period. *)

val charge : meth:string -> block:int -> op:string -> int -> unit
(** [charge ~meth ~block ~op cost] accounts [cost] charged cycles to the
    given site.  Hot path: one subtraction and one branch unless a
    period boundary is crossed. *)

(** {1 Reading the profile} *)

val period : unit -> int
val total_samples : unit -> int

val dropped_samples : unit -> int
(** Weight that landed once the site table was full. *)

val site_count : unit -> int

val samples : unit -> ((string * int * string) * int) list
(** [((method, block, opcode), samples)] in canonical (key-sorted)
    order. *)

val hot_methods : unit -> (string * int) list
(** Samples aggregated per method, hottest first (ties broken by
    name, so the ranking is deterministic). *)

val hot_ops : unit -> (string * int) list
(** Samples aggregated per opcode, hottest first. *)

val flame_lines : unit -> string list
(** Collapsed-stack flame-graph lines, ["meth;block_N;op count"], in
    canonical order — feed to any flamegraph.pl-compatible renderer. *)

val to_canonical_string : unit -> string
(** Deterministic rendering of the whole profile (header plus key-sorted
    sites) — the determinism oracle: same seed ⇒ byte-identical. *)

val to_json : unit -> string
(** The profile as a JSON object: sampling parameters, hot-method and
    hot-opcode rankings with estimated cycles, and flame lines. *)

val report : Format.formatter -> unit
(** Human-readable top-10 hot methods and opcodes. *)
