(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                              *)
(* ------------------------------------------------------------------ *)

(* UTF-8-aware string escaping: well-formed multibyte sequences pass
   through untouched (so method and benchmark names render in Perfetto
   instead of turning into per-byte mojibake), control bytes get the
   usual escapes, and invalid sequences become U+FFFD — the output is
   always valid UTF-8 and valid JSON. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let d = String.get_utf_8_uchar s !i in
    (if Uchar.utf_decode_is_valid d then
       let u = Uchar.utf_decode_uchar d in
       let c = Uchar.to_int u in
       if c < 0x80 then
         match Char.chr c with
         | '"' -> Buffer.add_string buf "\\\""
         | '\\' -> Buffer.add_string buf "\\\\"
         | '\n' -> Buffer.add_string buf "\\n"
         | '\r' -> Buffer.add_string buf "\\r"
         | '\t' -> Buffer.add_string buf "\\t"
         | ch when Char.code ch < 0x20 ->
             Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
         | ch -> Buffer.add_char buf ch
       else Buffer.add_utf_8_uchar buf u
     else Buffer.add_utf_8_uchar buf Uchar.rep);
    i := !i + Uchar.utf_decode_length d
  done;
  Buffer.contents buf

(* JSON has no nan/inf tokens; Chrome tracing's convention for a
   non-finite value is null.  Emitting the bare token would make the
   whole export fail strict validation (including our own parse_json). *)
let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6f" f

let arg_json = function
  | Trace.Int i -> Int64.to_string i
  | Trace.Float f -> json_float f
  | Trace.Str s -> Printf.sprintf "\"%s\"" (escape s)

let chrome_json ?(cycles_per_us = 2000.0) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i (e : Trace.event) ->
      if i > 0 then Buffer.add_char buf ',';
      let ts = Int64.to_float e.Trace.cycles /. cycles_per_us in
      (* a ["tid"] arg names the event's track: per-request spans carry
         their trace id here, so each request renders as its own row
         with properly nested B/E pairs instead of interleaving *)
      let tid =
        match List.assoc_opt "tid" e.Trace.args with
        | Some (Trace.Int t) -> t
        | _ -> 1L
      in
      let args =
        List.filter (fun (k, _) -> k <> "tid") e.Trace.args
        @ (if e.Trace.wall_us > 0.0 then [ ("wall_us", Trace.Float e.Trace.wall_us) ]
           else [])
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":1,\"tid\":%Ld"
           (escape e.Trace.name) (escape e.Trace.cat)
           (Trace.phase_name e.Trace.ph)
           (json_float ts) tid);
      (match e.Trace.ph with
      | Trace.Instant -> Buffer.add_string buf ",\"s\":\"g\""
      | _ -> ());
      if args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)))
          args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (validation only; no external dependency)        *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Jstr of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter (fun c -> expect c) word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              let read_hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                code
              in
              (* decode to UTF-8, pairing surrogates; lone surrogates
                 become U+FFFD *)
              let code = read_hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  pos := !pos + 2;
                  let lo = read_hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    Buffer.add_utf_8_uchar buf
                      (Uchar.of_int
                         (0x10000
                         + ((code - 0xD800) lsl 10)
                         + (lo - 0xDC00)))
                  else begin
                    Buffer.add_utf_8_uchar buf Uchar.rep;
                    if lo >= 0xD800 && lo <= 0xDFFF then
                      Buffer.add_utf_8_uchar buf Uchar.rep
                    else Buffer.add_utf_8_uchar buf (Uchar.of_int lo)
                  end
                end
                else Buffer.add_utf_8_uchar buf Uchar.rep
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                Buffer.add_utf_8_uchar buf Uchar.rep
              else Buffer.add_utf_8_uchar buf (Uchar.of_int code);
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-method compilation timeline                                      *)
(* ------------------------------------------------------------------ *)

let find_str args key =
  match List.assoc_opt key args with Some (Trace.Str s) -> Some s | _ -> None

let find_int args key =
  match List.assoc_opt key args with Some (Trace.Int i) -> Some i | _ -> None

type row = {
  at : int64;
  meth : string;
  kind : string;
  level : string;
  detail : string;
}

(* ------------------------------------------------------------------ *)
(* Per-request critical path                                            *)
(* ------------------------------------------------------------------ *)

(* The serving engine emits queue_wait/batch_wait/predict/reply child
   spans per traced request (cat "serve"); the client emits the
   end-to-end "request" root span (cat "protocol").  Group by the
   ["trace"] arg and pair each name's B/E to durations in virtual
   cycles. *)
let requests fmt events =
  let traces : (int64, (string, int64 option * int64 option) Hashtbl.t) Hashtbl.t
      =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.cat = "serve" || e.Trace.cat = "protocol" then
        match find_int e.Trace.args "trace" with
        | None -> ()
        | Some trace ->
            let spans =
              match Hashtbl.find_opt traces trace with
              | Some t -> t
              | None ->
                  let t = Hashtbl.create 8 in
                  Hashtbl.add traces trace t;
                  order := trace :: !order;
                  t
            in
            let b, en =
              Option.value ~default:(None, None)
                (Hashtbl.find_opt spans e.Trace.name)
            in
            (match e.Trace.ph with
            | Trace.Span_begin when b = None ->
                Hashtbl.replace spans e.Trace.name (Some e.Trace.cycles, en)
            | Trace.Span_end when en = None ->
                Hashtbl.replace spans e.Trace.name (b, Some e.Trace.cycles)
            | Trace.Instant ->
                Hashtbl.replace spans e.Trace.name
                  (Some e.Trace.cycles, Some e.Trace.cycles)
            | _ -> ()))
    events;
  let order = List.rev !order in
  if order = [] then
    Format.fprintf fmt "no traced requests in the trace@."
  else begin
    let dur spans name =
      match Hashtbl.find_opt spans name with
      | Some (Some b, Some e) -> Printf.sprintf "%Ld" (Int64.sub e b)
      | Some (Some _, None) -> "open"
      | _ -> "-"
    in
    Format.fprintf fmt "%8s %10s %10s %10s %10s %10s  %s@." "trace" "request"
      "queue" "batch" "predict" "reply" "note";
    Format.fprintf fmt "%s@." (String.make 72 '-');
    List.iter
      (fun trace ->
        let spans = Hashtbl.find traces trace in
        let note =
          if Hashtbl.mem spans "request_dropped" then "dropped"
          else ""
        in
        Format.fprintf fmt "%8Ld %10s %10s %10s %10s %10s  %s@." trace
          (dur spans "request") (dur spans "queue_wait")
          (dur spans "batch_wait") (dur spans "predict") (dur spans "reply")
          note)
      order;
    Format.fprintf fmt
      "@.(durations in virtual cycles; \"request\" is the client's \
       end-to-end span)@."
  end

let timeline fmt events =
  (* pair compile B/E by a stack (compiles are synchronous, so nesting
     is well-formed); everything else is an instant *)
  let rows = ref [] in
  let stack = ref [] in
  let add r = rows := r :: !rows in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.cat = "jit" || e.Trace.cat = "cache" then
        let meth = Option.value ~default:"?" (find_str e.Trace.args "meth") in
        let level = Option.value ~default:"" (find_str e.Trace.args "level") in
        match (e.Trace.ph, e.Trace.name) with
        | Trace.Span_begin, "compile" -> stack := (e, meth, level) :: !stack
        | Trace.Span_end, "compile" -> (
            match !stack with
            | (b, bmeth, blevel) :: rest ->
                stack := rest;
                let cycles =
                  match find_int e.Trace.args "compile_cycles" with
                  | Some c -> Printf.sprintf "%Ld cycles" c
                  | None -> "failed"
                in
                let modifier =
                  Option.value ~default:"" (find_str b.Trace.args "modifier")
                in
                add
                  {
                    at = b.Trace.cycles;
                    meth = bmeth;
                    kind = "compile";
                    level = blevel;
                    detail = Printf.sprintf "%s modifier=%s" cycles modifier;
                  }
            | [] -> ())
        | Trace.Instant, ("cache_hit" | "install" | "quarantine"
                         | "budget_reject" | "degrade" | "modifier_fallback"
                         | "promote") ->
            let detail =
              match e.Trace.name with
              | "cache_hit" ->
                  Printf.sprintf "modifier=%s"
                    (Option.value ~default:""
                       (find_str e.Trace.args "modifier"))
              | "install" -> (
                  match find_int e.Trace.args "queue_wait" with
                  | Some w -> Printf.sprintf "queue_wait=%Ld" w
                  | None -> "")
              | "promote" ->
                  Printf.sprintf "from=%s"
                    (Option.value ~default:"interpreter"
                       (find_str e.Trace.args "from"))
              | _ -> ""
            in
            let kind =
              if e.Trace.name = "cache_hit" then "aot-load" else e.Trace.name
            in
            add { at = e.Trace.cycles; meth; kind; level; detail }
        | _ -> ())
    events;
  let rows = List.rev !rows in
  if rows = [] then
    Format.fprintf fmt
      "no compilation events in the trace (was tracing enabled?)@."
  else begin
    Format.fprintf fmt "%12s  %-36s %-12s %-10s %s@." "virtual ms" "method"
      "event" "level" "detail";
    Format.fprintf fmt "%s@." (String.make 100 '-');
    List.iter
      (fun r ->
        Format.fprintf fmt "%12.3f  %-36s %-12s %-10s %s@."
          (Int64.to_float r.at /. 2e6)
          (if String.length r.meth > 36 then String.sub r.meth 0 36 else r.meth)
          r.kind r.level r.detail)
      rows;
    (* per-method summary *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let compiles, aots, last_level =
          Option.value ~default:(0, 0, "") (Hashtbl.find_opt tbl r.meth)
        in
        let entry =
          match r.kind with
          | "compile" -> (compiles + 1, aots, r.level)
          | "aot-load" -> (compiles, aots + 1, r.level)
          | "promote" | "install" -> (compiles, aots, r.level)
          | _ -> (compiles, aots, last_level)
        in
        Hashtbl.replace tbl r.meth entry)
      rows;
    Format.fprintf fmt "@.%-36s %10s %10s %10s@." "method" "compiles"
      "aot-loads" "level";
    let summary =
      Hashtbl.fold (fun m v acc -> (m, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    List.iter
      (fun (m, (compiles, aots, level)) ->
        Format.fprintf fmt "%-36s %10d %10d %10s@."
          (if String.length m > 36 then String.sub m 0 36 else m)
          compiles aots level)
      summary
  end
