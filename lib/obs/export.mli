(** Exporters over the trace buffer.

    {!chrome_json} emits the Chrome [trace_event] array format, loadable
    in Perfetto / [chrome://tracing]: spans become ["B"]/["E"] pairs,
    instants ["i"], counter samples ["C"] tracks.  Timestamps are the
    virtual cycle stamps converted to virtual microseconds, so the
    viewer's time axis reads in simulated time.

    {!timeline} renders a human-readable per-method compilation timeline
    from the same events (the [tessera_report timeline] subcommand).

    {!parse_json} is a minimal strict JSON reader used to validate
    exports in tests and CI without external dependencies. *)

val chrome_json : ?cycles_per_us:float -> Trace.event list -> string
(** [cycles_per_us] defaults to 2000. (2 GHz virtual core, matching
    [Tessera_vm.Cost.cycles_per_ms] = 2,000,000).  When an event carries
    a wall stamp it rides along as an arg.  An [Int] arg named ["tid"]
    becomes the event's track id (and is dropped from the exported
    args): per-request spans set it to their trace id so each request
    renders as its own properly nested row in Perfetto. *)

(** {1 Minimal JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Jstr of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Strict: exactly one value, whole input consumed (modulo whitespace). *)

val member : string -> json -> json option
(** Object field lookup. *)

(** {1 Timeline} *)

val timeline : Format.formatter -> Trace.event list -> unit
(** Per-method compilation timeline: one row per compile span, AOT
    load, install, or degradation event, ordered by virtual time, with
    a per-method summary. *)

val requests : Format.formatter -> Trace.event list -> unit
(** Per-request critical path: one row per traced request (grouped by
    the ["trace"] arg on cat ["serve"]/["protocol"] events) showing the
    client's end-to-end span against the server's
    [queue_wait]/[batch_wait]/[predict]/[reply] breakdown, in virtual
    cycles. *)
