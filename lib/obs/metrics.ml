type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (* upper bounds, increasing; +Inf implicit *)
  h_counts : int array;  (* length = length h_bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument = C of counter | G of gauge | H of histogram

(* The registry table is the only state shared across domains:
   registration, exposition, and reset take [mu]; instrument reads and
   writes are plain record-field operations on values handed out at
   registration time, so the hot path never locks or hashes. *)
type t = { tbl : (string, instrument) Hashtbl.t; mu : Mutex.t }

let create () = { tbl = Hashtbl.create 32; mu = Mutex.create () }
let default = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make found =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some i -> (
          match found i with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (kind_name i)))
      | None ->
          let v, i = make () in
          Hashtbl.add t.tbl name i;
          v)

let counter t ?(help = "") name =
  register t name
    (fun () ->
      let c = { c_name = name; c_help = help; c_value = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let gauge t ?(help = "") name =
  register t name
    (fun () ->
      let g = { g_name = name; g_help = help; g_value = 0.0 } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let default_buckets = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram t ?(help = "") ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must increase strictly")
    buckets;
  register t name
    (fun () ->
      let h =
        {
          h_name = name;
          h_help = help;
          h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let inc c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  c.c_value <- c.c_value + n

let counter_value c = c.c_value

let set_gauge g v = g.g_value <- v
let add_gauge g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

let bucket_index h v =
  let n = Array.length h.h_bounds in
  let rec go i = if i >= n then n else if v <= h.h_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let i = bucket_index h v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let bucket_counts h =
  Array.init
    (Array.length h.h_counts)
    (fun i ->
      let bound =
        if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity
      in
      (bound, h.h_counts.(i)))

let histogram_sum h = h.h_sum
let histogram_count h = h.h_count

(* Quantiles are exact at bucket resolution: the containing bucket is
   found by a cumulative walk and the position inside it interpolated
   linearly, so two registries with identical counts report identical
   quantiles (the determinism the bench and SLO monitor rely on).  The
   +Inf bucket has no finite upper edge; observations landing there
   report the largest finite bound. *)
let quantile h q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Metrics.quantile";
  if h.h_count = 0 then Float.nan
  else
    let nb = Array.length h.h_bounds in
    let rank = q *. float_of_int h.h_count in
    let rec go i cum =
      if i >= nb then if nb = 0 then 0.0 else h.h_bounds.(nb - 1)
      else
        let here = h.h_counts.(i) in
        let cum' = cum + here in
        if here > 0 && float_of_int cum' >= rank then
          let lo = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
          let hi = h.h_bounds.(i) in
          let frac = (rank -. float_of_int cum) /. float_of_int here in
          let frac = Float.max 0.0 (Float.min 1.0 frac) in
          lo +. (frac *. (hi -. lo))
        else go (i + 1) cum'
    in
    go 0 0

let count_le h v =
  let nb = Array.length h.h_bounds in
  let total = ref 0 in
  Array.iteri
    (fun i c ->
      let bound = if i < nb then h.h_bounds.(i) else infinity in
      if bound <= v then total := !total + c)
    h.h_counts;
  !total

let names_unlocked t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort String.compare

let names t = locked t (fun () -> names_unlocked t)

(* Prometheus exposition needs 1e6 to print as "1e+06"-free decimal where
   possible; use %.17g trimmed via %g for bounds and sums.  Non-finite
   values use the format's spellings (NaN, +Inf, -Inf) — "nan"/"inf"
   tokens would fail strict scrape parsers. *)
let float_str f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Prometheus text-format escaping: a help string (or label value)
   containing a newline would otherwise split the exposition mid-line
   and fail every strict scrape parser.  HELP text escapes backslash and
   newline; label values additionally escape the double quote. *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let expose t =
  locked t @@ fun () ->
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c ->
          header c.c_name c.c_help "counter";
          Buffer.add_string buf (Printf.sprintf "%s %d\n" c.c_name c.c_value)
      | G g ->
          header g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" g.g_name (float_str g.g_value))
      | H h ->
          header h.h_name h.h_help "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i count ->
              cum := !cum + count;
              let le =
                if i < Array.length h.h_bounds then float_str h.h_bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                   (escape_label_value le) !cum))
            h.h_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (float_str h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" h.h_name h.h_count))
    (names_unlocked t);
  Buffer.contents buf

let reset t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | C c -> c.c_value <- 0
          | G g -> g.g_value <- 0.0
          | H h ->
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              h.h_sum <- 0.0;
              h.h_count <- 0)
        t.tbl)
