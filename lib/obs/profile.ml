(* Deterministic sampling profiler over the virtual clock.  Interpreter
   dispatch loops call [charge] with every cycle cost they charge; the
   hot path only decrements a credit counter, and a sample fires each
   time [period] charged cycles have accumulated — so the sample stream
   is a pure function of the charged-cycle sequence, and two runs of the
   same seed produce byte-identical profiles (the canonical-string
   oracle below).  Attribution is (method, block, opcode) at the site
   that crossed the period boundary; a fire spanning k periods carries
   weight k, so no cycles are ever lost to coarse costs. *)

type key = { k_meth : string; k_block : int; k_op : string }

let enabled = ref false
let period_v = ref 4096
let max_sites_v = ref 512
let credit = ref 4096
let total = ref 0
let dropped = ref 0
let sites : (key, int ref) Hashtbl.t = Hashtbl.create 256
let mu = Mutex.create ()

let reset () =
  Mutex.lock mu;
  Hashtbl.reset sites;
  total := 0;
  dropped := 0;
  credit := !period_v;
  Mutex.unlock mu

let enable ?(period = 4096) ?(max_sites = 512) () =
  if period <= 0 then invalid_arg "Profile.enable: period must be positive";
  if max_sites <= 0 then invalid_arg "Profile.enable: max_sites must be positive";
  period_v := period;
  max_sites_v := max_sites;
  reset ();
  enabled := true

let disable () = enabled := false
let period () = !period_v
let total_samples () = !total
let dropped_samples () = !dropped
let site_count () = Hashtbl.length sites

(* Cold half of [charge]: the credit underflowed.  The table update is
   mutex-guarded — fires are rare (one per [period] cycles), so the lock
   is off the hot path; the bound keeps a pathological workload from
   growing the table without limit (overflow weight is counted, not
   silently lost). *)
let fire ~meth ~block ~op over =
  let p = !period_v in
  let weight = 1 + (over / p) in
  credit := p - (over mod p);
  Mutex.lock mu;
  let key = { k_meth = meth; k_block = block; k_op = op } in
  (match Hashtbl.find_opt sites key with
  | Some r ->
      r := !r + weight;
      total := !total + weight
  | None ->
      if Hashtbl.length sites >= !max_sites_v then dropped := !dropped + weight
      else begin
        Hashtbl.add sites key (ref weight);
        total := !total + weight
      end);
  Mutex.unlock mu

let charge ~meth ~block ~op cost =
  let c = !credit - cost in
  if c > 0 then credit := c else fire ~meth ~block ~op (-c)

let compare_key a b =
  let c = String.compare a.k_meth b.k_meth in
  if c <> 0 then c
  else
    let c = compare a.k_block b.k_block in
    if c <> 0 then c else String.compare a.k_op b.k_op

let samples () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) sites []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)
  |> List.map (fun (k, n) -> ((k.k_meth, k.k_block, k.k_op), n))

(* hottest first; key order breaks ties so the ranking is deterministic *)
let ranked assoc =
  List.sort
    (fun (ka, na) (kb, nb) ->
      if na <> nb then compare nb na else String.compare ka kb)
    assoc

let aggregate f =
  let tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k r ->
      let name = f k in
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl name) in
      Hashtbl.replace tbl name (cur + !r))
    sites;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [] |> ranked

let hot_methods () = aggregate (fun k -> k.k_meth)
let hot_ops () = aggregate (fun k -> k.k_op)

let flame_lines () =
  samples ()
  |> List.map (fun ((meth, block, op), n) ->
         Printf.sprintf "%s;block_%d;%s %d" meth block op n)

let to_canonical_string () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "period %d total %d dropped %d\n" !period_v !total !dropped);
  List.iter
    (fun ((meth, block, op), n) ->
      Buffer.add_string buf (Printf.sprintf "%s %d %s %d\n" meth block op n))
    (samples ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json () =
  let p = !period_v in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"period_cycles\": %d,\n" p);
  Buffer.add_string buf (Printf.sprintf "  \"total_samples\": %d,\n" !total);
  Buffer.add_string buf (Printf.sprintf "  \"dropped_samples\": %d,\n" !dropped);
  Buffer.add_string buf
    (Printf.sprintf "  \"sites\": %d,\n" (Hashtbl.length sites));
  let entries fmt_one l =
    String.concat ",\n" (List.map fmt_one l)
  in
  Buffer.add_string buf "  \"hot_methods\": [\n";
  Buffer.add_string buf
    (entries
       (fun (m, n) ->
         Printf.sprintf
           "    {\"method\": \"%s\", \"samples\": %d, \"est_cycles\": %d}"
           (json_escape m) n (n * p))
       (hot_methods ()));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"hot_ops\": [\n";
  Buffer.add_string buf
    (entries
       (fun (o, n) ->
         Printf.sprintf
           "    {\"op\": \"%s\", \"samples\": %d, \"est_cycles\": %d}"
           (json_escape o) n (n * p))
       (hot_ops ()));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"flame\": [\n";
  Buffer.add_string buf
    (entries
       (fun line -> Printf.sprintf "    \"%s\"" (json_escape line))
       (flame_lines ()));
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let report fmt =
  Format.fprintf fmt "sampling profile: period %d cycles, %d samples" !period_v
    !total;
  if !dropped > 0 then
    Format.fprintf fmt " (+%d dropped past the %d-site bound)" !dropped
      !max_sites_v;
  Format.fprintf fmt "@.";
  let p = float_of_int !period_v in
  let tot = float_of_int (max 1 !total) in
  Format.fprintf fmt "@.%-44s %10s %8s@." "method" "samples" "share";
  List.iteri
    (fun i (m, n) ->
      if i < 10 then
        Format.fprintf fmt "%-44s %10d %7.1f%%@." m n
          (100.0 *. float_of_int n /. tot))
    (hot_methods ());
  Format.fprintf fmt "@.%-20s %10s %8s %14s@." "opcode" "samples" "share"
    "est cycles";
  List.iteri
    (fun i (o, n) ->
      if i < 10 then
        Format.fprintf fmt "%-20s %10d %7.1f%% %14.0f@." o n
          (100.0 *. float_of_int n /. tot)
          (float_of_int n *. p))
    (hot_ops ())
