module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

type def = { def_id : int; sym : int; block : int; node_uid : int }

type t = { flow : Flow.t; defs : def array; reach_in : Bitset.t array }

module Solver = Dataflow.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
end)

let analyze (m : Meth.t) =
  let flow = Flow.of_meth m in
  let nsyms = Array.length m.Meth.symbols in
  (* virtual entry defs first (def_id = symbol id), then real sites in
     block order, statement order, pre-order within each tree *)
  let defs = ref [] in
  let next = ref nsyms in
  for s = nsyms - 1 downto 0 do
    defs := { def_id = s; sym = s; block = -1; node_uid = -1 } :: !defs
  done;
  let by_block = Array.make flow.Flow.n [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      List.iter
        (fun tree ->
          Node.fold
            (fun () (n : Node.t) ->
              let is_def =
                match n.Node.op with
                | Opcode.Store -> Array.length n.Node.args = 1
                | Opcode.Inc -> true
                | _ -> false
              in
              if is_def then begin
                let d =
                  { def_id = !next; sym = n.Node.sym; block = bi;
                    node_uid = n.Node.uid }
                in
                incr next;
                defs := d :: !defs;
                by_block.(bi) <- d :: by_block.(bi)
              end)
            () tree)
        (b.Block.stmts @ Block.terminator_nodes b.Block.term))
    m.Meth.blocks;
  let defs = Array.of_list (List.rev !defs) in
  let ndefs = Array.length defs in
  let defs_of_sym = Array.make nsyms [] in
  Array.iter (fun d -> defs_of_sym.(d.sym) <- d.def_id :: defs_of_sym.(d.sym)) defs;
  (* gen: downward-exposed defs (last def per symbol in the block);
     kill: every other def of a symbol the block defines; all_defs:
     everything the block may have defined when a trap escapes to the
     handler *)
  let gen = Array.make flow.Flow.n (Bitset.create ndefs) in
  let kill = Array.make flow.Flow.n (Bitset.create ndefs) in
  let all_defs = Array.make flow.Flow.n (Bitset.create ndefs) in
  for bi = 0 to flow.Flow.n - 1 do
    let g = Bitset.create ndefs and k = Bitset.create ndefs in
    let a = Bitset.create ndefs in
    let last = Hashtbl.create 8 in
    List.iter
      (fun d ->
        Bitset.set a d.def_id;
        Hashtbl.replace last d.sym d.def_id)
      (List.rev by_block.(bi));
    Hashtbl.iter
      (fun sym last_id ->
        Bitset.set g last_id;
        List.iter
          (fun id -> if id <> last_id then Bitset.set k id)
          defs_of_sym.(sym))
      last;
    gen.(bi) <- g;
    kill.(bi) <- k;
    all_defs.(bi) <- a
  done;
  let entry = Bitset.create ndefs in
  for s = 0 to nsyms - 1 do
    Bitset.set entry s
  done;
  let out_of get p =
    let o = Bitset.copy (get p) in
    Bitset.diff_into ~into:o kill.(p);
    ignore (Bitset.union_into ~into:o gen.(p));
    o
  in
  let transfer ~get ~round:_ b =
    let i = Bitset.create ndefs in
    if b = 0 then ignore (Bitset.union_into ~into:i entry);
    List.iter (fun p -> ignore (Bitset.union_into ~into:i (out_of get p))) flow.Flow.preds.(b);
    List.iter
      (fun p ->
        ignore (Bitset.union_into ~into:i (get p));
        ignore (Bitset.union_into ~into:i all_defs.(p)))
      flow.Flow.exc_preds.(b);
    i
  in
  let reach_in =
    Solver.fixpoint ~n:flow.Flow.n
      ~deps:(Flow.forward_deps flow)
      ~order:(Flow.forward_order flow)
      ~init:(fun _ -> Bitset.create ndefs)
      ~transfer ()
  in
  { flow; defs; reach_in }

let density t =
  let total = ref 0 and blocks = ref 0 in
  Array.iteri
    (fun b s ->
      if t.flow.Flow.reachable.(b) then begin
        total := !total + Bitset.count s;
        incr blocks
      end)
    t.reach_in;
  if !blocks = 0 then 0 else min 255 (!total / !blocks)
