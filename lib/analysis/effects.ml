module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Int_set = Set.Make (Int)

type t = {
  reads_heap : bool;
  writes_heap : bool;
  allocates : bool;
  sync : bool;
  may_trap : bool;
  throws : bool;
  calls : Int_set.t;
}

let bottom =
  {
    reads_heap = false;
    writes_heap = false;
    allocates = false;
    sync = false;
    may_trap = false;
    throws = false;
    calls = Int_set.empty;
  }

let join a b =
  {
    reads_heap = a.reads_heap || b.reads_heap;
    writes_heap = a.writes_heap || b.writes_heap;
    allocates = a.allocates || b.allocates;
    sync = a.sync || b.sync;
    may_trap = a.may_trap || b.may_trap;
    throws = a.throws || b.throws;
    calls = Int_set.union a.calls b.calls;
  }

let equal a b =
  a.reads_heap = b.reads_heap
  && a.writes_heap = b.writes_heap
  && a.allocates = b.allocates
  && a.sync = b.sync
  && a.may_trap = b.may_trap
  && a.throws = b.throws
  && Int_set.equal a.calls b.calls

let imp a b = (not a) || b

let leq a b =
  imp a.reads_heap b.reads_heap
  && imp a.writes_heap b.writes_heap
  && imp a.allocates b.allocates
  && imp a.sync b.sync
  && imp a.may_trap b.may_trap
  && imp a.throws b.throws
  && Int_set.subset a.calls b.calls

let is_pure e =
  (not e.reads_heap) && (not e.writes_heap) && (not e.allocates)
  && (not e.sync) && (not e.may_trap) && not e.throws

(* A [Div]/[Rem] whose divisor is a nonzero constant cannot trap. *)
let divisor_nonzero (n : Node.t) =
  Array.length n.Node.args = 2
  &&
  let d = n.Node.args.(1) in
  Opcode.equal d.Node.op Opcode.Loadconst
  && (not (Types.is_floating d.Node.ty))
  && not (Int64.equal d.Node.const 0L)

let node_effects acc (n : Node.t) =
  match n.Node.op with
  | Opcode.Load when Array.length n.Node.args >= 1 ->
      { acc with reads_heap = true; may_trap = true }
  | Opcode.Store when Array.length n.Node.args >= 2 ->
      { acc with writes_heap = true; may_trap = true }
  | Opcode.Div | Opcode.Rem ->
      if Types.is_floating n.Node.ty || divisor_nonzero n then acc
      else { acc with may_trap = true }
  | Opcode.Cast Opcode.C_check -> { acc with may_trap = true }
  | Opcode.New -> { acc with allocates = true }
  | Opcode.Newarray | Opcode.Newmultiarray ->
      { acc with allocates = true; may_trap = true }
  | Opcode.Synchronization _ -> { acc with sync = true; may_trap = true }
  | Opcode.Call -> { acc with calls = Int_set.add n.Node.sym acc.calls }
  | Opcode.Arrayop Opcode.Bounds_check | Opcode.Arrayop Opcode.Array_length ->
      { acc with may_trap = true }
  | Opcode.Arrayop Opcode.Array_cmp ->
      { acc with reads_heap = true; may_trap = true }
  | Opcode.Arrayop Opcode.Array_copy ->
      { acc with reads_heap = true; writes_heap = true; may_trap = true }
  | _ -> acc

let of_meth (m : Meth.t) =
  let flow = Flow.of_meth m in
  let acc = ref bottom in
  if m.Meth.attrs.Meth.synchronized then
    acc := { !acc with sync = true; may_trap = true };
  Array.iteri
    (fun bi (b : Block.t) ->
      if flow.Flow.reachable.(bi) then begin
        List.iter
          (fun tree -> acc := Node.fold node_effects !acc tree)
          (b.Block.stmts @ Block.terminator_nodes b.Block.term);
        match b.Block.term with
        | Block.Throw _ -> acc := { !acc with throws = true }
        | _ -> ()
      end)
    m.Meth.blocks;
  !acc

let close ~summaries eff =
  Int_set.fold
    (fun c acc ->
      if c >= 0 && c < Array.length summaries then join acc summaries.(c)
      else acc)
    eff.calls eff

let of_program (p : Program.t) =
  let n = Array.length p.Program.methods in
  let direct = Array.map of_meth p.Program.methods in
  let summaries = Array.make n bottom in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let nu = close ~summaries direct.(i) in
      if not (equal nu summaries.(i)) then begin
        summaries.(i) <- nu;
        changed := true
      end
    done
  done;
  summaries

let describe e =
  List.filter_map
    (fun (flag, name) -> if flag then Some name else None)
    [
      (e.reads_heap, "reads-heap");
      (e.writes_heap, "writes-heap");
      (e.allocates, "allocates");
      (e.sync, "sync");
      (e.may_trap, "may-trap");
      (e.throws, "throws");
    ]

let pp fmt e =
  let flags = describe e in
  let flags = if flags = [] then [ "pure" ] else flags in
  Format.fprintf fmt "{%s; calls=%d}"
    (String.concat "," flags)
    (Int_set.cardinal e.calls)
