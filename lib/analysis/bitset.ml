type t = { words : int array; bits : int }

let word_bits = Sys.int_size

let create bits =
  { words = Array.make ((bits + word_bits - 1) / word_bits) 0; bits }

let length t = t.bits

let copy t = { t with words = Array.copy t.words }

let set t i = t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let unset t i =
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i = t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let union_into ~into src =
  if into.bits <> src.bits then invalid_arg "Bitset.union_into: width mismatch";
  let changed = ref false in
  Array.iteri
    (fun w v ->
      let u = into.words.(w) lor v in
      if u <> into.words.(w) then begin
        into.words.(w) <- u;
        changed := true
      end)
    src.words;
  !changed

let diff_into ~into src =
  if into.bits <> src.bits then invalid_arg "Bitset.diff_into: width mismatch";
  Array.iteri (fun w v -> into.words.(w) <- into.words.(w) land lnot v) src.words

let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1)

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let equal a b = a.bits = b.bits && a.words = b.words

let iter f t =
  for i = 0 to t.bits - 1 do
    if mem t i then f i
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun i -> acc := f !acc i) t;
  !acc
