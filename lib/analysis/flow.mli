(** The CFG view the dataflow analyses solve over: normal edges from
    {!Tessera_opt.Cfg} plus the exceptional edges induced by per-block
    trap handlers, which {!Tessera_opt.Cfg.build} folds into reachability
    but does not expose as an edge relation. *)

module Meth = Tessera_il.Meth

type t = {
  n : int;  (** number of blocks *)
  succs : int list array;  (** normal successors *)
  preds : int list array;  (** normal predecessors *)
  handler : int option array;  (** per-block exception handler *)
  exc_preds : int list array;
      (** [exc_preds.(h)] = blocks whose handler is [h] *)
  reachable : bool array;  (** via normal + exceptional edges, from entry *)
  rpo : int array;  (** reverse post-order over normal edges *)
}

val of_meth : Meth.t -> t

val forward_order : t -> int array
(** Reverse post-order: a good initial worklist for forward problems.
    Includes every block (handler-only blocks appended after the rpo). *)

val backward_order : t -> int array
(** Post-order: the forward order reversed. *)

val forward_deps : t -> int array array
(** [deps.(b)] = blocks whose forward transfer reads block [b]'s state:
    normal successors plus [b]'s handler. *)

val backward_deps : t -> int array array
(** [deps.(b)] = blocks whose backward transfer reads [b]'s state:
    normal predecessors plus blocks [b] handles for. *)
