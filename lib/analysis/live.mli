(** Backward liveness of method-local symbols (argument and temporary
    slots).

    A symbol is live at a point when some path from that point reads it
    (arity-0 [Load], or [Inc], which reads before writing) before any
    redefinition.  Blocks with an exception handler conservatively keep
    the handler's live-in set live throughout: a trap can transfer
    control to the handler from any statement, before or after any
    definition in the block. *)

module Meth = Tessera_il.Meth

type t = {
  flow : Flow.t;
  live_in : Bitset.t array;  (** per block, indexed by symbol id *)
}

val analyze : Meth.t -> t

val live_in : t -> int -> Bitset.t

val pressure : t -> int
(** Maximum [live_in] population over reachable blocks: the "live-slot
    pressure" feature — how many locals a register allocator must keep
    simultaneously. *)
