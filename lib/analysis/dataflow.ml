module type LATTICE = sig
  type t

  val equal : t -> t -> bool
end

module Make (L : LATTICE) = struct
  let fixpoint ~n ~deps ~order ~init ~transfer ?max_steps () =
    let max_steps =
      match max_steps with Some s -> s | None -> 1024 * (n + 1)
    in
    let state = Array.init n init in
    let rounds = Array.make n 0 in
    let inq = Array.make n false in
    let q = Queue.create () in
    Array.iter
      (fun b ->
        if b >= 0 && b < n && not inq.(b) then begin
          inq.(b) <- true;
          Queue.add b q
        end)
      order;
    let steps = ref 0 in
    while not (Queue.is_empty q) do
      let b = Queue.pop q in
      inq.(b) <- false;
      incr steps;
      if !steps > max_steps then
        failwith "Dataflow.fixpoint: no convergence (transfer not monotone?)";
      let nu = transfer ~get:(fun i -> state.(i)) ~round:rounds.(b) b in
      rounds.(b) <- rounds.(b) + 1;
      if not (L.equal state.(b) nu) then begin
        state.(b) <- nu;
        Array.iter
          (fun d ->
            if not inq.(d) then begin
              inq.(d) <- true;
              Queue.add d q
            end)
          deps.(b)
      end
    done;
    state
end
