module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Symbol = Tessera_il.Symbol
module Meth = Tessera_il.Meth

type result = {
  flow : Flow.t;
  in_envs : Interval.t array array;
  ret : Interval.t;
  const_nodes : int;
  total_nodes : int;
}

(* Per-block solver state: the environment at block exit along the
   normal edge, and the join of every intermediate environment for the
   exceptional edge (a trap can escape after any prefix of the block's
   stores). *)
module St = struct
  type t = { out_env : Interval.t array; exc_env : Interval.t array }

  let env_equal a b =
    Array.length a = Array.length b
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (Interval.equal x b.(i)) then ok := false) a;
        !ok)

  let equal a b = env_equal a.out_env b.out_env && env_equal a.exc_env b.exc_env
end

module Solver = Dataflow.Make (St)

let analyze (m : Meth.t) =
  let flow = Flow.of_meth m in
  let nsyms = Array.length m.Meth.symbols in
  let sym_ty s = m.Meth.symbols.(s).Symbol.ty in
  let integral s = Types.is_integral (sym_ty s) in
  (* Entry environment mirrors [Interp.run]'s initialisation: arguments
     are store-coerced to the symbol type (anything representable lands
     in the type's range; 0 covers the default for unbound arguments),
     integral temporaries default to 0.  Non-integral symbols are never
     tracked. *)
  let entry_env =
    Array.init nsyms (fun i ->
        let s = m.Meth.symbols.(i) in
        if not (Types.is_integral s.Symbol.ty) then Interval.top
        else
          match s.Symbol.kind with
          | Symbol.Arg -> Interval.ty_range s.Symbol.ty
          | Symbol.Temp -> Interval.singleton 0L)
  in
  (* Abstract evaluation threading the environment exactly in the
     interpreter's evaluation order.  The returned interval covers every
     [as_int]-visible outcome of the node: if the value is [Int_v v]
     then [mem v iv]; if it is [Null_v]/[Void_v] (read as 0) then
     [mem 0 iv]; whenever [Float_v] is possible the interval is [Top].
     Object/array values trap under [as_int], so they need no cover. *)
  let rec eval ~env ~exc ~on_node (n : Node.t) =
    let ev x = eval ~env ~exc ~on_node x in
    let set_sym s iv =
      let iv = if integral s then iv else Interval.top in
      env.(s) <- iv;
      exc.(s) <- Interval.join exc.(s) iv
    in
    let void_iv = Interval.singleton 0L in
    let iv =
      match n.Node.op with
      | Opcode.Loadconst ->
          if Types.is_floating n.Node.ty then Interval.top
          else Interval.singleton n.Node.const
      | Opcode.Load -> (
          match Array.length n.Node.args with
          | 0 -> if integral n.Node.sym then env.(n.Node.sym) else Interval.top
          | 1 ->
              ignore (ev n.Node.args.(0));
              Interval.top
          | _ ->
              ignore (ev n.Node.args.(0));
              ignore (ev n.Node.args.(1));
              Interval.top)
      | Opcode.Store -> (
          match Array.length n.Node.args with
          | 1 ->
              let v = ev n.Node.args.(0) in
              let vty = n.Node.args.(0).Node.ty in
              let sty = sym_ty n.Node.sym in
              (* store_coerce: integral rhs truncates to the slot type;
                 any other value lands within the slot type's range (or
                 traps on use) *)
              let stored =
                if Types.is_integral vty then Interval.truncate_to sty v
                else Interval.ty_range sty
              in
              set_sym n.Node.sym stored;
              void_iv
          | 2 ->
              ignore (ev n.Node.args.(0));
              ignore (ev n.Node.args.(1));
              void_iv
          | _ ->
              ignore (ev n.Node.args.(0));
              ignore (ev n.Node.args.(1));
              ignore (ev n.Node.args.(2));
              void_iv)
      | Opcode.Inc ->
          let sty = sym_ty n.Node.sym in
          set_sym n.Node.sym
            (Interval.truncate_to sty
               (Interval.add env.(n.Node.sym)
                  (Interval.singleton n.Node.const)));
          void_iv
      | Opcode.Compare _ ->
          ignore (ev n.Node.args.(0));
          ignore (ev n.Node.args.(1));
          Interval.of_bounds 0L 1L
      | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
      | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Shift _ ->
          let a = ev n.Node.args.(0) in
          let b = ev n.Node.args.(1) in
          if Types.is_floating n.Node.ty then Interval.top
          else begin
            match n.Node.op with
            | Opcode.Add -> Interval.truncate_to n.Node.ty (Interval.add a b)
            | Opcode.Sub -> Interval.truncate_to n.Node.ty (Interval.sub a b)
            | Opcode.Mul -> Interval.truncate_to n.Node.ty (Interval.mul a b)
            | Opcode.Div | Opcode.Rem -> (
                match (Interval.is_singleton a, Interval.is_singleton b) with
                | Some x, Some y
                  when (not (Int64.equal y 0L))
                       && not
                            (Int64.equal x Int64.min_int
                            && Int64.equal y (-1L)) ->
                    let q =
                      if Opcode.equal n.Node.op Opcode.Div then Int64.div x y
                      else Int64.rem x y
                    in
                    Interval.truncate_to n.Node.ty (Interval.singleton q)
                | _ -> Interval.ty_range n.Node.ty)
            | _ -> Interval.ty_range n.Node.ty
          end
      | Opcode.Neg ->
          let a = ev n.Node.args.(0) in
          if Types.is_floating n.Node.ty then Interval.top
          else Interval.truncate_to n.Node.ty (Interval.neg a)
      | Opcode.Cast Opcode.C_check -> ev n.Node.args.(0)
      | Opcode.Cast Opcode.C_address | Opcode.Cast Opcode.C_object ->
          ev n.Node.args.(0)
      | Opcode.Cast k ->
          let a = ev n.Node.args.(0) in
          let target =
            match Opcode.cast_target k with Some t -> t | None -> n.Node.ty
          in
          if Types.is_floating target then Interval.top
          else Interval.truncate_to target a
      | Opcode.New -> Interval.top
      | Opcode.Newarray ->
          ignore (ev n.Node.args.(0));
          Interval.top
      | Opcode.Newmultiarray ->
          ignore (ev n.Node.args.(0));
          ignore (ev n.Node.args.(1));
          Interval.top
      | Opcode.Instanceof ->
          ignore (ev n.Node.args.(0));
          Interval.of_bounds 0L 1L
      | Opcode.Synchronization _ ->
          Array.iter (fun a -> ignore (ev a)) n.Node.args;
          void_iv
      | Opcode.Throw_op ->
          Array.iter (fun a -> ignore (ev a)) n.Node.args;
          void_iv
      | Opcode.Branch_op -> ev n.Node.args.(0)
      | Opcode.Call ->
          Array.iter (fun a -> ignore (ev a)) n.Node.args;
          Interval.top
      | Opcode.Arrayop Opcode.Bounds_check ->
          ignore (ev n.Node.args.(0));
          ignore (ev n.Node.args.(1));
          void_iv
      | Opcode.Arrayop Opcode.Array_copy ->
          Array.iter (fun a -> ignore (ev a)) n.Node.args;
          void_iv
      | Opcode.Arrayop Opcode.Array_cmp ->
          ignore (ev n.Node.args.(0));
          ignore (ev n.Node.args.(1));
          Interval.top
      | Opcode.Arrayop Opcode.Array_length ->
          ignore (ev n.Node.args.(0));
          Interval.of_bounds 0L 1048576L
      | Opcode.Mixedop ->
          Array.iter (fun a -> ignore (ev a)) n.Node.args;
          if Types.is_floating n.Node.ty then Interval.top
          else if Types.equal n.Node.ty Types.Void then void_iv
          else Interval.ty_range n.Node.ty
    in
    on_node n iv;
    iv
  in
  let apply_block ?(on_node = fun _ _ -> ()) bi in_env =
    let env = Array.copy in_env in
    let exc = Array.copy in_env in
    let b = m.Meth.blocks.(bi) in
    List.iter (fun s -> ignore (eval ~env ~exc ~on_node s)) b.Block.stmts;
    let ret_site =
      match b.Block.term with
      | Block.Goto _ | Block.Return None -> None
      | Block.If { cond; _ } ->
          ignore (eval ~env ~exc ~on_node cond);
          None
      | Block.Return (Some v) ->
          let iv = eval ~env ~exc ~on_node v in
          Some (v.Node.ty, iv)
      | Block.Throw v ->
          ignore (eval ~env ~exc ~on_node v);
          None
    in
    (env, exc, ret_site)
  in
  let join_into acc src =
    Array.iteri (fun i x -> acc.(i) <- Interval.join acc.(i) x) src
  in
  let in_of get b =
    let acc =
      if b = 0 then Array.copy entry_env else Array.make nsyms Interval.bot
    in
    List.iter (fun p -> join_into acc (get p).St.out_env) flow.Flow.preds.(b);
    List.iter (fun p -> join_into acc (get p).St.exc_env) flow.Flow.exc_preds.(b);
    acc
  in
  let transfer ~get ~round b =
    let env, exc, _ = apply_block b (in_of get b) in
    (* widen a still-changing block after a few rounds: any entry that
       keeps moving jumps straight to Top *)
    if round >= 3 then begin
      let cur = get b in
      Array.iteri
        (fun i x ->
          if not (Interval.equal x cur.St.out_env.(i)) then env.(i) <- Interval.top)
        env;
      Array.iteri
        (fun i x ->
          if not (Interval.equal x cur.St.exc_env.(i)) then exc.(i) <- Interval.top)
        exc
    end;
    { St.out_env = env; St.exc_env = exc }
  in
  let st =
    Solver.fixpoint ~n:flow.Flow.n
      ~deps:(Flow.forward_deps flow)
      ~order:(Flow.forward_order flow)
      ~init:(fun _ ->
        {
          St.out_env = Array.make nsyms Interval.bot;
          St.exc_env = Array.make nsyms Interval.bot;
        })
      ~transfer ()
  in
  let in_envs = Array.init flow.Flow.n (fun b -> in_of (fun p -> st.(p)) b) in
  let const_nodes = ref 0 and total_nodes = ref 0 in
  let ret = ref Interval.bot in
  let ret_integral = Types.is_integral m.Meth.ret in
  Array.iteri
    (fun b in_env ->
      if flow.Flow.reachable.(b) then begin
        let on_node (n : Node.t) iv =
          incr total_nodes;
          if Types.is_integral n.Node.ty && Interval.is_singleton iv <> None
          then incr const_nodes
        in
        let _, _, ret_site = apply_block ~on_node b in_env in
        match ret_site with
        | None -> ()
        | Some (vty, iv) ->
            let site =
              if not ret_integral then Interval.top
              else if Types.is_integral vty then
                Interval.truncate_to m.Meth.ret iv
              else Interval.ty_range m.Meth.ret
            in
            ret := Interval.join !ret site
      end)
    in_envs;
  {
    flow;
    in_envs;
    ret = !ret;
    const_nodes = !const_nodes;
    total_nodes = !total_nodes;
  }

let const_fraction_pct r =
  if r.total_nodes = 0 then 0 else 100 * r.const_nodes / r.total_nodes
