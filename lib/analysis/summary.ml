module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Loops = Tessera_opt.Loops

type t = {
  live_slot_pressure : int;
  const_expr_pct : int;
  pure_call_pct : int;
  max_loop_depth : int;
  reaching_def_density : int;
}

let names =
  [|
    "live_slot_pressure";
    "const_expr_pct";
    "pure_call_pct";
    "max_loop_depth";
    "reaching_def_density";
  |]

let count = Array.length names

let sat v = if v < 0 then 0 else if v > 255 then 255 else v

(* Program-wide effect summaries are expensive (call-graph fixpoint);
   memoize by program identity.  Feature extraction runs from multiple
   domains (compilation pool), so the cache is mutex-guarded. *)
let summaries_mutex = Mutex.create ()
let summaries_cache : (Program.t * Effects.t array) list ref = ref []
let max_cached = 8

let summaries_for (p : Program.t) =
  Mutex.lock summaries_mutex;
  let hit = List.find_opt (fun (q, _) -> q == p) !summaries_cache in
  Mutex.unlock summaries_mutex;
  match hit with
  | Some (_, s) -> s
  | None ->
      let s = Effects.of_program p in
      Mutex.lock summaries_mutex;
      (if not (List.exists (fun (q, _) -> q == p) !summaries_cache) then
         let kept =
           if List.length !summaries_cache >= max_cached then
             List.filteri (fun i _ -> i < max_cached - 1) !summaries_cache
           else !summaries_cache
         in
         summaries_cache := (p, s) :: kept);
      Mutex.unlock summaries_mutex;
      s

let pure_call_pct ?program (m : Meth.t) =
  match program with
  | None -> 0
  | Some p ->
      let summaries = summaries_for p in
      let total = ref 0 and pure = ref 0 in
      Meth.iter_trees
        (fun tree ->
          ignore
            (Node.fold
               (fun () (n : Node.t) ->
                 if Opcode.equal n.Node.op Opcode.Call then begin
                   incr total;
                   if
                     n.Node.sym >= 0
                     && n.Node.sym < Array.length summaries
                     && Effects.is_pure summaries.(n.Node.sym)
                   then incr pure
                 end)
               () tree))
        m;
      if !total = 0 then 0 else 100 * !pure / !total

let of_meth ?program (m : Meth.t) =
  let live = Live.analyze m in
  let reach = Reach.analyze m in
  let cp = Constprop.analyze m in
  let loops = Loops.analyze m in
  {
    live_slot_pressure = sat (Live.pressure live);
    const_expr_pct = sat (Constprop.const_fraction_pct cp);
    pure_call_pct = sat (pure_call_pct ?program m);
    max_loop_depth = sat (Loops.max_depth loops);
    reaching_def_density = sat (Reach.density reach);
  }

let to_array t =
  [|
    t.live_slot_pressure;
    t.const_expr_pct;
    t.pure_call_pct;
    t.max_loop_depth;
    t.reaching_def_density;
  |]
