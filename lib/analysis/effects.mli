(** Method effect summaries: what a method may do to state outside its
    own locals, per the VM's semantics.  Summaries are approximations
    for {e type-correct} programs (the interpreter can additionally trap
    on heap-poisoned values flowing into integer contexts; the summary
    does not model that).

    [of_program] computes the least fixpoint over the call graph, so
    each returned summary is transitively closed: a method's flags
    include everything reachable through its (possibly recursive)
    callees, and [calls] is the set of methods transitively invoked. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Int_set : Set.S with type elt = int

type t = {
  reads_heap : bool;  (** field / array-element / array-metadata loads *)
  writes_heap : bool;  (** field / array-element stores, array copies *)
  allocates : bool;
  sync : bool;  (** monitor enter/exit, synchronized attribute *)
  may_trap : bool;  (** division, bounds/null/cast checks, allocation *)
  throws : bool;  (** explicit [Throw] terminator *)
  calls : Int_set.t;
}

val bottom : t
val join : t -> t -> t
val equal : t -> t -> bool

val leq : t -> t -> bool
(** Pointwise implication on flags plus [calls] inclusion: [leq a b]
    means [a] promises no effect that [b] does not already allow. *)

val is_pure : t -> bool
(** No flags set (calls are irrelevant once a summary is closed). *)

val of_meth : Meth.t -> t
(** Direct (intraprocedural) effects over reachable blocks; [calls]
    lists direct callees. *)

val of_program : Program.t -> t array
(** Transitively closed summary per method id. *)

val close : summaries:t array -> t -> t
(** One-level import of callee summaries: [direct ⊔ ⨆ summaries.(c)].
    With closed [summaries] the result is itself closed. *)

val describe : t -> string list
(** Printable names of the set flags, for diagnostics. *)

val pp : Format.formatter -> t -> unit
