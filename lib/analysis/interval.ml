module Types = Tessera_il.Types

type t = Bot | Iv of int64 * int64 | Top

let bot = Bot
let top = Top
let singleton v = Iv (v, v)

let of_bounds lo hi = if Int64.compare lo hi > 0 then Bot else Iv (lo, hi)

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Iv (a1, a2), Iv (b1, b2) -> Int64.equal a1 b1 && Int64.equal a2 b2
  | _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Iv (a1, a2), Iv (b1, b2) ->
      Iv ((if Int64.compare a1 b1 <= 0 then a1 else b1),
          if Int64.compare a2 b2 >= 0 then a2 else b2)

let is_singleton = function Iv (a, b) when Int64.equal a b -> Some a | _ -> None

let mem v = function
  | Bot -> false
  | Top -> true
  | Iv (lo, hi) -> Int64.compare lo v <= 0 && Int64.compare v hi <= 0

let disjoint a b =
  match (a, b) with
  | Iv (a1, a2), Iv (b1, b2) ->
      Int64.compare a2 b1 < 0 || Int64.compare b2 a1 < 0
  | _ -> false

let ty_range ty =
  match ty with
  | Types.Byte -> Iv (-128L, 127L)
  | Types.Char -> Iv (0L, 65535L)
  | Types.Short -> Iv (-32768L, 32767L)
  | Types.Int -> Iv (Int64.of_int32 Int32.min_int, Int64.of_int32 Int32.max_int)
  | _ -> Top

let truncate_to ty iv =
  match (ty_range ty, iv) with
  | _, Bot -> Bot
  | (Top | Bot), _ -> iv (* identity truncation; ty_range is never Bot *)
  | (Iv (rlo, rhi) as range), Iv (lo, hi) ->
      if Int64.compare rlo lo <= 0 && Int64.compare hi rhi <= 0 then iv
      else range
  | (Iv _ as range), Top -> range

(* checked int64 arithmetic: [None] on wrap *)
let add_checked a b =
  let s = Int64.add a b in
  if Int64.compare a 0L >= 0 = (Int64.compare b 0L >= 0)
     && Int64.compare s 0L >= 0 <> (Int64.compare a 0L >= 0)
  then None
  else Some s

let neg_checked a = if Int64.equal a Int64.min_int then None else Some (Int64.neg a)

let sub_checked a b =
  match neg_checked b with None -> None | Some nb -> add_checked a nb

let mul_checked a b =
  if Int64.equal a 0L || Int64.equal b 0L then Some 0L
  else if
    (Int64.equal a (-1L) && Int64.equal b Int64.min_int)
    || (Int64.equal b (-1L) && Int64.equal a Int64.min_int)
  then None
  else
    let p = Int64.mul a b in
    if Int64.equal (Int64.div p b) a then Some p else None

let lift2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, _ | _, Top -> Top
  | Iv (a1, a2), Iv (b1, b2) -> f (a1, a2) (b1, b2)

let add a b =
  lift2
    (fun (a1, a2) (b1, b2) ->
      match (add_checked a1 b1, add_checked a2 b2) with
      | Some lo, Some hi -> Iv (lo, hi)
      | _ -> Top)
    a b

let sub a b =
  lift2
    (fun (a1, a2) (b1, b2) ->
      match (sub_checked a1 b2, sub_checked a2 b1) with
      | Some lo, Some hi -> Iv (lo, hi)
      | _ -> Top)
    a b

let mul a b =
  lift2
    (fun (a1, a2) (b1, b2) ->
      let corners =
        [ mul_checked a1 b1; mul_checked a1 b2; mul_checked a2 b1;
          mul_checked a2 b2 ]
      in
      if List.exists (( = ) None) corners then Top
      else
        let vs = List.filter_map Fun.id corners in
        let lo = List.fold_left min (List.hd vs) vs in
        let hi = List.fold_left max (List.hd vs) vs in
        Iv (lo, hi))
    a b

let neg = function
  | Bot -> Bot
  | Top -> Top
  | Iv (lo, hi) -> (
      match (neg_checked hi, neg_checked lo) with
      | Some lo', Some hi' -> Iv (lo', hi')
      | _ -> Top)

let widen _ = Top

let pp fmt = function
  | Bot -> Format.fprintf fmt "⊥"
  | Top -> Format.fprintf fmt "⊤"
  | Iv (lo, hi) ->
      if Int64.equal lo hi then Format.fprintf fmt "{%Ld}" lo
      else Format.fprintf fmt "[%Ld,%Ld]" lo hi

let to_string iv = Format.asprintf "%a" pp iv
