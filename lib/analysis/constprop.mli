(** Constant / interval abstract interpretation of a method.

    Mirrors {!Tessera_vm.Interp} exactly where it claims precision:
    [Loadconst] payloads are {e not} truncated, integral binop results
    are truncated to the node type, stores coerce to the symbol type,
    [Compare]/[Instanceof] yield 0/1, [Array_length] is bounded by the
    VM's array-length cap — and answers [Top] everywhere else (heap
    loads, calls, floating-point).  Exceptional edges receive the join
    of every intermediate environment of the covered block, since a trap
    can hand any prefix of the block's stores to the handler.

    Soundness contract (property-tested): whenever the interpreter
    returns [Int_v v] from the method, [v] lies in {!result.ret}. *)

module Meth = Tessera_il.Meth

type result = {
  flow : Flow.t;
  in_envs : Interval.t array array;
      (** per reachable block: abstract value of each symbol at entry *)
  ret : Interval.t;
      (** join over reachable [Return (Some _)] sites, coerced to the
          method's return type; [Bot] when no integral-valued return is
          reachable *)
  const_nodes : int;  (** integral nodes with a provable singleton value *)
  total_nodes : int;
}

val analyze : Meth.t -> result

val const_fraction_pct : result -> int
(** [100 * const_nodes / total_nodes], 0 for an empty method: the
    "provably-constant expression fraction" feature. *)
