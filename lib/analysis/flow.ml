module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Cfg = Tessera_opt.Cfg

type t = {
  n : int;
  succs : int list array;
  preds : int list array;
  handler : int option array;
  exc_preds : int list array;
  reachable : bool array;
  rpo : int array;
}

let of_meth (m : Meth.t) =
  let cfg = Cfg.build m in
  let n = Array.length m.Meth.blocks in
  let handler = Array.map (fun (b : Block.t) -> b.Block.handler) m.Meth.blocks in
  let exc_preds = Array.make n [] in
  Array.iteri
    (fun b -> function
      | Some h -> exc_preds.(h) <- b :: exc_preds.(h)
      | None -> ())
    handler;
  Array.iteri (fun h l -> exc_preds.(h) <- List.rev l) exc_preds;
  {
    n;
    succs = cfg.Cfg.succs;
    preds = cfg.Cfg.preds;
    handler;
    exc_preds;
    reachable = cfg.Cfg.reachable;
    rpo = cfg.Cfg.rpo;
  }

(* The rpo from Cfg covers blocks reachable over normal edges only;
   handler-only blocks (and unreachable stragglers) are appended so every
   block gets seeded into the worklist at least once. *)
let forward_order t =
  let seen = Array.make t.n false in
  Array.iter (fun b -> seen.(b) <- true) t.rpo;
  let extra = ref [] in
  for b = t.n - 1 downto 0 do
    if not seen.(b) then extra := b :: !extra
  done;
  Array.append t.rpo (Array.of_list !extra)

let backward_order t =
  let fwd = forward_order t in
  let k = Array.length fwd in
  Array.init k (fun i -> fwd.(k - 1 - i))

let forward_deps t =
  Array.init t.n (fun b ->
      let ds = match t.handler.(b) with Some h -> h :: t.succs.(b) | None -> t.succs.(b) in
      Array.of_list (List.sort_uniq compare ds))

let backward_deps t =
  Array.init t.n (fun b ->
      Array.of_list (List.sort_uniq compare (t.preds.(b) @ t.exc_preds.(b))))
