(** Translation-validation auditor for optimizer passes.

    For every pass application the auditor compares the method before
    and after, checking invariants stronger than {!Tessera_il.Validate}:

    - structural well-formedness (the full [Validate] battery);
    - no {e introduced} use of a never-defined temporary (keyed by
      symbol name, since passes renumber symbols);
    - no introduced cycle in the trap-handler chain (a trap inside such
      a cycle would loop forever);
    - no introduced [Inc] of a non-integral symbol;
    - effect monotonicity: the transitively-closed effect summary after
      the pass must stay below the one before (a pass may remove
      effects, never add them);
    - constant-analysis agreement: the provable return-value intervals
      before and after must not be disjoint.

    Checks are deltas against the "before" method wherever a pass may
    legitimately leave residue (unreachable blocks after branch
    folding, renumbered symbols), so a clean seed corpus stays clean
    while genuine miscompiles surface. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Validate = Tessera_il.Validate
module Manager = Tessera_opt.Manager

type kind =
  | Structural of Validate.error list
  | Undefined_slot_use of { symbol : string }
  | Handler_cycle of { blocks : int list }
  | Inc_non_integral of { symbol : string }
  | Effect_introduced of { effect_ : string }
  | Const_contradiction of { before_ : Interval.t; after : Interval.t }
  | Analysis_failure of string
      (** the auditor itself failed; never raised into the engine *)

type diagnostic = {
  pass_index : int;  (** {!Tessera_opt.Catalog} index *)
  pass_name : string;
  meth : string;
  block : int option;
  node : int option;  (** node uid *)
  kind : kind;
}

val describe_kind : kind -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit

exception Violation of diagnostic

val check_application :
  program:Program.t ->
  summaries:Effects.t array ->
  pass_index:int ->
  pass_name:string ->
  before:Meth.t ->
  after:Meth.t ->
  diagnostic list
(** Pure one-shot check of a single pass application.  [summaries] are
    the pristine program's closed effect summaries
    ({!Effects.of_program}), the reference frame for monotonicity. *)

val auditor :
  ?strict:bool ->
  ?on_diagnostic:(diagnostic -> unit) ->
  Program.t ->
  Manager.pass_audit
(** Stateful auditor for one {!Manager.optimize} run: memoizes the
    "before"-side facts across consecutive passes (pass [i]'s after is
    pass [i+1]'s before) and computes program summaries lazily.  With
    [strict] it raises {!Violation} on the first diagnostic; otherwise
    it reports through [on_diagnostic] and never raises. *)

(** {1 Global hook} *)

val install : ?strict:bool -> unit -> unit
(** Point {!Manager.lint_hook} at a collecting auditor: every
    subsequent [Manager.optimize] call without an explicit [?audit]
    gets audited, and diagnostics accumulate (thread-safely) in
    {!collected}. *)

val uninstall : unit -> unit
val collected : unit -> diagnostic list
(** In audit order. *)

val reset : unit -> unit
(** Clear collected diagnostics (keeps the hook installed). *)
