module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Symbol = Tessera_il.Symbol
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Validate = Tessera_il.Validate
module Manager = Tessera_opt.Manager
module String_set = Set.Make (String)

type kind =
  | Structural of Validate.error list
  | Undefined_slot_use of { symbol : string }
  | Handler_cycle of { blocks : int list }
  | Inc_non_integral of { symbol : string }
  | Effect_introduced of { effect_ : string }
  | Const_contradiction of { before_ : Interval.t; after : Interval.t }
  | Analysis_failure of string

type diagnostic = {
  pass_index : int;
  pass_name : string;
  meth : string;
  block : int option;
  node : int option;
  kind : kind;
}

let describe_kind = function
  | Structural errs ->
      Printf.sprintf "structural: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Validate.pp_error) errs))
  | Undefined_slot_use { symbol } ->
      Printf.sprintf "use of never-defined temporary %S" symbol
  | Handler_cycle { blocks } ->
      Printf.sprintf "trap-handler cycle through blocks [%s]"
        (String.concat "," (List.map string_of_int blocks))
  | Inc_non_integral { symbol } ->
      Printf.sprintf "Inc of non-integral symbol %S" symbol
  | Effect_introduced { effect_ } ->
      Printf.sprintf "effect introduced: %s" effect_
  | Const_contradiction { before_; after } ->
      Printf.sprintf "return interval contradiction: %s vs %s"
        (Interval.to_string before_) (Interval.to_string after)
  | Analysis_failure msg -> Printf.sprintf "analysis failure: %s" msg

let pp_diagnostic fmt d =
  Format.fprintf fmt "[pass %d %s] %s%s: %s" d.pass_index d.pass_name d.meth
    (match (d.block, d.node) with
    | Some b, Some n -> Printf.sprintf " (block %d, node %d)" b n
    | Some b, None -> Printf.sprintf " (block %d)" b
    | _ -> "")
    (describe_kind d.kind)

exception Violation of diagnostic

(* Per-method facts the delta checks compare.  [first_*] remember a
   witness site in the "after" method for diagnostics. *)
type facts = {
  undefined_used : String_set.t;  (** temps with a use but no def *)
  inc_non_integral : String_set.t;
  handler_cycles : int list list;
  closed_eff : Effects.t;
  ret_iv : Interval.t;
}

let sym_facts (m : Meth.t) =
  let nsyms = Array.length m.Meth.symbols in
  let used = Array.make nsyms false in
  let defined = Array.make nsyms false in
  let inc_bad = ref String_set.empty in
  Meth.fold_nodes
    (fun () (n : Node.t) ->
      match n.Node.op with
      | Opcode.Load when Array.length n.Node.args = 0 ->
          if n.Node.sym >= 0 && n.Node.sym < nsyms then
            used.(n.Node.sym) <- true
      | Opcode.Store when Array.length n.Node.args = 1 ->
          if n.Node.sym >= 0 && n.Node.sym < nsyms then
            defined.(n.Node.sym) <- true
      | Opcode.Inc ->
          if n.Node.sym >= 0 && n.Node.sym < nsyms then begin
            used.(n.Node.sym) <- true;
            defined.(n.Node.sym) <- true;
            let s = m.Meth.symbols.(n.Node.sym) in
            if not (Tessera_il.Types.is_integral s.Symbol.ty) then
              inc_bad := String_set.add s.Symbol.name !inc_bad
          end
      | _ -> ())
    () m;
  let undef = ref String_set.empty in
  Array.iteri
    (fun i (s : Symbol.t) ->
      if s.Symbol.kind = Symbol.Temp && used.(i) && not defined.(i) then
        undef := String_set.add s.Symbol.name !undef)
    m.Meth.symbols;
  (!undef, !inc_bad)

(* Cycles in the handler-chain graph b -> handler(b).  Each block has at
   most one outgoing edge, so a cycle is a rho-shaped chain tail. *)
let handler_cycles (m : Meth.t) =
  let n = Array.length m.Meth.blocks in
  let handler b =
    if b < 0 || b >= n then None else m.Meth.blocks.(b).Block.handler
  in
  (* color: 0 unvisited, 1 on current chain, 2 done *)
  let color = Array.make n 0 in
  let cycles = ref [] in
  for b0 = 0 to n - 1 do
    if color.(b0) = 0 then begin
      let chain = ref [] in
      let b = ref b0 in
      let continue = ref true in
      while !continue do
        if !b < 0 || !b >= n then continue := false
        else if color.(!b) = 1 then begin
          (* found a new cycle: the chain suffix from !b *)
          let rec suffix = function
            | [] -> []
            | x :: tl -> if x = !b then [ x ] else x :: suffix tl
          in
          cycles := List.rev (suffix !chain) :: !cycles;
          continue := false
        end
        else if color.(!b) = 2 then continue := false
        else begin
          color.(!b) <- 1;
          chain := !b :: !chain;
          match handler !b with
          | None -> continue := false
          | Some h -> b := h
        end
      done;
      List.iter (fun x -> color.(x) <- 2) !chain
    end
  done;
  List.rev !cycles

let facts_of ~summaries (m : Meth.t) =
  let undefined_used, inc_non_integral = sym_facts m in
  let cp = Constprop.analyze m in
  {
    undefined_used;
    inc_non_integral;
    handler_cycles = handler_cycles m;
    closed_eff = Effects.close ~summaries (Effects.of_meth m);
    ret_iv = cp.Constprop.ret;
  }

(* Witness site for a symbol-name diagnostic: first offending node in
   the after method. *)
let find_sym_site (m : Meth.t) ~name ~want_inc =
  let site = ref None in
  Array.iteri
    (fun bi (b : Block.t) ->
      List.iter
        (fun tree ->
          Node.fold
            (fun () (n : Node.t) ->
              if !site = None then
                let matches =
                  n.Node.sym >= 0
                  && n.Node.sym < Array.length m.Meth.symbols
                  && String.equal m.Meth.symbols.(n.Node.sym).Symbol.name name
                  &&
                  match n.Node.op with
                  | Opcode.Inc -> true
                  | Opcode.Load when not want_inc ->
                      Array.length n.Node.args = 0
                  | _ -> false
                in
                if matches then site := Some (bi, n.Node.uid))
            () tree)
        (b.Block.stmts @ Block.terminator_nodes b.Block.term))
    m.Meth.blocks;
  !site

let effect_delta before after =
  let names = Effects.describe after in
  let had = Effects.describe before in
  let introduced = List.filter (fun n -> not (List.mem n had)) names in
  if Effects.Int_set.subset after.Effects.calls before.Effects.calls then
    introduced
  else
    introduced
    @ [
        Printf.sprintf "calls {%s}"
          (String.concat ","
             (List.map string_of_int
                (Effects.Int_set.elements
                   (Effects.Int_set.diff after.Effects.calls
                      before.Effects.calls))));
      ]

(* The structural check must run before any dataflow fact is computed:
   the analyses assume well-formed IR (a broken terminator target would
   crash CFG construction), and a structurally damaged method is a
   single fatal diagnostic anyway. *)
let structural_errors ~program (m : Meth.t) =
  Validate.check_method ~classes:program.Program.classes
    ~method_count:(Program.method_count program) m

let check_with_facts ~pass_index ~pass_name ~(after : Meth.t) ~before_facts
    ~after_facts =
  let mk ?block ?node kind =
    { pass_index; pass_name; meth = after.Meth.name; block; node; kind }
  in
  let diags = ref [] in
  let bf = before_facts and af = after_facts in
  String_set.iter
    (fun s ->
      if not (String_set.mem s bf.undefined_used) then begin
        let block, node =
          match find_sym_site after ~name:s ~want_inc:false with
          | Some (b, u) -> (Some b, Some u)
          | None -> (None, None)
        in
        diags := mk ?block ?node (Undefined_slot_use { symbol = s }) :: !diags
      end)
    af.undefined_used;
  String_set.iter
    (fun s ->
      if not (String_set.mem s bf.inc_non_integral) then begin
        let block, node =
          match find_sym_site after ~name:s ~want_inc:true with
          | Some (b, u) -> (Some b, Some u)
          | None -> (None, None)
        in
        diags := mk ?block ?node (Inc_non_integral { symbol = s }) :: !diags
      end)
    af.inc_non_integral;
  (match (bf.handler_cycles, af.handler_cycles) with
  | [], c :: _ -> diags := mk (Handler_cycle { blocks = c }) :: !diags
  | _ -> ());
  (match effect_delta bf.closed_eff af.closed_eff with
  | [] -> ()
  | introduced ->
      List.iter
        (fun e -> diags := mk (Effect_introduced { effect_ = e }) :: !diags)
        introduced);
  if Interval.disjoint bf.ret_iv af.ret_iv then
    diags :=
      mk (Const_contradiction { before_ = bf.ret_iv; after = af.ret_iv })
      :: !diags;
  List.rev !diags

let check_application ~program ~summaries ~pass_index ~pass_name ~before ~after
    =
  match structural_errors ~program after with
  | _ :: _ as errs ->
      [
        {
          pass_index;
          pass_name;
          meth = after.Meth.name;
          block = None;
          node = None;
          kind = Structural errs;
        };
      ]
  | [] ->
      let before_facts = facts_of ~summaries before in
      let after_facts = facts_of ~summaries after in
      check_with_facts ~pass_index ~pass_name ~after ~before_facts ~after_facts

let auditor ?(strict = false) ?(on_diagnostic = fun _ -> ()) program :
    Manager.pass_audit =
  let summaries = lazy (Summary.summaries_for program) in
  (* pass i's after is pass i+1's before: memoize by physical identity *)
  let last : (Meth.t * facts) option ref = ref None in
  fun ~pass_index ~pass_name ~before ~after ->
    let emit d = if strict then raise (Violation d) else on_diagnostic d in
    match
      match structural_errors ~program after with
      | _ :: _ as errs ->
          last := None;
          [
            {
              pass_index;
              pass_name;
              meth = after.Meth.name;
              block = None;
              node = None;
              kind = Structural errs;
            };
          ]
      | [] ->
          let summaries = Lazy.force summaries in
          let before_facts =
            match !last with
            | Some (m, f) when m == before -> f
            | _ -> facts_of ~summaries before
          in
          let after_facts = facts_of ~summaries after in
          last := Some (after, after_facts);
          check_with_facts ~pass_index ~pass_name ~after ~before_facts
            ~after_facts
    with
    | diags -> List.iter emit diags
    | exception Violation d -> raise (Violation d)
    | exception exn ->
        emit
          {
            pass_index;
            pass_name;
            meth = after.Meth.name;
            block = None;
            node = None;
            kind = Analysis_failure (Printexc.to_string exn);
          }

(* -- global collecting hook ---------------------------------------- *)

let collected_mutex = Mutex.create ()
let collected_rev : diagnostic list ref = ref []

let record d =
  Mutex.lock collected_mutex;
  collected_rev := d :: !collected_rev;
  Mutex.unlock collected_mutex

let install ?strict () =
  Manager.lint_hook :=
    Some (fun program -> auditor ?strict ~on_diagnostic:record program)

let uninstall () = Manager.lint_hook := None

let collected () =
  Mutex.lock collected_mutex;
  let l = List.rev !collected_rev in
  Mutex.unlock collected_mutex;
  l

let reset () =
  Mutex.lock collected_mutex;
  collected_rev := [];
  Mutex.unlock collected_mutex
