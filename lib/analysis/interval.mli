(** The interval abstract domain over [int64], mirroring the VM's
    integer semantics ({!Tessera_vm.Values.truncate} wraps stores and
    integral binop results to the node/symbol type).

    [Bot] is "no value reaches here"; [Top] is "any int64".  [Iv]
    carries inclusive finite bounds.  Arithmetic that may wrap around
    int64 returns [Top] (or the target type's range after truncation):
    the domain never claims more than the interpreter delivers. *)

module Types = Tessera_il.Types

type t = Bot | Iv of int64 * int64 | Top

val bot : t
val top : t
val singleton : int64 -> t

val of_bounds : int64 -> int64 -> t
(** Normalizes an empty range ([lo > hi]) to [Bot]. *)

val equal : t -> t -> bool
val join : t -> t -> t

val is_singleton : t -> int64 option
val mem : int64 -> t -> bool

val disjoint : t -> t -> bool
(** Both sides carry finite, provable ranges with empty intersection —
    the "contradiction" test of the lint.  [Bot] and [Top] are never
    disjoint from anything. *)

val ty_range : Types.t -> t
(** Representable range of an integral type after {!Values.truncate}:
    finite for Byte/Char/Short/Int, [Top] for the identity-truncated
    types (Long, the BCD decimals), and [Top] for non-integral types. *)

val truncate_to : Types.t -> t -> t
(** Abstract counterpart of [Values.truncate ty]: the identity when the
    interval already fits the type's range, else the type's range
    (wrapping can land anywhere in it). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val widen : t -> t
(** Jump to [Top]; used by the solver after a few rounds on a
    still-changing block. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
