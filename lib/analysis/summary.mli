(** Analysis-derived method features, bridging the dataflow analyses to
    {!Tessera_features.Features}.  Each component is saturated to
    [0, 255] so downstream feature encoding stays byte-sized. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program

type t = {
  live_slot_pressure : int;  (** max simultaneously-live locals *)
  const_expr_pct : int;  (** % of nodes with a provable constant value *)
  pure_call_pct : int;  (** % of call sites whose callee is provably pure *)
  max_loop_depth : int;  (** deepest natural-loop nesting *)
  reaching_def_density : int;  (** mean reaching defs per block *)
}

val names : string array
(** Component names, in vector order. *)

val count : int

val summaries_for : Program.t -> Effects.t array
(** Memoized (by program identity, mutex-guarded) transitively-closed
    effect summaries — {!Effects.of_program} paid once per program. *)

val of_meth : ?program:Program.t -> Meth.t -> t
(** [program] enables the interprocedural pure-call share (0 without
    it).  Program effect summaries are memoized per program identity,
    so repeated extraction over one program pays the call-graph fixpoint
    once; the cache is safe under domain parallelism. *)

val to_array : t -> int array
