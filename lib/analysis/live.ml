module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

type t = { flow : Flow.t; live_in : Bitset.t array }

let is_local_load (n : Node.t) =
  n.Node.op = Opcode.Load && Array.length n.Node.args = 0

let is_local_store (n : Node.t) =
  n.Node.op = Opcode.Store && Array.length n.Node.args = 1

(* Per-tree symbol sets, in one pre-order pass. *)
let tree_uses_defs tree =
  Node.fold
    (fun (uses, defs) (n : Node.t) ->
      if is_local_load n then (n.Node.sym :: uses, defs)
      else if is_local_store n then (uses, n.Node.sym :: defs)
      else if n.Node.op = Opcode.Inc then (n.Node.sym :: uses, n.Node.sym :: defs)
      else (uses, defs))
    ([], []) tree

module Solver = Dataflow.Make (struct
  type t = Bitset.t

  let equal = Bitset.equal
end)

let analyze (m : Meth.t) =
  let flow = Flow.of_meth m in
  let nsyms = Array.length m.Meth.symbols in
  (* per-block gen (upward-exposed uses) and kill (definitions), by a
     backward walk mirroring reverse evaluation order *)
  let gen = Array.make flow.Flow.n (Bitset.create nsyms) in
  let kill = Array.make flow.Flow.n (Bitset.create nsyms) in
  Array.iteri
    (fun bi (b : Block.t) ->
      let g = Bitset.create nsyms and k = Bitset.create nsyms in
      let trees =
        List.rev (b.Block.stmts @ Block.terminator_nodes b.Block.term)
      in
      List.iter
        (fun tree ->
          let uses, defs = tree_uses_defs tree in
          List.iter (fun s -> Bitset.unset g s) defs;
          List.iter (fun s -> Bitset.set g s) uses;
          List.iter (fun s -> Bitset.set k s) defs)
        trees;
      gen.(bi) <- g;
      kill.(bi) <- k)
    m.Meth.blocks;
  let transfer ~get ~round:_ b =
    let out = Bitset.create nsyms in
    List.iter (fun s -> ignore (Bitset.union_into ~into:out (get s))) flow.Flow.succs.(b);
    Bitset.diff_into ~into:out kill.(b);
    ignore (Bitset.union_into ~into:out gen.(b));
    (* a trap anywhere in the block can reach the handler with any prefix
       of the block executed: the handler's live-in stays live here *)
    (match flow.Flow.handler.(b) with
    | Some h -> ignore (Bitset.union_into ~into:out (get h))
    | None -> ());
    out
  in
  let live_in =
    Solver.fixpoint ~n:flow.Flow.n
      ~deps:(Flow.backward_deps flow)
      ~order:(Flow.backward_order flow)
      ~init:(fun _ -> Bitset.create nsyms)
      ~transfer ()
  in
  { flow; live_in }

let live_in t b = t.live_in.(b)

let pressure t =
  let best = ref 0 in
  Array.iteri
    (fun b s -> if t.flow.Flow.reachable.(b) then best := max !best (Bitset.count s))
    t.live_in;
  !best
