(** Fixed-width bitsets over [0, length): the set representation used by
    the bit-vector dataflow analyses (liveness, reaching definitions). *)

type t

val create : int -> t
(** All-zero set of the given width. *)

val length : t -> int

val copy : t -> t

val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool

val union_into : into:t -> t -> bool
(** [union_into ~into s] ors [s] into [into]; returns whether [into]
    changed.  Widths must match. *)

val diff_into : into:t -> t -> unit
(** Remove every member of the argument from [into]. *)

val count : t -> int
(** Population count. *)

val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Visit members in increasing order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
