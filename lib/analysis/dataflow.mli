(** Generic worklist fixpoint solver over block CFGs.

    The solver is direction-agnostic: a forward analysis stores the state
    at block entry and names successors (plus handlers) as dependents; a
    backward analysis stores the state at block entry too but names
    predecessors.  {!Flow} provides both dependency relations and seed
    orders. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
end

module Make (L : LATTICE) : sig
  val fixpoint :
    n:int ->
    deps:int array array ->
    order:int array ->
    init:(int -> L.t) ->
    transfer:(get:(int -> L.t) -> round:int -> int -> L.t) ->
    ?max_steps:int ->
    unit ->
    L.t array
  (** Chaotic iteration to a fixpoint.  [deps.(b)] lists the blocks to
      re-enqueue when block [b]'s state changes; [order] seeds the
      worklist (typically {!Flow.forward_order} or
      {!Flow.backward_order}).  [transfer ~get ~round b] recomputes
      block [b]'s state from its neighbours' current states; [round] is
      the number of times [b] has been recomputed so far, so transfer
      functions over infinite-height domains can widen after a few
      rounds.  Raises [Failure] after [max_steps] recomputations
      (default [1024 * (n + 1)]) — a safety valve against a
      non-converging transfer, not a tuning knob. *)
end
