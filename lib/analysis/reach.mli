(** Forward reaching definitions over method-local symbols.

    Definition sites are arity-1 [Store] and [Inc] nodes; in addition,
    every symbol carries one virtual entry definition (arguments are
    bound on entry, temporaries default-initialized by the VM), so a
    use always has at least one reaching definition.  Exceptional edges
    pass [in(b) ∪ defs(b)] to the handler: any subset of the block's
    definitions may have executed before the trap. *)

module Meth = Tessera_il.Meth

type def = {
  def_id : int;
  sym : int;  (** symbol defined *)
  block : int;  (** -1 for virtual entry definitions *)
  node_uid : int;  (** -1 for virtual entry definitions *)
}

type t = {
  flow : Flow.t;
  defs : def array;  (** indexed by [def_id] *)
  reach_in : Bitset.t array;  (** per block, indexed by [def_id] *)
}

val analyze : Meth.t -> t

val density : t -> int
(** Mean reaching-definition count per reachable block, saturated at
    255: the "reaching-def density" feature. *)
