module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Profile = Tessera_obs.Profile
open Values

type context = {
  classes : Tessera_il.Classdef.t array;
  charge : int -> unit;
  invoke : int -> Values.t array -> Values.t;
  fuel : int ref;
}

exception Out_of_fuel

let run ctx (m : Meth.t) args =
  (* profiler hook: selected once per run, so the unprofiled walker pays
     one branch here and nothing per node.  [cur_block]/[cur_op] track
     the attribution site; the wrapped charge routes every charged cycle
     through the sampler before the real meter. *)
  let profiling = !Profile.enabled in
  let cur_block = ref 0 in
  let cur_op = ref "enter" in
  let meth_name = if profiling then m.Meth.name else "" in
  let charge =
    if profiling then (fun c ->
      Profile.charge ~meth:meth_name ~block:!cur_block ~op:!cur_op c;
      ctx.charge c)
    else ctx.charge
  in
  let env = Array.make (Array.length m.symbols) Void_v in
  Array.iteri
    (fun i (s : Tessera_il.Symbol.t) ->
      if i < Array.length args && s.kind = Tessera_il.Symbol.Arg then
        env.(i) <- Semantics.store_coerce s.ty args.(i)
      else env.(i) <- default s.ty)
    m.symbols;
  let rec eval (n : Node.t) =
    (* check-then-decrement: a caller granting n fuel gets exactly n
       fuel-charging steps (fuel=1 executes one node) *)
    if !(ctx.fuel) <= 0 then raise Out_of_fuel;
    decr ctx.fuel;
    if profiling then cur_op := Opcode.name n.op;
    charge (Cost.interp_dispatch + Cost.op_base n.op n.ty);
    match n.op with
    | Opcode.Loadconst ->
        if Types.is_floating n.ty then Float_v (Node.const_float n)
        else Int_v n.const
    | Opcode.Load -> (
        match Array.length n.args with
        | 0 -> env.(n.sym)
        | 1 ->
            charge 2;
            Semantics.field_load (eval n.args.(0)) n.sym
        | _ ->
            charge 3;
            Semantics.elem_load (eval n.args.(0)) (eval n.args.(1)))
    | Opcode.Store -> (
        match Array.length n.args with
        | 1 ->
            let v = eval n.args.(0) in
            env.(n.sym) <- Semantics.store_coerce m.symbols.(n.sym).ty v;
            Void_v
        | 2 ->
            charge 2;
            let o = eval n.args.(0) in
            let v = eval n.args.(1) in
            Semantics.field_store o n.sym v;
            Void_v
        | _ ->
            charge 3;
            let a = eval n.args.(0) in
            let i = eval n.args.(1) in
            let v = eval n.args.(2) in
            Semantics.elem_store a i v;
            Void_v)
    | Opcode.Inc ->
        env.(n.sym) <-
          Int_v
            (truncate m.symbols.(n.sym).ty
               (Int64.add (as_int env.(n.sym)) n.const));
        Void_v
    | Opcode.Neg -> Semantics.neg n.ty (eval n.args.(0))
    | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
    | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Shift _ | Opcode.Compare _
      ->
        let a = eval n.args.(0) in
        let b = eval n.args.(1) in
        Semantics.binop n.op n.ty a b
    | Opcode.Cast Opcode.C_check ->
        Semantics.checkcast ~classes:ctx.classes n.sym (eval n.args.(0))
    | Opcode.Cast k -> Semantics.cast k n.ty (eval n.args.(0))
    | Opcode.New -> Semantics.new_obj ~classes:ctx.classes n.sym
    | Opcode.Newarray ->
        Semantics.new_array ~elem:(Types.of_index n.sym) (eval n.args.(0))
    | Opcode.Newmultiarray ->
        let d1 = eval n.args.(0) in
        let d2 = eval n.args.(1) in
        Semantics.new_multiarray ~elem:(Types.of_index n.sym) d1 d2
    | Opcode.Instanceof ->
        Semantics.instanceof ~classes:ctx.classes n.sym (eval n.args.(0))
    | Opcode.Synchronization _ ->
        if Array.length n.args > 0 then Semantics.monitor (eval n.args.(0));
        Void_v
    | Opcode.Throw_op ->
        if Array.length n.args > 0 then ignore (eval n.args.(0));
        Void_v
    | Opcode.Branch_op -> eval n.args.(0)
    | Opcode.Call ->
        let actuals = Array.map eval n.args in
        charge Cost.interp_call_overhead;
        ctx.invoke n.sym actuals
    | Opcode.Arrayop Opcode.Bounds_check ->
        let a = eval n.args.(0) in
        let i = eval n.args.(1) in
        Semantics.bounds_check a i;
        Void_v
    | Opcode.Arrayop Opcode.Array_copy ->
        let s = eval n.args.(0) in
        let d = eval n.args.(1) in
        let l = eval n.args.(2) in
        let copied = Semantics.array_copy s d l in
        charge (copied * Cost.per_element_copy);
        Void_v
    | Opcode.Arrayop Opcode.Array_cmp ->
        let a = eval n.args.(0) in
        let b = eval n.args.(1) in
        let r, inspected = Semantics.array_cmp a b in
        charge (inspected * Cost.per_element_copy);
        r
    | Opcode.Arrayop Opcode.Array_length ->
        Semantics.array_length (eval n.args.(0))
    | Opcode.Mixedop -> Semantics.mixed n.ty (Array.map eval n.args)
  in
  let rec exec_block bid =
    (* block transitions consume fuel too: an empty self-loop must still
       trip the guard *)
    if !(ctx.fuel) <= 0 then raise Out_of_fuel;
    decr ctx.fuel;
    if profiling then cur_block := bid;
    let b = Meth.block m bid in
    let outcome =
      try
        List.iter (fun s -> ignore (eval s)) b.Block.stmts;
        match b.Block.term with
        | Block.Goto t -> `Jump t
        | Block.If { cond; if_true; if_false } ->
            charge 1;
            if is_truthy (eval cond) then `Jump if_true else `Jump if_false
        | Block.Return None -> `Done Void_v
        | Block.Return (Some v) ->
            `Done (Semantics.store_coerce m.ret (eval v))
        | Block.Throw v ->
            ignore (eval v);
            `Trap Values.User_exception
      with Trap k -> `Trap k
    in
    match outcome with
    | `Jump t -> exec_block t
    | `Done v -> v
    | `Trap k -> (
        charge Cost.exception_unwind;
        match b.Block.handler with
        | Some h -> exec_block h
        | None -> raise (Trap k))
  in
  if m.attrs.synchronized then charge (2 * Cost.op_base (Opcode.Synchronization Opcode.Monitor_enter) Types.Object_);
  exec_block 0
