(** Virtual time-stamp counter.

    Reproduces the measurement substrate of Section 4.2 of the paper: a
    64-bit cycle counter read together with a processor identifier
    ([rdtscp]).  The simulated scheduler migrates the application thread
    between cores at pseudo-random intervals around 200 virtual
    milliseconds, so instrumentation must discard enter/exit pairs whose
    processor ids differ — exactly the TSC-drift discipline of the
    paper. *)

type t

val create : ?cores:int -> ?seed:int64 -> unit -> t
(** Fresh clock at cycle 0 on core 0.  [cores] defaults to 8 (the paper's
    dual quad-core nodes). *)

val advance : t -> int -> unit
(** Charge [n >= 0] cycles. *)

val copy : t -> t
(** An independent deep copy (private migration-RNG state): advancing the
    copy never perturbs the original's cycle or core stream. *)

val restore : t -> t -> unit
(** [restore dst src] overwrites [dst]'s cycle count, core, migration
    schedule, and RNG state with [src]'s.  Both clocks must have the same
    core count (they come from the same engine lineage — compilation
    forking restores a snapshot taken from the same clock). *)

val now : t -> int64
(** Current cycle count. *)

val read_tsc : t -> int64 * int
(** [(cycles, processor_id)] — the [rdtscp] pair. *)

val core : t -> int

val migrations : t -> int
(** Number of thread migrations so far (observability for tests). *)

val ms : t -> float
(** Current time in virtual milliseconds. *)
