module Prng = Tessera_util.Prng

type t = {
  mutable cycles : int64;
  mutable core : int;
  mutable next_migration : int64;
  mutable migrations : int;
  cores : int;
  rng : Prng.t;
}

(* The Linux balancer can move a thread every ~200 ms; in practice it is
   less frequent (Section 4.2).  We draw intervals in [200 ms, 5 s]. *)
let draw_interval rng =
  let ms = 200 + Prng.int rng 4800 in
  Int64.of_int (ms * Cost.cycles_per_ms)

let create ?(cores = 8) ?(seed = 0x7E55E7AL) () =
  let rng = Prng.create seed in
  {
    cycles = 0L;
    core = 0;
    next_migration = draw_interval rng;
    migrations = 0;
    cores;
    rng;
  }

let advance t n =
  if n < 0 then invalid_arg "Clock.advance: negative";
  t.cycles <- Int64.add t.cycles (Int64.of_int n);
  while t.cycles >= t.next_migration do
    t.core <- (t.core + 1 + Prng.int t.rng (max 1 (t.cores - 1))) mod t.cores;
    t.migrations <- t.migrations + 1;
    if !Tessera_obs.Trace.enabled then
      Tessera_obs.Trace.instant ~cycles:t.next_migration ~cat:"vm"
        ~args:[ ("core", Tessera_obs.Trace.Int (Int64.of_int t.core)) ]
        "core_migration";
    t.next_migration <- Int64.add t.next_migration (draw_interval t.rng)
  done

let copy t = { t with rng = Prng.copy t.rng }

let restore dst src =
  if dst.cores <> src.cores then invalid_arg "Clock.restore: core count differs";
  dst.cycles <- src.cycles;
  dst.core <- src.core;
  dst.next_migration <- src.next_migration;
  dst.migrations <- src.migrations;
  Prng.set_state dst.rng (Prng.state src.rng)

let now t = t.cycles
let read_tsc t = (t.cycles, t.core)
let core t = t.core
let migrations t = t.migrations
let ms t = Int64.to_float t.cycles /. float_of_int Cost.cycles_per_ms
