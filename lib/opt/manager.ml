module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Cost = Tessera_vm.Cost

type result = {
  meth : Meth.t;
  quality : Cost.codegen_quality;
  opt_cycles : int;
  front_cycles : int;
  back_cycles : int;
  applied : int list;
  skipped_inapplicable : int list;
  disabled : int list;
}

let total_cycles r = r.opt_cycles + r.front_cycles + r.back_cycles

type pass_audit =
  pass_index:int ->
  pass_name:string ->
  before:Meth.t ->
  after:Meth.t ->
  unit

(* Dependency inversion: the lint auditor lives in [tessera.analysis],
   which sits above this library.  [Tessera_analysis.Lint.install] sets
   the hook; [optimize] consults it when no explicit audit is passed. *)
let lint_hook : (Program.t -> pass_audit) option ref = ref None

let quality_of_hints h =
  if h >= 2 then Cost.Q_full else if h = 1 then Cost.Q_regalloc else Cost.Q_base

let max_quality a b = if Cost.quality_rank a >= Cost.quality_rank b then a else b

let optimize ?(enabled = fun _ -> true) ?(validate = false) ?audit
    ?(quality_floor = Cost.Q_base) ~program ~plan m =
  let audit =
    match audit with
    | Some _ -> audit
    | None -> Option.map (fun f -> f program) !lint_hook
  in
  let ctx = { Catalog.program } in
  let meth = ref m in
  let cycles = ref 0 in
  let hints = ref 0 in
  let applied = ref [] in
  let skipped = ref [] in
  let disabled = ref [] in
  let initial_nodes = Meth.tree_count m in
  List.iter
    (fun idx ->
      let e = Catalog.all.(idx) in
      if not (enabled idx) then disabled := idx :: !disabled
      else begin
        let traits = Catalog.traits_of !meth in
        if not (e.Catalog.applicable traits) then begin
          cycles := !cycles + Catalog.check_cycles;
          skipped := idx :: !skipped
        end
        else begin
          let base, per_node = Catalog.weight_cycles e.Catalog.weight in
          cycles := !cycles + base + (per_node * traits.Catalog.nodes);
          hints := !hints + e.Catalog.quality_hint;
          let m' = e.Catalog.run ctx !meth in
          (match audit with
          | Some f ->
              f ~pass_index:idx ~pass_name:e.Catalog.name ~before:!meth
                ~after:m'
          | None -> ());
          if validate then begin
            match
              Tessera_il.Validate.check_method
                ~classes:program.Program.classes
                ~method_count:(Program.method_count program)
                m'
            with
            | [] -> ()
            | errs ->
                invalid_arg
                  (Printf.sprintf "pass %s broke the IR: %s" e.Catalog.name
                     (String.concat "; "
                        (List.map
                           (fun e -> Format.asprintf "%a" Tessera_il.Validate.pp_error e)
                           errs)))
          end;
          meth := m';
          applied := idx :: !applied
        end
      end)
    plan;
  let final_nodes = Meth.tree_count !meth in
  {
    meth = !meth;
    quality = max_quality quality_floor (quality_of_hints !hints);
    opt_cycles = !cycles;
    front_cycles = 2_000 + (25 * initial_nodes);
    back_cycles = 3_000 + (40 * final_nodes);
    applied = List.rev !applied;
    skipped_inapplicable = List.rev !skipped;
    disabled = List.rev !disabled;
  }
