(** The pass manager: applies a compilation plan, optionally filtered by a
    plan modifier, charging simulated compile cycles per application. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program

type result = {
  meth : Meth.t;  (** optimized method IR *)
  quality : Tessera_vm.Cost.codegen_quality;
  opt_cycles : int;  (** cycles spent in the optimizer *)
  front_cycles : int;  (** IL generation (charged per compilation) *)
  back_cycles : int;  (** code generation, grows with final IR size *)
  applied : int list;  (** catalogue indices actually executed, in order *)
  skipped_inapplicable : int list;
  disabled : int list;  (** applications suppressed by the modifier *)
}

val total_cycles : result -> int
(** Front + optimizer + back cycles: the "compilation time" of the
    paper's figures. *)

type pass_audit =
  pass_index:int ->
  pass_name:string ->
  before:Meth.t ->
  after:Meth.t ->
  unit
(** Called after each executed pass with the method before and after.
    Must not raise in production paths (the engine quarantines compile
    failures); the lint auditor collects instead. *)

val lint_hook : (Program.t -> pass_audit) option ref
(** Global fallback audit factory, consulted by {!optimize} when no
    explicit [?audit] is given.  Set by [Tessera_analysis.Lint.install]
    — a dependency inversion, since the analysis library sits above
    this one. *)

val optimize :
  ?enabled:(int -> bool) ->
  ?validate:bool ->
  ?audit:pass_audit ->
  ?quality_floor:Tessera_vm.Cost.codegen_quality ->
  program:Program.t ->
  plan:int list ->
  Meth.t ->
  result
(** [enabled i] says whether catalogue transformation [i] is enabled (the
    modifier bit of Section 5); defaults to all-enabled.  [validate]
    checks IR well-formedness after every pass and raises on violation —
    used by tests to pinpoint a faulty transformation.  [audit] observes
    every executed pass (before/after); when omitted, {!lint_hook}
    supplies one if installed.  [quality_floor] is the minimum back-end
    tier regardless of which hint transformations ran — the higher
    optimization levels ship with a stronger baseline register allocator
    that plan modifiers cannot turn off. *)
