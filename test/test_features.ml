module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Features = Tessera_features.Features

let test_dimensions () =
  (* the paper's 71 plus the analysis-derived components *)
  Alcotest.(check int) "76 features" 76 Features.dim;
  Alcotest.(check int) "19 scalars" 19 Features.scalar_count;
  Alcotest.(check int) "5 analysis components" 5 Features.analysis_count;
  (* 19 + 14 + 38 + 5 = 76 *)
  Alcotest.(check int) "scalar + types + ops + analysis"
    (Features.scalar_count + Types.count + Opcode.group_count
   + Features.analysis_count)
    Features.dim

let test_component_names_unique () =
  let seen = Hashtbl.create 71 in
  for i = 0 to Features.dim - 1 do
    let n = Features.component_name i in
    Alcotest.(check bool) (n ^ " unique") false (Hashtbl.mem seen n);
    Hashtbl.add seen n ()
  done;
  Alcotest.(check string) "0" "exceptionHandlers" (Features.component_name 0);
  Alcotest.(check string) "3" "treeNodes" (Features.component_name 3);
  Alcotest.(check string) "19" "type:byte" (Features.component_name 19);
  Alcotest.(check string) "33" "op:add" (Features.component_name 33);
  Alcotest.(check string) "70" "op:mixedops" (Features.component_name 70);
  Alcotest.(check string) "71" "dataflow:live_slot_pressure"
    (Features.component_name 71);
  Alcotest.(check string) "75" "dataflow:reaching_def_density"
    (Features.component_name 75)

let handmade =
  let symbols = [| Symbol.arg "a" Types.Int; Symbol.temp "t" Types.Double |] in
  let attrs = { Meth.default_attrs with Meth.synchronized = true; uses_bigdecimal = true } in
  let fconst = Node.fconst Types.Double 1.5 in
  Meth.make ~attrs ~name:"F.f(I)I" ~params:[| Types.Int |] ~ret:Types.Int ~symbols
    [|
      Block.make 0
        [
          Node.store_sym 1 (Node.binop Opcode.Mul Types.Double fconst fconst);
        ]
        (Block.Goto 1);
      Block.make 1 []
        (Block.If
           {
             cond =
               Node.binop (Opcode.Compare Opcode.Lt) Types.Int
                 (Node.load_sym Types.Int 0) (Node.iconst Types.Int 100L);
             if_true = 1;
             if_false = 2;
           });
      Block.make 2 [] (Block.Return (Some (Node.load_sym Types.Int 0)));
    |]

let get_named f name =
  let rec find i =
    if i >= Features.dim then Alcotest.fail ("no component " ^ name)
    else if Features.component_name i = name then Features.get f i
    else find (i + 1)
  in
  find 0

let test_extraction () =
  let f = Features.extract handmade in
  Alcotest.(check int) "arguments" 1 (get_named f "arguments");
  Alcotest.(check int) "temporaries" 1 (get_named f "temporaries");
  Alcotest.(check int) "synchronized" 1 (get_named f "synchronized");
  Alcotest.(check int) "usesBigDecimal" 1 (get_named f "usesBigDecimal");
  Alcotest.(check int) "usesFloatingPoint" 1 (get_named f "usesFloatingPoint");
  Alcotest.(check int) "mayHaveLoops" 1 (get_named f "mayHaveLoops");
  (* loop bound 100 exceeds the many-iteration threshold (64) *)
  Alcotest.(check int) "manyIterationLoops" 1 (get_named f "manyIterationLoops");
  Alcotest.(check int) "allocates" 0 (get_named f "allocatesDynamicMemory");
  Alcotest.(check int) "treeNodes matches" (Meth.tree_count handmade)
    (get_named f "treeNodes");
  Alcotest.(check int) "op:mul counted" 1 (get_named f "op:mul");
  Alcotest.(check int) "type:double counted" 3 (get_named f "type:double");
  (* determinism *)
  Alcotest.(check bool) "deterministic" true
    (Features.equal f (Features.extract handmade))

let test_saturation () =
  (* 300 adds saturate the 8-bit op counter at 255 *)
  let rec chain n acc =
    if n = 0 then acc
    else
      chain (n - 1)
        (Node.binop Opcode.Add Types.Int acc (Node.iconst Types.Int 1L))
  in
  let m =
    Meth.make ~name:"S.s()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [| Block.make 0 [] (Block.Return (Some (chain 300 (Node.iconst Types.Int 0L)))) |]
  in
  let f = Features.extract m in
  Alcotest.(check int) "op:add saturates at 255" 255 (get_named f "op:add");
  Alcotest.(check bool) "type counter is 16-bit" true
    (get_named f "type:int" > 255)

let test_of_array_validation () =
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Features.of_array: wrong length") (fun () ->
      ignore (Features.of_array [| 1; 2; 3 |]));
  let f = Features.extract handmade in
  let f' = Features.of_array (Features.to_array f) in
  Alcotest.(check bool) "roundtrip" true (Features.equal f f')

let test_compare_lexicographic () =
  let a = Features.of_array (Array.make Features.dim 0) in
  let b =
    Features.of_array (Array.init Features.dim (fun i -> if i = 0 then 1 else 0))
  in
  Alcotest.(check bool) "a < b" true (Features.compare a b < 0);
  Alcotest.(check int) "reflexive" 0 (Features.compare a a)

let test_loop_classes () =
  let module Triggers = Tessera_jit.Triggers in
  Alcotest.(check bool) "handmade is many-iterations" true
    (Triggers.loop_class_of handmade = Triggers.Many_iterations);
  let flat =
    Meth.make ~name:"L.l()V" ~params:[||] ~ret:Types.Void ~symbols:[||]
      [| Block.make 0 [] (Block.Return None) |]
  in
  Alcotest.(check bool) "flat has no loops" true
    (Triggers.loop_class_of flat = Triggers.No_loops);
  (* triggers order: many-iteration loops compile soonest *)
  List.iter
    (fun level ->
      let t c = Triggers.trigger level c in
      Alcotest.(check bool) "many < loops" true
        (t Triggers.Many_iterations < t Triggers.Has_loops);
      Alcotest.(check bool) "loops < none" true
        (t Triggers.Has_loops < t Triggers.No_loops))
    (Array.to_list Tessera_opt.Plan.levels)

let suite =
  [
    Alcotest.test_case "dimensions" `Quick test_dimensions;
    Alcotest.test_case "component names" `Quick test_component_names_unique;
    Alcotest.test_case "extraction" `Quick test_extraction;
    Alcotest.test_case "counter saturation" `Quick test_saturation;
    Alcotest.test_case "of_array validation" `Quick test_of_array_validation;
    Alcotest.test_case "lexicographic compare" `Quick test_compare_lexicographic;
    Alcotest.test_case "loop classes and triggers" `Quick test_loop_classes;
  ]
