(* The fault-injection subsystem and the resilience layers it exercises:
   spec parsing, chunked channel semantics, frame integrity (CRC +
   resync), the hardened client's retry/breaker behaviour, and the JIT
   engine's degradation ladder. *)

open Helpers
module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Tracectx = Tessera_protocol.Tracectx
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Spec = Tessera_faults.Spec
module Injector = Tessera_faults.Injector
module Engine = Tessera_jit.Engine
module Compiler = Tessera_jit.Compiler
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Program = Tessera_il.Program
module Prng = Tessera_util.Prng

let parse_exn s =
  match Spec.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.fail (Printf.sprintf "spec %S rejected: %s" s e)

(* ---------- spec parsing ---------- *)

let test_spec_parse () =
  let s = parse_exn "drop:0.01,corrupt:0.005,delay:50,crash_after:200" in
  Alcotest.(check (float 1e-9)) "drop" 0.01 s.Spec.drop;
  Alcotest.(check (float 1e-9)) "corrupt" 0.005 s.Spec.corrupt;
  Alcotest.(check int) "delay" 50 s.Spec.delay_ms;
  Alcotest.(check (option int)) "crash_after" (Some 200) s.Spec.crash_after;
  Alcotest.(check (option int)) "revive_after" None s.Spec.revive_after;
  Alcotest.(check bool) "empty is default" true (Spec.parse "" = Ok Spec.default);
  Alcotest.(check bool) "default is null" true (Spec.is_null Spec.default);
  Alcotest.(check bool) "parsed is not null" false (Spec.is_null s);
  (* round-trip through the printer *)
  Alcotest.(check bool) "to_string round-trips" true
    (Spec.parse (Spec.to_string s) = Ok s);
  (* alias *)
  let d = parse_exn "duplicate:0.25" in
  Alcotest.(check (float 1e-9)) "duplicate alias" 0.25 d.Spec.dup;
  (* rejects *)
  List.iter
    (fun bad ->
      match Spec.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S accepted" bad)
      | Error _ -> ())
    [ "nope:1"; "drop:1.5"; "drop:-0.1"; "drop"; "crash_after:x" ]

let test_spec_no_crash () =
  let s = parse_exn "drop:0.5,crash_after:10,revive_after:5" in
  let s' = Spec.no_crash s in
  Alcotest.(check (option int)) "crash stripped" None s'.Spec.crash_after;
  Alcotest.(check (option int)) "revive stripped" None s'.Spec.revive_after;
  Alcotest.(check (float 1e-9)) "rest kept" 0.5 s'.Spec.drop

(* ---------- channel chunk semantics ---------- *)

let test_channel_chunking () =
  let a, b = Channel.pipe_pair () in
  Channel.write a "ab";
  Channel.write a "cdef";
  Channel.write a "g";
  Alcotest.(check string) "read across chunks" "abc" (Channel.read_exact b 3);
  Alcotest.(check string) "read remainder" "defg" (Channel.read_exact b 4);
  Channel.write a "xyz";
  (* underflow raises Timeout and must not consume the buffered bytes *)
  (match Channel.read_exact b 5 with
  | _ -> Alcotest.fail "underflow read returned"
  | exception Channel.Timeout -> ());
  Alcotest.(check string) "buffer intact after timeout" "xyz"
    (Channel.read_exact b 3);
  Channel.write a "tail";
  Alcotest.(check int) "drain counts" 4 (Channel.drain b);
  (match Channel.read_exact b 1 with
  | _ -> Alcotest.fail "read after drain returned"
  | exception Channel.Timeout -> ());
  Channel.close a;
  Alcotest.check_raises "closed after close" Channel.Closed (fun () ->
      ignore (Channel.read_exact b 1))

let test_channel_stream_integrity () =
  (* random interleaving of writes and reads must reproduce the exact
     byte stream (guards the chunk-queue cursor arithmetic) *)
  let rng = Prng.create 99L in
  let a, b = Channel.pipe_pair () in
  let sent = Buffer.create 4096 and got = Buffer.create 4096 in
  let pending = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bernoulli rng 0.6 then begin
      let n = 1 + Prng.int rng 40 in
      let s = String.init n (fun _ -> Char.chr (Prng.int rng 256)) in
      Channel.write a s;
      Buffer.add_string sent s;
      pending := !pending + n
    end
    else begin
      let n = 1 + Prng.int rng 60 in
      if n <= !pending then begin
        Buffer.add_string got (Channel.read_exact b n);
        pending := !pending - n
      end
    end
  done;
  if !pending > 0 then Buffer.add_string got (Channel.read_exact b !pending);
  Alcotest.(check bool) "stream integrity" true
    (Buffer.contents sent = Buffer.contents got)

(* ---------- frame integrity ---------- *)

let msg_testable = Alcotest.testable Message.pp Message.equal

(* Any single bit flip anywhere in a frame must surface as Malformed (or
   Closed at end of stream) — never as a silently different message. *)
let test_bit_flips_never_decode () =
  let messages =
    [
      Message.Ping;
      Message.Init { model_name = "H3" };
      Message.Predict
        { level = Plan.Hot; features = [| 0.25; -1.0; 3.5 |];
          trace = Tracectx.none };
      Message.Prediction
        { modifier = Modifier.of_disabled [ 3; 41 ]; trace = Tracectx.none };
    ]
  in
  List.iter
    (fun m ->
      let frame = Message.encode m in
      for bit = 0 to (String.length frame * 8) - 1 do
        let flipped = Bytes.of_string frame in
        let i = bit / 8 in
        Bytes.set flipped i
          (Char.chr (Char.code (Bytes.get flipped i) lxor (1 lsl (bit mod 8))));
        let a, b = Channel.pipe_pair () in
        Channel.write a (Bytes.to_string flipped);
        Channel.close a;
        match Message.decode_from b with
        | m' ->
            Alcotest.fail
              (Format.asprintf "bit %d flip of %a decoded as %a" bit Message.pp
                 m Message.pp m')
        | exception (Message.Malformed _ | Channel.Closed | Channel.Timeout) ->
            ()
      done)
    messages

let test_resync_recovers () =
  let a, b = Channel.pipe_pair () in
  (* leading garbage (no magic byte), then a valid frame *)
  Channel.write a "\x00\x13\x99\xfe";
  Message.send a Message.Ping;
  Alcotest.check msg_testable "recovered after garbage" Message.Ping
    (Message.recv b);
  (* a corrupted frame followed by a valid one: the bad frame is
     discarded and the stream resynchronizes on the next magic byte *)
  let bad = Bytes.of_string (Message.encode Message.Pong) in
  let last = Bytes.length bad - 1 in
  Bytes.set bad last (Char.chr (Char.code (Bytes.get bad last) lxor 1));
  Channel.write a (Bytes.to_string bad);
  Message.send a (Message.Init { model_name = "x" });
  Alcotest.check msg_testable "skipped corrupted frame"
    (Message.Init { model_name = "x" })
    (Message.recv b)

let test_resync_budget_exhausted () =
  let a, b = Channel.pipe_pair () in
  Channel.write a (String.make 64 '\x00');
  match Message.recv ~resync_budget:16 b with
  | _ -> Alcotest.fail "recv returned from pure garbage"
  | exception Message.Malformed _ -> ()

(* ---------- client resilience ---------- *)

let lockstep_config =
  { Client.default_config with Client.log = ignore }

(* A full client/server session over an in-memory pipe pair with
   injectors on both endpoints, advanced in lockstep. *)
let session ?(config = lockstep_config) ?(requests = 40) ~spec ~seed () =
  let server_raw, client_raw = Channel.pipe_pair () in
  let server_inj = Injector.create ~spec ~seed () in
  let client_inj =
    Injector.create ~spec:(Spec.no_crash spec) ~seed:(Int64.add seed 1L) ()
  in
  let server_ch = Injector.wrap_channel server_inj server_raw in
  let client_ch = Injector.wrap_channel client_inj client_raw in
  let predictor ~level:_ ~features =
    Modifier.of_disabled [ Array.length features mod 58 ]
  in
  let lockstep () =
    try ignore (Server.step server_ch predictor)
    with Channel.Closed | Channel.Timeout -> ()
  in
  let client = Client.connect ~model_name:"faulty" ~lockstep ~config client_ch in
  let outcomes =
    List.init requests (fun i ->
        Client.predict_result client ~level:Plan.Hot
          ~features:(Array.make (1 + (i mod 7)) 0.25))
  in
  (client, outcomes, server_inj, client_inj)

let check_counter_invariant client =
  let k = Client.counters client in
  Alcotest.(check int) "predicted+fallbacks+skips = requests"
    k.Client.requests
    (k.Client.predicted + k.Client.fallbacks + k.Client.breaker_skips)

let fault_matrix =
  [
    "drop:0.3";
    "corrupt:0.3";
    "garbage:0.2";
    "dup:0.3";
    "drop:0.1,corrupt:0.1,dup:0.1,garbage:0.1";
    "drop:0.05,corrupt:0.02,crash_after:6,revive_after:9";
    "crash_after:1";
  ]

let test_client_survives_fault_matrix () =
  List.iter
    (fun spec_str ->
      let spec = parse_exn spec_str in
      List.iter
        (fun seed ->
          let client, outcomes, _, _ = session ~spec ~seed () in
          check_counter_invariant client;
          Alcotest.(check int)
            (Printf.sprintf "all outcomes resolved (%s)" spec_str)
            40 (List.length outcomes))
        [ 1L; 2L; 3L ])
    fault_matrix

let test_clean_session_all_predicted () =
  let client, outcomes, _, _ = session ~spec:Spec.default ~seed:1L () in
  check_counter_invariant client;
  Alcotest.(check bool) "all predicted" true
    (List.for_all
       (function Client.Predicted _ -> true | _ -> false)
       outcomes);
  let k = Client.counters client in
  Alcotest.(check int) "no fallbacks" 0 k.Client.fallbacks;
  Alcotest.(check int) "no retries" 0 k.Client.retries

let test_failure_classes_distinguished () =
  (* pure corruption must be counted as malformed/timeouts, never
     misfiled under closed or server_errors (moderate rate so the
     handshake itself survives) *)
  let spec = parse_exn "corrupt:0.15" in
  let client, _, server_inj, client_inj = session ~spec ~seed:5L () in
  let k = Client.counters client in
  let corrupted =
    (Injector.stats server_inj).Injector.corrupted
    + (Injector.stats client_inj).Injector.corrupted
  in
  Alcotest.(check bool) "some frames were corrupted" true (corrupted > 0);
  Alcotest.(check bool) "corruption detected" true
    (k.Client.malformed + k.Client.timeouts > 0);
  Alcotest.(check int) "no closed" 0 k.Client.closed;
  Alcotest.(check int) "no server errors" 0 k.Client.server_errors

let test_injector_deterministic () =
  let run () =
    let spec = parse_exn "drop:0.2,corrupt:0.2,dup:0.1,crash_after:8,revive_after:6" in
    let client, outcomes, server_inj, client_inj = session ~spec ~seed:7L () in
    ( Format.asprintf "%a" Client.pp_counters (Client.counters client),
      Format.asprintf "%a" Injector.pp_stats (Injector.stats server_inj),
      Format.asprintf "%a" Injector.pp_stats (Injector.stats client_inj),
      List.map
        (function
          | Client.Predicted m -> "p" ^ String.concat "," (List.map string_of_int (Modifier.disabled_indices m))
          | Client.Fallback f -> "f" ^ Client.failure_name f
          | Client.Breaker_skip -> "s")
        outcomes )
  in
  Alcotest.(check bool) "same seed, same session" true (run () = run ())

let test_breaker_trips_and_recovers () =
  (* deterministic crash at the server's 6th frame; first half-open ping
     revives it (and is consumed by the restart), the second finds it
     alive and closes the breaker again *)
  let spec = parse_exn "crash_after:5,revive_after:16" in
  let config = { lockstep_config with Client.breaker_cooldown = 4 } in
  let client, _, server_inj, _ = session ~config ~requests:30 ~spec ~seed:1L () in
  check_counter_invariant client;
  let k = Client.counters client in
  let s = Injector.stats server_inj in
  Alcotest.(check bool) "server crashed" true (s.Injector.crashes >= 1);
  Alcotest.(check bool) "server revived" true (s.Injector.revivals >= 1);
  Alcotest.(check bool) "breaker tripped" true (k.Client.breaker_trips >= 1);
  Alcotest.(check bool) "breaker half-opened" true
    (k.Client.breaker_half_opens >= 2);
  Alcotest.(check bool) "breaker recovered" true
    (k.Client.breaker_recoveries >= 1);
  Alcotest.(check bool) "skips while open" true (k.Client.breaker_skips > 0);
  Alcotest.(check bool) "predictions resumed after recovery" true
    (k.Client.predicted > 4)

let test_connect_survives_dead_server () =
  (* no lockstep at all: the handshake times out, the client comes up
     with the breaker open and every prediction falls back *)
  let _, client_raw = Channel.pipe_pair () in
  let client =
    Client.connect ~model_name:"dead" ~config:lockstep_config client_raw
  in
  Alcotest.(check bool) "breaker open after failed handshake" true
    (Client.breaker_state client = Client.Breaker_open);
  (match Client.predict_result client ~level:Plan.Cold ~features:[| 1.0 |] with
  | Client.Breaker_skip -> ()
  | Client.Fallback _ -> ()
  | Client.Predicted _ -> Alcotest.fail "predicted against a dead server");
  check_counter_invariant client

(* ---------- backoff jitter ---------- *)

let test_backoff_full_jitter () =
  (* full jitter: every delay is uniform in (0, capped] seconds — never
     zero (a zero sleep would hammer a struggling server), never above
     the exponential cap, and actually jittered (not a constant) *)
  QCheck.Test.make ~count:100 ~name:"backoff delay is full jitter in (0, cap]"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 1000) (int_range 1 5000) (int_bound 20)))
    (fun (base_ms, max_ms, attempt) ->
      let config =
        {
          lockstep_config with
          Client.backoff_base_ms = float_of_int base_ms;
          backoff_max_ms = float_of_int max_ms;
          jitter_seed = Int64.of_int ((base_ms * 7919) + attempt);
        }
      in
      (* a dead server: connect fails fast and leaves a usable client *)
      let _, client_raw = Channel.pipe_pair () in
      let client = Client.connect ~model_name:"jitter" ~config client_raw in
      let capped_s =
        Float.min
          (float_of_int base_ms *. (2.0 ** float_of_int attempt))
          (float_of_int max_ms)
        /. 1000.0
      in
      let draws = List.init 32 (fun _ -> Client.backoff_delay client attempt) in
      List.for_all (fun d -> d > 0.0 && d <= capped_s) draws
      && List.exists (fun d -> d <> List.hd draws) draws)

(* ---------- engine degradation ---------- *)

let sync_config =
  { Engine.default_config with Engine.async_compile = false }

let test_engine_quarantines_failing_compiles () =
  let p = gen_program 42L in
  let meth_id = p.Program.entry in
  let callbacks =
    {
      Engine.no_callbacks with
      Engine.pre_compile = Some (fun _ ~meth_id:_ ~level:_ -> failwith "injected");
    }
  in
  let e = Engine.create ~config:sync_config ~callbacks p in
  Engine.request_compile e ~meth_id ~level:Plan.Cold ();
  Engine.request_compile e ~meth_id ~level:Plan.Cold ();
  Alcotest.(check int) "both attempts failed" 2 (Engine.compile_failures e);
  Alcotest.(check int) "nothing installed" 0 (Engine.compile_count e);
  Alcotest.(check int) "method quarantined" 1 (Engine.quarantined_methods e);
  Alcotest.(check bool) "no_more set" true (Engine.state e meth_id).Engine.no_more;
  (* the program still runs, interpreted *)
  match Engine.invoke_entry e (entry_args 0) with
  | Ok _ | Error _ -> ()

let test_engine_budget_degrades () =
  let p = gen_program 42L in
  let meth_id = p.Program.entry in
  let cold =
    Compiler.compile ~program:p ~level:Plan.Cold (Program.meth p meth_id)
  in
  (* budget = exactly the cold compile: higher levels are rejected and
     degrade down the ladder until something fits *)
  let config =
    { sync_config with Engine.compile_cycle_budget = Some cold.Compiler.compile_cycles }
  in
  let e = Engine.create ~config p in
  Engine.request_compile e ~meth_id ~level:Plan.Scorching ();
  Alcotest.(check int) "exactly one compile installed" 1 (Engine.compile_count e);
  Alcotest.(check bool) "over-budget plans rejected" true
    (Engine.budget_rejections e >= 1);
  Alcotest.(check bool) "degraded down the ladder" true
    (Engine.degraded_compiles e >= 1);
  Alcotest.(check int) "not quarantined" 0 (Engine.quarantined_methods e)

let test_engine_budget_exhausted_stays_interpreted () =
  let p = gen_program 42L in
  let meth_id = p.Program.entry in
  let config = { sync_config with Engine.compile_cycle_budget = Some 0 } in
  let e = Engine.create ~config p in
  Engine.request_compile e ~meth_id ~level:Plan.Scorching ();
  Alcotest.(check int) "nothing fits a zero budget" 0 (Engine.compile_count e);
  Alcotest.(check int) "quarantined" 1 (Engine.quarantined_methods e);
  (* full ladder was tried: one rejection per level *)
  Alcotest.(check int) "five rejections" 5 (Engine.budget_rejections e);
  Alcotest.(check int) "four degradations" 4 (Engine.degraded_compiles e);
  match Engine.invoke_entry e (entry_args 0) with
  | Ok _ | Error _ -> ()

let test_engine_modifier_fallback () =
  let p = gen_program 42L in
  let meth_id = p.Program.entry in
  let callbacks =
    {
      Engine.no_callbacks with
      Engine.choose_modifier =
        Some (fun _ ~meth_id:_ ~level:_ -> failwith "predictor exploded");
    }
  in
  let e = Engine.create ~config:sync_config ~callbacks p in
  Engine.request_compile e ~meth_id ~level:Plan.Cold ();
  Alcotest.(check int) "fell back to default plan" 1 (Engine.modifier_fallbacks e);
  Alcotest.(check int) "compile still happened" 1 (Engine.compile_count e)

(* ---------- end to end: engine + faulty protocol ---------- *)

let test_engine_over_faulty_protocol () =
  (* the whole ladder at once: JIT engine consulting a model server over
     an in-memory pipe with drops, corruption, and a mid-session server
     crash — the run must complete with every compilation landing under
     either the predicted or the default plan *)
  let spec = parse_exn "drop:0.05,corrupt:0.03,garbage:0.02,crash_after:5,revive_after:16" in
  List.iter
    (fun seed ->
      let p = gen_program 77L in
      let server_raw, client_raw = Channel.pipe_pair () in
      let server_inj = Injector.create ~spec ~seed () in
      let client_inj =
        Injector.create ~spec:(Spec.no_crash spec) ~seed:(Int64.add seed 1L) ()
      in
      let server_ch = Injector.wrap_channel server_inj server_raw in
      let client_ch = Injector.wrap_channel client_inj client_raw in
      let predictor ~level:_ ~features =
        Modifier.of_disabled [ Array.length features mod 58 ]
      in
      let lockstep () =
        try ignore (Server.step server_ch predictor)
        with Channel.Closed | Channel.Timeout -> ()
      in
      let client =
        Client.connect ~model_name:"e2e" ~lockstep ~config:lockstep_config
          client_ch
      in
      let choose _engine ~meth_id:_ ~level =
        Some (Client.predict client ~level ~features:(Array.make 4 0.5))
      in
      let e =
        Engine.create
          ~config:{ Engine.default_config with Engine.trigger_scale = 0.01 }
          ~callbacks:
            { Engine.no_callbacks with Engine.choose_modifier = Some choose }
          p
      in
      for k = 0 to 24 do
        match Engine.invoke_entry e (entry_args k) with
        | Ok _ | Error _ -> ()
      done;
      check_counter_invariant client;
      let k = Client.counters client in
      Alcotest.(check bool) "model was consulted" true (k.Client.requests > 0);
      Alcotest.(check bool) "methods still compiled" true
        (Engine.methods_compiled e > 0))
    [ 1L; 2L; 3L ]

let suite =
  [
    Alcotest.test_case "spec parsing" `Quick test_spec_parse;
    Alcotest.test_case "spec no_crash" `Quick test_spec_no_crash;
    Alcotest.test_case "channel chunking" `Quick test_channel_chunking;
    Alcotest.test_case "channel stream integrity" `Quick
      test_channel_stream_integrity;
    Alcotest.test_case "bit flips never decode" `Quick
      test_bit_flips_never_decode;
    Alcotest.test_case "resync recovers" `Quick test_resync_recovers;
    Alcotest.test_case "resync budget exhausted" `Quick
      test_resync_budget_exhausted;
    Alcotest.test_case "client survives fault matrix" `Quick
      test_client_survives_fault_matrix;
    Alcotest.test_case "clean session all predicted" `Quick
      test_clean_session_all_predicted;
    Alcotest.test_case "failure classes distinguished" `Quick
      test_failure_classes_distinguished;
    Alcotest.test_case "injector deterministic" `Quick
      test_injector_deterministic;
    Alcotest.test_case "breaker trips and recovers" `Quick
      test_breaker_trips_and_recovers;
    Alcotest.test_case "connect survives dead server" `Quick
      test_connect_survives_dead_server;
    QCheck_alcotest.to_alcotest (test_backoff_full_jitter ());
    Alcotest.test_case "engine quarantines failing compiles" `Quick
      test_engine_quarantines_failing_compiles;
    Alcotest.test_case "engine budget degrades" `Quick
      test_engine_budget_degrades;
    Alcotest.test_case "engine zero budget stays interpreted" `Quick
      test_engine_budget_exhausted_stays_interpreted;
    Alcotest.test_case "engine modifier fallback" `Quick
      test_engine_modifier_fallback;
    Alcotest.test_case "engine over faulty protocol" `Quick
      test_engine_over_faulty_protocol;
  ]
