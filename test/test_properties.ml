(* Cross-cutting qcheck properties over random methods and programs —
   invariants beyond the differential checks in Test_engines. *)

open Helpers
module Types = Tessera_il.Types
module Node = Tessera_il.Node
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Catalog = Tessera_opt.Catalog
module Features = Tessera_features.Features
module Prng = Tessera_util.Prng

let random_method seed =
  let prof = small_profile (Int64.of_int seed) in
  let rng = Prng.create (Int64.of_int (seed * 31 + 7)) in
  Tessera_workloads.Generate.random_method ~rng prof
    ~name:(Printf.sprintf "P.m%d" seed)
    ~callees:[] ~classes:[||]

(* Cleanup-style passes are idempotent: applying twice equals once. *)
let idempotent_passes =
  [
    ("const_fold", Tessera_opt.Passes_local.const_fold);
    ("simplify", Tessera_opt.Passes_local.simplify);
    ("sign_ext_elim", Tessera_opt.Passes_local.sign_ext_elim);
    ("bitop_simplify", Tessera_opt.Passes_local.bitop_simplify);
    ("strength_reduce", Tessera_opt.Passes_local.strength_reduce);
    ("induction_var", Tessera_opt.Passes_local.induction_var);
    ("dead_tree_elim", Tessera_opt.Passes_block.dead_tree_elim);
    ("unreachable_elim", Tessera_opt.Passes_block.unreachable_elim);
    ("branch_fold", Tessera_opt.Passes_block.branch_fold);
    ("jump_threading", Tessera_opt.Passes_block.jump_threading);
    ("throw_to_goto", Tessera_opt.Passes_block.throw_to_goto);
    ("return_merge", Tessera_opt.Passes_block.return_merge);
  ]
(* note: remat_constants / global_copy_prop chain (forwarding one
   definition can expose another), so they converge over repeated plan
   applications rather than in a single pass — deliberately not here *)

let test_pass_idempotence () =
  QCheck.Test.make ~count:40 ~name:"cleanup passes are idempotent"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let m = random_method seed in
      List.for_all
        (fun (name, pass) ->
          let once = pass m in
          let twice = pass once in
          if Meth.equal once twice then true
          else QCheck.Test.fail_reportf "pass %s is not idempotent" name)
        idempotent_passes)

(* Every pass preserves validator-cleanliness on random methods. *)
let test_passes_preserve_validity () =
  QCheck.Test.make ~count:25 ~name:"every pass preserves IR validity"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = gen_program (Int64.of_int (seed + 777)) in
      let ctx = { Catalog.program = p } in
      Array.for_all
        (fun (e : Catalog.entry) ->
          Array.for_all
            (fun m ->
              let m' = e.Catalog.run ctx m in
              match
                Tessera_il.Validate.check_method
                  ~classes:p.Program.classes
                  ~method_count:(Program.method_count p)
                  m'
              with
              | [] -> true
              | errs ->
                  QCheck.Test.fail_reportf "pass %s broke IR: %s"
                    e.Catalog.name
                    (Format.asprintf "%a" Tessera_il.Validate.pp_error
                       (List.hd errs)))
            p.Program.methods)
        Catalog.all)

(* Optimization never changes the feature vector the model sees: features
   are extracted before optimization, so extraction must be a pure
   function of the unoptimized method. *)
let test_feature_extraction_pure () =
  QCheck.Test.make ~count:50 ~name:"feature extraction is pure"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let m = random_method seed in
      Features.equal (Features.extract m) (Features.extract m))

(* Direct method-level differential: interp vs native on one random
   method with random arguments (complements the program-level test). *)
let test_single_method_differential () =
  QCheck.Test.make ~count:60 ~name:"interp = native per method"
    QCheck.(pair (int_bound 10_000) (int_bound 1000))
    (fun (seed, arg_seed) ->
      let m = random_method seed in
      let rng = Prng.create (Int64.of_int arg_seed) in
      let args =
        Array.map
          (fun ty ->
            match ty with
            | Types.Double -> Tessera_vm.Values.Float_v (Prng.float rng 10.0)
            | Types.Long ->
                Tessera_vm.Values.Int_v (Int64.of_int (Prng.int_in rng (-500) 500))
            | _ ->
                Tessera_vm.Values.Int_v (Int64.of_int (Prng.int_in rng (-50) 50)))
          m.Meth.params
      in
      let interp_outcome =
        let fuel = ref 50_000_000 in
        match
          Tessera_vm.Interp.run
            {
              Tessera_vm.Interp.classes = [||];
              charge = ignore;
              invoke = (fun _ _ -> Tessera_vm.Values.Int_v 1L);
              fuel;
            }
            m args
        with
        | v -> Ok v
        | exception Tessera_vm.Values.Trap k -> Error k
      in
      let native_outcome =
        let fuel = ref 50_000_000 in
        let code = Tessera_codegen.Lower.compile m in
        match
          Tessera_codegen.Exec.run
            {
              Tessera_codegen.Exec.classes = [||];
              charge = ignore;
              invoke = (fun _ _ -> Tessera_vm.Values.Int_v 1L);
              fuel;
            }
            code args
        with
        | v -> Ok v
        | exception Tessera_vm.Values.Trap k -> Error k
      in
      outcome_equal interp_outcome native_outcome)

(* Engine determinism: two engines with the same configuration agree on
   every observable. *)
let test_engine_determinism () =
  QCheck.Test.make ~count:10 ~name:"engine runs are deterministic"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p = gen_program (Int64.of_int (seed + 31)) in
      let run () =
        let e = Tessera_jit.Engine.create p in
        for k = 0 to 15 do
          ignore (Tessera_jit.Engine.invoke_entry e (entry_args k))
        done;
        ( Tessera_jit.Engine.app_cycles e,
          Tessera_jit.Engine.total_compile_cycles e,
          Tessera_jit.Engine.compile_count e )
      in
      run () = run ())

(* The pass manager's accounting is exact: every plan application lands
   in exactly one of applied / skipped / disabled, and disabled entries
   are precisely the modifier's disabled plan positions. *)
let test_manager_partitions_plan () =
  QCheck.Test.make ~count:25 ~name:"manager partitions the plan exactly"
    QCheck.(pair (int_bound 10_000) (int_bound 1_000_000))
    (fun (seed, mseed) ->
      let p = gen_program (Int64.of_int (seed + 99)) in
      let m = Program.meth p 1 in
      let rng = Prng.create (Int64.of_int mseed) in
      let modifier = Tessera_modifiers.Modifier.random rng ~density:0.3 in
      let plan = Tessera_opt.Plan.plan Tessera_opt.Plan.Hot in
      let r =
        Tessera_opt.Manager.optimize
          ~enabled:(Tessera_modifiers.Modifier.enabled_fun modifier)
          ~program:p ~plan m
      in
      let total =
        List.length r.Tessera_opt.Manager.applied
        + List.length r.Tessera_opt.Manager.skipped_inapplicable
        + List.length r.Tessera_opt.Manager.disabled
      in
      total = List.length plan
      && List.for_all
           (Tessera_modifiers.Modifier.disables modifier)
           r.Tessera_opt.Manager.disabled
      && List.for_all
           (fun i -> not (Tessera_modifiers.Modifier.disables modifier i))
           r.Tessera_opt.Manager.applied)

(* Under ANY fault spec — arbitrary drop/corrupt/dup/garbage rates and
   crash points — every prediction request terminates with a valid
   prediction, a default-plan fallback, or a breaker skip; the client
   never raises and its counters stay consistent. *)
let test_client_total_under_faults () =
  QCheck.Test.make ~count:40 ~name:"client is total under any fault spec"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let module Channel = Tessera_protocol.Channel in
      let module Server = Tessera_protocol.Server in
      let module Client = Tessera_protocol.Client in
      let module Spec = Tessera_faults.Spec in
      let module Injector = Tessera_faults.Injector in
      let rng = Prng.create (Int64.of_int (seed + 13)) in
      let spec =
        {
          Spec.default with
          Spec.drop = Prng.float rng 0.4;
          corrupt = Prng.float rng 0.4;
          dup = Prng.float rng 0.3;
          garbage = Prng.float rng 0.3;
          crash_after =
            (if Prng.bernoulli rng 0.5 then Some (1 + Prng.int rng 12) else None);
          revive_after =
            (if Prng.bernoulli rng 0.5 then Some (1 + Prng.int rng 20) else None);
        }
      in
      let inj_seed = Prng.next_int64 rng in
      let server_raw, client_raw = Channel.pipe_pair () in
      let server_inj = Injector.create ~spec ~seed:inj_seed () in
      let client_inj =
        Injector.create ~spec:(Spec.no_crash spec)
          ~seed:(Int64.add inj_seed 1L) ()
      in
      let server_ch = Injector.wrap_channel server_inj server_raw in
      let client_ch = Injector.wrap_channel client_inj client_raw in
      let predictor ~level:_ ~features =
        Tessera_modifiers.Modifier.of_disabled [ Array.length features mod 58 ]
      in
      let lockstep () =
        try ignore (Server.step server_ch predictor)
        with Channel.Closed | Channel.Timeout -> ()
      in
      let config = { Client.default_config with Client.log = ignore } in
      let client =
        Client.connect ~model_name:"prop" ~lockstep ~config client_ch
      in
      let resolved = ref 0 in
      for i = 0 to 19 do
        match
          Client.predict_result client
            ~level:(Prng.choose rng Tessera_opt.Plan.levels)
            ~features:(Array.make (1 + (i mod 5)) 0.5)
        with
        | Client.Predicted _ | Client.Fallback _ | Client.Breaker_skip ->
            incr resolved
      done;
      let k = Client.counters client in
      !resolved = 20
      && k.Client.predicted + k.Client.fallbacks + k.Client.breaker_skips
         = k.Client.requests)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      test_pass_idempotence ();
      test_passes_preserve_validity ();
      test_feature_extraction_pure ();
      test_single_method_differential ();
      test_engine_determinism ();
      test_manager_partitions_plan ();
      test_client_total_under_faults ();
    ]
