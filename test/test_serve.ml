(* The concurrent serving layer: Conn's incremental decoder, the Serve
   engine's backpressure / shedding / error-budget / drain behaviour,
   the supervised workers, and the interleaving property that concurrent
   fault-injected connections never corrupt each other's replies. *)

module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Tracectx = Tessera_protocol.Tracectx
module Conn = Tessera_protocol.Conn
module Serve = Tessera_protocol.Serve
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Spec = Tessera_faults.Spec
module Injector = Tessera_faults.Injector
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Prng = Tessera_util.Prng

let msg_testable = Alcotest.testable Message.pp Message.equal

let null_predictor _wid ~level:_ rows =
  Array.map (fun (_ : float array) -> Modifier.null) rows

(* a predictor that echoes features.(0) back inside the modifier, so a
   reply's owner is checkable end to end *)
let echo_predictor _wid ~level:_ rows =
  Array.map
    (fun (f : float array) ->
      Modifier.of_bits (Int64.of_float (if Array.length f > 0 then f.(0) else 0.0)))
    rows

let predict ?(tag = 0.0) level =
  Message.Predict
    { level; features = [| tag; 1.0; 2.0 |]; trace = Tracectx.none }

(* ------------------------------------------------------------------ *)
(* Conn                                                                *)
(* ------------------------------------------------------------------ *)

let test_conn_partial_frames () =
  let a, b = Channel.pipe_pair () in
  let conn = Conn.create ~id:0 b in
  let wire = Message.encode (predict Plan.Hot) in
  let half = String.length wire / 2 in
  Channel.write a (String.sub wire 0 half);
  Alcotest.(check int) "half a frame yields nothing" 0
    (List.length (Conn.pump conn));
  Channel.write a (String.sub wire half (String.length wire - half));
  (match Conn.pump conn with
  | [ Conn.Msg m ] ->
      Alcotest.check msg_testable "reassembled" (predict Plan.Hot) m
  | evs -> Alcotest.fail (Printf.sprintf "expected 1 Msg, got %d events"
                            (List.length evs)));
  Alcotest.(check int) "no strikes" 0 (Conn.strikes conn)

let test_conn_garbage_resync () =
  let a, b = Channel.pipe_pair () in
  let conn = Conn.create ~id:0 b in
  Channel.write a "this is not a frame";
  Channel.write a (Message.encode Message.Ping);
  let events = Conn.pump conn in
  let msgs =
    List.filter_map (function Conn.Msg m -> Some m | _ -> None) events
  in
  let strikes =
    List.length
      (List.filter (function Conn.Strike _ -> true | _ -> false) events)
  in
  Alcotest.(check (list msg_testable)) "frame after garbage decodes"
    [ Message.Ping ] msgs;
  Alcotest.(check bool) "garbage struck" true (strikes >= 1);
  Alcotest.(check bool) "still active" true (Conn.state conn = Conn.Active)

let test_conn_resync_exhaustion () =
  let a, b = Channel.pipe_pair () in
  let conn = Conn.create ~resync_budget:8 ~id:0 b in
  Channel.write a (String.make 64 'x');
  let events = Conn.pump conn in
  Alcotest.(check bool) "ends with Eof" true
    (match List.rev events with Conn.Eof :: _ -> true | _ -> false);
  Alcotest.(check bool) "closed" true (Conn.state conn = Conn.Closed);
  Alcotest.(check (list msg_testable)) "nothing decoded after close" []
    (List.filter_map (function Conn.Msg m -> Some m | _ -> None)
       (Conn.pump conn))

let test_conn_frame_cap () =
  let a, b = Channel.pipe_pair () in
  let conn = Conn.create ~id:0 b in
  for _ = 1 to 5 do Message.send a Message.Ping done;
  Alcotest.(check int) "capped at 2 frames" 2
    (List.length (Conn.pump ~max_frames:2 conn));
  Alcotest.(check int) "rest stays buffered" 3
    (List.length (Conn.pump conn))

(* ------------------------------------------------------------------ *)
(* Serve                                                               *)
(* ------------------------------------------------------------------ *)

let mk_engine ?(config = Serve.default_config) ?(predictor = null_predictor) ()
    =
  Serve.create ~config ~make_predictor:predictor ()

let attach engine =
  let server_end, client_end = Channel.pipe_pair () in
  match Serve.accept engine server_end with
  | Some conn -> (conn, client_end)
  | None -> Alcotest.fail "accept refused"

let drain_replies ch =
  let rx = Conn.create ~id:999 ch in
  List.filter_map (function Conn.Msg m -> Some m | _ -> None) (Conn.pump rx)

let tick_n engine n = for _ = 1 to n do ignore (Serve.tick engine) done

let test_serve_session () =
  let engine = mk_engine () in
  let _conn, ch = attach engine in
  Message.send ch (Message.Init { model_name = "t" });
  Message.send ch Message.Ping;
  Message.send ch (predict Plan.Warm);
  tick_n engine 3;
  Alcotest.(check (list msg_testable)) "handshake, pong, prediction"
    [ Message.Init_ok; Message.Pong;
      Message.Prediction { modifier = Modifier.null; trace = Tracectx.none } ]
    (drain_replies ch);
  Alcotest.(check int) "one prediction counted" 1
    (Serve.counters engine).Serve.predictions

let test_serve_backpressure_not_shed () =
  (* a connection that batches 6 predicts at a 2-deep bound is decoded
     two frames per tick — never shed, never lost *)
  let config =
    { Serve.default_config with Serve.per_conn_queue = 2; queue_hwm = 100 }
  in
  let engine = mk_engine ~config () in
  let _conn, ch = attach engine in
  for _ = 1 to 6 do Message.send ch (predict Plan.Hot) done;
  tick_n engine 10;
  let preds =
    List.length
      (List.filter
         (function Message.Prediction _ -> true | _ -> false)
         (drain_replies ch))
  in
  Alcotest.(check int) "all six answered" 6 preds;
  Alcotest.(check int) "none shed" 0 (Serve.counters engine).Serve.shed

let test_serve_global_hwm_sheds () =
  let config =
    {
      Serve.default_config with
      Serve.per_conn_queue = 8;
      queue_hwm = 2;
      workers = 1;
      max_batch = 2;
    }
  in
  let engine = mk_engine ~config () in
  let chans = List.init 6 (fun _ -> snd (attach engine)) in
  List.iter (fun ch -> Message.send ch (predict Plan.Hot)) chans;
  ignore (Serve.tick engine);
  let replies = List.concat_map drain_replies chans in
  let count p = List.length (List.filter p replies) in
  Alcotest.(check int) "overload answered, not silent" 4
    (count (function Message.Overloaded -> true | _ -> false));
  Alcotest.(check int) "shed counter agrees" 4
    (Serve.counters engine).Serve.shed;
  tick_n engine 3;
  Alcotest.(check int) "queued two still answered" 2
    ((Serve.counters engine).Serve.predictions)

let test_serve_error_budget () =
  let config = { Serve.default_config with Serve.max_protocol_errors = 3 } in
  let engine = mk_engine ~config () in
  let conn, ch = attach engine in
  (* client->server Pong is well-formed but contextually wrong *)
  for _ = 1 to 3 do
    Message.send ch Message.Pong;
    ignore (Serve.tick engine)
  done;
  Alcotest.(check bool) "still open inside the budget" true
    (Conn.state conn <> Conn.Closed);
  Message.send ch Message.Pong;
  ignore (Serve.tick engine);
  Alcotest.(check bool) "struck out past the budget" true
    (Conn.state conn = Conn.Closed);
  Alcotest.(check int) "struck_out counted" 1
    (Serve.counters engine).Serve.struck_out;
  let errors =
    List.filter
      (function Message.Error_msg _ -> true | _ -> false)
      (drain_replies ch)
  in
  Alcotest.(check bool) "every strike was answered" true
    (List.length errors >= 4)

let test_serve_worker_restart () =
  let generation = ref 0 in
  let make_predictor _wid =
    incr generation;
    let gen = !generation in
    fun ~level:_ rows ->
      if gen = 1 then failwith "injected crash";
      Array.map (fun (_ : float array) -> Modifier.null) rows
  in
  let config = { Serve.default_config with Serve.workers = 1 } in
  let engine = Serve.create ~config ~make_predictor () in
  let _conn, ch = attach engine in
  Message.send ch (predict Plan.Hot);
  tick_n engine 3;
  Alcotest.(check int) "restarted once" 1
    (Serve.counters engine).Serve.worker_restarts;
  Alcotest.(check (list msg_testable)) "retried on the fresh worker"
    [ Message.Prediction { modifier = Modifier.null; trace = Tracectx.none } ]
    (drain_replies ch)

let test_serve_conn_shutdown () =
  let engine = mk_engine () in
  let conn, ch = attach engine in
  Message.send ch (predict Plan.Hot);
  Message.send ch Message.Shutdown;
  tick_n engine 3;
  Alcotest.(check (list msg_testable)) "queued predict answered before close"
    [ Message.Prediction { modifier = Modifier.null; trace = Tracectx.none } ]
    (drain_replies ch);
  Alcotest.(check bool) "connection retired" true
    (Conn.state conn = Conn.Closed);
  Alcotest.(check int) "engine roster empty" 0 (Serve.connection_count engine);
  Alcotest.(check int) "retirement counted exactly once" 1
    (Serve.counters engine).Serve.conns_closed

let test_serve_graceful_drain () =
  let config =
    { Serve.default_config with Serve.workers = 1; max_batch = 1 }
  in
  let engine = mk_engine ~config () in
  let clients = List.init 4 (fun _ -> attach engine) in
  List.iter (fun (_, ch) -> Message.send ch (predict Plan.Cold)) clients;
  ignore (Serve.tick engine) (* requests are queued *);
  Serve.drain engine;
  (* new connections are refused during drain, queued work is answered *)
  Alcotest.(check bool) "accept refused while draining" true
    (Serve.accept engine (fst (Channel.pipe_pair ())) = None);
  Alcotest.(check bool) "drain finishes in time" true
    (Serve.finish_drain ~deadline_s:5.0 engine);
  List.iter
    (fun (_, ch) ->
      let preds =
        List.filter
          (function Message.Prediction _ -> true | _ -> false)
          (drain_replies ch)
      in
      Alcotest.(check int) "queued request answered through drain" 1
        (List.length preds))
    clients;
  Alcotest.(check int) "every connection closed" 0
    (Serve.connection_count engine)

let test_serve_drain_deadline () =
  (* a virtual clock that jumps far past the deadline on every read
     makes the flush impossible: finish_drain must report false, not
     spin *)
  let vnow = ref 0.0 in
  let config =
    {
      Serve.default_config with
      Serve.workers = 1;
      max_batch = 1;
      now = (fun () -> vnow := !vnow +. 10.0; !vnow);
    }
  in
  let engine = mk_engine ~config () in
  let _conn, ch = attach engine in
  for _ = 1 to 4 do Message.send ch (predict Plan.Hot) done;
  ignore (Serve.tick engine);
  Alcotest.(check bool) "deadline exceeded is reported" false
    (Serve.finish_drain ~deadline_s:5.0 engine)

(* ------------------------------------------------------------------ *)
(* Cross-connection isolation (the satellite qcheck property)           *)
(* ------------------------------------------------------------------ *)

(* N concurrent connections, each with an independent fault spec, each
   tagging its requests with its own id: every Prediction a client
   manages to decode must carry its own tag — faults on neighbouring
   connections (or on its own!) may lose replies but never cross wires
   or corrupt a decoded one. *)
let test_isolation_property () =
  QCheck.Test.make ~count:40
    ~name:"fault-injected connections never corrupt each other's replies"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let n = 2 + Prng.int rng 6 in
      let config =
        { Serve.default_config with Serve.workers = 1 + Prng.int rng 3 }
      in
      let engine = Serve.create ~config ~make_predictor:echo_predictor () in
      let clients =
        Array.init n (fun i ->
            let server_end, client_end = Channel.pipe_pair () in
            let spec =
              {
                Spec.default with
                Spec.corrupt = Prng.float rng 0.4;
                garbage = Prng.float rng 0.3;
                drop = Prng.float rng 0.3;
              }
            in
            let wrapped =
              if i mod 2 = 0 then
                Injector.wrap_channel
                  (Injector.create
                     ~sleep:(fun _ -> ())
                     ~spec
                     ~seed:(Int64.of_int (seed + i))
                     ())
                  server_end
              else server_end
            in
            (match Serve.accept engine wrapped with
            | Some _ -> ()
            | None -> QCheck.Test.fail_report "accept refused");
            (client_end, Conn.create ~id:i client_end))
      in
      let ok = ref true in
      let rounds = 12 in
      for _ = 1 to rounds do
        Array.iteri
          (fun i (ch, _) ->
            try
              Message.send ch
                (Message.Predict
                   {
                     level = Plan.Hot;
                     features = [| float_of_int (i + 1); 0.0 |];
                     trace = Tracectx.none;
                   })
            with Channel.Closed -> ())
          clients;
        ignore (Serve.tick engine);
        Array.iteri
          (fun i (_, rx) ->
            List.iter
              (function
                | Conn.Msg (Message.Prediction { modifier; _ }) ->
                    if Modifier.to_bits modifier <> Int64.of_int (i + 1) then
                      ok := false
                | _ -> ())
              (Conn.pump rx))
          clients
      done;
      ignore (Serve.finish_drain ~deadline_s:5.0 engine);
      !ok)

(* ------------------------------------------------------------------ *)
(* Server (single-channel) session strikes and client Overloaded        *)
(* ------------------------------------------------------------------ *)

let test_server_step_session_strikes () =
  let server_ch, client_ch = Channel.pipe_pair () in
  let predictor ~level:_ ~features:_ = Modifier.null in
  let session = Server.session ~max_protocol_errors:2 () in
  (* two unexpected messages are answered and tolerated *)
  Message.send client_ch Message.Pong;
  Alcotest.(check bool) "first strike tolerated" true
    (Server.step ~session server_ch predictor);
  Message.send client_ch Message.Pong;
  Alcotest.(check bool) "second strike tolerated" true
    (Server.step ~session server_ch predictor);
  (* the third exhausts the budget: the step loop ends *)
  Message.send client_ch Message.Pong;
  Alcotest.(check bool) "third strike ends the session" false
    (Server.step ~session server_ch predictor);
  Alcotest.(check int) "strikes counted" 3 (Server.strikes session);
  (* three "unexpected message" answers plus the final "budget
     exhausted" goodbye *)
  let replies = drain_replies client_ch in
  Alcotest.(check int) "every strike answered with Error_msg" 4
    (List.length
       (List.filter
          (function Message.Error_msg _ -> true | _ -> false)
          replies))

let test_client_overloaded_fallback () =
  let server_ch, client_ch = Channel.pipe_pair () in
  (* a server that answers the handshake but sheds every prediction *)
  let lockstep () =
    match Message.decode_from server_ch with
    | Message.Init _ -> Message.send server_ch Message.Init_ok
    | Message.Predict _ -> Message.send server_ch Message.Overloaded
    | _ -> ()
  in
  let client = Client.connect ~model_name:"t" ~lockstep client_ch in
  (match Client.predict_result client ~level:Plan.Hot ~features:[| 1.0 |] with
  | Client.Fallback Client.Overloaded -> ()
  | Client.Predicted _ -> Alcotest.fail "predicted instead of falling back"
  | Client.Fallback f -> Alcotest.fail ("wrong failure: " ^ Client.failure_name f)
  | Client.Breaker_skip -> Alcotest.fail "breaker skipped the request");
  let c = Client.counters client in
  Alcotest.(check int) "overloaded counted" 1 c.Client.overloaded;
  Alcotest.(check int) "shed requests are not retried into the overload" 0
    c.Client.retries

let suite =
  List.map QCheck_alcotest.to_alcotest [ test_isolation_property () ]
  @ [
      Alcotest.test_case "conn: partial frames reassemble" `Quick
        test_conn_partial_frames;
      Alcotest.test_case "conn: garbage strikes, then resyncs" `Quick
        test_conn_garbage_resync;
      Alcotest.test_case "conn: resync exhaustion closes" `Quick
        test_conn_resync_exhaustion;
      Alcotest.test_case "conn: frame cap leaves input buffered" `Quick
        test_conn_frame_cap;
      Alcotest.test_case "serve: handshake, ping, predict" `Quick
        test_serve_session;
      Alcotest.test_case "serve: batched sends backpressure, not shed" `Quick
        test_serve_backpressure_not_shed;
      Alcotest.test_case "serve: global high-water mark sheds Overloaded"
        `Quick test_serve_global_hwm_sheds;
      Alcotest.test_case "serve: protocol error budget closes the peer"
        `Quick test_serve_error_budget;
      Alcotest.test_case "serve: crashed worker restarts, batch retried"
        `Quick test_serve_worker_restart;
      Alcotest.test_case "serve: per-connection shutdown flushes then closes"
        `Quick test_serve_conn_shutdown;
      Alcotest.test_case "serve: graceful drain answers queued work" `Quick
        test_serve_graceful_drain;
      Alcotest.test_case "serve: drain deadline is honoured" `Quick
        test_serve_drain_deadline;
      Alcotest.test_case "server: session strikes end the step loop" `Quick
        test_server_step_session_strikes;
      Alcotest.test_case "client: Overloaded reply reaches the wire" `Quick
        test_client_overloaded_fallback;
    ]

(* ------------------------------------------------------------------ *)
(* Request tracing through the serving engine                           *)
(* ------------------------------------------------------------------ *)

module Trace = Tessera_obs.Trace

let with_trace f =
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Trace.clear_cycle_source ())
    f

let trace_arg e =
  match List.assoc_opt "trace" e.Trace.args with
  | Some (Trace.Int i) -> Some (Int64.to_int i)
  | _ -> None

let rec cycles_monotone = function
  | a :: (b :: _ as rest) ->
      Int64.compare a.Trace.cycles b.Trace.cycles <= 0 && cycles_monotone rest
  | _ -> true

(* One lockstep client over one engine: the client's end-to-end
   [request] root and the server's queue/batch/predict/reply children
   share a trace id and the engine's virtual clock. *)
let test_traced_request_full_tree () =
  with_trace (fun () ->
      let engine = mk_engine () in
      Trace.set_cycle_source (fun () -> Serve.vcycles engine);
      let _conn, ch = attach engine in
      let client =
        Client.connect ~model_name:"traced"
          ~lockstep:(fun () -> tick_n engine 4)
          ch
      in
      ignore (Client.predict client ~level:Plan.Warm ~features:[| 1.0; 2.0 |]);
      let events = Trace.events () in
      let roots =
        List.filter
          (fun e -> e.Trace.cat = "protocol" && e.Trace.name = "request")
          events
      in
      (match roots with
      | [ b; e ] ->
          Alcotest.(check bool) "root opens then closes" true
            (b.Trace.ph = Trace.Span_begin && e.Trace.ph = Trace.Span_end)
      | l ->
          Alcotest.failf "expected one request B/E pair, got %d events"
            (List.length l));
      let root_trace =
        match trace_arg (List.hd roots) with
        | Some id -> id
        | None -> Alcotest.fail "request span carries no trace id"
      in
      List.iter
        (fun name ->
          let spans =
            List.filter
              (fun e -> e.Trace.cat = "serve" && e.Trace.name = name)
              events
          in
          Alcotest.(check int) (name ^ " has a B/E pair") 2
            (List.length spans);
          List.iter
            (fun e ->
              Alcotest.(check (option int)) (name ^ " shares the trace id")
                (Some root_trace) (trace_arg e))
            spans)
        [ "queue_wait"; "batch_wait"; "predict"; "reply" ];
      Alcotest.(check bool) "server spans ride a monotone virtual clock" true
        (cycles_monotone
           (List.filter (fun e -> e.Trace.cat = "serve") events)))

(* qcheck: across a mixed fleet (several clients, varying request
   counts, optional garbage preamble, untraced traffic interleaved),
   every accepted traced request yields exactly one well-formed span
   tree, and untraced requests emit nothing. *)
let test_span_tree_property () =
  QCheck.Test.make ~count:25
    ~name:"every accepted traced request yields a well-formed span tree"
    QCheck.(pair (list_of_size Gen.(1 -- 4) (int_bound 3)) bool)
    (fun (fleet, garbage) ->
      with_trace (fun () ->
          let engine = mk_engine ~predictor:echo_predictor () in
          Trace.set_cycle_source (fun () -> Serve.vcycles engine);
          let sent = ref [] in
          List.iteri
            (fun i n ->
              let _conn, ch = attach engine in
              if garbage && i = 0 then Channel.write ch "not a frame at all";
              for k = 1 to n do
                let ctx = Tracectx.fresh () in
                sent := ctx.Tracectx.trace_id :: !sent;
                Message.send ch
                  (Message.Predict
                     {
                       level = Plan.levels.(k mod Array.length Plan.levels);
                       features = [| float_of_int k; 1.0 |];
                       trace = ctx;
                     })
              done;
              (* untraced traffic must not emit serve spans *)
              Message.send ch (predict Plan.Cold))
            fleet;
          tick_n engine 40;
          let serve_evs =
            List.filter (fun e -> e.Trace.cat = "serve") (Trace.events ())
          in
          let ids =
            List.sort_uniq compare (List.filter_map trace_arg serve_evs)
          in
          let expected = List.sort_uniq compare !sent in
          if ids <> expected then
            QCheck.Test.fail_reportf
              "span trace ids disagree with sent ids: %d vs %d"
              (List.length ids) (List.length expected)
          else
            List.for_all
              (fun id ->
                let evs =
                  List.filter (fun e -> trace_arg e = Some id) serve_evs
                in
                let count name ph =
                  List.length
                    (List.filter
                       (fun e -> e.Trace.name = name && e.Trace.ph = ph)
                       evs)
                in
                let pair_of name =
                  count name Trace.Span_begin = 1
                  && count name Trace.Span_end = 1
                in
                let starts_queued =
                  match evs with
                  | e :: _ ->
                      e.Trace.name = "queue_wait"
                      && e.Trace.ph = Trace.Span_begin
                  | [] -> false
                in
                pair_of "queue_wait" && pair_of "batch_wait"
                && pair_of "predict" && pair_of "reply"
                && count "request_dropped" Trace.Instant = 0
                && starts_queued && cycles_monotone evs)
              expected))

(* ------------------------------------------------------------------ *)
(* SLO burn rate                                                        *)
(* ------------------------------------------------------------------ *)

(* The burn-rate window is a delta against the oldest retained
   latency-histogram snapshot, so requests must land after the first
   tick to be counted — spread them over rounds. *)
let run_slo_fleet advance =
  let now = ref 0.0 in
  let config =
    {
      Serve.default_config with
      Serve.now =
        (fun () ->
          let t = !now in
          now := t +. advance;
          t);
      slo_objective_s = 0.01;
      slo_target = 0.9;
      slo_window = 16;
    }
  in
  let engine = mk_engine ~config () in
  let _conn, ch = attach engine in
  for _ = 1 to 4 do
    Message.send ch (predict Plan.Warm);
    Message.send ch (predict Plan.Warm);
    ignore (Serve.tick engine)
  done;
  ignore (Serve.tick engine);
  Serve.slo_burn_rate engine

let test_slo_burn_rate () =
  Alcotest.(check (float 1e-9)) "fast answers burn nothing" 0.0
    (run_slo_fleet 1e-6);
  Alcotest.(check bool) "slow answers burn past the budget" true
    (run_slo_fleet 0.05 > 1.0)

let suite =
  suite
  @ [
      Alcotest.test_case "traced request renders a full span tree" `Quick
        test_traced_request_full_tree;
      QCheck_alcotest.to_alcotest (test_span_tree_property ());
      Alcotest.test_case "slo burn rate tracks the latency objective"
        `Quick test_slo_burn_rate;
    ]
