module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module PL = Tessera_opt.Passes_local
module PB = Tessera_opt.Passes_block
module PLoop = Tessera_opt.Passes_loop
module PG = Tessera_opt.Passes_global
module Catalog = Tessera_opt.Catalog
module Plan = Tessera_opt.Plan
module Manager = Tessera_opt.Manager

let ic v = Node.iconst Types.Int (Int64.of_int v)
let ld s = Node.load_sym Types.Int s
let add a b = Node.binop Opcode.Add Types.Int a b
let mul a b = Node.binop Opcode.Mul Types.Int a b

let mk_method ?(symbols = [| Symbol.temp "t0" Types.Int; Symbol.temp "t1" Types.Int |])
    blocks =
  let m = Meth.make ~name:"T.t()I" ~params:[||] ~ret:Types.Int ~symbols blocks in
  Tessera_il.Validate.assert_valid_method m;
  m

let one_block ?symbols stmts ret =
  mk_method ?symbols [| Block.make 0 stmts (Block.Return (Some ret)) |]

let count_op m op =
  Meth.fold_nodes
    (fun acc (n : Node.t) -> if n.Node.op = op then acc + 1 else acc)
    0 m

let test_const_fold () =
  let m = one_block [] (add (ic 2) (mul (ic 3) (ic 4))) in
  let m' = PL.const_fold m in
  Alcotest.(check int) "folded to one const" 1 (Meth.tree_count m');
  Alcotest.(check int) "no adds left" 0 (count_op m' Opcode.Add);
  (* trapping division must not fold *)
  let m =
    one_block []
      (Node.binop Opcode.Div Types.Int (ic 1) (ic 0))
  in
  let m' = PL.const_fold m in
  Alcotest.(check int) "div by zero kept" 1 (count_op m' Opcode.Div)

let test_simplify_identities () =
  let x = ld 0 in
  let m = one_block [] (add x (ic 0)) in
  Alcotest.(check int) "x+0 = x" 1 (Meth.tree_count (PL.simplify m));
  let m = one_block [] (mul x (ic 1)) in
  Alcotest.(check int) "x*1 = x" 1 (Meth.tree_count (PL.simplify m));
  let m = one_block [] (mul x (ic 0)) in
  Alcotest.(check int) "x*0 = 0 (pure x)" 1 (Meth.tree_count (PL.simplify m));
  let m = one_block [] (Node.mk Opcode.Neg Types.Int [| Node.mk Opcode.Neg Types.Int [| x |] |]) in
  Alcotest.(check int) "neg neg x = x" 1 (Meth.tree_count (PL.simplify m));
  (* impure operand blocks x*0 *)
  let call = Node.call Types.Int ~callee:0 [||] in
  let m =
    mk_method
      [| Block.make 0 [] (Block.Return (Some (mul call (ic 0)))) |]
  in
  Alcotest.(check int) "impure x*0 kept" 1 (count_op (PL.simplify m) Opcode.Mul)

let test_strength_reduce () =
  let m = one_block [] (mul (ld 0) (ic 8)) in
  let m' = PL.strength_reduce m in
  Alcotest.(check int) "mul by 8 -> shift" 0 (count_op m' Opcode.Mul);
  Alcotest.(check int) "shift introduced" 1 (count_op m' (Opcode.Shift Opcode.Shl));
  let m = one_block [] (mul (ld 0) (ic 6)) in
  Alcotest.(check int) "mul by 6 kept" 1 (count_op (PL.strength_reduce m) Opcode.Mul)

let test_reassociate () =
  let m = one_block [] (add (add (ld 0) (ic 3)) (ic 4)) in
  let m' = PL.const_fold (PL.reassociate m) in
  (* (x+3)+4 -> x+7 *)
  Alcotest.(check int) "one add left" 1 (count_op m' Opcode.Add);
  Alcotest.(check int) "three nodes" 3 (Meth.tree_count m')

let test_induction_var () =
  let m =
    one_block
      [ Node.store_sym 0 (add (ld 0) (ic 1)) ]
      (ld 0)
  in
  let m' = PL.induction_var m in
  Alcotest.(check int) "store became inc" 1 (count_op m' Opcode.Inc);
  Alcotest.(check int) "store gone" 0 (count_op m' Opcode.Store)

let test_dead_code () =
  let m =
    one_block
      [
        ld 1 (* pure statement: dead tree *);
        Node.store_sym 1 (ic 7) (* t1 never loaded after: dead store *);
      ]
      (ld 0)
  in
  let m' = PB.dead_tree_elim m in
  Alcotest.(check int) "pure stmt dropped" 1
    (List.length m'.Meth.blocks.(0).Block.stmts);
  let m'' = PB.dead_store_elim m' in
  Alcotest.(check int) "dead store dropped" 0
    (List.length m''.Meth.blocks.(0).Block.stmts)

let test_local_cse () =
  let shared () = mul (ld 0) (add (ld 0) (ic 3)) in
  let m =
    mk_method
      ~symbols:[| Symbol.temp "a" Types.Int; Symbol.temp "b" Types.Int; Symbol.temp "c" Types.Int |]
      [|
        Block.make 0
          [
            Node.store_sym 1 (add (shared ()) (ic 1));
            Node.store_sym 2 (add (shared ()) (ic 2));
          ]
          (Block.Return (Some (add (ld 1) (ld 2))));
      |]
  in
  let m' = PB.local_cse m in
  Alcotest.(check bool) "introduced a cse temp" true
    (Array.length m'.Meth.symbols > Array.length m.Meth.symbols);
  Alcotest.(check bool) "fewer multiplies" true
    (count_op m' Opcode.Mul < count_op m Opcode.Mul)

let test_cse_respects_kills () =
  (* the shared expression reads t0, which is stored between uses *)
  let shared () = mul (ld 0) (ic 5) in
  let m =
    mk_method
      ~symbols:[| Symbol.temp "a" Types.Int; Symbol.temp "b" Types.Int; Symbol.temp "c" Types.Int |]
      [|
        Block.make 0
          [
            Node.store_sym 1 (add (shared ()) (ic 1));
            Node.store_sym 0 (ic 9);
            Node.store_sym 2 (add (shared ()) (ic 2));
          ]
          (Block.Return (Some (add (ld 1) (ld 2))));
      |]
  in
  let m' = PB.local_cse m in
  Alcotest.(check int) "both multiplies kept" 2 (count_op m' Opcode.Mul)

let test_copy_and_const_prop () =
  let m =
    one_block
      [ Node.store_sym 1 (ic 5); Node.store_sym 0 (add (ld 1) (ld 1)) ]
      (ld 0)
  in
  let m' = PL.const_fold (PB.local_const_prop m) in
  (* t1=5; t0 = 5+5 -> 10 *)
  let has_ten =
    Meth.fold_nodes
      (fun acc (n : Node.t) ->
        acc || (n.Node.op = Opcode.Loadconst && n.Node.const = 10L))
      false m'
  in
  Alcotest.(check bool) "const propagated and folded" true has_ten

let test_branch_fold () =
  let m =
    mk_method
      [|
        Block.make 0 [] (Block.If { cond = ic 1; if_true = 1; if_false = 2 });
        Block.make 1 [] (Block.Return (Some (ic 10)));
        Block.make 2 [] (Block.Return (Some (ic 20)));
      |]
  in
  let m' = PB.unreachable_elim (PB.branch_fold m) in
  Alcotest.(check int) "one path left" 2 (Array.length m'.Meth.blocks)

let test_block_merge () =
  let m =
    mk_method
      [|
        Block.make 0 [ Node.store_sym 0 (ic 1) ] (Block.Goto 1);
        Block.make 1 [ Node.store_sym 1 (ic 2) ] (Block.Return (Some (ld 0)));
      |]
  in
  let m' = PB.block_merge m in
  Alcotest.(check int) "merged to one block" 1 (Array.length m'.Meth.blocks);
  Alcotest.(check int) "both stmts kept" 2
    (List.length m'.Meth.blocks.(0).Block.stmts)

let test_throw_to_goto () =
  let m =
    mk_method
      [|
        Block.make 0 [] (Block.Goto 1);
        Block.make ~handler:(Some 2) 1 []
          (Block.Throw (Node.mk Opcode.Throw_op Types.Void [||]));
        Block.make 2 [] (Block.Return (Some (ic 7)));
      |]
  in
  let m' = PB.throw_to_goto m in
  (match m'.Meth.blocks.(1).Block.term with
  | Block.Goto 2 -> ()
  | _ -> Alcotest.fail "throw not rewritten to goto handler");
  (* without a handler the throw must stay *)
  let m2 =
    mk_method
      [|
        Block.make 0 []
          (Block.Throw (Node.mk Opcode.Throw_op Types.Void [||]));
      |]
  in
  match (PB.throw_to_goto m2).Meth.blocks.(0).Block.term with
  | Block.Throw _ -> ()
  | _ -> Alcotest.fail "handler-less throw must be preserved"

let counted_loop ?(ret_sym = 1) ~body_stmts () =
  (* i = 0; do { body; i++ } while (i < 10) *)
  mk_method
    ~symbols:
      [| Symbol.temp "i" Types.Int; Symbol.temp "acc" Types.Int;
         Symbol.temp "x" Types.Int; Symbol.temp "out" Types.Int |]
    [|
      Block.make 0 [ Node.store_sym 0 (ic 0); Node.store_sym 2 (ic 3) ] (Block.Goto 1);
      Block.make 1
        (body_stmts @ [ Node.mk ~sym:0 ~const:1L Opcode.Inc Types.Void [||] ])
        (Block.If
           {
             cond = Node.binop (Opcode.Compare Opcode.Lt) Types.Int (ld 0) (ic 10);
             if_true = 1;
             if_false = 2;
           });
      Block.make 2 [] (Block.Return (Some (ld ret_sym)));
    |]

let test_licm_hoists () =
  (* acc is loop-local (loaded only inside the loop), defined from the
     loop-invariant x; the loop's visible result accumulates into out *)
  let m =
    counted_loop ~ret_sym:3
      ~body_stmts:
        [
          Node.store_sym 1 (mul (ld 2) (ic 7));
          Node.store_sym 3 (add (ld 3) (ld 1));
        ]
      ()
  in
  let m' = PLoop.licm m in
  Alcotest.(check bool) "a block was added (preheader)" true
    (Array.length m'.Meth.blocks > Array.length m.Meth.blocks);
  (* the multiply no longer sits in a loop block *)
  let la = Tessera_opt.Loops.analyze m' in
  let in_loop = List.concat_map (fun l -> l.Tessera_opt.Loops.body) la.Tessera_opt.Loops.loops in
  let mul_in_loop =
    Array.exists
      (fun (b : Block.t) ->
        List.mem b.Block.id in_loop
        && List.exists
             (fun s -> Node.exists (fun n -> n.Node.op = Opcode.Mul) s)
             b.Block.stmts)
      m'.Meth.blocks
  in
  Alcotest.(check bool) "invariant hoisted out of loop" false mul_in_loop

let test_licm_respects_variance () =
  (* body multiplies by i, which the loop stores: must NOT hoist *)
  let m = counted_loop ~body_stmts:[ Node.store_sym 1 (mul (ld 0) (ic 7)) ] () in
  let m' = PLoop.licm m in
  Alcotest.(check int) "no preheader added" (Array.length m.Meth.blocks)
    (Array.length m'.Meth.blocks)

let test_unroll () =
  let m = counted_loop ~body_stmts:[ Node.store_sym 1 (add (ld 1) (ld 0)) ] () in
  let m' = PLoop.unroll ~factor:2 m in
  Alcotest.(check int) "one copy appended"
    (Array.length m.Meth.blocks + 1)
    (Array.length m'.Meth.blocks)

let test_catalog_shape () =
  Alcotest.(check int) "58 transformations" 58 Catalog.count;
  let names = Hashtbl.create 64 in
  Array.iter
    (fun (e : Catalog.entry) ->
      Alcotest.(check bool)
        (e.Catalog.name ^ " unique")
        false
        (Hashtbl.mem names e.Catalog.name);
      Hashtbl.add names e.Catalog.name ();
      Alcotest.(check bool) "by_name finds it" true
        (Catalog.by_name e.Catalog.name <> None))
    Catalog.all

let test_plan_sizes () =
  Alcotest.(check int) "cold has ~20 applications" 20 (Plan.plan_length Plan.Cold);
  Alcotest.(check bool) "scorching has > 170" true
    (Plan.plan_length Plan.Scorching > 170);
  (* monotone growth *)
  let sizes = Array.map Plan.plan_length Plan.levels in
  Array.iteri
    (fun i s -> if i > 0 then Alcotest.(check bool) "monotone" true (s > sizes.(i - 1)))
    sizes;
  (* every plan index is a valid catalogue index *)
  Array.iter
    (fun level ->
      List.iter
        (fun i ->
          Alcotest.(check bool) "index valid" true (i >= 0 && i < Catalog.count))
        (Plan.plan level))
    Plan.levels

let test_manager_accounting () =
  let m = counted_loop ~body_stmts:[ Node.store_sym 1 (add (ld 1) (ld 0)) ] () in
  let program = Tessera_il.Program.make ~name:"p" ~entry:0 [| m |] in
  let full = Manager.optimize ~program ~plan:(Plan.plan Plan.Hot) m in
  Alcotest.(check bool) "cycles positive" true (Manager.total_cycles full > 0);
  Alcotest.(check int) "nothing disabled" 0 (List.length full.Manager.disabled);
  (* disabling everything must cost less and run nothing *)
  let none =
    Manager.optimize ~enabled:(fun _ -> false) ~program ~plan:(Plan.plan Plan.Hot) m
  in
  Alcotest.(check int) "all disabled" (Plan.plan_length Plan.Hot)
    (List.length none.Manager.disabled);
  Alcotest.(check (list int)) "none applied" [] none.Manager.applied;
  Alcotest.(check bool) "cheaper" true
    (Manager.total_cycles none < Manager.total_cycles full);
  Alcotest.(check bool) "method untouched" true (Meth.equal m none.Manager.meth);
  (* applicability: a loop-free method skips loop passes *)
  let flat = one_block [] (ld 0) in
  let program = Tessera_il.Program.make ~name:"p" ~entry:0 [| flat |] in
  let r = Manager.optimize ~program ~plan:[ 27; 28; 29; 30 ] flat in
  Alcotest.(check int) "loop passes skipped" 4
    (List.length r.Manager.skipped_inapplicable)

let test_quality_floor () =
  let m = one_block [] (ld 0) in
  let program = Tessera_il.Program.make ~name:"p" ~entry:0 [| m |] in
  let r =
    Manager.optimize ~quality_floor:Tessera_vm.Cost.Q_regalloc ~program
      ~plan:[ 0 ] m
  in
  Alcotest.(check bool) "floor respected" true
    (Tessera_vm.Cost.quality_rank r.Manager.quality
    >= Tessera_vm.Cost.quality_rank Tessera_vm.Cost.Q_regalloc)

let test_dominators () =
  (* diamond: 0 -> 1,2 -> 3; no back edges *)
  let m =
    mk_method
      [|
        Block.make 0 [] (Block.If { cond = ld 0; if_true = 1; if_false = 2 });
        Block.make 1 [] (Block.Goto 3);
        Block.make 2 [] (Block.Goto 3);
        Block.make 3 [] (Block.Return (Some (ld 0)));
      |]
  in
  let dom = Tessera_opt.Cfg.dominators m in
  Alcotest.(check bool) "entry dominates all" true (dom.(3).(0));
  Alcotest.(check bool) "1 does not dominate 3" false (dom.(3).(1));
  Alcotest.(check bool) "no back edge 1->3" false (Tessera_opt.Cfg.is_back_edge dom 1 3);
  (* renumbered join: edge from higher id to lower id is NOT a back edge *)
  let m2 =
    mk_method
      [|
        Block.make 0 [] (Block.If { cond = ld 0; if_true = 1; if_false = 3 });
        Block.make 1 [] (Block.Goto 2);
        Block.make 2 [] (Block.Return (Some (ld 0)));
        Block.make 3 [] (Block.Goto 2);
      |]
  in
  let dom2 = Tessera_opt.Cfg.dominators m2 in
  Alcotest.(check bool) "3 -> 2 is not a back edge" false
    (Tessera_opt.Cfg.is_back_edge dom2 3 2);
  let la = Tessera_opt.Loops.analyze m2 in
  Alcotest.(check int) "no loops found" 0 (Tessera_opt.Loops.loop_count la)

let test_loop_analysis () =
  let m = counted_loop ~body_stmts:[] () in
  let la = Tessera_opt.Loops.analyze m in
  Alcotest.(check int) "one loop" 1 (Tessera_opt.Loops.loop_count la);
  Alcotest.(check int) "depth 1" 1 (Tessera_opt.Loops.max_depth la);
  let l = List.hd la.Tessera_opt.Loops.loops in
  Alcotest.(check int) "header is block 1" 1 l.Tessera_opt.Loops.header;
  Alcotest.(check bool) "self loop" true (Tessera_opt.Loops.is_self_loop m l)

let suite =
  [
    Alcotest.test_case "const fold" `Quick test_const_fold;
    Alcotest.test_case "simplify identities" `Quick test_simplify_identities;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduce;
    Alcotest.test_case "reassociation" `Quick test_reassociate;
    Alcotest.test_case "induction variables" `Quick test_induction_var;
    Alcotest.test_case "dead code" `Quick test_dead_code;
    Alcotest.test_case "local CSE" `Quick test_local_cse;
    Alcotest.test_case "CSE kill sets" `Quick test_cse_respects_kills;
    Alcotest.test_case "const propagation" `Quick test_copy_and_const_prop;
    Alcotest.test_case "branch folding" `Quick test_branch_fold;
    Alcotest.test_case "block merging" `Quick test_block_merge;
    Alcotest.test_case "throw to goto" `Quick test_throw_to_goto;
    Alcotest.test_case "LICM hoists invariants" `Quick test_licm_hoists;
    Alcotest.test_case "LICM respects variance" `Quick test_licm_respects_variance;
    Alcotest.test_case "unrolling" `Quick test_unroll;
    Alcotest.test_case "catalogue shape" `Quick test_catalog_shape;
    Alcotest.test_case "plan sizes" `Quick test_plan_sizes;
    Alcotest.test_case "manager accounting" `Quick test_manager_accounting;
    Alcotest.test_case "quality floor" `Quick test_quality_floor;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "loop analysis" `Quick test_loop_analysis;
  ]

let test_overwritten_store_elim () =
  (* t0 <- expensive; t0 <- cheap; return t0  => first store dies *)
  let m =
    one_block
      [
        Node.store_sym 0 (mul (ic 3) (ic 4));
        Node.store_sym 0 (ic 7);
      ]
      (ld 0)
  in
  let m' = PB.dead_store_elim m in
  Alcotest.(check int) "one store left" 1 (count_op m' Opcode.Store);
  (* a read between the stores keeps both *)
  let m2 =
    one_block
      [
        Node.store_sym 0 (ic 1);
        Node.store_sym 1 (ld 0);
        Node.store_sym 0 (ic 2);
      ]
      (add (ld 0) (ld 1))
  in
  Alcotest.(check int) "read preserves both" 3
    (count_op (PB.dead_store_elim m2) Opcode.Store);
  (* an Inc reads its symbol: the prior store stays *)
  let m3 =
    one_block
      [
        Node.store_sym 0 (ic 1);
        Node.mk ~sym:0 ~const:1L Opcode.Inc Types.Void [||];
        Node.store_sym 0 (ic 2);
      ]
      (ld 0)
  in
  Alcotest.(check int) "inc counts as a read" 2
    (count_op (PB.dead_store_elim m3) Opcode.Store)

let suite =
  suite
  @ [
      Alcotest.test_case "overwritten-store elimination" `Quick
        test_overwritten_store_elim;
    ]

(* Catalog-wide differential + lint oracle: every transformation, run
   alone over every method of a generated program, must preserve the
   interpreted result AND audit clean under the translation-validation
   lint. *)
let test_catalog_differential_with_lint () =
  QCheck.Test.make ~count:4
    ~name:"catalog: each pass preserves results and lint cleanliness"
    (QCheck.make ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_range 0 1_000_000)))
    (fun seed ->
      let program = Helpers.gen_program seed in
      let args = Helpers.entry_args 1 in
      let baseline, _ = Helpers.run_program program args in
      Array.for_all
        (fun (e : Catalog.entry) ->
          let diags = ref [] in
          let audit =
            Tessera_analysis.Lint.auditor
              ~on_diagnostic:(fun d -> diags := d :: !diags)
              program
          in
          let transform _id m =
            (Manager.optimize ~audit ~program ~plan:[ e.Catalog.index ] m)
              .Manager.meth
          in
          let outcome, _ = Helpers.run_program ~transform program args in
          match !diags with
          | d :: _ ->
              QCheck.Test.fail_reportf "seed %Ld, pass %s: lint diagnostic %s"
                seed e.Catalog.name
                (Format.asprintf "%a" Tessera_analysis.Lint.pp_diagnostic d)
          | [] ->
              if Helpers.outcome_equal baseline outcome then true
              else
                QCheck.Test.fail_reportf
                  "seed %Ld, pass %s: outcome changed from %a to %a" seed
                  e.Catalog.name Helpers.pp_outcome baseline Helpers.pp_outcome
                  outcome)
        Catalog.all)

let suite =
  suite @ [ QCheck_alcotest.to_alcotest (test_catalog_differential_with_lint ()) ]
