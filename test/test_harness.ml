(* Integration tests of the full experiment pipeline at a tiny scale. *)

module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Plan = Tessera_opt.Plan
module Stats = Tessera_util.Stats

let tiny_cfg =
  {
    Harness.Expconfig.quick with
    Harness.Expconfig.collect_invocations = 40;
    progressive_l = 40;
    randomized_count = 15;
    uses_per_modifier = 3;
    trials = 1;
    noise_draws = 10;
    bench_scale = 0.5;
  }

(* collection + training are expensive; do them once for the module *)
let outcomes =
  lazy
    (List.map
       (Harness.Collection.collect_bench ~cfg:tiny_cfg)
       (List.filteri (fun i _ -> i < 2) Suites.training_set))

let test_collection () =
  let outcomes = Lazy.force outcomes in
  Alcotest.(check int) "two benchmarks" 2 (List.length outcomes);
  List.iter
    (fun (o : Harness.Collection.outcome) ->
      Alcotest.(check bool) "randomized has records" true
        (o.Harness.Collection.randomized.Tessera_collect.Archive.records <> []);
      Alcotest.(check bool) "progressive has records" true
        (o.Harness.Collection.progressive.Tessera_collect.Archive.records <> []);
      Alcotest.(check int) "merged is the union"
        (List.length o.Harness.Collection.randomized.Tessera_collect.Archive.records
        + List.length o.Harness.Collection.progressive.Tessera_collect.Archive.records)
        (List.length o.Harness.Collection.merged.Tessera_collect.Archive.records))
    outcomes

let test_draws_for_trial () =
  let check ~trials ~noise_draws =
    let total = ref 0 in
    for i = 0 to trials - 1 do
      let d = Harness.Evaluation.draws_for_trial ~trials ~noise_draws i in
      Alcotest.(check bool) "every trial draws" true (d >= 1);
      total := !total + d
    done;
    Alcotest.(check int)
      (Printf.sprintf "exact total for trials=%d draws=%d" trials noise_draws)
      (max trials noise_draws) !total
  in
  (* non-divisible, divisible, and trials > noise_draws configurations *)
  check ~trials:4 ~noise_draws:30;
  check ~trials:3 ~noise_draws:30;
  check ~trials:7 ~noise_draws:30;
  check ~trials:1 ~noise_draws:30;
  check ~trials:30 ~noise_draws:30;
  check ~trials:45 ~noise_draws:30

let test_fork_collection () =
  let cfg = { tiny_cfg with Harness.Expconfig.fork_fanout = 3 } in
  let bench = List.hd Suites.training_set in
  let o = Harness.Collection.collect_bench ~cfg ~fork:true ~fork_jobs:2 bench in
  Alcotest.(check bool) "fork collection has records" true
    (o.Harness.Collection.merged.Tessera_collect.Archive.records <> []);
  List.iter
    (fun (s : Tessera_collect.Collector.stats) ->
      Alcotest.(check bool) "forked" true (s.Tessera_collect.Collector.forks > 0))
    o.Harness.Collection.stats

let test_modelset_training () =
  let outcomes = Lazy.force outcomes in
  let ms = Harness.Training.train_on_all ~name:"tiny" outcomes in
  Alcotest.(check bool) "trained at least one level" true
    (ms.Harness.Modelset.levels <> []);
  List.iter
    (fun (lm : Harness.Modelset.level_model) ->
      Alcotest.(check bool) "learned levels only" true
        (List.mem lm.Harness.Modelset.level [ Plan.Cold; Plan.Warm; Plan.Hot ]);
      Alcotest.(check bool) "classes >= 2" true
        (Tessera_dataproc.Labels.size lm.Harness.Modelset.labels >= 2))
    ms.Harness.Modelset.levels;
  (* scorching predictions are the null modifier (paper: no model there) *)
  let f =
    Tessera_features.Features.of_array
      (Array.make Tessera_features.Features.dim 1)
  in
  Alcotest.(check bool) "scorching predicts null" true
    (Tessera_modifiers.Modifier.is_null
       (Harness.Modelset.predict ms ~level:Plan.Scorching f))

let test_modelset_save_load () =
  let outcomes = Lazy.force outcomes in
  let ms = Harness.Training.train_on_all ~name:"tiny" outcomes in
  let dir = Filename.temp_file "tessera" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Harness.Modelset.save ms ~dir;
      let ms' = Harness.Modelset.load ~name:"tiny" ~dir in
      Alcotest.(check int) "same level count"
        (List.length ms.Harness.Modelset.levels)
        (List.length ms'.Harness.Modelset.levels);
      (* loaded models predict identically *)
      let f =
        Tessera_features.Features.of_array
          (Array.init Tessera_features.Features.dim (fun i -> i mod 3))
      in
      List.iter
        (fun (lm : Harness.Modelset.level_model) ->
          let level = lm.Harness.Modelset.level in
          Alcotest.(check bool)
            (Plan.level_name level ^ " same prediction")
            true
            (Tessera_modifiers.Modifier.equal
               (Harness.Modelset.predict ms ~level f)
               (Harness.Modelset.predict ms' ~level f)))
        ms.Harness.Modelset.levels)

let test_loo_structure () =
  let outcomes = Lazy.force outcomes in
  let loo = Harness.Training.train_loo outcomes in
  Alcotest.(check int) "one set per benchmark" 2 (List.length loo);
  List.iteri
    (fun i (s : Harness.Training.loo_set) ->
      Alcotest.(check string) "H-names" (Printf.sprintf "H%d" (i + 1)) s.Harness.Training.name;
      Alcotest.(check bool) "excluded tag recorded" true
        (s.Harness.Training.excluded_tag <> ""))
    loo

let test_evaluation_cells () =
  let outcomes = Lazy.force outcomes in
  let ms = Harness.Training.train_on_all ~name:"tiny" outcomes in
  let bench = Suites.scale_bench (Option.get (Suites.find "jack")) 0.4 in
  let cells = Harness.Evaluation.evaluate_bench ~cfg:tiny_cfg ~models:[ ms ] bench in
  Alcotest.(check int) "one cell" 1 (List.length cells);
  let c = List.hd cells in
  List.iter
    (fun (what, (s : Stats.summary)) ->
      Alcotest.(check bool) (what ^ " positive") true (s.Stats.mean > 0.0);
      Alcotest.(check bool) (what ^ " ci nonnegative") true (s.Stats.ci95 >= 0.0);
      Alcotest.(check int) (what ^ " draws") tiny_cfg.Harness.Expconfig.noise_draws
        s.Stats.n)
    [
      ("startup perf", c.Harness.Evaluation.startup_perf);
      ("startup compile", c.Harness.Evaluation.startup_compile);
      ("throughput perf", c.Harness.Evaluation.throughput_perf);
      ("throughput compile", c.Harness.Evaluation.throughput_compile);
    ];
  (* the learned model must reduce compilation time on this substrate *)
  Alcotest.(check bool) "compile time reduced" true
    (c.Harness.Evaluation.startup_compile.Stats.mean < 1.0)

let test_report_printers () =
  let outcomes = Lazy.force outcomes in
  let loo = Harness.Training.train_loo outcomes in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Harness.Report.collection_summary fmt outcomes;
  Harness.Report.training_summary fmt loo;
  Harness.Report.table4 fmt loo;
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions Table 4" true
    (String.length out > 200);
  (* one cell matrix renders as a figure *)
  let bench = Suites.scale_bench (Option.get (Suites.find "jack")) 0.4 in
  let ms = Harness.Training.train_on_all ~name:"tiny" outcomes in
  let cells = Harness.Evaluation.evaluate_bench ~cfg:tiny_cfg ~models:[ ms ] bench in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Harness.Report.figure fmt ~id:"Figure X" ~title:"test" ~higher_better:true
    ~extract:(fun c -> c.Harness.Evaluation.startup_perf)
    cells;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "figure rendered with geomean" true
    (String.length (Buffer.contents buf) > 100)

let suite =
  [
    Alcotest.test_case "collection" `Slow test_collection;
    Alcotest.test_case "noise draws distribute exactly" `Quick
      test_draws_for_trial;
    Alcotest.test_case "fork collection" `Slow test_fork_collection;
    Alcotest.test_case "model-set training" `Slow test_modelset_training;
    Alcotest.test_case "model-set save/load" `Slow test_modelset_save_load;
    Alcotest.test_case "leave-one-out structure" `Slow test_loo_structure;
    Alcotest.test_case "evaluation cells" `Slow test_evaluation_cells;
    Alcotest.test_case "report printers" `Slow test_report_printers;
  ]

let test_crossval () =
  let outcomes = Lazy.force outcomes in
  let records = Harness.Training.records_of outcomes in
  let accs = Harness.Crossval.kfold_accuracy ~k:3 records in
  List.iter
    (fun (a : Harness.Crossval.level_accuracy) ->
      Alcotest.(check bool) "accuracy in [0,1]" true
        (a.Harness.Crossval.accuracy >= 0.0 && a.Harness.Crossval.accuracy <= 1.0);
      Alcotest.(check bool) "instances positive" true
        (a.Harness.Crossval.instances > 0))
    accs;
  let loo = Harness.Crossval.loo_benchmark_accuracy outcomes in
  Alcotest.(check int) "one row per benchmark" 2 (List.length loo);
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Harness.Crossval.report fmt loo;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "report renders" true (Buffer.length buf > 40)

let test_platform_targets_evaluable () =
  (* the same benchmark runs on both back-end targets with different
     cycle outcomes but equal compilation counts *)
  let bench = Suites.scale_bench (Option.get (Suites.find "jack")) 0.4 in
  let z =
    Harness.Evaluation.run_once ~cfg:tiny_cfg ~target:Tessera_vm.Target.zircon
      ~bench ~iterations:1 ~trial:0 ()
  in
  let o =
    Harness.Evaluation.run_once ~cfg:tiny_cfg ~target:Tessera_vm.Target.obsidian
      ~bench ~iterations:1 ~trial:0 ()
  in
  Alcotest.(check int) "same compilation count" z.Harness.Evaluation.compilations
    o.Harness.Evaluation.compilations;
  Alcotest.(check bool) "different app cycles" true
    (z.Harness.Evaluation.app_cycles <> o.Harness.Evaluation.app_cycles)

let suite =
  suite
  @ [
      Alcotest.test_case "cross-validation" `Slow test_crossval;
      Alcotest.test_case "platform targets evaluable" `Slow
        test_platform_targets_evaluable;
    ]

let test_persist_roundtrip () =
  let outcomes = Lazy.force outcomes in
  let dir = Filename.temp_file "tessera_campaign" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Alcotest.(check bool) "not a campaign dir yet" false
        (Harness.Persist.is_campaign_dir dir);
      Harness.Persist.save ~dir outcomes;
      Alcotest.(check bool) "campaign dir" true (Harness.Persist.is_campaign_dir dir);
      let loaded = Harness.Persist.load ~dir in
      Alcotest.(check int) "same benchmark count" (List.length outcomes)
        (List.length loaded);
      List.iter2
        (fun (a : Harness.Collection.outcome) (b : Harness.Collection.outcome) ->
          Alcotest.(check string) "tag" a.Harness.Collection.tag b.Harness.Collection.tag;
          Alcotest.(check int) "merged records"
            (List.length a.Harness.Collection.merged.Tessera_collect.Archive.records)
            (List.length b.Harness.Collection.merged.Tessera_collect.Archive.records))
        (List.sort compare outcomes |> List.map Fun.id)
        loaded)

(* A stray .tsra file (editor backup, archive copied in by hand) must be
   skipped with a warning, not make the whole campaign unloadable. *)
let test_persist_skips_strays () =
  let outcomes = Lazy.force outcomes in
  let dir = Filename.temp_file "tessera_campaign" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Harness.Persist.save ~dir outcomes;
      let oc = open_out (Filename.concat dir "not-a-benchmark.tsra") in
      output_string oc "junk";
      close_out oc;
      let loaded = Harness.Persist.load ~dir in
      Alcotest.(check int) "stray skipped, rest loaded" (List.length outcomes)
        (List.length loaded))

let suite =
  suite
  @ [
      Alcotest.test_case "campaign persistence" `Slow test_persist_roundtrip;
      Alcotest.test_case "campaign ignores stray files" `Slow
        test_persist_skips_strays;
    ]

(* ------------------------------------------------------------------ *)
(* Perf-regression sentinel                                             *)
(* ------------------------------------------------------------------ *)

let test_regress_thresholds () =
  Alcotest.(check bool) "within tolerance" true
    (Harness.Regress.min_ratio_ok ~baseline:1.0 ~candidate:0.9 ~tol:0.15);
  Alcotest.(check bool) "at the tolerance edge" true
    (Harness.Regress.min_ratio_ok ~baseline:1.0 ~candidate:0.85 ~tol:0.15);
  Alcotest.(check bool) "below tolerance" false
    (Harness.Regress.min_ratio_ok ~baseline:1.0 ~candidate:0.8 ~tol:0.15);
  Alcotest.(check bool) "improvement always passes" true
    (Harness.Regress.min_ratio_ok ~baseline:1.0 ~candidate:2.0 ~tol:0.15);
  Alcotest.(check bool) "nan candidate fails" false
    (Harness.Regress.min_ratio_ok ~baseline:1.0 ~candidate:Float.nan
       ~tol:0.15);
  Alcotest.(check bool) "nan baseline fails" false
    (Harness.Regress.min_ratio_ok ~baseline:Float.nan ~candidate:1.0
       ~tol:0.15);
  (* the floor admits small absolute values even when the baseline was
     tiny; the slack absorbs run-to-run noise above it *)
  Alcotest.(check bool) "under the floor passes a noisy baseline" true
    (Harness.Regress.max_abs_ok ~baseline:0.1 ~candidate:2.9 ~floor:3.0
       ~slack:2.0);
  Alcotest.(check bool) "within slack of the baseline" true
    (Harness.Regress.max_abs_ok ~baseline:4.0 ~candidate:5.5 ~floor:3.0
       ~slack:2.0);
  Alcotest.(check bool) "budget blown" false
    (Harness.Regress.max_abs_ok ~baseline:4.0 ~candidate:6.5 ~floor:3.0
       ~slack:2.0);
  Alcotest.(check bool) "nan budget fails" false
    (Harness.Regress.max_abs_ok ~baseline:4.0 ~candidate:Float.nan ~floor:3.0
       ~slack:2.0)

let with_temp_dir f =
  let dir = Filename.temp_file "tessera_regress" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat dir n))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let write_json dir name s =
  Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
      Out_channel.output_string oc s)

let count outcome results =
  List.length
    (List.filter (fun r -> r.Harness.Regress.r_outcome = outcome) results)

let test_regress_run () =
  with_temp_dir (fun base ->
      with_temp_dir (fun cand ->
          let obs = {|{"overhead_pct": 2.0, "dropped": 0}|} in
          write_json base "BENCH_obs.json" obs;
          write_json cand "BENCH_obs.json" obs;
          let results =
            Harness.Regress.run ~baseline_dir:base ~candidate_dir:cand ()
          in
          Alcotest.(check bool) "identical artifacts pass" false
            (Harness.Regress.failed results);
          Alcotest.(check bool) "present artifact yields passes" true
            (count Harness.Regress.Pass results >= 2);
          Alcotest.(check bool) "missing artifacts skip, not fail" true
            (count Harness.Regress.Skip results > 0);
          (* degraded candidate: budget blown and invariant broken *)
          write_json cand "BENCH_obs.json"
            {|{"overhead_pct": 9.0, "dropped": 3}|};
          let results =
            Harness.Regress.run ~baseline_dir:base ~candidate_dir:cand ()
          in
          Alcotest.(check bool) "degraded candidate fails" true
            (Harness.Regress.failed results);
          Alcotest.(check bool) "both checks fail" true
            (count Harness.Regress.Fail results >= 2);
          (* the report renders every row *)
          let buf = Buffer.create 1024 in
          let fmt = Format.formatter_of_buffer buf in
          Harness.Regress.pp_results fmt results;
          Format.pp_print_flush fmt ();
          Alcotest.(check bool) "report renders" true (Buffer.length buf > 100)))

let test_regress_mode_mismatch () =
  with_temp_dir (fun base ->
      with_temp_dir (fun cand ->
          let serve mode pps =
            Printf.sprintf
              {|{"mode": "%s", "honest_lost": 0, "drain_clean": true, "predictions_per_sec": %f}|}
              mode pps
          in
          (* same mode: the throughput ratio gate is live *)
          write_json base "BENCH_serve.json" (serve "in_process" 1000.0);
          write_json cand "BENCH_serve.json" (serve "in_process" 100.0);
          let results =
            Harness.Regress.run ~baseline_dir:base ~candidate_dir:cand ()
          in
          Alcotest.(check bool) "throughput collapse fails" true
            (Harness.Regress.failed results);
          (* mode mismatch: ratio checks downgrade to skips, invariants
             still run *)
          write_json cand "BENCH_serve.json" (serve "socket" 100.0);
          let results =
            Harness.Regress.run ~baseline_dir:base ~candidate_dir:cand ()
          in
          Alcotest.(check bool) "mode mismatch skips the ratio gate" false
            (Harness.Regress.failed results)))

let suite =
  suite
  @ [
      Alcotest.test_case "regress threshold gates" `Quick
        test_regress_thresholds;
      Alcotest.test_case "regress run over artifact dirs" `Quick
        test_regress_run;
      Alcotest.test_case "regress serving-mode mismatch skips ratios" `Quick
        test_regress_mode_mismatch;
    ]
