module Prng = Tessera_util.Prng
module Stats = Tessera_util.Stats
module Bitset = Tessera_util.Bitset
module Codec = Tessera_util.Codec
module Crc32 = Tessera_util.Crc32
module Pool = Tessera_util.Pool

let test_prng_determinism () =
  let a = Prng.create 99L and b = Prng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "int_in range" true (w >= -5 && w <= 5);
    let f = Prng.float g 3.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 3.0)
  done

let test_prng_split_independent () =
  let g = Prng.create 1L in
  let child = Prng.split g in
  (* child and parent streams should differ *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next_int64 g = Prng.next_int64 child then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_bernoulli_frequency () =
  let g = Prng.create 5L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli g 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.25" rate)
    true
    (rate > 0.23 && rate < 0.27)

let test_prng_shuffle_permutes () =
  let g = Prng.create 3L in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually moved" true (arr <> Array.init 100 Fun.id)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stats.stddev;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  (* CI half-width: t(4) * sd / sqrt 5 = 2.776 * 1.5811 / 2.236 *)
  Alcotest.(check (float 1e-3)) "ci95" 1.9632 s.Stats.ci95

let test_stats_t_table () =
  Alcotest.(check (float 1e-9)) "df=1" 12.706 (Stats.t_critical_95 1);
  Alcotest.(check (float 1e-9)) "df=29 (30 runs)" 2.045 (Stats.t_critical_95 29);
  Alcotest.(check (float 1e-9)) "asymptote" 1.960 (Stats.t_critical_95 10_000)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |]);
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [| 1.0; 0.0 |]))

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

let test_bitset_basics () =
  let b = Bitset.create 58 in
  Alcotest.(check int) "width" 58 (Bitset.width b);
  Alcotest.(check int) "popcount empty" 0 (Bitset.popcount b);
  Bitset.set b 0 true;
  Bitset.set b 57 true;
  Bitset.set b 13 true;
  Alcotest.(check int) "popcount" 3 (Bitset.popcount b);
  Alcotest.(check bool) "get 13" true (Bitset.get b 13);
  Bitset.set b 13 false;
  Alcotest.(check bool) "cleared" false (Bitset.get b 13);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.get b 58))

let test_bitset_string_roundtrip () =
  QCheck.Test.make ~count:200 ~name:"bitset string roundtrip"
    QCheck.(list_of_size (Gen.return 58) bool)
    (fun bits ->
      let b = Bitset.create 58 in
      List.iteri (fun i v -> Bitset.set b i v) bits;
      Bitset.equal b (Bitset.of_string (Bitset.to_string b)))

let test_bitset_int64_roundtrip () =
  QCheck.Test.make ~count:200 ~name:"bitset int64 roundtrip"
    QCheck.int64 (fun v ->
      let b = Bitset.of_int64_le ~width:58 v in
      let v' = Bitset.to_int64_le b in
      Bitset.equal b (Bitset.of_int64_le ~width:58 v'))

let test_codec_varint_roundtrip () =
  QCheck.Test.make ~count:500 ~name:"varint roundtrip"
    QCheck.(int_bound ((1 lsl 40) - 1))
    (fun v ->
      let buf = Buffer.create 16 in
      Codec.write_varint buf v;
      let r = Codec.reader_of_string (Buffer.contents buf) in
      Codec.read_varint r = v && Codec.at_end r)

let test_codec_primitives () =
  let buf = Buffer.create 64 in
  Codec.write_u8 buf 200;
  Codec.write_i64 buf (-42L);
  Codec.write_f64 buf 3.25;
  Codec.write_string buf "hello\000world";
  let r = Codec.reader_of_string (Buffer.contents buf) in
  Alcotest.(check int) "u8" 200 (Codec.read_u8 r);
  Alcotest.(check int64) "i64" (-42L) (Codec.read_i64 r);
  Alcotest.(check (float 0.0)) "f64" 3.25 (Codec.read_f64 r);
  Alcotest.(check string) "string" "hello\000world" (Codec.read_string r);
  Alcotest.(check bool) "at end" true (Codec.at_end r)

let test_codec_truncation () =
  let r = Codec.reader_of_string "\x01" in
  ignore (Codec.read_u8 r);
  Alcotest.check_raises "truncated" (Codec.Truncated "u8") (fun () ->
      ignore (Codec.read_u8 r))

let test_crc32_vectors () =
  (* standard check value for "123456789" *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check bool) "sensitive to change" true
    (Crc32.string "abc" <> Crc32.string "abd")

(* ------------------------------------------------------------------ *)
(* Domain pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let f i = (i * i) + 3 in
  let expected = Array.init 100 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "init at -j %d" jobs)
        expected
        (Pool.init ~jobs 100 f))
    [ 1; 2; 3; 8; 200 ];
  let items = Array.init 37 (fun i -> i * 5) in
  Alcotest.(check (array int)) "map_array order" (Array.map f items)
    (Pool.map_array ~jobs:4 f items);
  Alcotest.(check (list int)) "run_list order" (List.init 19 f)
    (Pool.run_list ~jobs:4 f (List.init 19 Fun.id))

let test_pool_edges () =
  Alcotest.(check (array int)) "empty input" [||]
    (Pool.init ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "more jobs than items" [| 10 |]
    (Pool.init ~jobs:16 1 (fun i -> i + 10));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Pool.init: negative length") (fun () ->
      ignore (Pool.init (-1) (fun i -> i)));
  Alcotest.(check bool) "default_jobs positive" true (Pool.default_jobs () >= 1)

exception Boom of int

let test_pool_exception () =
  (* the exception of the lowest failing index propagates, whatever the
     scheduling *)
  match Pool.init ~jobs:4 50 (fun i -> if i mod 7 = 3 then raise (Boom i) else i) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing index" 3 i

let test_pool_nested () =
  (* a Pool call from inside a worker falls back to sequential instead
     of spawning domains recursively *)
  let inner i = Array.fold_left ( + ) 0 (Pool.init ~jobs:4 8 (fun j -> i * j)) in
  let expected = Array.init 8 (fun i -> i * 28) in
  Alcotest.(check (array int)) "nested pool" expected
    (Pool.init ~jobs:4 8 inner)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng bernoulli frequency" `Quick test_prng_bernoulli_frequency;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats t table" `Quick test_stats_t_table;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    QCheck_alcotest.to_alcotest (test_bitset_string_roundtrip ());
    QCheck_alcotest.to_alcotest (test_bitset_int64_roundtrip ());
    QCheck_alcotest.to_alcotest (test_codec_varint_roundtrip ());
    Alcotest.test_case "codec primitives" `Quick test_codec_primitives;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "pool: results match sequential at every -j" `Quick
      test_pool_matches_sequential;
    Alcotest.test_case "pool: empty, singleton, invalid" `Quick test_pool_edges;
    Alcotest.test_case "pool: lowest-index exception propagates" `Quick
      test_pool_exception;
    Alcotest.test_case "pool: nested calls run sequentially" `Quick
      test_pool_nested;
  ]
