module Dictionary = Tessera_collect.Dictionary
module Record = Tessera_collect.Record
module Archive = Tessera_collect.Archive
module Collector = Tessera_collect.Collector
module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Prng = Tessera_util.Prng

let test_dictionary () =
  let d = Dictionary.create () in
  let a = Dictionary.intern d "A.a()V" in
  let b = Dictionary.intern d "B.b()V" in
  Alcotest.(check int) "dense ids" 0 a;
  Alcotest.(check int) "second" 1 b;
  Alcotest.(check int) "intern is idempotent" a (Dictionary.intern d "A.a()V");
  Alcotest.(check string) "find" "B.b()V" (Dictionary.find d b);
  Alcotest.(check int) "size" 2 (Dictionary.size d);
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Dictionary.find d 9));
  let buf = Buffer.create 64 in
  Dictionary.encode d buf;
  let d' = Dictionary.decode (Tessera_util.Codec.reader_of_string (Buffer.contents buf)) in
  Alcotest.(check bool) "roundtrip" true (Dictionary.equal d d')

let random_record ?(max_sig = 10) rng =
  let features =
    Features.of_array
      (Array.init Features.dim (fun _ -> Prng.int rng 200))
  in
  let r =
    Record.make ~sig_id:(Prng.int rng max_sig) ~features
      ~level:(Prng.choose rng [| Plan.Cold; Plan.Warm; Plan.Hot |])
      ~modifier:(Modifier.random rng ~density:0.3)
      ~compile_cycles:(Prng.int rng 1_000_000)
  in
  let r = ref r in
  for _ = 1 to Prng.int rng 20 do
    r :=
      Record.add_sample !r
        ~cycles:(Int64.of_int (Prng.int rng 100_000))
        ~valid:(Prng.bernoulli rng 0.9)
  done;
  !r

let test_record_roundtrip () =
  QCheck.Test.make ~count:100 ~name:"record binary roundtrip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let r = random_record rng in
      let buf = Buffer.create 256 in
      Record.encode r buf;
      let r' = Record.decode (Tessera_util.Codec.reader_of_string (Buffer.contents buf)) in
      Record.equal r r')

let test_record_samples () =
  let rng = Prng.create 1L in
  let features = Features.of_array (Array.make Features.dim 0) in
  ignore rng;
  let r =
    Record.make ~sig_id:0 ~features ~level:Plan.Cold ~modifier:Modifier.null
      ~compile_cycles:100
  in
  let r = Record.add_sample r ~cycles:50L ~valid:true in
  let r = Record.add_sample r ~cycles:70L ~valid:true in
  let r = Record.add_sample r ~cycles:999L ~valid:false in
  Alcotest.(check int) "valid invocations" 2 r.Record.invocations;
  Alcotest.(check int64) "running cycles" 120L r.Record.running_cycles;
  Alcotest.(check int) "discarded" 1 r.Record.discarded_samples

let make_archive seed n =
  let rng = Prng.create seed in
  let dictionary = Dictionary.create () in
  for i = 0 to 9 do
    ignore (Dictionary.intern dictionary (Printf.sprintf "M.m%d()V" i))
  done;
  {
    Archive.benchmark = "test";
    dictionary;
    records = List.init n (fun _ -> random_record rng);
  }

let test_archive_roundtrip () =
  let a = make_archive 5L 40 in
  let s = Archive.to_string a in
  let a' = Archive.of_string s in
  Alcotest.(check string) "benchmark" a.Archive.benchmark a'.Archive.benchmark;
  Alcotest.(check bool) "dictionary" true
    (Dictionary.equal a.Archive.dictionary a'.Archive.dictionary);
  Alcotest.(check int) "record count" (List.length a.Archive.records)
    (List.length a'.Archive.records);
  Alcotest.(check bool) "records equal" true
    (List.for_all2 Record.equal a.Archive.records a'.Archive.records)

let test_archive_corruption () =
  let s = Archive.to_string (make_archive 6L 10) in
  (* flip a byte in the middle: CRC must catch it *)
  let b = Bytes.of_string s in
  Bytes.set b (String.length s / 2)
    (Char.chr (Char.code (Bytes.get b (String.length s / 2)) lxor 0x5a));
  (match Archive.of_string (Bytes.to_string b) with
  | _ -> Alcotest.fail "corruption undetected"
  | exception Archive.Corrupt _ -> ());
  (* truncation *)
  (match Archive.of_string (String.sub s 0 (String.length s - 3)) with
  | _ -> Alcotest.fail "truncation undetected"
  | exception Archive.Corrupt _ -> ());
  (* bad magic *)
  match Archive.of_string ("XXXX" ^ String.sub s 4 (String.length s - 4)) with
  | _ -> Alcotest.fail "bad magic undetected"
  | exception Archive.Corrupt _ -> ()

let test_archive_file_io () =
  let a = make_archive 7L 25 in
  let path = Filename.temp_file "tessera" ".tsra" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      Archive.save a path;
      let a' = Archive.load path in
      Alcotest.(check int) "records" 25 (List.length a'.Archive.records))

let test_archive_merge () =
  let a = make_archive 8L 10 and b = make_archive 9L 15 in
  let m = Archive.merge [ a; b ] in
  Alcotest.(check int) "merged size" 25 (List.length m.Archive.records);
  Alcotest.(check string) "merged name" "test+test" m.Archive.benchmark;
  (* every merged record's signature resolves in the merged dictionary *)
  List.iter
    (fun (r : Record.t) ->
      ignore (Dictionary.find m.Archive.dictionary r.Record.sig_id))
    m.Archive.records

let test_collector_integration () =
  let profile =
    { Tessera_workloads.Profile.default with
      Tessera_workloads.Profile.name = "collect-test"; seed = 13L; methods = 5 }
  in
  let program = Tessera_workloads.Generate.program profile in
  let archive, stats =
    Collector.run
      ~config:
        {
          Collector.default_config with
          Collector.search =
            Collector.Queue (Tessera_modifiers.Queue_ctrl.Progressive { l = 30 });
          max_entry_invocations = 40;
        }
      ~program ~benchmark:"collect-test"
      ~entry_args:(fun k -> [| Tessera_vm.Values.Int_v (Int64.of_int k) |])
      ()
  in
  Alcotest.(check bool) "has records" true (archive.Archive.records <> []);
  Alcotest.(check bool) "ran" true (stats.Collector.entry_invocations > 0);
  Alcotest.(check bool) "compiled" true (stats.Collector.compilations > 0);
  List.iter
    (fun (r : Record.t) ->
      Alcotest.(check bool) "records have invocations" true (r.Record.invocations > 0);
      Alcotest.(check bool) "collection levels only" true
        (List.mem r.Record.level [ Plan.Cold; Plan.Warm; Plan.Hot ]);
      ignore (Dictionary.find archive.Archive.dictionary r.Record.sig_id))
    archive.Archive.records;
  (* the null modifier must appear in the data (tried with every method) *)
  Alcotest.(check bool) "null modifier present" true
    (List.exists
       (fun (r : Record.t) -> Modifier.is_null r.Record.modifier)
       archive.Archive.records);
  (* multiple distinct modifiers were explored *)
  let distinct = Hashtbl.create 16 in
  List.iter
    (fun (r : Record.t) ->
      Hashtbl.replace distinct (Modifier.to_bits r.Record.modifier) ())
    archive.Archive.records;
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct modifiers" (Hashtbl.length distinct))
    true
    (Hashtbl.length distinct > 1)

(* regression: merging archives that came through load (whose
   dictionaries were built by decode) must round-trip byte-identically —
   [merge] leans on [Dictionary.find] for every record *)
let test_merged_loaded_archives_roundtrip () =
  let rng = Prng.create 4242L in
  let mk benchmark names =
    let dictionary = Dictionary.create () in
    List.iter (fun n -> ignore (Dictionary.intern dictionary n)) names;
    let records =
      List.init 20 (fun _ -> random_record ~max_sig:(List.length names) rng)
    in
    { Archive.benchmark; dictionary; records }
  in
  let a = mk "alpha" [ "A.a()V"; "B.b()I"; "C.c()J" ] in
  let b = mk "beta" [ "B.b()I"; "D.d()V"; "A.a()V" ] in
  (* simulate the collect-then-merge pipeline: archives cross the codec
     before merging *)
  let a' = Archive.of_string (Archive.to_string a) in
  let b' = Archive.of_string (Archive.to_string b) in
  let merged = Archive.merge [ a'; b' ] in
  let reloaded = Archive.of_string (Archive.to_string merged) in
  Alcotest.(check string) "merged benchmark name" "alpha+beta"
    reloaded.Archive.benchmark;
  Alcotest.(check bool) "merged archive round-trips unchanged" true
    (Archive.equal merged reloaded);
  Alcotest.(check string) "byte-identical re-encode"
    (Archive.to_string merged)
    (Archive.to_string reloaded);
  (* every merged record still resolves to the signature it had in its
     source archive *)
  let source_names =
    List.map (fun (r : Record.t) -> Dictionary.find a'.Archive.dictionary r.Record.sig_id) a'.Archive.records
    @ List.map (fun (r : Record.t) -> Dictionary.find b'.Archive.dictionary r.Record.sig_id) b'.Archive.records
  in
  List.iter2
    (fun name (m : Record.t) ->
      Alcotest.(check string) "signature preserved through merge" name
        (Dictionary.find merged.Archive.dictionary m.Record.sig_id))
    source_names merged.Archive.records

(* ---------------- compilation forking ---------------- *)

let fork_program =
  lazy
    (let profile =
       {
         Tessera_workloads.Profile.default with
         Tessera_workloads.Profile.name = "fork-test";
         seed = 13L;
         methods = 5;
       }
     in
     Tessera_workloads.Generate.program profile)

let run_fork_config ?(seed = 0xF02CL) ?(fanout = 4) ?(uses = 4) ?(invocations = 40)
    ?(jobs = 1) ?(reexec = false) () =
  let program = Lazy.force fork_program in
  Collector.run
    ~config:
      {
        Collector.default_config with
        Collector.search =
          Collector.Fork
            {
              (Collector.fork_defaults
                 (Tessera_modifiers.Queue_ctrl.Progressive { l = 30 }))
              with
              Collector.fanout;
              jobs;
              reexec;
            };
        uses_per_modifier = uses;
        seed;
        max_entry_invocations = invocations;
      }
    ~program ~benchmark:"fork-test"
    ~entry_args:(fun k -> [| Tessera_vm.Values.Int_v (Int64.of_int k) |])
    ()

let test_fork_collector () =
  let archive, stats = run_fork_config () in
  Alcotest.(check bool) "has records" true (archive.Archive.records <> []);
  Alcotest.(check bool) "forked" true (stats.Collector.forks > 0);
  Alcotest.(check bool) "ran branches" true (stats.Collector.branches > 0);
  Alcotest.(check bool)
    "branch invocations counted" true
    (stats.Collector.branch_invocations > 0);
  (* every fork point measures the whole candidate set: records per trunk
     invocation dominate the one-modifier-per-recompilation sweep *)
  Alcotest.(check bool)
    "branches cover candidate sets" true
    (stats.Collector.branches >= stats.Collector.forks * 2);
  List.iter
    (fun (r : Record.t) ->
      Alcotest.(check bool) "records have invocations" true
        (r.Record.invocations > 0);
      ignore (Dictionary.find archive.Archive.dictionary r.Record.sig_id))
    archive.Archive.records;
  Alcotest.(check bool) "null modifier present" true
    (List.exists
       (fun (r : Record.t) -> Modifier.is_null r.Record.modifier)
       archive.Archive.records)

let test_fork_jobs_invariant () =
  let a1, s1 = run_fork_config ~jobs:1 () in
  let a2, s2 = run_fork_config ~jobs:3 () in
  Alcotest.(check bool) "archives equal at any -j" true (Archive.equal a1 a2);
  Alcotest.(check int) "same branches" s1.Collector.branches s2.Collector.branches

let test_fork_oracle () =
  QCheck.Test.make ~count:6 ~name:"fork snapshot = re-execution (oracle)"
    QCheck.(triple (int_bound 1_000_000) (int_range 1 5) (int_range 2 6))
    (fun (seed, fanout, uses) ->
      let seed = Int64.of_int seed in
      let fast, fstats =
        run_fork_config ~seed ~fanout ~uses ~invocations:25 ()
      in
      let slow, sstats =
        run_fork_config ~seed ~fanout ~uses ~invocations:25 ~reexec:true ()
      in
      Archive.equal fast slow
      && fstats.Collector.branches = sstats.Collector.branches
      && fstats.Collector.forks = sstats.Collector.forks
      && fstats.Collector.branch_invocations
         = sstats.Collector.branch_invocations)

let suite =
  [
    Alcotest.test_case "dictionary" `Quick test_dictionary;
    QCheck_alcotest.to_alcotest (test_record_roundtrip ());
    Alcotest.test_case "record samples" `Quick test_record_samples;
    Alcotest.test_case "archive roundtrip" `Quick test_archive_roundtrip;
    Alcotest.test_case "archive corruption detected" `Quick test_archive_corruption;
    Alcotest.test_case "archive file io" `Quick test_archive_file_io;
    Alcotest.test_case "archive merge" `Quick test_archive_merge;
    Alcotest.test_case "merged loaded archives round-trip" `Quick
      test_merged_loaded_archives_roundtrip;
    Alcotest.test_case "collector integration" `Slow test_collector_integration;
    Alcotest.test_case "fork collector" `Slow test_fork_collector;
    Alcotest.test_case "fork jobs invariance" `Slow test_fork_jobs_invariant;
    QCheck_alcotest.to_alcotest (test_fork_oracle ());
  ]
