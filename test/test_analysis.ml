(* The dataflow analysis library: solver convergence (including on
   irreducible CFGs), the interval domain, liveness/reaching-defs
   conservatism around exception handlers, effect summaries, the
   abstract-interpretation soundness property against the interpreter,
   and each lint diagnostic firing on a hand-corrupted pass
   application. *)

module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Program = Tessera_il.Program
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Manager = Tessera_opt.Manager
module Bitset = Tessera_analysis.Bitset
module Flow = Tessera_analysis.Flow
module Interval = Tessera_analysis.Interval
module Live = Tessera_analysis.Live
module Reach = Tessera_analysis.Reach
module Constprop = Tessera_analysis.Constprop
module Effects = Tessera_analysis.Effects
module Summary = Tessera_analysis.Summary
module Lint = Tessera_analysis.Lint

let ic v = Node.iconst Types.Int (Int64.of_int v)
let ld s = Node.load_sym Types.Int s
let add a b = Node.binop Opcode.Add Types.Int a b
let div a b = Node.binop Opcode.Div Types.Int a b

let mk_method ?(validate = true)
    ?(symbols = [| Symbol.temp "t0" Types.Int; Symbol.temp "t1" Types.Int |])
    blocks =
  let m = Meth.make ~name:"A.a()I" ~params:[||] ~ret:Types.Int ~symbols blocks in
  if validate then Tessera_il.Validate.assert_valid_method m;
  m

let one_block ?symbols stmts ret =
  mk_method ?symbols [| Block.make 0 stmts (Block.Return (Some ret)) |]

(* ------------------------------------------------------------------ *)
(* Bitsets                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset () =
  let s = Bitset.create 70 in
  Alcotest.(check int) "width" 70 (Bitset.length s);
  Alcotest.(check bool) "initially empty" false (Bitset.mem s 69);
  Bitset.set s 0;
  Bitset.set s 69;
  Bitset.set s 64;
  Alcotest.(check int) "count" 3 (Bitset.count s);
  Alcotest.(check (list int)) "iter in order" [ 0; 64; 69 ]
    (List.rev (Bitset.fold (fun acc i -> i :: acc) [] s));
  Bitset.unset s 64;
  Alcotest.(check bool) "unset" false (Bitset.mem s 64);
  let t = Bitset.copy s in
  Bitset.set t 5;
  Alcotest.(check bool) "copy is independent" false (Bitset.mem s 5);
  Alcotest.(check bool) "union reports change" true
    (Bitset.union_into ~into:s t);
  Alcotest.(check bool) "union reaches fixpoint" false
    (Bitset.union_into ~into:s t);
  Alcotest.(check bool) "now equal" true (Bitset.equal s t);
  Bitset.diff_into ~into:s t;
  Alcotest.(check int) "diff empties" 0 (Bitset.count s)

(* ------------------------------------------------------------------ *)
(* Intervals                                                            *)
(* ------------------------------------------------------------------ *)

let iv lo hi = Interval.of_bounds (Int64.of_int lo) (Int64.of_int hi)

let test_interval () =
  Alcotest.(check bool) "byte range" true
    (Interval.equal (Interval.ty_range Types.Byte) (iv (-128) 127));
  Alcotest.(check bool) "long range is top" true
    (Interval.equal (Interval.ty_range Types.Long) Interval.top);
  Alcotest.(check bool) "empty bounds normalize to bot" true
    (Interval.equal (iv 5 3) Interval.bot);
  Alcotest.(check bool) "truncate within range is identity" true
    (Interval.equal
       (Interval.truncate_to Types.Int (Interval.singleton 300L))
       (Interval.singleton 300L));
  Alcotest.(check bool) "truncate out of range widens to the range" true
    (Interval.equal
       (Interval.truncate_to Types.Byte (Interval.singleton 300L))
       (Interval.ty_range Types.Byte));
  Alcotest.(check bool) "join of singletons spans" true
    (Interval.equal (Interval.join (Interval.singleton 1L) (Interval.singleton 5L))
       (iv 1 5));
  Alcotest.(check bool) "mem inside" true (Interval.mem 3L (iv 1 5));
  Alcotest.(check bool) "mem outside" false (Interval.mem 9L (iv 1 5));
  Alcotest.(check bool) "disjoint finite" true (Interval.disjoint (iv 1 2) (iv 5 9));
  Alcotest.(check bool) "overlap not disjoint" false
    (Interval.disjoint (iv 1 5) (iv 5 9));
  Alcotest.(check bool) "top never disjoint" false
    (Interval.disjoint Interval.top (iv 1 2));
  Alcotest.(check bool) "bot never disjoint" false
    (Interval.disjoint Interval.bot (iv 1 2));
  Alcotest.(check bool) "checked add" true
    (Interval.equal (Interval.add (iv 1 2) (iv 10 20)) (iv 11 22));
  Alcotest.(check bool) "overflowing add is top" true
    (Interval.equal
       (Interval.add (Interval.singleton Int64.max_int) (Interval.singleton 1L))
       Interval.top);
  Alcotest.(check bool) "neg flips" true
    (Interval.equal (Interval.neg (iv 1 5)) (iv (-5) (-1)));
  Alcotest.(check bool) "neg min_int is top" true
    (Interval.equal (Interval.neg (Interval.singleton Int64.min_int)) Interval.top);
  Alcotest.(check bool) "widen jumps to top" true
    (Interval.equal (Interval.widen (iv 1 5)) Interval.top)

(* ------------------------------------------------------------------ *)
(* Solver + Flow                                                        *)
(* ------------------------------------------------------------------ *)

module Bool_solver = Tessera_analysis.Dataflow.Make (struct
  type t = bool

  let equal = Bool.equal
end)

let test_solver_irreducible () =
  (* 0 -> {1,2}, 1 -> 2, 2 -> 1: the classic irreducible pair.  A
     reachability transfer must still reach the all-true fixpoint. *)
  let preds = [| []; [ 0; 2 ]; [ 0; 1 ] |] in
  let deps = [| [| 1; 2 |]; [| 2 |]; [| 1 |] |] in
  let st =
    Bool_solver.fixpoint ~n:3 ~deps ~order:[| 0; 1; 2 |]
      ~init:(fun b -> b = 0)
      ~transfer:(fun ~get ~round:_ b ->
        b = 0 || List.exists (fun p -> get p) preds.(b))
      ()
  in
  Array.iteri
    (fun b v -> Alcotest.(check bool) (Printf.sprintf "block %d reachable" b) true v)
    st

let test_solver_safety_valve () =
  (* a transfer that never stabilizes must hit the step bound, not hang *)
  match
    Bool_solver.fixpoint ~n:1
      ~deps:[| [| 0 |] |]
      ~order:[| 0 |]
      ~init:(fun _ -> false)
      ~transfer:(fun ~get ~round:_ b -> not (get b))
      ()
  with
  | _ -> Alcotest.fail "oscillating transfer reached a fixpoint"
  | exception Failure _ -> ()

let irreducible_meth () =
  (* 0 -> 1|2; 1 -> 2|3; 2 -> 1|3; 3: return.  The {1,2} loop has two
     entries, so it is not reducible. *)
  mk_method
    [|
      Block.make 0 [] (Block.If { cond = ld 0; if_true = 1; if_false = 2 });
      Block.make 1
        [ Node.store_sym 0 (add (ld 0) (ic 1)) ]
        (Block.If { cond = ld 1; if_true = 2; if_false = 3 });
      Block.make 2
        [ Node.store_sym 1 (add (ld 1) (ic 1)) ]
        (Block.If { cond = ld 0; if_true = 1; if_false = 3 });
      Block.make 3 [] (Block.Return (Some (add (ld 0) (ld 1))));
    |]

let test_flow_edges () =
  let m = irreducible_meth () in
  let f = Flow.of_meth m in
  Alcotest.(check int) "4 blocks" 4 f.Flow.n;
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (List.sort compare f.Flow.succs.(0));
  Alcotest.(check (list int)) "preds 1" [ 0; 2 ] (List.sort compare f.Flow.preds.(1));
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (List.sort compare f.Flow.preds.(3));
  Array.iteri
    (fun b r -> Alcotest.(check bool) (Printf.sprintf "%d reachable" b) true r)
    f.Flow.reachable;
  (* the orders enumerate every block exactly once *)
  let check_order name order =
    Alcotest.(check (list int)) name [ 0; 1; 2; 3 ]
      (List.sort compare (Array.to_list order))
  in
  check_order "forward order" (Flow.forward_order f);
  check_order "backward order" (Flow.backward_order f);
  (* exceptional edges show up in deps and exc_preds *)
  let mh =
    mk_method
      [|
        Block.make 0 [] (Block.Goto 1);
        Block.make ~handler:(Some 2) 1 [ Node.store_sym 0 (ic 1) ]
          (Block.Return (Some (ld 0)));
        Block.make 2 [] (Block.Return (Some (ic 9)));
      |]
  in
  let fh = Flow.of_meth mh in
  Alcotest.(check (list int)) "exc_preds of handler" [ 1 ] fh.Flow.exc_preds.(2);
  Alcotest.(check bool) "handler is a forward dep of its block" true
    (Array.mem 2 (Flow.forward_deps fh).(1));
  Alcotest.(check bool) "handler reachable only via the trap edge" true
    fh.Flow.reachable.(2)

(* ------------------------------------------------------------------ *)
(* Liveness and reaching definitions                                    *)
(* ------------------------------------------------------------------ *)

let test_liveness_handler_conservatism () =
  (* t0 is only read in the handler; a trap can fire before the covering
     block's stores, so t0 must stay live at the covering block's entry *)
  let m =
    mk_method
      [|
        Block.make ~handler:(Some 2) 0
          [ Node.store_sym 0 (ic 1); Node.store_sym 1 (ic 2) ]
          (Block.Goto 1);
        Block.make 1 [] (Block.Return (Some (ld 1)));
        Block.make 2 [] (Block.Return (Some (ld 0)));
      |]
  in
  let lv = Live.analyze m in
  Alcotest.(check bool) "handler keeps t0 live at covered entry" true
    (Bitset.mem (Live.live_in lv 0) 0);
  Alcotest.(check bool) "pressure at least 1" true (Live.pressure lv >= 1);
  (* on the irreducible method both symbols are live around the loop *)
  let lv2 = Live.analyze (irreducible_meth ()) in
  Alcotest.(check int) "both slots live together" 2 (Live.pressure lv2)

let test_reaching_definitions () =
  let m =
    mk_method
      [|
        Block.make 0 [ Node.store_sym 0 (ic 1) ] (Block.Goto 1);
        Block.make 1
          [ Node.store_sym 0 (add (ld 0) (ic 1)) ]
          (Block.If { cond = ld 1; if_true = 1; if_false = 2 });
        Block.make 2 [] (Block.Return (Some (ld 0)));
      |]
  in
  let r = Reach.analyze m in
  let nsyms = 2 in
  (* every symbol has exactly one virtual entry definition, and they all
     reach the entry block *)
  let virtuals =
    Array.to_list r.Reach.defs
    |> List.filter (fun (d : Reach.def) -> d.Reach.block = -1)
  in
  Alcotest.(check int) "one virtual def per symbol" nsyms (List.length virtuals);
  List.iter
    (fun (d : Reach.def) ->
      Alcotest.(check bool) "virtual def reaches entry" true
        (Bitset.mem r.Reach.reach_in.(0) d.Reach.def_id))
    virtuals;
  (* block 2 joins the loop-carried and the straight-line store of t0 *)
  let t0_defs_reaching_exit =
    Array.to_list r.Reach.defs
    |> List.filter (fun (d : Reach.def) ->
           d.Reach.sym = 0 && Bitset.mem r.Reach.reach_in.(2) d.Reach.def_id)
  in
  Alcotest.(check bool) "loop join sees the block-1 def" true
    (List.exists (fun (d : Reach.def) -> d.Reach.block = 1) t0_defs_reaching_exit);
  Alcotest.(check bool) "density positive" true (Reach.density r > 0);
  Alcotest.(check bool) "density saturated to a byte" true (Reach.density r <= 255)

(* ------------------------------------------------------------------ *)
(* Constant / interval analysis                                         *)
(* ------------------------------------------------------------------ *)

let test_constprop_basics () =
  let r = Constprop.analyze (one_block [] (add (ic 40) (ic 2))) in
  Alcotest.(check bool) "constant return" true
    (Interval.equal r.Constprop.ret (Interval.singleton 42L));
  Alcotest.(check bool) "some nodes constant" true (r.Constprop.const_nodes > 0);
  Alcotest.(check bool) "fraction in range" true
    (Constprop.const_fraction_pct r >= 0 && Constprop.const_fraction_pct r <= 100);
  (* a two-armed branch joins its return sites *)
  let m =
    mk_method
      [|
        Block.make 0 [] (Block.If { cond = ld 0; if_true = 1; if_false = 2 });
        Block.make 1 [] (Block.Return (Some (ic 1)));
        Block.make 2 [] (Block.Return (Some (ic 2)));
      |]
  in
  let r = Constprop.analyze m in
  Alcotest.(check bool) "join of return sites" true
    (Interval.equal r.Constprop.ret (iv 1 2));
  (* store_coerce truncation: 300 through a Byte slot reads back as 44 *)
  let m =
    one_block
      ~symbols:[| Symbol.temp "b" Types.Byte |]
      [ Node.store_sym 0 (ic 300) ]
      (Node.load_sym Types.Byte 0)
  in
  let r = Constprop.analyze m in
  Alcotest.(check bool) "byte-truncated value covered" true
    (Interval.mem 44L r.Constprop.ret);
  Alcotest.(check bool) "byte slot bounds the interval" false
    (Interval.mem 300L r.Constprop.ret)

let test_constprop_loop_widening () =
  (* i = 0; do { i++ } while (i < 10); return i — must terminate (via
     widening) and cover the concrete result 10 *)
  let m =
    mk_method
      [|
        Block.make 0 [ Node.store_sym 0 (ic 0) ] (Block.Goto 1);
        Block.make 1
          [ Node.mk ~sym:0 ~const:1L Opcode.Inc Types.Void [||] ]
          (Block.If
             {
               cond =
                 Node.binop (Opcode.Compare Opcode.Lt) Types.Int (ld 0) (ic 10);
               if_true = 1;
               if_false = 2;
             });
        Block.make 2 [] (Block.Return (Some (ld 0)));
      |]
  in
  let r = Constprop.analyze m in
  Alcotest.(check bool) "loop result covered" true
    (Interval.mem 10L r.Constprop.ret);
  (* the irreducible method also converges *)
  let r2 = Constprop.analyze (irreducible_meth ()) in
  Alcotest.(check bool) "irreducible ret not bottom" true
    (not (Interval.equal r2.Constprop.ret Interval.bot))

let test_constprop_soundness () =
  QCheck.Test.make ~count:30
    ~name:"constprop: interpreter integer returns lie in the abstract interval"
    (QCheck.make
       ~print:Int64.to_string
       QCheck.Gen.(map Int64.of_int (int_range 0 100_000)))
    (fun seed ->
      let program = Helpers.gen_program seed in
      let entry = program.Program.methods.(program.Program.entry) in
      let r = Constprop.analyze entry in
      List.for_all
        (fun k ->
          match Helpers.run_program program (Helpers.entry_args k) with
          | Ok (Values.Int_v v), _ ->
              if Interval.mem v r.Constprop.ret then true
              else
                QCheck.Test.fail_reportf
                  "seed %Ld arg %d: returned %Ld outside %s" seed k v
                  (Interval.to_string r.Constprop.ret)
          | _ -> true)
        [ 0; 1; 7 ])

(* ------------------------------------------------------------------ *)
(* Effect summaries                                                     *)
(* ------------------------------------------------------------------ *)

let test_effects_direct () =
  Alcotest.(check bool) "arithmetic is pure" true
    (Effects.is_pure (Effects.of_meth (one_block [] (add (ld 0) (ic 1)))));
  Alcotest.(check bool) "constant divisor cannot trap" true
    (Effects.is_pure (Effects.of_meth (one_block [] (div (ld 0) (ic 3)))));
  let e = Effects.of_meth (one_block [] (div (ld 0) (ld 1))) in
  Alcotest.(check bool) "variable divisor may trap" true e.Effects.may_trap;
  Alcotest.(check bool) "trap is the only effect" false e.Effects.reads_heap;
  let sync_m =
    Meth.make
      ~attrs:{ Meth.default_attrs with Meth.synchronized = true }
      ~name:"S.s()I" ~params:[||] ~ret:Types.Int
      ~symbols:[| Symbol.temp "t0" Types.Int |]
      [| Block.make 0 [] (Block.Return (Some (ic 1))) |]
  in
  Alcotest.(check bool) "synchronized attribute" true
    (Effects.of_meth sync_m).Effects.sync;
  let throw_m =
    mk_method
      [|
        Block.make 0 []
          (Block.Throw (Node.mk Opcode.Throw_op Types.Void [||]));
      |]
  in
  Alcotest.(check bool) "throw terminator" true
    (Effects.of_meth throw_m).Effects.throws

let test_effects_program_fixpoint () =
  (* mutual recursion: m0 calls m1, m1 calls m0 and may trap; the closed
     summaries must both carry the trap and the full transitive call set *)
  let m0 =
    Meth.make ~name:"R.zero()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [| Block.make 0 [] (Block.Return (Some (Node.call Types.Int ~callee:1 [||]))) |]
  in
  let m1 =
    Meth.make ~name:"R.one()I" ~params:[||] ~ret:Types.Int
      ~symbols:[| Symbol.temp "t0" Types.Int; Symbol.temp "t1" Types.Int |]
      [|
        Block.make 0
          [ Node.store_sym 0 (div (ld 0) (ld 1)) ]
          (Block.Return (Some (Node.call Types.Int ~callee:0 [||])));
      |]
  in
  let p = Program.make ~name:"rec" ~entry:0 [| m0; m1 |] in
  let summaries = Effects.of_program p in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) (Printf.sprintf "m%d may trap transitively" i) true
        s.Effects.may_trap;
      Alcotest.(check bool) (Printf.sprintf "m%d full call set" i) true
        (Effects.Int_set.equal s.Effects.calls (Effects.Int_set.of_list [ 0; 1 ])))
    summaries;
  Alcotest.(check bool) "leq is reflexive" true
    (Effects.leq summaries.(0) summaries.(0));
  Alcotest.(check bool) "bottom below everything" true
    (Effects.leq Effects.bottom summaries.(0));
  Alcotest.(check bool) "trap not below pure" false
    (Effects.leq summaries.(0) Effects.bottom)

(* ------------------------------------------------------------------ *)
(* Summary features                                                     *)
(* ------------------------------------------------------------------ *)

let test_summary_features () =
  Alcotest.(check int) "five components" 5 Summary.count;
  Alcotest.(check int) "names match count" Summary.count
    (Array.length Summary.names);
  let loop_m =
    mk_method
      [|
        Block.make 0 [ Node.store_sym 0 (ic 0) ] (Block.Goto 1);
        Block.make 1
          [ Node.mk ~sym:0 ~const:1L Opcode.Inc Types.Void [||] ]
          (Block.If
             {
               cond =
                 Node.binop (Opcode.Compare Opcode.Lt) Types.Int (ld 0) (ic 10);
               if_true = 1;
               if_false = 2;
             });
        Block.make 2 [] (Block.Return (Some (ld 0)));
      |]
  in
  let s = Summary.of_meth loop_m in
  Alcotest.(check int) "loop depth 1" 1 s.Summary.max_loop_depth;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "component saturated to a byte" true
        (v >= 0 && v <= 255))
    (Summary.to_array s);
  Alcotest.(check int) "vector length" Summary.count
    (Array.length (Summary.to_array s));
  (* interprocedural purity: a call to a pure callee counts as pure only
     when the program is supplied *)
  let callee =
    Meth.make ~name:"P.pure()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [| Block.make 0 [] (Block.Return (Some (ic 5))) |]
  in
  let caller =
    Meth.make ~name:"P.caller()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [| Block.make 0 [] (Block.Return (Some (Node.call Types.Int ~callee:1 [||]))) |]
  in
  let p = Program.make ~name:"pure" ~entry:0 [| caller; callee |] in
  Alcotest.(check int) "pure call share with program" 100
    (Summary.of_meth ~program:p caller).Summary.pure_call_pct;
  Alcotest.(check int) "no program, no purity claim" 0
    (Summary.of_meth caller).Summary.pure_call_pct;
  (* the memoized summaries are stable across calls *)
  Alcotest.(check bool) "summaries_for memoizes" true
    (Summary.summaries_for p == Summary.summaries_for p)

(* ------------------------------------------------------------------ *)
(* Lint diagnostics on hand-corrupted pass applications                 *)
(* ------------------------------------------------------------------ *)

let check_pair before after =
  let program = Program.make ~name:"lint" ~entry:0 [| before |] in
  Lint.check_application ~program
    ~summaries:(Effects.of_program program)
    ~pass_index:0 ~pass_name:"corrupt" ~before ~after

let kind_of (d : Lint.diagnostic) = d.Lint.kind

let test_lint_undefined_slot_use () =
  let before =
    one_block [ Node.store_sym 0 (ic 1); ld 0 ] (ic 3)
  in
  let after = one_block [ ld 0 ] (ic 3) in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Undefined_slot_use { symbol = "t0" } ] -> ()
  | ds ->
      Alcotest.failf "expected one Undefined_slot_use, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_const_contradiction () =
  let before = one_block [] (ic 5) in
  let after = one_block [] (ic 7) in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Const_contradiction _ ] -> ()
  | ds ->
      Alcotest.failf "expected one Const_contradiction, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_inc_non_integral () =
  let symbols = [| Symbol.temp "t0" Types.Int; Symbol.temp "d" Types.Double |] in
  let before = one_block ~symbols [] (ic 1) in
  let after =
    one_block ~symbols
      [ Node.mk ~sym:1 ~const:1L Opcode.Inc Types.Void [||] ]
      (ic 1)
  in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Inc_non_integral { symbol = "d" } ] -> ()
  | ds ->
      Alcotest.failf "expected one Inc_non_integral, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_handler_cycle () =
  let blocks handler1 handler2 =
    [|
      Block.make 0 [] (Block.Goto 1);
      Block.make ?handler:handler1 1 [] (Block.Goto 2);
      Block.make ?handler:handler2 2 [] (Block.Return (Some (ic 1)));
    |]
  in
  let before = mk_method (blocks None None) in
  let after = mk_method (blocks (Some (Some 2)) (Some (Some 1))) in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Handler_cycle { blocks } ] ->
      Alcotest.(check (list int)) "cycle blocks" [ 1; 2 ] (List.sort compare blocks)
  | ds ->
      Alcotest.failf "expected one Handler_cycle, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_effect_introduced () =
  (* both sides read t0 and t1 (so the undefined-use delta stays empty);
     only the division is new *)
  let before = one_block [ ld 1 ] (ld 0) in
  let after = one_block [] (div (ld 0) (ld 1)) in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Effect_introduced { effect_ = "may-trap" } ] -> ()
  | ds ->
      Alcotest.failf "expected one Effect_introduced, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_structural () =
  let before = one_block [] (ic 1) in
  let after = mk_method ~validate:false [| Block.make 0 [] (Block.Goto 99) |] in
  match List.map kind_of (check_pair before after) with
  | [ Lint.Structural (_ :: _) ] -> ()
  | ds ->
      Alcotest.failf "expected one Structural, got [%s]"
        (String.concat "; " (List.map Lint.describe_kind ds))

let test_lint_clean_pair () =
  (* a legitimate rewrite (constant folding) yields no diagnostics *)
  let before = one_block [] (add (ic 40) (ic 2)) in
  let after = one_block [] (ic 42) in
  Alcotest.(check int) "clean" 0 (List.length (check_pair before after))

let test_lint_strict_raises () =
  let before = one_block [] (ic 5) in
  let after = one_block [] (ic 7) in
  let program = Program.make ~name:"strict" ~entry:0 [| before |] in
  let audit = Lint.auditor ~strict:true program in
  match audit ~pass_index:3 ~pass_name:"boom" ~before ~after with
  | () -> Alcotest.fail "strict auditor did not raise"
  | exception Lint.Violation d ->
      Alcotest.(check int) "pass index carried" 3 d.Lint.pass_index;
      Alcotest.(check string) "pass name carried" "boom" d.Lint.pass_name

let test_lint_hook_integration () =
  (* installing the global hook audits a full Manager.optimize run; a
     clean method stays clean *)
  let m =
    mk_method
      ~symbols:
        [|
          Symbol.temp "i" Types.Int; Symbol.temp "acc" Types.Int;
          Symbol.temp "x" Types.Int;
        |]
      [|
        Block.make 0
          [ Node.store_sym 0 (ic 0); Node.store_sym 2 (ic 3) ]
          (Block.Goto 1);
        Block.make 1
          [
            Node.store_sym 1 (add (ld 1) (ld 2));
            Node.mk ~sym:0 ~const:1L Opcode.Inc Types.Void [||];
          ]
          (Block.If
             {
               cond =
                 Node.binop (Opcode.Compare Opcode.Lt) Types.Int (ld 0) (ic 10);
               if_true = 1;
               if_false = 2;
             });
        Block.make 2 [] (Block.Return (Some (ld 1)));
      |]
  in
  let program = Program.make ~name:"hook" ~entry:0 [| m |] in
  Lint.install ();
  Fun.protect ~finally:Lint.uninstall (fun () ->
      Lint.reset ();
      let r = Manager.optimize ~program ~plan:(Plan.plan Plan.Hot) m in
      Alcotest.(check bool) "passes ran" true (r.Manager.applied <> []);
      Alcotest.(check int) "clean optimize audits clean" 0
        (List.length (Lint.collected ())));
  (* after uninstall the hook is gone *)
  Alcotest.(check bool) "uninstalled" true (Option.is_none !Manager.lint_hook)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "bitsets" `Quick test_bitset;
    Alcotest.test_case "interval domain" `Quick test_interval;
    Alcotest.test_case "solver: irreducible CFG converges" `Quick
      test_solver_irreducible;
    Alcotest.test_case "solver: safety valve" `Quick test_solver_safety_valve;
    Alcotest.test_case "flow: edges, orders, handlers" `Quick test_flow_edges;
    Alcotest.test_case "liveness: handler conservatism" `Quick
      test_liveness_handler_conservatism;
    Alcotest.test_case "reaching definitions" `Quick test_reaching_definitions;
    Alcotest.test_case "constprop: basics" `Quick test_constprop_basics;
    Alcotest.test_case "constprop: loop widening" `Quick
      test_constprop_loop_widening;
    QCheck_alcotest.to_alcotest (test_constprop_soundness ());
    Alcotest.test_case "effects: direct summaries" `Quick test_effects_direct;
    Alcotest.test_case "effects: program fixpoint" `Quick
      test_effects_program_fixpoint;
    Alcotest.test_case "summary features" `Quick test_summary_features;
    Alcotest.test_case "lint: undefined slot use" `Quick
      test_lint_undefined_slot_use;
    Alcotest.test_case "lint: const contradiction" `Quick
      test_lint_const_contradiction;
    Alcotest.test_case "lint: inc of non-integral" `Quick
      test_lint_inc_non_integral;
    Alcotest.test_case "lint: handler cycle" `Quick test_lint_handler_cycle;
    Alcotest.test_case "lint: effect introduced" `Quick
      test_lint_effect_introduced;
    Alcotest.test_case "lint: structural damage" `Quick test_lint_structural;
    Alcotest.test_case "lint: clean rewrite stays clean" `Quick
      test_lint_clean_pair;
    Alcotest.test_case "lint: strict auditor raises" `Quick
      test_lint_strict_raises;
    Alcotest.test_case "lint: manager hook integration" `Quick
      test_lint_hook_integration;
  ]
