(* The observability layer: ring-buffer bounds and ordering (qcheck),
   histogram accounting, Chrome-trace export validity and name
   round-trip, virtual-clock determinism of engine traces, the engine's
   registry-backed counters, and the protocol's Stats request. *)

module Trace = Tessera_obs.Trace
module Metrics = Tessera_obs.Metrics
module Log = Tessera_obs.Log
module Export = Tessera_obs.Export
module Engine = Tessera_jit.Engine
module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan

(* every test leaves the global trace state as it found it: disabled,
   empty, with the default cycle source *)
let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Trace.clear_cycle_source ())
    f

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                          *)
(* ------------------------------------------------------------------ *)

let gen_names = QCheck.Gen.(list_size (int_bound 200) (string_size ~gen:(char_range 'a' 'z') (return 5)))

let test_ring_bounds () =
  QCheck.Test.make ~count:100
    ~name:"ring buffer never exceeds capacity and preserves order"
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 32) gen_names))
    (fun (capacity, names) ->
      with_trace ~capacity @@ fun () ->
      List.iteri
        (fun i name -> Trace.instant ~cycles:(Int64.of_int i) ~cat:"test" name)
        names;
      let evs = Trace.events () in
      let n = List.length names in
      let kept = min n capacity in
      List.length evs = kept
      && Trace.dropped () = n - kept
      (* the retained events are exactly the newest [kept], in order *)
      && List.map (fun (e : Trace.event) -> e.Trace.name) evs
         = List.filteri (fun i _ -> i >= n - kept) names
      && List.map (fun (e : Trace.event) -> e.Trace.cycles) evs
         = List.init kept (fun i -> Int64.of_int (n - kept + i)))

let test_disabled_emits_nothing () =
  Trace.disable ();
  Trace.reset ();
  Trace.instant ~cat:"test" "ignored";
  Trace.span_begin ~cat:"test" "ignored";
  Alcotest.(check int) "no events while disabled" 0 (Trace.length ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_histogram_sums () =
  QCheck.Test.make ~count:100
    ~name:"histogram bucket counts sum to observations"
    (QCheck.make QCheck.Gen.(list (map (fun f -> f *. 1e10) (float_bound_inclusive 1.0))))
    (fun samples ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "h" in
      List.iter (Metrics.observe h) samples;
      let bucket_total =
        Array.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.bucket_counts h)
      in
      bucket_total = List.length samples
      && Metrics.histogram_count h = List.length samples
      && abs_float (Metrics.histogram_sum h -. List.fold_left ( +. ) 0.0 samples)
         <= 1e-6 *. (1.0 +. abs_float (Metrics.histogram_sum h)))

let test_registry_registration () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"a counter" "requests_total" in
  Metrics.inc c;
  (* idempotent: same name and kind returns the same instrument *)
  let c' = Metrics.counter reg "requests_total" in
  Metrics.inc c';
  Alcotest.(check int) "one shared counter" 2 (Metrics.counter_value c);
  (* kind mismatch raises *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics: \"requests_total\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge reg "requests_total"));
  Alcotest.(check bool) "negative add raises" true
    (try
       Metrics.add c (-1);
       false
     with Invalid_argument _ -> true);
  let g = Metrics.gauge reg "depth" in
  Metrics.set_gauge g 3.0;
  Metrics.add_gauge g (-1.0);
  Alcotest.(check (float 1e-9)) "gauge arithmetic" 2.0 (Metrics.gauge_value g);
  let text = Metrics.expose reg in
  Alcotest.(check bool) "exposition carries HELP" true
    (let re = "# HELP requests_total a counter" in
     let rec contains i =
       i + String.length re <= String.length text
       && (String.sub text i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  Alcotest.(check (list string)) "names sorted"
    [ "depth"; "requests_total" ] (Metrics.names reg)

(* ------------------------------------------------------------------ *)
(* Chrome-trace export                                                  *)
(* ------------------------------------------------------------------ *)

let gen_event =
  QCheck.Gen.(
    let name = string_size ~gen:printable (int_range 1 12) in
    let arg =
      oneof
        [
          map (fun i -> Trace.Int (Int64.of_int i)) int;
          map (fun f -> Trace.Float (f *. 1e6)) (float_bound_inclusive 1.0);
          map (fun s -> Trace.Str s) (string_size ~gen:printable (int_bound 8));
        ]
    in
    let phase =
      oneofl [ Trace.Span_begin; Trace.Span_end; Trace.Instant; Trace.Counter ]
    in
    map
      (fun (name, ph, cycles, args) ->
        { Trace.name; cat = "test"; ph; cycles = Int64.of_int cycles;
          wall_us = 0.0; args })
      (quad name phase nat (list_size (int_bound 3) (pair name arg))))

let test_chrome_roundtrip () =
  QCheck.Test.make ~count:100
    ~name:"chrome export is valid JSON and round-trips event names"
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) gen_event))
    (fun events ->
      let text = Export.chrome_json events in
      match Export.parse_json text with
      | Error e -> QCheck.Test.fail_reportf "invalid JSON: %s" e
      | Ok json -> (
          match Export.member "traceEvents" json with
          | Some (Export.Arr items) ->
              let names =
                List.map
                  (fun item ->
                    match Export.member "name" item with
                    | Some (Export.Jstr s) -> s
                    | _ -> QCheck.Test.fail_report "event without a name")
                  items
              in
              names = List.map (fun (e : Trace.event) -> e.Trace.name) events
          | _ -> QCheck.Test.fail_report "no traceEvents array"))

(* args — including non-finite floats and multibyte UTF-8 — survive the
   export → parse round trip: nan/±inf become null (JSON has no tokens
   for them), every valid UTF-8 string comes back byte-identical *)

let utf8_fragments =
  [ "a"; "Z"; "0"; " "; "\""; "\\"; "/"; "\n"; "\t"; "\r"; "\x01"; "\x1f";
    "\xc3\xa9" (* é *); "\xc3\x9f" (* ß *); "\xe6\x97\xa5" (* 日 *);
    "\xe2\x82\xac" (* € *); "\xf0\x9f\x9a\x80" (* 🚀 *);
    "\xf0\x9d\x84\x9e" (* 𝄞, needs a surrogate pair in \u form *);
    "\xef\xbf\xbd" (* U+FFFD itself *) ]

let gen_utf8 =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_bound 6) (oneofl utf8_fragments)))

let gen_arg_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Trace.Int (Int64.of_int i)) int;
        map (fun f -> Trace.Float f) float;
        oneofl
          [ Trace.Float Float.nan; Trace.Float Float.infinity;
            Trace.Float Float.neg_infinity; Trace.Float Float.max_float;
            Trace.Float (-0.0) ];
        map (fun s -> Trace.Str s) gen_utf8;
      ])

let gen_arg_event =
  QCheck.Gen.(
    map
      (fun (name, args) ->
        { Trace.name; cat = "test"; ph = Trace.Instant; cycles = 7L;
          wall_us = 0.0 (* 0 so no wall_us arg is appended *); args })
      (pair gen_utf8
         (list_size (int_bound 4)
            (map2 (fun k v -> (k, v)) gen_utf8 gen_arg_value))))

let arg_matches expected (parsed : Export.json) =
  match (expected, parsed) with
  | Trace.Int i, Export.Num f -> f = Int64.to_float i
  | Trace.Float f, Export.Null -> not (Float.is_finite f)
  | Trace.Float f, Export.Num p ->
      (* json_float prints %.6f / %.0f, so equality is up to that *)
      Float.is_finite f && Float.abs (p -. f) <= 1e-6 +. (1e-9 *. Float.abs f)
  | Trace.Str s, Export.Jstr p -> String.equal s p
  | _ -> false

let test_chrome_args_roundtrip () =
  QCheck.Test.make ~count:200
    ~name:"chrome export round-trips args (nan/inf -> null, UTF-8 intact)"
    (QCheck.make QCheck.Gen.(list_size (int_bound 20) gen_arg_event))
    (fun events ->
      let text = Export.chrome_json events in
      match Export.parse_json text with
      | Error e -> QCheck.Test.fail_reportf "invalid JSON: %s" e
      | Ok json -> (
          match Export.member "traceEvents" json with
          | Some (Export.Arr items) ->
              List.length items = List.length events
              && List.for_all2
                   (fun (e : Trace.event) item ->
                     (match Export.member "name" item with
                      | Some (Export.Jstr s) -> String.equal s e.Trace.name
                      | _ -> false)
                     &&
                     let parsed_args =
                       match Export.member "args" item with
                       | Some (Export.Obj fields) -> fields
                       | None -> []
                       | Some _ -> [ ("", Export.Bool false) ]
                     in
                     List.length parsed_args = List.length e.Trace.args
                     && List.for_all2
                          (fun (k, v) (pk, pv) ->
                            String.equal k pk && arg_matches v pv)
                          e.Trace.args parsed_args)
                   events items
          | _ -> QCheck.Test.fail_report "no traceEvents array"))

let test_export_invalid_utf8 () =
  (* invalid bytes become U+FFFD, never invalid JSON *)
  let e =
    { Trace.name = "bad\xffname"; cat = "test"; ph = Trace.Instant;
      cycles = 0L; wall_us = 0.0; args = [ ("k", Trace.Str "\xc3") ] }
  in
  let text = Export.chrome_json [ e ] in
  match Export.parse_json text with
  | Error err -> Alcotest.failf "export of invalid UTF-8 unparsable: %s" err
  | Ok json -> (
      match Export.member "traceEvents" json with
      | Some (Export.Arr [ item ]) ->
          (match Export.member "name" item with
          | Some (Export.Jstr s) ->
              Alcotest.(check string) "byte replaced" "bad\xef\xbf\xbdname" s
          | _ -> Alcotest.fail "no name");
          (match Export.member "args" item with
          | Some (Export.Obj [ ("k", Export.Jstr s) ]) ->
              Alcotest.(check string) "truncated seq replaced" "\xef\xbf\xbd" s
          | _ -> Alcotest.fail "no args")
      | _ -> Alcotest.fail "no traceEvents")

let test_metrics_nonfinite_exposition () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "weird" in
  Metrics.set_gauge g Float.nan;
  let text = Metrics.expose reg in
  let mentions s =
    let rec go i =
      i + String.length s <= String.length text
      && (String.sub text i (String.length s) = s || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "NaN uses the Prometheus spelling" true
    (mentions "weird NaN");
  Metrics.set_gauge g Float.infinity;
  Alcotest.(check bool) "+Inf uses the Prometheus spelling" true
    (let text = Metrics.expose reg in
     let rec go i =
       i + 9 <= String.length text
       && (String.sub text i 9 = "weird +In" || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* Domain safety                                                        *)
(* ------------------------------------------------------------------ *)

(* N domains hammer one registry and emit into their own per-domain
   rings; nothing is lost, and the canonical merged stream is identical
   across runs — the determinism oracle holds under parallelism *)
let test_domain_stress () =
  let domains = 4 and per_domain = 250 in
  let run () =
    with_trace @@ fun () ->
    let reg = Metrics.create () in
    let workers =
      Array.init domains (fun d ->
          Domain.spawn (fun () ->
              let c = Metrics.counter reg "hits_total" in
              let h = Metrics.histogram reg "lat" in
              for i = 0 to per_domain - 1 do
                Metrics.inc c;
                Metrics.observe h (float_of_int i);
                Trace.instant
                  ~cycles:(Int64.of_int ((d * 100_000) + i))
                  ~cat:"stress"
                  (Printf.sprintf "d%d_i%d" d i)
              done))
    in
    Array.iter Domain.join workers;
    ( Metrics.counter_value (Metrics.counter reg "hits_total"),
      Metrics.histogram_count (Metrics.histogram reg "lat"),
      Trace.length (),
      Trace.ring_count (),
      Trace.to_canonical_string () )
  in
  let hits1, lat1, len1, rings1, stream1 = run () in
  let hits2, _, _, _, stream2 = run () in
  Alcotest.(check int) "no lost counter increments" (domains * per_domain) hits1;
  Alcotest.(check int) "no lost observations" (domains * per_domain) lat1;
  Alcotest.(check int) "no lost trace events" (domains * per_domain) len1;
  Alcotest.(check bool) "one ring per emitting domain" true (rings1 >= domains);
  Alcotest.(check int) "same totals across runs" hits1 hits2;
  Alcotest.(check string) "deterministic merged stream" stream1 stream2

(* ------------------------------------------------------------------ *)
(* Engine integration                                                   *)
(* ------------------------------------------------------------------ *)

let run_traced ~invocations program =
  Trace.reset ();
  let engine = Engine.create program in
  let outcomes =
    List.init invocations (fun k ->
        Engine.invoke_entry engine (Helpers.entry_args k))
  in
  (outcomes, engine, Trace.to_canonical_string ())

let test_engine_trace_determinism () =
  with_trace @@ fun () ->
  let program = Helpers.gen_program 11L in
  let out1, _, trace1 = run_traced ~invocations:6 program in
  let out2, _, trace2 = run_traced ~invocations:6 program in
  Alcotest.(check (list Helpers.outcome_testable))
    "identical outcomes" out1 out2;
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length trace1 > 0);
  Alcotest.(check string) "byte-identical canonical traces" trace1 trace2

let test_engine_trace_content () =
  with_trace @@ fun () ->
  let program = Helpers.gen_program 11L in
  let _, _, _ = run_traced ~invocations:6 program in
  let events = Trace.events () in
  let count ph name =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.ph = ph && e.Trace.name = name)
         events)
  in
  let begins = count Trace.Span_begin "compile" in
  Alcotest.(check bool) "compile spans present" true (begins > 0);
  Alcotest.(check int) "spans balanced" begins (count Trace.Span_end "compile");
  Alcotest.(check bool) "installs traced" true (count Trace.Instant "install" > 0);
  Alcotest.(check bool) "queue-depth track sampled" true
    (count Trace.Counter "compile_queue_depth" > 0);
  (* compile spans carry the method and level *)
  let has_key k (e : Trace.event) = List.mem_assoc k e.Trace.args in
  Alcotest.(check bool) "compile spans carry meth+level" true
    (List.for_all
       (fun (e : Trace.event) ->
         e.Trace.name <> "compile"
         || e.Trace.ph <> Trace.Span_begin
         || (has_key "meth" e && has_key "level" e))
       events)

let test_engine_metrics_view () =
  let program = Helpers.gen_program 11L in
  let engine = Engine.create program in
  for k = 0 to 5 do
    ignore (Engine.invoke_entry engine (Helpers.entry_args k))
  done;
  let reg = Engine.metrics engine in
  let value name = Metrics.counter_value (Metrics.counter reg name) in
  Alcotest.(check int) "compilations counter backs compile_count"
    (Engine.compile_count engine) (value "jit_compilations_total");
  Alcotest.(check int) "per-level counters sum to the total"
    (Engine.compile_count engine)
    (List.fold_left (fun acc (_, n) -> acc + n) 0
       (Engine.compiles_by_level engine));
  Alcotest.(check int) "histogram count equals compilations"
    (Engine.compile_count engine)
    (Metrics.histogram_count (Metrics.histogram reg "jit_compilation_cycles"));
  Alcotest.(check bool) "exposition mentions the JIT" true
    (String.length (Metrics.expose reg) > 0
    && value "jit_compilations_total" > 0)

(* ------------------------------------------------------------------ *)
(* Protocol stats                                                       *)
(* ------------------------------------------------------------------ *)

let test_server_stats () =
  let server_ch, client_ch = Channel.pipe_pair () in
  let predictor ~level:_ ~features:_ = Modifier.null in
  let lockstep () = ignore (Server.step server_ch predictor) in
  let client = Client.connect ~model_name:"test" ~lockstep client_ch in
  ignore (Client.predict client ~level:Plan.Cold ~features:[| 1.0 |]);
  match Client.stats client with
  | None -> Alcotest.fail "stats round trip failed"
  | Some text ->
      let mentions s =
        let rec go i =
          i + String.length s <= String.length text
          && (String.sub text i (String.length s) = s || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "server counts requests" true
        (mentions "server_requests_total");
      Alcotest.(check bool) "server counts predictions" true
        (mentions "server_predictions_total")

(* ------------------------------------------------------------------ *)
(* Log                                                                  *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  let seen = ref [] in
  Log.set_sink (fun level msg -> seen := (level, msg) :: !seen);
  Fun.protect
    ~finally:(fun () ->
      Log.reset_sink ();
      Log.set_level Log.Info)
    (fun () ->
      Log.set_level Log.Info;
      Log.debug "hidden";
      Log.info "shown";
      Log.warn "loud";
      Alcotest.(check int) "threshold filters debug" 2 (List.length !seen);
      Log.set_level Log.Debug;
      Log.debug "now visible";
      Alcotest.(check int) "debug passes at Debug" 3 (List.length !seen);
      (* mirroring puts log lines on the trace timeline *)
      with_trace @@ fun () ->
      Log.mirror_to_trace := true;
      Fun.protect
        ~finally:(fun () -> Log.mirror_to_trace := false)
        (fun () ->
          Log.warn "traced";
          let evs = Trace.events () in
          Alcotest.(check bool) "mirrored into trace" true
            (List.exists
               (fun (e : Trace.event) ->
                 e.Trace.cat = "log" && e.Trace.name = "traced")
               evs)))

(* ------------------------------------------------------------------ *)
(* Prometheus text-format escaping                                      *)
(* ------------------------------------------------------------------ *)

(* the inverse of the exposition escaping, written independently here:
   escape must round-trip any string and never leak a raw newline (which
   would split the exposition mid-line) or, for label values, a raw
   double quote (which would end the label early) *)
let unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | c ->
           Buffer.add_char buf '\\';
           Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let test_metrics_escaping_roundtrip () =
  QCheck.Test.make ~count:300
    ~name:"exposition escaping round-trips and never leaks raw breaks"
    QCheck.(string_gen (QCheck.Gen.oneofl [ 'a'; 'z'; '\\'; '\n'; '"'; ' '; 'x' ]))
    (fun s ->
      let h = Metrics.escape_help s in
      let l = Metrics.escape_label_value s in
      if String.contains h '\n' then
        QCheck.Test.fail_report "escaped HELP contains a raw newline";
      if String.contains l '\n' then
        QCheck.Test.fail_report "escaped label contains a raw newline";
      (* an unescaped quote in a label value ends the label early *)
      let rec quote_unescaped i =
        match String.index_from_opt l i '"' with
        | None -> false
        | Some j ->
            let rec backslashes k n =
              if k >= 0 && l.[k] = '\\' then backslashes (k - 1) (n + 1) else n
            in
            if backslashes (j - 1) 0 mod 2 = 0 then true
            else quote_unescaped (j + 1)
      in
      if quote_unescaped 0 then
        QCheck.Test.fail_report "escaped label leaks a raw double quote";
      String.equal (unescape h) s && String.equal (unescape l) s)

let test_metrics_escaped_exposition () =
  let r = Metrics.create () in
  let evil = "line one\nline two \\ \"quoted\"" in
  ignore (Metrics.counter r ~help:evil "evil_total");
  let text = Metrics.expose r in
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "one HELP, one TYPE, one sample" 3 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "every line is a comment or a sample" true
        (String.length line > 0
        && (line.[0] = '#' || String.length line >= 4
            && String.sub line 0 4 = "evil")))
    lines

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      test_ring_bounds (); test_histogram_sums (); test_chrome_roundtrip ();
      test_chrome_args_roundtrip (); test_metrics_escaping_roundtrip ();
    ]
  @ [
      Alcotest.test_case "export: invalid UTF-8 becomes U+FFFD" `Quick
        test_export_invalid_utf8;
      Alcotest.test_case "metrics: non-finite exposition spellings" `Quick
        test_metrics_nonfinite_exposition;
      Alcotest.test_case "metrics: evil HELP text stays line-structured"
        `Quick test_metrics_escaped_exposition;
      Alcotest.test_case "domains: shared registry + merged rings" `Quick
        test_domain_stress;
      Alcotest.test_case "disabled tracing emits nothing" `Quick
        test_disabled_emits_nothing;
      Alcotest.test_case "registry: idempotent, kind-checked, exposed" `Quick
        test_registry_registration;
      Alcotest.test_case "engine: same seed, byte-identical trace" `Quick
        test_engine_trace_determinism;
      Alcotest.test_case "engine: trace carries spans, installs, queue depth"
        `Quick test_engine_trace_content;
      Alcotest.test_case "engine: accessors read the registry" `Quick
        test_engine_metrics_view;
      Alcotest.test_case "protocol: Stats_req answers with the exposition"
        `Quick test_server_stats;
      Alcotest.test_case "log: thresholds and trace mirroring" `Quick
        test_log_levels;
    ]

(* ------------------------------------------------------------------ *)
(* Exact quantiles                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantile () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[| 1.0; 2.0; 4.0; 8.0 |] "q_seconds" in
  Alcotest.(check bool) "empty histogram quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  Alcotest.check_raises "q out of range rejected"
    (Invalid_argument "Metrics.quantile") (fun () ->
      ignore (Metrics.quantile h 1.5));
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 6.0 ];
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 interpolates inside the second bucket" true
    (p50 >= 1.0 && p50 <= 2.0);
  Alcotest.(check bool) "quantile is monotone in q" true
    (Metrics.quantile h 0.25 <= Metrics.quantile h 0.75
    && Metrics.quantile h 0.75 <= Metrics.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "p100 is the top bucket edge" 8.0
    (Metrics.quantile h 1.0);
  (* an observation past every finite bound lands in the +Inf bucket
     and reports the largest finite bound, never infinity *)
  Metrics.observe h 1000.0;
  Alcotest.(check (float 1e-9)) "overflow clamps to largest finite bound" 8.0
    (Metrics.quantile h 1.0);
  Alcotest.(check int) "count_le sees the finite buckets" 4
    (Metrics.count_le h 8.0);
  Alcotest.(check int) "count_le at an inner bound" 2 (Metrics.count_le h 2.0);
  Alcotest.(check int) "count_le below every bound" 0 (Metrics.count_le h 0.5);
  Alcotest.(check int) "count_le at infinity sees everything" 5
    (Metrics.count_le h infinity)

(* ------------------------------------------------------------------ *)
(* Sampling profiler                                                   *)
(* ------------------------------------------------------------------ *)

module Profile = Tessera_obs.Profile

let with_profile ?period ?max_sites f =
  Profile.enable ?period ?max_sites ();
  Fun.protect
    ~finally:(fun () ->
      Profile.disable ();
      Profile.reset ())
    f

let test_profile_weights () =
  with_profile ~period:100 (fun () ->
      (* one coarse cost crossing three period boundaries carries
         weight 3, so samples × period accounts for every cycle *)
      Profile.charge ~meth:"m" ~block:0 ~op:"add" 300;
      Alcotest.(check int) "weight k for k periods" 3
        (Profile.total_samples ());
      Profile.charge ~meth:"m" ~block:0 ~op:"add" 99;
      Alcotest.(check int) "no boundary, no sample" 3
        (Profile.total_samples ());
      Profile.charge ~meth:"m" ~block:1 ~op:"mul" 1;
      Alcotest.(check int) "boundary crossing fires once" 4
        (Profile.total_samples ());
      Alcotest.(check int) "two sites" 2 (Profile.site_count ());
      Alcotest.(check (list string)) "flame lines in canonical order"
        [ "m;block_0;add 3"; "m;block_1;mul 1" ]
        (Profile.flame_lines ());
      Alcotest.(check (list (pair string int))) "hot methods aggregate"
        [ ("m", 4) ]
        (Profile.hot_methods ());
      Alcotest.(check (list (pair string int))) "hot ops rank hottest first"
        [ ("add", 3); ("mul", 1) ]
        (Profile.hot_ops ()))

let test_profile_determinism_and_bounds () =
  let charge_sequence () =
    for i = 0 to 199 do
      Profile.charge
        ~meth:(Printf.sprintf "m%d" (i mod 5))
        ~block:(i mod 3)
        ~op:(if i mod 2 = 0 then "load" else "store")
        (17 + (i mod 7))
    done
  in
  let capture () =
    with_profile ~period:64 (fun () ->
        charge_sequence ();
        (match Export.parse_json (Profile.to_json ()) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "profile JSON unparseable: %s" e);
        Profile.to_canonical_string ())
  in
  let canon1 = capture () in
  let canon2 = capture () in
  Alcotest.(check string) "identical charges, byte-identical profile" canon1
    canon2;
  Alcotest.(check bool) "profile is non-empty" true (String.length canon1 > 0);
  (* bounded site table: overflow weight is counted, never silently lost *)
  with_profile ~period:1 ~max_sites:2 (fun () ->
      Profile.charge ~meth:"a" ~block:0 ~op:"x" 1;
      Profile.charge ~meth:"b" ~block:0 ~op:"x" 1;
      Profile.charge ~meth:"c" ~block:0 ~op:"x" 1;
      Alcotest.(check int) "site table bounded" 2 (Profile.site_count ());
      Alcotest.(check int) "overflow counted as dropped" 1
        (Profile.dropped_samples ());
      Alcotest.(check int) "retained weight" 2 (Profile.total_samples ()));
  Alcotest.check_raises "non-positive period rejected"
    (Invalid_argument "Profile.enable: period must be positive") (fun () ->
      Profile.enable ~period:0 ())

let suite =
  suite
  @ [
      Alcotest.test_case "metrics: exact quantiles and count_le" `Quick
        test_metrics_quantile;
      Alcotest.test_case "profile: period weights and rankings" `Quick
        test_profile_weights;
      Alcotest.test_case "profile: determinism and bounded table" `Quick
        test_profile_determinism_and_bounds;
    ]
