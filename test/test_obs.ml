(* The observability layer: ring-buffer bounds and ordering (qcheck),
   histogram accounting, Chrome-trace export validity and name
   round-trip, virtual-clock determinism of engine traces, the engine's
   registry-backed counters, and the protocol's Stats request. *)

module Trace = Tessera_obs.Trace
module Metrics = Tessera_obs.Metrics
module Log = Tessera_obs.Log
module Export = Tessera_obs.Export
module Engine = Tessera_jit.Engine
module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan

(* every test leaves the global trace state as it found it: disabled,
   empty, with the default cycle source *)
let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ();
      Trace.clear_cycle_source ())
    f

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                          *)
(* ------------------------------------------------------------------ *)

let gen_names = QCheck.Gen.(list_size (int_bound 200) (string_size ~gen:(char_range 'a' 'z') (return 5)))

let test_ring_bounds () =
  QCheck.Test.make ~count:100
    ~name:"ring buffer never exceeds capacity and preserves order"
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 32) gen_names))
    (fun (capacity, names) ->
      with_trace ~capacity @@ fun () ->
      List.iteri
        (fun i name -> Trace.instant ~cycles:(Int64.of_int i) ~cat:"test" name)
        names;
      let evs = Trace.events () in
      let n = List.length names in
      let kept = min n capacity in
      List.length evs = kept
      && Trace.dropped () = n - kept
      (* the retained events are exactly the newest [kept], in order *)
      && List.map (fun (e : Trace.event) -> e.Trace.name) evs
         = List.filteri (fun i _ -> i >= n - kept) names
      && List.map (fun (e : Trace.event) -> e.Trace.cycles) evs
         = List.init kept (fun i -> Int64.of_int (n - kept + i)))

let test_disabled_emits_nothing () =
  Trace.disable ();
  Trace.reset ();
  Trace.instant ~cat:"test" "ignored";
  Trace.span_begin ~cat:"test" "ignored";
  Alcotest.(check int) "no events while disabled" 0 (Trace.length ())

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_histogram_sums () =
  QCheck.Test.make ~count:100
    ~name:"histogram bucket counts sum to observations"
    (QCheck.make QCheck.Gen.(list (map (fun f -> f *. 1e10) (float_bound_inclusive 1.0))))
    (fun samples ->
      let reg = Metrics.create () in
      let h = Metrics.histogram reg "h" in
      List.iter (Metrics.observe h) samples;
      let bucket_total =
        Array.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.bucket_counts h)
      in
      bucket_total = List.length samples
      && Metrics.histogram_count h = List.length samples
      && abs_float (Metrics.histogram_sum h -. List.fold_left ( +. ) 0.0 samples)
         <= 1e-6 *. (1.0 +. abs_float (Metrics.histogram_sum h)))

let test_registry_registration () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"a counter" "requests_total" in
  Metrics.inc c;
  (* idempotent: same name and kind returns the same instrument *)
  let c' = Metrics.counter reg "requests_total" in
  Metrics.inc c';
  Alcotest.(check int) "one shared counter" 2 (Metrics.counter_value c);
  (* kind mismatch raises *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics: \"requests_total\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge reg "requests_total"));
  Alcotest.(check bool) "negative add raises" true
    (try
       Metrics.add c (-1);
       false
     with Invalid_argument _ -> true);
  let g = Metrics.gauge reg "depth" in
  Metrics.set_gauge g 3.0;
  Metrics.add_gauge g (-1.0);
  Alcotest.(check (float 1e-9)) "gauge arithmetic" 2.0 (Metrics.gauge_value g);
  let text = Metrics.expose reg in
  Alcotest.(check bool) "exposition carries HELP" true
    (let re = "# HELP requests_total a counter" in
     let rec contains i =
       i + String.length re <= String.length text
       && (String.sub text i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  Alcotest.(check (list string)) "names sorted"
    [ "depth"; "requests_total" ] (Metrics.names reg)

(* ------------------------------------------------------------------ *)
(* Chrome-trace export                                                  *)
(* ------------------------------------------------------------------ *)

let gen_event =
  QCheck.Gen.(
    let name = string_size ~gen:printable (int_range 1 12) in
    let arg =
      oneof
        [
          map (fun i -> Trace.Int (Int64.of_int i)) int;
          map (fun f -> Trace.Float (f *. 1e6)) (float_bound_inclusive 1.0);
          map (fun s -> Trace.Str s) (string_size ~gen:printable (int_bound 8));
        ]
    in
    let phase =
      oneofl [ Trace.Span_begin; Trace.Span_end; Trace.Instant; Trace.Counter ]
    in
    map
      (fun (name, ph, cycles, args) ->
        { Trace.name; cat = "test"; ph; cycles = Int64.of_int cycles;
          wall_us = 0.0; args })
      (quad name phase nat (list_size (int_bound 3) (pair name arg))))

let test_chrome_roundtrip () =
  QCheck.Test.make ~count:100
    ~name:"chrome export is valid JSON and round-trips event names"
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) gen_event))
    (fun events ->
      let text = Export.chrome_json events in
      match Export.parse_json text with
      | Error e -> QCheck.Test.fail_reportf "invalid JSON: %s" e
      | Ok json -> (
          match Export.member "traceEvents" json with
          | Some (Export.Arr items) ->
              let names =
                List.map
                  (fun item ->
                    match Export.member "name" item with
                    | Some (Export.Jstr s) -> s
                    | _ -> QCheck.Test.fail_report "event without a name")
                  items
              in
              names = List.map (fun (e : Trace.event) -> e.Trace.name) events
          | _ -> QCheck.Test.fail_report "no traceEvents array"))

(* ------------------------------------------------------------------ *)
(* Engine integration                                                   *)
(* ------------------------------------------------------------------ *)

let run_traced ~invocations program =
  Trace.reset ();
  let engine = Engine.create program in
  let outcomes =
    List.init invocations (fun k ->
        Engine.invoke_entry engine (Helpers.entry_args k))
  in
  (outcomes, engine, Trace.to_canonical_string ())

let test_engine_trace_determinism () =
  with_trace @@ fun () ->
  let program = Helpers.gen_program 11L in
  let out1, _, trace1 = run_traced ~invocations:6 program in
  let out2, _, trace2 = run_traced ~invocations:6 program in
  Alcotest.(check (list Helpers.outcome_testable))
    "identical outcomes" out1 out2;
  Alcotest.(check bool) "trace is non-trivial" true
    (String.length trace1 > 0);
  Alcotest.(check string) "byte-identical canonical traces" trace1 trace2

let test_engine_trace_content () =
  with_trace @@ fun () ->
  let program = Helpers.gen_program 11L in
  let _, _, _ = run_traced ~invocations:6 program in
  let events = Trace.events () in
  let count ph name =
    List.length
      (List.filter
         (fun (e : Trace.event) -> e.Trace.ph = ph && e.Trace.name = name)
         events)
  in
  let begins = count Trace.Span_begin "compile" in
  Alcotest.(check bool) "compile spans present" true (begins > 0);
  Alcotest.(check int) "spans balanced" begins (count Trace.Span_end "compile");
  Alcotest.(check bool) "installs traced" true (count Trace.Instant "install" > 0);
  Alcotest.(check bool) "queue-depth track sampled" true
    (count Trace.Counter "compile_queue_depth" > 0);
  (* compile spans carry the method and level *)
  let has_key k (e : Trace.event) = List.mem_assoc k e.Trace.args in
  Alcotest.(check bool) "compile spans carry meth+level" true
    (List.for_all
       (fun (e : Trace.event) ->
         e.Trace.name <> "compile"
         || e.Trace.ph <> Trace.Span_begin
         || (has_key "meth" e && has_key "level" e))
       events)

let test_engine_metrics_view () =
  let program = Helpers.gen_program 11L in
  let engine = Engine.create program in
  for k = 0 to 5 do
    ignore (Engine.invoke_entry engine (Helpers.entry_args k))
  done;
  let reg = Engine.metrics engine in
  let value name = Metrics.counter_value (Metrics.counter reg name) in
  Alcotest.(check int) "compilations counter backs compile_count"
    (Engine.compile_count engine) (value "jit_compilations_total");
  Alcotest.(check int) "per-level counters sum to the total"
    (Engine.compile_count engine)
    (List.fold_left (fun acc (_, n) -> acc + n) 0
       (Engine.compiles_by_level engine));
  Alcotest.(check int) "histogram count equals compilations"
    (Engine.compile_count engine)
    (Metrics.histogram_count (Metrics.histogram reg "jit_compilation_cycles"));
  Alcotest.(check bool) "exposition mentions the JIT" true
    (String.length (Metrics.expose reg) > 0
    && value "jit_compilations_total" > 0)

(* ------------------------------------------------------------------ *)
(* Protocol stats                                                       *)
(* ------------------------------------------------------------------ *)

let test_server_stats () =
  let server_ch, client_ch = Channel.pipe_pair () in
  let predictor ~level:_ ~features:_ = Modifier.null in
  let lockstep () = ignore (Server.step server_ch predictor) in
  let client = Client.connect ~model_name:"test" ~lockstep client_ch in
  ignore (Client.predict client ~level:Plan.Cold ~features:[| 1.0 |]);
  match Client.stats client with
  | None -> Alcotest.fail "stats round trip failed"
  | Some text ->
      let mentions s =
        let rec go i =
          i + String.length s <= String.length text
          && (String.sub text i (String.length s) = s || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "server counts requests" true
        (mentions "server_requests_total");
      Alcotest.(check bool) "server counts predictions" true
        (mentions "server_predictions_total")

(* ------------------------------------------------------------------ *)
(* Log                                                                  *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  let seen = ref [] in
  Log.set_sink (fun level msg -> seen := (level, msg) :: !seen);
  Fun.protect
    ~finally:(fun () ->
      Log.reset_sink ();
      Log.set_level Log.Info)
    (fun () ->
      Log.set_level Log.Info;
      Log.debug "hidden";
      Log.info "shown";
      Log.warn "loud";
      Alcotest.(check int) "threshold filters debug" 2 (List.length !seen);
      Log.set_level Log.Debug;
      Log.debug "now visible";
      Alcotest.(check int) "debug passes at Debug" 3 (List.length !seen);
      (* mirroring puts log lines on the trace timeline *)
      with_trace @@ fun () ->
      Log.mirror_to_trace := true;
      Fun.protect
        ~finally:(fun () -> Log.mirror_to_trace := false)
        (fun () ->
          Log.warn "traced";
          let evs = Trace.events () in
          Alcotest.(check bool) "mirrored into trace" true
            (List.exists
               (fun (e : Trace.event) ->
                 e.Trace.cat = "log" && e.Trace.name = "traced")
               evs)))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ test_ring_bounds (); test_histogram_sums (); test_chrome_roundtrip () ]
  @ [
      Alcotest.test_case "disabled tracing emits nothing" `Quick
        test_disabled_emits_nothing;
      Alcotest.test_case "registry: idempotent, kind-checked, exposed" `Quick
        test_registry_registration;
      Alcotest.test_case "engine: same seed, byte-identical trace" `Quick
        test_engine_trace_determinism;
      Alcotest.test_case "engine: trace carries spans, installs, queue depth"
        `Quick test_engine_trace_content;
      Alcotest.test_case "engine: accessors read the registry" `Quick
        test_engine_metrics_view;
      Alcotest.test_case "protocol: Stats_req answers with the exposition"
        `Quick test_server_stats;
      Alcotest.test_case "log: thresholds and trace mirroring" `Quick
        test_log_levels;
    ]
