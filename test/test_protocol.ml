module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Tracectx = Tessera_protocol.Tracectx
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Prng = Tessera_util.Prng

let msg_testable = Alcotest.testable Message.pp Message.equal

let roundtrip m =
  let a, b = Channel.pipe_pair () in
  Message.send a m;
  Message.decode_from b

let test_message_roundtrips () =
  List.iter
    (fun m -> Alcotest.check msg_testable "roundtrip" m (roundtrip m))
    [
      Message.Init { model_name = "H3" };
      Message.Init_ok;
      Message.Predict
        { level = Plan.Warm; features = [| 0.0; 0.5; 1.0 |];
          trace = Tracectx.none };
      Message.Predict { level = Plan.Cold; features = [||]; trace = Tracectx.none };
      Message.Prediction
        { modifier = Modifier.of_disabled [ 0; 17; 57 ]; trace = Tracectx.none };
      Message.Ping;
      Message.Pong;
      Message.Shutdown;
      Message.Error_msg "boom";
    ]

let test_message_random_roundtrips () =
  QCheck.Test.make ~count:100 ~name:"random predict frames roundtrip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let m =
        Message.Predict
          {
            level = Prng.choose rng Plan.levels;
            features = Array.init (Prng.int rng 71) (fun _ -> Prng.float rng 1.0);
            trace = Tracectx.none;
          }
      in
      Message.equal m (roundtrip m))

let test_malformed_detected () =
  let a, b = Channel.pipe_pair () in
  (* unknown tag *)
  Channel.write a "\x2a\x00";
  (match Message.decode_from b with
  | _ -> Alcotest.fail "unknown tag accepted"
  | exception Message.Malformed _ -> ());
  (* truncated payload: predict frame claiming features it lacks *)
  Channel.write a "\x03\x03\x00\x02\x01";
  match Message.decode_from b with
  | _ -> Alcotest.fail "truncated accepted"
  | exception Message.Malformed _ -> ()

let test_server_client_session () =
  let server_ch, client_ch = Channel.pipe_pair () in
  let served = ref 0 in
  let predictor ~level ~features =
    incr served;
    ignore level;
    Modifier.of_disabled [ Array.length features mod 58 ]
  in
  let lockstep () = ignore (Server.step server_ch predictor) in
  let client = Client.connect ~model_name:"test" ~lockstep client_ch in
  Alcotest.(check bool) "ping" true (Client.ping client);
  let m = Client.predict client ~level:Plan.Hot ~features:(Array.make 5 0.1) in
  Alcotest.(check (list int)) "predicted modifier" [ 5 ]
    (Modifier.disabled_indices m);
  Alcotest.(check int) "served one predict" 1 !served;
  (* a predictor exception becomes Error_msg and the client falls back *)
  let failing ~level:_ ~features:_ = failwith "model exploded" in
  let lockstep_fail () = ignore (Server.step server_ch failing) in
  Message.send client_ch
    (Message.Predict { level = Plan.Hot; features = [||]; trace = Tracectx.none });
  lockstep_fail ();
  (match Message.decode_from client_ch with
  | Message.Error_msg _ -> ()
  | other -> Alcotest.fail (Format.asprintf "expected error, got %a" Message.pp other));
  (* shutdown stops the loop *)
  Message.send client_ch Message.Shutdown;
  Alcotest.(check bool) "step returns false on shutdown" false
    (Server.step server_ch predictor)

let test_fifo_two_process () =
  let dir = Filename.get_temp_dir_name () in
  let path_a = Filename.concat dir (Printf.sprintf "tsr_test_%d.a" (Unix.getpid ())) in
  let path_b = Filename.concat dir (Printf.sprintf "tsr_test_%d.b" (Unix.getpid ())) in
  let open_a, open_b = Channel.fifo_pair ~path_a ~path_b in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with _ -> ()) [ path_a; path_b ])
    (fun () ->
      match Unix.fork () with
      | 0 ->
          (* child: echo server over real named pipes *)
          let ch = open_a () in
          Server.serve ch (fun ~level:_ ~features ->
              Modifier.of_disabled [ Array.length features ]);
          Unix._exit 0
      | pid ->
          let ch = open_b () in
          let client = Client.connect ~model_name:"fifo" ch in
          let m = Client.predict client ~level:Plan.Cold ~features:(Array.make 7 0.0) in
          Alcotest.(check (list int)) "fifo prediction" [ 7 ]
            (Modifier.disabled_indices m);
          Client.shutdown client;
          let _, status = Unix.waitpid [] pid in
          Alcotest.(check bool) "server exited" true (status = Unix.WEXITED 0))

let test_channel_close () =
  let a, b = Channel.pipe_pair () in
  Channel.close a;
  Alcotest.check_raises "read after close" Channel.Closed (fun () ->
      ignore (Channel.read_exact b 1))

let suite =
  [
    Alcotest.test_case "message roundtrips" `Quick test_message_roundtrips;
    QCheck_alcotest.to_alcotest (test_message_random_roundtrips ());
    Alcotest.test_case "malformed frames detected" `Quick test_malformed_detected;
    Alcotest.test_case "server/client session" `Quick test_server_client_session;
    Alcotest.test_case "two-process FIFO" `Quick test_fifo_two_process;
    Alcotest.test_case "channel close" `Quick test_channel_close;
  ]

(* ------------------------------------------------------------------ *)
(* Trace context                                                       *)
(* ------------------------------------------------------------------ *)

module Codec = Tessera_util.Codec

let test_tracectx_roundtrip () =
  let t = Tracectx.fresh () in
  let c = Tracectx.child t in
  Alcotest.(check bool) "fresh is traced" false (Tracectx.is_none t);
  Alcotest.(check bool) "child keeps the trace id" true
    (c.Tracectx.trace_id = t.Tracectx.trace_id);
  Alcotest.(check bool) "child gets a new span id" true
    (c.Tracectx.span_id <> t.Tracectx.span_id);
  List.iter
    (fun ctx ->
      let buf = Buffer.create 16 in
      Tracectx.write buf ctx;
      let r = Codec.reader_of_string (Buffer.contents buf) in
      Alcotest.(check bool) "write/read_opt roundtrip" true
        (Tracectx.equal ctx (Tracectx.read_opt r)))
    [ t; c ];
  let r = Codec.reader_of_string "" in
  Alcotest.(check bool) "end of payload reads as untraced" true
    (Tracectx.is_none (Tracectx.read_opt r))

let test_traced_message_roundtrips () =
  let ctx = Tracectx.fresh () in
  List.iter
    (fun m -> Alcotest.check msg_testable "traced roundtrip" m (roundtrip m))
    [
      Message.Predict { level = Plan.Warm; features = [| 1.0 |]; trace = ctx };
      Message.Prediction
        { modifier = Modifier.null; trace = Tracectx.child ctx };
    ]

(* A CRC-valid frame whose trailing trace bytes are garbage must decode
   as an untraced request — never a strike.  The frame is hand-built
   here (magic, tag, length varint, payload, CRC-32 LE) so the trace
   bytes can be corrupted while the checksum stays honest. *)
let predict_frame_with_tail tail =
  let payload = Buffer.create 32 in
  Codec.write_varint payload (Plan.level_index Plan.Warm);
  Codec.write_varint payload 2;
  Codec.write_f64 payload 1.5;
  Codec.write_f64 payload 2.5;
  Buffer.add_string payload tail;
  let p = Buffer.contents payload in
  let body = Buffer.create 64 in
  Codec.write_u8 body 3;
  Codec.write_varint body (String.length p);
  Buffer.add_string body p;
  let body = Buffer.contents body in
  let crc = Tessera_util.Crc32.string body in
  let crc_le =
    String.init 4 (fun i ->
        Char.chr
          (Int32.to_int
             (Int32.logand (Int32.shift_right_logical crc (8 * i)) 0xFFl)))
  in
  "\xa7" ^ body ^ crc_le

let test_garbage_trace_degrades () =
  List.iter
    (fun (what, tail) ->
      let frame = predict_frame_with_tail tail in
      match Message.scan frame ~pos:0 with
      | Message.Scan_msg (Message.Predict { features; trace; _ }, consumed) ->
          Alcotest.(check int) (what ^ ": whole frame consumed")
            (String.length frame) consumed;
          Alcotest.(check int) (what ^ ": features intact") 2
            (Array.length features);
          Alcotest.(check bool) (what ^ ": degrades to untraced") true
            (Tracectx.is_none trace)
      | Message.Scan_msg (m, _) ->
          Alcotest.failf "%s: unexpected message %s" what
            (Format.asprintf "%a" Message.pp m)
      | Message.Scan_need_more -> Alcotest.failf "%s: need more" what
      | Message.Scan_bad e -> Alcotest.failf "%s: struck: %s" what e)
    [
      ("truncated varint", "\xff\xff\xff");
      ("zero trace id", "\x00\x05");
      ("half a context", "\x07");
    ]

let suite =
  suite
  @ [
      Alcotest.test_case "trace context roundtrip" `Quick
        test_tracectx_roundtrip;
      Alcotest.test_case "traced messages roundtrip" `Quick
        test_traced_message_roundtrips;
      Alcotest.test_case "garbage trace context degrades to untraced" `Quick
        test_garbage_trace_degrades;
    ]
