module Engine = Tessera_jit.Engine
module Compiler = Tessera_jit.Compiler
module Triggers = Tessera_jit.Triggers
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Program = Tessera_il.Program
module Values = Tessera_vm.Values
open Helpers

let test_compiler_modifier_effect () =
  let p = gen_program 555L in
  let m = Program.meth p 1 in
  let full = Compiler.compile ~program:p ~level:Plan.Hot m in
  let all_off =
    Compiler.compile
      ~modifier:(Modifier.of_disabled (List.init 58 Fun.id))
      ~program:p ~level:Plan.Hot m
  in
  Alcotest.(check bool) "disabling everything is cheaper" true
    (all_off.Compiler.compile_cycles < full.Compiler.compile_cycles);
  Alcotest.(check int) "unoptimized nodes unchanged"
    all_off.Compiler.original_nodes all_off.Compiler.optimized_nodes;
  Alcotest.(check bool) "features extracted pre-optimization" true
    (Tessera_features.Features.get all_off.Compiler.features 3
    = full.Compiler.original_nodes)

let test_levels_cost_ladder () =
  let p = gen_program 556L in
  let m = Program.meth p 1 in
  let costs =
    Array.map
      (fun level -> (Compiler.compile ~program:p ~level m).Compiler.compile_cycles)
      Plan.levels
  in
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "level %d costs more than %d" i (i - 1))
          true (c > costs.(i - 1)))
    costs

let test_async_install_latency () =
  let p = gen_program 557L in
  let engine =
    Engine.create
      ~config:{ Engine.default_config with Engine.adaptive = false }
      p
  in
  Engine.request_compile engine ~meth_id:1 ~level:Plan.Hot ();
  let st = Engine.state engine 1 in
  Alcotest.(check bool) "pending until install time" true (st.Engine.pending <> None);
  Alcotest.(check bool) "still interpreted" true (st.Engine.impl = Engine.Interpreted);
  (* run the entry enough to pass the install time *)
  for k = 0 to 20 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  let st = Engine.state engine 1 in
  Alcotest.(check bool) "installed eventually" true
    (match st.Engine.impl with Engine.Compiled _ -> true | _ -> false)

let test_sync_mode_installs_immediately () =
  let p = gen_program 558L in
  let engine =
    Engine.create
      ~config:
        { Engine.default_config with Engine.adaptive = false; async_compile = false }
      p
  in
  Engine.request_compile engine ~meth_id:1 ~level:Plan.Cold ();
  let st = Engine.state engine 1 in
  Alcotest.(check bool) "installed now" true
    (match st.Engine.impl with Engine.Compiled _ -> true | _ -> false)

let test_adaptive_escalates () =
  let p = gen_program 559L in
  let engine = Engine.create p in
  for k = 0 to 80 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  let by_level = Engine.compiles_by_level engine in
  Alcotest.(check bool) "cold compiles happened" true
    (List.mem_assoc Plan.Cold by_level);
  Alcotest.(check bool) "warm compiles happened" true
    (List.mem_assoc Plan.Warm by_level);
  Alcotest.(check bool) "some method reached hot" true
    (List.mem_assoc Plan.Hot by_level);
  (* compilation time accounting is consistent *)
  Alcotest.(check bool) "compile cycles positive" true
    (Int64.compare (Engine.total_compile_cycles engine) 0L > 0);
  Alcotest.(check int) "count matches levels"
    (Engine.compile_count engine)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 by_level)

let test_choose_modifier_none_stops () =
  let p = gen_program 560L in
  let calls = ref 0 in
  let engine =
    Engine.create
      ~callbacks:
        {
          Engine.no_callbacks with
          Engine.choose_modifier =
            Some
              (fun _ ~meth_id:_ ~level:_ ->
                incr calls;
                None);
        }
      p
  in
  for k = 0 to 40 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  Alcotest.(check bool) "model consulted" true (!calls > 0);
  Alcotest.(check int) "nothing compiled" 0 (Engine.compile_count engine);
  (* every consulted method is marked no_more: consultations stop growing *)
  let before = !calls in
  for k = 0 to 40 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  Alcotest.(check int) "no more consultations" before !calls

let test_instrumented_samples () =
  let p = gen_program 561L in
  let samples = ref 0 and invalid = ref 0 in
  let engine =
    Engine.create
      ~config:{ Engine.default_config with Engine.instrument = true }
      ~callbacks:
        {
          Engine.no_callbacks with
          Engine.on_sample =
            Some
              (fun _ ~meth_id:_ ~cycles ~valid ->
                incr samples;
                if not valid then incr invalid;
                Alcotest.(check bool) "exclusive cycles nonnegative" true
                  (Int64.compare cycles 0L >= 0));
        }
      p
  in
  for k = 0 to 10 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  Alcotest.(check bool) "samples collected" true (!samples > 50)

let test_exclusive_timing () =
  (* in a caller/callee pair, the sum of exclusive samples matches the
     caller's inclusive time *)
  let src =
    {|
program "excl" entry 0
method "A.caller()I" (static) returns int {
  block 0 {
    (return (add int (call int $1) (call int $1)))
  }
}
method "B.leaf()I" (static) returns int {
  temp "i" int
  block 0 {
    (store void $0 (loadconst int 0))
    (goto 1)
  }
  block 1 {
    (inc void $0 1)
    (if (cmp.lt int (load int $0) (loadconst int 50)) 1 2)
  }
  block 2 {
    (return (load int $0))
  }
}
|}
  in
  let p = Tessera_lang.Parser.parse_program src in
  let excl = Array.make 2 0L in
  let engine =
    Engine.create
      ~config:
        { Engine.default_config with Engine.instrument = true; adaptive = false }
      ~callbacks:
        {
          Engine.no_callbacks with
          Engine.on_sample =
            Some
              (fun _ ~meth_id ~cycles ~valid:_ ->
                excl.(meth_id) <- Int64.add excl.(meth_id) cycles);
        }
      p
  in
  (match Engine.invoke_entry engine [||] with
  | Ok (Values.Int_v 100L) -> ()
  | other ->
      Alcotest.fail
        (Format.asprintf "unexpected result %a"
           (fun fmt -> function
             | Ok v -> Values.pp fmt v
             | Error t -> Format.fprintf fmt "trap %s" (Values.trap_name t))
           other));
  (* the leaf does the looping: its exclusive time dominates *)
  Alcotest.(check bool)
    (Printf.sprintf "leaf %Ld > caller %Ld" excl.(1) excl.(0))
    true
    (Int64.compare excl.(1) excl.(0) > 0)

let test_contention_charges_app () =
  let p = gen_program 562L in
  let run contention =
    let engine =
      Engine.create
        ~config:{ Engine.default_config with Engine.contention; adaptive = false }
        p
    in
    Engine.request_compile engine ~meth_id:1 ~level:Plan.Scorching ();
    Engine.app_cycles engine
  in
  Alcotest.(check bool) "contention charges the app clock" true
    (Int64.compare (run 0.5) (run 0.0) > 0)

let test_snapshot_restore () =
  let p = gen_program 563L in
  let config = { Engine.default_config with Engine.instrument = true } in
  let engine = Engine.create ~config p in
  for k = 0 to 9 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  let snap = Engine.snapshot engine in
  let at_snap = Engine.clock_now engine in
  (* diverge: more invocations plus a forced compilation *)
  for k = 10 to 19 do
    ignore (Engine.invoke_entry engine (entry_args k))
  done;
  Engine.request_compile engine ~meth_id:1 ~level:Plan.Scorching ();
  let diverged = Engine.clock_now engine in
  Alcotest.(check bool) "diverged" true (Int64.compare diverged at_snap > 0);
  Engine.restore engine snap;
  Alcotest.(check int64) "clock rewound" at_snap (Engine.clock_now engine);
  (* the restored engine replays the exact same future as an engine that
     never diverged *)
  let control = Engine.create ~config p in
  for k = 0 to 9 do
    ignore (Engine.invoke_entry control (entry_args k))
  done;
  for k = 10 to 29 do
    let a = Engine.invoke_entry engine (entry_args k) in
    let b = Engine.invoke_entry control (entry_args k) in
    Alcotest.(check bool) "same results" true (a = b);
    Alcotest.(check int64)
      (Printf.sprintf "same clock after invocation %d" k)
      (Engine.clock_now control) (Engine.clock_now engine)
  done

let test_fork_isolation () =
  let p = gen_program 564L in
  let config = { Engine.default_config with Engine.instrument = true } in
  (* control: a run that never forks *)
  let control = Engine.create ~config p in
  let trunk = Engine.create ~config p in
  for k = 0 to 29 do
    ignore (Engine.invoke_entry control (entry_args k));
    ignore (Engine.invoke_entry trunk (entry_args k));
    if k mod 5 = 0 then begin
      (* fork a branch, perturb it hard, throw it away *)
      let branch = Engine.fork trunk in
      Engine.request_compile branch ~meth_id:1 ~level:Plan.Scorching ();
      for j = 0 to 4 do
        ignore (Engine.invoke_entry branch (entry_args (k + j)))
      done;
      Engine.claim_trace_source trunk;
      Alcotest.(check bool) "branch clock advanced independently" true
        (Int64.compare (Engine.clock_now branch) (Engine.clock_now trunk) > 0)
    end;
    Alcotest.(check int64)
      (Printf.sprintf "trunk cycle stream untouched at %d" k)
      (Engine.clock_now control) (Engine.clock_now trunk)
  done;
  Alcotest.(check int) "same compilations" (Engine.compile_count control)
    (Engine.compile_count trunk)

let suite =
  [
    Alcotest.test_case "modifier affects compilation" `Quick
      test_compiler_modifier_effect;
    Alcotest.test_case "level cost ladder" `Quick test_levels_cost_ladder;
    Alcotest.test_case "async install latency" `Quick test_async_install_latency;
    Alcotest.test_case "sync mode installs immediately" `Quick
      test_sync_mode_installs_immediately;
    Alcotest.test_case "adaptive escalation" `Quick test_adaptive_escalates;
    Alcotest.test_case "choose_modifier None stops recompiling" `Quick
      test_choose_modifier_none_stops;
    Alcotest.test_case "instrumented samples" `Quick test_instrumented_samples;
    Alcotest.test_case "exclusive timing" `Quick test_exclusive_timing;
    Alcotest.test_case "compile contention" `Quick test_contention_charges_app;
    Alcotest.test_case "snapshot/restore rewinds exactly" `Quick
      test_snapshot_restore;
    Alcotest.test_case "fork never perturbs the trunk" `Quick
      test_fork_isolation;
  ]
