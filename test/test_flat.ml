(* The flat execution tier: fuel semantics, the differential oracle
   against the tree walker (results AND charged cycles, the property the
   whole tier rests on), the verifier, the binary codec, code-cache
   persistence, and engine-level parity. *)

module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values
module Interp = Tessera_vm.Interp
module Prog = Tessera_flat.Prog
module Flat_interp = Tessera_flat.Interp
module Flat_codec = Tessera_flat.Codec
module Codecache = Tessera_cache.Codecache
module Engine = Tessera_jit.Engine
module Parser = Tessera_lang.Parser
module Plan = Tessera_opt.Plan

(* ---- execution harnesses ------------------------------------------ *)

(* Outcome including fuel exhaustion, so low-fuel runs can be compared
   tier against tier too. *)
type ext_outcome = Done of Helpers.outcome | Fuel

let pp_ext fmt = function
  | Done o -> Helpers.pp_outcome fmt o
  | Fuel -> Format.fprintf fmt "Out_of_fuel"

let ext_equal a b =
  match (a, b) with
  | Done x, Done y -> Helpers.outcome_equal x y
  | Fuel, Fuel -> true
  | _ -> false

let ext_testable = Alcotest.testable pp_ext ext_equal

(* Run every method of [program] in one fixed all-interpreted tier:
   the tree walker, the flat loop, or the flat loop over fused code. *)
let run_tier ?(fuel = 200_000_000) ?(transform = fun _id m -> m) ~tier
    (program : Program.t) args =
  let methods =
    Array.mapi (fun id m -> transform id m) program.Program.methods
  in
  let flats =
    match tier with
    | `Tree -> [||]
    | `Flat -> Array.map Prog.of_meth methods
    | `Fused -> Array.map (fun m -> Prog.fuse (Prog.of_meth m)) methods
  in
  let cycles = ref 0 in
  let charge n = cycles := !cycles + n in
  let fuel_ref = ref fuel in
  let rec invoke id args =
    let ctx =
      {
        Interp.classes = program.Program.classes;
        charge;
        invoke;
        fuel = fuel_ref;
      }
    in
    match tier with
    | `Tree -> Interp.run ctx methods.(id) args
    | `Flat | `Fused -> Flat_interp.run ctx flats.(id) args
  in
  let outcome =
    match invoke program.Program.entry args with
    | v -> Done (Ok v)
    | exception Values.Trap k -> Done (Error k)
    | exception Interp.Out_of_fuel -> Fuel
  in
  (outcome, !cycles)

let parse src = Parser.parse_program src

(* ---- satellite: fuel off-by-one ----------------------------------- *)

(* A bare [(return)] costs exactly one fuel unit (the block entry), so a
   caller granting fuel=1 must see it complete; the historical
   decrement-then-check discipline raised Out_of_fuel here. *)
let ret_void_src =
  {|
program "f" entry 0
method "F.m()V" () returns void {
  block 0 {
    (return)
  }
}
|}

let ret_const_src =
  {|
program "f" entry 0
method "F.m()I" () returns int {
  block 0 {
    (return (loadconst int 7))
  }
}
|}

let test_fuel_boundary () =
  let check ~fuel src expected =
    let got, _ = run_tier ~fuel ~tier:`Tree (parse src) [||] in
    Alcotest.check ext_testable (Printf.sprintf "fuel=%d" fuel) expected got
  in
  check ~fuel:1 ret_void_src (Done (Ok Values.Void_v));
  check ~fuel:0 ret_void_src Fuel;
  (* block entry + one node *)
  check ~fuel:2 ret_const_src (Done (Ok (Values.Int_v 7L)));
  check ~fuel:1 ret_const_src Fuel

let test_fuel_boundary_flat () =
  (* the flat tier inherits the same boundary exactly *)
  List.iter
    (fun tier ->
      let run ~fuel src = fst (run_tier ~fuel ~tier (parse src) [||]) in
      Alcotest.check ext_testable "fuel=1 void" (Done (Ok Values.Void_v))
        (run ~fuel:1 ret_void_src);
      Alcotest.check ext_testable "fuel=0 void" Fuel (run ~fuel:0 ret_void_src);
      Alcotest.check ext_testable "fuel=2 const"
        (Done (Ok (Values.Int_v 7L)))
        (run ~fuel:2 ret_const_src);
      Alcotest.check ext_testable "fuel=1 const" Fuel (run ~fuel:1 ret_const_src))
    [ `Flat; `Fused ]

(* ---- satellite: fingerprint memoization --------------------------- *)

let test_fingerprint_memo () =
  QCheck.Test.make ~count:30 ~name:"memoized fingerprint = uncached"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let program = Helpers.gen_program (Int64.of_int (seed + 11)) in
      Array.for_all
        (fun m ->
          let fp = Meth.fingerprint m in
          (* memo hit must return the same value *)
          Int64.equal fp (Meth.fingerprint m)
          && Int64.equal fp (Meth.fingerprint_uncached m)
          &&
          (* mutation points reset the memo: a rebuilt method computes a
             fresh (equal, since the trees are equal) fingerprint *)
          let m' = Meth.map_trees (fun n -> n) m in
          ignore (Meth.fingerprint m);
          Int64.equal (Meth.fingerprint m') (Meth.fingerprint_uncached m')
          && Int64.equal (Meth.fingerprint m') fp
          &&
          let m'' = Meth.with_blocks m m.Meth.blocks in
          Int64.equal (Meth.fingerprint m'') (Meth.fingerprint_uncached m''))
        program.Program.methods)

(* ---- tentpole: the differential oracle ---------------------------- *)

let transform_of_level program = function
  | 0 -> fun _id m -> m
  | 1 ->
      Helpers.optimize_all ~plan:(Plan.plan Plan.Cold)
        ~enabled:(fun _ -> true)
        program
  | 2 ->
      Helpers.optimize_all ~plan:(Plan.plan Plan.Hot)
        ~enabled:(fun _ -> true)
        program
  | _ ->
      Helpers.optimize_all ~plan:(Plan.plan Plan.Scorching)
        ~enabled:(fun _ -> true)
        program

(* Generated whole programs, at every optimization level, with and
   without superinstructions: the flat tier must produce bit-identical
   results and charge bit-identical cycles to the tree walker. *)
let test_differential () =
  QCheck.Test.make ~count:60
    ~name:"flat = tree: identical results and cycles"
    QCheck.(triple (int_bound 10_000) (int_bound 3) (int_bound 50))
    (fun (seed, lvl, arg) ->
      let program = Helpers.gen_program (Int64.of_int (seed + 3)) in
      let transform = transform_of_level program lvl in
      let args = Helpers.entry_args arg in
      let tree = run_tier ~transform ~tier:`Tree program args in
      let flat = run_tier ~transform ~tier:`Flat program args in
      let fused = run_tier ~transform ~tier:`Fused program args in
      if not (ext_equal (fst tree) (fst flat) && snd tree = snd flat) then
        QCheck.Test.fail_reportf "flat diverged: %a/%d vs %a/%d" pp_ext
          (fst tree) (snd tree) pp_ext (fst flat) (snd flat);
      if not (ext_equal (fst tree) (fst fused) && snd tree = snd fused) then
        QCheck.Test.fail_reportf "fused diverged: %a/%d vs %a/%d" pp_ext
          (fst tree) (snd tree) pp_ext (fst fused) (snd fused);
      true)

(* Near fuel exhaustion the superinstruction fast paths must not move
   the out-of-fuel point or the cycles charged before it. *)
let test_differential_low_fuel () =
  QCheck.Test.make ~count:40
    ~name:"flat = tree under any fuel budget (exhaustion point, cycles)"
    QCheck.(pair (int_bound 10_000) (int_bound 2_000))
    (fun (seed, fuel) ->
      let program = Helpers.gen_program (Int64.of_int (seed + 17)) in
      let args = Helpers.entry_args 1 in
      let tree = run_tier ~fuel ~tier:`Tree program args in
      let flat = run_tier ~fuel ~tier:`Flat program args in
      let fused = run_tier ~fuel ~tier:`Fused program args in
      ext_equal (fst tree) (fst flat)
      && snd tree = snd flat
      && ext_equal (fst tree) (fst fused)
      && snd tree = snd fused)

(* ---- verifier ----------------------------------------------------- *)

let two_block_src =
  {|
program "g" entry 0
method "G.m()I" () returns int {
  block 0 {
    (goto 1)
  }
  block 1 {
    (return (loadconst int 3))
  }
}
|}

let flat_of_src src =
  let p = parse src in
  Prog.of_meth (Program.meth p p.Program.entry)

let test_verifier_rejects_corruption () =
  let p = flat_of_src two_block_src in
  (match Prog.verify p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid program rejected: %s" e);
  (* a jump into the middle of a block is not a block entry *)
  let bad_jump =
    let instrs = Array.copy p.Prog.instrs in
    Array.iteri
      (fun i ins ->
        match ins with Prog.Jmp t -> instrs.(i) <- Prog.Jmp (t + 1) | _ -> ())
      instrs;
    { p with Prog.instrs = instrs }
  in
  (match Prog.verify bad_jump with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt jump target accepted");
  (* truncation desynchronizes the block tables *)
  let truncated =
    { p with Prog.instrs = Array.sub p.Prog.instrs 0 (Prog.code_size p - 1) }
  in
  match Prog.verify truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated code accepted"

(* ---- binary codec ------------------------------------------------- *)

let test_codec_roundtrip () =
  QCheck.Test.make ~count:30 ~name:"flat codec round-trips (hash-equal)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let program = Helpers.gen_program (Int64.of_int (seed + 29)) in
      Array.for_all
        (fun m ->
          let base = Prog.of_meth m in
          let p' = Flat_codec.of_string (Flat_codec.to_string base) in
          Int64.equal (Prog.hash p') (Prog.hash base)
          && p'.Prog.max_stack = base.Prog.max_stack
          && Int64.equal p'.Prog.source_fp base.Prog.source_fp)
        program.Program.methods)

let test_codec_rejects_corruption () =
  QCheck.Test.make ~count:20
    ~name:"flat codec: corrupt bytes raise, never decode wrong"
    QCheck.(pair (int_bound 10_000) (int_bound 1_000))
    (fun (seed, pos_seed) ->
      let program = Helpers.gen_program (Int64.of_int (seed + 31)) in
      let m = Program.meth program program.Program.entry in
      let base = Prog.of_meth m in
      let s = Flat_codec.to_string base in
      let pos = pos_seed mod String.length s in
      let corrupt = Bytes.of_string s in
      Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0x2a));
      match Flat_codec.of_string (Bytes.to_string corrupt) with
      | exception Flat_codec.Malformed _ -> true
      | exception Tessera_util.Codec.Truncated _ -> true
      | p' ->
          (* the trailing integrity hash makes silent acceptance of a
             damaged payload effectively impossible *)
          Int64.equal (Prog.hash p') (Prog.hash base))

let test_codec_rejects_fused () =
  let p =
    flat_of_src
      {|
program "s" entry 0
method "S.m()I" () returns int {
  temp "t" int
  block 0 {
    (store void $0 (loadconst int 1))
    (return (loadconst int 2))
  }
}
|}
  in
  let fused = Prog.fuse p in
  Alcotest.(check bool) "source fuses at least one pair" true
    (fused.Prog.fused_pairs > 0);
  match Flat_codec.to_string fused with
  | exception Flat_codec.Malformed _ -> ()
  | _ -> Alcotest.fail "fused program encoded"

(* ---- code-cache persistence --------------------------------------- *)

let with_cache_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tessera_test_flat_%d" (Unix.getpid ()))
  in
  let clear () =
    if Sys.file_exists dir then begin
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  clear ();
  Fun.protect ~finally:clear (fun () -> f dir)

let test_codecache_flat_roundtrip () =
  with_cache_dir (fun dir ->
      let program = Helpers.gen_program 4242L in
      let m = Program.meth program program.Program.entry in
      let base = Prog.of_meth m in
      let cache = Codecache.create ~dir () in
      Alcotest.(check bool) "miss on empty" true
        (Codecache.lookup_flat cache ~meth:m = None);
      Codecache.store_flat cache ~meth:m base;
      (match Codecache.lookup_flat cache ~meth:m with
      | Some p' ->
          Alcotest.(check bool) "hash-equal after reload" true
            (Int64.equal (Prog.hash p') (Prog.hash base))
      | None -> Alcotest.fail "stored flat form not found");
      Codecache.close cache;
      (* survives a reopen (true persistence, not the in-memory map) *)
      let cache = Codecache.create ~dir () in
      (match Codecache.lookup_flat cache ~meth:m with
      | Some p' ->
          Alcotest.(check bool) "hash-equal after reopen" true
            (Int64.equal (Prog.hash p') (Prog.hash base))
      | None -> Alcotest.fail "flat form lost across reopen");
      Codecache.close cache)

let test_codecache_flat_stale_dropped () =
  with_cache_dir (fun dir ->
      let program = Helpers.gen_program 777L in
      let m = Program.meth program program.Program.entry in
      let base = Prog.of_meth m in
      (* an entry whose recorded source fingerprint disagrees with the
         method must be dropped as stale, never returned *)
      let stale = { base with Prog.source_fp = Int64.add base.Prog.source_fp 1L } in
      let cache = Codecache.create ~dir () in
      Codecache.store_flat cache ~meth:m stale;
      Alcotest.(check bool) "stale entry dropped" true
        (Codecache.lookup_flat cache ~meth:m = None);
      Codecache.close cache)

(* ---- engine-level parity ------------------------------------------ *)

let test_engine_parity () =
  let program = Helpers.gen_program 99L in
  let run use_flat =
    let engine =
      Engine.create ~config:{ Engine.default_config with Engine.use_flat } program
    in
    let results =
      List.init 8 (fun i -> Engine.invoke_entry engine (Helpers.entry_args i))
    in
    (results, Engine.app_cycles engine)
  in
  let flat_results, flat_cycles = run true in
  let tree_results, tree_cycles = run false in
  List.iter2
    (fun a b -> Alcotest.check Helpers.outcome_testable "invocation result" a b)
    tree_results flat_results;
  Alcotest.(check int64) "app cycles" tree_cycles flat_cycles

let suite =
  [
    Alcotest.test_case "fuel boundary (tree)" `Quick test_fuel_boundary;
    Alcotest.test_case "fuel boundary (flat tiers)" `Quick
      test_fuel_boundary_flat;
    Alcotest.test_case "verifier rejects corruption" `Quick
      test_verifier_rejects_corruption;
    Alcotest.test_case "codec rejects fused programs" `Quick
      test_codec_rejects_fused;
    Alcotest.test_case "codecache flat round-trip" `Quick
      test_codecache_flat_roundtrip;
    Alcotest.test_case "codecache drops stale flat forms" `Quick
      test_codecache_flat_stale_dropped;
    Alcotest.test_case "engine parity flat vs tree" `Quick test_engine_parity;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        test_fingerprint_memo ();
        test_differential ();
        test_differential_low_fuel ();
        test_codec_roundtrip ();
        test_codec_rejects_corruption ();
      ]
