let () =
  Alcotest.run "tessera"
    [
      (* protocol first: its two-process test forks, and Unix.fork is
         illegal once any suite has spawned a domain (the pool and
         obs domain-safety tests do) *)
      ("protocol", Test_protocol.suite);
      ("serve", Test_serve.suite);
      ("util", Test_util.suite);
      ("il", Test_il.suite);
      ("vm", Test_vm.suite);
      ("codegen", Test_codegen.suite);
      ("interp", Test_interp.suite);
      ("lang", Test_lang.suite);
      ("lexer", Test_lexer.suite);
      ("opt", Test_opt.suite);
      ("analysis", Test_analysis.suite);
      ("features", Test_features.suite);
      ("modifiers", Test_modifiers.suite);
      ("collect", Test_collect.suite);
      ("dataproc", Test_dataproc.suite);
      ("svm", Test_svm.suite);
      ("faults", Test_faults.suite);
      ("jit", Test_jit.suite);
      ("workloads", Test_workloads.suite);
      ("engines", Test_engines.suite);
      ("properties", Test_properties.suite);
      ("harness", Test_harness.suite);
      ("cache", Test_cache.suite);
      ("obs", Test_obs.suite);
      ("flat", Test_flat.suite);
    ]
