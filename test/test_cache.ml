(* The persistent code cache: codec round-trips (qcheck), store
   durability/LRU/damage-tolerance, engine warm-start equivalence, and
   the exhaustive single-byte fault matrix — no flipped bit anywhere in
   the cache file may change program output or escape the counters. *)

module Isa = Tessera_codegen.Isa
module Isa_codec = Tessera_codegen.Isa_codec
module Opcode = Tessera_il.Opcode
module Types = Tessera_il.Types
module Node = Tessera_il.Node
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program
module Cost = Tessera_vm.Cost
module Target = Tessera_vm.Target
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Features = Tessera_features.Features
module Profile = Tessera_workloads.Profile
module Generate = Tessera_workloads.Generate
module Engine = Tessera_jit.Engine
module Store = Tessera_cache.Store
module Codecache = Tessera_cache.Codecache

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                  *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let path = Filename.temp_file "tessera_cache" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Generators                                                           *)
(* ------------------------------------------------------------------ *)

let gen_ty = QCheck.Gen.oneofl (Array.to_list Types.all)

let gen_binop =
  QCheck.Gen.oneofl
    Opcode.
      [
        Add; Sub; Mul; Div; Rem; Shift Shl; Shift Shr; Shift Ushr; Or; And;
        Xor; Compare Eq; Compare Ne; Compare Lt; Compare Le; Compare Gt;
        Compare Ge;
      ]

let gen_cast =
  QCheck.Gen.oneofl
    Opcode.
      [
        C_byte; C_char; C_short; C_int; C_long; C_float; C_double;
        C_longdouble; C_address; C_object; C_packed; C_zoned; C_check;
      ]

let gen_instr =
  let open QCheck.Gen in
  let small = int_range 0 48 in
  let i64 = map Int64.of_int (int_range (-1000) 1000) in
  oneof
    [
      map2 (fun ty v -> Isa.Const (ty, v)) gen_ty i64;
      map (fun i -> Isa.Load_local i) small;
      map2 (fun i ty -> Isa.Store_local (i, ty)) small gen_ty;
      map3 (fun i d ty -> Isa.Inc_local (i, d, ty)) small i64 gen_ty;
      map (fun i -> Isa.Field_load i) small;
      map (fun i -> Isa.Field_store i) small;
      return Isa.Elem_load;
      return Isa.Elem_store;
      map2 (fun op ty -> Isa.Binop (op, ty)) gen_binop gen_ty;
      map (fun ty -> Isa.Negate ty) gen_ty;
      map2 (fun k ty -> Isa.Cast_to (k, ty)) gen_cast gen_ty;
      map (fun i -> Isa.Checkcast i) small;
      map (fun i -> Isa.New_obj i) small;
      map (fun ty -> Isa.New_arr ty) gen_ty;
      map (fun ty -> Isa.New_multi ty) gen_ty;
      map (fun i -> Isa.Instance_of i) small;
      map (fun b -> Isa.Monitor b) bool;
      map3 (fun callee n ty -> Isa.Invoke (callee, n, ty)) small
        (int_range 0 6) gen_ty;
      map2 (fun n ty -> Isa.Mixed_op (n, ty)) (int_range 0 6) gen_ty;
      return Isa.Bounds_chk;
      return Isa.Arr_copy;
      return Isa.Arr_cmp;
      return Isa.Arr_len;
      return Isa.Pop;
      map (fun pc -> Isa.Jump pc) small;
      map (fun pc -> Isa.Jump_if_false pc) small;
      map (fun b -> Isa.Ret b) bool;
      return Isa.Throw_instr;
    ]

let gen_compiled =
  let open QCheck.Gen in
  int_range 0 32 >>= fun n ->
  array_repeat n gen_instr >>= fun instrs ->
  array_repeat n (int_range 0 500) >>= fun costs ->
  int_range 1 8 >>= fun nblocks ->
  array_repeat n (int_range 0 (nblocks - 1)) >>= fun block_of_pc ->
  array_repeat nblocks (int_range 0 n) >>= fun block_start ->
  array_repeat nblocks (int_range (-1) 6) >>= fun handler_of_block ->
  int_range 0 6 >>= fun nlocals ->
  array_repeat nlocals gen_ty >>= fun local_types ->
  gen_ty >>= fun ret ->
  int_range 0 4 >>= fun nargs ->
  bool >>= fun sync_method ->
  oneofl [ Cost.Q_base; Cost.Q_regalloc; Cost.Q_full ] >>= fun quality ->
  string_size ~gen:printable (int_range 1 12) >>= fun method_name ->
  return
    {
      Isa.method_name;
      instrs;
      costs;
      block_of_pc;
      block_start;
      handler_of_block;
      local_types;
      ret;
      nargs;
      sync_method;
      quality;
      code_size = n;
    }

let arb_compiled =
  QCheck.make ~print:(fun c -> Format.asprintf "%a" Isa.pp c) gen_compiled

let gen_entry =
  let open QCheck.Gen in
  gen_compiled >>= fun code ->
  oneofl (Array.to_list Plan.levels) >>= fun level ->
  map (fun i -> Modifier.of_bits (Int64.of_int i)) (int_range 0 0xFFFF)
  >>= fun modifier ->
  map Features.of_array (array_repeat Features.dim (int_range 0 2000))
  >>= fun features ->
  int_range 0 1_000_000 >>= fun compile_cycles ->
  int_range 0 5_000 >>= fun optimized_nodes ->
  int_range 0 5_000 >>= fun original_nodes ->
  return
    {
      Codecache.code;
      level;
      modifier;
      features;
      compile_cycles;
      optimized_nodes;
      original_nodes;
    }

let entry_equal (a : Codecache.entry) (b : Codecache.entry) =
  a.Codecache.code = b.Codecache.code
  && a.Codecache.level = b.Codecache.level
  && Modifier.equal a.Codecache.modifier b.Codecache.modifier
  && Features.equal a.Codecache.features b.Codecache.features
  && a.Codecache.compile_cycles = b.Codecache.compile_cycles
  && a.Codecache.optimized_nodes = b.Codecache.optimized_nodes
  && a.Codecache.original_nodes = b.Codecache.original_nodes

(* ------------------------------------------------------------------ *)
(* Codec round-trips (qcheck)                                           *)
(* ------------------------------------------------------------------ *)

let test_isa_roundtrip () =
  QCheck.Test.make ~count:200 ~name:"isa codec: decode (encode c) = c"
    arb_compiled (fun c ->
      Isa_codec.of_string (Isa_codec.to_string c) = c)

let test_isa_fixpoint () =
  QCheck.Test.make ~count:200
    ~name:"isa codec: encode is a fixpoint of decode ∘ encode" arb_compiled
    (fun c ->
      let s = Isa_codec.to_string c in
      String.equal s (Isa_codec.to_string (Isa_codec.of_string s)))

let test_entry_roundtrip () =
  QCheck.Test.make ~count:100 ~name:"entry codec: decode (encode e) = e"
    (QCheck.make gen_entry)
    (fun e -> entry_equal e (Codecache.decode_entry (Codecache.encode_entry e)))

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                         *)
(* ------------------------------------------------------------------ *)

let test_fingerprint () =
  let p = Helpers.gen_program 42L in
  let m = p.Program.methods.(1) in
  let fp level modifier target =
    Codecache.fingerprint ~target ~level ~modifier m
  in
  let base = fp Plan.Warm Modifier.null Target.zircon in
  Alcotest.(check bool)
    "deterministic" true
    (Int64.equal base (fp Plan.Warm Modifier.null Target.zircon));
  (* uids are not part of the content: rebuilding every node must not
     move the fingerprint *)
  let rebuilt =
    Meth.map_trees
      (Node.map_bottom_up (fun n -> Node.with_args n n.Node.args))
      m
  in
  Alcotest.(check bool)
    "uid-independent" true
    (Int64.equal base
       (Codecache.fingerprint ~target:Target.zircon ~level:Plan.Warm
          ~modifier:Modifier.null rebuilt));
  let distinct =
    [
      fp Plan.Hot Modifier.null Target.zircon;
      fp Plan.Warm (Modifier.of_bits 1L) Target.zircon;
      fp Plan.Warm Modifier.null Target.obsidian;
      Codecache.fingerprint ~target:Target.zircon ~level:Plan.Warm
        ~modifier:Modifier.null
        p.Program.methods.(2);
    ]
  in
  List.iteri
    (fun i other ->
      Alcotest.(check bool)
        (Printf.sprintf "sensitive %d" i)
        false (Int64.equal base other))
    distinct

(* ------------------------------------------------------------------ *)
(* Store                                                                *)
(* ------------------------------------------------------------------ *)

let with_store_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_store_roundtrip () =
  with_store_dir @@ fun dir ->
  let path = Filename.concat dir "s.tscc" in
  let s = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Store.add s 1L "alpha";
  Store.add s 2L "beta";
  Store.add s 1L "gamma";
  Alcotest.(check (option string))
    "supersede in memory" (Some "gamma") (Store.find s 1L);
  Store.close s;
  let s2 = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Alcotest.(check int) "entries survive close" 2 (Store.entry_count s2);
  Alcotest.(check (option string))
    "supersede survives close" (Some "gamma") (Store.find s2 1L);
  Alcotest.(check (option string)) "find beta" (Some "beta") (Store.find s2 2L);
  Alcotest.(check (option string)) "miss" None (Store.find s2 3L);
  let c = Store.counters s2 in
  Alcotest.(check int) "hits" 2 c.Store.hits;
  Alcotest.(check int) "misses" 1 c.Store.misses;
  Alcotest.(check int) "nothing corrupt" 0 c.Store.corrupt_entries;
  Store.close s2

let test_store_lru_eviction () =
  with_store_dir @@ fun dir ->
  let path = Filename.concat dir "s.tscc" in
  let value = String.make 64 'x' in
  (* each frame is 82 bytes (1 magic + 1 len + 8 key + 64 value + 8 crc);
     capacity holds two of them *)
  let s = Store.open_ ~path ~capacity_bytes:170 ~readonly:false in
  Store.add s 1L value;
  Store.add s 2L value;
  ignore (Store.find s 1L);
  (* key 2 is now least recently used *)
  Store.add s 3L value;
  Alcotest.(check (option string)) "LRU victim gone" None (Store.find s 2L);
  Alcotest.(check bool) "refreshed key kept" true (Store.find s 1L <> None);
  Alcotest.(check bool) "new key kept" true (Store.find s 3L <> None);
  Alcotest.(check int) "evictions" 1 (Store.counters s).Store.evictions;
  Alcotest.(check bool)
    "capacity respected" true
    (Store.byte_size s <= 170);
  Store.close s;
  (* compaction reclaims the evicted frame; the survivors reload *)
  let s2 = Store.open_ ~path ~capacity_bytes:170 ~readonly:false in
  Alcotest.(check int) "survivors reload" 2 (Store.entry_count s2);
  Store.close s2

let test_store_torn_tail () =
  with_store_dir @@ fun dir ->
  let path = Filename.concat dir "s.tscc" in
  let s = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Store.add s 1L "alpha";
  Store.add s 2L "beta";
  Store.add s 3L "gamma";
  Store.close s;
  let image = read_file path in
  (* crash mid-append: the last frame is half written *)
  write_file path (String.sub image 0 (String.length image - 5));
  let s2 = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Alcotest.(check int) "torn frame dropped" 2 (Store.entry_count s2);
  Alcotest.(check bool)
    "torn frame counted" true
    ((Store.counters s2).Store.corrupt_entries > 0);
  Alcotest.(check (option string))
    "intact prefix readable" (Some "alpha") (Store.find s2 1L);
  Store.close s2;
  (* the compaction on close scrubbed the damage away *)
  let s3 = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Alcotest.(check int)
    "scrubbed clean" 0
    (Store.counters s3).Store.corrupt_entries;
  Alcotest.(check int) "survivors persist" 2 (Store.entry_count s3);
  Store.close s3

let test_store_version_stale () =
  with_store_dir @@ fun dir ->
  let path = Filename.concat dir "s.tscc" in
  let s = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Store.add s 1L "alpha";
  Store.close s;
  let image = Bytes.of_string (read_file path) in
  Bytes.set image 4 (Char.chr (Char.code (Bytes.get image 4) + 1));
  write_file path (Bytes.to_string image);
  let s2 = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Alcotest.(check int) "future format ignored" 0 (Store.entry_count s2);
  Alcotest.(check int)
    "counted stale, not corrupt" 1
    (Store.counters s2).Store.stale_entries;
  Alcotest.(check int)
    "not corrupt" 0
    (Store.counters s2).Store.corrupt_entries;
  Store.close s2

(* ------------------------------------------------------------------ *)
(* Engine warm start                                                    *)
(* ------------------------------------------------------------------ *)

(* One full adaptive run of a generated program over a given cache. *)
let run_adaptive ?cache ~invocations program =
  let config =
    match cache with
    | None -> Engine.default_config
    | Some c -> { Engine.default_config with Engine.code_cache = Some c }
  in
  let engine = Engine.create ~config program in
  let outcomes =
    List.init invocations (fun k ->
        Engine.invoke_entry engine (Helpers.entry_args k))
  in
  (outcomes, engine)

let test_engine_warm_equivalence () =
  let program = Helpers.gen_program 7L in
  with_store_dir @@ fun dir ->
  let cold_cache = Codecache.create ~dir () in
  let cold_out, cold_engine =
    run_adaptive ~cache:cold_cache ~invocations:6 program
  in
  let cold_compiles = Engine.compile_count cold_engine in
  Codecache.close cold_cache;
  Alcotest.(check bool) "cold run compiles" true (cold_compiles > 0);
  Alcotest.(check bool)
    "cold run misses only" true
    (Engine.cache_hits cold_engine = 0);
  let warm_cache = Codecache.create ~dir () in
  let warm_out, warm_engine =
    run_adaptive ~cache:warm_cache ~invocations:6 program
  in
  Alcotest.(check (list Helpers.outcome_testable))
    "identical outcomes" cold_out warm_out;
  Alcotest.(check int) "no warm compilations" 0
    (Engine.compile_count warm_engine);
  Alcotest.(check int) "every install is an AOT load" cold_compiles
    (Engine.cache_hits warm_engine);
  Codecache.close warm_cache;
  (* read-only: same behaviour, file untouched *)
  let image = read_file (Filename.concat dir Codecache.file_name) in
  let ro_cache = Codecache.create ~dir ~readonly:true () in
  let ro_out, ro_engine = run_adaptive ~cache:ro_cache ~invocations:6 program in
  Alcotest.(check (list Helpers.outcome_testable))
    "read-only outcomes" cold_out ro_out;
  Alcotest.(check int) "read-only compilations" 0
    (Engine.compile_count ro_engine);
  Codecache.close ro_cache;
  Alcotest.(check bool)
    "read-only leaves the file alone" true
    (String.equal image (read_file (Filename.concat dir Codecache.file_name)))

(* ------------------------------------------------------------------ *)
(* Fault matrix                                                         *)
(* ------------------------------------------------------------------ *)

(* Tiny deterministic workload so the cache file stays small enough to
   attack every byte. *)
let matrix_profile =
  {
    (Helpers.small_profile 5L) with
    Profile.name = "cachefault";
    methods = 3;
    fragments_mean = 2.0;
    driver_trips = 2;
    hot_methods = 2;
  }

let run_matrix ?cache program =
  let config =
    match cache with
    | None -> Engine.default_config
    | Some c -> { Engine.default_config with Engine.code_cache = Some c }
  in
  let engine = Engine.create ~config program in
  Array.iteri
    (fun id _ -> Engine.request_compile engine ~meth_id:id ~level:Plan.Cold ())
    program.Program.methods;
  Engine.invoke_entry engine (Helpers.entry_args 0)

let test_fault_matrix () =
  let program = Generate.program matrix_profile in
  with_store_dir @@ fun dir ->
  let path = Filename.concat dir Codecache.file_name in
  let cold_cache = Codecache.create ~dir () in
  let reference = run_matrix ~cache:cold_cache program in
  Codecache.close cold_cache;
  let pristine = read_file path in
  let len = String.length pristine in
  Alcotest.(check bool) "cache file populated" true (len > 5);
  for pos = 0 to len - 1 do
    let image = Bytes.of_string pristine in
    Bytes.set image pos
      (Char.chr (Char.code (Bytes.get image pos) lxor (1 lsl (pos mod 8))));
    write_file path (Bytes.to_string image);
    let cache = Codecache.create ~dir ~readonly:true () in
    let outcome = run_matrix ~cache program in
    let c = Codecache.counters cache in
    Codecache.close cache;
    if not (Helpers.outcome_equal reference outcome) then
      Alcotest.failf "flipping a bit of byte %d changed program output" pos;
    (* byte 4 is the format-version byte: well-formed but outdated;
       every other position must be caught as corruption *)
    if pos = 4 then begin
      if c.Store.stale_entries = 0 then
        Alcotest.failf "version flip at byte %d not counted stale" pos
    end
    else if c.Store.corrupt_entries = 0 then
      Alcotest.failf "flip at byte %d not counted corrupt" pos
  done;
  write_file path pristine

(* ------------------------------------------------------------------ *)
(* Feature-schema generations                                           *)
(* ------------------------------------------------------------------ *)

(* An entry written by the first shipped layout — no feature-schema
   varint, a u8 plan level first — must read back as a clean stale miss:
   dropped, counted under [stale], never [corrupt], never an error. *)
let test_pre_schema_entry_stale () =
  with_store_dir @@ fun dir ->
  let m =
    Meth.make ~name:"Old.o()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [|
        Tessera_il.Block.make 0 []
          (Tessera_il.Block.Return (Some (Node.iconst Types.Int 7L)));
      |]
  in
  let code = Tessera_codegen.Lower.compile m in
  let old_bytes =
    let module Codec = Tessera_util.Codec in
    let buf = Buffer.create 256 in
    Codec.write_u8 buf (Plan.level_index Plan.Cold);
    Codec.write_i64 buf (Modifier.to_bits Modifier.null);
    let fs = Features.to_array (Features.extract m) in
    Codec.write_varint buf (Array.length fs);
    Array.iter (fun v -> Codec.write_varint buf v) fs;
    Codec.write_varint buf 123;
    Codec.write_varint buf 4;
    Codec.write_varint buf 5;
    Isa_codec.encode buf code;
    Buffer.contents buf
  in
  let key =
    Codecache.fingerprint ~target:Target.zircon ~level:Plan.Cold
      ~modifier:Modifier.null m
  in
  (* write the frame the way an old binary would have: through the
     store, so the CRC and framing are perfectly valid *)
  let path = Filename.concat dir Codecache.file_name in
  let s = Store.open_ ~path ~capacity_bytes:1_000_000 ~readonly:false in
  Store.add s key old_bytes;
  Store.close s;
  let cache = Codecache.create ~dir () in
  Alcotest.(check int) "old entry loads" 1 (Codecache.entry_count cache);
  Alcotest.(check bool) "pre-schema entry is a miss" true
    (Option.is_none
       (Codecache.lookup cache ~key ~level:Plan.Cold ~modifier:Modifier.null));
  let c = Codecache.counters cache in
  Alcotest.(check int) "counted stale" 1 c.Store.stale_entries;
  Alcotest.(check int) "not corrupt" 0 c.Store.corrupt_entries;
  Alcotest.(check int) "entry dropped" 0 (Codecache.entry_count cache);
  Codecache.close cache

(* ------------------------------------------------------------------ *)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ test_isa_roundtrip (); test_isa_fixpoint (); test_entry_roundtrip () ]
  @ [
      Alcotest.test_case "fingerprint content-addresses the plan" `Quick
        test_fingerprint;
      Alcotest.test_case "store: add/find/supersede survive reopen" `Quick
        test_store_roundtrip;
      Alcotest.test_case "store: capacity evicts least recently used" `Quick
        test_store_lru_eviction;
      Alcotest.test_case "store: torn tail dropped, prefix kept, scrubbed"
        `Quick test_store_torn_tail;
      Alcotest.test_case "store: future format version reads as stale" `Quick
        test_store_version_stale;
      Alcotest.test_case "codecache: pre-schema entry reads as stale" `Quick
        test_pre_schema_entry_stale;
      Alcotest.test_case "engine: warm start replays without compiling" `Quick
        test_engine_warm_equivalence;
      Alcotest.test_case "fault matrix: every byte flip is survived" `Slow
        test_fault_matrix;
    ]
