(* Run a benchmark (or a .tir program) on the simulated JVM, optionally
   with a learned model set steering the JIT, and print the metrics. *)

open Cmdliner
module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values

let run target model_dir iterations tir =
  let program =
    if tir then Tessera_lang.Parser.load_program target
    else
      match Suites.find target with
      | Some b ->
          Tessera_workloads.Generate.program b.Suites.profile
      | None -> failwith (Printf.sprintf "unknown benchmark %S" target)
  in
  let iteration_invocations =
    if tir then 1
    else
      match Suites.find target with
      | Some b -> b.Suites.iteration_invocations
      | None -> 1
  in
  let callbacks =
    match model_dir with
    | None -> Engine.no_callbacks
    | Some dir ->
        let ms = Harness.Modelset.load ~name:"cli" ~dir in
        {
          Engine.no_callbacks with
          Engine.choose_modifier = Some (Harness.Modelset.choose_modifier ms);
        }
  in
  let engine = Engine.create ~callbacks program in
  let traps = ref 0 in
  for it = 0 to iterations - 1 do
    for k = 0 to iteration_invocations - 1 do
      match
        Engine.invoke_entry engine
          [| Values.Int_v (Int64.of_int ((it * 31) + k)) |]
      with
      | Ok _ -> ()
      | Error _ -> incr traps
    done
  done;
  Printf.printf "application cycles : %Ld (%.2f virtual ms)\n"
    (Engine.app_cycles engine)
    (Int64.to_float (Engine.app_cycles engine)
    /. float_of_int Tessera_vm.Cost.cycles_per_ms);
  Printf.printf "compilation cycles : %Ld\n" (Engine.total_compile_cycles engine);
  Printf.printf "compilations       : %d (%d methods)\n"
    (Engine.compile_count engine)
    (Engine.methods_compiled engine);
  List.iter
    (fun (level, count) ->
      Printf.printf "  %-10s %d\n" (Tessera_opt.Plan.level_name level) count)
    (Engine.compiles_by_level engine);
  if !traps > 0 then Printf.printf "uncaught exceptions: %d\n" !traps;
  0

let target =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
         ~doc:"Benchmark name (e.g. compress) or path to a .tir file with --tir.")

let model_dir =
  Arg.(value & opt (some dir) None & info [ "model" ] ~docv:"DIR"
         ~doc:"Model-set directory (from tessera_train); omit for the \
               unmodified compiler.")

let iterations =
  Arg.(value & opt int 1 & info [ "n"; "iterations" ] ~docv:"N"
         ~doc:"Benchmark iterations (1 = start-up run, 10 = throughput run).")

let tir =
  Arg.(value & flag & info [ "tir" ] ~doc:"Treat TARGET as a .tir program file.")

let cmd =
  Cmd.v
    (Cmd.info "tessera_run" ~doc:"Run a benchmark on the simulated JVM")
    Term.(const run $ target $ model_dir $ iterations $ tir)

let () = exit (Cmd.eval' cmd)
