(* Model server: answers Predict requests over named pipes (Section 7 of
   the paper).  The compiler side connects with
   [Tessera_protocol.Channel.fifo_pair]'s endpoint A semantics:
   the server reads requests from IN_FIFO and writes responses to
   OUT_FIFO. *)

open Cmdliner
module Harness = Tessera_harness

let run model_dir in_fifo out_fifo =
  let ms = Harness.Modelset.load ~name:"server" ~dir:model_dir in
  List.iter
    (fun p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      Unix.mkfifo p 0o600)
    [ in_fifo; out_fifo ];
  Printf.printf "serving %s: reading %s, writing %s\n%!" model_dir in_fifo
    out_fifo;
  (* opening blocks until the client opens the other ends *)
  let fin = Unix.openfile in_fifo [ Unix.O_RDONLY ] 0 in
  let fout = Unix.openfile out_fifo [ Unix.O_WRONLY ] 0 in
  let ch = Tessera_protocol.Channel.of_fds fin fout in
  Tessera_protocol.Server.serve ch (Harness.Modelset.server_predictor ms);
  Printf.printf "shutdown\n";
  0

let model_dir =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"MODEL_DIR"
         ~doc:"Model-set directory (from tessera_train).")

let in_fifo =
  Arg.(value & opt string "/tmp/tessera.req" & info [ "in" ] ~docv:"FIFO"
         ~doc:"Request pipe (created).")

let out_fifo =
  Arg.(value & opt string "/tmp/tessera.res" & info [ "out" ] ~docv:"FIFO"
         ~doc:"Response pipe (created).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_server"
       ~doc:"Serve a trained model set over named pipes")
    Term.(const run $ model_dir $ in_fifo $ out_fifo)

let () = exit (Cmd.eval' cmd)
