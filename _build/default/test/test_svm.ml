module Sparse = Tessera_svm.Sparse
module Problem = Tessera_svm.Problem
module Linear = Tessera_svm.Linear
module Cs = Tessera_svm.Cs
module Rbf = Tessera_svm.Rbf
module Model = Tessera_svm.Model
module Metrics = Tessera_svm.Metrics
module Prng = Tessera_util.Prng

let test_sparse_ops () =
  let dense = [| 0.0; 2.0; 0.0; -1.5; 0.0 |] in
  let s = Sparse.of_dense dense in
  Alcotest.(check int) "nnz" 2 (Sparse.nnz s);
  Alcotest.(check bool) "dense roundtrip" true (Sparse.to_dense 5 s = dense);
  let w = [| 1.0; 10.0; 100.0; 1000.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "dot" (20.0 -. 1500.0) (Sparse.dot s w);
  Alcotest.(check (float 1e-9)) "sq_norm" (4.0 +. 2.25) (Sparse.sq_norm s);
  let w2 = Array.make 5 0.0 in
  Sparse.add_scaled w2 s 2.0;
  Alcotest.(check (float 1e-9)) "axpy" 4.0 w2.(1);
  Alcotest.check_raises "duplicate index"
    (Invalid_argument "Sparse.of_list: duplicate index") (fun () ->
      ignore (Sparse.of_list [ (1, 1.0); (1, 2.0) ]))

let test_sparse_sq_dist_matches_dense () =
  QCheck.Test.make ~count:200 ~name:"sq_dist matches dense reference"
    QCheck.(pair (list_of_size (Gen.return 6) (float_bound_exclusive 4.0)
                  ) (list_of_size (Gen.return 6) (float_bound_exclusive 4.0)))
    (fun (a, b) ->
      let da = Array.of_list a and db = Array.of_list b in
      let sa = Sparse.of_dense da and sb = Sparse.of_dense db in
      let expected =
        Array.fold_left ( +. ) 0.0
          (Array.mapi (fun i x -> (x -. db.(i)) ** 2.0) da)
      in
      Float.abs (Sparse.sq_dist sa sb -. expected) < 1e-9)

let test_problem () =
  let x = Array.init 4 (fun i -> Sparse.of_dense [| float_of_int i |]) in
  let p = Problem.make x [| 10; 20; 10; 30 |] in
  Alcotest.(check int) "classes" 3 (Problem.n_classes p);
  Alcotest.(check int) "instances" 4 (Problem.n_instances p);
  Alcotest.(check int) "label of class 0" 10 (Problem.label_of_class p 0);
  Alcotest.(check (option int)) "class of label 20" (Some 1)
    (Problem.class_of_label p 20);
  let sub = Problem.subset p [| 1; 3 |] in
  Alcotest.(check int) "subset size" 2 (Problem.n_instances sub);
  Alcotest.(check int) "subset keeps label table" 3 (Problem.n_classes sub)

(* two gaussian blobs, linearly separable *)
let blob_problem ?(n = 60) ?(k = 2) seed =
  let rng = Prng.create seed in
  let x = ref [] and y = ref [] in
  for cls = 0 to k - 1 do
    let cx = 4.0 *. float_of_int cls in
    for _ = 1 to n / k do
      let px = cx +. Prng.gaussian rng ~mu:0.0 ~sigma:0.4 in
      let py = (2.0 *. float_of_int cls) +. Prng.gaussian rng ~mu:0.0 ~sigma:0.4 in
      x := Sparse.of_dense [| px; py; 1.0 |] :: !x;
      y := (100 + cls) :: !y
    done
  done;
  Problem.make (Array.of_list !x) (Array.of_list !y)

let accuracy_of model p =
  Metrics.accuracy ~predict:(Model.predict model) p.Problem.x
    (Array.map (Problem.label_of_class p) p.Problem.y)

let test_linear_binary_separable () =
  let p = blob_problem 1L in
  let model = Linear.train_ovr p in
  Alcotest.(check (float 0.02)) "100% on separable" 1.0 (accuracy_of model p);
  Alcotest.(check string) "solver name" "L2R_L1LOSS_SVC_DUAL" model.Model.solver

let test_linear_multiclass () =
  let p = blob_problem ~n:90 ~k:3 2L in
  let model = Linear.train_ovr p in
  Alcotest.(check bool)
    (Printf.sprintf "3-class accuracy %.2f >= 0.95" (accuracy_of model p))
    true
    (accuracy_of model p >= 0.95)

let test_cs_multiclass () =
  let p = blob_problem ~n:90 ~k:3 3L in
  let model = Cs.train p in
  Alcotest.(check string) "solver" "MCSVM_CS" model.Model.solver;
  Alcotest.(check int) "p x L matrix" 3 (Array.length model.Model.weights);
  Alcotest.(check bool)
    (Printf.sprintf "CS accuracy %.2f >= 0.95" (accuracy_of model p))
    true
    (accuracy_of model p >= 0.95)

let test_model_roundtrip () =
  let p = blob_problem ~n:60 ~k:3 4L in
  let model = Cs.train p in
  let model' = Model.of_string (Model.to_string model) in
  Alcotest.(check bool) "exact roundtrip" true (Model.equal model model');
  (* predictions identical *)
  Array.iter
    (fun x ->
      Alcotest.(check int) "same prediction" (Model.predict model x)
        (Model.predict model' x))
    p.Problem.x

let test_rbf_xor () =
  (* XOR is not linearly separable; the RBF kernel machine must solve it *)
  let x =
    Array.map Sparse.of_dense
      [| [| 0.; 0. |]; [| 0.; 1. |]; [| 1.; 0. |]; [| 1.; 1. |] |]
  in
  let y = [| 1; 2; 2; 1 |] in
  let p = Problem.make x y in
  let model = Rbf.train ~params:{ Rbf.default_params with Rbf.gamma = 2.0; c = 100.0 } p in
  let acc = Metrics.accuracy ~predict:(Rbf.predict model) x y in
  Alcotest.(check (float 0.01)) "XOR solved" 1.0 acc;
  Alcotest.(check bool) "has support vectors" true
    (Rbf.support_vector_count model > 0);
  (* a linear model cannot exceed 75% on XOR *)
  let lin = Linear.train_ovr p in
  Alcotest.(check bool) "linear fails XOR" true
    (Metrics.accuracy ~predict:(Model.predict lin) x y <= 0.75)

let test_cross_validation () =
  let p = blob_problem ~n:80 5L in
  let acc = Metrics.cross_validate ~k:4 ~train:(fun p -> Linear.train_ovr p) p in
  Alcotest.(check bool)
    (Printf.sprintf "cv accuracy %.2f high" acc)
    true (acc >= 0.9);
  (* kfold partitions are disjoint and complete *)
  let folds = Metrics.kfold ~seed:1L ~k:4 20 in
  Alcotest.(check int) "4 folds" 4 (List.length folds);
  List.iter
    (fun (train, test) ->
      Alcotest.(check int) "sizes" 20 (Array.length train + Array.length test);
      let all = Array.append train test in
      Array.sort compare all;
      Alcotest.(check bool) "partition" true (all = Array.init 20 Fun.id))
    folds

let test_misclassification_cost_default () =
  (* the paper selects C = 10 *)
  Alcotest.(check (float 1e-9)) "C = 10" 10.0 Linear.default_params.Linear.c

let suite =
  [
    Alcotest.test_case "sparse ops" `Quick test_sparse_ops;
    QCheck_alcotest.to_alcotest (test_sparse_sq_dist_matches_dense ());
    Alcotest.test_case "problem construction" `Quick test_problem;
    Alcotest.test_case "linear binary separable" `Quick test_linear_binary_separable;
    Alcotest.test_case "linear multiclass" `Quick test_linear_multiclass;
    Alcotest.test_case "Crammer-Singer multiclass" `Quick test_cs_multiclass;
    Alcotest.test_case "model save/load" `Quick test_model_roundtrip;
    Alcotest.test_case "RBF solves XOR" `Quick test_rbf_xor;
    Alcotest.test_case "cross validation" `Quick test_cross_validation;
    Alcotest.test_case "paper's C parameter" `Quick test_misclassification_cost_default;
  ]

let test_explain () =
  let module Explain = Tessera_svm.Explain in
  let p = blob_problem ~n:60 ~k:3 9L in
  let model = Cs.train p in
  let top = Explain.top_features ~k:2 model ~class_index:0 in
  Alcotest.(check bool) "at most 2" true (List.length top <= 2);
  (match top with
  | a :: b :: _ ->
      Alcotest.(check bool) "sorted by |weight|" true
        (Float.abs a.Explain.weight >= Float.abs b.Explain.weight)
  | _ -> ());
  Alcotest.(check bool) "density in (0,1]" true
    (Explain.weight_density model > 0.0 && Explain.weight_density model <= 1.0);
  Alcotest.check_raises "bad class"
    (Invalid_argument "Explain.top_features: class index out of range")
    (fun () -> ignore (Explain.top_features model ~class_index:99));
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Explain.report fmt model;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "report renders" true (Buffer.length buf > 50)

let suite = suite @ [ Alcotest.test_case "model explanation" `Quick test_explain ]
