module Record = Tessera_collect.Record
module Rank = Tessera_dataproc.Rank
module Normalize = Tessera_dataproc.Normalize
module Labels = Tessera_dataproc.Labels
module LL = Tessera_dataproc.Liblinear_format
module Trainset = Tessera_dataproc.Trainset
module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Sparse = Tessera_svm.Sparse
module Prng = Tessera_util.Prng

let fv value =
  Features.of_array (Array.init Features.dim (fun i -> if i = 3 then value else i mod 2))

let record ?(features = fv 10) ?(level = Plan.Hot) ?(modifier = Modifier.null)
    ~compile ~runs () =
  let r = Record.make ~sig_id:0 ~features ~level ~modifier ~compile_cycles:compile in
  List.fold_left (fun r c -> Record.add_sample r ~cycles:c ~valid:true) r runs

let test_eq2_value () =
  (* V = R/I + C/(T_h * amortization); this fv has no loop features set at
     index 10/11/12?  fv sets odd indices to 1, so mayHaveLoops (11) = 1
     and mayHaveManyIterationLoops (12) = 0, manyIteration (10) = 0:
     loop class = Has_loops *)
  let r = record ~compile:1000 ~runs:[ 100L; 200L ] () in
  let cls = Tessera_jit.Triggers.loop_class_of_features (fv 10) in
  Alcotest.(check bool) "class has loops" true (cls = Tessera_jit.Triggers.Has_loops);
  let t_h = float_of_int (Tessera_jit.Triggers.trigger Plan.Hot cls) in
  let expected = 150.0 +. (1000.0 /. (t_h *. 2.5)) in
  Alcotest.(check (float 1e-9)) "Eq.2" expected (Rank.value r);
  Alcotest.check_raises "no invocations rejected"
    (Invalid_argument "Rank_value.value: record with no invocations") (fun () ->
      ignore (Rank.value (record ~compile:1 ~runs:[] ())))

let test_rank_selection () =
  (* same feature vector, four modifiers with distinct performance *)
  let m1 = Modifier.of_disabled [ 1 ] in
  let m2 = Modifier.of_disabled [ 2 ] in
  let m3 = Modifier.of_disabled [ 3 ] in
  let records =
    [
      record ~modifier:Modifier.null ~compile:0 ~runs:[ 100L ] ();
      record ~modifier:m1 ~compile:0 ~runs:[ 101L ] () (* within 5% *);
      record ~modifier:m2 ~compile:0 ~runs:[ 150L ] () (* too slow *);
      record ~modifier:m3 ~compile:0 ~runs:[ 102L ] ();
    ]
  in
  let ranked = Rank.rank ~max_per_vector:3 ~tolerance:0.95 ~level:Plan.Hot records in
  Alcotest.(check int) "selected 3 (95% rule drops m2)" 3 (List.length ranked);
  Alcotest.(check bool) "best first is null" true
    (Modifier.is_null (List.hd ranked).Rank.modifier);
  (* max_per_vector 1: only the best *)
  let top1 = Rank.rank ~max_per_vector:1 ~level:Plan.Hot records in
  Alcotest.(check int) "top-1" 1 (List.length top1)

let test_rank_groups_by_vector () =
  let records =
    [
      record ~features:(fv 1) ~compile:0 ~runs:[ 10L ] ();
      record ~features:(fv 2) ~compile:0 ~runs:[ 20L ] ();
      record ~features:(fv 1) ~modifier:(Modifier.of_disabled [ 5 ])
        ~compile:0 ~runs:[ 500L ] ();
    ]
  in
  let ranked = Rank.rank ~level:Plan.Hot records in
  Alcotest.(check int) "unique vectors" 2 (Rank.unique_feature_vectors records);
  Alcotest.(check int) "unique classes" 2 (Rank.unique_classes records);
  (* fv 1 keeps both (no tolerance filtering beyond 95%? 500 vs 10 is
     dropped), fv 2 keeps one *)
  Alcotest.(check int) "selection" 2 (List.length ranked)

let test_rank_level_filter () =
  let records =
    [ record ~level:Plan.Cold ~compile:0 ~runs:[ 10L ] () ]
  in
  Alcotest.(check int) "wrong level filtered" 0
    (List.length (Rank.rank ~level:Plan.Hot records))

let test_normalize () =
  let vectors = [ [| 0; 10; 5 |]; [| 10; 10; 7 |]; [| 5; 10; 3 |] ] in
  let s = Normalize.fit vectors in
  let n = Normalize.apply s [| 5; 10; 5 |] in
  Alcotest.(check (float 1e-9)) "mid" 0.5 n.(0);
  Alcotest.(check (float 1e-9)) "degenerate range -> 0" 0.0 n.(1);
  Alcotest.(check (float 1e-9)) "interpolated" 0.5 n.(2);
  (* out-of-range clamps *)
  let n = Normalize.apply s [| 100; 0; -5 |] in
  Alcotest.(check (float 1e-9)) "clamp high" 1.0 n.(0);
  Alcotest.(check (float 1e-9)) "clamp low" 0.0 n.(2);
  (* Eq. 3 bounds on random data *)
  let rng = Prng.create 3L in
  for _ = 1 to 50 do
    let v = Array.init 3 (fun _ -> Prng.int rng 20) in
    Array.iter
      (fun x -> Alcotest.(check bool) "in [0,1]" true (x >= 0.0 && x <= 1.0))
      (Normalize.apply s v)
  done;
  (* scaling file roundtrip *)
  let s' = Normalize.of_string (Normalize.to_string s) in
  Alcotest.(check bool) "scaling file roundtrip" true (Normalize.equal s s')

let test_labels () =
  let t = Labels.create () in
  let m1 = Modifier.of_disabled [ 1; 2 ] in
  let m2 = Modifier.of_disabled [ 3 ] in
  let l1 = Labels.label_of t m1 in
  let l2 = Labels.label_of t m2 in
  Alcotest.(check int) "labels start at 1" 1 l1;
  Alcotest.(check int) "dense" 2 l2;
  Alcotest.(check int) "idempotent" l1 (Labels.label_of t m1);
  Alcotest.(check bool) "inverse" true
    (match Labels.modifier_of t l1 with
    | Some m -> Modifier.equal m m1
    | None -> false);
  Alcotest.(check (option bool)) "unknown" None
    (Option.map (fun _ -> true) (Labels.modifier_of t 99));
  let t' = Labels.of_string (Labels.to_string t) in
  Alcotest.(check bool) "lookup table roundtrip" true (Labels.equal t t')

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_liblinear_format () =
  let inst =
    { LL.label = 7; x = Sparse.of_list [ (0, 0.5); (9, 0.5625); (70, 1.0) ] }
  in
  let line = LL.instance_to_line inst in
  (* Figure 4: 1-based indices, zero components omitted *)
  Alcotest.(check bool) "1-based index" true
    (String.length line > 0
    && String.sub line 0 2 = "7 "
    && contains_sub line "10:0.5625");
  let inst' = LL.line_to_instance line in
  Alcotest.(check int) "label" inst.LL.label inst'.LL.label;
  Alcotest.(check bool) "sparse equal" true (Sparse.equal inst.LL.x inst'.LL.x)

let test_liblinear_roundtrip () =
  QCheck.Test.make ~count:100 ~name:"liblinear dataset roundtrip"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Prng.create (Int64.of_int seed) in
      let insts =
        List.init
          (1 + Prng.int rng 10)
          (fun _ ->
            {
              LL.label = 1 + Prng.int rng 1000;
              x =
                Sparse.of_list
                  (List.sort_uniq compare
                     (List.init (Prng.int rng 8) (fun _ -> Prng.int rng 71))
                  |> List.map (fun i -> (i, Prng.float rng 1.0 +. 0.001)));
            })

      in
      let parsed = LL.parse (LL.write insts) in
      List.length parsed = List.length insts
      && List.for_all2
           (fun (a : LL.instance) (b : LL.instance) ->
             a.LL.label = b.LL.label && Sparse.equal a.LL.x b.LL.x)
           insts parsed)

let test_liblinear_errors () =
  (match LL.line_to_instance "notanumber 1:0.5" with
  | _ -> Alcotest.fail "bad label accepted"
  | exception Failure _ -> ());
  (match LL.line_to_instance "1 0:0.5" with
  | _ -> Alcotest.fail "0-based index accepted"
  | exception Failure _ -> ());
  match LL.line_to_instance "1 nocolon" with
  | _ -> Alcotest.fail "missing colon accepted"
  | exception Failure _ -> ()

let test_trainset_pipeline () =
  let rng = Prng.create 31L in
  let records =
    List.init 60 (fun i ->
        let features = fv (i mod 5) in
        let modifier =
          if i mod 3 = 0 then Modifier.null
          else Modifier.random rng ~density:0.2
        in
        record ~features ~modifier
          ~compile:(10_000 + Prng.int rng 10_000)
          ~runs:(List.init (1 + (i mod 4)) (fun _ -> Int64.of_int (1000 + Prng.int rng 9000)))
          ())
  in
  let ts = Trainset.build ~level:Plan.Hot records in
  Alcotest.(check bool) "instances nonempty" true (ts.Trainset.instances <> []);
  Alcotest.(check int) "stats: 5 unique vectors" 5
    ts.Trainset.stats.Trainset.unique_feature_vectors;
  Alcotest.(check bool) "<= 3 per vector" true
    (ts.Trainset.stats.Trainset.training_instances <= 15);
  (* instances have normalized components *)
  List.iter
    (fun (i : LL.instance) ->
      Array.iter
        (fun (_, v) -> Alcotest.(check bool) "component in [0,1]" true (v >= 0.0 && v <= 1.0))
        i.LL.x)
    ts.Trainset.instances;
  (* predictor falls back to null on unknown labels *)
  let m =
    Trainset.predictor ~scaling:ts.Trainset.scaling ~labels:(Labels.create ())
      ~model:
        {
          Tessera_svm.Model.solver = "x";
          labels = [| 424242 |];
          n_features = Features.dim;
          weights = [| Array.make Features.dim 0.0 |];
        }
      (fv 1)
  in
  Alcotest.(check bool) "fallback to null" true (Modifier.is_null m)

let suite =
  [
    Alcotest.test_case "Eq.2 ranking value" `Quick test_eq2_value;
    Alcotest.test_case "rank selection rules" `Quick test_rank_selection;
    Alcotest.test_case "rank groups by vector" `Quick test_rank_groups_by_vector;
    Alcotest.test_case "rank level filter" `Quick test_rank_level_filter;
    Alcotest.test_case "Eq.3 normalization" `Quick test_normalize;
    Alcotest.test_case "label remapping" `Quick test_labels;
    Alcotest.test_case "liblinear format" `Quick test_liblinear_format;
    QCheck_alcotest.to_alcotest (test_liblinear_roundtrip ());
    Alcotest.test_case "liblinear errors" `Quick test_liblinear_errors;
    Alcotest.test_case "trainset pipeline" `Quick test_trainset_pipeline;
  ]
