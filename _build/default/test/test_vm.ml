module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Values = Tessera_vm.Values
module Semantics = Tessera_vm.Semantics
module Clock = Tessera_vm.Clock
module Cost = Tessera_vm.Cost
open Values

let test_truncate () =
  Alcotest.(check int64) "byte wrap" (-128L) (truncate Types.Byte 128L);
  Alcotest.(check int64) "byte -1" (-1L) (truncate Types.Byte 255L);
  Alcotest.(check int64) "char zero extends" 65535L (truncate Types.Char (-1L));
  Alcotest.(check int64) "short sign" (-32768L) (truncate Types.Short 32768L);
  Alcotest.(check int64) "int wrap" (-2147483648L) (truncate Types.Int 2147483648L);
  Alcotest.(check int64) "long identity" Int64.max_int (truncate Types.Long Int64.max_int);
  Alcotest.(check int64) "packed is 64-bit" (-7L) (truncate Types.Packed_decimal (-7L))

let test_binop_semantics () =
  let i v = Int_v v in
  Alcotest.(check bool) "add wraps at type" true
    (Values.equal (Semantics.binop Opcode.Add Types.Byte (i 100L) (i 100L)) (i (-56L)));
  Alcotest.(check bool) "div" true
    (Values.equal (Semantics.binop Opcode.Div Types.Int (i 7L) (i 2L)) (i 3L));
  Alcotest.check_raises "div by zero" (Trap Div_by_zero) (fun () ->
      ignore (Semantics.binop Opcode.Div Types.Int (i 1L) (i 0L)));
  Alcotest.check_raises "rem by zero" (Trap Div_by_zero) (fun () ->
      ignore (Semantics.binop Opcode.Rem Types.Int (i 1L) (i 0L)));
  Alcotest.(check bool) "fp div by zero is inf" true
    (match Semantics.binop Opcode.Div Types.Double (Float_v 1.0) (Float_v 0.0) with
    | Float_v f -> f = infinity
    | _ -> false);
  Alcotest.(check bool) "compare lt" true
    (Values.equal (Semantics.binop (Opcode.Compare Opcode.Lt) Types.Int (i 1L) (i 2L)) (i 1L));
  Alcotest.(check bool) "shift masks amount" true
    (Values.equal
       (Semantics.binop (Opcode.Shift Opcode.Shl) Types.Long (i 1L) (i 65L))
       (i 2L))

let test_array_semantics () =
  let arr = Semantics.new_array ~elem:Types.Int (Int_v 4L) in
  Semantics.elem_store arr (Int_v 2L) (Int_v 99L);
  Alcotest.(check bool) "elem load" true
    (Values.equal (Semantics.elem_load arr (Int_v 2L)) (Int_v 99L));
  Alcotest.check_raises "oob" (Trap Out_of_bounds) (fun () ->
      ignore (Semantics.elem_load arr (Int_v 4L)));
  Alcotest.check_raises "negative" (Trap Out_of_bounds) (fun () ->
      ignore (Semantics.elem_load arr (Int_v (-1L))));
  Alcotest.check_raises "null deref" (Trap Null_deref) (fun () ->
      ignore (Semantics.elem_load Null_v (Int_v 0L)));
  Alcotest.check_raises "negative length" (Trap Out_of_bounds) (fun () ->
      ignore (Semantics.new_array ~elem:Types.Int (Int_v (-3L))));
  Alcotest.(check bool) "length" true
    (Values.equal (Semantics.array_length arr) (Int_v 4L));
  (* copy *)
  let dst = Semantics.new_array ~elem:Types.Int (Int_v 4L) in
  let copied = Semantics.array_copy arr dst (Int_v 4L) in
  Alcotest.(check int) "copied count" 4 copied;
  Alcotest.(check bool) "copied data" true
    (Values.equal (Semantics.elem_load dst (Int_v 2L)) (Int_v 99L));
  Alcotest.check_raises "copy oob" (Trap Out_of_bounds) (fun () ->
      ignore (Semantics.array_copy arr dst (Int_v 5L)));
  (* cmp *)
  let r, _ = Semantics.array_cmp arr dst in
  Alcotest.(check bool) "equal arrays cmp 0" true (Values.equal r (Int_v 0L));
  Semantics.elem_store dst (Int_v 0L) (Int_v 1L);
  let r, _ = Semantics.array_cmp arr dst in
  Alcotest.(check bool) "different arrays cmp nonzero" false (Values.equal r (Int_v 0L))

let classes =
  [|
    Tessera_il.Classdef.make "Base" [| Types.Int |];
    Tessera_il.Classdef.make ~parent:0 "Derived" [| Types.Int; Types.Double |];
  |]

let test_object_semantics () =
  let o = Semantics.new_obj ~classes 1 in
  Semantics.field_store o 1 (Float_v 2.5);
  Alcotest.(check bool) "field" true
    (Values.equal (Semantics.field_load o 1) (Float_v 2.5));
  Alcotest.check_raises "null field" (Trap Null_deref) (fun () ->
      ignore (Semantics.field_load Null_v 0));
  Alcotest.(check bool) "instanceof subclass" true
    (Values.equal (Semantics.instanceof ~classes 0 o) (Int_v 1L));
  Alcotest.(check bool) "instanceof not super" true
    (Values.equal
       (Semantics.instanceof ~classes 1 (Semantics.new_obj ~classes 0))
       (Int_v 0L));
  Alcotest.(check bool) "null instanceof" true
    (Values.equal (Semantics.instanceof ~classes 0 Null_v) (Int_v 0L));
  Alcotest.(check bool) "checkcast ok" true
    (Values.equal (Semantics.checkcast ~classes 0 o) o);
  Alcotest.check_raises "checkcast fail" (Trap Class_cast) (fun () ->
      ignore (Semantics.checkcast ~classes 1 (Semantics.new_obj ~classes 0)));
  Alcotest.(check bool) "null passes checkcast" true
    (Values.equal (Semantics.checkcast ~classes 1 Null_v) Null_v);
  Alcotest.check_raises "monitor null" (Trap Null_deref) (fun () ->
      Semantics.monitor Null_v)

let test_mixed_deterministic () =
  let args = [| Int_v 3L; Float_v 1.5; Null_v |] in
  Alcotest.(check bool) "deterministic" true
    (Values.equal (Semantics.mixed Types.Int args) (Semantics.mixed Types.Int args));
  Alcotest.(check bool) "void for void" true
    (Values.equal (Semantics.mixed Types.Void args) Void_v)

let test_clock_migrations () =
  let c = Clock.create ~cores:4 ~seed:123L () in
  Alcotest.(check int64) "starts at zero" 0L (Clock.now c);
  Alcotest.(check int) "core 0" 0 (Clock.core c);
  (* advance 30 virtual seconds: must migrate several times (interval <= 5s) *)
  for _ = 1 to 30_000 do
    Clock.advance c Cost.cycles_per_ms
  done;
  Alcotest.(check bool)
    (Printf.sprintf "migrated %d times" (Clock.migrations c))
    true
    (Clock.migrations c >= 6);
  Alcotest.(check (float 1e-6)) "ms" 30_000.0 (Clock.ms c);
  let cycles, cpu = Clock.read_tsc c in
  Alcotest.(check int64) "tsc matches now" (Clock.now c) cycles;
  Alcotest.(check bool) "cpu in range" true (cpu >= 0 && cpu < 4);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative") (fun () -> Clock.advance c (-1))

let test_flag_discounts () =
  let alloc = Tessera_il.Node.mk ~sym:0 Opcode.New Types.Object_ [||] in
  Alcotest.(check int) "no flags no discount" 0 (Cost.flag_discount alloc);
  let stack = Tessera_il.Node.with_flags alloc Tessera_il.Node.flag_stack_alloc in
  Alcotest.(check int) "stack alloc discount" 60 (Cost.flag_discount stack);
  Alcotest.(check bool) "discount below base" true
    (Cost.flag_discount stack <= Cost.op_base Opcode.New Types.Object_);
  let sync =
    Tessera_il.Node.with_flags
      (Tessera_il.Node.mk (Opcode.Synchronization Opcode.Monitor_enter) Types.Void [||])
      Tessera_il.Node.flag_sync_elided
  in
  Alcotest.(check int) "sync elision" 27 (Cost.flag_discount sync)

let test_decimal_cost_factor () =
  Alcotest.(check int) "packed mul is 3x int mul"
    (3 * Cost.op_base Opcode.Mul Types.Int)
    (Cost.op_base Opcode.Mul Types.Packed_decimal);
  Alcotest.(check int) "longdouble div is 4x fp div"
    (4 * Cost.op_base Opcode.Div Types.Double)
    (Cost.op_base Opcode.Div Types.Long_double)

let suite =
  [
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "binop semantics" `Quick test_binop_semantics;
    Alcotest.test_case "array semantics" `Quick test_array_semantics;
    Alcotest.test_case "object semantics" `Quick test_object_semantics;
    Alcotest.test_case "mixed deterministic" `Quick test_mixed_deterministic;
    Alcotest.test_case "clock migrations" `Quick test_clock_migrations;
    Alcotest.test_case "flag discounts" `Quick test_flag_discounts;
    Alcotest.test_case "decimal cost factor" `Quick test_decimal_cost_factor;
  ]

let test_targets () =
  let module Target = Tessera_vm.Target in
  Alcotest.(check (option string)) "find zircon" (Some "zircon")
    (Option.map (fun t -> t.Target.name) (Target.find "zircon"));
  Alcotest.(check bool) "unknown target" true (Target.find "sparc" = None);
  (* zircon matches the baseline cost model exactly *)
  List.iter
    (fun (op, ty) ->
      Alcotest.(check int)
        (Opcode.name op ^ " zircon = baseline")
        (Cost.op_base op ty)
        (Target.op_cost Target.zircon op ty))
    [
      (Opcode.Add, Types.Int); (Opcode.Load, Types.Int);
      (Opcode.New, Types.Object_); (Opcode.Mul, Types.Packed_decimal);
      (Opcode.Div, Types.Double);
    ];
  (* obsidian: memory dearer, branches cheaper, decimals much dearer *)
  let ob = Target.obsidian in
  Alcotest.(check bool) "obsidian memory dearer" true
    (Target.op_cost ob Opcode.Load Types.Int > Cost.op_base Opcode.Load Types.Int);
  Alcotest.(check bool) "obsidian calls cheaper" true
    (ob.Target.call_overhead < Target.zircon.Target.call_overhead);
  Alcotest.(check bool) "obsidian decimals dearer" true
    (Target.op_cost ob Opcode.Mul Types.Packed_decimal
    > Cost.op_base Opcode.Mul Types.Packed_decimal);
  (* flag discounts never exceed the op cost on any target *)
  let alloc =
    Tessera_il.Node.with_flags
      (Tessera_il.Node.mk ~sym:0 Opcode.New Types.Object_ [||])
      Tessera_il.Node.flag_stack_alloc
  in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (t.Target.name ^ " discount bounded")
        true
        (Target.flag_discount t alloc <= Target.op_cost t Opcode.New Types.Object_))
    Target.all

let test_target_changes_compiled_cost_not_semantics () =
  let p = Tessera_workloads.Generate.program
      { Tessera_workloads.Profile.default with
        Tessera_workloads.Profile.name = "tt"; seed = 4242L; methods = 4 } in
  let m = Tessera_il.Program.meth p 1 in
  let module Target = Tessera_vm.Target in
  let z = Tessera_codegen.Lower.compile ~target:Target.zircon m in
  let o = Tessera_codegen.Lower.compile ~target:Target.obsidian m in
  Alcotest.(check int) "same instruction stream length"
    z.Tessera_codegen.Isa.code_size o.Tessera_codegen.Isa.code_size;
  Alcotest.(check bool) "different static cost" true
    (Tessera_codegen.Lower.static_cycle_estimate z
    <> Tessera_codegen.Lower.static_cycle_estimate o)

let suite =
  suite
  @ [
      Alcotest.test_case "back-end targets" `Quick test_targets;
      Alcotest.test_case "target changes cost, not code" `Quick
        test_target_changes_compiled_cost_not_semantics;
    ]
