(* Shared machinery for the test suites: reference execution of whole
   programs under different engine configurations, and program/method
   generators wired into qcheck. *)

module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values
module Interp = Tessera_vm.Interp
module Exec = Tessera_codegen.Exec
module Lower = Tessera_codegen.Lower
module Manager = Tessera_opt.Manager
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Profile = Tessera_workloads.Profile
module Generate = Tessera_workloads.Generate
module Prng = Tessera_util.Prng

type outcome = (Values.t, Values.trap) result

let pp_outcome fmt = function
  | Ok v -> Format.fprintf fmt "Ok %a" Values.pp v
  | Error k -> Format.fprintf fmt "Trap %s" (Values.trap_name k)

let outcome_equal a b =
  match (a, b) with
  | Ok x, Ok y -> Values.equal x y
  | Error x, Error y -> x = y
  | _ -> false

let outcome_testable = Alcotest.testable pp_outcome outcome_equal

(* Run a program's entry method with every method in a fixed
   implementation.  [transform] optionally rewrites each method first
   (optimizer under test); [compile] lowers to native code and executes
   that instead of interpreting. *)
let run_program ?(fuel = 200_000_000) ?(compile = false)
    ?(transform = fun _id m -> m) (program : Program.t) (args : Values.t array)
    : outcome * int =
  let methods =
    Array.mapi (fun id m -> transform id m) program.Program.methods
  in
  let codes =
    if compile then
      Some (Array.map (fun m -> Lower.compile m) methods)
    else None
  in
  let cycles = ref 0 in
  let charge n = cycles := !cycles + n in
  let fuel_ref = ref fuel in
  let rec invoke id args =
    match codes with
    | None ->
        Interp.run
          {
            Interp.classes = program.Program.classes;
            charge;
            invoke;
            fuel = fuel_ref;
          }
          methods.(id) args
    | Some arr ->
        Exec.run
          {
            Exec.classes = program.Program.classes;
            charge;
            invoke;
            fuel = fuel_ref;
          }
          arr.(id) args
  in
  let outcome =
    match invoke program.Program.entry args with
    | v -> Ok v
    | exception Values.Trap k -> Error k
  in
  (outcome, !cycles)

(* Small profiles so property tests stay fast. *)
let small_profile seed =
  {
    Profile.default with
    Profile.name = Printf.sprintf "t%Ld" seed;
    seed;
    methods = 6;
    classes = 3;
    fragments_mean = 3.0;
    driver_trips = 3;
    hot_methods = 3;
  }

let gen_program seed = Generate.program (small_profile seed)

let entry_args k = [| Values.Int_v (Int64.of_int k) |]

(* Optimize every method of a program with a given plan & modifier. *)
let optimize_all ?(validate = true) ~plan ~enabled (program : Program.t) id m =
  ignore id;
  let r = Manager.optimize ~enabled ~validate ~program ~plan m in
  r.Manager.meth

let seeds n base = List.init n (fun i -> Int64.of_int ((i * 7919) + base))
