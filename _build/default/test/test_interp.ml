(* Interpreter edge cases, written directly in the textual IL so the
   scenarios are explicit. *)

module Parser = Tessera_lang.Parser
module Values = Tessera_vm.Values
module Interp = Tessera_vm.Interp
module Program = Tessera_il.Program

let run_with ?(fuel = 1_000_000) src args =
  let p = Parser.parse_program src in
  let cycles = ref 0 in
  let fuel_ref = ref fuel in
  let rec invoke id args =
    Interp.run
      {
        Interp.classes = p.Program.classes;
        charge = (fun n -> cycles := !cycles + n);
        invoke;
        fuel = fuel_ref;
      }
      (Program.meth p id) args
  in
  match invoke p.Program.entry args with
  | v -> (Ok v, !cycles)
  | exception Values.Trap k -> (Error k, !cycles)

let check_result ?fuel src args expected =
  let got, _ = run_with ?fuel src args in
  Alcotest.check Helpers.outcome_testable "result" expected got

let test_handler_chain () =
  (* a trap in the protected block reaches its handler; a second trap in
     the handler reaches the handler's handler *)
  check_result
    {|
program "h" entry 0
method "H.m()I" () returns int {
  temp "t" int
  block 0 handler 1 {
    (store void $0 (div int (loadconst int 1) (loadconst int 0)))
    (return (loadconst int 1))
  }
  block 1 handler 2 {
    (store void $0 (div int (loadconst int 2) (loadconst int 0)))
    (return (loadconst int 2))
  }
  block 2 {
    (return (loadconst int 3))
  }
}
|}
    [||]
    (Ok (Values.Int_v 3L))

let test_trap_escapes_without_handler () =
  check_result
    {|
program "e" entry 0
method "E.m()I" () returns int {
  block 0 {
    (return (div int (loadconst int 5) (loadconst int 0)))
  }
}
|}
    [||]
    (Error Values.Div_by_zero)

let test_trap_propagates_through_calls () =
  (* callee traps; caller's handler catches *)
  check_result
    {|
program "p" entry 0
method "P.caller()I" () returns int {
  block 0 handler 1 {
    (return (call int $1))
  }
  block 1 {
    (return (loadconst int 42))
  }
}
method "P.callee()I" () returns int {
  block 0 {
    (return (rem int (loadconst int 1) (loadconst int 0)))
  }
}
|}
    [||]
    (Ok (Values.Int_v 42L))

let test_fuel_exhaustion () =
  (* an infinite loop must hit the fuel guard, not hang *)
  let src =
    {|
program "inf" entry 0
method "I.loop()V" () returns void {
  block 0 {
    (goto 0)
  }
}
|}
  in
  match run_with ~fuel:10_000 src [||] with
  | _ -> Alcotest.fail "expected Out_of_fuel"
  | exception Interp.Out_of_fuel -> ()

let test_synchronized_method_charges () =
  let plain =
    {|
program "s" entry 0
method "S.m()I" () returns int {
  block 0 { (return (loadconst int 1)) }
}
|}
  in
  let sync =
    {|
program "s" entry 0
method "S.m()I" (synchronized) returns int {
  block 0 { (return (loadconst int 1)) }
}
|}
  in
  let _, c1 = run_with plain [||] in
  let _, c2 = run_with sync [||] in
  Alcotest.(check bool) "synchronized entry/exit costs cycles" true (c2 > c1)

let test_multiarray () =
  check_result
    {|
program "ma" entry 0
method "M.m()I" () returns int {
  temp "grid" address
  block 0 {
    (store void $0 (newmultiarray address $3 (loadconst int 3) (loadconst int 4)))
    (store void (load address $0) (loadconst int 1)
      (loadconst int 77))
    (return
      (add int
        (arraylength int (load address $0))
        (arraylength int (cast.address address (load address (load address $0) (loadconst int 2))))))
  }
}
|}
    [||]
    (* outer length 3 + inner length 4; the write at index 1 replaced an
       inner array with the int 77?  No: store at arity 3 writes an
       element of the outer array; index 2 still holds an inner array *)
    (Ok (Values.Int_v 7L))

let test_packed_decimal_arithmetic () =
  check_result
    {|
program "pd" entry 0
method "D.m(I)I" () returns int {
  arg "n" int
  temp "p" packed
  block 0 {
    (store void $1
      (mul packed (cast.packed packed (load int $0))
                  (cast.packed packed (loadconst int 3))))
    (return (cast.int int (load packed $1)))
  }
}
|}
    [| Values.Int_v 14L |]
    (Ok (Values.Int_v 42L))

let test_char_zero_extension () =
  check_result
    {|
program "cz" entry 0
method "C.m()I" () returns int {
  temp "c" char
  block 0 {
    (store void $0 (loadconst int -1))
    (return (load char $0))
  }
}
|}
    [||]
    (Ok (Values.Int_v 65535L))

let test_deep_call_chain () =
  (* 30 methods deep: each calls the next and adds 1 *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "program \"deep\" entry 0\n";
  for i = 0 to 29 do
    if i < 29 then
      Buffer.add_string buf
        (Printf.sprintf
           "method \"D.m%d()I\" () returns int {\nblock 0 {\n(return (add int \
            (loadconst int 1) (call int $%d)))\n}\n}\n"
           i (i + 1))
    else
      Buffer.add_string buf
        (Printf.sprintf
           "method \"D.m%d()I\" () returns int {\nblock 0 {\n(return \
            (loadconst int 1))\n}\n}\n"
           i)
  done;
  check_result (Buffer.contents buf) [||] (Ok (Values.Int_v 30L))

let test_instanceof_and_checkcast_flow () =
  check_result
    {|
program "io" entry 0
class "Base" parent -1 { int }
class "Derived" parent 0 { int }
method "O.m()I" () returns int {
  temp "o" object
  temp "r" int
  block 0 handler 2 {
    (store void $0 (new object $1))
    (store void $1 (instanceof int $0 (load object $0)))
    (store void $0 (cast.check object $0 (load object $0)))
    (if (instanceof int $1 (load object $0)) 1 3)
  }
  block 1 handler 2 {
    (store void $0 (new object $0))
    (store void $0 (cast.check object $1 (load object $0)))
    (return (loadconst int -1))
  }
  block 2 {
    (return (add int (load int $1) (loadconst int 100)))
  }
  block 3 {
    (return (loadconst int -2))
  }
}
|}
    [||]
    (* Derived is an instance of Base ($1=1 after instanceof of class 0);
       casting a Base instance to Derived traps into block 2: 1 + 100 *)
    (Ok (Values.Int_v 101L))

let suite =
  [
    Alcotest.test_case "handler chain" `Quick test_handler_chain;
    Alcotest.test_case "unhandled trap escapes" `Quick
      test_trap_escapes_without_handler;
    Alcotest.test_case "traps propagate through calls" `Quick
      test_trap_propagates_through_calls;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "synchronized method cost" `Quick
      test_synchronized_method_charges;
    Alcotest.test_case "multi-dimensional arrays" `Quick test_multiarray;
    Alcotest.test_case "packed decimal arithmetic" `Quick
      test_packed_decimal_arithmetic;
    Alcotest.test_case "char zero extension" `Quick test_char_zero_extension;
    Alcotest.test_case "deep call chain" `Quick test_deep_call_chain;
    Alcotest.test_case "instanceof/checkcast flow" `Quick
      test_instanceof_and_checkcast_flow;
  ]
