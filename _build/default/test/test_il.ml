module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Validate = Tessera_il.Validate
module Program = Tessera_il.Program

let test_types_table () =
  Alcotest.(check int) "14 types" 14 Types.count;
  Array.iter
    (fun t ->
      Alcotest.(check bool)
        (Types.name t ^ " name roundtrip")
        true
        (Types.of_name (Types.name t) = Some t);
      Alcotest.(check bool) "index roundtrip" true
        (Types.of_index (Types.index t) = t))
    Types.all;
  Alcotest.(check bool) "byte integral" true (Types.is_integral Types.Byte);
  Alcotest.(check bool) "packed integral" true
    (Types.is_integral Types.Packed_decimal);
  Alcotest.(check bool) "longdouble floating" true
    (Types.is_floating Types.Long_double);
  Alcotest.(check bool) "address reference" true (Types.is_reference Types.Address)

let test_opcode_groups () =
  Alcotest.(check int) "38 groups" 38 Opcode.group_count;
  (* every group index is produced by at least one opcode *)
  let covered = Array.make Opcode.group_count false in
  List.iter
    (fun op -> covered.(Opcode.group op) <- true)
    [
      Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.Div; Opcode.Rem; Opcode.Neg;
      Opcode.Shift Opcode.Shl; Opcode.Or; Opcode.And; Opcode.Xor; Opcode.Inc;
      Opcode.Compare Opcode.Eq; Opcode.Cast Opcode.C_byte;
      Opcode.Cast Opcode.C_char; Opcode.Cast Opcode.C_short;
      Opcode.Cast Opcode.C_int; Opcode.Cast Opcode.C_long;
      Opcode.Cast Opcode.C_float; Opcode.Cast Opcode.C_double;
      Opcode.Cast Opcode.C_longdouble; Opcode.Cast Opcode.C_address;
      Opcode.Cast Opcode.C_object; Opcode.Cast Opcode.C_packed;
      Opcode.Cast Opcode.C_zoned; Opcode.Cast Opcode.C_check; Opcode.Load;
      Opcode.Loadconst; Opcode.Store; Opcode.New; Opcode.Newarray;
      Opcode.Newmultiarray; Opcode.Instanceof;
      Opcode.Synchronization Opcode.Monitor_enter; Opcode.Throw_op;
      Opcode.Branch_op; Opcode.Call; Opcode.Arrayop Opcode.Bounds_check;
      Opcode.Mixedop;
    ];
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "group %d (%s) covered" i (Opcode.group_name i)) true c)
    covered;
  (* refinements collapse into one group *)
  Alcotest.(check int) "shl = shr group"
    (Opcode.group (Opcode.Shift Opcode.Shl))
    (Opcode.group (Opcode.Shift Opcode.Ushr));
  Alcotest.(check int) "eq = lt group"
    (Opcode.group (Opcode.Compare Opcode.Eq))
    (Opcode.group (Opcode.Compare Opcode.Lt))

let test_opcode_name_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Opcode.name op ^ " roundtrip")
        true
        (Opcode.of_name (Opcode.name op) = Some op))
    [
      Opcode.Add; Opcode.Shift Opcode.Ushr; Opcode.Compare Opcode.Ge;
      Opcode.Cast Opcode.C_zoned; Opcode.Synchronization Opcode.Monitor_exit;
      Opcode.Arrayop Opcode.Array_copy; Opcode.Mixedop;
    ]

let test_node_structure () =
  let a = Node.iconst Types.Int 1L in
  let b = Node.iconst Types.Int 1L in
  let sum = Node.binop Opcode.Add Types.Int a b in
  Alcotest.(check int) "size" 3 (Node.size sum);
  Alcotest.(check bool) "structural equal ignores uid" true
    (Node.structural_equal a b);
  Alcotest.(check bool) "different const differ" false
    (Node.structural_equal a (Node.iconst Types.Int 2L));
  Alcotest.(check bool) "hash agrees" true
    (Node.structural_hash a = Node.structural_hash b);
  (* map_bottom_up identity preserves uids *)
  let sum' = Node.map_bottom_up Fun.id sum in
  Alcotest.(check bool) "identity map physical" true (sum' == sum);
  (* flags survive with_flags and keep uid *)
  let flagged = Node.with_flags sum Node.flag_stack_alloc in
  Alcotest.(check bool) "flag set" true (Node.has_flag flagged Node.flag_stack_alloc);
  Alcotest.(check int) "uid stable" sum.Node.uid flagged.Node.uid

let test_node_purity () =
  let pure = Node.binop Opcode.Add Types.Int (Node.iconst Types.Int 1L) (Node.iconst Types.Int 2L) in
  Alcotest.(check bool) "add pure" true (Node.subtree_pure pure);
  let div0 =
    Node.binop Opcode.Div Types.Int (Node.iconst Types.Int 1L) (Node.iconst Types.Int 0L)
  in
  Alcotest.(check bool) "div by zero const impure" false (Node.subtree_pure div0);
  let divc =
    Node.binop Opcode.Div Types.Int (Node.iconst Types.Int 1L) (Node.iconst Types.Int 2L)
  in
  Alcotest.(check bool) "div by nonzero const pure" true (Node.subtree_pure divc);
  let fdiv =
    Node.binop Opcode.Div Types.Double (Node.fconst Types.Double 1.0)
      (Node.fconst Types.Double 0.0)
  in
  Alcotest.(check bool) "fp div pure" true (Node.subtree_pure fdiv);
  Alcotest.(check bool) "call impure" false
    (Node.subtree_pure (Node.call Types.Int ~callee:0 [||]))

let simple_method ?(ret = Types.Int) blocks symbols =
  Meth.make ~name:"T.m()I" ~params:[||] ~ret ~symbols blocks

let test_block_successors () =
  let b_goto = Block.make 0 [] (Block.Goto 3) in
  Alcotest.(check (list int)) "goto" [ 3 ] (Block.successors b_goto);
  let cond = Node.iconst Types.Int 1L in
  let b_if = Block.make 0 [] (Block.If { cond; if_true = 1; if_false = 2 }) in
  Alcotest.(check (list int)) "if" [ 1; 2 ] (Block.successors b_if);
  let b_if_same = Block.make 0 [] (Block.If { cond; if_true = 1; if_false = 1 }) in
  Alcotest.(check (list int)) "if same target deduped" [ 1 ] (Block.successors b_if_same);
  let b_ret = Block.make 0 [] (Block.Return None) in
  Alcotest.(check (list int)) "return" [] (Block.successors b_ret)

let test_meth_helpers () =
  let symbols = [| Symbol.arg "a" Types.Int; Symbol.temp "t" Types.Int |] in
  let body =
    [|
      Block.make 0
        [ Node.store_sym 1 (Node.load_sym Types.Int 0) ]
        (Block.Goto 1);
      Block.make 1 [] (Block.If
        { cond = Node.load_sym Types.Int 1; if_true = 1; if_false = 2 });
      Block.make 2 [] (Block.Return (Some (Node.load_sym Types.Int 1)));
    |]
  in
  let m = Meth.make ~name:"T.f(I)I" ~params:[| Types.Int |] ~ret:Types.Int ~symbols body in
  Alcotest.(check int) "args" 1 (Meth.arg_count m);
  Alcotest.(check int) "temps" 1 (Meth.temp_count m);
  Alcotest.(check bool) "backward branch" true (Meth.has_backward_branch m);
  Alcotest.(check int) "handlers" 0 (Meth.exception_handler_count m);
  Alcotest.(check int) "tree count" 4 (Meth.tree_count m)

let test_validate_catches () =
  let bad_target =
    simple_method
      [| Block.make 0 [] (Block.Goto 7) |]
      [||]
  in
  Alcotest.(check bool) "branch target oob" true
    (Validate.check_method bad_target <> []);
  let bad_sym =
    simple_method
      [| Block.make 0 [ Node.store_sym 3 (Node.iconst Types.Int 0L) ] (Block.Return (Some (Node.iconst Types.Int 0L))) |]
      [||]
  in
  Alcotest.(check bool) "symbol oob" true (Validate.check_method bad_sym <> []);
  let bad_arity =
    simple_method
      [| Block.make 0
           [ Node.mk Opcode.Add Types.Int [| Node.iconst Types.Int 1L |] ]
           (Block.Return (Some (Node.iconst Types.Int 0L))) |]
      [||]
  in
  Alcotest.(check bool) "bad arity" true (Validate.check_method bad_arity <> []);
  let void_return =
    simple_method ~ret:Types.Void
      [| Block.make 0 [] (Block.Return (Some (Node.iconst Types.Int 0L))) |]
      [||]
  in
  Alcotest.(check bool) "value return from void" true
    (Validate.check_method void_return <> []);
  let ok =
    simple_method
      [| Block.make 0 [] (Block.Return (Some (Node.iconst Types.Int 0L))) |]
      [||]
  in
  Alcotest.(check (list string)) "valid method accepted" []
    (List.map (fun e -> Format.asprintf "%a" Validate.pp_error e)
       (Validate.check_method ok))

let test_program_lookup () =
  let m name =
    Meth.make ~name ~params:[||] ~ret:Types.Void ~symbols:[||]
      [| Block.make 0 [] (Block.Return None) |]
  in
  let p = Program.make ~name:"p" ~entry:0 [| m "A.a()V"; m "B.b()V" |] in
  Alcotest.(check (option int)) "find" (Some 1) (Program.find_method p "B.b()V");
  Alcotest.(check (option int)) "missing" None (Program.find_method p "C.c()V");
  Alcotest.check_raises "entry oob"
    (Invalid_argument "Program.make: entry method id out of range") (fun () ->
      ignore (Program.make ~name:"p" ~entry:5 [| m "A.a()V" |]))

let test_generated_programs_valid () =
  List.iter
    (fun (b : Tessera_workloads.Suites.bench) ->
      let p =
        Tessera_workloads.Generate.program
          b.Tessera_workloads.Suites.profile
      in
      Alcotest.(check (list string))
        (b.Tessera_workloads.Suites.profile.Tessera_workloads.Profile.name
        ^ " valid")
        []
        (List.map
           (fun e -> Format.asprintf "%a" Validate.pp_error e)
           (Validate.check_program p)))
    Tessera_workloads.Suites.all

let suite =
  [
    Alcotest.test_case "types table" `Quick test_types_table;
    Alcotest.test_case "opcode groups" `Quick test_opcode_groups;
    Alcotest.test_case "opcode name roundtrip" `Quick test_opcode_name_roundtrip;
    Alcotest.test_case "node structure" `Quick test_node_structure;
    Alcotest.test_case "node purity" `Quick test_node_purity;
    Alcotest.test_case "block successors" `Quick test_block_successors;
    Alcotest.test_case "method helpers" `Quick test_meth_helpers;
    Alcotest.test_case "validator catches bad IR" `Quick test_validate_catches;
    Alcotest.test_case "program lookup" `Quick test_program_lookup;
    Alcotest.test_case "all suite programs validate" `Slow
      test_generated_programs_valid;
  ]
