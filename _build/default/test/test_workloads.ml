module Suites = Tessera_workloads.Suites
module Generate = Tessera_workloads.Generate
module Profile = Tessera_workloads.Profile
module Program = Tessera_il.Program
module Values = Tessera_vm.Values
open Helpers

let test_determinism () =
  let b = List.hd Suites.specjvm98 in
  let p1 = Generate.program b.Suites.profile in
  let p2 = Generate.program b.Suites.profile in
  Alcotest.(check bool) "same profile same program" true (Program.equal p1 p2);
  let p3 =
    Generate.program { b.Suites.profile with Profile.seed = 999L }
  in
  Alcotest.(check bool) "different seed differs" false (Program.equal p1 p3)

let test_suite_composition () =
  Alcotest.(check int) "8 SPECjvm98-like benchmarks" 8 (List.length Suites.specjvm98);
  Alcotest.(check int) "12 DaCapo-like benchmarks" 12 (List.length Suites.dacapo);
  Alcotest.(check int) "5 training benchmarks" 5 (List.length Suites.training_set);
  let tags = List.map (fun (b : Suites.bench) -> b.Suites.tag) Suites.training_set in
  Alcotest.(check (list string)) "paper's two-letter tags"
    [ "co"; "db"; "mp"; "mt"; "rt" ] tags;
  Alcotest.(check bool) "find by tag" true (Suites.find "mp" <> None);
  Alcotest.(check bool) "find by name" true (Suites.find "luindex" <> None);
  Alcotest.(check bool) "tradebeans excluded as in the paper" true
    (Suites.find "tradebeans" = None)

let test_benchmarks_distinct () =
  (* distinct benchmarks must behave distinctly *)
  let results =
    List.map
      (fun (b : Suites.bench) ->
        let p = Generate.program b.Suites.profile in
        fst (run_program p (entry_args 3)))
      (List.filteri (fun i _ -> i < 5) Suites.all)
  in
  let rec pairwise = function
    | [] | [ _ ] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            Alcotest.(check bool) "behaviours differ" false (outcome_equal a b))
          rest;
        pairwise rest
  in
  pairwise results

let test_entry_terminates_cleanly () =
  List.iter
    (fun (b : Suites.bench) ->
      let p = Generate.program (Profile.scale b.Suites.profile 0.5) in
      for k = 0 to 2 do
        let outcome, cycles = run_program p (entry_args k) in
        Alcotest.(check bool)
          (b.Suites.profile.Profile.name ^ " entry returns normally")
          true
          (match outcome with Ok _ -> true | Error _ -> false);
        Alcotest.(check bool) "does work" true (cycles > 1000)
      done)
    (List.filteri (fun i _ -> i < 6) Suites.all)

let test_profiles_shape_features () =
  (* feature axes respond to profile knobs: mpegaudio is FP-heavy,
     compress is not *)
  let fp_share name =
    let b = Option.get (Suites.find name) in
    let p = Generate.program b.Suites.profile in
    let fp = ref 0 and total = ref 0 in
    Array.iter
      (fun m ->
        incr total;
        let f = Tessera_features.Features.extract m in
        if Tessera_features.Features.get f 18 <> 0 then incr fp)
      p.Program.methods;
    float_of_int !fp /. float_of_int !total
  in
  Alcotest.(check bool) "mpegaudio more FP than compress" true
    (fp_share "mpegaudio" > fp_share "compress")

let test_scale_bench () =
  let b = List.hd Suites.specjvm98 in
  let scaled = Suites.scale_bench b 0.5 in
  Alcotest.(check bool) "fewer driver trips" true
    (scaled.Suites.profile.Profile.driver_trips
    < b.Suites.profile.Profile.driver_trips);
  Alcotest.(check bool) "iterations scale" true
    (scaled.Suites.iteration_invocations <= b.Suites.iteration_invocations)

let test_unique_feature_vector_diversity () =
  (* the learning substrate needs many distinct feature vectors *)
  let tbl = Hashtbl.create 128 in
  List.iter
    (fun (b : Suites.bench) ->
      let p = Generate.program b.Suites.profile in
      Array.iter
        (fun m ->
          Hashtbl.replace tbl
            (Tessera_features.Features.to_array
               (Tessera_features.Features.extract m))
            ())
        p.Program.methods)
    Suites.training_set;
  Alcotest.(check bool)
    (Printf.sprintf "%d unique feature vectors" (Hashtbl.length tbl))
    true
    (Hashtbl.length tbl > 60)

let suite =
  [
    Alcotest.test_case "generation is deterministic" `Quick test_determinism;
    Alcotest.test_case "suite composition" `Quick test_suite_composition;
    Alcotest.test_case "benchmarks behave distinctly" `Slow test_benchmarks_distinct;
    Alcotest.test_case "entries terminate cleanly" `Slow test_entry_terminates_cleanly;
    Alcotest.test_case "profiles shape features" `Quick test_profiles_shape_features;
    Alcotest.test_case "benchmark scaling" `Quick test_scale_bench;
    Alcotest.test_case "feature vector diversity" `Slow
      test_unique_feature_vector_diversity;
  ]

let test_random_methods_valid () =
  let rng = Tessera_util.Prng.create 99L in
  for i = 0 to 40 do
    let m =
      Generate.random_method ~rng Profile.default
        ~name:(Printf.sprintf "V.m%d" i) ~callees:[] ~classes:[||]
    in
    Alcotest.(check (list string))
      (Printf.sprintf "method %d valid" i)
      []
      (List.map
         (fun e -> Format.asprintf "%a" Tessera_il.Validate.pp_error e)
         (Tessera_il.Validate.check_method m))
  done

let test_profile_axes_move_features () =
  (* turning a bias up must increase the prevalence of that feature *)
  let count_feature profile idx =
    let p = Generate.program { profile with Profile.name = "axis"; seed = 5L } in
    Array.fold_left
      (fun acc m ->
        acc
        + Tessera_features.Features.get (Tessera_features.Features.extract m) idx)
      0 p.Program.methods
  in
  let base = Profile.default in
  (* feature 13 = allocatesDynamicMemory *)
  let low = count_feature { base with Profile.object_bias = 0.02; array_bias = 0.02 } 13 in
  let high = count_feature { base with Profile.object_bias = 0.7 } 13 in
  Alcotest.(check bool)
    (Printf.sprintf "allocation axis responds (%d -> %d)" low high)
    true (high > low);
  (* feature 0 = exceptionHandlers *)
  let lowx = count_feature { base with Profile.exception_bias = 0.0 } 0 in
  let highx = count_feature { base with Profile.exception_bias = 0.6 } 0 in
  Alcotest.(check bool)
    (Printf.sprintf "exception axis responds (%d -> %d)" lowx highx)
    true (highx > lowx)

let suite =
  suite
  @ [
      Alcotest.test_case "random methods validate" `Quick test_random_methods_valid;
      Alcotest.test_case "profile axes move features" `Slow
        test_profile_axes_move_features;
    ]
