module Parser = Tessera_lang.Parser
module Printer = Tessera_lang.Printer
module Program = Tessera_il.Program
module Meth = Tessera_il.Meth
module Node = Tessera_il.Node

let test_expr_roundtrip () =
  let exprs =
    [
      "(loadconst int 42)";
      "(loadconst double 0x1.8p1)";
      "(add int (load int $0) (loadconst int -3))";
      "(inc void $2 -1)";
      "(call int $3 (loadconst int 1) (loadconst int 2))";
      "(cast.check object $1 (new object $0))";
      "(arraycopy void (load address $0) (load address $1) (loadconst int 8))";
    ]
  in
  List.iter
    (fun src ->
      let e = Parser.parse_expr src in
      let printed = Format.asprintf "%a" Printer.pp_expr e in
      let e' = Parser.parse_expr printed in
      Alcotest.(check bool) (src ^ " roundtrip") true (Node.structural_equal e e'))
    exprs

let test_program_roundtrip_generated () =
  List.iter
    (fun seed ->
      let p = Helpers.gen_program seed in
      let text = Printer.program_to_string p in
      let p' = Parser.parse_program text in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld program roundtrip" seed)
        true (Program.equal p p'))
    (Helpers.seeds 8 900)

let test_roundtrip_preserves_semantics () =
  List.iter
    (fun seed ->
      let p = Helpers.gen_program seed in
      let p' = Parser.parse_program (Printer.program_to_string p) in
      let a, _ = Helpers.run_program p (Helpers.entry_args 5) in
      let b, _ = Helpers.run_program p' (Helpers.entry_args 5) in
      Alcotest.check Helpers.outcome_testable "same behaviour" a b)
    (Helpers.seeds 4 1500)

let expect_parse_error src expect_line =
  match Parser.parse_program src with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Parser.Parse_error { line; _ } ->
      Alcotest.(check int) "error line" expect_line line

let test_error_positions () =
  expect_parse_error "program \"x\" entry 0\nmethod oops" 2;
  expect_parse_error
    "program \"x\" entry 0\nmethod \"m\" () returns int {\nblock 0 {\n(bogus int)\n(return (loadconst int 1))\n}\n}"
    4

let test_missing_terminator () =
  match
    Parser.parse_method
      "method \"m\" () returns int {\nblock 0 {\n}\n}"
  with
  | _ -> Alcotest.fail "expected error"
  | exception Parser.Parse_error { message; _ } ->
      Alcotest.(check bool) "mentions terminator" true
        (String.length message > 0)

let test_comments_and_whitespace () =
  let src =
    {|
; a comment
program "c" entry 0  ; trailing comment
method "M.m()I" (static) returns int {
  temp "t" int
  block 0 {
    ; inside a block
    (store void $0 (loadconst int 3))
    (return (load int $0))
  }
}
|}
  in
  let p = Parser.parse_program src in
  Alcotest.(check int) "parsed" 1 (Program.method_count p);
  let r, _ = Helpers.run_program p [||] in
  Alcotest.check Helpers.outcome_testable "runs"
    (Ok (Tessera_vm.Values.Int_v 3L)) r

let test_invalid_rejected () =
  (* parser runs the validator: a branch to a missing block must fail *)
  match
    Parser.parse_program
      "program \"x\" entry 0\nmethod \"m()V\" () returns void {\nblock 0 {\n(goto 9)\n}\n}"
  with
  | _ -> Alcotest.fail "expected validation error"
  | exception Parser.Parse_error { message; _ } ->
      Alcotest.(check bool) "mentions invalid" true
        (String.length message > 0)

let test_attrs_roundtrip () =
  let src =
    "method \"A.a()V\" (synchronized strictfp bigdecimal) returns void {\nblock 0 {\n(return)\n}\n}"
  in
  let m = Parser.parse_method src in
  Alcotest.(check bool) "synchronized" true m.Meth.attrs.Meth.synchronized;
  Alcotest.(check bool) "strictfp" true m.Meth.attrs.Meth.strictfp;
  Alcotest.(check bool) "bigdecimal" true m.Meth.attrs.Meth.uses_bigdecimal;
  Alcotest.(check bool) "not public" false m.Meth.attrs.Meth.public;
  let m' = Parser.parse_method (Printer.method_to_string m) in
  Alcotest.(check bool) "method roundtrip" true (Meth.equal m m')

let suite =
  [
    Alcotest.test_case "expression roundtrip" `Quick test_expr_roundtrip;
    Alcotest.test_case "generated program roundtrip" `Slow
      test_program_roundtrip_generated;
    Alcotest.test_case "roundtrip preserves semantics" `Slow
      test_roundtrip_preserves_semantics;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "missing terminator" `Quick test_missing_terminator;
    Alcotest.test_case "comments and whitespace" `Quick test_comments_and_whitespace;
    Alcotest.test_case "validation on parse" `Quick test_invalid_rejected;
    Alcotest.test_case "attributes roundtrip" `Quick test_attrs_roundtrip;
  ]
