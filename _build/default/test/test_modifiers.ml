module Modifier = Tessera_modifiers.Modifier
module Queue_ctrl = Tessera_modifiers.Queue_ctrl
module Prng = Tessera_util.Prng

let test_null () =
  Alcotest.(check bool) "null is null" true (Modifier.is_null Modifier.null);
  Alcotest.(check int) "width 58" 58 Modifier.width;
  for i = 0 to Modifier.width - 1 do
    Alcotest.(check bool) "null disables nothing" false
      (Modifier.disables Modifier.null i);
    Alcotest.(check bool) "enabled_fun true" true
      (Modifier.enabled_fun Modifier.null i)
  done

let test_of_disabled () =
  let m = Modifier.of_disabled [ 3; 17; 52 ] in
  Alcotest.(check int) "count" 3 (Modifier.disabled_count m);
  Alcotest.(check (list int)) "indices" [ 3; 17; 52 ] (Modifier.disabled_indices m);
  Alcotest.(check bool) "disables 17" true (Modifier.disables m 17);
  Alcotest.(check bool) "not 16" false (Modifier.disables m 16)

let test_roundtrips () =
  let rng = Prng.create 8L in
  for _ = 1 to 100 do
    let m = Modifier.random rng ~density:0.3 in
    Alcotest.(check bool) "string roundtrip" true
      (Modifier.equal m (Modifier.of_string (Modifier.to_string m)));
    Alcotest.(check bool) "bits roundtrip" true
      (Modifier.equal m (Modifier.of_bits (Modifier.to_bits m)))
  done

let test_eq1_schedule () =
  (* D_i = i * 0.25 / L (Eq. 1) *)
  Alcotest.(check (float 1e-12)) "D_0" 0.0
    (Modifier.progressive_probability ~i:0 ~l:2000);
  Alcotest.(check (float 1e-12)) "D_L" 0.25
    (Modifier.progressive_probability ~i:2000 ~l:2000);
  Alcotest.(check (float 1e-12)) "increase rate 0.000125"
    0.000125
    (Modifier.progressive_probability ~i:1 ~l:2000);
  (* monotone *)
  let prev = ref (-1.0) in
  for i = 0 to 100 do
    let p = Modifier.progressive_probability ~i ~l:100 in
    Alcotest.(check bool) "monotone" true (p >= !prev);
    prev := p
  done

let test_progressive_density_empirical () =
  let rng = Prng.create 77L in
  (* at i = L the empirical disable rate should be near 0.25 *)
  let total = ref 0 in
  let n = 300 in
  for _ = 1 to n do
    total := !total + Modifier.disabled_count (Modifier.progressive rng ~i:2000 ~l:2000)
  done;
  let rate = float_of_int !total /. float_of_int (n * Modifier.width) in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.25" rate)
    true
    (rate > 0.22 && rate < 0.28)

let test_queue_every_third_null () =
  let q = Queue_ctrl.create ~uses_per_modifier:5 ~seed:1L (Queue_ctrl.Progressive { l = 50 }) in
  (* compilations 1,2 get queue modifiers; the 3rd is always null *)
  let m1 = Queue_ctrl.next q ~method_key:7 in
  let m2 = Queue_ctrl.next q ~method_key:7 in
  let m3 = Queue_ctrl.next q ~method_key:7 in
  Alcotest.(check bool) "first not none" true (m1 <> None);
  Alcotest.(check bool) "second not none" true (m2 <> None);
  (match m3 with
  | Some m -> Alcotest.(check bool) "third is null" true (Modifier.is_null m)
  | None -> Alcotest.fail "third missing")

let test_queue_no_repeat_per_method () =
  let q =
    Queue_ctrl.create ~uses_per_modifier:100 ~seed:2L
      (Queue_ctrl.Randomized { count = 30; density = 0.4 })
  in
  let seen = Hashtbl.create 32 in
  let rec go n =
    if n = 0 then ()
    else
      match Queue_ctrl.next q ~method_key:1 with
      | None -> ()
      | Some m when Modifier.is_null m -> go (n - 1)
      | Some m ->
          let key = Modifier.to_bits m in
          Alcotest.(check bool) "modifier not repeated for method" false
            (Hashtbl.mem seen key);
          Hashtbl.add seen key ();
          go (n - 1)
  in
  go 60

let test_queue_retirement () =
  (* with 2 uses per modifier and 3 modifiers, 2 methods sharing the queue
     retire modifiers quickly and then exhaust *)
  let q =
    Queue_ctrl.create ~uses_per_modifier:2 ~seed:3L
      (Queue_ctrl.Randomized { count = 3; density = 0.5 })
  in
  let served = ref 0 in
  for round = 1 to 12 do
    List.iter
      (fun key ->
        match Queue_ctrl.next q ~method_key:key with
        | Some m when not (Modifier.is_null m) -> incr served
        | _ -> ())
      [ 100; 200 ];
    ignore round
  done;
  (* 3 modifiers x 2 uses = at most 6 non-null issues *)
  Alcotest.(check bool)
    (Printf.sprintf "served %d <= 6" !served)
    true (!served <= 6);
  Alcotest.(check bool) "exhausted" true (Queue_ctrl.exhausted q)

let test_queue_exhaustion_stops_method () =
  let q =
    Queue_ctrl.create ~uses_per_modifier:1000 ~seed:4L
      (Queue_ctrl.Randomized { count = 4; density = 0.5 })
  in
  (* a single method walks through all 4 modifiers (with nulls in
     between) and then gets None *)
  let nones = ref 0 and gets = ref 0 in
  for _ = 1 to 20 do
    match Queue_ctrl.next q ~method_key:5 with
    | None -> incr nones
    | Some _ -> incr gets
  done;
  Alcotest.(check bool) "eventually none" true (!nones > 0);
  Alcotest.(check bool) "got some first" true (!gets >= 4)

let suite =
  [
    Alcotest.test_case "null modifier" `Quick test_null;
    Alcotest.test_case "of_disabled" `Quick test_of_disabled;
    Alcotest.test_case "roundtrips" `Quick test_roundtrips;
    Alcotest.test_case "Eq.1 schedule" `Quick test_eq1_schedule;
    Alcotest.test_case "progressive density" `Quick test_progressive_density_empirical;
    Alcotest.test_case "every third compilation is null" `Quick
      test_queue_every_third_null;
    Alcotest.test_case "no modifier repeats per method" `Quick
      test_queue_no_repeat_per_method;
    Alcotest.test_case "retirement after N uses" `Quick test_queue_retirement;
    Alcotest.test_case "exhaustion stops recompilation" `Quick
      test_queue_exhaustion_stops_method;
  ]

(* ---- guided search (the paper's future work, Section 5) ---- *)

module Guided = Tessera_modifiers.Guided

let test_guided_every_third_null () =
  let g = Guided.create ~seed:1L () in
  let m1 = Guided.next g ~method_key:1 in
  let m2 = Guided.next g ~method_key:1 in
  let m3 = Guided.next g ~method_key:1 in
  Alcotest.(check bool) "proposals exist" true (m1 <> None && m2 <> None);
  match m3 with
  | Some m -> Alcotest.(check bool) "third is null" true (Modifier.is_null m)
  | None -> Alcotest.fail "third proposal missing"

let test_guided_no_repeats () =
  let g = Guided.create ~seed:2L () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 90 do
    match Guided.next g ~method_key:9 with
    | Some m when not (Modifier.is_null m) ->
        let key = Modifier.to_bits m in
        Alcotest.(check bool) "no repeat" false (Hashtbl.mem seen key);
        Hashtbl.add seen key ()
    | _ -> ()
  done

let test_guided_budget () =
  let g =
    Guided.create
      ~params:{ Guided.default_params with Guided.max_proposals_per_method = 5 }
      ~seed:3L ()
  in
  let nones = ref 0 in
  for _ = 1 to 30 do
    if Guided.next g ~method_key:4 = None then incr nones
  done;
  Alcotest.(check bool) "budget exhausts" true (!nones > 0);
  Alcotest.(check int) "proposal count" 5 (Guided.proposals_made g)

let test_guided_feedback_tracks_best () =
  let g = Guided.create ~seed:4L () in
  let a = Modifier.of_disabled [ 1 ] and b = Modifier.of_disabled [ 2 ] in
  Guided.feedback g ~method_key:7 a 100.0;
  Guided.feedback g ~method_key:7 b 50.0;
  Guided.feedback g ~method_key:7 a 80.0;
  (match Guided.best g ~method_key:7 with
  | Some (m, v) ->
      Alcotest.(check bool) "best is b" true (Modifier.equal m b);
      Alcotest.(check (float 1e-9)) "best value" 50.0 v
  | None -> Alcotest.fail "no best");
  Alcotest.(check bool) "unknown method has no best" true
    (Guided.best g ~method_key:8 = None)

let test_guided_proposals_cluster_near_best () =
  (* after feedback, proposals should mostly be small mutations of the
     best modifier rather than uniform noise *)
  let g =
    Guided.create
      ~params:{ Guided.default_params with Guided.restart_rate = 0.0 }
      ~seed:5L ()
  in
  let target = Modifier.of_disabled [ 10; 20; 30; 40; 50 ] in
  Guided.feedback g ~method_key:1 target 1.0;
  let total_distance = ref 0 and n = ref 0 in
  for _ = 1 to 60 do
    match Guided.next g ~method_key:1 with
    | Some m when not (Modifier.is_null m) ->
        let d =
          List.length
            (List.filter
               (fun i -> Modifier.disables m i <> Modifier.disables target i)
               (List.init Modifier.width Fun.id))
        in
        total_distance := !total_distance + d;
        incr n
    | _ -> ()
  done;
  let avg = float_of_int !total_distance /. float_of_int !n in
  Alcotest.(check bool)
    (Printf.sprintf "avg hamming distance %.1f stays small" avg)
    true (avg < 10.0)

let test_guided_collector_integration () =
  let profile =
    { Tessera_workloads.Profile.default with
      Tessera_workloads.Profile.name = "guided-test"; seed = 14L; methods = 4 }
  in
  let program = Tessera_workloads.Generate.program profile in
  let module Collector = Tessera_collect.Collector in
  let archive, stats =
    Collector.run
      ~config:
        {
          Collector.default_config with
          Collector.search = Collector.Guided Guided.default_params;
          max_entry_invocations = 40;
        }
      ~program ~benchmark:"guided-test"
      ~entry_args:(fun k -> [| Tessera_vm.Values.Int_v (Int64.of_int k) |])
      ()
  in
  Alcotest.(check bool) "guided collection produces records" true
    (archive.Tessera_collect.Archive.records <> []);
  Alcotest.(check bool) "guided collection compiles" true
    (stats.Collector.compilations > 0)

let guided_suite =
  [
    Alcotest.test_case "guided: every third is null" `Quick
      test_guided_every_third_null;
    Alcotest.test_case "guided: no repeats per method" `Quick
      test_guided_no_repeats;
    Alcotest.test_case "guided: per-method budget" `Quick test_guided_budget;
    Alcotest.test_case "guided: feedback tracks best" `Quick
      test_guided_feedback_tracks_best;
    Alcotest.test_case "guided: proposals cluster near best" `Quick
      test_guided_proposals_cluster_near_best;
    Alcotest.test_case "guided: collector integration" `Slow
      test_guided_collector_integration;
  ]

let suite = suite @ guided_suite
