test/test_vm.ml: Alcotest Int64 List Option Printf Tessera_codegen Tessera_il Tessera_vm Tessera_workloads
