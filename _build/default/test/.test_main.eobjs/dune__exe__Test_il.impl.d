test/test_il.ml: Alcotest Array Format Fun List Printf Tessera_il Tessera_workloads
