test/test_features.ml: Alcotest Array Hashtbl List Tessera_features Tessera_il Tessera_jit Tessera_opt
