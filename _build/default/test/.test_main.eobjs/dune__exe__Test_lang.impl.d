test/test_lang.ml: Alcotest Format Helpers List Printf String Tessera_il Tessera_lang Tessera_vm
