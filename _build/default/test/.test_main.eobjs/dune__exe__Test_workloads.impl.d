test/test_workloads.ml: Alcotest Array Format Hashtbl Helpers List Option Printf Tessera_features Tessera_il Tessera_util Tessera_vm Tessera_workloads
