test/test_modifiers.ml: Alcotest Fun Hashtbl Int64 List Printf Tessera_collect Tessera_modifiers Tessera_util Tessera_vm Tessera_workloads
