test/test_lexer.ml: Alcotest Format List String Tessera_lang
