test/test_jit.ml: Alcotest Array Format Fun Helpers Int64 List Printf Tessera_features Tessera_il Tessera_jit Tessera_lang Tessera_modifiers Tessera_opt Tessera_vm
