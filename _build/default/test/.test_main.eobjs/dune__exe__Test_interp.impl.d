test/test_interp.ml: Alcotest Buffer Helpers Printf Tessera_il Tessera_lang Tessera_vm
