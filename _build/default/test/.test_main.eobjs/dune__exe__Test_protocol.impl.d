test/test_protocol.ml: Alcotest Array Filename Format Fun Int64 List Printf QCheck QCheck_alcotest Sys Tessera_modifiers Tessera_opt Tessera_protocol Tessera_util Unix
