test/helpers.ml: Alcotest Array Format Int64 List Printf Tessera_codegen Tessera_il Tessera_modifiers Tessera_opt Tessera_util Tessera_vm Tessera_workloads
