test/test_svm.ml: Alcotest Array Buffer Float Format Fun Gen List Printf QCheck QCheck_alcotest Tessera_svm Tessera_util
