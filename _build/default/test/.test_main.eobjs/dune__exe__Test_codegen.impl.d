test/test_codegen.ml: Alcotest Array Int64 List Tessera_codegen Tessera_il Tessera_vm
