test/test_util.ml: Alcotest Array Buffer Fun Gen List Printf QCheck QCheck_alcotest Tessera_util
