test/test_opt.ml: Alcotest Array Hashtbl Int64 List Tessera_il Tessera_opt Tessera_vm
