test/test_engines.ml: Alcotest Array Helpers Int64 List Modifier Printf Prng Tessera_codegen Tessera_il Tessera_jit Tessera_opt Tessera_vm
