module Lexer = Tessera_lang.Lexer

let tokens_of src =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.next lx with
    | Lexer.Eof -> List.rev acc
    | tok -> go (tok :: acc)
  in
  go []

let tok = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Lexer.token_name t)) ( = )

let test_basic_tokens () =
  Alcotest.(check (list tok)) "mixed stream"
    [
      Lexer.Lparen; Lexer.Ident "add"; Lexer.Ident "int"; Lexer.Sym 3;
      Lexer.Int 42L; Lexer.Rparen; Lexer.Lbrace; Lexer.Rbrace;
    ]
    (tokens_of "(add int $3 42) { }")

let test_numbers () =
  Alcotest.(check (list tok)) "negative int" [ Lexer.Int (-7L) ] (tokens_of "-7");
  Alcotest.(check (list tok)) "float" [ Lexer.Float 1.5 ] (tokens_of "1.5");
  Alcotest.(check (list tok)) "hex float" [ Lexer.Float 3.0 ] (tokens_of "0x1.8p1");
  Alcotest.(check (list tok)) "negative hex float" [ Lexer.Float (-3.0) ]
    (tokens_of "-0x1.8p1");
  Alcotest.(check (list tok)) "exponent" [ Lexer.Float 250.0 ] (tokens_of "2.5e2");
  Alcotest.(check (list tok)) "hex int" [ Lexer.Int 255L ] (tokens_of "0xff")

let test_strings () =
  Alcotest.(check (list tok)) "escapes"
    [ Lexer.Str "a\"b\\c\nd" ]
    (tokens_of {|"a\"b\\c\nd"|});
  match tokens_of "\"unterminated" with
  | _ -> Alcotest.fail "expected error"
  | exception Lexer.Error _ -> ()

let test_comments () =
  Alcotest.(check (list tok)) "comment to eol"
    [ Lexer.Int 1L; Lexer.Int 2L ]
    (tokens_of "1 ; ignored ( } \" \n2")

let test_positions () =
  let lx = Lexer.create "a\n  b" in
  ignore (Lexer.next lx);
  ignore (Lexer.next lx);
  let line, col = Lexer.position lx in
  Alcotest.(check int) "line" 2 line;
  Alcotest.(check bool) "column advanced" true (col > 1)

let test_bad_char () =
  match tokens_of "@" with
  | _ -> Alcotest.fail "expected error"
  | exception Lexer.Error { line; col; _ } ->
      Alcotest.(check int) "line 1" 1 line;
      Alcotest.(check int) "col 1" 1 col

let test_expect () =
  let lx = Lexer.create "( foo" in
  Lexer.expect lx Lexer.Lparen;
  match Lexer.expect lx Lexer.Rparen with
  | _ -> Alcotest.fail "expected mismatch error"
  | exception Lexer.Error { message; _ } ->
      Alcotest.(check bool) "mentions both tokens" true
        (String.length message > 5)

let suite =
  [
    Alcotest.test_case "basic tokens" `Quick test_basic_tokens;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "bad character" `Quick test_bad_char;
    Alcotest.test_case "expect" `Quick test_expect;
  ]
