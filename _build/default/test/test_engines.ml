(* Differential tests between the two execution engines and across the
   optimizer: the central correctness property of the whole simulation. *)

open Helpers

let check_same_outcome ~what a b =
  Alcotest.check outcome_testable what a b

(* interp(P) = exec(codegen(P)) on random programs *)
let test_interp_vs_native () =
  List.iter
    (fun seed ->
      let p = gen_program seed in
      Tessera_il.Validate.assert_valid p;
      List.iter
        (fun k ->
          let interp, icycles = run_program p (entry_args k) in
          let native, ncycles = run_program ~compile:true p (entry_args k) in
          check_same_outcome
            ~what:(Printf.sprintf "seed %Ld arg %d" seed k)
            interp native;
          (* native code must be cheaper than interpretation *)
          if icycles > 1000 then
            Alcotest.(check bool)
              (Printf.sprintf "native faster (seed %Ld): %d < %d" seed ncycles
                 icycles)
              true (ncycles < icycles))
        [ 0; 3; 17 ])
    (seeds 12 1)

(* every full plan at every level preserves semantics *)
let test_plans_preserve_semantics () =
  List.iter
    (fun seed ->
      let p = gen_program seed in
      let baseline, _ = run_program p (entry_args 5) in
      Array.iter
        (fun level ->
          let transform =
            optimize_all ~plan:(Tessera_opt.Plan.plan level)
              ~enabled:(fun _ -> true)
              p
          in
          let interp_opt, _ = run_program ~transform p (entry_args 5) in
          let native_opt, _ = run_program ~compile:true ~transform p (entry_args 5) in
          check_same_outcome
            ~what:
              (Printf.sprintf "seed %Ld level %s interp" seed
                 (Tessera_opt.Plan.level_name level))
            baseline interp_opt;
          check_same_outcome
            ~what:
              (Printf.sprintf "seed %Ld level %s native" seed
                 (Tessera_opt.Plan.level_name level))
            baseline native_opt)
        Tessera_opt.Plan.levels)
    (seeds 6 100)

(* plans under random modifiers preserve semantics *)
let test_modified_plans_preserve_semantics () =
  let rng = Prng.create 0xBEEFL in
  List.iter
    (fun seed ->
      let p = gen_program seed in
      let baseline, _ = run_program p (entry_args 2) in
      for trial = 1 to 4 do
        let modifier = Modifier.random rng ~density:(Prng.float rng 0.6) in
        let level = Prng.choose rng Tessera_opt.Plan.levels in
        let transform =
          optimize_all
            ~plan:(Tessera_opt.Plan.plan level)
            ~enabled:(Modifier.enabled_fun modifier)
            p
        in
        let opt, _ = run_program ~compile:true ~transform p (entry_args 2) in
        check_same_outcome
          ~what:
            (Printf.sprintf "seed %Ld trial %d modifier %s" seed trial
              (Modifier.to_string modifier))
          baseline opt
      done)
    (seeds 6 2000)

(* each catalogue transformation, alone and repeated, preserves semantics *)
let test_each_pass_preserves_semantics () =
  let progs = List.map gen_program (seeds 3 31337) in
  Array.iter
    (fun (e : Tessera_opt.Catalog.entry) ->
      List.iter
        (fun p ->
          let baseline, _ = run_program p (entry_args 9) in
          let transform =
            optimize_all
              ~plan:[ e.Tessera_opt.Catalog.index; e.Tessera_opt.Catalog.index ]
              ~enabled:(fun _ -> true)
              p
          in
          let interp_opt, _ = run_program ~transform p (entry_args 9) in
          check_same_outcome
            ~what:(Printf.sprintf "pass %s interp" e.Tessera_opt.Catalog.name)
            baseline interp_opt;
          let native_opt, _ =
            run_program ~compile:true ~transform p (entry_args 9)
          in
          check_same_outcome
            ~what:(Printf.sprintf "pass %s native" e.Tessera_opt.Catalog.name)
            baseline native_opt)
        progs)
    Tessera_opt.Catalog.all

(* the full engine (adaptive JIT) computes the same results as pure
   interpretation, invocation after invocation *)
let test_engine_adaptive_equivalence () =
  List.iter
    (fun seed ->
      let p = gen_program seed in
      let engine = Tessera_jit.Engine.create p in
      for k = 0 to 30 do
        let expected, _ = run_program p (entry_args k) in
        let got = Tessera_jit.Engine.invoke_entry engine (entry_args k) in
        check_same_outcome
          ~what:(Printf.sprintf "seed %Ld invocation %d" seed k)
          expected got
      done;
      (* after 31 invocations of a small program something must have been
         JIT-compiled *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld compiled something" seed)
        true
        (Tessera_jit.Engine.compile_count engine > 0))
    (seeds 4 777)

(* compiled code must make the program faster end-to-end *)
let test_engine_speedup () =
  let p = gen_program 4242L in
  let slow = Tessera_jit.Engine.create ~config:{ Tessera_jit.Engine.default_config with Tessera_jit.Engine.adaptive = false } p in
  let fast = Tessera_jit.Engine.create p in
  for k = 0 to 40 do
    ignore (Tessera_jit.Engine.invoke_entry slow (entry_args k));
    ignore (Tessera_jit.Engine.invoke_entry fast (entry_args k))
  done;
  let interp_cycles = Tessera_jit.Engine.app_cycles slow in
  let jit_cycles = Tessera_jit.Engine.app_cycles fast in
  Alcotest.(check bool)
    (Printf.sprintf "JIT beats interpreter: %Ld < %Ld" jit_cycles interp_cycles)
    true
    (Int64.compare jit_cycles interp_cycles < 0)

let suite =
  [
    Alcotest.test_case "interp = native on random programs" `Slow
      test_interp_vs_native;
    Alcotest.test_case "all plans preserve semantics" `Slow
      test_plans_preserve_semantics;
    Alcotest.test_case "modified plans preserve semantics" `Slow
      test_modified_plans_preserve_semantics;
    Alcotest.test_case "each of the 58 passes preserves semantics" `Slow
      test_each_pass_preserves_semantics;
    Alcotest.test_case "adaptive engine equivalence" `Slow
      test_engine_adaptive_equivalence;
    Alcotest.test_case "JIT speeds the program up" `Quick test_engine_speedup;
  ]

(* back-end targets change cycle counts, never results *)
let test_targets_preserve_semantics () =
  List.iter
    (fun seed ->
      let p = gen_program seed in
      List.iter
        (fun target ->
          let transform =
            optimize_all ~plan:(Tessera_opt.Plan.plan Tessera_opt.Plan.Hot)
              ~enabled:(fun _ -> true)
              p
          in
          (* lower with the target and compare against the interpreter *)
          let methods = Array.mapi transform p.Tessera_il.Program.methods in
          let fuel = ref 200_000_000 in
          let rec invoke id args =
            Tessera_codegen.Exec.run
              {
                Tessera_codegen.Exec.classes = p.Tessera_il.Program.classes;
                charge = ignore;
                invoke;
                fuel;
              }
              (Tessera_codegen.Lower.compile ~target methods.(id))
              args
          in
          let native =
            match invoke p.Tessera_il.Program.entry (entry_args 4) with
            | v -> Ok v
            | exception Tessera_vm.Values.Trap k -> Error k
          in
          let interp, _ = run_program p (entry_args 4) in
          Alcotest.check outcome_testable
            (Printf.sprintf "seed %Ld on %s" seed target.Tessera_vm.Target.name)
            interp native)
        Tessera_vm.Target.all)
    (seeds 4 5101)

let suite =
  suite
  @ [
      Alcotest.test_case "targets preserve semantics" `Slow
        test_targets_preserve_semantics;
    ]
