module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Isa = Tessera_codegen.Isa
module Lower = Tessera_codegen.Lower
module Exec = Tessera_codegen.Exec
module Values = Tessera_vm.Values
module Cost = Tessera_vm.Cost

let ic v = Node.iconst Types.Int (Int64.of_int v)

let exec ?(classes = [||]) compiled args =
  let cycles = ref 0 in
  Exec.run
    {
      Exec.classes;
      charge = (fun n -> cycles := !cycles + n);
      invoke = (fun _ _ -> Alcotest.fail "unexpected call");
      fuel = ref 1_000_000;
    }
    compiled args
  |> fun v -> (v, !cycles)

let simple ret_expr =
  Meth.make ~name:"C.c()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
    [| Block.make 0 [] (Block.Return (Some ret_expr)) |]

let test_lowering_shape () =
  (* return 2+3: const, const, add, ret = 4 instructions *)
  let c = Lower.compile (simple (Node.binop Opcode.Add Types.Int (ic 2) (ic 3))) in
  Alcotest.(check int) "instruction count" 4 c.Isa.code_size;
  let v, _ = exec c [||] in
  Alcotest.(check bool) "value" true (Values.equal v (Values.Int_v 5L))

let test_jump_patching () =
  (* if (1) return 10 else return 20, with blocks out of fallthrough order *)
  let m =
    Meth.make ~name:"J.j()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [|
        Block.make 0 [] (Block.If { cond = ic 0; if_true = 2; if_false = 1 });
        Block.make 1 [] (Block.Return (Some (ic 20)));
        Block.make 2 [] (Block.Return (Some (ic 10)));
      |]
  in
  let c = Lower.compile m in
  let v, _ = exec c [||] in
  Alcotest.(check bool) "took else branch" true (Values.equal v (Values.Int_v 20L));
  (* every jump target lands inside the code *)
  Array.iter
    (function
      | Isa.Jump t | Isa.Jump_if_false t ->
          Alcotest.(check bool) "target in range" true (t >= 0 && t < c.Isa.code_size)
      | _ -> ())
    c.Isa.instrs

let test_regalloc_quality_costs () =
  let m =
    Meth.make ~name:"Q.q()I" ~params:[||] ~ret:Types.Int
      ~symbols:[| Symbol.temp "t" Types.Int |]
      [|
        Block.make 0
          [ Node.store_sym 0 (ic 7) ]
          (Block.Return (Some (Node.load_sym Types.Int 0)));
      |]
  in
  let base = Lower.compile ~quality:Cost.Q_base m in
  let fast = Lower.compile ~quality:Cost.Q_regalloc m in
  Alcotest.(check bool) "register allocation lowers static cost" true
    (Lower.static_cycle_estimate fast < Lower.static_cycle_estimate base);
  let _, cb = exec base [||] in
  let _, cf = exec fast [||] in
  Alcotest.(check bool) "and dynamic cost" true (cf < cb)

let test_flag_discount_in_code () =
  let alloc = Node.mk ~sym:(Types.index Types.Int) Opcode.Newarray Types.Address [| ic 4 |] in
  let flagged = Node.with_flags alloc Node.flag_stack_alloc in
  let plain = Lower.compile (simple (Node.mk Opcode.(Arrayop Array_length) Types.Int [| alloc |])) in
  let cheap = Lower.compile (simple (Node.mk Opcode.(Arrayop Array_length) Types.Int [| flagged |])) in
  Alcotest.(check bool) "stack-allocation flag discounts cycles" true
    (Lower.static_cycle_estimate cheap < Lower.static_cycle_estimate plain);
  (* semantics identical *)
  let va, _ = exec plain [||] and vb, _ = exec cheap [||] in
  Alcotest.(check bool) "same value" true (Values.equal va vb)

let test_handler_dispatch_in_native_code () =
  (* div by zero in block 0 jumps to handler block 1 *)
  let m =
    Meth.make ~name:"H.h()I" ~params:[||] ~ret:Types.Int
      ~symbols:[| Symbol.temp "r" Types.Int |]
      [|
        Block.make ~handler:(Some 1) 0
          [ Node.store_sym 0 (Node.binop Opcode.Div Types.Int (ic 1) (ic 0)) ]
          (Block.Return (Some (ic 111)));
        Block.make 1 [] (Block.Return (Some (ic 222)));
      |]
  in
  let c = Lower.compile m in
  let v, _ = exec c [||] in
  Alcotest.(check bool) "handler caught the trap" true
    (Values.equal v (Values.Int_v 222L));
  (* without a handler, the trap escapes *)
  let m2 =
    Meth.make ~name:"H.h2()I" ~params:[||] ~ret:Types.Int
      ~symbols:[| Symbol.temp "r" Types.Int |]
      [|
        Block.make 0
          [ Node.store_sym 0 (Node.binop Opcode.Div Types.Int (ic 1) (ic 0)) ]
          (Block.Return (Some (ic 111)));
      |]
  in
  Alcotest.check_raises "escapes" (Values.Trap Values.Div_by_zero) (fun () ->
      ignore (exec (Lower.compile m2) [||]))

let test_return_coercion () =
  (* method declared byte-returning must truncate *)
  let m =
    Meth.make ~name:"B.b()B" ~params:[||] ~ret:Types.Byte ~symbols:[||]
      [| Block.make 0 [] (Block.Return (Some (Node.iconst Types.Byte 0x1FFL))) |]
  in
  let v, _ = exec (Lower.compile m) [||] in
  Alcotest.(check bool) "byte truncation on return" true
    (Values.equal v (Values.Int_v (-1L)))

let test_argument_coercion () =
  let m =
    Meth.make ~name:"A.a(B)I" ~params:[| Types.Byte |] ~ret:Types.Int
      ~symbols:[| Symbol.arg "x" Types.Byte |]
      [|
        Block.make 0 []
          (Block.Return
             (Some (Node.mk Opcode.(Cast C_int) Types.Int
                      [| Node.load_sym Types.Byte 0 |])));
      |]
  in
  let v, _ = exec (Lower.compile m) [| Values.Int_v 300L |] in
  (* 300 truncated into a byte is 44 *)
  Alcotest.(check bool) "argument truncated at entry" true
    (Values.equal v (Values.Int_v 44L))

let test_fallthrough_gotos_cost_nothing () =
  let m =
    Meth.make ~name:"F.f()I" ~params:[||] ~ret:Types.Int ~symbols:[||]
      [|
        Block.make 0 [] (Block.Goto 1);
        Block.make 1 [] (Block.Return (Some (ic 1)));
      |]
  in
  let c = Lower.compile m in
  let fallthrough_jump_costs =
    Array.to_list
      (Array.mapi
         (fun pc instr ->
           match instr with Isa.Jump t when t = pc + 1 -> c.Isa.costs.(pc) | _ -> -1)
         c.Isa.instrs)
    |> List.filter (fun x -> x >= 0)
  in
  Alcotest.(check (list int)) "fallthrough jump is free" [ 0 ] fallthrough_jump_costs

let suite =
  [
    Alcotest.test_case "lowering shape" `Quick test_lowering_shape;
    Alcotest.test_case "jump patching" `Quick test_jump_patching;
    Alcotest.test_case "regalloc quality costs" `Quick test_regalloc_quality_costs;
    Alcotest.test_case "flag discounts reach the code" `Quick
      test_flag_discount_in_code;
    Alcotest.test_case "native handler dispatch" `Quick
      test_handler_dispatch_in_native_code;
    Alcotest.test_case "return coercion" `Quick test_return_coercion;
    Alcotest.test_case "argument coercion" `Quick test_argument_coercion;
    Alcotest.test_case "fallthrough gotos are free" `Quick
      test_fallthrough_gotos_cost_nothing;
  ]
