(* The two-process integration of Section 7: the machine-learned model
   runs in a separate process and the compiler queries it over named
   pipes, so models can be swapped without changing the compiler.

   This example forks a model-server child, connects the JIT's
   strategy-control hook to the protocol client, runs a benchmark, and
   shuts the server down.

   Run with: dune exec examples/pipe_integration.exe *)

module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values
module Channel = Tessera_protocol.Channel
module Client = Tessera_protocol.Client
module Features = Tessera_features.Features

let () =
  let cfg = Harness.Expconfig.quick in
  (* a quick model from one benchmark's data *)
  let outcome =
    Harness.Collection.collect_bench ~cfg (List.hd Suites.training_set)
  in
  let ms = Harness.Training.train_on_all ~name:"piped" [ outcome ] in

  let dir = Filename.get_temp_dir_name () in
  let req = Filename.concat dir "tessera_example.req" in
  let res = Filename.concat dir "tessera_example.res" in
  let open_server, open_client = Channel.fifo_pair ~path_a:req ~path_b:res in

  match Unix.fork () with
  | 0 ->
      (* child: the model server *)
      let ch = open_server () in
      Tessera_protocol.Server.serve ch (Harness.Modelset.server_predictor ms);
      exit 0
  | child_pid ->
      let ch = open_client () in
      let client = Client.connect ~model_name:"piped" ch in
      Format.printf "connected to model server (pid %d), ping: %b@." child_pid
        (Client.ping client);

      (* strategy control queries the external model for every compile *)
      let choose_modifier engine ~meth_id ~level =
        let m =
          Tessera_il.Program.meth (Engine.program engine) meth_id
        in
        let features =
          Array.map float_of_int (Features.to_array (Features.extract m))
        in
        Some (Client.predict client ~level ~features)
      in
      let bench = Option.get (Suites.find "jack") in
      let program = Tessera_workloads.Generate.program bench.Suites.profile in
      let engine =
        Engine.create
          ~callbacks:
            { Engine.no_callbacks with Engine.choose_modifier = Some choose_modifier }
          program
      in
      for k = 0 to bench.Suites.iteration_invocations - 1 do
        ignore (Engine.invoke_entry engine [| Values.Int_v (Int64.of_int k) |])
      done;
      Format.printf
        "ran %s with the piped model: %Ld app cycles, %d compilations@."
        bench.Suites.profile.Tessera_workloads.Profile.name
        (Engine.app_cycles engine)
        (Engine.compile_count engine);
      Client.shutdown client;
      ignore (Unix.waitpid [] child_pid);
      Format.printf "server exited cleanly@."
