(* Which transformations earn their keep on a given benchmark?

   For every one of the 58 controllable transformations, compile the
   benchmark's methods at the hot level with ONLY that transformation
   disabled, run to steady state, and report the change in running time
   and in compilation time — a per-pass value/cost profile of the kind a
   compiler team would use to audit a plan (and exactly the signal the
   machine-learned models mine from the collected data).

   Run with: dune exec examples/ablate_pass.exe [benchmark] *)

module Engine = Tessera_jit.Engine
module Plan = Tessera_opt.Plan
module Catalog = Tessera_opt.Catalog
module Modifier = Tessera_modifiers.Modifier
module Values = Tessera_vm.Values
module Suites = Tessera_workloads.Suites

let steady_metrics program modifier =
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.adaptive = false;
          async_compile = false;
          contention = 0.0;
        }
      program
  in
  for id = 0 to Tessera_il.Program.method_count program - 1 do
    Engine.request_compile engine ~meth_id:id ~level:Plan.Hot ~modifier ()
  done;
  let compile = Engine.total_compile_cycles engine in
  let run k n =
    let before = Engine.app_cycles engine in
    for i = k to k + n - 1 do
      ignore (Engine.invoke_entry engine [| Values.Int_v (Int64.of_int i) |])
    done;
    Int64.sub (Engine.app_cycles engine) before
  in
  ignore (run 0 2);
  (Int64.to_float (run 2 4) /. 4.0, Int64.to_float compile)

let () =
  let bench_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let bench =
    match Suites.find bench_name with
    | Some b -> b
    | None -> failwith ("unknown benchmark " ^ bench_name)
  in
  let program = Tessera_workloads.Generate.program bench.Suites.profile in
  Format.printf "per-pass ablation on %s (hot level, steady state)@.@."
    bench_name;
  let base_run, base_compile = steady_metrics program Modifier.null in
  Format.printf "%-34s %12s %12s@." "disabled transformation" "run time"
    "compile time";
  let interesting = ref [] in
  Array.iter
    (fun (e : Catalog.entry) ->
      let run, compile =
        steady_metrics program (Modifier.of_disabled [ e.Catalog.index ])
      in
      let drun = 100.0 *. ((run /. base_run) -. 1.0) in
      let dcomp = 100.0 *. ((compile /. base_compile) -. 1.0) in
      if Float.abs drun > 0.15 || Float.abs dcomp > 1.0 then
        interesting := (drun, dcomp, e.Catalog.name) :: !interesting)
    Catalog.all;
  List.iter
    (fun (drun, dcomp, name) ->
      Format.printf "%-34s %+10.2f%% %+10.2f%%@." name drun dcomp)
    (List.sort (fun (a, _, _) (b, _, _) -> compare b a) !interesting);
  Format.printf
    "@.(positive run time = the transformation was helping; negative \
     compile@.time = it was costing compile cycles — the learned models \
     look for rows@.with ~0%% run-time impact and large compile-time \
     cost)@."
