(* Per-method compilation-plan exploration (Section 5 of the paper in
   miniature): take one generated method, compile and run it under many
   plan modifiers, rank them with Eq. (2), and show what the search
   discovers — which transformations were worth disabling for THIS method.

   Run with: dune exec examples/explore_plans.exe *)

module Program = Tessera_il.Program
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Compiler = Tessera_jit.Compiler
module Prng = Tessera_util.Prng

let () =
  let profile =
    { Tessera_workloads.Profile.default with
      Tessera_workloads.Profile.name = "explore"; seed = 77L; methods = 4 }
  in
  let program = Tessera_workloads.Generate.program profile in
  (* pick the loopiest method *)
  let target, meth =
    let best = ref (0, Program.meth program 0) in
    for id = 0 to Program.method_count program - 1 do
      let m = Program.meth program id in
      if
        Tessera_il.Meth.has_backward_branch m
        && Tessera_il.Meth.tree_count m
           > Tessera_il.Meth.tree_count (snd !best)
      then best := (id, m)
    done;
    !best
  in
  Format.printf "exploring %s (%d IL nodes)@.@." meth.Tessera_il.Meth.name
    (Tessera_il.Meth.tree_count meth);

  (* cost of one invocation under a given compilation *)
  let run_cycles (comp : Compiler.compilation) =
    let cycles = ref 0 in
    let fuel = ref 50_000_000 in
    let rec invoke id args =
      (* callees stay interpreted: we are studying one method *)
      if id = target then
        Tessera_codegen.Exec.run
          { Tessera_codegen.Exec.classes = program.Program.classes;
            charge = (fun n -> cycles := !cycles + n); invoke; fuel }
          comp.Compiler.code args
      else
        Tessera_vm.Interp.run
          { Tessera_vm.Interp.classes = program.Program.classes;
            charge = (fun n -> cycles := !cycles + n); invoke; fuel }
          (Program.meth program id) args
    in
    let args =
      Array.map
        (function
          | Tessera_il.Types.Double -> Values.Float_v 1.5
          | Tessera_il.Types.Long -> Values.Int_v 37L
          | _ -> Values.Int_v 11L)
        meth.Tessera_il.Meth.params
    in
    (try ignore (invoke target args) with Values.Trap _ -> ());
    !cycles
  in

  let rng = Prng.create 4242L in
  let level = Plan.Hot in
  let trials =
    (Modifier.null, "null (original Testarossa plan)")
    :: List.init 40 (fun i ->
           ( Modifier.progressive rng ~i:(1 + (i * 50)) ~l:2000,
             Printf.sprintf "progressive #%d" (1 + (i * 50)) ))
  in
  let scored =
    List.map
      (fun (m, label) ->
        let comp = Compiler.compile ~modifier:m ~program ~level meth in
        let run = run_cycles comp in
        (* Eq. (2): V = R/I + C/T_h with one invocation measured *)
        let t_h =
          float_of_int
            (Tessera_jit.Triggers.trigger level
               (Tessera_jit.Triggers.loop_class_of meth))
        in
        let v = float_of_int run +. (float_of_int comp.Compiler.compile_cycles /. t_h) in
        (v, run, comp.Compiler.compile_cycles, m, label))
      trials
  in
  let sorted = List.sort compare scored in
  Format.printf "%-28s %10s %10s %10s  disabled@." "modifier" "V (Eq.2)" "run cyc"
    "compile";
  List.iteri
    (fun i (v, run, compile, m, label) ->
      if i < 8 then
        Format.printf "%-28s %10.0f %10d %10d  %d: %s@." label v run compile
          (Modifier.disabled_count m)
          (String.concat ","
             (List.map string_of_int (Modifier.disabled_indices m))))
    sorted;
  let _, _, base_compile, _, _ =
    List.find (fun (_, _, _, m, _) -> Modifier.is_null m) scored
  in
  let best_v, best_run, best_compile, best_m, _ = List.hd sorted in
  Format.printf "@.best plan disables %d transformations, saving %.0f%% of \
                 compile time (V=%.0f, run=%d)@."
    (Modifier.disabled_count best_m)
    (100.0 *. (1.0 -. (float_of_int best_compile /. float_of_int base_compile)))
    best_v best_run
