examples/explore_plans.mli:
