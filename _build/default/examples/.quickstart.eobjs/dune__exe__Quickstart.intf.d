examples/quickstart.mli:
