examples/pipe_integration.ml: Array Filename Format Int64 List Option Tessera_features Tessera_harness Tessera_il Tessera_jit Tessera_protocol Tessera_vm Tessera_workloads Unix
