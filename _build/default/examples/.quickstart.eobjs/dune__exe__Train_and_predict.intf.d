examples/train_and_predict.mli:
