examples/ablate_pass.mli:
