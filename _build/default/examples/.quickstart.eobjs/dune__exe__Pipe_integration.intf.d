examples/pipe_integration.mli:
