examples/ablate_pass.ml: Array Float Format Int64 List Sys Tessera_il Tessera_jit Tessera_modifiers Tessera_opt Tessera_vm Tessera_workloads
