(* Quickstart: write a method in the textual IL, JIT-compile it at two
   optimization levels, and run it on both execution engines.

   Run with: dune exec examples/quickstart.exe *)

module Parser = Tessera_lang.Parser
module Printer = Tessera_lang.Printer
module Program = Tessera_il.Program
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Compiler = Tessera_jit.Compiler
module Engine = Tessera_jit.Engine

(* sum of i*i for i in [0, n), with a deliberately silly inner
   recomputation for the optimizer to clean up *)
let source =
  {|
program "quickstart" entry 0
method "Quick.sumsq(I)I" (public static) returns int {
  arg "n" int
  temp "i" int
  temp "acc" int
  block 0 {
    (store void $1 (loadconst int 0))
    (store void $2 (loadconst int 0))
    (goto 1)
  }
  block 1 {
    (store void $2
      (add int (load int $2)
        (mul int (load int $1) (load int $1))))
    (store void $1 (add int (load int $1) (loadconst int 1)))
    (if (cmp.lt int (load int $1) (load int $0)) 1 2)
  }
  block 2 {
    (return (add int (load int $2) (mul int (load int $0) (loadconst int 0))))
  }
}
|}

let () =
  let program = Parser.parse_program source in
  let meth = Program.meth program 0 in
  Format.printf "Parsed method:@.%a@.@." Printer.pp_method meth;

  (* 1. Interpret it. *)
  let engine = Engine.create program in
  (match Engine.invoke_entry engine [| Values.Int_v 10L |] with
  | Ok v -> Format.printf "interpreted sumsq(10) = %a@." Values.pp v
  | Error t -> Format.printf "trap: %s@." (Values.trap_name t));

  (* 2. JIT-compile at cold and hot and compare code size / compile cost. *)
  List.iter
    (fun level ->
      let c = Compiler.compile ~program ~level meth in
      Format.printf
        "%-5s compile: %6d cycles, %3d -> %3d IL nodes, %3d instructions@."
        (Plan.level_name level)
        c.Compiler.compile_cycles c.Compiler.original_nodes
        c.Compiler.optimized_nodes c.Compiler.code.Tessera_codegen.Isa.code_size)
    [ Plan.Cold; Plan.Hot ];

  (* 3. Compile with a plan modifier that disables the simplifier family
        and see the difference. *)
  let modifier =
    Tessera_modifiers.Modifier.of_disabled [ 18; 19; 21; 24; 25; 0; 55 ]
  in
  let c = Compiler.compile ~modifier ~program ~level:Plan.Hot meth in
  Format.printf
    "hot with simplification disabled: %6d cycles, %3d instructions@."
    c.Compiler.compile_cycles c.Compiler.code.Tessera_codegen.Isa.code_size;

  (* 4. The features the learned models would see. *)
  let f = Tessera_features.Features.extract meth in
  Format.printf "feature vector: %a@." Tessera_features.Features.pp f
