(* End-to-end miniature of the paper's pipeline: collect experiment data
   on two benchmarks, process it (rank, normalize, remap labels), train a
   multiclass SVM per level, and use the learned models to steer the JIT
   on a benchmark the models never saw.

   Run with: dune exec examples/train_and_predict.exe *)

module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan

let () =
  let cfg = Harness.Expconfig.quick in

  (* 1. Data collection on two training benchmarks. *)
  let training =
    List.filter
      (fun (b : Suites.bench) ->
        List.mem b.Suites.tag [ "co"; "mt" ])
      Suites.training_set
  in
  Format.printf "collecting on: %s@."
    (String.concat ", "
       (List.map
          (fun (b : Suites.bench) ->
            b.Suites.profile.Tessera_workloads.Profile.name)
          training));
  let outcomes = List.map (Harness.Collection.collect_bench ~cfg) training in
  List.iter
    (fun (o : Harness.Collection.outcome) ->
      Format.printf "  %s: %d records@." o.Harness.Collection.tag
        (List.length o.Harness.Collection.merged.Tessera_collect.Archive.records))
    outcomes;

  (* 2. Train one model per level (rank -> normalize -> remap -> SVM). *)
  let ms = Harness.Training.train_on_all ~name:"mini" outcomes in
  List.iter
    (fun (lm : Harness.Modelset.level_model) ->
      Format.printf "  model[%s]: %d classes from %d instances (%.2fs)@."
        (Plan.level_name lm.Harness.Modelset.level)
        (Tessera_dataproc.Labels.size lm.Harness.Modelset.labels)
        lm.Harness.Modelset.stats.Tessera_dataproc.Trainset.training_instances
        lm.Harness.Modelset.train_seconds)
    ms.Harness.Modelset.levels;

  (* 3. Deploy on an unseen benchmark and compare with the baseline. *)
  let unseen = Option.get (Suites.find "jess") in
  let run ?model () =
    let program = Tessera_workloads.Generate.program unseen.Suites.profile in
    let callbacks =
      match model with
      | None -> Engine.no_callbacks
      | Some ms ->
          { Engine.no_callbacks with
            Engine.choose_modifier = Some (Harness.Modelset.choose_modifier ms) }
    in
    let engine = Engine.create ~callbacks program in
    for k = 0 to unseen.Suites.iteration_invocations - 1 do
      ignore (Engine.invoke_entry engine [| Values.Int_v (Int64.of_int k) |])
    done;
    (Engine.app_cycles engine, Engine.total_compile_cycles engine)
  in
  let base_app, base_comp = run () in
  let model_app, model_comp = run ~model:ms () in
  Format.printf "@.start-up on unseen benchmark %s:@."
    unseen.Suites.profile.Tessera_workloads.Profile.name;
  Format.printf "  baseline: %Ld app cycles, %Ld compile cycles@." base_app
    base_comp;
  Format.printf "  learned : %Ld app cycles, %Ld compile cycles@." model_app
    model_comp;
  Format.printf "  relative performance %.3f, relative compile time %.3f@."
    (Int64.to_float base_app /. Int64.to_float model_app)
    (Int64.to_float model_comp /. Int64.to_float base_comp)
