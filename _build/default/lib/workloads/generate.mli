(** Seeded synthetic program generation.

    [program p] is deterministic in [p] (same profile, same program) and
    always yields a valid ({!Tessera_il.Validate}), terminating program:
    loops are counted with constant bounds and dedicated counters, calls
    form a DAG (method [i] only calls [j > i]; method 0 is the entry
    driver), and integer divisions either use non-zero denominators or sit
    under an exception handler on purpose.

    The generator deliberately leaves optimization opportunities in the
    code — repeated subexpressions, dead fragments, redundant checks,
    invariant computations inside loops — because the whole study depends
    on compilation plans having method-dependent costs and benefits. *)

val program : Profile.t -> Tessera_il.Program.t

val random_method :
  ?rng:Tessera_util.Prng.t ->
  Profile.t ->
  name:string ->
  callees:(int * Tessera_il.Meth.t) list ->
  classes:Tessera_il.Classdef.t array ->
  Tessera_il.Meth.t
(** One method in isolation (used heavily by property-based tests).
    [callees] supplies methods this one may call, by id. *)
