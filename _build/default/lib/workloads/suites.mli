(** The benchmark suites of the evaluation (Section 8).

    Every benchmark is a {!Profile.t} whose biases caricature the real
    program's behaviour: [compress] is tight integer loops over arrays,
    [db] is object-heavy with synchronization, [mpegaudio] is
    floating-point dominated, [javac] is call- and branch-heavy with
    exceptions, and so on.  The five training benchmarks carry the same
    two-letter tags the paper uses in its figures (co, db, mp, mt, rt). *)

type bench = {
  profile : Profile.t;
  tag : string;  (** two-letter tag for training benchmarks, else name *)
  suite : [ `Specjvm98 | `Dacapo ];
  trainable : bool;
      (** one of the five benchmarks data collection supports *)
  iteration_invocations : int;
      (** entry-method invocations that constitute one benchmark
          iteration *)
}

val specjvm98 : bench list
(** compress, db, jack, javac, jess, mpegaudio, mtrt, raytrace. *)

val dacapo : bench list
(** avrora, batik, eclipse, fop, h2, jython, luindex, lusearch, pmd,
    sunflow, tomcat, xalan (tradebeans and tradesoap excluded, as in the
    paper). *)

val training_set : bench list
(** The five SPECjvm98 benchmarks used for data collection:
    compress (co), db (db), mpegaudio (mp), mtrt (mt), raytrace (rt). *)

val all : bench list

val find : string -> bench option

val scale_bench : bench -> float -> bench
(** Scale workload volume (for quick runs). *)
