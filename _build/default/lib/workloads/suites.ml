type bench = {
  profile : Profile.t;
  tag : string;
  suite : [ `Specjvm98 | `Dacapo ];
  trainable : bool;
  iteration_invocations : int;
}

let mk ?(trainable = false) ?(iters = 4) suite tag name seed p =
  {
    profile = { p with Profile.name; seed };
    tag;
    suite;
    trainable;
    iteration_invocations = iters;
  }

let d = Profile.default

let specjvm98 =
  [
    (* _201_compress: tight integer loops over byte arrays, few objects *)
    mk `Specjvm98 "co" "compress" 201L ~trainable:true ~iters:5
      {
        d with
        Profile.methods = 18;
        loop_bias = 0.55;
        nest_bias = 0.35;
        array_bias = 0.5;
        fp_bias = 0.02;
        object_bias = 0.08;
        sync_bias = 0.02;
        exception_bias = 0.04;
        call_bias = 0.25;
        decimal_bias = 0.0;
        longdouble_bias = 0.0;
        mixed_bias = 0.02;
        trip_scale = 1.6;
        hot_methods = 6;
        driver_trips = 29;
      };
    (* _209_db: in-memory database, object- and sync-heavy, string ops *)
    mk `Specjvm98 "db" "db" 209L ~trainable:true ~iters:4
      {
        d with
        Profile.methods = 23;
        loop_bias = 0.3;
        array_bias = 0.35;
        fp_bias = 0.03;
        object_bias = 0.5;
        sync_bias = 0.25;
        exception_bias = 0.1;
        call_bias = 0.45;
        mixed_bias = 0.12;
        hot_methods = 9;
        driver_trips = 21;
      };
    (* _228_jack: parser generator, exception-heavy, branchy *)
    mk `Specjvm98 "ja" "jack" 228L ~iters:4
      {
        d with
        Profile.methods = 26;
        loop_bias = 0.28;
        array_bias = 0.25;
        object_bias = 0.35;
        exception_bias = 0.35;
        call_bias = 0.5;
        mixed_bias = 0.1;
        hot_methods = 10;
        driver_trips = 20;
      };
    (* _213_javac: compiler, many small methods, calls and branches *)
    mk `Specjvm98 "jc" "javac" 213L ~iters:4
      {
        d with
        Profile.methods = 36;
        fragments_mean = 3.2;
        loop_bias = 0.22;
        array_bias = 0.3;
        object_bias = 0.42;
        exception_bias = 0.18;
        call_bias = 0.6;
        mixed_bias = 0.08;
        hot_methods = 14;
        driver_trips = 17;
      };
    (* _202_jess: expert system, object allocation churn *)
    mk `Specjvm98 "je" "jess" 202L ~iters:4
      {
        d with
        Profile.methods = 29;
        loop_bias = 0.3;
        object_bias = 0.55;
        array_bias = 0.25;
        exception_bias = 0.08;
        call_bias = 0.5;
        sync_bias = 0.08;
        hot_methods = 11;
        driver_trips = 21;
      };
    (* _222_mpegaudio: floating-point kernels *)
    mk `Specjvm98 "mp" "mpegaudio" 222L ~trainable:true ~iters:5
      {
        d with
        Profile.methods = 20;
        loop_bias = 0.5;
        nest_bias = 0.3;
        fp_bias = 0.6;
        array_bias = 0.45;
        object_bias = 0.1;
        exception_bias = 0.03;
        call_bias = 0.3;
        longdouble_bias = 0.08;
        trip_scale = 1.4;
        hot_methods = 7;
        driver_trips = 28;
      };
    (* _227_mtrt: multithreaded ray tracer: fp + objects + sync *)
    mk `Specjvm98 "mt" "mtrt" 227L ~trainable:true ~iters:4
      {
        d with
        Profile.methods = 22;
        loop_bias = 0.4;
        fp_bias = 0.5;
        object_bias = 0.4;
        array_bias = 0.3;
        sync_bias = 0.2;
        call_bias = 0.45;
        hot_methods = 9;
        driver_trips = 22;
      };
    (* _205_raytrace: single-threaded variant of mtrt *)
    mk `Specjvm98 "rt" "raytrace" 205L ~trainable:true ~iters:4
      {
        d with
        Profile.methods = 21;
        loop_bias = 0.42;
        fp_bias = 0.52;
        object_bias = 0.38;
        array_bias = 0.3;
        sync_bias = 0.04;
        call_bias = 0.45;
        hot_methods = 9;
        driver_trips = 22;
      };
  ]

let dacapo =
  [
    mk `Dacapo "avrora" "avrora" 901L ~iters:3
      {
        d with
        Profile.methods = 31;
        loop_bias = 0.38;
        array_bias = 0.35;
        object_bias = 0.3;
        sync_bias = 0.3;
        exception_bias = 0.08;
        call_bias = 0.45;
        hot_methods = 12;
        driver_trips = 34;
      };
    mk `Dacapo "batik" "batik" 902L ~iters:3
      {
        d with
        Profile.methods = 34;
        fp_bias = 0.45;
        loop_bias = 0.3;
        array_bias = 0.35;
        object_bias = 0.4;
        call_bias = 0.5;
        hot_methods = 12;
        driver_trips = 29;
      };
    mk `Dacapo "eclipse" "eclipse" 903L ~iters:3
      {
        d with
        Profile.methods = 46;
        fragments_mean = 3.0;
        loop_bias = 0.2;
        object_bias = 0.45;
        exception_bias = 0.2;
        call_bias = 0.65;
        sync_bias = 0.15;
        mixed_bias = 0.12;
        hot_methods = 16;
        driver_trips = 24;
      };
    mk `Dacapo "fop" "fop" 904L ~iters:3
      {
        d with
        Profile.methods = 32;
        loop_bias = 0.25;
        object_bias = 0.45;
        array_bias = 0.3;
        exception_bias = 0.12;
        call_bias = 0.55;
        hot_methods = 12;
        driver_trips = 29;
      };
    mk `Dacapo "h2" "h2" 905L ~iters:3
      {
        d with
        Profile.methods = 38;
        loop_bias = 0.3;
        object_bias = 0.5;
        sync_bias = 0.35;
        exception_bias = 0.18;
        call_bias = 0.55;
        decimal_bias = 0.2;
        mixed_bias = 0.15;
        hot_methods = 14;
        driver_trips = 29;
      };
    mk `Dacapo "jython" "jython" 906L ~iters:3
      {
        d with
        Profile.methods = 42;
        fragments_mean = 3.4;
        loop_bias = 0.25;
        object_bias = 0.5;
        exception_bias = 0.22;
        call_bias = 0.65;
        mixed_bias = 0.14;
        hot_methods = 15;
        driver_trips = 24;
      };
    mk `Dacapo "luindex" "luindex" 907L ~iters:4
      {
        d with
        Profile.methods = 25;
        loop_bias = 0.45;
        nest_bias = 0.3;
        array_bias = 0.5;
        object_bias = 0.25;
        call_bias = 0.4;
        mixed_bias = 0.1;
        trip_scale = 1.4;
        hot_methods = 9;
        driver_trips = 37;
      };
    mk `Dacapo "lusearch" "lusearch" 908L ~iters:4
      {
        d with
        Profile.methods = 26;
        loop_bias = 0.42;
        array_bias = 0.45;
        object_bias = 0.28;
        sync_bias = 0.25;
        call_bias = 0.42;
        trip_scale = 1.3;
        hot_methods = 10;
        driver_trips = 36;
      };
    mk `Dacapo "pmd" "pmd" 909L ~iters:3
      {
        d with
        Profile.methods = 35;
        loop_bias = 0.24;
        object_bias = 0.45;
        exception_bias = 0.15;
        call_bias = 0.6;
        hot_methods = 13;
        driver_trips = 29;
      };
    mk `Dacapo "sunflow" "sunflow" 910L ~iters:4
      {
        d with
        Profile.methods = 27;
        loop_bias = 0.45;
        fp_bias = 0.6;
        array_bias = 0.35;
        object_bias = 0.3;
        sync_bias = 0.15;
        call_bias = 0.4;
        trip_scale = 1.3;
        hot_methods = 10;
        driver_trips = 37;
      };
    mk `Dacapo "tomcat" "tomcat" 911L ~iters:3
      {
        d with
        Profile.methods = 39;
        loop_bias = 0.25;
        object_bias = 0.45;
        sync_bias = 0.3;
        exception_bias = 0.2;
        call_bias = 0.6;
        mixed_bias = 0.12;
        hot_methods = 14;
        driver_trips = 29;
      };
    mk `Dacapo "xalan" "xalan" 912L ~iters:3
      {
        d with
        Profile.methods = 36;
        loop_bias = 0.32;
        array_bias = 0.4;
        object_bias = 0.4;
        sync_bias = 0.25;
        call_bias = 0.55;
        hot_methods = 13;
        driver_trips = 34;
      };
  ]

let training_set = List.filter (fun b -> b.trainable) specjvm98

let all = specjvm98 @ dacapo

let find name =
  List.find_opt
    (fun b -> String.equal b.profile.Profile.name name || String.equal b.tag name)
    all

let scale_bench b f =
  {
    b with
    profile = Profile.scale b.profile f;
    iteration_invocations = max 1 (int_of_float (float_of_int b.iteration_invocations *. f));
  }
