lib/workloads/generate.mli: Profile Tessera_il Tessera_util
