lib/workloads/profile.ml:
