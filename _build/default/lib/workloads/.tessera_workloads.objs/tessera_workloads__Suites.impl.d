lib/workloads/suites.ml: List Profile String
