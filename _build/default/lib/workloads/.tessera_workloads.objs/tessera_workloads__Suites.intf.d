lib/workloads/suites.mli: Profile
