lib/workloads/profile.mli:
