lib/workloads/generate.ml: Array Int64 List Option Printf Profile Tessera_il Tessera_util
