module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Classdef = Tessera_il.Classdef
module Program = Tessera_il.Program
module Prng = Tessera_util.Prng

(* ------------------------------------------------------------------ *)
(* Method builder                                                       *)
(* ------------------------------------------------------------------ *)

type bblock = {
  id : int;
  mutable stmts_rev : Node.t list;
  mutable term : Block.terminator option;
  mutable handler : int option;
}

type builder = {
  rng : Prng.t;
  mutable symbols_rev : Symbol.t list;
  mutable nsyms : int;
  mutable blocks_rev : bblock list;
  mutable nblocks : int;
  mutable cur : bblock;
}

let new_block_raw b ?handler () =
  let blk = { id = b.nblocks; stmts_rev = []; term = None; handler } in
  b.nblocks <- b.nblocks + 1;
  b.blocks_rev <- blk :: b.blocks_rev;
  blk

let builder seed =
  let rng = Prng.create seed in
  let b =
    {
      rng;
      symbols_rev = [];
      nsyms = 0;
      blocks_rev = [];
      nblocks = 0;
      cur = { id = 0; stmts_rev = []; term = None; handler = None };
    }
  in
  b.cur <- new_block_raw b ();
  b

let new_sym b name ty kind =
  let id = b.nsyms in
  b.nsyms <- id + 1;
  b.symbols_rev <- { Symbol.name; ty; kind } :: b.symbols_rev;
  id

let emit b n = b.cur.stmts_rev <- n :: b.cur.stmts_rev

let terminate b t = if b.cur.term = None then b.cur.term <- Some t

let switch_to b blk = b.cur <- blk

let finish b ~name ~attrs ~params ~ret =
  let symbols = Array.of_list (List.rev b.symbols_rev) in
  let blocks =
    List.rev b.blocks_rev
    |> List.map (fun blk ->
           let term =
             match blk.term with Some t -> t | None -> Block.Return None
           in
           Block.make ~handler:blk.handler blk.id (List.rev blk.stmts_rev) term)
    |> Array.of_list
  in
  Meth.make ~attrs ~name ~params ~ret ~symbols blocks

(* ------------------------------------------------------------------ *)
(* Generation context                                                   *)
(* ------------------------------------------------------------------ *)

type genctx = {
  b : builder;
  prof : Profile.t;
  classes : Classdef.t array;
  callees : (int * Meth.t) list;
  res : int;  (* Int accumulator folded into the return value *)
  mutable ints : int list;
  mutable longs : int list;
  mutable doubles : int list;
  mutable arrays : (int * int) list;  (* symbol, constant length *)
  mutable objects : (int * int) list;  (* symbol, class id *)
  mutable packeds : int list;
}

let iload sym = Node.load_sym Types.Int sym
let iconst v = Node.iconst Types.Int (Int64.of_int v)

let pick_or rng lst default =
  match lst with [] -> default () | l -> List.nth l (Prng.int rng (List.length l))

(* ---- expressions ---- *)

let rec int_expr g depth =
  let rng = g.b.rng in
  if depth <= 0 || Prng.bernoulli rng 0.35 then
    if g.ints <> [] && Prng.bernoulli rng 0.7 then
      iload (pick_or rng g.ints (fun () -> assert false))
    else iconst (Prng.int_in rng (-64) 64)
  else
    let sub () = int_expr g (depth - 1) in
    match Prng.int rng 12 with
    | 0 -> Node.binop Opcode.Add Types.Int (sub ()) (sub ())
    | 1 -> Node.binop Opcode.Sub Types.Int (sub ()) (sub ())
    | 2 -> Node.binop Opcode.Mul Types.Int (sub ()) (sub ())
    | 3 -> Node.binop Opcode.And Types.Int (sub ()) (iconst (Prng.int_in rng 1 255))
    | 4 -> Node.binop Opcode.Or Types.Int (sub ()) (sub ())
    | 5 -> Node.binop Opcode.Xor Types.Int (sub ()) (sub ())
    | 6 ->
        Node.binop (Opcode.Shift Opcode.Shl) Types.Int (sub ())
          (iconst (Prng.int_in rng 0 5))
    | 7 ->
        Node.binop (Opcode.Shift Opcode.Shr) Types.Int (sub ())
          (iconst (Prng.int_in rng 0 5))
    | 8 ->
        (* division made trap-free by forcing an odd denominator *)
        Node.binop Opcode.Div Types.Int (sub ())
          (Node.binop Opcode.Or Types.Int (sub ()) (iconst 1))
    | 9 -> Node.mk Opcode.Neg Types.Int [| sub () |]
    | 10 ->
        let rel =
          Prng.choose rng
            [| Opcode.Eq; Opcode.Ne; Opcode.Lt; Opcode.Le; Opcode.Gt; Opcode.Ge |]
        in
        Node.binop (Opcode.Compare rel) Types.Int (sub ()) (sub ())
    | _ ->
        if g.longs <> [] && Prng.bernoulli rng 0.5 then
          Node.mk Opcode.(Cast C_int) Types.Int
            [| Node.load_sym Types.Long (List.hd g.longs) |]
        else Node.binop Opcode.Add Types.Int (sub ()) (iconst 1)

let rec long_expr g depth =
  let rng = g.b.rng in
  if depth <= 0 || Prng.bernoulli rng 0.4 then
    if g.longs <> [] && Prng.bernoulli rng 0.6 then
      Node.load_sym Types.Long (pick_or rng g.longs (fun () -> assert false))
    else Node.iconst Types.Long (Int64.of_int (Prng.int_in rng (-1000) 1000))
  else
    let sub () = long_expr g (depth - 1) in
    match Prng.int rng 5 with
    | 0 -> Node.binop Opcode.Add Types.Long (sub ()) (sub ())
    | 1 -> Node.binop Opcode.Mul Types.Long (sub ()) (sub ())
    | 2 -> Node.binop Opcode.Xor Types.Long (sub ()) (sub ())
    | 3 -> Node.mk Opcode.(Cast C_long) Types.Long [| int_expr g (depth - 1) |]
    | _ ->
        Node.binop (Opcode.Shift Opcode.Ushr) Types.Long (sub ())
          (Node.iconst Types.Long (Int64.of_int (Prng.int_in rng 0 7)))

let rec double_expr g depth =
  let rng = g.b.rng in
  if depth <= 0 || Prng.bernoulli rng 0.4 then
    if g.doubles <> [] && Prng.bernoulli rng 0.6 then
      Node.load_sym Types.Double (pick_or rng g.doubles (fun () -> assert false))
    else Node.fconst Types.Double (Prng.float rng 8.0 -. 4.0)
  else
    let sub () = double_expr g (depth - 1) in
    match Prng.int rng 6 with
    | 0 -> Node.binop Opcode.Add Types.Double (sub ()) (sub ())
    | 1 -> Node.binop Opcode.Sub Types.Double (sub ()) (sub ())
    | 2 -> Node.binop Opcode.Mul Types.Double (sub ()) (sub ())
    | 3 -> Node.binop Opcode.Div Types.Double (sub ()) (sub ())
    | 4 -> Node.mk Opcode.(Cast C_double) Types.Double [| int_expr g (depth - 1) |]
    | _ -> Node.mk Opcode.Neg Types.Double [| sub () |]

(* fold a value into the running result (or discard it as dead code) *)
let fold_int g ?(dead = false) expr =
  if dead then begin
    let junk = new_sym g.b "junk" Types.Int Symbol.Temp in
    emit g.b (Node.store_sym junk expr)
  end
  else
    emit g.b
      (Node.store_sym g.res
         (Node.binop Opcode.Xor Types.Int (iload g.res) expr))

let to_int g (e : Node.t) =
  match e.Node.ty with
  | Types.Int -> e
  | Types.Double | Types.Float_ | Types.Long_double ->
      Node.mk Opcode.(Cast C_int) Types.Int [| e |]
  | _ -> Node.mk Opcode.(Cast C_int) Types.Int [| e |]
  [@@warning "-27"]

(* ---- fragments ---- *)

let def_int g name =
  let s = new_sym g.b name Types.Int Symbol.Temp in
  emit g.b (Node.store_sym s (int_expr g 2));
  g.ints <- s :: g.ints;
  s

let arith_fragment g =
  let rng = g.b.rng in
  let k = Prng.int_in rng 2 5 in
  for _ = 1 to k do
    ignore (def_int g "t")
  done;
  (* repeat a common subexpression across two statements: CSE food *)
  if Prng.bernoulli rng 0.5 then begin
    let shared = int_expr g 2 in
    let t1 = new_sym g.b "s1" Types.Int Symbol.Temp in
    let t2 = new_sym g.b "s2" Types.Int Symbol.Temp in
    emit g.b
      (Node.store_sym t1 (Node.binop Opcode.Add Types.Int shared (int_expr g 1)));
    emit g.b
      (Node.store_sym t2 (Node.binop Opcode.Xor Types.Int shared (iload t1)));
    g.ints <- t1 :: t2 :: g.ints
  end;
  fold_int g ~dead:(Prng.bernoulli rng g.prof.Profile.dead_bias) (int_expr g 3)

let fp_fragment g =
  let rng = g.b.rng in
  let d = new_sym g.b "d" Types.Double Symbol.Temp in
  emit g.b (Node.store_sym d (double_expr g 3));
  g.doubles <- d :: g.doubles;
  let d2 = new_sym g.b "d2" Types.Double Symbol.Temp in
  emit g.b (Node.store_sym d2 (double_expr g 3));
  g.doubles <- d2 :: g.doubles;
  fold_int g
    ~dead:(Prng.bernoulli rng g.prof.Profile.dead_bias)
    (to_int g (double_expr g 2))

let long_fragment g =
  let l = new_sym g.b "l" Types.Long Symbol.Temp in
  emit g.b (Node.store_sym l (long_expr g 3));
  g.longs <- l :: g.longs;
  fold_int g (to_int g (long_expr g 2))

(* counted loop; body built by [body].  Single-block self-loop shape when
   [self] is true, multi-block otherwise. *)
let loop_fragment g ?(self = true) ~trips ~body () =
  let b = g.b in
  let i = new_sym b "i" Types.Int Symbol.Temp in
  emit b (Node.store_sym i (iconst 0));
  g.ints <- i :: g.ints;
  if self then begin
    let l = new_block_raw b () in
    terminate b (Block.Goto l.id);
    switch_to b l;
    body i;
    emit b (Node.mk ~sym:i ~const:1L Opcode.Inc Types.Void [||]);
    let exit = new_block_raw b () in
    terminate b
      (Block.If
         {
           cond = Node.binop (Opcode.Compare Opcode.Lt) Types.Int (iload i) (iconst trips);
           if_true = l.id;
           if_false = exit.id;
         });
    switch_to b exit
  end
  else begin
    let header = new_block_raw b () in
    terminate b (Block.Goto header.id);
    let bodyb = new_block_raw b () in
    switch_to b bodyb;
    body i;
    let latch = new_block_raw b () in
    terminate b (Block.Goto latch.id);
    switch_to b latch;
    emit b (Node.mk ~sym:i ~const:1L Opcode.Inc Types.Void [||]);
    terminate b (Block.Goto header.id);
    let exit = new_block_raw b () in
    switch_to b header;
    terminate b
      (Block.If
         {
           cond = Node.binop (Opcode.Compare Opcode.Lt) Types.Int (iload i) (iconst trips);
           if_true = bodyb.id;
           if_false = exit.id;
         });
    switch_to b exit
  end;
  (* remove the counter from the expression pool: the loop owns it *)
  g.ints <- List.filter (fun s -> s <> i) g.ints

let simple_loop_fragment g =
  let rng = g.b.rng in
  let trips =
    max 2
      (int_of_float (float_of_int (Prng.int_in rng 4 48) *. g.prof.Profile.trip_scale))
  in
  let nested = Prng.bernoulli rng g.prof.Profile.nest_bias in
  let self = Prng.bernoulli rng 0.6 in
  loop_fragment g ~self ~trips ()
    ~body:(fun i ->
      (* keep an invariant computation inside the loop: LICM food *)
      let inv = new_sym g.b "inv" Types.Int Symbol.Temp in
      let invariant =
        Node.binop Opcode.Xor Types.Int
          (Node.binop Opcode.Mul Types.Int (int_expr g 2) (iconst 7))
          (Node.binop Opcode.Mul Types.Int
             (Node.binop Opcode.Add Types.Int (int_expr g 2) (iconst 13))
             (Node.binop Opcode.Or Types.Int (int_expr g 1) (iconst 1)))
      in
      emit g.b (Node.store_sym inv invariant);
      fold_int g
        (Node.binop Opcode.Add Types.Int (iload i)
           (Node.binop Opcode.Add Types.Int (iload inv) (int_expr g 2)));
      if nested then
        loop_fragment g ~self:true
          ~trips:(max 2 (Prng.int_in rng 2 8))
          ~body:(fun j ->
            fold_int g (Node.binop Opcode.Xor Types.Int (iload j) (iload i)))
          ())

let array_fragment g =
  let rng = g.b.rng in
  let len = Prng.int_in rng 8 40 in
  let arr = new_sym g.b "arr" Types.Address Symbol.Temp in
  emit g.b
    (Node.store_sym arr
       (Node.mk ~sym:(Types.index Types.Int) Opcode.Newarray Types.Address
          [| iconst len |]));
  g.arrays <- (arr, len) :: g.arrays;
  let aload i =
    Node.mk Opcode.Load Types.Int [| Node.load_sym Types.Address arr; iload i |]
  in
  (* fill *)
  loop_fragment g ~self:true ~trips:len ()
    ~body:(fun i ->
      emit g.b
        (Node.mk Opcode.(Arrayop Bounds_check) Types.Void
           [| Node.load_sym Types.Address arr; iload i |]);
      emit g.b
        (Node.mk Opcode.Store Types.Void
           [|
             Node.load_sym Types.Address arr;
             iload i;
             Node.binop Opcode.Add Types.Int (iload i) (int_expr g 1);
           |]));
  (* sum, with a redundant bounds check: BCE food *)
  loop_fragment g ~self:true ~trips:len ()
    ~body:(fun i ->
      emit g.b
        (Node.mk Opcode.(Arrayop Bounds_check) Types.Void
           [| Node.load_sym Types.Address arr; iload i |]);
      fold_int g (aload i));
  if Prng.bernoulli rng 0.4 then begin
    (* canonical copy loop: arraycopy-idiom food *)
    let dst = new_sym g.b "dst" Types.Address Symbol.Temp in
    emit g.b
      (Node.store_sym dst
         (Node.mk ~sym:(Types.index Types.Int) Opcode.Newarray Types.Address
            [| iconst len |]));
    g.arrays <- (dst, len) :: g.arrays;
    loop_fragment g ~self:true ~trips:len ()
      ~body:(fun i ->
        emit g.b
          (Node.mk Opcode.Store Types.Void
             [|
               Node.load_sym Types.Address dst;
               iload i;
               Node.mk Opcode.Load Types.Int
                 [| Node.load_sym Types.Address arr; iload i |];
             |]));
    fold_int g
      (Node.mk Opcode.(Arrayop Array_cmp) Types.Int
         [| Node.load_sym Types.Address arr; Node.load_sym Types.Address dst |])
  end;
  fold_int g
    (Node.mk Opcode.(Arrayop Array_length) Types.Int
       [| Node.load_sym Types.Address arr |])

let object_fragment g =
  let rng = g.b.rng in
  if Array.length g.classes = 0 then arith_fragment g
  else begin
    let cid = Prng.int rng (Array.length g.classes) in
    let cls = g.classes.(cid) in
    let o = new_sym g.b "o" Types.Object_ Symbol.Temp in
    emit g.b (Node.store_sym o (Node.mk ~sym:cid Opcode.New Types.Object_ [||]));
    g.objects <- (o, cid) :: g.objects;
    let oload () = Node.load_sym Types.Object_ o in
    Array.iteri
      (fun fi fty ->
        let v =
          match fty with
          | t when Types.is_floating t ->
              Node.mk Opcode.(Cast C_double) Types.Double [| int_expr g 1 |]
          | Types.Long -> long_expr g 1
          | _ -> int_expr g 2
        in
        emit g.b (Node.mk ~sym:fi Opcode.Store Types.Void [| oload (); v |]))
      cls.Classdef.fields;
    let monitored = Prng.bernoulli rng g.prof.Profile.sync_bias in
    if monitored then
      emit g.b
        (Node.mk Opcode.(Synchronization Monitor_enter) Types.Void [| oload () |]);
    (* repeated field loads: redundant-load-elimination food *)
    if Array.length cls.Classdef.fields > 0 then begin
      let fi = Prng.int rng (Array.length cls.Classdef.fields) in
      let fty = cls.Classdef.fields.(fi) in
      let fload () = Node.mk ~sym:fi Opcode.Load fty [| oload () |] in
      fold_int g (to_int g (Node.binop Opcode.Add fty (fload ()) (fload ())))
    end;
    fold_int g
      (Node.mk ~sym:cid Opcode.Instanceof Types.Int [| oload () |]);
    if monitored then
      emit g.b
        (Node.mk Opcode.(Synchronization Monitor_exit) Types.Void [| oload () |])
  end

let call_fragment g =
  let rng = g.b.rng in
  match g.callees with
  | [] -> arith_fragment g
  | cs ->
      let id, (callee : Meth.t) = List.nth cs (Prng.int rng (List.length cs)) in
      let args =
        Array.map
          (fun pty ->
            match pty with
            | Types.Double -> double_expr g 2
            | Types.Long -> long_expr g 2
            | _ -> int_expr g 2)
          callee.Meth.params
      in
      let call = Node.call callee.Meth.ret ~callee:id args in
      if Types.equal callee.Meth.ret Types.Void then emit g.b call
      else fold_int g ~dead:(Prng.bernoulli rng g.prof.Profile.dead_bias) (to_int g call)

let exception_fragment g =
  let b = g.b in
  let rng = b.rng in
  let handler = new_block_raw b () in
  let protected_ = new_block_raw b ~handler:handler.id () in
  terminate b (Block.Goto protected_.id);
  let cont = new_block_raw b () in
  (* handler: recover and continue *)
  switch_to b handler;
  emit b (Node.store_sym g.res (Node.binop Opcode.Add Types.Int (iload g.res) (iconst 7)));
  terminate b (Block.Goto cont.id);
  (* protected block: an integer division that can genuinely trap *)
  switch_to b protected_;
  let risky =
    Node.binop Opcode.Div Types.Int (int_expr g 2)
      (Node.binop Opcode.And Types.Int (int_expr g 2) (iconst 3))
  in
  fold_int g risky;
  if Prng.bernoulli rng 0.3 then
    terminate b (Block.Throw (Node.mk Opcode.Throw_op Types.Void [||]))
  else terminate b (Block.Goto cont.id);
  switch_to b cont

let decimal_fragment g =
  let p = new_sym g.b "p" Types.Packed_decimal Symbol.Temp in
  emit g.b
    (Node.store_sym p
       (Node.mk Opcode.(Cast C_packed) Types.Packed_decimal [| int_expr g 2 |]));
  g.packeds <- p :: g.packeds;
  let pe = Node.load_sym Types.Packed_decimal p in
  let sum =
    Node.binop Opcode.Add Types.Packed_decimal pe
      (Node.mk Opcode.(Cast C_packed) Types.Packed_decimal
         [| Node.mk Opcode.(Cast C_zoned) Types.Zoned_decimal [| pe |] |])
  in
  fold_int g (Node.mk Opcode.(Cast C_int) Types.Int [| sum |])

let longdouble_fragment g =
  let e =
    Node.binop Opcode.Mul Types.Long_double
      (Node.mk Opcode.(Cast C_longdouble) Types.Long_double [| double_expr g 2 |])
      (Node.mk Opcode.(Cast C_longdouble) Types.Long_double [| double_expr g 1 |])
  in
  fold_int g
    (Node.mk Opcode.(Cast C_int) Types.Int
       [| Node.mk Opcode.(Cast C_double) Types.Double [| e |] |])

let mixed_fragment g ~bigdecimal =
  let ty = if bigdecimal then Types.Packed_decimal else Types.Mixed in
  let e =
    Node.mk Opcode.Mixedop ty [| int_expr g 2; int_expr g 1; long_expr g 1 |]
  in
  fold_int g (Node.mk Opcode.(Cast C_int) Types.Int [| e |])

let branchy_fragment g =
  (* an if/else diamond: branch folding / layout food *)
  let b = g.b in
  let then_b = new_block_raw b () in
  let else_b = new_block_raw b () in
  terminate b
    (Block.If
       {
         cond =
           Node.binop (Opcode.Compare Opcode.Gt) Types.Int (int_expr g 2) (iconst 0);
         if_true = then_b.id;
         if_false = else_b.id;
       });
  let cont = new_block_raw b () in
  switch_to b then_b;
  fold_int g (int_expr g 2);
  terminate b (Block.Goto cont.id);
  switch_to b else_b;
  fold_int g (Node.binop Opcode.Sub Types.Int (iconst 0) (int_expr g 2));
  terminate b (Block.Goto cont.id);
  switch_to b cont

(* ------------------------------------------------------------------ *)
(* Whole methods                                                        *)
(* ------------------------------------------------------------------ *)

let gen_attrs rng ~uses_bigdecimal =
  {
    Meth.constructor = Prng.bernoulli rng 0.08;
    final = Prng.bernoulli rng 0.2;
    protected_ = Prng.bernoulli rng 0.1;
    public = Prng.bernoulli rng 0.7;
    static = Prng.bernoulli rng 0.5;
    synchronized = Prng.bernoulli rng 0.06;
    strictfp = Prng.bernoulli rng 0.05;
    virtual_overridden = Prng.bernoulli rng 0.04;
    uses_unsafe = Prng.bernoulli rng 0.03;
    uses_bigdecimal;
  }

let method_body (prof : Profile.t) b ~callees ~classes ~params ~ret =
  let g =
    {
      b;
      prof;
      classes;
      callees;
      res = new_sym b "res" Types.Int Symbol.Temp;
      ints = [];
      longs = [];
      doubles = [];
      arrays = [];
      objects = [];
      packeds = [];
    }
  in
  emit b (Node.store_sym g.res (iconst 1));
  (* seed the pools from the arguments *)
  List.iteri
    (fun i pty ->
      match pty with
      | Types.Int -> g.ints <- i :: g.ints
      | Types.Long -> g.longs <- i :: g.longs
      | Types.Double -> g.doubles <- i :: g.doubles
      | _ -> ())
    (Array.to_list params);
  let rng = b.rng in
  let used_bigdecimal = ref false in
  let nfrag =
    max 1
      (int_of_float
         (prof.Profile.fragments_mean *. (0.5 +. Prng.float rng 1.0)))
  in
  for _ = 1 to nfrag do
    let p = Prng.float rng 1.0 in
    let pr = prof in
    if p < pr.Profile.loop_bias then simple_loop_fragment g
    else if p < pr.Profile.loop_bias +. pr.Profile.array_bias *. 0.5 then
      array_fragment g
    else if p < pr.Profile.loop_bias +. pr.Profile.array_bias then
      branchy_fragment g
    else if
      p < pr.Profile.loop_bias +. pr.Profile.array_bias +. pr.Profile.object_bias
    then object_fragment g
    else if Prng.bernoulli rng pr.Profile.call_bias then call_fragment g
    else if Prng.bernoulli rng pr.Profile.exception_bias then exception_fragment g
    else if Prng.bernoulli rng pr.Profile.fp_bias then fp_fragment g
    else if Prng.bernoulli rng pr.Profile.decimal_bias then decimal_fragment g
    else if Prng.bernoulli rng pr.Profile.longdouble_bias then longdouble_fragment g
    else if Prng.bernoulli rng pr.Profile.mixed_bias then begin
      let bd = Prng.bernoulli rng 0.5 in
      if bd then used_bigdecimal := true;
      mixed_fragment g ~bigdecimal:bd
    end
    else if Prng.bernoulli rng 0.3 then long_fragment g
    else arith_fragment g
  done;
  let ret_expr =
    match ret with
    | Types.Void -> None
    | Types.Int -> Some (iload g.res)
    | Types.Long -> Some (Node.mk Opcode.(Cast C_long) Types.Long [| iload g.res |])
    | Types.Double ->
        Some (Node.mk Opcode.(Cast C_double) Types.Double [| iload g.res |])
    | t -> Some (Node.mk Opcode.(Cast C_int) Types.Int [| iload g.res |] |> fun e ->
                 ignore t; e)
  in
  terminate b (Block.Return ret_expr);
  !used_bigdecimal

let param_types rng =
  Array.init (Prng.int rng 4) (fun _ ->
      Prng.choose rng [| Types.Int; Types.Int; Types.Long; Types.Double |])

let ret_type rng =
  Prng.choose rng [| Types.Int; Types.Int; Types.Int; Types.Long; Types.Double; Types.Void |]

let random_method ?rng (prof : Profile.t) ~name ~callees ~classes =
  let seed = match rng with Some r -> Prng.next_int64 r | None -> prof.Profile.seed in
  let b = builder seed in
  let rng = b.rng in
  let params = param_types rng in
  let ret = ret_type rng in
  Array.iteri
    (fun i pty -> ignore (new_sym b (Printf.sprintf "a%d" i) pty Symbol.Arg) |> fun () -> ignore i)
    params;
  let used_bd = method_body prof b ~callees ~classes ~params ~ret in
  let attrs = gen_attrs rng ~uses_bigdecimal:used_bd in
  finish b ~name ~attrs ~params ~ret

(* ---- entry driver ---- *)

let entry_driver (prof : Profile.t) ~methods ~classes seed =
  let b = builder seed in
  let rng = b.rng in
  let params = [| Types.Int |] in
  ignore (new_sym b "iter" Types.Int Symbol.Arg);
  let g =
    {
      b;
      prof;
      classes;
      callees = methods;
      res = new_sym b "res" Types.Int Symbol.Temp;
      ints = [ 0 ];
      longs = [];
      doubles = [];
      arrays = [];
      objects = [];
      packeds = [];
    }
  in
  emit b (Node.store_sym g.res (iload 0));
  let n = List.length methods in
  let hot =
    List.filteri (fun i _ -> i < min prof.Profile.hot_methods n) methods
  in
  let cold = List.filteri (fun i _ -> i >= min prof.Profile.hot_methods n) methods in
  (* hot methods run inside the driver loop, with arguments that vary by
     loop counter so callees see different inputs *)
  loop_fragment g ~self:false ~trips:prof.Profile.driver_trips ()
    ~body:(fun i ->
      List.iter
        (fun (id, (callee : Meth.t)) ->
          let args =
            Array.mapi
              (fun k pty ->
                match pty with
                | Types.Double ->
                    Node.mk Opcode.(Cast C_double) Types.Double
                      [| Node.binop Opcode.Add Types.Int (iload i) (iconst k) |]
                | Types.Long ->
                    Node.mk Opcode.(Cast C_long) Types.Long
                      [| Node.binop Opcode.Xor Types.Int (iload i) (iconst (17 * (k + 1))) |]
                | _ -> Node.binop Opcode.Add Types.Int (iload i) (iconst (3 * k)))
              callee.Meth.params
          in
          let call = Node.call callee.Meth.ret ~callee:id args in
          if Types.equal callee.Meth.ret Types.Void then emit b call
          else fold_int g (to_int g call))
        hot);
  (* cold methods run once per driver invocation *)
  List.iter
    (fun (id, (callee : Meth.t)) ->
      let args =
        Array.mapi
          (fun k pty ->
            match pty with
            | Types.Double -> Node.fconst Types.Double (float_of_int k +. 0.5)
            | Types.Long -> Node.iconst Types.Long (Int64.of_int (k + 11))
            | _ -> iconst (k + Prng.int rng 5))
          callee.Meth.params
      in
      let call = Node.call callee.Meth.ret ~callee:id args in
      if Types.equal callee.Meth.ret Types.Void then emit b call
      else fold_int g (to_int g call))
    cold;
  terminate b (Block.Return (Some (iload g.res)));
  finish b
    ~name:(prof.Profile.name ^ ".Main.run(I)I")
    ~attrs:Meth.default_attrs ~params ~ret:Types.Int

(* ---- classes ---- *)

let gen_classes (prof : Profile.t) rng =
  Array.init (max 1 prof.Profile.classes) (fun i ->
      let nf = Prng.int_in rng 2 6 in
      let fields =
        Array.init nf (fun _ ->
            Prng.choose rng [| Types.Int; Types.Int; Types.Long; Types.Double |])
      in
      let parent = if i > 0 && Prng.bernoulli rng 0.3 then Prng.int rng i else -1 in
      Classdef.make ~parent (Printf.sprintf "%s.C%d" prof.Profile.name i) fields)

let program (prof : Profile.t) =
  let rng = Prng.create prof.Profile.seed in
  let classes = gen_classes prof rng in
  let n = max 1 prof.Profile.methods in
  (* methods generated leaf-first: method ids n..1; method i calls ids > i *)
  let methods = Array.make (n + 1) None in
  for id = n downto 1 do
    let callees = ref [] in
    for j = id + 1 to n do
      match methods.(j) with
      | Some m when Prng.bernoulli rng 0.35 -> callees := (j, m) :: !callees
      | _ -> ()
    done;
    let name =
      Printf.sprintf "%s.C%d.m%d" prof.Profile.name (Prng.int rng (Array.length classes)) id
    in
    let m =
      random_method ~rng prof ~name
        ~callees:(List.filteri (fun i _ -> i < 6) !callees)
        ~classes
    in
    methods.(id) <- Some m
  done;
  let all_callable =
    List.init n (fun i ->
        let id = i + 1 in
        (id, Option.get methods.(id)))
  in
  let entry = entry_driver prof ~methods:all_callable ~classes (Prng.next_int64 rng) in
  methods.(0) <- Some entry;
  let methods = Array.map Option.get methods in
  Program.make ~name:prof.Profile.name ~classes ~entry:0 methods
