type t = {
  name : string;
  seed : int64;
  methods : int;
  classes : int;
  fragments_mean : float;
  loop_bias : float;
  nest_bias : float;
  fp_bias : float;
  array_bias : float;
  object_bias : float;
  sync_bias : float;
  exception_bias : float;
  call_bias : float;
  decimal_bias : float;
  longdouble_bias : float;
  mixed_bias : float;
  dead_bias : float;
  trip_scale : float;
  hot_methods : int;
  driver_trips : int;
}

let default =
  {
    name = "default";
    seed = 42L;
    methods = 40;
    classes = 5;
    fragments_mean = 4.0;
    loop_bias = 0.35;
    nest_bias = 0.2;
    fp_bias = 0.25;
    array_bias = 0.3;
    object_bias = 0.3;
    sync_bias = 0.1;
    exception_bias = 0.12;
    call_bias = 0.35;
    decimal_bias = 0.05;
    longdouble_bias = 0.03;
    mixed_bias = 0.08;
    dead_bias = 0.25;
    trip_scale = 1.0;
    hot_methods = 8;
    driver_trips = 12;
  }

let scale p f =
  {
    p with
    trip_scale = p.trip_scale *. f;
    driver_trips = max 1 (int_of_float (float_of_int p.driver_trips *. f));
  }
