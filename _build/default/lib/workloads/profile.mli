(** Workload profiles: the knobs that differentiate synthetic benchmarks.

    Each benchmark of the evaluation (the SPECjvm98-like and DaCapo-like
    suites) is a profile — a seed plus biases along exactly the feature
    axes the learned models observe: loop structure, floating point,
    arrays, objects and allocation, synchronization, exceptions, calls,
    decimal arithmetic.  Two benchmarks differ in their method mix, not in
    hand-written code, which is what makes the suites regenerable. *)

type t = {
  name : string;
  seed : int64;
  methods : int;  (** generated methods, excluding the entry driver *)
  classes : int;
  fragments_mean : float;  (** average fragments per method body *)
  loop_bias : float;  (** P(fragment is a counted loop) *)
  nest_bias : float;  (** P(a loop contains a nested loop) *)
  fp_bias : float;  (** P(arithmetic is floating point) *)
  array_bias : float;
  object_bias : float;
  sync_bias : float;
  exception_bias : float;
  call_bias : float;
  decimal_bias : float;
  longdouble_bias : float;
  mixed_bias : float;  (** P(intrinsic Mixedop fragment) *)
  dead_bias : float;  (** P(fragment result is discarded — optimizer food) *)
  trip_scale : float;  (** multiplier on loop trip counts *)
  hot_methods : int;  (** methods the entry driver calls inside its loop *)
  driver_trips : int;  (** entry-driver loop iterations per invocation *)
}

val default : t
(** A balanced mid-size profile. *)

val scale : t -> float -> t
(** [scale p f] multiplies workload volume (trip counts, driver trips) by
    [f], keeping structure; used to downscale experiments. *)
