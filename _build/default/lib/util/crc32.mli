(** CRC-32 (IEEE 802.3 polynomial), used as the integrity checksum of the
    binary archive format. *)

val string : string -> int32
(** Checksum of a whole string. *)

val bytes_sub : Bytes.t -> int -> int -> int32
(** [bytes_sub b pos len] checksums a slice. *)
