type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

(* Two-sided 95% critical values of Student's t distribution. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 df =
  if df < 1 then invalid_arg "Stats.t_critical_95: df must be >= 1";
  if df <= 30 then t_table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let m = mean xs in
  let sd = stddev xs in
  let ci = if n < 2 then 0.0 else t_critical_95 (n - 1) *. sd /. sqrt (float_of_int n) in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  { n; mean = m; stddev = sd; ci95 = ci; min = mn; max = mx }

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty sample";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
