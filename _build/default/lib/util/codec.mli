(** Binary encoding primitives for the compact archive format (Section 4.2
    of the paper: "Designing a compact representation for the data gathered
    was crucial").  Values are written into a [Buffer.t] and read back with
    an explicit cursor, so decoding never allocates intermediate slices. *)

type reader
(** A cursor over an immutable byte string. *)

val reader_of_string : string -> reader
val reader_pos : reader -> int
val reader_length : reader -> int
val at_end : reader -> bool

exception Truncated of string
(** Raised when a read runs past the end of input; the payload names the
    field being decoded. *)

(** {1 Unsigned LEB128 variable-length integers} *)

val write_varint : Buffer.t -> int -> unit
(** Encodes a non-negative int (raises [Invalid_argument] on negatives). *)

val read_varint : ?what:string -> reader -> int

(** {1 Fixed-width values} *)

val write_u8 : Buffer.t -> int -> unit
val read_u8 : ?what:string -> reader -> int

val write_i64 : Buffer.t -> int64 -> unit
(** Little-endian 64-bit. *)

val read_i64 : ?what:string -> reader -> int64

val write_f64 : Buffer.t -> float -> unit
val read_f64 : ?what:string -> reader -> float

(** {1 Length-prefixed strings} *)

val write_string : Buffer.t -> string -> unit
val read_string : ?what:string -> reader -> string
