type reader = { data : string; mutable pos : int }

exception Truncated of string

let reader_of_string data = { data; pos = 0 }
let reader_pos r = r.pos
let reader_length r = String.length r.data
let at_end r = r.pos >= String.length r.data

let need r n what =
  if r.pos + n > String.length r.data then raise (Truncated what)

let write_u8 buf v =
  if v < 0 || v > 0xff then invalid_arg "Codec.write_u8: out of range";
  Buffer.add_char buf (Char.chr v)

let read_u8 ?(what = "u8") r =
  need r 1 what;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let write_varint buf v =
  if v < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char buf (Char.chr v)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let read_varint ?(what = "varint") r =
  let rec go shift acc =
    if shift > 62 then raise (Truncated (what ^ ": varint too long"));
    let b = read_u8 ~what r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let write_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let read_i64 ?(what = "i64") r =
  need r 8 what;
  let acc = ref 0L in
  for i = 7 downto 0 do
    acc :=
      Int64.logor (Int64.shift_left !acc 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  !acc

let write_f64 buf v = write_i64 buf (Int64.bits_of_float v)
let read_f64 ?(what = "f64") r = Int64.float_of_bits (read_i64 ~what r)

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let read_string ?(what = "string") r =
  let len = read_varint ~what r in
  need r len what;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s
