type t = { nbits : int; words : Bytes.t }

(* One byte per 8 bits; widths here are tiny (58 for modifiers). *)

let create nbits =
  if nbits < 0 then invalid_arg "Bitset.create: negative width";
  { nbits; words = Bytes.make ((nbits + 7) / 8) '\000' }

let width t = t.nbits

let copy t = { nbits = t.nbits; words = Bytes.copy t.words }

let check t i =
  if i < 0 || i >= t.nbits then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i b =
  check t i;
  let byte = Char.code (Bytes.get t.words (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set t.words (i lsr 3) (Char.chr (byte land 0xff))

let popcount t =
  let count = ref 0 in
  for i = 0 to t.nbits - 1 do
    if get t i then incr count
  done;
  !count

let equal a b = a.nbits = b.nbits && Bytes.equal a.words b.words

let compare a b =
  let c = Int.compare a.nbits b.nbits in
  if c <> 0 then c else Bytes.compare a.words b.words

let hash t = Hashtbl.hash (t.nbits, Bytes.to_string t.words)

let to_string t = String.init t.nbits (fun i -> if get t i then '1' else '0')

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t i true
      | _ -> invalid_arg "Bitset.of_string: expected '0' or '1'")
    s;
  t

let to_int64_le t =
  if t.nbits > 64 then invalid_arg "Bitset.to_int64_le: width > 64";
  let acc = ref 0L in
  for i = t.nbits - 1 downto 0 do
    acc := Int64.logor (Int64.shift_left !acc 1) (if get t i then 1L else 0L)
  done;
  !acc

let of_int64_le ~width v =
  let t = create width in
  for i = 0 to min width 64 - 1 do
    set t i (Int64.logand (Int64.shift_right_logical v i) 1L = 1L)
  done;
  t

let fold f t init =
  let acc = ref init in
  for i = 0 to t.nbits - 1 do
    acc := f i (get t i) !acc
  done;
  !acc

let iter_set f t =
  for i = 0 to t.nbits - 1 do
    if get t i then f i
  done
