(** Fixed-width mutable bit sets.

    Compilation-plan modifiers (Section 5 of the paper) are "a sequence of
    bits; each bit determines whether a code transformation is enabled".
    This module provides the underlying representation, independent of the
    transformation catalogue. *)

type t

val create : int -> t
(** [create width] is an all-zero bit set of [width] bits. *)

val width : t -> int
val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val popcount : t -> int
(** Number of set bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Little-endian "0"/"1" string, bit 0 first, e.g. ["0110..."]. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on bad input. *)

val to_int64_le : t -> int64
(** Bits 0..63 packed into an int64 (width must be <= 64). *)

val of_int64_le : width:int -> int64 -> t

val fold : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds over bit indices in increasing order. *)

val iter_set : (int -> unit) -> t -> unit
(** Applies the function to each set bit index, in increasing order. *)
