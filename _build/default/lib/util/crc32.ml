let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let table = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xffl) in
  Int32.logxor table.(idx) (Int32.shift_right_logical crc 8)

let run get len =
  let crc = ref 0xFFFFFFFFl in
  for i = 0 to len - 1 do
    crc := update !crc (get i)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let string s = run (fun i -> Char.code s.[i]) (String.length s)

let bytes_sub b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes_sub";
  run (fun i -> Char.code (Bytes.get b (pos + i))) len
