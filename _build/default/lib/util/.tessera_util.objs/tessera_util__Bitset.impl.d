lib/util/bitset.ml: Bytes Char Hashtbl Int Int64 String
