lib/util/prng.mli:
