lib/util/stats.mli:
