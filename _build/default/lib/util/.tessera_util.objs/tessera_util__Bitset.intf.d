lib/util/bitset.mli:
