(** Summary statistics for the experimental methodology of the paper:
    every measurement is repeated (30 JVM invocations in the paper) and
    reported as a mean with a 95% confidence interval. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  ci95 : float;  (** half-width of the 95% confidence interval *)
  min : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample.  The 95%
    CI uses Student's t critical value for [n-1] degrees of freedom. *)

val mean : float array -> float
val stddev : float array -> float

val geomean : float array -> float
(** Geometric mean of strictly positive values; used for the "average
    improvement" rows of Figures 6-13. *)

val t_critical_95 : int -> float
(** [t_critical_95 df] is the two-sided 95% Student-t critical value for
    [df] degrees of freedom (df >= 1); large [df] approaches 1.96. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; linear interpolation; sorts a
    copy of the input. *)
