module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

type loop = { header : int; body : int list; depth : int }

type t = { loops : loop list; depth_of : int array }

let analyze (m : Meth.t) =
  let n = Array.length m.blocks in
  let cfg = Cfg.build m in
  let dom = Cfg.dominators m in
  (* Back edges: b -> h where h dominates b (id-order irrelevant; layout
     passes renumber blocks freely).  Natural loop of (b, h): h plus all
     blocks that reach b without passing through h. *)
  let back_edges = ref [] in
  Array.iteri
    (fun b succs ->
      List.iter
        (fun h ->
          if Cfg.is_back_edge dom b h && cfg.Cfg.reachable.(b) then
            back_edges := (b, h) :: !back_edges)
        succs)
    cfg.Cfg.succs;
  let loop_of (b, h) =
    let in_loop = Array.make n false in
    in_loop.(h) <- true;
    let rec pull x =
      if not in_loop.(x) then begin
        in_loop.(x) <- true;
        List.iter pull cfg.Cfg.preds.(x)
      end
    in
    pull b;
    let body = ref [] in
    for i = n - 1 downto 0 do
      if in_loop.(i) then body := i :: !body
    done;
    (h, !body)
  in
  (* Merge loops sharing a header. *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let h, body = loop_of e in
      let prev = try Hashtbl.find tbl h with Not_found -> [] in
      Hashtbl.replace tbl h (List.sort_uniq compare (prev @ body)))
    !back_edges;
  let depth_of = Array.make n 0 in
  Hashtbl.iter
    (fun _ body -> List.iter (fun b -> depth_of.(b) <- depth_of.(b) + 1) body)
    tbl;
  let loops =
    Hashtbl.fold
      (fun header body acc -> { header; body; depth = depth_of.(header) } :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  { loops; depth_of }

let loop_count t = List.length t.loops

let max_depth t = Array.fold_left max 0 t.depth_of

let annotate_frequencies (m : Meth.t) =
  let { depth_of; _ } = analyze m in
  let blocks =
    Array.mapi
      (fun i b -> Block.with_freq b (10.0 ** float_of_int depth_of.(i)))
      m.blocks
  in
  Meth.with_blocks m blocks

let is_self_loop (m : Meth.t) l =
  match l.body with
  | [ b ] -> b = l.header && List.mem b (Block.successors m.blocks.(b))
  | _ -> false
