(** The catalogue of controllable code transformations.

    The paper's Testarossa build exposes {b 58 distinct transformations}
    whose enablement a compilation-plan modifier controls (Section 5:
    bit i of a modifier enables/disables transformation i, and the search
    space is 2^58).  This module is the single source of truth for that
    numbering: modifiers, plans, the strategy-control protocol and the
    learned models all refer to transformations by their index here.

    Before running a transformation the pass manager consults
    {!entry.applicable} on the method's traits — mirroring the compiler's
    behaviour of "checking for method characteristics that might make the
    transformation meaningless" (e.g. loop transformations on loop-free
    methods). *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program

type ctx = { program : Program.t }

(** Compile-effort class; the manager converts it to simulated cycles. *)
type weight = Cheap | Medium | Expensive | Very_expensive

(** Cheap method summary driving applicability checks. *)
type traits = {
  nodes : int;
  has_loops : bool;
  has_allocs : bool;
  has_sync : bool;
  has_arrays : bool;
  has_handlers : bool;
  has_calls : bool;
  has_casts : bool;
  has_decimals : bool;
  has_longdouble : bool;
  has_fp : bool;
  has_objects : bool;
  has_mixed : bool;
  has_heap_loads : bool;
  has_throws : bool;
  uses_bigdecimal : bool;
  uses_unsafe : bool;
}

val traits_of : Meth.t -> traits

type entry = {
  index : int;
  name : string;
  weight : weight;
  applicable : traits -> bool;
  run : ctx -> Meth.t -> Meth.t;
  quality_hint : int;
      (** back-end quality levels contributed when this transformation
          runs (register-allocation / scheduling hints) *)
}

val count : int
(** 58. *)

val all : entry array
(** [all.(i).index = i]. *)

val by_name : string -> entry option

val weight_cycles : weight -> int * int
(** [(base, per_node)] simulated compile cycles of one application. *)

val check_cycles : int
(** Cycles charged for an applicability check that skips the pass. *)
