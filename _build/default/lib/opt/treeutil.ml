module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol

let map_block_nodes f (b : Block.t) =
  let stmts = List.map f b.Block.stmts in
  let term = Block.map_terminator_nodes f b.Block.term in
  { b with Block.stmts; term }

let map_method_nodes f (m : Meth.t) =
  Meth.with_blocks m (Array.map (map_block_nodes f) m.blocks)

let filter_map_stmts f (b : Block.t) =
  Block.with_stmts b (List.filter_map f b.Block.stmts)

let retarget f (m : Meth.t) =
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        let term =
          match b.Block.term with
          | Block.Goto t -> Block.Goto (f t)
          | Block.If { cond; if_true; if_false } ->
              Block.If { cond; if_true = f if_true; if_false = f if_false }
          | (Block.Return _ | Block.Throw _) as t -> t
        in
        let handler = Option.map f b.Block.handler in
        { b with Block.term; handler })
      m.blocks
  in
  Meth.with_blocks m blocks

let compact (m : Meth.t) =
  let cfg = Cfg.build m in
  let n = Array.length m.blocks in
  let all = Array.for_all (fun r -> r) cfg.Cfg.reachable in
  if all then m
  else begin
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if cfg.Cfg.reachable.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let kept =
      Array.of_list
        (List.filteri
           (fun i _ -> cfg.Cfg.reachable.(i))
           (Array.to_list m.blocks))
    in
    let kept = Array.mapi (fun i (b : Block.t) -> { b with Block.id = i }) kept in
    retarget (fun t -> remap.(t)) (Meth.with_blocks m kept)
  end

let reorder (m : Meth.t) order =
  let n = Array.length m.blocks in
  if Array.length order <> n then invalid_arg "Treeutil.reorder: bad order";
  if n > 0 && order.(0) <> 0 then
    invalid_arg "Treeutil.reorder: entry must stay first";
  let new_id_of_old = Array.make n (-1) in
  Array.iteri (fun newi oldi -> new_id_of_old.(oldi) <- newi) order;
  if Array.exists (fun x -> x < 0) new_id_of_old then
    invalid_arg "Treeutil.reorder: not a permutation";
  let blocks =
    Array.mapi
      (fun newi oldi -> { (m.Meth.blocks.(oldi)) with Block.id = newi })
      order
  in
  retarget (fun t -> new_id_of_old.(t)) (Meth.with_blocks m blocks)

type sym_info = {
  loads : int array;
  stores : int array;
  escapes : bool array;
}

let sym_info (m : Meth.t) =
  let n = Array.length m.symbols in
  let info =
    { loads = Array.make n 0; stores = Array.make n 0; escapes = Array.make n false }
  in
  let mark_escape (k : Node.t) =
    if k.Node.op = Opcode.Load && Array.length k.Node.args = 0 then
      info.escapes.(k.Node.sym) <- true
  in
  let visit (n : Node.t) =
    match n.Node.op with
    | Opcode.Load when Array.length n.Node.args = 0 ->
        info.loads.(n.Node.sym) <- info.loads.(n.Node.sym) + 1
    | Opcode.Store when Array.length n.Node.args = 1 ->
        info.stores.(n.Node.sym) <- info.stores.(n.Node.sym) + 1
    | Opcode.Store when Array.length n.Node.args = 3 ->
        (* value operand of an array store escapes *)
        mark_escape n.Node.args.(2)
    | Opcode.Store when Array.length n.Node.args = 2 ->
        mark_escape n.Node.args.(1)
    | Opcode.Inc -> info.stores.(n.Node.sym) <- info.stores.(n.Node.sym) + 1
    | Opcode.Call | Opcode.Mixedop | Opcode.Throw_op ->
        Array.iter mark_escape n.Node.args
    | Opcode.Arrayop Opcode.Array_copy -> Array.iter mark_escape n.Node.args
    | _ -> ()
  in
  Meth.fold_nodes (fun () k -> visit k) () m;
  Array.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Block.Return (Some v) ->
          Node.fold (fun () k -> mark_escape k) () v;
          mark_escape v
      | Block.Throw v -> mark_escape v
      | _ -> ())
    m.blocks;
  info

let stored_syms_of_tree root =
  Node.fold
    (fun acc (n : Node.t) ->
      match n.Node.op with
      | Opcode.Store when Array.length n.Node.args = 1 -> n.Node.sym :: acc
      | Opcode.Inc -> n.Node.sym :: acc
      | _ -> acc)
    [] root
  |> List.sort_uniq compare

let loaded_syms_of_tree root =
  Node.fold
    (fun acc (n : Node.t) ->
      match n.Node.op with
      | Opcode.Load when Array.length n.Node.args = 0 -> n.Node.sym :: acc
      | Opcode.Inc -> n.Node.sym :: acc
      | _ -> acc)
    [] root
  |> List.sort_uniq compare

let tree_reads_memory root =
  Node.exists
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Load -> Array.length n.Node.args > 0
      | Opcode.Call | Opcode.Mixedop | Opcode.Arrayop _ -> true
      | _ -> false)
    root

let tree_writes_memory root =
  Node.exists
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Store -> Array.length n.Node.args > 1
      | Opcode.Call | Opcode.New | Opcode.Newarray | Opcode.Newmultiarray
      | Opcode.Synchronization _ | Opcode.Throw_op ->
          true
      | Opcode.Arrayop Opcode.Array_copy -> true
      | _ -> false)
    root

let fresh_temp (m : Meth.t) name ty =
  let id = Array.length m.symbols in
  let symbols = Array.append m.symbols [| Symbol.temp name ty |] in
  (Meth.with_symbols m symbols, id)
