(** Block-scoped and CFG transformations.

    Tree rewrites here are semantics-preserving; the *-check passes are
    cost-only (they attach optimization flags that the back end turns into
    cycle discounts, while the shared value semantics still performs every
    check — a mis-flagged node can waste a discount but never change a
    result). *)

module Meth = Tessera_il.Meth

(** {1 Value-reuse passes} *)

val local_cse : Meth.t -> Meth.t
(** Common subexpression elimination over register-only expressions within
    a block. *)

val local_vn : Meth.t -> Meth.t
(** Value numbering: commutative normalization of pure integer operands
    followed by CSE, catching [a+b] vs [b+a]. *)

val field_load_cse : Meth.t -> Meth.t
(** Redundant-load elimination for field/array loads, invalidated by any
    potential heap write. *)

val copy_prop : Meth.t -> Meth.t
val local_const_prop : Meth.t -> Meth.t

(** {1 Dead code} *)

val dead_store_elim : Meth.t -> Meth.t
(** Removes stores to temporaries that are never loaded, and stores
    overwritten later in the same block before any read. *)

val dead_tree_elim : Meth.t -> Meth.t
val unused_symbol_elim : Meth.t -> Meth.t

(** {1 Control flow} *)

val branch_fold : Meth.t -> Meth.t
val branch_reversal : Meth.t -> Meth.t
(** [if (x != 0)] tests [x] directly, dropping the comparison. *)

val jump_threading : Meth.t -> Meth.t
val block_merge : Meth.t -> Meth.t
val unreachable_elim : Meth.t -> Meth.t
val block_layout : Meth.t -> Meth.t
val cold_outline : Meth.t -> Meth.t
val profile_block_order : Meth.t -> Meth.t
val return_merge : Meth.t -> Meth.t
val throw_to_goto : Meth.t -> Meth.t
(** A throw whose handler is in the same method becomes a plain jump,
    skipping the unwinder. *)

(** {1 Check elimination (cost-only flags)} *)

val bounds_check_elim : Meth.t -> Meth.t
(** Deduplicates bounds-check statements proven by an earlier identical
    check (tree rewrite: drops the redundant statement). *)

val loop_bounds_flags : Meth.t -> Meth.t
(** Flags array accesses covered by an earlier check in the same block. *)

val null_check_elim : Meth.t -> Meth.t
val compact_null_checks : Meth.t -> Meth.t
val monitor_pair_elim : Meth.t -> Meth.t
(** Drops adjacent [monitorexit obj; monitorenter obj] pairs on an object
    already proven non-null in the block. *)
