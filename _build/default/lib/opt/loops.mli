(** Natural-loop detection.

    A back edge is an edge [u -> v] where [v] dominates [u]; loop
    discovery is therefore immune to block renumbering by the layout
    passes.  (The paper's "may have loops" {e feature} is still the
    cruder "has a backward branch" test, computed before optimization —
    see {!Tessera_il.Meth.has_backward_branch}.) *)

type loop = {
  header : int;
  body : int list;  (** block ids, including the header *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

type t = { loops : loop list; depth_of : int array }

val analyze : Tessera_il.Meth.t -> t

val loop_count : t -> int
val max_depth : t -> int

val annotate_frequencies : Tessera_il.Meth.t -> Tessera_il.Meth.t
(** Sets each block's static frequency estimate to [10^depth], the
    heuristic used by layout decisions when no profile is available. *)

val is_self_loop : Tessera_il.Meth.t -> loop -> bool
(** The loop is a single block branching back to itself. *)
