module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

type t = {
  preds : int list array;
  succs : int list array;
  reachable : bool array;
  rpo : int array;
}

let build (m : Meth.t) =
  let n = Array.length m.blocks in
  let succs = Array.map Block.successors m.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun b ts -> List.iter (fun t -> preds.(t) <- b :: preds.(t)) ts)
    succs;
  Array.iteri (fun b l -> preds.(b) <- List.rev l) preds;
  let reachable = Array.make n false in
  let rec visit b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter visit succs.(b);
      match m.blocks.(b).Block.handler with Some h -> visit h | None -> ()
    end
  in
  if n > 0 then visit 0;
  (* Reverse post-order over normal edges. *)
  let seen = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs 0;
  { preds; succs; reachable; rpo = Array.of_list !post }

let single_pred t b = match t.preds.(b) with [ p ] -> Some p | _ -> None

let dominators (m : Meth.t) =
  let n = Array.length m.blocks in
  let succs =
    Array.map
      (fun (b : Block.t) ->
        match b.Block.handler with
        | Some h -> h :: Block.successors b
        | None -> Block.successors b)
      m.blocks
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun b ts -> List.iter (fun t -> preds.(t) <- b :: preds.(t)) ts)
    succs;
  (* iterative dataflow: dom(entry) = {entry};
     dom(b) = {b} ∪ ⋂ dom(preds) *)
  let dom = Array.init n (fun _ -> Array.make n true) in
  if n > 0 then begin
    for x = 0 to n - 1 do
      dom.(0).(x) <- x = 0
    done;
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 1 to n - 1 do
        match preds.(b) with
        | [] -> () (* unreachable: keep the all-true convention *)
        | ps ->
            for x = 0 to n - 1 do
              let inter =
                x = b || List.for_all (fun p -> dom.(p).(x)) ps
              in
              if dom.(b).(x) <> inter then begin
                dom.(b).(x) <- inter;
                changed := true
              end
            done
      done
    done
  end;
  dom

let is_back_edge dom u v = dom.(u).(v)
