type level = Cold | Warm | Hot | Very_hot | Scorching

let levels = [| Cold; Warm; Hot; Very_hot; Scorching |]

let level_name = function
  | Cold -> "cold"
  | Warm -> "warm"
  | Hot -> "hot"
  | Very_hot -> "veryhot"
  | Scorching -> "scorching"

let level_of_name s =
  Array.find_opt (fun l -> String.equal (level_name l) s) levels

let level_index = function
  | Cold -> 0
  | Warm -> 1
  | Hot -> 2
  | Very_hot -> 3
  | Scorching -> 4

let level_of_index i =
  if i < 0 || i >= Array.length levels then invalid_arg "Plan.level_of_index";
  levels.(i)

(* Reusable phases.  Indices refer to Catalog.all. *)
let local_round = [ 0; 18; 1; 4; 21; 23; 24; 25; 20; 22 ]
let base_cleanup = [ 5; 54; 9; 11; 7; 41 ]
let check_round = [ 32; 33; 34; 35; 50 ]
let loop_round = [ 26; 27; 31; 57 ]
let decimal_round = [ 44; 45; 46; 47; 51 ]
let object_round = [ 48; 49; 36; 37; 38; 42 ]
let cse_round = [ 15; 16; 17; 2; 3 ]
let layout_round = [ 12; 13; 43; 56 ]

let cold_plan =
  [ 0; 18; 1; 4; 21; 24; 25; 20 ]
  @ [ 9; 10; 11; 7; 5; 41 ]
  @ [ 26 ]
  @ [ 12; 43; 56; 54; 55 ]

let warm_plan =
  [ 39 ] @ local_round
  @ [ 26; 57; 31 ]
  @ check_round
  @ [ 15; 2; 3; 52 ]
  @ decimal_round
  @ [ 48; 49; 38 ]
  @ base_cleanup
  @ [ 19; 55 ]
  @ layout_round
  @ [ 6; 8; 10 ]

let hot_plan =
  warm_plan
  @ [ 16; 17; 27; 30; 36; 37; 35; 42; 52 ]
  @ local_round @ check_round
  @ [ 54; 55; 19 ]
  @ layout_round @ cse_round @ base_cleanup
  @ [ 14; 28; 51 ]

let very_hot_plan =
  hot_plan
  @ [ 40; 28; 39 ]
  @ local_round @ loop_round @ check_round @ base_cleanup
  @ [ 19; 55 ]

let scorching_plan =
  very_hot_plan
  @ [ 29; 53 ]
  @ local_round @ cse_round @ check_round @ decimal_round @ object_round
  @ layout_round @ base_cleanup
  @ [ 27; 30; 31; 26 ]
  @ [ 19; 55; 54 ]

let plan = function
  | Cold -> cold_plan
  | Warm -> warm_plan
  | Hot -> hot_plan
  | Very_hot -> very_hot_plan
  | Scorching -> scorching_plan

let plan_length l = List.length (plan l)

let pp_level fmt l = Format.pp_print_string fmt (level_name l)
