module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values
module Semantics = Tessera_vm.Semantics

let rewrite f m = Treeutil.map_method_nodes (Node.map_bottom_up f) m

let is_const (n : Node.t) = n.Node.op = Opcode.Loadconst

let const_value (n : Node.t) =
  if Types.is_floating n.Node.ty then Values.Float_v (Node.const_float n)
  else Values.Int_v n.Node.const

let of_value ty (v : Values.t) =
  match v with
  | Values.Int_v x -> Some (Node.iconst ty x)
  | Values.Float_v f -> Some (Node.fconst ty f)
  | _ -> None

let int_const (n : Node.t) =
  if is_const n && not (Types.is_floating n.Node.ty) then Some n.Node.const
  else None

(* Fold a binop/neg node when its children are constants; [want] selects
   which result types a given folding pass is responsible for. *)
let fold_node ~want (n : Node.t) =
  if not (want n.Node.ty) then n
  else
    match n.Node.op with
    | (Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
      | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Shift _ | Opcode.Compare _)
      when Array.length n.Node.args = 2
           && is_const n.Node.args.(0)
           && is_const n.Node.args.(1) -> (
        match
          Semantics.binop n.Node.op n.Node.ty
            (const_value n.Node.args.(0))
            (const_value n.Node.args.(1))
        with
        | v -> Option.value ~default:n (of_value n.Node.ty v)
        | exception Values.Trap _ -> n)
    | Opcode.Neg when is_const n.Node.args.(0) ->
        Option.value ~default:n
          (of_value n.Node.ty (Semantics.neg n.Node.ty (const_value n.Node.args.(0))))
    | Opcode.Cast k when k <> Opcode.C_check && is_const n.Node.args.(0) -> (
        match Semantics.cast k n.Node.ty (const_value n.Node.args.(0)) with
        | v -> Option.value ~default:n (of_value n.Node.ty v)
        | exception Values.Trap _ -> n)
    | _ -> n

let native_scalar ty =
  match ty with
  | Types.Byte | Types.Char | Types.Short | Types.Int | Types.Long
  | Types.Float_ | Types.Double ->
      true
  | _ -> false

let decimal ty =
  match ty with Types.Packed_decimal | Types.Zoned_decimal -> true | _ -> false

let const_fold m = rewrite (fold_node ~want:native_scalar) m

let packed_fold m = rewrite (fold_node ~want:decimal) m

let longdouble_narrow m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Cast (Opcode.C_float | Opcode.C_double | Opcode.C_longdouble)
        when Types.is_floating n.Node.args.(0).Node.ty ->
          (* Floating conversions are exact in the value model. *)
          n.Node.args.(0)
      | _ -> fold_node ~want:(Types.equal Types.Long_double) n)
    m

let same_ty (n : Node.t) (k : Node.t) = Types.equal n.Node.ty k.Node.ty

let simplify m =
  rewrite
    (fun (n : Node.t) ->
      let a () = n.Node.args.(0) and b () = n.Node.args.(1) in
      match n.Node.op with
      | Opcode.Add when Types.is_integral n.Node.ty -> (
          match (int_const (a ()), int_const (b ())) with
          | _, Some 0L when same_ty n (a ()) -> a ()
          | Some 0L, _ when same_ty n (b ()) -> b ()
          | _ -> n)
      | Opcode.Sub when Types.is_integral n.Node.ty -> (
          match int_const (b ()) with
          | Some 0L when same_ty n (a ()) -> a ()
          | _ -> n)
      | Opcode.Mul -> (
          match (int_const (a ()), int_const (b ())) with
          | _, Some 1L when same_ty n (a ()) -> a ()
          | Some 1L, _ when same_ty n (b ()) -> b ()
          | _, Some 0L
            when Types.is_integral n.Node.ty && Node.subtree_pure (a ()) ->
              Node.iconst n.Node.ty 0L
          | Some 0L, _
            when Types.is_integral n.Node.ty && Node.subtree_pure (b ()) ->
              Node.iconst n.Node.ty 0L
          | _ ->
              if
                Types.is_floating n.Node.ty
                && is_const (b ())
                && Node.const_float (b ()) = 1.0
              then a ()
              else n)
      | Opcode.Div -> (
          match int_const (b ()) with
          | Some 1L when Types.is_integral n.Node.ty && same_ty n (a ()) ->
              a ()
          | _ ->
              if
                Types.is_floating n.Node.ty
                && is_const (b ())
                && Node.const_float (b ()) = 1.0
              then a ()
              else n)
      | Opcode.Shift _ when Types.is_integral n.Node.ty -> (
          match int_const (b ()) with
          | Some 0L when same_ty n (a ()) -> a ()
          | _ -> n)
      | Opcode.Or | Opcode.Xor -> (
          match (int_const (a ()), int_const (b ())) with
          | _, Some 0L when same_ty n (a ()) -> a ()
          | Some 0L, _ when same_ty n (b ()) -> b ()
          | _ -> n)
      | Opcode.And -> (
          match (int_const (a ()), int_const (b ())) with
          | _, Some 0L when Node.subtree_pure (a ()) -> Node.iconst n.Node.ty 0L
          | Some 0L, _ when Node.subtree_pure (b ()) -> Node.iconst n.Node.ty 0L
          | _ -> n)
      | Opcode.Neg -> (
          match (a ()).Node.op with
          | Opcode.Neg when same_ty n (a ()).Node.args.(0) && same_ty n (a ())
            ->
              (a ()).Node.args.(0)
          | _ -> n)
      | Opcode.Cast k when k <> Opcode.C_check -> (
          match Opcode.cast_target k with
          | Some target
            when Types.equal target (a ()).Node.ty
                 && Types.is_reference target ->
              a ()
          | _ -> n)
      | _ -> n)
    m

let bitop_simplify m =
  rewrite
    (fun (n : Node.t) ->
      let self_pair () =
        Array.length n.Node.args = 2
        && Node.structural_equal n.Node.args.(0) n.Node.args.(1)
        && Node.subtree_pure n.Node.args.(0)
      in
      match n.Node.op with
      | (Opcode.And | Opcode.Or)
        when Types.is_integral n.Node.ty
             && self_pair ()
             && same_ty n n.Node.args.(0) ->
          n.Node.args.(0)
      | Opcode.Xor when Types.is_integral n.Node.ty && self_pair () ->
          Node.iconst n.Node.ty 0L
      | Opcode.Sub when Types.is_integral n.Node.ty && self_pair () ->
          (* x - x = 0; exact in modular arithmetic *)
          Node.iconst n.Node.ty 0L
      | Opcode.Compare rel
        when Types.is_integral n.Node.args.(0).Node.ty && self_pair () ->
          (* comparisons of a value with itself fold (integers only: NaN
             breaks reflexivity for floating point) *)
          let r =
            match rel with
            | Opcode.Eq | Opcode.Le | Opcode.Ge -> 1L
            | Opcode.Ne | Opcode.Lt | Opcode.Gt -> 0L
          in
          Node.iconst n.Node.ty r
      | (Opcode.And | Opcode.Or | Opcode.Xor)
        when Types.is_integral n.Node.ty -> (
          (* (x op c1) op c2 = x op (c1 op c2): bitwise ops commute with
             the storage-width truncation of sign-extended operands *)
          let inner = n.Node.args.(0) in
          match (int_const n.Node.args.(1), inner.Node.op) with
          | Some c2, op
            when op = n.Node.op
                 && Types.equal inner.Node.ty n.Node.ty
                 && Array.length inner.Node.args = 2 -> (
              match int_const inner.Node.args.(1) with
              | Some c1 ->
                  let f =
                    match n.Node.op with
                    | Opcode.And -> Int64.logand
                    | Opcode.Or -> Int64.logor
                    | _ -> Int64.logxor
                  in
                  Node.binop n.Node.op n.Node.ty inner.Node.args.(0)
                    (Node.iconst n.Node.ty
                       (Values.truncate n.Node.ty (f c1 c2)))
              | None -> n)
          | _ -> n)
      | _ -> n)
    m

let log2_exact v =
  if Int64.compare v 1L > 0 && Int64.logand v (Int64.sub v 1L) = 0L then begin
    let rec go k x = if Int64.equal x 1L then k else go (k + 1) (Int64.shift_right_logical x 1) in
    Some (go 0 v)
  end
  else None

let strength_reduce m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Mul when Types.is_integral n.Node.ty -> (
          let shift_of x other =
            match int_const x with
            | Some v -> (
                match log2_exact v with
                | Some k ->
                    Some
                      (Node.binop (Opcode.Shift Opcode.Shl) n.Node.ty other
                         (Node.iconst n.Node.ty (Int64.of_int k)))
                | None -> None)
            | None -> None
          in
          match shift_of n.Node.args.(1) n.Node.args.(0) with
          | Some r -> r
          | None -> (
              match shift_of n.Node.args.(0) n.Node.args.(1) with
              | Some r -> r
              | None -> n))
      | _ -> n)
    m

let reassociate m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | (Opcode.Add | Opcode.Sub) when Types.is_integral n.Node.ty -> (
          match int_const n.Node.args.(1) with
          | Some c2 -> (
              let inner = n.Node.args.(0) in
              if not (same_ty n inner) then n
              else
                match inner.Node.op with
                | (Opcode.Add | Opcode.Sub)
                  when Types.equal inner.Node.ty n.Node.ty -> (
                    match int_const inner.Node.args.(1) with
                    | Some c1 ->
                        let sign op = if op = Opcode.Sub then Int64.neg else Fun.id in
                        let total =
                          Int64.add (sign inner.Node.op c1) (sign n.Node.op c2)
                        in
                        Node.binop Opcode.Add n.Node.ty inner.Node.args.(0)
                          (Node.iconst n.Node.ty total)
                    | None -> n)
                | _ -> n)
          | None -> n)
      | _ -> n)
    m

let sign_ext_elim m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Loadconst when Types.is_integral n.Node.ty ->
          let t = Values.truncate n.Node.ty n.Node.const in
          if Int64.equal t n.Node.const then n else Node.iconst n.Node.ty t
      | Opcode.Cast k when k <> Opcode.C_check -> (
          let child = n.Node.args.(0) in
          match child.Node.op with
          | Opcode.Cast k' when k' = k -> child
          | _ -> n)
      | _ -> n)
    m

let peephole_shift m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Shift d when Types.is_integral n.Node.ty -> (
          let inner = n.Node.args.(0) in
          match (inner.Node.op, int_const n.Node.args.(1)) with
          | Opcode.Shift d', Some b
            when d' = d
                 && Types.equal inner.Node.ty n.Node.ty
                 && (d = Opcode.Shl
                    || Types.equal n.Node.ty Types.Long) -> (
              match int_const inner.Node.args.(1) with
              | Some a
                when Int64.compare a 0L >= 0
                     && Int64.compare b 0L >= 0
                     && Int64.compare (Int64.add a b) 63L <= 0 ->
                  Node.binop (Opcode.Shift d) n.Node.ty inner.Node.args.(0)
                    (Node.iconst n.Node.ty (Int64.add a b))
              | _ -> n)
          | _ -> n)
      | _ -> n)
    m

let invert = function
  | Opcode.Eq -> Opcode.Ne
  | Opcode.Ne -> Opcode.Eq
  | Opcode.Lt -> Opcode.Ge
  | Opcode.Le -> Opcode.Gt
  | Opcode.Gt -> Opcode.Le
  | Opcode.Ge -> Opcode.Lt

let peephole_compare m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Compare rel when Types.is_integral n.Node.ty -> (
          let inner = n.Node.args.(0) in
          match (int_const n.Node.args.(1), inner.Node.op) with
          | Some 0L, Opcode.Compare irel -> (
              match rel with
              | Opcode.Ne when same_ty n inner -> inner
              | Opcode.Eq ->
                  Node.binop
                    (Opcode.Compare (invert irel))
                    n.Node.ty inner.Node.args.(0) inner.Node.args.(1)
              | _ -> n)
          | _ -> n)
      | _ -> n)
    m

let induction_var m =
  Meth.with_blocks m
    (Array.map
       (fun b ->
         Treeutil.filter_map_stmts
           (fun (s : Node.t) ->
             match s.Node.op with
             | Opcode.Store when Array.length s.Node.args = 1 -> (
                 let rhs = s.Node.args.(0) in
                 let sym_ty = m.Meth.symbols.(s.Node.sym).Tessera_il.Symbol.ty in
                 if not (Types.is_integral sym_ty && Types.equal rhs.Node.ty sym_ty)
                 then Some s
                 else
                   let mk_inc delta =
                     Node.mk ~sym:s.Node.sym ~const:delta Opcode.Inc Types.Void [||]
                   in
                   match rhs.Node.op with
                   | Opcode.Add -> (
                       let self (k : Node.t) =
                         k.Node.op = Opcode.Load
                         && Array.length k.Node.args = 0
                         && k.Node.sym = s.Node.sym
                       in
                       match
                         ( self rhs.Node.args.(0),
                           int_const rhs.Node.args.(1),
                           self rhs.Node.args.(1),
                           int_const rhs.Node.args.(0) )
                       with
                       | true, Some c, _, _ -> Some (mk_inc c)
                       | _, _, true, Some c -> Some (mk_inc c)
                       | _ -> Some s)
                   | Opcode.Sub -> (
                       let self (k : Node.t) =
                         k.Node.op = Opcode.Load
                         && Array.length k.Node.args = 0
                         && k.Node.sym = s.Node.sym
                       in
                       match (self rhs.Node.args.(0), int_const rhs.Node.args.(1)) with
                       | true, Some c -> Some (mk_inc (Int64.neg c))
                       | _ -> Some s)
                   | _ -> Some s)
             | _ -> Some s)
           b)
       m.Meth.blocks)

let mixed_fold m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Mixedop
        when (not (Types.equal n.Node.ty Types.Void))
             && Array.length n.Node.args > 0
             && Array.for_all is_const n.Node.args ->
          let v = Semantics.mixed n.Node.ty (Array.map const_value n.Node.args) in
          Option.value ~default:n (of_value n.Node.ty v)
      | _ -> n)
    m

let decimal_cast_removal m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Cast (Opcode.C_packed | Opcode.C_zoned)
        when decimal n.Node.args.(0).Node.ty ->
          (* both decimal types are 64-bit fixed point in the value model,
             so conversions between them are the identity *)
          n.Node.args.(0)
      | _ -> n)
    m

let checkcast_reduce m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Cast Opcode.C_check -> (
          let child = n.Node.args.(0) in
          match child.Node.op with
          | Opcode.New when child.Node.sym = n.Node.sym -> child
          | _ -> n)
      | _ -> n)
    m

let instanceof_fold m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Instanceof -> (
          let child = n.Node.args.(0) in
          match child.Node.op with
          | Opcode.New when child.Node.sym = n.Node.sym ->
              (* exact class always conforms to itself; the allocation is
                 unobservable and may be elided *)
              Node.iconst n.Node.ty 1L
          | _ -> n)
      | _ -> n)
    m

let arraylength_fold m =
  rewrite
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Arrayop Opcode.Array_length -> (
          let child = n.Node.args.(0) in
          match (child.Node.op, child.Node.args) with
          | Opcode.Newarray, [| len |] -> (
              match int_const len with
              | Some c
                when Int64.compare c 0L >= 0
                     && Int64.to_int c <= 1 lsl 20 ->
                  Node.iconst n.Node.ty c
              | _ -> n)
          | _ -> n)
      | _ -> n)
    m
