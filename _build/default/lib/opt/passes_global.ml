module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Program = Tessera_il.Program

(* ------------------------------------------------------------------ *)
(* Single-definition forwarding                                          *)
(* ------------------------------------------------------------------ *)

(* Find temporaries defined exactly once, by a statement-level store in
   the entry block (whose handler is [None], so a trap before the store
   cannot expose the un-stored value to a handler), with [accept] deciding
   whether the defining right-hand side may be forwarded. *)
let single_defs ~accept (m : Meth.t) =
  if Array.length m.Meth.blocks = 0 then []
  else begin
    let entry = m.Meth.blocks.(0) in
    if entry.Block.handler <> None then []
    else begin
      let info = Treeutil.sym_info m in
      let defs = ref [] in
      List.iteri
        (fun idx (s : Node.t) ->
          match s.Node.op with
          | Opcode.Store when Array.length s.Node.args = 1 ->
              let sym = s.Node.sym in
              if
                m.Meth.symbols.(sym).Symbol.kind = Symbol.Temp
                && info.Treeutil.stores.(sym) = 1
                && accept sym s.Node.args.(0)
              then defs := (sym, idx, s.Node.args.(0)) :: !defs
          | _ -> ())
        entry.Block.stmts;
      !defs
    end
  end

let forward_defs defs (m : Meth.t) =
  if defs = [] then m
  else begin
    let table = Hashtbl.create 8 in
    List.iter (fun (sym, idx, repl) -> Hashtbl.replace table sym (idx, repl)) defs;
    let rewrite ~after_idx tree =
      Node.map_bottom_up
        (fun (n : Node.t) ->
          if n.Node.op = Opcode.Load && Array.length n.Node.args = 0 then
            match Hashtbl.find_opt table n.Node.sym with
            | Some (def_idx, repl)
              when after_idx > def_idx && Types.equal repl.Node.ty n.Node.ty ->
                repl
            | _ -> n
          else n)
        tree
    in
    let blocks =
      Array.mapi
        (fun bi (b : Block.t) ->
          if bi = 0 then begin
            let stmts =
              List.mapi (fun idx s -> rewrite ~after_idx:idx s) b.Block.stmts
            in
            let term =
              Block.map_terminator_nodes (rewrite ~after_idx:max_int) b.Block.term
            in
            { b with Block.stmts; term }
          end
          else Treeutil.map_block_nodes (rewrite ~after_idx:max_int) b)
        m.Meth.blocks
    in
    Meth.with_blocks m blocks
  end

let remat_constants (m : Meth.t) =
  let defs =
    single_defs m ~accept:(fun sym (rhs : Node.t) ->
        rhs.Node.op = Opcode.Loadconst
        && Types.equal rhs.Node.ty m.Meth.symbols.(sym).Symbol.ty)
  in
  let defs =
    List.map
      (fun (sym, idx, (rhs : Node.t)) ->
        (* flag so diagnostics can see the decision *)
        (sym, idx, Node.with_flags rhs Node.flag_rematerialized))
      defs
  in
  forward_defs defs m

let global_copy_prop (m : Meth.t) =
  let info = Treeutil.sym_info m in
  let defs =
    single_defs m ~accept:(fun sym (rhs : Node.t) ->
        rhs.Node.op = Opcode.Load
        && Array.length rhs.Node.args = 0
        && m.Meth.symbols.(rhs.Node.sym).Symbol.kind = Symbol.Arg
        && info.Treeutil.stores.(rhs.Node.sym) = 0
        && Types.equal rhs.Node.ty m.Meth.symbols.(sym).Symbol.ty
        && Types.equal rhs.Node.ty m.Meth.symbols.(rhs.Node.sym).Symbol.ty)
  in
  forward_defs defs m

(* ------------------------------------------------------------------ *)
(* Escape analysis and monitor elision                                   *)
(* ------------------------------------------------------------------ *)

(* Temporaries holding only fresh allocations whose value is consumed
   exclusively in receiver positions.  Receiver positions: base of a
   field/element access, array operand of array ops, monitored object. *)
let non_escaping_alloc_syms (m : Meth.t) =
  let n = Array.length m.Meth.symbols in
  let candidate = Array.make n false in
  let disqualified = Array.make n false in
  (* candidates: temps whose every store has a New/Newarray rhs *)
  Meth.fold_nodes
    (fun () (node : Node.t) ->
      match node.Node.op with
      | Opcode.Store when Array.length node.Node.args = 1 -> (
          match node.Node.args.(0).Node.op with
          | Opcode.New | Opcode.Newarray -> candidate.(node.Node.sym) <- true
          | _ -> disqualified.(node.Node.sym) <- true)
      | Opcode.Inc -> disqualified.(node.Node.sym) <- true
      | _ -> ())
    () m;
  (* a load of a candidate anywhere except a receiver position escapes *)
  let check_node (node : Node.t) =
    let receiver_slots =
      match (node.Node.op, Array.length node.Node.args) with
      | Opcode.Load, (1 | 2) -> [ 0 ]
      | Opcode.Store, (2 | 3) -> [ 0 ]
      | Opcode.Arrayop Opcode.Array_length, _ -> [ 0 ]
      | Opcode.Arrayop Opcode.Bounds_check, _ -> [ 0 ]
      | Opcode.Synchronization _, 1 -> [ 0 ]
      | Opcode.Instanceof, _ -> [ 0 ]
      | _ -> []
    in
    Array.iteri
      (fun slot (k : Node.t) ->
        if
          k.Node.op = Opcode.Load
          && Array.length k.Node.args = 0
          && candidate.(k.Node.sym)
          && not (List.mem slot receiver_slots)
        then disqualified.(k.Node.sym) <- true)
      node.Node.args
  in
  Meth.fold_nodes (fun () node -> check_node node) () m;
  (* loads appearing as statement roots or terminator roots escape-check:
     return/throw of the value escapes *)
  Array.iter
    (fun (b : Block.t) ->
      let root_load (v : Node.t) =
        if v.Node.op = Opcode.Load && Array.length v.Node.args = 0 then
          disqualified.(v.Node.sym) <- true
      in
      match b.Block.term with
      | Block.Return (Some v) | Block.Throw v -> root_load v
      | _ -> ())
    m.Meth.blocks;
  Array.init n (fun i -> candidate.(i) && not disqualified.(i))

let flag_alloc_stores ok_syms flag (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (Treeutil.map_block_nodes (fun (s : Node.t) ->
            match s.Node.op with
            | Opcode.Store
              when Array.length s.Node.args = 1 && ok_syms.(s.Node.sym) -> (
                match s.Node.args.(0).Node.op with
                | Opcode.New | Opcode.Newarray ->
                    Node.with_args s [| Node.with_flags s.Node.args.(0) flag |]
                | _ -> s)
            | _ -> s))
       m.Meth.blocks)

let escape_analysis (m : Meth.t) =
  let ok = non_escaping_alloc_syms m in
  if Array.exists Fun.id ok then flag_alloc_stores ok Node.flag_stack_alloc m
  else m

let monitor_elision (m : Meth.t) =
  let ok = non_escaping_alloc_syms m in
  if not (Array.exists Fun.id ok) then m
  else
    Treeutil.map_method_nodes
      (Node.map_bottom_up (fun (n : Node.t) ->
           match n.Node.op with
           | Opcode.Synchronization _
             when Array.length n.Node.args = 1
                  && n.Node.args.(0).Node.op = Opcode.Load
                  && Array.length n.Node.args.(0).Node.args = 0
                  && ok.(n.Node.args.(0).Node.sym) ->
               Node.with_flags n Node.flag_sync_elided
           | _ -> n))
      m

(* ------------------------------------------------------------------ *)
(* Inlining                                                              *)
(* ------------------------------------------------------------------ *)

let callee_ok (callee : Meth.t) =
  Array.length callee.Meth.blocks = 1
  && callee.Meth.blocks.(0).Block.handler = None
  && (not callee.Meth.attrs.Meth.synchronized)
  && not callee.Meth.attrs.Meth.virtual_overridden

(* trivial: single pure expression over its arguments *)
let trivial_body (callee : Meth.t) =
  if not (callee_ok callee) then None
  else
    let b = callee.Meth.blocks.(0) in
    match (b.Block.stmts, b.Block.term) with
    | [], Block.Return (Some e)
      when Node.size e <= 12
           && Types.equal e.Node.ty callee.Meth.ret
           && Node.fold
                (fun acc (n : Node.t) ->
                  acc
                  &&
                  match n.Node.op with
                  | Opcode.Load ->
                      Array.length n.Node.args = 0
                      && callee.Meth.symbols.(n.Node.sym).Symbol.kind
                         = Symbol.Arg
                  | Opcode.Loadconst | Opcode.Add | Opcode.Sub | Opcode.Mul
                  | Opcode.Neg | Opcode.Shift _ | Opcode.Or | Opcode.And
                  | Opcode.Xor | Opcode.Compare _ ->
                      true
                  | Opcode.Cast k -> k <> Opcode.C_check
                  | Opcode.Div | Opcode.Rem -> Types.is_floating n.Node.ty
                  | _ -> false)
                true e ->
        Some e
    | _ -> None

let arg_use_counts (callee : Meth.t) e =
  let counts = Array.make (Array.length callee.Meth.symbols) 0 in
  Node.fold
    (fun () (n : Node.t) ->
      if n.Node.op = Opcode.Load && Array.length n.Node.args = 0 then
        counts.(n.Node.sym) <- counts.(n.Node.sym) + 1)
    () e;
  counts

let is_leaf (n : Node.t) =
  match n.Node.op with
  | Opcode.Loadconst -> true
  | Opcode.Load -> Array.length n.Node.args = 0
  | _ -> false

let substitute_args e (actuals : Node.t array) =
  Node.map_bottom_up
    (fun (n : Node.t) ->
      if n.Node.op = Opcode.Load && Array.length n.Node.args = 0 then
        actuals.(n.Node.sym)
      else n)
    e

let inline_trivial ~program (m : Meth.t) =
  let budget = ref 8 in
  Treeutil.map_method_nodes
    (Node.map_bottom_up (fun (n : Node.t) ->
         if !budget <= 0 || n.Node.op <> Opcode.Call || n.Node.sym < 0 then n
         else if n.Node.sym >= Program.method_count program then n
         else
           let callee = Program.meth program n.Node.sym in
           match trivial_body callee with
           | Some e
             when Array.length n.Node.args = Array.length callee.Meth.params
                  && Types.equal n.Node.ty callee.Meth.ret
                  && Array.for_all Node.subtree_pure n.Node.args
                  && Array.for_all2
                       (fun (a : Node.t) p -> Types.equal a.Node.ty p)
                       n.Node.args callee.Meth.params
                  &&
                  let counts = arg_use_counts callee e in
                  Array.for_all2
                    (fun a i -> counts.(i) <= 1 || is_leaf a)
                    n.Node.args
                    (Array.init (Array.length n.Node.args) Fun.id) ->
               decr budget;
               substitute_args e n.Node.args
           | _ -> n))
    m

(* general: single-block callees spliced at statement positions *)
let general_body (callee : Meth.t) =
  if not (callee_ok callee) then None
  else
    let b = callee.Meth.blocks.(0) in
    let has_call =
      Meth.fold_nodes
        (fun acc (n : Node.t) -> acc || n.Node.op = Opcode.Call)
        false callee
    in
    if has_call || Meth.tree_count callee > 40 then None
    else
      match b.Block.term with
      | Block.Return ret -> Some (b.Block.stmts, ret)
      | _ -> None

let inline_general ~program (m : Meth.t) =
  let budget = ref 4 in
  let m_ref = ref m in
  let splice_call (call : Node.t) (dst : int option) =
    if !budget <= 0 || call.Node.sym < 0 then None
    else if call.Node.sym >= Program.method_count program then None
    else
      let callee = Program.meth program call.Node.sym in
      match general_body callee with
      | Some (body, ret)
        when Array.length call.Node.args = Array.length callee.Meth.params
             && Types.equal call.Node.ty callee.Meth.ret
             && (dst = None || ret <> None)
             && Array.for_all2
                  (fun (a : Node.t) p -> Types.equal a.Node.ty p)
                  call.Node.args callee.Meth.params ->
          decr budget;
          (* fresh caller symbols for every callee symbol *)
          let map =
            Array.map
              (fun (s : Symbol.t) ->
                let m', id =
                  Treeutil.fresh_temp !m_ref ("inl_" ^ s.Symbol.name) s.Symbol.ty
                in
                m_ref := m';
                id)
              callee.Meth.symbols
          in
          let remap tree =
            Node.map_bottom_up
              (fun (n : Node.t) ->
                let local =
                  match n.Node.op with
                  | Opcode.Load -> Array.length n.Node.args = 0
                  | Opcode.Store -> Array.length n.Node.args = 1
                  | Opcode.Inc -> true
                  | _ -> false
                in
                if local then
                  Node.mk ~sym:map.(n.Node.sym) ~const:n.Node.const
                    ~flags:n.Node.flags n.Node.op n.Node.ty n.Node.args
                else n)
              tree
          in
          let arg_stores =
            Array.to_list
              (Array.mapi
                 (fun i a -> Node.store_sym map.(i) a)
                 call.Node.args)
          in
          let body = List.map remap body in
          let tail =
            match (dst, ret) with
            | Some t, Some e -> [ Node.store_sym t (remap e) ]
            | Some _, None -> assert false (* excluded by the guard above *)
            | None, Some e ->
                let e = remap e in
                if Node.subtree_pure e then [] else [ e ]
            | None, None -> []
          in
          Some (arg_stores @ body @ tail)
      | _ -> None
  in
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        let stmts =
          List.concat_map
            (fun (s : Node.t) ->
              match s.Node.op with
              | Opcode.Call -> (
                  match splice_call s None with
                  | Some spliced -> spliced
                  | None -> [ s ])
              | Opcode.Store
                when Array.length s.Node.args = 1
                     && s.Node.args.(0).Node.op = Opcode.Call
                     && Types.equal s.Node.args.(0).Node.ty
                          (!m_ref).Meth.symbols.(s.Node.sym).Symbol.ty -> (
                  match splice_call s.Node.args.(0) (Some s.Node.sym) with
                  | Some spliced -> spliced
                  | None -> [ s ])
              | _ -> [ s ])
            b.Block.stmts
        in
        Block.with_stmts b stmts)
      (!m_ref).Meth.blocks
  in
  Meth.with_blocks !m_ref blocks
