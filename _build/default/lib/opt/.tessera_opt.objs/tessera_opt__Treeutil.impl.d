lib/opt/treeutil.ml: Array Cfg List Option Tessera_il
