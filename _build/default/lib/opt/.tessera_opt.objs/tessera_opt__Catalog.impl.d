lib/opt/catalog.ml: Array Passes_block Passes_global Passes_local Passes_loop String Tessera_il
