lib/opt/passes_loop.ml: Array Fun List Loops Tessera_il Treeutil
