lib/opt/passes_global.mli: Tessera_il
