lib/opt/passes_block.ml: Array Cfg Fun Hashtbl List Loops Option Printf Tessera_il Tessera_vm Treeutil
