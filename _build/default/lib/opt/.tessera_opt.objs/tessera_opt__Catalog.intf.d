lib/opt/catalog.mli: Tessera_il
