lib/opt/loops.mli: Tessera_il
