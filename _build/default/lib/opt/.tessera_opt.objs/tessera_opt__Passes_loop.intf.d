lib/opt/passes_loop.mli: Tessera_il
