lib/opt/passes_local.ml: Array Fun Int64 Option Tessera_il Tessera_vm Treeutil
