lib/opt/manager.mli: Tessera_il Tessera_vm
