lib/opt/cfg.mli: Tessera_il
