lib/opt/loops.ml: Array Cfg Hashtbl List Tessera_il
