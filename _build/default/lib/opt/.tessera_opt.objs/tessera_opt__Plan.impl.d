lib/opt/plan.ml: Array Format List String
