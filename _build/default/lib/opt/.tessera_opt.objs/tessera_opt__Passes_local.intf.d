lib/opt/passes_local.mli: Tessera_il
