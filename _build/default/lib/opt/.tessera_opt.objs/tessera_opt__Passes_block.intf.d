lib/opt/passes_block.mli: Tessera_il
