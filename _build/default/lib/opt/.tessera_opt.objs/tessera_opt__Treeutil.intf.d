lib/opt/treeutil.mli: Tessera_il
