lib/opt/cfg.ml: Array List Tessera_il
