lib/opt/passes_global.ml: Array Fun Hashtbl List Tessera_il Treeutil
