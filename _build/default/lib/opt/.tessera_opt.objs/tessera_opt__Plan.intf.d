lib/opt/plan.mli: Format
