lib/opt/manager.ml: Array Catalog Format List Printf String Tessera_il Tessera_vm
