(** Purely local tree rewrites: each transformation inspects one node (and
    its already-rewritten children) at a time.  All of them preserve the
    value semantics of {!Tessera_vm.Semantics} exactly — including integer
    wrap-around, trap behaviour, and bit-exact floating point — which the
    differential test suite checks on random programs. *)

module Meth = Tessera_il.Meth

val const_fold : Meth.t -> Meth.t
(** Evaluates operations whose operands are constants of the native scalar
    types.  Never folds an operation that could trap (integer division by
    zero). *)

val packed_fold : Meth.t -> Meth.t
(** Constant folding for the BCD decimal types ([packed]/[zoned]) — these
    are software-emulated and 3x as expensive, so folding them matters
    more. *)

val longdouble_narrow : Meth.t -> Meth.t
(** Removes floating-to-floating conversions, which are exact in the
    value model; long-double conversions are 16 cycles each. *)

val simplify : Meth.t -> Meth.t
(** Algebraic identities: [x+0], [x*1], [x*0] (pure [x]), [x/1],
    [x lsl 0], double negation, casts to the operand's own type. *)

val bitop_simplify : Meth.t -> Meth.t
(** [x&x = x|x = x], [x^x = x-x = 0], self-comparisons, and
    constant-chain collapsing for bitwise operators, for pure integer
    [x]. *)

val strength_reduce : Meth.t -> Meth.t
(** Integer multiplication by a power of two becomes a shift. *)

val reassociate : Meth.t -> Meth.t
(** [(x+c1)+c2 = x+(c1+c2)] and sub/add mixtures, integer only (exact in
    modular arithmetic). *)

val sign_ext_elim : Meth.t -> Meth.t
(** Removes idempotent narrowing casts and normalizes constants to their
    storage width. *)

val peephole_shift : Meth.t -> Meth.t
(** Combines shift-of-shift chains where the combination is exact. *)

val peephole_compare : Meth.t -> Meth.t
(** Collapses [cmp (cmp a b) 0] patterns into a single comparison. *)

val induction_var : Meth.t -> Meth.t
(** [s <- load s + c] becomes the single-instruction [inc s, c]. *)

val mixed_fold : Meth.t -> Meth.t
(** Folds [Mixedop] intrinsics with all-constant operands. *)

val decimal_cast_removal : Meth.t -> Meth.t
(** Conversions between the two BCD representations are the identity in
    the value model and cost 3x a hardware op; removes them. *)

val checkcast_reduce : Meth.t -> Meth.t
(** Removes checkcasts whose operand is a freshly allocated object of a
    conforming class. *)

val instanceof_fold : Meth.t -> Meth.t
(** Folds [instanceof] applied to a fresh allocation (the allocation is
    elided — legal because the heap is not otherwise observable). *)

val arraylength_fold : Meth.t -> Meth.t
(** [arraylength (newarray c)] becomes [c] for valid constant lengths. *)
