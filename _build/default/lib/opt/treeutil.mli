(** Shared rewriting machinery for the transformation passes. *)

module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth

val map_block_nodes : (Node.t -> Node.t) -> Block.t -> Block.t
(** Rewrite every statement root and every terminator tree of a block. *)

val map_method_nodes : (Node.t -> Node.t) -> Meth.t -> Meth.t

val filter_map_stmts : (Node.t -> Node.t option) -> Block.t -> Block.t
(** Rewrite statements, dropping those mapped to [None].  Terminators are
    untouched. *)

val retarget : (int -> int) -> Meth.t -> Meth.t
(** Remap every branch target and handler id. *)

val compact : Meth.t -> Meth.t
(** Drop unreachable blocks (normal + exception reachability) and
    renumber the survivors, preserving relative order.  The identity when
    everything is reachable. *)

val reorder : Meth.t -> int array -> Meth.t
(** [reorder m order] permutes blocks into the sequence [order] (a
    permutation of block ids with [order.(0) = 0]) and renumbers.  Note:
    renumbering can turn forward edges into back edges; callers must keep
    loop headers before their bodies. *)

(** {1 Symbol dataflow summaries} *)

type sym_info = {
  loads : int array;  (** per-symbol count of arity-0 loads *)
  stores : int array;  (** per-symbol count of arity-1 stores + incs *)
  escapes : bool array;
      (** symbol value flows into a call argument, return, throw, field or
          array store (as the {e stored value}), or mixed op *)
}

val sym_info : Meth.t -> sym_info

val stored_syms_of_tree : Node.t -> int list
(** Local symbols written by one statement tree (stores and incs). *)

val loaded_syms_of_tree : Node.t -> int list

val tree_reads_memory : Node.t -> bool
(** Contains a field/array load, a call, or any opcode that observes heap
    state. *)

val tree_writes_memory : Node.t -> bool
(** Contains a field/array store, a call, an allocation, or a monitor
    operation. *)

val fresh_temp : Meth.t -> string -> Tessera_il.Types.t -> Meth.t * int
(** Append a temporary to the symbol table; returns its id. *)
