module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol

let register_only root =
  let ok (n : Node.t) =
    match n.Node.op with
    | Opcode.Load -> Array.length n.Node.args = 0
    | Opcode.Loadconst | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Neg
    | Opcode.Shift _ | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Compare _
      ->
        true
    | Opcode.Cast k -> k <> Opcode.C_check
    | Opcode.Div | Opcode.Rem -> Types.is_floating n.Node.ty
    | _ -> false
  in
  let rec go n = ok n && Array.for_all go n.Node.args in
  go root

(* ------------------------------------------------------------------ *)
(* Loop-invariant code motion                                            *)
(* ------------------------------------------------------------------ *)

(* Where, within the method, is each symbol loaded / stored? *)
let sym_block_map (m : Meth.t) =
  let n = Array.length m.Meth.symbols in
  let loads = Array.make n [] in
  let stores = Array.make n [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      let visit root =
        Node.fold
          (fun () (k : Node.t) ->
            match k.Node.op with
            | Opcode.Load when Array.length k.Node.args = 0 ->
                loads.(k.Node.sym) <- bi :: loads.(k.Node.sym)
            | Opcode.Store when Array.length k.Node.args = 1 ->
                stores.(k.Node.sym) <- bi :: stores.(k.Node.sym)
            | Opcode.Inc -> stores.(k.Node.sym) <- bi :: stores.(k.Node.sym)
            | _ -> ())
          () root
      in
      List.iter visit b.Block.stmts;
      List.iter visit (Block.terminator_nodes b.Block.term))
    m.Meth.blocks;
  (loads, stores)

let hoist_one_loop (m : Meth.t) (l : Loops.loop) =
  let header = l.Loops.header in
  if header = 0 then None
  else begin
    let in_loop b = List.mem b l.Loops.body in
    let has_handlers =
      List.exists (fun b -> m.Meth.blocks.(b).Block.handler <> None) l.Loops.body
    in
    if has_handlers then None
    else begin
      let loads, stores = sym_block_map m in
      let stored_in_loop s = List.exists in_loop stores.(s) in
      let hb = m.Meth.blocks.(header) in
      (* Position of each statement within the header, to check "no loads
         of the destination before the definition". *)
      let stmts = Array.of_list hb.Block.stmts in
      let hoistable = ref [] in
      Array.iteri
        (fun idx (s : Node.t) ->
          match s.Node.op with
          | Opcode.Store when Array.length s.Node.args = 1 ->
              let t = s.Node.sym in
              let rhs = s.Node.args.(0) in
              let rhs_syms = Treeutil.loaded_syms_of_tree rhs in
              let ok =
                m.Meth.symbols.(t).Symbol.kind = Symbol.Temp
                && register_only rhs
                && (not (List.mem t rhs_syms))
                && (not (List.exists stored_in_loop rhs_syms))
                && List.length (List.filter in_loop stores.(t))
                   = List.length stores.(t)
                (* stored nowhere outside the loop *)
                && List.length stores.(t) = 1 (* only this definition *)
                && List.for_all in_loop loads.(t)
                (* no prior loads of t in the header *)
                && (let prior = ref false in
                    Array.iteri
                      (fun j s' ->
                        if j < idx && List.mem t (Treeutil.loaded_syms_of_tree s')
                        then prior := true)
                      stmts;
                    not !prior)
                &&
                (* terminator of header must not load t before... the
                   terminator runs after all stmts, so it is fine *)
                true
              in
              if ok then hoistable := (idx, s) :: !hoistable
          | _ -> ())
        stmts;
      match List.rev !hoistable with
      | [] -> None
      | picked ->
          let picked_idx = List.map fst picked in
          let new_header_stmts =
            List.filteri (fun i _ -> not (List.mem i picked_idx)) hb.Block.stmts
          in
          let n = Array.length m.Meth.blocks in
          let pre =
            Block.make n (List.map snd picked) (Block.Goto header)
          in
          let blocks = Array.append m.Meth.blocks [| pre |] in
          let blocks =
            Array.mapi
              (fun bi b ->
                if bi = header then Block.with_stmts b new_header_stmts else b)
              blocks
          in
          let m = Meth.with_blocks m blocks in
          (* retarget out-of-loop edges into the header to the preheader *)
          let m =
            Meth.with_blocks m
              (Array.mapi
                 (fun bi (b : Block.t) ->
                   if bi = n || in_loop bi then b
                   else
                     let f t = if t = header then n else t in
                     let term =
                       match b.Block.term with
                       | Block.Goto t -> Block.Goto (f t)
                       | Block.If { cond; if_true; if_false } ->
                           Block.If
                             { cond; if_true = f if_true; if_false = f if_false }
                       | t -> t
                     in
                     Block.with_term b term)
                 m.Meth.blocks)
          in
          (* restore the headers-before-bodies numbering convention by
             moving the preheader just before the header *)
          let order =
            Array.of_list
              (List.init header Fun.id
              @ [ n ]
              @ List.init (n - header) (fun i -> header + i))
          in
          Some (Treeutil.reorder m order)
    end
  end

let licm (m : Meth.t) =
  let rec go m budget =
    if budget = 0 then m
    else
      let la = Loops.analyze m in
      let rec try_loops = function
        | [] -> m
        | l :: rest -> (
            match hoist_one_loop m l with
            | Some m' -> go m' (budget - 1)
            | None -> try_loops rest)
      in
      try_loops la.Loops.loops
  in
  go m 4

(* ------------------------------------------------------------------ *)
(* Unrolling and peeling                                                 *)
(* ------------------------------------------------------------------ *)

type self_loop = {
  block : int;
  cond : Node.t;
  body_is_true_branch : bool;
  exit : int;
}

let find_self_loops (m : Meth.t) =
  let la = Loops.analyze m in
  List.filter_map
    (fun (l : Loops.loop) ->
      if not (Loops.is_self_loop m l) then None
      else
        let b = l.Loops.header in
        if b = 0 then None
        else
          match m.Meth.blocks.(b).Block.term with
          | Block.If { cond; if_true; if_false } when if_true = b && if_false <> b
            ->
              Some { block = b; cond; body_is_true_branch = true; exit = if_false }
          | Block.If { cond; if_true; if_false } when if_false = b && if_true <> b
            ->
              Some { block = b; cond; body_is_true_branch = false; exit = if_true }
          | _ -> None)
    la.Loops.loops

let unroll ~factor (m : Meth.t) =
  if factor < 2 then m
  else
    match find_self_loops m with
    | [] -> m
    | sl :: _ ->
        let b = m.Meth.blocks.(sl.block) in
        if Block.tree_count b > 120 then m
        else begin
          let n = Array.length m.Meth.blocks in
          let copy_ids = Array.init (factor - 1) (fun i -> n + i) in
          let term_for next_body =
            if sl.body_is_true_branch then
              Block.If { cond = sl.cond; if_true = next_body; if_false = sl.exit }
            else
              Block.If { cond = sl.cond; if_true = sl.exit; if_false = next_body }
          in
          let copies =
            Array.mapi
              (fun i id ->
                let next =
                  if i = factor - 2 then sl.block else copy_ids.(i + 1)
                in
                Block.make ~handler:b.Block.handler ~freq:b.Block.freq id
                  b.Block.stmts (term_for next))
              copy_ids
          in
          let blocks = Array.append m.Meth.blocks copies in
          (* original block now chains into the first copy *)
          blocks.(sl.block) <- Block.with_term b (term_for copy_ids.(0));
          Meth.with_blocks m blocks
        end

let peel (m : Meth.t) =
  match find_self_loops m with
  | [] -> m
  | sl :: _ ->
      let b = m.Meth.blocks.(sl.block) in
      if Block.tree_count b > 120 then m
      else begin
        let n = Array.length m.Meth.blocks in
        let peeled =
          Block.make ~handler:b.Block.handler ~freq:1.0 n b.Block.stmts
            b.Block.term
        in
        let blocks = Array.append m.Meth.blocks [| peeled |] in
        let m = Meth.with_blocks m blocks in
        (* entry edges from outside the loop go to the peeled copy *)
        let m =
          Meth.with_blocks m
            (Array.mapi
               (fun bi (blk : Block.t) ->
                 if bi = sl.block || bi = n then blk
                 else
                   let f t = if t = sl.block then n else t in
                   let term =
                     match blk.Block.term with
                     | Block.Goto t -> Block.Goto (f t)
                     | Block.If { cond; if_true; if_false } ->
                         Block.If
                           { cond; if_true = f if_true; if_false = f if_false }
                     | t -> t
                   in
                   Block.with_term blk term)
               m.Meth.blocks)
        in
        (* move the peeled copy just before the loop to keep numbering *)
        let order =
          Array.of_list
            (List.init sl.block Fun.id
            @ [ n ]
            @ List.init (n - sl.block) (fun i -> sl.block + i))
        in
        Treeutil.reorder m order
      end

(* ------------------------------------------------------------------ *)
(* Array-copy idiom                                                      *)
(* ------------------------------------------------------------------ *)

let is_load_of sym (n : Node.t) =
  n.Node.op = Opcode.Load && Array.length n.Node.args = 0 && n.Node.sym = sym

let arraycopy_idiom (m : Meth.t) =
  let rewrite_block (b : Block.t) self_loops =
    if not (List.exists (fun sl -> sl.block = b.Block.id) self_loops) then b
    else
      match b.Block.stmts with
      | [ (st : Node.t); (inc : Node.t) ]
        when st.Node.op = Opcode.Store
             && Array.length st.Node.args = 3
             && inc.Node.op = Opcode.Inc
             && inc.Node.const = 1L -> (
          let i = inc.Node.sym in
          let idx = st.Node.args.(1) in
          let v = st.Node.args.(2) in
          match v.Node.op with
          | Opcode.Load
            when Array.length v.Node.args = 2
                 && is_load_of i idx
                 && is_load_of i v.Node.args.(1) ->
              (* dst[i] <- src[i]; i++ : a copy loop.  Flag both accesses
                 as check-free. *)
              let flags = Node.flag_no_bounds_check lor Node.flag_no_null_check in
              let v' = Node.with_flags v flags in
              let st' =
                Node.with_flags
                  (Node.with_args st [| st.Node.args.(0); idx; v' |])
                  flags
              in
              Block.with_stmts b [ st'; inc ]
          | _ -> b)
      | _ -> b
  in
  let self_loops = find_self_loops m in
  if self_loops = [] then m
  else
    Meth.with_blocks m
      (Array.map (fun b -> rewrite_block b self_loops) m.Meth.blocks)
