(** Control-flow graph over a method's blocks.

    Exception edges (block → its handler) are included in reachability but
    reported separately from normal successors, because layout and
    merging decisions only consider normal flow while deletion decisions
    must respect both. *)

type t = {
  preds : int list array;  (** normal-flow predecessors *)
  succs : int list array;  (** normal-flow successors *)
  reachable : bool array;  (** from entry, via normal + exception edges *)
  rpo : int array;  (** reverse post-order of reachable blocks *)
}

val build : Tessera_il.Meth.t -> t

val single_pred : t -> int -> int option
(** The unique normal predecessor of a block, if it has exactly one. *)

val dominators : Tessera_il.Meth.t -> bool array array
(** [d.(b).(x)] iff block [x] dominates block [b].  Computed over normal
    edges plus exception edges (block → handler), so handler blocks are
    properly dominated rather than vacuously dominated-by-everything;
    blocks unreachable from entry dominate nothing and are dominated by
    everything (the standard convention). *)

val is_back_edge : bool array array -> int -> int -> bool
(** [is_back_edge dom u v]: the edge [u -> v] is a back edge, i.e. [v]
    dominates [u].  Id-order is irrelevant — block layout may renumber
    freely without confusing loop detection. *)
