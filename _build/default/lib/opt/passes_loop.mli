(** Loop transformations. *)

module Meth = Tessera_il.Meth

val licm : Meth.t -> Meth.t
(** Loop-invariant code motion: hoists invariant register-only definitions
    from loop headers into freshly inserted preheaders.  Conservative —
    the hoisted temporary must be used only inside the loop and the loop
    must contain no exception handlers. *)

val unroll : factor:int -> Meth.t -> Meth.t
(** Unrolls single-block self-loops by chaining [factor - 1] copies, each
    re-testing the loop condition (always safe, trades code size for
    branch cycles). *)

val peel : Meth.t -> Meth.t
(** Peels one iteration of single-block self-loops: a copy of the body
    runs before the loop, exposing its effects to downstream passes. *)

val arraycopy_idiom : Meth.t -> Meth.t
(** Recognizes canonical element-copy loops and flags their array accesses
    as check-free (cost-only; stands in for Testarossa's conversion to a
    hardware-assisted copy). *)
