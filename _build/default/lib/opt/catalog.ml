module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Meth = Tessera_il.Meth
module Program = Tessera_il.Program

type ctx = { program : Program.t }

type weight = Cheap | Medium | Expensive | Very_expensive

type traits = {
  nodes : int;
  has_loops : bool;
  has_allocs : bool;
  has_sync : bool;
  has_arrays : bool;
  has_handlers : bool;
  has_calls : bool;
  has_casts : bool;
  has_decimals : bool;
  has_longdouble : bool;
  has_fp : bool;
  has_objects : bool;
  has_mixed : bool;
  has_heap_loads : bool;
  has_throws : bool;
  uses_bigdecimal : bool;
  uses_unsafe : bool;
}

let traits_of (m : Meth.t) =
  let nodes = ref 0 in
  let has_allocs = ref false
  and has_sync = ref (m.Meth.attrs.Meth.synchronized)
  and has_arrays = ref false
  and has_calls = ref false
  and has_casts = ref false
  and has_decimals = ref false
  and has_longdouble = ref false
  and has_fp = ref false
  and has_objects = ref false
  and has_mixed = ref false
  and has_heap_loads = ref false
  and has_throws = ref false in
  Meth.fold_nodes
    (fun () (n : Node.t) ->
      incr nodes;
      (match n.Node.ty with
      | Types.Float_ | Types.Double -> has_fp := true
      | Types.Long_double ->
          has_fp := true;
          has_longdouble := true
      | Types.Packed_decimal | Types.Zoned_decimal -> has_decimals := true
      | Types.Object_ -> has_objects := true
      | Types.Address -> has_arrays := true
      | _ -> ());
      match n.Node.op with
      | Opcode.New | Opcode.Newarray | Opcode.Newmultiarray ->
          has_allocs := true
      | Opcode.Synchronization _ -> has_sync := true
      | Opcode.Arrayop _ -> has_arrays := true
      | Opcode.Call -> has_calls := true
      | Opcode.Cast _ -> has_casts := true
      | Opcode.Mixedop -> has_mixed := true
      | Opcode.Instanceof -> has_objects := true
      | Opcode.Throw_op -> has_throws := true
      | Opcode.Load when Array.length n.Node.args > 0 -> has_heap_loads := true
      | _ -> ())
    () m;
  Array.iter
    (fun (b : Tessera_il.Block.t) ->
      match b.Tessera_il.Block.term with
      | Tessera_il.Block.Throw _ -> has_throws := true
      | _ -> ())
    m.Meth.blocks;
  {
    nodes = !nodes;
    has_loops = Meth.has_backward_branch m;
    has_allocs = !has_allocs;
    has_sync = !has_sync;
    has_arrays = !has_arrays;
    has_handlers = Meth.exception_handler_count m > 0;
    has_calls = !has_calls;
    has_casts = !has_casts;
    has_decimals = !has_decimals;
    has_longdouble = !has_longdouble;
    has_fp = !has_fp;
    has_objects = !has_objects;
    has_mixed = !has_mixed;
    has_heap_loads = !has_heap_loads;
    has_throws = !has_throws;
    uses_bigdecimal = m.Meth.attrs.Meth.uses_bigdecimal;
    uses_unsafe = m.Meth.attrs.Meth.uses_unsafe;
  }

type entry = {
  index : int;
  name : string;
  weight : weight;
  applicable : traits -> bool;
  run : ctx -> Meth.t -> Meth.t;
  quality_hint : int;
}

let always (_ : traits) = true

let pure f = fun (_ : ctx) m -> f m

let entry ?(hint = 0) index name weight applicable run =
  { index; name; weight; applicable; run; quality_hint = hint }

let identity_pass (_ : ctx) m = m

let all =
  [|
    entry 0 "constantFolding" Cheap always (pure Passes_local.const_fold);
    entry 1 "localConstantPropagation" Cheap always (pure Passes_block.local_const_prop);
    entry 2 "rematerializeConstants" Cheap
      (fun t -> not t.uses_bigdecimal)
      (pure Passes_global.remat_constants);
    entry 3 "globalCopyPropagation" Medium always (pure Passes_global.global_copy_prop);
    entry 4 "localCopyPropagation" Cheap always (pure Passes_block.copy_prop);
    entry 5 "deadTreesElimination" Cheap always (pure Passes_block.dead_tree_elim);
    entry 6 "deadStoresElimination" Medium always (pure Passes_block.dead_store_elim);
    entry 7 "unreachableBlockElimination" Cheap always (pure Passes_block.unreachable_elim);
    entry 8 "blockMerging" Medium always (pure Passes_block.block_merge);
    entry 9 "branchFolding" Cheap always (pure Passes_block.branch_fold);
    entry 10 "branchReversal" Cheap always (pure Passes_block.branch_reversal);
    entry 11 "jumpThreading" Cheap always (pure Passes_block.jump_threading);
    entry 12 "blockLayout" Medium always (pure Passes_block.block_layout);
    entry 13 "coldBlockOutlining" Medium
      (fun t -> t.has_handlers || t.has_throws)
      (pure Passes_block.cold_outline);
    entry 14 "profiledBlockOrdering" Expensive always
      (pure Passes_block.profile_block_order);
    entry 15 "localCSE" Expensive always (pure Passes_block.local_cse);
    entry 16 "localValueNumbering" Expensive always (pure Passes_block.local_vn);
    entry 17 "redundantLoadElimination" Expensive
      (fun t -> t.has_heap_loads && not t.uses_unsafe)
      (pure Passes_block.field_load_cse);
    entry 18 "simplifier" Cheap always (pure Passes_local.simplify);
    entry 19 "treeSimplificationCleanup" Cheap always (pure Passes_local.simplify);
    entry 20 "bitopSimplification" Cheap always (pure Passes_local.bitop_simplify);
    entry 21 "strengthReduction" Cheap always (pure Passes_local.strength_reduce);
    entry 22 "expressionReassociation" Medium always (pure Passes_local.reassociate);
    entry 23 "signExtensionElimination" Cheap
      (fun t -> t.has_casts)
      (pure Passes_local.sign_ext_elim);
    entry 24 "shiftPeephole" Cheap always (pure Passes_local.peephole_shift);
    entry 25 "comparePeephole" Cheap always (pure Passes_local.peephole_compare);
    entry 26 "inductionVariableSimplification" Medium
      (fun t -> t.has_loops)
      (pure Passes_local.induction_var);
    entry 27 "loopInvariantCodeMotion" Expensive
      (fun t -> t.has_loops)
      (pure Passes_loop.licm);
    entry 28 "loopUnrollingSmall" Expensive
      (fun t -> t.has_loops)
      (pure (Passes_loop.unroll ~factor:2));
    entry 29 "loopUnrollingAggressive" Very_expensive
      (fun t -> t.has_loops)
      (pure (Passes_loop.unroll ~factor:4));
    entry 30 "loopPeeling" Expensive (fun t -> t.has_loops) (pure Passes_loop.peel);
    entry 31 "arraycopyIdiomRecognition" Medium
      (fun t -> t.has_loops && t.has_arrays)
      (pure Passes_loop.arraycopy_idiom);
    entry 32 "boundsCheckElimination" Medium
      (fun t -> t.has_arrays)
      (pure Passes_block.bounds_check_elim);
    entry 33 "redundantBoundsCheckRemoval" Medium
      (fun t -> t.has_arrays)
      (pure Passes_block.loop_bounds_flags);
    entry 34 "nullCheckElimination" Medium
      (fun t -> t.has_objects || t.has_arrays)
      (pure Passes_block.null_check_elim);
    entry 35 "compactNullChecks" Medium
      (fun t -> t.has_objects || t.has_arrays)
      (pure Passes_block.compact_null_checks);
    entry 36 "escapeAnalysis" Very_expensive
      (fun t -> t.has_allocs)
      (pure Passes_global.escape_analysis);
    entry 37 "monitorElision" Medium
      (fun t -> t.has_sync && t.has_allocs)
      (pure Passes_global.monitor_elision);
    entry 38 "redundantMonitorElimination" Medium
      (fun t -> t.has_sync)
      (pure Passes_block.monitor_pair_elim);
    entry 39 "trivialInlining" Medium
      (fun t -> t.has_calls)
      (fun ctx m -> Passes_global.inline_trivial ~program:ctx.program m);
    entry 40 "generalInlining" Very_expensive
      (fun t -> t.has_calls)
      (fun ctx m -> Passes_global.inline_general ~program:ctx.program m);
    entry 41 "unusedSymbolElimination" Cheap always
      (pure Passes_block.unused_symbol_elim);
    entry 42 "exceptionDirectedOptimization" Medium
      (fun t -> t.has_handlers)
      (pure Passes_block.throw_to_goto);
    entry 43 "returnMerging" Cheap always (pure Passes_block.return_merge);
    entry 44 "bigDecimalReduction" Medium
      (fun t -> t.uses_bigdecimal)
      (pure Passes_local.mixed_fold);
    entry 45 "packedDecimalFolding" Medium
      (fun t -> t.has_decimals)
      (pure Passes_local.packed_fold);
    entry 46 "zonedDecimalConversionRemoval" Medium
      (fun t -> t.has_decimals)
      (pure Passes_local.decimal_cast_removal);
    entry 47 "longDoubleNarrowing" Medium
      (fun t -> t.has_longdouble || t.has_fp)
      (pure Passes_local.longdouble_narrow);
    entry 48 "instanceofFolding" Cheap
      (fun t -> t.has_objects)
      (pure Passes_local.instanceof_fold);
    entry 49 "checkcastReduction" Cheap
      (fun t -> t.has_casts && t.has_objects)
      (pure Passes_local.checkcast_reduce);
    entry 50 "arrayLengthFolding" Cheap
      (fun t -> t.has_arrays)
      (pure Passes_local.arraylength_fold);
    entry 51 "mixedIntrinsicFolding" Cheap
      (fun t -> t.has_mixed)
      (pure Passes_local.mixed_fold);
    entry ~hint:1 52 "globalRegisterAllocationHint" Expensive always identity_pass;
    entry ~hint:1 53 "instructionSchedulingHint" Expensive always identity_pass;
    entry 54 "deadCodeCleanup" Cheap always
      (pure (fun m -> Passes_block.dead_store_elim (Passes_block.dead_tree_elim m)));
    entry 55 "lateConstantFolding" Cheap always (pure Passes_local.const_fold);
    entry 56 "finalBlockCleanup" Cheap always
      (pure (fun m -> Passes_block.unreachable_elim (Passes_block.jump_threading m)));
    entry 57 "loopCanonicalization" Medium
      (fun t -> t.has_loops)
      (pure (fun m ->
           Passes_block.unreachable_elim
             (Passes_block.jump_threading (Passes_block.block_merge m))));
  |]

let count = Array.length all

let () = assert (count = 58)

let () = Array.iteri (fun i e -> assert (e.index = i)) all

let by_name name = Array.find_opt (fun e -> String.equal e.name name) all

let weight_cycles = function
  | Cheap -> (1_500, 30)
  | Medium -> (4_000, 90)
  | Expensive -> (12_000, 250)
  | Very_expensive -> (30_000, 600)

let check_cycles = 400
